#!/bin/sh
# bench_kvserve.sh — the live-service benchmark behind BENCH_kvserve.json.
#
# For every shard-lock choice (the four statics plus adaptive) it starts a
# fresh kvserver, drives it with the same seeded open-loop three-phase
# script (read-mostly -> write-storm -> churn) at each offered rate, and
# records the per-phase steady-state latency summary. The merged document
# is written to BENCH_kvserve.json, and the merge asserts the claim under
# test: at every (rate, phase) cell the adaptive controller's point-op p99
# (best rep, i.e. min across reps — host stalls are additive, run-scoped
# noise) must match or beat the best static lock's.
#
# The rate sweep covers the service's operable envelope on this box —
# shedding stays under ~1% at the top rate; past it the single-CPU service
# is saturated and every lock choice collapses together.
#
#   ./bench_kvserve.sh              rates 1000 1500 2000, 6s per phase, 5 reps
#   RATES="2000" SECS=4 REPS=1 ./bench_kvserve.sh     quicker sweep
#   FRAGDIR=/tmp/frags ./bench_kvserve.sh             keep per-run fragments
set -eu

cd "$(dirname "$0")"

RATES="${RATES:-1000 1500 2000}"
# At the low end of the rate sweep a shard sees only ~12 ops per 100ms
# controller interval; the package-default 50-op judgment floor would
# leave the controller blind there. The bench stretches the interval to
# 200ms and lowers the floor, keeping reaction time (settle=2, ~400-600ms)
# well inside each phase's warmup window.
CTL_MIN_OPS="${CTL_MIN_OPS:-10}"
CTL_INTERVAL="${CTL_INTERVAL:-200ms}"
SECS="${SECS:-6}"
REPS="${REPS:-5}"
SEED="${SEED:-1}"
KEYS="${KEYS:-50000}"
SHARDS="${SHARDS:-8}"
OUT="${OUT:-BENCH_kvserve.json}"

# FRAGDIR keeps the per-run fragment JSONs (they embed full latency
# histograms) for offline re-analysis; by default everything is scratch.
if [ -n "${FRAGDIR:-}" ]; then
	DIR="$FRAGDIR"
	mkdir -p "$DIR"
else
	DIR=$(mktemp -d /tmp/kvserve-bench.XXXXXX)
	trap 'rm -rf "$DIR"' EXIT
fi
go build -o "$DIR/" ./cmd/kvserver ./cmd/kvload

# Each rep is a complete lock x rate sweep, and the label order rotates
# between reps (by 2, coprime with 5, so five reps put every label in
# every position): slow drifts in background load land on every label
# instead of whichever ran last, and no label always pays the end-of-rep
# slot. The merge takes each label's best (min) rep per cell.
LOCKS="shfl-rw shfl-mutex sync-rw sync-mutex adaptive"
FRAGS=""
REP=1
while [ "$REP" -le "$REPS" ]; do
	ORDER="$LOCKS"
	i=0
	while [ "$i" -lt $(((REP - 1) * 2 % 5)) ]; do
		ORDER="${ORDER#* } ${ORDER%% *}"
		i=$((i + 1))
	done
	for LOCK in $ORDER; do
		for RATE in $RATES; do
			rm -f "$DIR/port"
			"$DIR/kvserver" -addr 127.0.0.1:0 -lock "$LOCK" -shards "$SHARDS" \
				-preload "$KEYS" -ctl-min-ops "$CTL_MIN_OPS" -ctl-interval "$CTL_INTERVAL" \
				-port-file "$DIR/port" -max-runtime 600s \
				>"$DIR/server-$LOCK-$RATE-$REP.log" 2>&1 &
			PID=$!
			i=0
			while [ ! -s "$DIR/port" ]; do
				i=$((i + 1))
				[ $i -gt 200 ] && { echo "kvserver ($LOCK) never came up" >&2; exit 1; }
				sleep 0.1
			done
			ADDR=$(cat "$DIR/port")
			FRAG="$DIR/run-$LOCK-$RATE-$REP.json"
			echo "== $LOCK @ ${RATE} ops/s (3 phases x ${SECS}s, rep $REP/$REPS)"
			"$DIR/kvload" -url "http://$ADDR" -label "$LOCK" -rate "$RATE" \
				-secs "$SECS" -seed "$SEED" -keys "$KEYS" -json "$FRAG"
			kill -TERM "$PID"
			wait "$PID"
			FRAGS="$FRAGS $FRAG"
		done
	done
	REP=$((REP + 1))
done

# shellcheck disable=SC2086
"$DIR/kvload" -merge "$OUT" -check-adaptive $FRAGS
echo "wrote $OUT"
