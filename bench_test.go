// Package-level benchmarks: one testing.B benchmark per table/figure of
// the paper, each regenerating that experiment's key configuration and
// reporting throughput-style metrics, plus micro-benchmarks of the native
// lock implementations.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks execute one representative sweep point per b.N loop
// (the full sweeps live in cmd/shflbench); ops/sec on the simulated
// machine is reported as the "simops/s" metric.
package main

import (
	"sync"
	"testing"

	"shfllock/internal/core"
	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
	"shfllock/internal/workloads"
)

// benchParams returns a medium-sized configuration: full reference machine
// at full core count, short measurement window so b.N iterations stay fast.
func benchParams(threads int) workloads.Params {
	return workloads.Params{
		Topo:     topology.Reference(),
		Threads:  threads,
		Seed:     1,
		Duration: 3_000_000,
	}
}

func reportSim(b *testing.B, r workloads.Result) {
	b.ReportMetric(r.OpsPerSec, "simops/s")
	b.ReportMetric(r.Fairness, "fairness")
}

// --- Figure 1 / 9(b): MWCM ------------------------------------------------

func BenchmarkFig1aMWCMStockRWSem(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.MWCM(benchParams(96), simlocks.RWSemMaker())
	}
	reportSim(b, r)
}

func BenchmarkFig1aMWCMShflRW(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.MWCM(benchParams(96), simlocks.ShflRWMaker())
	}
	reportSim(b, r)
}

func BenchmarkFig1bMWCMCohortLockMemory(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.MWCM(benchParams(96), simlocks.CohortRWMaker())
	}
	b.ReportMetric(float64(r.LockBytes)/(1<<20), "lockMB")
}

// --- Figure 8: MWRL and lock1 ----------------------------------------------

func BenchmarkFig8MWRLStock(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.MWRL(benchParams(192), simlocks.QSpinLockMaker())
	}
	reportSim(b, r)
}

func BenchmarkFig8MWRLShflLockNB(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.MWRL(benchParams(192), simlocks.ShflLockNBMaker())
	}
	reportSim(b, r)
}

func BenchmarkFig8Lock1CNA(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.Lock1(benchParams(192), simlocks.CNAMaker())
	}
	reportSim(b, r)
}

// --- Figure 9(a)/(c): MWRM and MRDM ---------------------------------------

func BenchmarkFig9aMWRMShflLockB(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.MWRM(benchParams(384), simlocks.ShflLockBMaker())
	}
	reportSim(b, r)
}

func BenchmarkFig9aMWRMCohortOversub(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.MWRM(benchParams(384), simlocks.CohortMaker())
	}
	reportSim(b, r)
}

func BenchmarkFig9cMRDMStockBravo(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.MRDM(benchParams(192), simlocks.BravoMaker(simlocks.RWSemMaker()))
	}
	reportSim(b, r)
}

// --- Figure 10: application models ------------------------------------------

func BenchmarkFig10aAFLShflKernel(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.AFL(benchParams(96), workloads.ShflKernel())
	}
	reportSim(b, r)
}

func BenchmarkFig10bEximStockKernel(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.Exim(benchParams(96), workloads.StockKernel())
	}
	reportSim(b, r)
}

func BenchmarkFig10cMetisShflKernel(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.Metis(benchParams(96), workloads.ShflKernel())
	}
	reportSim(b, r)
}

// --- Figure 11: hash-table nano-benchmark -----------------------------------

func BenchmarkFig11aHashTableShflNB(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.HashTable(benchParams(192), simlocks.ShflLockNBMaker(), 1)
	}
	reportSim(b, r)
}

func BenchmarkFig11cHashTableShflB4x(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.HashTable(benchParams(768), simlocks.ShflLockBMaker(), 1)
	}
	reportSim(b, r)
}

func BenchmarkFig11eFactorBase(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.HashTable(benchParams(192), simlocks.ShflLockAblationMaker(0), 1)
	}
	reportSim(b, r)
}

func BenchmarkFig11eFactorQlast(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.HashTable(benchParams(192), simlocks.ShflLockAblationMaker(3), 1)
	}
	reportSim(b, r)
}

func BenchmarkFig11gRWShfl1pct(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.HashTableRW(benchParams(384), simlocks.ShflRWMaker(), 1)
	}
	reportSim(b, r)
}

func BenchmarkFig11hRWStock50pct(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.HashTableRW(benchParams(384), simlocks.RWSemMaker(), 50)
	}
	reportSim(b, r)
}

// --- Figure 12: LevelDB and streamcluster -----------------------------------

func BenchmarkFig12aLevelDBMCS(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.LevelDB(benchParams(192), simlocks.MCSHeapMaker())
	}
	reportSim(b, r)
}

func BenchmarkFig12bLevelDBShflB4x(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.LevelDB(benchParams(768), simlocks.ShflLockBMaker())
	}
	reportSim(b, r)
}

func BenchmarkFig12cStreamclusterShfl(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.Streamcluster(benchParams(96), simlocks.ShflLockNBMaker(), 12)
	}
	b.ReportMetric(r.Extra["exec_cycles"]/1e6, "Mcycles")
}

// --- Figure 13: Dedup --------------------------------------------------------

func BenchmarkFig13aDedupPthread(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.Dedup(benchParams(96), simlocks.PthreadMaker())
	}
	reportSim(b, r)
}

func BenchmarkFig13bDedupMCSLockMemory(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.Dedup(benchParams(96), simlocks.MCSHeapMaker())
	}
	b.ReportMetric(float64(r.LockBytes)/1024, "lockKB")
}

// --- Table 1: uncontended acquire cost of every simulated lock ---------------

func BenchmarkTable1UncontendedShflNB(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.Lock1(benchParams(1), simlocks.ShflLockNBMaker())
	}
	reportSim(b, r)
}

func BenchmarkTable1UncontendedCohort(b *testing.B) {
	var r workloads.Result
	for i := 0; i < b.N; i++ {
		r = workloads.Lock1(benchParams(1), simlocks.CohortMaker())
	}
	reportSim(b, r)
}

// --- Native lock micro-benchmarks (real goroutines) --------------------------

func benchNative(b *testing.B, l sync.Locker, goroutines int) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock() //nolint:staticcheck // empty critical section on purpose
		}
	})
}

func BenchmarkNativeShflMutex(b *testing.B) { benchNative(b, &core.Mutex{}, 0) }
func BenchmarkNativeShflSpin(b *testing.B)  { benchNative(b, &core.SpinLock{}, 0) }
func BenchmarkNativeMCS(b *testing.B)       { benchNative(b, &core.MCSLock{}, 0) }
func BenchmarkNativeTAS(b *testing.B)       { benchNative(b, &core.TASLock{}, 0) }
func BenchmarkNativeTicket(b *testing.B)    { benchNative(b, &core.TicketLock{}, 0) }
func BenchmarkNativeSyncMutex(b *testing.B) { benchNative(b, &sync.Mutex{}, 0) }
func BenchmarkNativeShflRWRead(b *testing.B) {
	var l core.RWMutex
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.RLock()
			l.RUnlock()
		}
	})
}
