// Command goroscale measures lock throughput as goroutine count scales
// past anything a thread-per-core lock was designed for: 10k to 1M
// goroutines hammering one lock. This is the experiment behind the
// goroutine-native ShflLock variant — socket grouping assumes waiter
// identity is a CPU, and at four or five orders of magnitude more waiters
// than Ps the questions that matter are different: how cheaply does a
// surplus waiter get out of the way, and does the queue still make
// progress when every spin burns a P the holder needs.
//
// Locks compared: sync.Mutex (the runtime baseline every Go service
// actually uses), the socket-grouped blocking ShflLock (core.Mutex), and
// the goroutine-native variant (core.NewGoroMutex). Each (lock, N) cell
// spawns N goroutines behind a start barrier, lets them fight over one
// counter-increment critical section for a fixed window, and reports the
// best ops/s over -reps runs.
//
// Usage:
//
//	goroscale [-goroutines 10000,100000,1000000] [-window 500ms] [-reps 3] [-out BENCH_goro.json]
//	goroscale -quick [-out path]     # reduced matrix + gate, for verify.sh
//	goroscale -check BENCH_goro.json # gate an existing result file
//
// -max-n caps a lock's goroutine count (default: the socket-grouped lock
// stops at 10k — one 100k rep exceeds 15 minutes on the reference box,
// and that collapse is the finding, not a number worth waiting for).
// -cell-budget is the backstop for surprises on other boxes: a lock whose
// cell blows the budget keeps its finished reps and skips larger N,
// always with an explicit SKIPPED line.
//
// The gate (applied by -quick and -check) encodes the acceptance claims:
// at every oversubscribed point the goroutine-native lock must hold
// parity with sync.Mutex (>= parityMargin of its throughput) and beat the
// socket-grouped ShflLock (>= beatMargin of its throughput).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shfllock/internal/lockreg"
)

const (
	lockSync = "sync.Mutex"
	lockShfl = "shfl-mutex"
	lockGoro = "goro"

	// parityMargin: goro vs sync.Mutex. "No worse than the standard
	// library" with room for run-to-run noise on a loaded CI box.
	parityMargin = 0.90
	// beatMargin: goro vs the socket-grouped ShflLock. Under
	// oversubscription the fix must actually win, not tie.
	beatMargin = 1.05
	// Quick-mode margins: two-rep single-CPU runs swing +-20% rep to
	// rep, so the live smoke only detects collapse — a regressed goro
	// behaves like the socket-grouped lock and loses the 100k point by
	// >5x, far below these floors. The precision claims above are
	// enforced on the committed 500ms x 3-rep artifact via -check.
	quickParityMargin = 0.60
	quickBeatMargin   = 0.70
)

type locker interface {
	Lock()
	Unlock()
}

// entryOf resolves a lock name through the registry, so every native lock
// is measurable here by any accepted spelling ("sync.Mutex" stays the
// artifact's label for the stdlib baseline).
func entryOf(name string) (lockreg.Entry, error) {
	ent, ok := lockreg.Find(strings.TrimSpace(name))
	if !ok || !ent.HasNative() {
		return lockreg.Entry{}, lockreg.UnknownNative(name)
	}
	return ent, nil
}

func newLock(name string) locker {
	ent, err := entryOf(name)
	if err != nil {
		panic(err)
	}
	h, err := ent.NewNative()
	if err != nil {
		panic(err)
	}
	return h
}

// Result is one (lock, goroutines) cell.
type Result struct {
	Lock       string  `json:"lock"`
	Goroutines int     `json:"goroutines"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Ops        int64   `json:"ops"`
	WindowMs   int64   `json:"window_ms"`
	Reps       int     `json:"reps"`
}

// File is the committed benchmark artifact.
type File struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Window     string   `json:"window"`
	Reps       int      `json:"reps"`
	Results    []Result `json:"results"`
}

// measure runs one rep: spawn n goroutines behind a barrier, open the
// window, count acquisitions. The counter lives under the lock itself, so
// a mutual-exclusion bug shows up as lost updates, not just bad numbers.
// Spawn and drain (stop flag to last goroutine gone) are timed separately
// from the window: at 1M goroutines they dominate wall clock and their
// cost is part of what the cell reports on stderr.
func measure(l locker, n int, window time.Duration) int64 {
	repStart := time.Now()
	var (
		wg      sync.WaitGroup
		start   = make(chan struct{})
		stop    atomic.Bool
		counter int64
		checks  atomic.Int64
	)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for !stop.Load() {
				l.Lock()
				counter++
				l.Unlock()
				checks.Add(1)
			}
		}()
	}
	spawned := time.Now()
	close(start)
	time.Sleep(window)
	stop.Store(true)
	drainFrom := time.Now()
	wg.Wait()
	if counter != checks.Load() {
		fmt.Fprintf(os.Stderr, "LOST UPDATES: %d under lock vs %d observed\n", counter, checks.Load())
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "    rep: n=%d ops=%d spawn=%v drain=%v\n",
		n, counter, spawned.Sub(repStart).Round(time.Millisecond), time.Since(drainFrom).Round(time.Millisecond))
	return counter
}

// cellBudget bounds one (lock, N) cell's wall clock. The socket-grouped
// lock collapses superlinearly past ~10k waiters on a small-P box (each
// handoff latency includes the single-P 100µs sleep pacing and shuffle
// walks over an enormous queue), so without a cap one legacy cell eats
// the whole run. A cell that blows the budget keeps the reps it finished
// and the lock skips larger N — loudly, never silently.
func bench(locks []string, counts []int, window time.Duration, reps int, cellBudget time.Duration, maxN map[string]int) []Result {
	var out []Result
	skipped := map[string]int{} // lock -> N whose cell blew the budget
	for _, n := range counts {
		for _, name := range locks {
			if limit, ok := maxN[canonName(name)]; ok && n > limit {
				fmt.Printf("%-12s %8d goroutines: SKIPPED (-max-n caps %s at %d)\n", name, n, name, limit)
				continue
			}
			if at, ok := skipped[name]; ok {
				fmt.Printf("%-12s %8d goroutines: SKIPPED (cell budget %v blown at n=%d)\n", name, n, cellBudget, at)
				continue
			}
			var best int64
			done := 0
			cellStart := time.Now()
			for r := 0; r < reps; r++ {
				ops := measure(newLock(name), n, window)
				done++
				if ops > best {
					best = ops
				}
				if time.Since(cellStart) > cellBudget {
					skipped[name] = n
					break
				}
			}
			res := Result{
				Lock:       name,
				Goroutines: n,
				Ops:        best,
				OpsPerSec:  float64(best) / window.Seconds(),
				WindowMs:   window.Milliseconds(),
				Reps:       done,
			}
			out = append(out, res)
			fmt.Printf("%-12s %8d goroutines: %12.0f ops/s\n", res.Lock, n, res.OpsPerSec)
		}
	}
	return out
}

// gate applies the acceptance claims to a result set, judging each claim
// wherever its pair of locks was measured (the socket-grouped lock gets
// so slow past ~10k waiters that large-N cells may legitimately be
// absent — see the scale cap in bench). Oversubscription means
// goroutines > 4x the GOMAXPROCS recorded in the file, matching the
// runtimeq default factor.
func gate(f File, parityFloor, beatFloor float64) error {
	type cell map[string]float64
	byN := map[int]cell{}
	for _, r := range f.Results {
		if byN[r.Goroutines] == nil {
			byN[r.Goroutines] = cell{}
		}
		byN[r.Goroutines][r.Lock] = r.OpsPerSec
	}
	var ns []int
	for n := range byN {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	parityPts, beatPts := 0, 0
	for _, n := range ns {
		if n <= 4*f.GOMAXPROCS {
			continue // not oversubscribed; no claim at this point
		}
		c := byN[n]
		s, g, sh := c[lockSync], c[lockGoro], c[lockShfl]
		if s > 0 && g > 0 {
			parityPts++
			if g < parityFloor*s {
				return fmt.Errorf("goro lost parity with sync.Mutex at %d goroutines: %.0f vs %.0f ops/s (floor %.0f%%)",
					n, g, s, parityFloor*100)
			}
		}
		if sh > 0 && g > 0 {
			beatPts++
			if g < beatFloor*sh {
				return fmt.Errorf("goro did not beat the socket-grouped ShflLock at %d goroutines: %.0f vs %.0f ops/s (need %.0f%%)",
					n, g, sh, beatFloor*100)
			}
		}
	}
	if parityPts == 0 || beatPts == 0 {
		return fmt.Errorf("not enough oversubscribed points to judge (parity %d, beat %d)", parityPts, beatPts)
	}
	return nil
}

// canonName maps any accepted spelling to the registry's canonical name,
// so -max-n and -locks agree however the user spells a lock.
func canonName(name string) string {
	if ent, err := entryOf(name); err == nil {
		return ent.Name
	}
	return name
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad goroutine count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	countsFlag := flag.String("goroutines", "10000,100000,1000000", "comma-separated goroutine counts")
	locksFlag := flag.String("locks", strings.Join([]string{lockSync, lockShfl, lockGoro}, ","), "comma-separated locks to measure")
	window := flag.Duration("window", 500*time.Millisecond, "measurement window per rep")
	reps := flag.Int("reps", 3, "reps per cell (best is reported)")
	out := flag.String("out", "", "write results JSON to this file")
	quick := flag.Bool("quick", false, "reduced matrix + gate: the verify.sh smoke mode")
	check := flag.String("check", "", "gate an existing results JSON file and exit")
	cellBudget := flag.Duration("cell-budget", 2*time.Minute, "wall-clock budget per (lock, N) cell; a lock that blows it skips larger N")
	// The default cap is measured, not guessed: one shfl-mutex rep at 100k
	// goroutines exceeds 15 minutes on the reference box (GOMAXPROCS=1) —
	// each handoff to a waiter stuck in single-P 100µs sleep pacing plus
	// shuffle walks over a 100k-node queue. That collapse IS the result;
	// one capped row records it without eating the run.
	maxNFlag := flag.String("max-n", lockShfl+"=10000", "per-lock goroutine-count caps, lock=N[,lock=N]; empty lifts all caps")
	flag.Parse()

	if *check != "" {
		b, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var f File
		if err := json.Unmarshal(b, &f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *check, err)
			os.Exit(1)
		}
		if err := gate(f, parityMargin, beatMargin); err != nil {
			fmt.Fprintf(os.Stderr, "GATE FAILED on %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("gate passed on %s (%d results)\n", *check, len(f.Results))
		return
	}

	counts, err := parseCounts(*countsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	locks := strings.Split(*locksFlag, ",")
	for _, name := range locks {
		if _, err := entryOf(name); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	maxN := map[string]int{}
	if *maxNFlag != "" {
		for _, f := range strings.Split(*maxNFlag, ",") {
			lock, ns, ok := strings.Cut(f, "=")
			n, err := strconv.Atoi(ns)
			if !ok || err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad -max-n entry %q (want lock=N)\n", f)
				os.Exit(2)
			}
			// A cap for a misspelled lock would be dropped on the floor and
			// the run would silently measure the uncapped cell; validate
			// against the registry and key caps by canonical name.
			ent, err2 := entryOf(lock)
			if err2 != nil {
				fmt.Fprintf(os.Stderr, "bad -max-n entry %q: %v\n", f, err2)
				os.Exit(2)
			}
			maxN[ent.Name] = n
		}
	}
	var results []Result
	fmtHeader := func() {
		fmt.Printf("GOMAXPROCS=%d window=%v reps=%d\n", runtime.GOMAXPROCS(0), *window, *reps)
	}
	if *quick {
		// Two rows: all three locks at 10k (the only point where the
		// socket-grouped lock finishes promptly), then sync vs goro at
		// 100k — the point a regressed goro cannot fake, since sync
		// itself drops ~5x there and a goro that lost its grouping or
		// park pacing drops with it. The window stays at the full
		// 500ms: sync.Mutex's convoy collapse takes ~200ms to build,
		// and shorter windows measure the ramp, inflating sync 2x and
		// flipping the verdict at random.
		*reps = 2
		fmtHeader()
		results = bench([]string{lockSync, lockShfl, lockGoro}, []int{10_000}, *window, *reps, *cellBudget, maxN)
		results = append(results, bench([]string{lockSync, lockGoro}, []int{100_000}, *window, *reps, *cellBudget, maxN)...)
	} else {
		fmtHeader()
		results = bench(locks, counts, *window, *reps, *cellBudget, maxN)
	}
	f := File{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Window:     window.String(),
		Reps:       *reps,
		Results:    results,
	}

	if *out != "" {
		b, _ := json.MarshalIndent(f, "", "  ")
		b = append(b, '\n')
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *quick {
		if err := gate(f, quickParityMargin, quickBeatMargin); err != nil {
			fmt.Fprintf(os.Stderr, "GATE FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("goroscale gate passed")
	}
}
