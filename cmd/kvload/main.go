// Command kvload drives a kvserver instance with the seeded, open-loop
// load generator (internal/loadgen): arrivals happen at the configured
// offered rate no matter how fast the server responds, latency is measured
// from each op's scheduled arrival (no coordinated omission), and the
// canonical three-phase script — read-mostly, write-storm, churn — shifts
// the read/write mix so an adaptive lock policy has something to adapt to.
//
// Modes:
//
//	kvload -url http://host:port [-rate 2000] [-secs 5] [-seed 1] [-json out.json]
//	    run the phase script, print (or write) the per-phase JSON summary
//	kvload -url http://host:port -smoke
//	    short seeded run, then assert: ops completed, zero mutual-exclusion
//	    violations, /debug/lockstat parses; exit non-zero otherwise
//	kvload -merge out.json frag1.json frag2.json...
//	    assemble per-run fragments into one benchmark document
//
// A 503 from the server counts as a timeout (the shedding behavior is
// under test), a 404 on GET counts as success (the key legitimately does
// not exist), and in churn phases the client drops idle connections
// periodically to model a rotating user population.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"shfllock/internal/kvserver"
	"shfllock/internal/loadgen"
)

// httpTarget maps loadgen ops onto the kvserver HTTP surface.
type httpTarget struct {
	base   string
	client *http.Client
	tr     *http.Transport
}

func newHTTPTarget(base string, workers int) *httpTarget {
	tr := &http.Transport{
		MaxIdleConns:        workers + 8,
		MaxIdleConnsPerHost: workers + 8,
		IdleConnTimeout:     30 * time.Second,
	}
	return &httpTarget{base: base, client: &http.Client{Transport: tr}, tr: tr}
}

// Churn implements loadgen.Churner: drop idle connections so the next ops
// pay connection setup, like a fresh user would.
func (t *httpTarget) Churn() { t.tr.CloseIdleConnections() }

func (t *httpTarget) Do(ctx context.Context, op *loadgen.Op) error {
	var req *http.Request
	var err error
	switch op.Kind {
	case loadgen.Get:
		req, err = http.NewRequestWithContext(ctx, "GET", t.base+"/kv/"+op.Key, nil)
	case loadgen.Put:
		req, err = http.NewRequestWithContext(ctx, "PUT", t.base+"/kv/"+op.Key, io.NopCloser(stringReader(op.Val)))
	case loadgen.Delete:
		req, err = http.NewRequestWithContext(ctx, "DELETE", t.base+"/kv/"+op.Key, nil)
	case loadgen.Scan:
		req, err = http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/scan?start=%s&limit=%d", t.base, op.Key, op.Limit), nil)
	default:
		return fmt.Errorf("unknown op kind %v", op.Kind)
	}
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err // ctx deadline surfaces here; loadgen classifies it
	}
	// Latency includes the full transfer: scans stream their entries.
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if cerr != nil {
		return cerr
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		return fmt.Errorf("%s: %w", op.Kind, loadgen.ErrOverload)
	case resp.StatusCode == http.StatusNotFound && op.Kind == loadgen.Get:
		return nil // absent key: a correct answer, not a failure
	case resp.StatusCode >= 400:
		return fmt.Errorf("%s %s: HTTP %d", op.Kind, op.Key, resp.StatusCode)
	}
	return nil
}

func stringReader(s string) *io.SectionReader {
	return io.NewSectionReader(readerAt(s), 0, int64(len(s)))
}

type readerAt string

func (r readerAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(r)) {
		return 0, io.EOF
	}
	n := copy(p, r[off:])
	if off+int64(n) == int64(len(r)) {
		return n, io.EOF
	}
	return n, nil
}

// runResult is one kvload run: the loadgen summary plus the server's view.
type runResult struct {
	Label    string                  `json:"label"` // lock impl under test
	URL      string                  `json:"url"`
	Rate     float64                 `json:"rate"`
	Result   loadgen.Result          `json:"result"`
	Lockstat *kvserver.DebugLockstat `json:"lockstat,omitempty"`
}

// benchDoc is the merged benchmark document (BENCH_kvserve.json).
type benchDoc struct {
	Schema string      `json:"schema"`
	Runs   []runResult `json:"runs"`
}

func main() {
	url := flag.String("url", "", "kvserver base URL (http://host:port)")
	rate := flag.Float64("rate", 2000, "offered ops/sec per phase")
	secs := flag.Float64("secs", 5, "seconds per phase")
	seed := flag.Int64("seed", 1, "op-stream seed")
	keys := flag.Int("keys", 100_000, "key-space size (match the server's -preload)")
	workers := flag.Int("workers", 64, "concurrent request slots")
	timeout := flag.Duration("timeout", 50*time.Millisecond, "per-op deadline from scheduled arrival")
	label := flag.String("label", "", "label for the run (the server's lock mode)")
	jsonOut := flag.String("json", "", "write the run summary JSON here (default stdout)")
	smoke := flag.Bool("smoke", false, "short run + invariant assertions (verify.sh gate)")
	merge := flag.String("merge", "", "merge fragment files (args) into this benchmark JSON and exit")
	checkAdaptive := flag.Bool("check-adaptive", false,
		"with -merge: fail unless adaptive's best-rep point-op p99 matches or beats every static's, per phase and rate")
	flag.Parse()

	if *merge != "" {
		if err := mergeFragments(*merge, flag.Args(), *checkAdaptive); err != nil {
			fmt.Fprintln(os.Stderr, "kvload:", err)
			os.Exit(1)
		}
		return
	}
	if *url == "" {
		fmt.Fprintln(os.Stderr, "kvload: -url is required (or -merge)")
		os.Exit(2)
	}

	cfg := loadgen.Config{
		Seed:    *seed,
		Keys:    *keys,
		Workers: *workers,
		Timeout: *timeout,
		Phases:  loadgen.Script(*rate, *secs),
	}
	if *smoke {
		cfg.Phases = loadgen.Script(500, 0.6)
		cfg.Workers = 16
	}
	target := newHTTPTarget(*url, cfg.Workers)

	res := loadgen.Run(cfg, target)
	run := runResult{Label: *label, URL: *url, Rate: *rate, Result: res}
	if ls, err := fetchLockstat(*url); err == nil {
		run.Lockstat = ls
	} else if *smoke {
		fmt.Fprintln(os.Stderr, "kvload: /debug/lockstat:", err)
		os.Exit(1)
	}

	out := os.Stdout
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvload:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	enc.Encode(run)

	if *smoke {
		if err := smokeAssert(run); err != nil {
			fmt.Fprintln(os.Stderr, "kvload: SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "kvload: smoke ok")
	}
}

// fetchLockstat pulls the server's lifetime lockstat report.
func fetchLockstat(base string) (*kvserver.DebugLockstat, error) {
	resp, err := http.Get(base + "/debug/lockstat?lifetime=1")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var d kvserver.DebugLockstat
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("unparseable /debug/lockstat: %w", err)
	}
	return &d, nil
}

// smokeAssert holds the verify.sh invariants: traffic flowed, mutual
// exclusion held, and the lockstat cross-counters are sane.
func smokeAssert(run runResult) error {
	var ops, errs uint64
	for _, ph := range run.Result.Phases {
		ops += ph.Ops
		errs += ph.Errors
	}
	if ops == 0 {
		return fmt.Errorf("no operations completed")
	}
	if errs > 0 {
		return fmt.Errorf("%d non-timeout errors", errs)
	}
	ls := run.Lockstat
	if ls == nil {
		return fmt.Errorf("no /debug/lockstat report")
	}
	if ls.Violations != 0 {
		return fmt.Errorf("%d mutual-exclusion violations", ls.Violations)
	}
	var acquires uint64
	for _, sh := range ls.Shards {
		acquires += sh.Report.Acquires
	}
	if acquires == 0 {
		return fmt.Errorf("lockstat saw no acquisitions")
	}
	return nil
}

// mergeFragments assembles per-run JSON files into one benchmark document.
// With check set it enforces the adaptive claim: at every (rate, phase)
// cell, the adaptive run's steady-state point-op p99 must not exceed any
// static lock's.
func mergeFragments(out string, frags []string, check bool) error {
	doc := benchDoc{Schema: "kvserve-bench-v1"}
	for _, f := range frags {
		b, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var r runResult
		if err := json.Unmarshal(b, &r); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		doc.Runs = append(doc.Runs, r)
	}
	// The committed document stays summary-level; the per-run fragments are
	// the histogram carrier (the adaptive check compares per-rep p99s).
	for i := range doc.Runs {
		for j := range doc.Runs[i].Result.Phases {
			doc.Runs[i].Result.Phases[j].PointHist = nil
		}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	if check {
		return checkAdaptiveWins(doc)
	}
	return nil
}

// checkAdaptiveWins verifies adaptive p99 <= best static p99 per (rate,
// phase) and prints the comparison table.
//
// Estimator: every label's repetitions of a cell collapse to the minimum
// of their per-rep p99s, symmetrically for adaptive and statics. The noise
// that matters on a shared single-CPU box is run-scoped and strictly
// additive: a host-level stall parks the whole service for tens to
// hundreds of milliseconds and inflates that entire run's tail (observed:
// a half-second outage, 520 timeouts, in one rep of an otherwise 3ms
// cell; roughly a third of runs catch one). A stall can only ever add
// latency, so each label's least-contaminated observation — the minimum
// over reps whose run order rotates between passes — is the closest
// available estimate of its true steady-state tail; medians or pooled
// histograms both let the contaminated majority/minority bleed in. The
// fragments still embed full histograms for offline analysis.
//
// Comparison: adaptive is compared against the *minimum* over four static
// estimates drawn from the same noise, and the minimum of four noisy draws
// sits systematically below any single draw's true value. So the check
// allows a measurement-resolution band: 10% of the best static plus a 1ms
// floor. The floor is the scheduler's quantum — a p99 here sits on a few
// dozen samples, and whether a handful of them caught a CFS timeslice
// boundary on the saturated CPU moves the estimate by exactly that
// quantum; empirically, identical configurations' best-rep p99s moved by
// 0.4–1.0ms between full five-rep sweeps, so sub-millisecond differences
// are below what this box can resolve. Within the band the cell is a
// statistical tie and adaptive has matched the best static; beyond it the
// loss is real and the check fails. The genuine lock-choice effects the
// benchmark exists to show (mutex-shaped locks under scan traffic) are
// 10–25ms gaps, an order of magnitude outside the band. The raw numbers
// are always printed, so the band hides nothing.
func checkAdaptiveWins(doc benchDoc) error {
	type cell struct {
		rate  float64
		phase string
	}
	cells := map[cell]map[string][]float64{} // cell -> label -> per-rep p99s
	for _, run := range doc.Runs {
		for _, ph := range run.Result.Phases {
			c := cell{run.Rate, ph.Name}
			if cells[c] == nil {
				cells[c] = map[string][]float64{}
			}
			cells[c][run.Label] = append(cells[c][run.Label], ph.P99)
		}
	}
	failed, total := 0, 0
	for c, byLabel := range cells {
		ap, ok := byLabel["adaptive"]
		if !ok {
			return fmt.Errorf("check-adaptive: no run labeled %q at rate=%g phase=%s", "adaptive", c.rate, c.phase)
		}
		best, bestName := 0.0, ""
		for label, reps := range byLabel {
			if label == "adaptive" {
				continue
			}
			if m := minOf(reps); bestName == "" || m < best {
				best, bestName = m, label
			}
		}
		if bestName == "" {
			return fmt.Errorf("check-adaptive: no static runs at rate=%g phase=%s", c.rate, c.phase)
		}
		am := minOf(ap)
		tol := 0.10*best + 1.0
		total++
		verdict := "OK  "
		switch {
		case am > best+tol:
			verdict = "LOSS"
			failed++
		case am > best:
			verdict = "TIE " // within measurement resolution of the best static
		}
		fmt.Fprintf(os.Stderr, "%s rate=%-6g %-12s adaptive p99=%7.2fms best-static p99=%7.2fms (%s, min of %d reps)\n",
			verdict, c.rate, c.phase, am, best, bestName, len(ap))
	}
	if failed > 0 {
		return fmt.Errorf("check-adaptive: adaptive lost %d of %d cells", failed, total)
	}
	return nil
}

// minOf returns the smallest element of a non-empty slice.
func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
