// Command kvserver runs the sharded in-memory KV service
// (internal/kvserver) over HTTP: every request acquires its shard's lock
// with a per-request deadline via LockContext, so overload degrades to
// fast 503s, and /debug/lockstat exposes the per-shard lockstat interval
// report live. With -lock adaptive (the default) a controller switches
// each shard between the RW-biased and plain-mutex ShflLocks as its
// traffic shifts.
//
// Usage:
//
//	kvserver [-addr 127.0.0.1:8080] [-lock adaptive|<any native registry lock>]
//	         [-shards 8] [-req-timeout 25ms] [-preload 100000] [-scan-pace 100us]
//	         [-ctl-interval 100ms] [-ctl-min-ops 0] [-ctl-home auto] [-port-file path] [-max-runtime 0]
//
// The server shuts down cleanly on SIGINT/SIGTERM or after -max-runtime
// (0 = run forever). -port-file, written after the listener is bound,
// holds the actual host:port — pass -addr 127.0.0.1:0 and read the file to
// coordinate with a scripted client (verify.sh does).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shfllock/internal/kvserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port, port 0 picks a free one)")
	lock := flag.String("lock", kvserver.ImplAdaptive,
		"shard lock: "+kvserver.ImplAdaptive+", "+strings.Join(kvserver.Impls, ", "))
	shards := flag.Int("shards", 8, "number of shards")
	reqTimeout := flag.Duration("req-timeout", 25*time.Millisecond, "per-request lock deadline")
	preload := flag.Int("preload", 100_000, "keys preloaded at startup (k00000000..)")
	scanPace := flag.Duration("scan-pace", 100*time.Microsecond, "default inter-entry scan pacing")
	ctlInterval := flag.Duration("ctl-interval", 100*time.Millisecond, "adaptive controller poll interval")
	ctlMinOps := flag.Uint64("ctl-min-ops", 0, "min ops per shard per interval before the controller judges (0 = package default)")
	ctlHome := flag.String("ctl-home", "", "adaptive home lock family: shfl, sync, or empty for auto (sync on a single-P runtime)")
	portFile := flag.String("port-file", "", "write the bound host:port to this file once listening")
	maxRuntime := flag.Duration("max-runtime", 0, "exit cleanly after this long (0 = run until signalled)")
	flag.Parse()

	srv, err := kvserver.New(kvserver.Config{
		Shards:      *shards,
		Lock:        *lock,
		ReqTimeout:  *reqTimeout,
		PreloadKeys: *preload,
		ScanPace:    *scanPace,
		CtlInterval: *ctlInterval,
		CtlMinOps:   *ctlMinOps,
		CtlHome:     *ctlHome,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(2)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(2)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kvserver:", err)
			os.Exit(2)
		}
	}
	fmt.Printf("kvserver: listening on %s (lock=%s shards=%d preload=%d)\n",
		ln.Addr(), *lock, *shards, *preload)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var timeC <-chan time.Time
	if *maxRuntime > 0 {
		timeC = time.After(*maxRuntime)
	}
	select {
	case s := <-sig:
		fmt.Printf("kvserver: %v, shutting down\n", s)
	case <-timeC:
		fmt.Println("kvserver: max runtime reached, shutting down")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "kvserver:", err)
			os.Exit(1)
		}
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver: shutdown:", err)
		os.Exit(1)
	}
	if v := srv.Violations(); v != 0 {
		fmt.Fprintf(os.Stderr, "kvserver: %d mutual-exclusion violations\n", v)
		os.Exit(1)
	}
	fmt.Println("kvserver: bye")
}
