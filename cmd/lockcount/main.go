// Command lockcount reproduces the method behind Figure 2: it counts lock
// API call sites in a source tree. Pointed at successive releases of a
// kernel (or any codebase), it produces the growth curve of lock usage.
//
// Usage: lockcount [-ext .c,.h,.go] <dir>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// patterns match the common lock-acquire call spellings in C and Go.
var patterns = []*regexp.Regexp{
	regexp.MustCompile(`\bspin_lock(_irq|_irqsave|_bh)?\s*\(`),
	regexp.MustCompile(`\bmutex_lock(_interruptible|_killable)?\s*\(`),
	regexp.MustCompile(`\b(down|up)_(read|write)\s*\(`),
	regexp.MustCompile(`\bread_lock\s*\(|\bwrite_lock\s*\(`),
	regexp.MustCompile(`\braw_spin_lock\w*\s*\(`),
	regexp.MustCompile(`\.\s*Lock\s*\(\s*\)`),
	regexp.MustCompile(`\.\s*RLock\s*\(\s*\)`),
}

func main() {
	ext := flag.String("ext", ".c,.h,.go", "comma-separated file extensions to scan")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lockcount [-ext .c,.h,.go] <dir>")
		os.Exit(2)
	}
	exts := map[string]bool{}
	for _, e := range strings.Split(*ext, ",") {
		exts[strings.TrimSpace(e)] = true
	}

	perDir := map[string]int{}
	total, files := 0, 0
	err := filepath.WalkDir(flag.Arg(0), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !exts[filepath.Ext(path)] {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil
		}
		defer f.Close()
		files++
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		n := 0
		for sc.Scan() {
			line := sc.Text()
			for _, p := range patterns {
				n += len(p.FindAllStringIndex(line, -1))
			}
		}
		total += n
		perDir[filepath.Dir(path)] += n
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scan failed:", err)
		os.Exit(1)
	}

	type row struct {
		dir string
		n   int
	}
	rows := make([]row, 0, len(perDir))
	for d, n := range perDir {
		if n > 0 {
			rows = append(rows, row{d, n})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("%d lock call sites across %d files\n\ntop directories:\n", total, files)
	for i, r := range rows {
		if i == 15 {
			break
		}
		fmt.Printf("  %6d  %s\n", r.n, r.dir)
	}
}
