// Command locktorture stress-tests the native lock implementations the way
// the kernel's locktorture module does: a mix of lockers with random hold
// and think times, periodic TryLock barging, and continuous invariant
// checking (single writer, bounded readers).
//
// With -lockstat the tortured lock is wrapped in a lockstat site: a live
// lock_stat-style report is printed once a second and a final report (with
// cross-counter consistency verification) after the run.
//
// With -abort-frac a fraction of acquisitions run abortable — alternating
// LockTimeout and LockContext with tight random budgets — so the
// abandonment protocol is tortured alongside plain acquisitions.
//
// With -chaos the torture runs on the simulator instead: a seeded,
// replayable fault schedule (shuffler preemption, holder stalls, waiter
// timeouts, spurious wakeups) whose fault log and summary are
// byte-identical for a given -chaos-seed. -chaos-deadlock injects a
// permanent holder stall and expects the starvation watchdog to fire and
// dump the frozen scheduler state instead of hanging.
//
// The -lock value set, its help text, and every capability check (-policy,
// -abort-frac, RW vs mutex torture) come from the lock registry
// (internal/lockreg), so adding an algorithm there makes it torturable here
// with no edit to this file.
//
// Usage: locktorture [-lock <name>] [-list]
// [-policy numa|prio|...] [-threads 16] [-duration 5s] [-sockets 4]
// [-lockstat] [-abort-frac 0.2] [-watchdog 10s] [-deadline 2m]
// [-chaos] [-chaos-seed 42] [-chaos-lock shfllock-b] [-chaos-deadlock]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shfllock/internal/chaos"
	"shfllock/internal/core"
	"shfllock/internal/lockreg"
	"shfllock/internal/lockstat"
	"shfllock/internal/runtimeq"
	"shfllock/internal/shuffle"
	"shfllock/internal/sim"
)

type locker interface {
	Lock()
	Unlock()
	TryLock() bool
}

type rwLocker interface {
	Lock()
	Unlock()
	RLock()
	RUnlock()
}

// abortLocker is the abortable-acquisition surface of the native ShflLock
// family (SpinLock, Mutex, RWMutex).
type abortLocker interface {
	LockTimeout(d time.Duration) bool
	LockContext(ctx context.Context) error
}

func main() {
	var (
		lockName  = flag.String("lock", "mutex", "lock to torture: "+lockreg.NativeFlagHelp())
		listLocks = flag.Bool("list", false, "list the torturable locks with substrates and capabilities")
		threads   = flag.Int("threads", 16, "torture goroutines")
		duration  = flag.Duration("duration", 5*time.Second, "how long to run")
		sockets   = flag.Int("sockets", 4, "sockets assumed by the shuffling policy")
		policy    = flag.String("policy", "", "shuffling policy for the ShflLock family (default numa; \"auto\" is the self-tuning meta-policy and implies -lockstat)")
		stat      = flag.Bool("lockstat", false, "instrument the lock and print lock_stat-style reports")
		abortFrac = flag.Float64("abort-frac", 0, "fraction of acquisitions run via LockTimeout/LockContext (ShflLock family only)")
		watchdog  = flag.Duration("watchdog", 0, "dump goroutine stacks and exit 2 if no acquisition completes for this long")
		deadline  = flag.Duration("deadline", 0, "dump goroutine stacks and exit 2 if the whole run exceeds this")

		chaosMode     = flag.Bool("chaos", false, "run the deterministic simulated chaos torture instead")
		chaosSeed     = flag.Int64("chaos-seed", 42, "fault-schedule seed for -chaos (same seed => byte-identical output)")
		chaosLock     = flag.String("chaos-lock", "shfllock-b", "simulated lock to torture under -chaos")
		chaosDeadlock = flag.Bool("chaos-deadlock", false, "inject a permanent holder stall; the run passes only if the watchdog fires")
		chaosFlip     = flag.Bool("chaos-flip", false, "arm the policy-flip fault: forced live policy transitions at the mid-shuffle, abort-reclaim and head-abdication moments")
	)
	flag.Parse()
	core.SetSockets(*sockets)

	if *listLocks {
		fmt.Printf("%-18s %-10s %s\n", "lock", "substrates", "capabilities")
		for _, e := range lockreg.All() {
			fmt.Printf("%-18s %-10s %s\n", e.Name, e.Substrates(), e.Caps)
		}
		return
	}
	if *chaosMode {
		runChaos(*chaosSeed, *chaosLock, *chaosDeadlock, *chaosFlip)
		return
	}
	if *deadline > 0 {
		time.AfterFunc(*deadline, func() {
			dumpStacks(fmt.Sprintf("DEADLINE EXCEEDED: run did not finish within %v", *deadline))
		})
	}

	var pol shuffle.Policy
	var meta *shuffle.Meta
	if *policy != "" {
		if pol = shuffle.ByName(*policy); pol == nil {
			fmt.Fprintf(os.Stderr, "unknown policy %q (have: %s)\n",
				*policy, strings.Join(shuffle.Names(), " "))
			os.Exit(2)
		}
		if m, isMeta := pol.(*shuffle.Meta); isMeta {
			// The meta-policy tunes itself from the lock's own lockstat
			// interval diffs, so -policy auto forces instrumentation on.
			meta = m
			*stat = true
		}
	}

	// The flag combination states the required capabilities; construction
	// through the registry fails loudly if the named algorithm lacks one
	// (e.g. -abort-frac on a lock without abortable acquisition).
	ent, ok := lockreg.Find(*lockName)
	if !ok || !ent.HasNative() {
		fmt.Fprintln(os.Stderr, lockreg.UnknownNative(*lockName))
		os.Exit(2)
	}
	var need []lockreg.Cap
	if pol != nil {
		need = append(need, lockreg.CapPolicy)
	}
	if meta != nil {
		need = append(need, lockreg.CapSelfTuning)
	}
	if *abortFrac > 0 {
		need = append(need, lockreg.CapAbortable)
	}

	// attachMeta wires the meta-policy's observation loop to the tortured
	// lock's own site and arranges the stage-transition tail to print at
	// exit. Call after Instrument has registered the site.
	attachMeta := func() {
		if meta == nil {
			return
		}
		meta.SetSource(lockstat.MetaSource(lockstat.Default.Site("torture/"+ent.Name), runtimeq.Oversubscribed))
		meta.SetClock(func() uint64 { return uint64(time.Now().UnixNano()) })
	}
	printTransitions := func() {
		if meta == nil {
			return
		}
		fmt.Println("--- policy transitions (auto) ---")
		fmt.Print(meta.Log().String())
	}

	if ent.Has(lockreg.CapRW) {
		h, err := ent.NewNativeRW(need...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Only override the policy when one was asked for: the goro
		// constructor pre-installs its own, and SetPolicy(nil) would
		// silently replace it with the NUMA default.
		if pol != nil {
			h.SetPolicy(pol)
		}
		var l rwLocker = h.RWLocker
		if *stat {
			l = lockstat.InstrumentRW(h.RWLocker, "torture/"+ent.Name)
			attachMeta()
			defer finalReport()
			stopLive := liveReports(*duration)
			defer stopLive()
		}
		defer printTransitions()
		tortureRW(ent.Name, l, h.Abort, *threads, *duration, *abortFrac, *watchdog)
		return
	}

	h, err := ent.NewNative(need...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if pol != nil {
		h.SetPolicy(pol)
	}
	var l locker = h.Locker
	var al abortLocker
	if h.Abort != nil {
		al = h.Abort
	}
	if *stat {
		// Instrument wraps the underlying lock itself (not the registry
		// handle), so its probe discovery still sees SetProbe on the
		// ShflLocks and abortable acquisitions made directly on the lock
		// feed the abort/reclaim counters; the wrapper adds wait/hold
		// sampling on the plain path.
		l = lockstat.Instrument(h.Locker, "torture/"+ent.Name)
		attachMeta()
		defer finalReport()
		stopLive := liveReports(*duration)
		defer stopLive()
	}
	defer printTransitions()

	var stop atomic.Bool
	var inCS atomic.Int32
	var acquires, tries, violations atomic.Int64
	var timeouts, abortOK atomic.Int64
	stopWD := startWatchdog(*watchdog, func() int64 { return acquires.Load() })
	defer stopWD()
	var wg sync.WaitGroup
	for g := 0; g < *threads; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				got := false
				switch {
				case al != nil && rng.Float64() < *abortFrac:
					got = abortableAcquire(al, rng)
					if got {
						abortOK.Add(1)
					} else {
						timeouts.Add(1)
					}
				case rng.Intn(8) == 0:
					got = l.TryLock()
					tries.Add(1)
				default:
					l.Lock()
					got = true
				}
				if !got {
					continue
				}
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				for i := 0; i < rng.Intn(200); i++ {
					_ = i
				}
				inCS.Add(-1)
				l.Unlock()
				acquires.Add(1)
			}
		}(int64(g) + 1)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("lock=%s threads=%d duration=%v\n", ent.Name, *threads, *duration)
	fmt.Printf("acquires=%d trylocks=%d violations=%d\n", acquires.Load(), tries.Load(), violations.Load())
	if *abortFrac > 0 {
		fmt.Printf("abortable: acquired=%d timeouts=%d\n", abortOK.Load(), timeouts.Load())
	}
	if violations.Load() > 0 {
		fmt.Println("TORTURE FAILED: mutual exclusion violated")
		os.Exit(1)
	}
	fmt.Println("torture passed")
}

// abortableAcquire alternates the two abort surfaces with tight budgets so
// both the timeout and the context cancellation paths abandon for real.
func abortableAcquire(al abortLocker, rng *rand.Rand) bool {
	d := time.Duration(rng.Intn(200)) * time.Microsecond
	if rng.Intn(2) == 0 {
		return al.LockTimeout(d)
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return al.LockContext(ctx) == nil
}

// runChaos executes the simulated chaos torture: deterministic for a seed,
// so two invocations with the same flags print byte-identical output. The
// lock name goes through the registry, so both canonical names
// ("shfl-mutex") and simulator maker names ("shfllock-b") work; abort
// injection is disarmed automatically for locks without the capability.
func runChaos(seed int64, lock string, deadlock, flip bool) {
	ent, ok := lockreg.Find(lock)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown lock %q (simulated locks: %s)\n", lock, strings.Join(lockreg.SimNames(), "|"))
		os.Exit(2)
	}
	if _, simOK := ent.SimMaker(); !simOK {
		fmt.Fprintf(os.Stderr, "lock %q has no simulated mutex implementation (substrates: %s)\n", ent.Name, ent.Substrates())
		os.Exit(2)
	}
	cfg := chaos.Defaults(seed)
	if flip {
		cfg = chaos.FlipDefaults(seed)
	}
	cfg.Lock = ent.SimName()
	if !ent.Has(lockreg.CapAbortable) {
		cfg.AbortFrac = 0
	}
	if deadlock {
		cfg.Deadlock = true
		cfg.WatchdogInterval = 1_000_000
		cfg.WatchdogThreshold = 20_000_000
	}
	r, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The flip marker is appended only when armed so the pre-existing
	// flip-free golden stays byte-identical.
	header := fmt.Sprintf("chaos lock=%s seed=%d workers=%d iters=%d deadlock=%v",
		cfg.Lock, cfg.Seed, cfg.Workers, cfg.Iters, cfg.Deadlock)
	if flip {
		header += " flip=true"
	}
	fmt.Println(header)
	fmt.Print(r.Log.String())
	fmt.Print(r.Summary())
	if r.MutualExclusionViolations > 0 {
		fmt.Println("CHAOS FAILED: mutual exclusion violated")
		os.Exit(1)
	}
	if flip && !deadlock {
		// The flip certification is only meaningful if the schedule actually
		// hit all three transition-adversarial moments and every acquisition
		// is accounted for afterwards.
		for _, m := range []sim.FlipMoment{sim.FlipMidShuffle, sim.FlipAbortReclaim, sim.FlipHeadAbdication} {
			if r.Log.CountArg(chaos.EvPolicyFlip, uint64(m)) == 0 {
				fmt.Printf("CHAOS FAILED: no policy flip landed at the %s moment\n", m)
				os.Exit(1)
			}
		}
		if r.Ops+r.Timeouts != r.Expected {
			fmt.Printf("CHAOS FAILED: lost wakeups — ops=%d timeouts=%d expected=%d\n", r.Ops, r.Timeouts, r.Expected)
			os.Exit(1)
		}
		if r.QueueResidue != "" {
			fmt.Printf("CHAOS FAILED: queue residue after run: %s\n", r.QueueResidue)
			os.Exit(1)
		}
	}
	if deadlock {
		if !r.WatchdogFired {
			fmt.Println("CHAOS FAILED: deadlock injected but watchdog never fired")
			os.Exit(1)
		}
		fmt.Println("--- watchdog post-mortem ---")
		fmt.Print(r.Report)
		fmt.Println("chaos deadlock detected as expected")
		return
	}
	if r.WatchdogFired {
		fmt.Printf("CHAOS FAILED: watchdog fired without an injected deadlock: %s\n", r.WatchdogReason)
		os.Exit(1)
	}
	fmt.Println("chaos torture passed")
}

// dumpStacks prints every goroutine's stack and exits 2 — the torture's
// answer to a hang: diagnose, don't dangle.
func dumpStacks(why string) {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(os.Stderr, "%s\ngoroutine dump:\n%s\n", why, buf[:n])
	os.Exit(2)
}

// startWatchdog dumps stacks and exits if the progress counter stops
// moving for a whole interval. Returns a stop func; no-op when d is 0.
func startWatchdog(d time.Duration, progress func() int64) func() {
	if d <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(d)
		defer tick.Stop()
		last := int64(-1)
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				cur := progress()
				if cur == last {
					dumpStacks(fmt.Sprintf("WATCHDOG: no lock acquired for %v (stuck at %d)", d, cur))
				}
				last = cur
			}
		}
	}()
	return func() { close(done) }
}

// liveReports prints the lockstat report once a second while the torture
// runs; the returned func stops it.
func liveReports(duration time.Duration) func() {
	if duration < 2*time.Second {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Println("--- live lock_stat ---")
				lockstat.WriteText(os.Stdout, lockstat.Default.Reports())
			}
		}
	}()
	return func() { close(done) }
}

// finalReport prints the quiescent report and fails the run if any
// cross-counter invariant is broken (contended > acquires, histogram mass
// != acquires).
func finalReport() {
	fmt.Println("--- final lock_stat ---")
	reps := lockstat.Default.Reports()
	lockstat.WriteText(os.Stdout, reps)
	for _, r := range reps {
		if msg := r.Consistent(); msg != "" {
			fmt.Printf("LOCKSTAT INCONSISTENT: %s\n", msg)
			os.Exit(1)
		}
	}
	fmt.Println("lockstat counters consistent")
}

func tortureRW(name string, l rwLocker, al abortLocker, threads int, duration time.Duration, abortFrac float64, watchdog time.Duration) {
	var stop atomic.Bool
	var readers, writers atomic.Int32
	var rops, wops, violations, timeouts atomic.Int64
	stopWD := startWatchdog(watchdog, func() int64 { return rops.Load() + wops.Load() })
	defer stopWD()
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				if rng.Intn(10) == 0 {
					if abortFrac > 0 && rng.Float64() < abortFrac {
						if !abortableAcquire(al, rng) {
							timeouts.Add(1)
							continue
						}
					} else {
						l.Lock()
					}
					if writers.Add(1) != 1 || readers.Load() != 0 {
						violations.Add(1)
					}
					writers.Add(-1)
					l.Unlock()
					wops.Add(1)
				} else {
					l.RLock()
					readers.Add(1)
					if writers.Load() != 0 {
						violations.Add(1)
					}
					readers.Add(-1)
					l.RUnlock()
					rops.Add(1)
				}
			}
		}(int64(g) + 1)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	fmt.Printf("lock=%s threads=%d duration=%v\n", name, threads, duration)
	fmt.Printf("reads=%d writes=%d violations=%d\n", rops.Load(), wops.Load(), violations.Load())
	if abortFrac > 0 {
		fmt.Printf("abortable: timeouts=%d\n", timeouts.Load())
	}
	if violations.Load() > 0 {
		fmt.Println("TORTURE FAILED")
		os.Exit(1)
	}
	fmt.Println("torture passed")
}
