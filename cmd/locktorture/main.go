// Command locktorture stress-tests the native lock implementations the way
// the kernel's locktorture module does: a mix of lockers with random hold
// and think times, periodic TryLock barging, and continuous invariant
// checking (single writer, bounded readers).
//
// With -lockstat the tortured lock is wrapped in a lockstat site: a live
// lock_stat-style report is printed once a second and a final report (with
// cross-counter consistency verification) after the run.
//
// Usage: locktorture [-lock mutex|spinlock|rwmutex|tas|ticket|mcs]
// [-policy numa|prio|...] [-threads 16] [-duration 5s] [-sockets 4]
// [-lockstat]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shfllock/internal/core"
	"shfllock/internal/lockstat"
	"shfllock/internal/shuffle"
)

type locker interface {
	Lock()
	Unlock()
	TryLock() bool
}

type rwLocker interface {
	Lock()
	Unlock()
	RLock()
	RUnlock()
}

func main() {
	var (
		lockName = flag.String("lock", "mutex", "lock to torture: mutex|spinlock|rwmutex|tas|ticket|mcs")
		threads  = flag.Int("threads", 16, "torture goroutines")
		duration = flag.Duration("duration", 5*time.Second, "how long to run")
		sockets  = flag.Int("sockets", 4, "sockets assumed by the shuffling policy")
		policy   = flag.String("policy", "", "shuffling policy for the ShflLock family (default numa)")
		stat     = flag.Bool("lockstat", false, "instrument the lock and print lock_stat-style reports")
	)
	flag.Parse()
	core.SetSockets(*sockets)

	var pol shuffle.Policy
	if *policy != "" {
		if pol = shuffle.ByName(*policy); pol == nil {
			fmt.Fprintf(os.Stderr, "unknown policy %q (have: %s)\n",
				*policy, strings.Join(shuffle.Names(), " "))
			os.Exit(2)
		}
	}

	if *lockName == "rwmutex" {
		var mu core.RWMutex
		mu.SetPolicy(pol)
		var l rwLocker = &mu
		if *stat {
			l = lockstat.InstrumentRW(&mu, "torture/rwmutex")
			defer finalReport()
			stopLive := liveReports(*duration)
			defer stopLive()
		}
		tortureRW(l, *threads, *duration)
		return
	}

	var l locker
	switch *lockName {
	case "mutex":
		m := &core.Mutex{}
		m.SetPolicy(pol)
		l = m
	case "spinlock":
		s := &core.SpinLock{}
		s.SetPolicy(pol)
		l = s
	case "tas":
		l = &core.TASLock{}
	case "ticket":
		l = &core.TicketLock{}
	case "mcs":
		l = &core.MCSLock{}
	default:
		fmt.Fprintf(os.Stderr, "unknown lock %q\n", *lockName)
		os.Exit(2)
	}
	if pol != nil {
		switch *lockName {
		case "tas", "ticket", "mcs":
			fmt.Fprintf(os.Stderr, "-policy applies only to the ShflLock family, not %q\n", *lockName)
			os.Exit(2)
		}
	}
	if *stat {
		l = lockstat.Instrument(l, "torture/"+*lockName)
		defer finalReport()
		stopLive := liveReports(*duration)
		defer stopLive()
	}

	var stop atomic.Bool
	var inCS atomic.Int32
	var acquires, tries, violations atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < *threads; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				got := false
				if rng.Intn(8) == 0 {
					got = l.TryLock()
					tries.Add(1)
				} else {
					l.Lock()
					got = true
				}
				if !got {
					continue
				}
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				for i := 0; i < rng.Intn(200); i++ {
					_ = i
				}
				inCS.Add(-1)
				l.Unlock()
				acquires.Add(1)
			}
		}(int64(g) + 1)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("lock=%s threads=%d duration=%v\n", *lockName, *threads, *duration)
	fmt.Printf("acquires=%d trylocks=%d violations=%d\n", acquires.Load(), tries.Load(), violations.Load())
	if violations.Load() > 0 {
		fmt.Println("TORTURE FAILED: mutual exclusion violated")
		os.Exit(1)
	}
	fmt.Println("torture passed")
}

// liveReports prints the lockstat report once a second while the torture
// runs; the returned func stops it.
func liveReports(duration time.Duration) func() {
	if duration < 2*time.Second {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Println("--- live lock_stat ---")
				lockstat.WriteText(os.Stdout, lockstat.Default.Reports())
			}
		}
	}()
	return func() { close(done) }
}

// finalReport prints the quiescent report and fails the run if any
// cross-counter invariant is broken (contended > acquires, histogram mass
// != acquires).
func finalReport() {
	fmt.Println("--- final lock_stat ---")
	reps := lockstat.Default.Reports()
	lockstat.WriteText(os.Stdout, reps)
	for _, r := range reps {
		if msg := r.Consistent(); msg != "" {
			fmt.Printf("LOCKSTAT INCONSISTENT: %s\n", msg)
			os.Exit(1)
		}
	}
	fmt.Println("lockstat counters consistent")
}

func tortureRW(l rwLocker, threads int, duration time.Duration) {
	var stop atomic.Bool
	var readers, writers atomic.Int32
	var rops, wops, violations atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				if rng.Intn(10) == 0 {
					l.Lock()
					if writers.Add(1) != 1 || readers.Load() != 0 {
						violations.Add(1)
					}
					writers.Add(-1)
					l.Unlock()
					wops.Add(1)
				} else {
					l.RLock()
					readers.Add(1)
					if writers.Load() != 0 {
						violations.Add(1)
					}
					readers.Add(-1)
					l.RUnlock()
					rops.Add(1)
				}
			}
		}(int64(g) + 1)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	fmt.Printf("lock=rwmutex threads=%d duration=%v\n", threads, duration)
	fmt.Printf("reads=%d writes=%d violations=%d\n", rops.Load(), wops.Load(), violations.Load())
	if violations.Load() > 0 {
		fmt.Println("TORTURE FAILED")
		os.Exit(1)
	}
	fmt.Println("torture passed")
}
