// Command memfootprint prints Table 1: the per-lock, per-waiter and
// per-holder memory footprint of every lock algorithm, plus measured
// atomic operations per acquire in uncontended and contended runs.
// With -json the table is emitted machine-readable; with -lock a
// comma-separated list of registry names (canonical or simulator
// spellings) restricts the table to those rows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"shfllock/internal/bench"
	"shfllock/internal/lockreg"
	"shfllock/internal/topology"
)

// filterNames resolves the -lock list through the registry into the
// simulator maker names that key Table 1's rows, failing loudly on a typo
// or a native-only lock (Table 1 measures the simulator substrate).
func filterNames(spec string) (map[string]bool, error) {
	if spec == "" {
		return nil, nil
	}
	set := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		ent, ok := lockreg.Find(name)
		if !ok {
			return nil, fmt.Errorf("unknown lock %q (simulated locks: %s)", name, strings.Join(lockreg.SimNames(), "|"))
		}
		if !ent.HasSim() {
			return nil, fmt.Errorf("lock %q has no simulator implementation, so no Table 1 row (substrates: %s)", ent.Name, ent.Substrates())
		}
		set[ent.SimName()] = true
	}
	return set, nil
}

// filterTable keeps only the requested rows.
func filterTable(data bench.Table1Result, keep map[string]bool) bench.Table1Result {
	if keep == nil {
		return data
	}
	var out bench.Table1Result
	for _, row := range data.Mutexes {
		if keep[row.Name] {
			out.Mutexes = append(out.Mutexes, row)
		}
	}
	for _, row := range data.RWLocks {
		if keep[row.Name] {
			out.RWLocks = append(out.RWLocks, row)
		}
	}
	return out
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "shorter measurement runs")
		sockets = flag.Int("sockets", 8, "simulated sockets")
		cores   = flag.Int("cores", 24, "cores per socket")
		jsonOut = flag.Bool("json", false, "emit Table 1 as JSON instead of text")
		lock    = flag.String("lock", "", "comma-separated locks: print only these rows (any registry spelling)")
	)
	flag.Parse()
	keep, err := filterNames(*lock)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := bench.Config{
		Topo:  topology.Machine{Sockets: *sockets, CoresPerSocket: *cores},
		Quick: *quick,
		Seed:  1,
	}
	if *jsonOut || keep != nil {
		data := filterTable(bench.Table1Data(cfg), keep)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(data); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		bench.WriteTable1(os.Stdout, data)
		return
	}
	e, _ := bench.ByID("table1")
	e.Run(cfg, os.Stdout)
}
