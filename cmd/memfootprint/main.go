// Command memfootprint prints Table 1: the per-lock, per-waiter and
// per-holder memory footprint of every lock algorithm, plus measured
// atomic operations per acquire in uncontended and contended runs.
package main

import (
	"flag"
	"os"

	"shfllock/internal/bench"
	"shfllock/internal/topology"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "shorter measurement runs")
		sockets = flag.Int("sockets", 8, "simulated sockets")
		cores   = flag.Int("cores", 24, "cores per socket")
	)
	flag.Parse()
	e, _ := bench.ByID("table1")
	e.Run(bench.Config{
		Topo:  topology.Machine{Sockets: *sockets, CoresPerSocket: *cores},
		Quick: *quick,
		Seed:  1,
	}, os.Stdout)
}
