// Command memfootprint prints Table 1: the per-lock, per-waiter and
// per-holder memory footprint of every lock algorithm, plus measured
// atomic operations per acquire in uncontended and contended runs.
// With -json the table is emitted machine-readable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"shfllock/internal/bench"
	"shfllock/internal/topology"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "shorter measurement runs")
		sockets = flag.Int("sockets", 8, "simulated sockets")
		cores   = flag.Int("cores", 24, "cores per socket")
		jsonOut = flag.Bool("json", false, "emit Table 1 as JSON instead of text")
	)
	flag.Parse()
	cfg := bench.Config{
		Topo:  topology.Machine{Sockets: *sockets, CoresPerSocket: *cores},
		Quick: *quick,
		Seed:  1,
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(bench.Table1Data(cfg)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	e, _ := bench.ByID("table1")
	e.Run(cfg, os.Stdout)
}
