// Command shflbench regenerates the paper's tables and figures on the
// simulated NUMA machine.
//
// Usage:
//
//	shflbench -list
//	shflbench -exp fig9a [-quick] [-sockets 8] [-cores 24] [-seed 1]
//	shflbench -exp all -quick [-parallel 8] [-cache /tmp/shflcache]
//	shflbench -exp fig4a -quick -profile /tmp/prof
//
// Every experiment point — one (lock, threads) simulation — is an
// independent, seed-deterministic run, so points execute concurrently
// (-parallel, default GOMAXPROCS) with output byte-identical to -parallel
// 1. With -cache, finished points are memoized on disk and replayed on
// re-runs with the same experiment, topology, seed, and mode. With
// -profile dir, the run writes cpu.pprof and alloc.pprof into dir so
// performance work starts from data instead of guesses.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"shfllock/internal/bench"
	"shfllock/internal/lockreg"
	"shfllock/internal/shuffle"
	"shfllock/internal/topology"
)

func main() {
	os.Exit(run())
}

// run holds main's body so profile flushing (deferred) happens on every
// exit path; os.Exit in main would skip it.
func run() int {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("exp", "", "experiment id to run (or 'all')")
		quick   = flag.Bool("quick", false, "fewer sweep points, shorter windows")
		full    = flag.Bool("full", false, "full-fidelity sweep (explicit alias for the default non-quick mode; pairs with -exp <family> in CI)")
		sockets = flag.Int("sockets", 8, "simulated sockets")
		cores   = flag.Int("cores", 24, "cores per socket")
		// The default seed lives here, in the flag definition: -seed 0 is
		// a real, distinct seed, not an alias for 1.
		seed     = flag.Int64("seed", 1, "simulation seed (0 is a valid seed)")
		lockstat = flag.Bool("lockstat", false, "append lock_stat-style reports to experiments that carry them")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation points to run concurrently (1 = serial)")
		cacheDir = flag.String("cache", "", "directory memoizing finished points across runs")
		// Results are byte-identical with the fast path on or off (verify.sh
		// diffs the two); the flag exists to run the slow path as an oracle
		// and to quantify the speedup.
		enginefast  = flag.Bool("enginefast", true, "engine fast path: in-place time advance and direct thread handoff")
		enginewheel = flag.Bool("enginewheel", true, "engine timer wheel + per-point arenas (off = reference binary heap, plain heap allocation)")
		enginestats = flag.Bool("enginestats", false, "print aggregate engine fast-path/slow-path counters after the run")
		profileDir  = flag.String("profile", "", "directory to write cpu.pprof and alloc.pprof for this run (perf work starts from data)")
	)
	flag.Parse()

	if *profileDir != "" {
		stop, err := startProfiles(*profileDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer stop()
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Printf("\nshuffling policies: %s\n", strings.Join(shuffle.Names(), " "))
		fmt.Println("\nlocks (from the registry):")
		for _, e := range lockreg.All() {
			fmt.Printf("  %-18s %-10s %s\n", e.Name, e.Substrates(), e.Caps)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: shflbench -exp <id> [-quick]")
		}
		return 0
	}

	if *full && *quick {
		fmt.Fprintln(os.Stderr, "-full and -quick are mutually exclusive")
		return 1
	}

	shapes := &bench.ShapeLog{}
	cfg := bench.Config{
		Topo:       topology.Machine{Sockets: *sockets, CoresPerSocket: *cores},
		Seed:       *seed,
		Quick:      *quick,
		LockStat:   *lockstat,
		Shapes:     shapes,
		NoFastPath: !*enginefast,
		NoWheel:    !*enginewheel,
	}
	opt := bench.Options{Parallel: *parallel, CacheDir: *cacheDir, EngineStats: *enginestats}

	exps := bench.All()
	if *exp != "all" {
		var picked []bench.Experiment
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				return 1
			}
			picked = append(picked, e)
		}
		exps = picked
		if len(exps) > 1 {
			opt.Banner = true
		}
	} else {
		opt.Banner = true
	}
	if err := bench.RunAll(exps, cfg, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return exitCodeForShapes(shapes)
}

// startProfiles begins a CPU profile in dir and returns a stop function
// that finishes it and snapshots the allocation profile. The alloc profile
// covers the whole run (MemProfileRate left at its default), so it answers
// "what allocated" for the exact workload the CPU profile timed.
func startProfiles(dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shflbench: profile dir: %w", err)
	}
	cpuF, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("shflbench: profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, fmt.Errorf("shflbench: profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		cpuF.Close()
		allocF, err := os.Create(filepath.Join(dir, "alloc.pprof"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "shflbench: alloc profile:", err)
			return
		}
		defer allocF.Close()
		runtime.GC() // flush outstanding allocations into the profile
		if err := pprof.Lookup("allocs").WriteTo(allocF, 0); err != nil {
			fmt.Fprintln(os.Stderr, "shflbench: alloc profile:", err)
		}
		fmt.Fprintf(os.Stderr, "profiles written: %s/cpu.pprof %s/alloc.pprof\n", dir, dir)
	}, nil
}

// exitCodeForShapes makes shflbench usable as a CI gate: any shape check
// that lost the paper's qualitative claim fails the run.
func exitCodeForShapes(shapes *bench.ShapeLog) int {
	if !shapes.Failed() {
		return 0
	}
	fmt.Fprintf(os.Stderr, "\nshape checks FAILED (%d):\n", len(shapes.Failures()))
	for _, f := range shapes.Failures() {
		fmt.Fprintf(os.Stderr, "  %s\n", f)
	}
	return 1
}
