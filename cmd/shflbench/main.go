// Command shflbench regenerates the paper's tables and figures on the
// simulated NUMA machine.
//
// Usage:
//
//	shflbench -list
//	shflbench -exp fig9a [-quick] [-sockets 8] [-cores 24] [-seed 1]
//	shflbench -exp all -quick [-parallel 8] [-cache /tmp/shflcache]
//
// Every experiment point — one (lock, threads) simulation — is an
// independent, seed-deterministic run, so points execute concurrently
// (-parallel, default GOMAXPROCS) with output byte-identical to -parallel
// 1. With -cache, finished points are memoized on disk and replayed on
// re-runs with the same experiment, topology, seed, and mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"shfllock/internal/bench"
	"shfllock/internal/lockreg"
	"shfllock/internal/shuffle"
	"shfllock/internal/topology"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("exp", "", "experiment id to run (or 'all')")
		quick   = flag.Bool("quick", false, "fewer sweep points, shorter windows")
		sockets = flag.Int("sockets", 8, "simulated sockets")
		cores   = flag.Int("cores", 24, "cores per socket")
		// The default seed lives here, in the flag definition: -seed 0 is
		// a real, distinct seed, not an alias for 1.
		seed     = flag.Int64("seed", 1, "simulation seed (0 is a valid seed)")
		lockstat = flag.Bool("lockstat", false, "append lock_stat-style reports to experiments that carry them")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation points to run concurrently (1 = serial)")
		cacheDir = flag.String("cache", "", "directory memoizing finished points across runs")
		// Results are byte-identical with the fast path on or off (verify.sh
		// diffs the two); the flag exists to run the slow path as an oracle
		// and to quantify the speedup.
		enginefast  = flag.Bool("enginefast", true, "engine fast path: in-place time advance and direct thread handoff")
		enginestats = flag.Bool("enginestats", false, "print aggregate engine fast-path/slow-path counters after the run")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Printf("\nshuffling policies: %s\n", strings.Join(shuffle.Names(), " "))
		fmt.Println("\nlocks (from the registry):")
		for _, e := range lockreg.All() {
			fmt.Printf("  %-18s %-10s %s\n", e.Name, e.Substrates(), e.Caps)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: shflbench -exp <id> [-quick]")
		}
		return
	}

	shapes := &bench.ShapeLog{}
	cfg := bench.Config{
		Topo:       topology.Machine{Sockets: *sockets, CoresPerSocket: *cores},
		Seed:       *seed,
		Quick:      *quick,
		LockStat:   *lockstat,
		Shapes:     shapes,
		NoFastPath: !*enginefast,
	}
	opt := bench.Options{Parallel: *parallel, CacheDir: *cacheDir, EngineStats: *enginestats}

	exps := bench.All()
	if *exp != "all" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	} else {
		opt.Banner = true
	}
	if err := bench.RunAll(exps, cfg, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exitOnShapeFailures(shapes)
}

// exitOnShapeFailures makes shflbench usable as a CI gate: any shape check
// that lost the paper's qualitative claim fails the run.
func exitOnShapeFailures(shapes *bench.ShapeLog) {
	if !shapes.Failed() {
		return
	}
	fmt.Fprintf(os.Stderr, "\nshape checks FAILED (%d):\n", len(shapes.Failures()))
	for _, f := range shapes.Failures() {
		fmt.Fprintf(os.Stderr, "  %s\n", f)
	}
	os.Exit(1)
}
