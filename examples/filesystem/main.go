// Filesystem example: the Figure 1 scenario on the simulated machine.
// Threads create 4KB files in one shared directory; we compare the stock
// rwsem against the readers-writer ShflLock and a cohort lock, reporting
// both throughput and the lock memory embedded in the created inodes.
package main

import (
	"flag"
	"fmt"

	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
	"shfllock/internal/workloads"
)

func main() {
	threads := flag.Int("threads", 48, "concurrent file creators")
	sockets := flag.Int("sockets", 8, "simulated sockets")
	flag.Parse()

	topo := topology.Machine{Sockets: *sockets, CoresPerSocket: 24}
	p := workloads.Params{Topo: topo, Threads: *threads, Duration: 10_000_000, Seed: 1}

	fmt.Printf("MWCM: %d threads creating 4KB files in one shared directory (%s)\n\n", *threads, topo)
	fmt.Printf("%-14s %14s %16s %14s\n", "inode lock", "files/sec", "lock bytes/file", "alloc MB")
	for _, mk := range []simlocks.RWMaker{
		simlocks.RWSemMaker(),
		simlocks.CohortRWMaker(),
		simlocks.CSTRWMaker(),
		simlocks.ShflRWMaker(),
	} {
		r := workloads.MWCM(p, mk)
		fmt.Printf("%-14s %14.0f %16.1f %14.1f\n",
			mk.Name, r.OpsPerSec,
			float64(r.LockBytes)/float64(r.TotalOps),
			float64(r.AllocBytes)/(1<<20))
	}
	fmt.Println("\nThe hierarchical locks bloat every inode by their per-socket")
	fmt.Println("structures; the ShflLock keeps the footprint near the stock rwsem")
	fmt.Println("while sustaining the highest creation rate.")
}
