// KVServer example: the live-service quickstart. Starts the sharded KV
// service (internal/kvserver) in-process in adaptive mode, drives it with
// a short seeded open-loop phase script through the real HTTP stack, and
// prints the per-phase latency summary plus each shard's final lock choice
// — read-mostly traffic should leave shards on shfl-rw, the write storm
// should have flipped them to shfl-mutex in between.
//
// This is the networked sibling of examples/kvstore (which reproduces
// Figure 12 on the deterministic simulator); here the locks are the native
// ones and the clock is the wall clock, so numbers vary run to run.
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"shfllock/internal/kvserver"
	"shfllock/internal/loadgen"
)

type target struct{ base string }

func (t target) Do(ctx context.Context, op *loadgen.Op) error {
	var req *http.Request
	var err error
	switch op.Kind {
	case loadgen.Get:
		req, err = http.NewRequestWithContext(ctx, "GET", t.base+"/kv/"+op.Key, nil)
	case loadgen.Put:
		req, err = http.NewRequestWithContext(ctx, "PUT", t.base+"/kv/"+op.Key, nil)
	case loadgen.Delete:
		req, err = http.NewRequestWithContext(ctx, "DELETE", t.base+"/kv/"+op.Key, nil)
	case loadgen.Scan:
		req, err = http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/scan?start=%s&limit=%d", t.base, op.Key, op.Limit), nil)
	}
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return loadgen.ErrOverload
	}
	return nil
}

func main() {
	srv, err := kvserver.New(kvserver.Config{
		Lock:        kvserver.ImplAdaptive,
		Shards:      4,
		PreloadKeys: 20_000,
		CtlInterval: 50 * time.Millisecond,
		// At quickstart rates a 50ms interval sees only tens of ops per
		// shard; lower the judging floor so the controller still acts.
		CtlMinOps: 10,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fmt.Println("adaptive KV service under a shifting open-loop phase script")
	fmt.Printf("%-12s %8s %8s %9s %9s %9s\n", "phase", "ops", "timeout", "p50(ms)", "p99(ms)", "p999(ms)")
	res := loadgen.Run(loadgen.Config{
		Seed:    1,
		Keys:    20_000,
		Workers: 32,
		Timeout: 50 * time.Millisecond,
		Phases:  loadgen.Script(1500, 2),
	}, target{base: ts.URL})
	for _, ph := range res.Phases {
		fmt.Printf("%-12s %8d %8d %9.2f %9.2f %9.2f\n",
			ph.Name, ph.Ops, ph.Timeouts, ph.P50, ph.P99, ph.P999)
	}

	fmt.Println("\nfinal shard lock choices (controller verdicts):")
	for _, d := range srv.DebugShards() {
		fmt.Printf("  shard %d: %-10s (%d switches)\n", d.Shard, d.Impl, d.Switches)
	}
	if v := srv.Violations(); v != 0 {
		fmt.Printf("MUTUAL-EXCLUSION VIOLATIONS: %d\n", v)
		os.Exit(1)
	}
	fmt.Println("mutual exclusion held across every handover (0 violations)")
}
