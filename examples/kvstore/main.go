// KVStore example: the Figure 12 scenario, reproduced on the *simulated*
// substrate (internal/kvstore + the deterministic engine). A LevelDB-style
// database whose Get operations contend on the global database mutex,
// compared across userspace lock algorithms at increasing simulated thread
// counts — no real concurrency, no wall-clock time, fully reproducible.
//
// For the *networked* sibling — a real HTTP KV service with native locks,
// per-request deadlines, and adaptive lock switching — see
// examples/kvserver and internal/kvserver.
package main

import (
	"flag"
	"fmt"

	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
	"shfllock/internal/workloads"
)

func main() {
	sockets := flag.Int("sockets", 8, "simulated sockets")
	flag.Parse()

	topo := topology.Machine{Sockets: *sockets, CoresPerSocket: 24}
	locks := []simlocks.Maker{
		simlocks.PthreadMaker(),
		simlocks.MCSHeapMaker(),
		simlocks.MutexeeMaker(),
		simlocks.ShflLockBMaker(),
	}

	fmt.Printf("LevelDB readrandom on %s (reads/sec)\n\n", topo)
	fmt.Printf("%-10s", "threads")
	for _, mk := range locks {
		fmt.Printf(" %14s", mk.Name)
	}
	fmt.Println()
	for _, n := range []int{1, 8, 48, 192, 384} {
		fmt.Printf("%-10d", n)
		for _, mk := range locks {
			p := workloads.Params{Topo: topo, Threads: n, Duration: 8_000_000, Seed: 1}
			r := workloads.LevelDB(p, mk)
			fmt.Printf(" %14.0f", r.OpsPerSec)
		}
		fmt.Println()
	}
	fmt.Println("\npthread collapses once waiters park on every handoff; the")
	fmt.Println("blocking ShflLock keeps stealing the lock across wakeup latency")
	fmt.Println("and holds its throughput into 2x over-subscription.")
}
