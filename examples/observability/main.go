// Observability example: finding a hot lock with internal/lockstat.
//
// A tiny "service" guards two data structures with two native ShflLock
// mutexes: a session table nearly every request hits (hot) and a config
// block touched rarely (cold). Both are wrapped in lockstat sites; the
// report makes the contention structure obvious without any tracing —
// the same diagnosis lock_stat gives on a kernel, here for Go locks.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"shfllock/internal/core"
	"shfllock/internal/lockstat"
)

func main() {
	workers := flag.Int("workers", 8, "request goroutines")
	requests := flag.Int("requests", 4000, "requests per goroutine")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	// Exact hold histograms: this example trades a little overhead for a
	// complete picture. Production code keeps the default sampling.
	lockstat.Default.SetHoldSampling(1)

	var sessionsMu, configMu core.Mutex
	sessions := lockstat.Instrument(&sessionsMu, "svc/sessions")
	config := lockstat.Instrument(&configMu, "svc/config")

	sessionTable := map[int]int{}
	configValue := 0

	var wg sync.WaitGroup
	for wkr := 0; wkr < *workers; wkr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < *requests; i++ {
				// Every request updates the session table and holds the
				// lock while doing "work" — the classic hot lock.
				sessions.Lock()
				sessionTable[id] = sessionTable[id] + 1
				if i%64 == 0 {
					time.Sleep(50 * time.Microsecond) // an occasional slow path
				}
				sessions.Unlock()

				// One request in 100 reads the config — almost never
				// contended.
				if i%100 == 0 {
					config.Lock()
					configValue++
					config.Unlock()
				}
			}
		}(wkr)
	}
	wg.Wait()

	reps := lockstat.Default.Reports()
	if *asJSON {
		if err := lockstat.WriteJSON(os.Stdout, reps); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	lockstat.WriteText(os.Stdout, reps)

	// The numbers above are the diagnosis; spell it out for the example.
	var hot, cold lockstat.Report
	for _, r := range reps {
		switch r.Name {
		case "svc/sessions":
			hot = r
		case "svc/config":
			cold = r
		}
	}
	fmt.Println()
	fmt.Printf("diagnosis: svc/sessions took %d acquisitions, %.1f%% contended", hot.Acquires, hot.ContentionPct())
	if hot.Wait != nil {
		fmt.Printf(", p99 wait %.0fns", hot.Wait.Percentile(0.99))
	}
	fmt.Println()
	fmt.Printf("           svc/config   took %d acquisitions, %.1f%% contended — not the problem\n",
		cold.Acquires, cold.ContentionPct())
	fmt.Println("           => shrink the svc/sessions critical section (move the slow path out).")
}
