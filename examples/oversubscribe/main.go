// Oversubscribe example: why blocking locks exist. Runs the native locks
// with 4x more goroutines than GOMAXPROCS and compares wall-clock time for
// a fixed amount of locked work: spinlocks burn the CPU other goroutines
// need, while the blocking ShflLock parks surplus waiters.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sync"
	"time"

	"shfllock/internal/core"
)

type locker interface {
	Lock()
	Unlock()
}

func run(name string, l locker, goroutines, iters int) {
	var wg sync.WaitGroup
	counter := 0
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter += 2
				counter--
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		panic("lost updates")
	}
	fmt.Printf("%-18s %8d goroutines x %6d ops: %v\n", name, goroutines, iters, time.Since(start))
}

func main() {
	factor := flag.Int("factor", 4, "goroutines per CPU")
	iters := flag.Int("iters", 20000, "operations per goroutine")
	flag.Parse()
	core.SetSockets(2)

	goroutines := *factor * runtime.GOMAXPROCS(0)
	fmt.Printf("GOMAXPROCS=%d, %dx over-subscription\n\n", runtime.GOMAXPROCS(0), *factor)

	run("shfllock-mutex", &core.Mutex{}, goroutines, *iters)
	run("goro-mutex", core.NewGoroMutex(), goroutines, *iters)
	run("shfllock-spin", &core.SpinLock{}, goroutines, *iters)
	run("mcs", &core.MCSLock{}, goroutines, *iters)
	run("tas", &core.TASLock{}, goroutines, *iters)
	run("sync.Mutex", &sync.Mutex{}, goroutines, *iters)
}
