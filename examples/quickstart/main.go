// Quickstart: use the native ShflLock family as drop-in sync.Locker
// replacements in an ordinary Go program.
package main

import (
	"fmt"
	"sync"
	"time"

	"shfllock/internal/core"
)

func main() {
	// Tell the shuffling policy how many NUMA sockets to assume. On a
	// multi-socket server with pinned OS threads this enables the
	// NUMA-grouping policy; on a laptop it simply behaves as a compact
	// blocking lock.
	core.SetSockets(2)

	// Mutex is the blocking ShflLock: TAS fast path, shuffled waiter
	// queue, spin-then-park waiters woken ahead of time by shufflers.
	var mu core.Mutex
	counter := 0

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100_000; i++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("800000 locked increments -> counter=%d in %v\n", counter, time.Since(start))

	// TryLock is one compare-and-swap thanks to lock-state decoupling.
	if mu.TryLock() {
		fmt.Println("TryLock on a free Mutex: acquired")
		mu.Unlock()
	}

	// RWMutex is the blocking readers-writer ShflLock.
	var rw core.RWMutex
	data := map[string]int{"answer": 42}
	var rg sync.WaitGroup
	for g := 0; g < 4; g++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			rw.RLock()
			_ = data["answer"]
			rw.RUnlock()
		}()
	}
	rw.Lock()
	data["answer"] = 43
	rw.Unlock()
	rg.Wait()
	fmt.Printf("rwmutex-guarded map: answer=%d\n", data["answer"])

	// SpinLock is the non-blocking variant for short critical sections.
	var sl core.SpinLock
	sl.Lock()
	fmt.Println("spinlock acquired and released")
	sl.Unlock()
}
