module shfllock

go 1.23
