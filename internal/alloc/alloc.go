// Package alloc models a kernel slab allocator well enough to reproduce the
// paper's memory-footprint effects: allocation cost grows with object size,
// and concurrent allocation storms contend on shared free-list state. This
// is the mechanism behind Figure 1 and Figure 9(b): embedding a 1KB+
// hierarchical lock in every inode bloats the inode, which stresses the
// allocator and caps file-creation scalability, and behind CST's collapse
// in Figure 9(a): allocating per-socket structures on the lock's critical
// path.
package alloc

import (
	"shfllock/internal/sim"
)

// Cost parameters of the slab model.
const (
	baseCost     = 150 // fixed per-allocation path length, cycles
	perByteCost  = 4   // cycles per 16 bytes (zeroing, slab bookkeeping)
	classBytes   = 512 // one shared free-list RMW per this many bytes
	numClasses   = 8   // size classes hashed to shared free-list words
	freeBaseCost = 80
)

// Allocator simulates a slab allocator shared by all threads of an engine.
type Allocator struct {
	e *sim.Engine
	// classes are the shared per-size-class free-list words; allocations
	// RMW them, so parallel allocation storms serialize here.
	classes []sim.Word

	BytesLive  uint64
	BytesTotal uint64
	Allocs     uint64
	Frees      uint64
}

// New creates an allocator backed by the engine's simulated memory.
func New(e *sim.Engine) *Allocator {
	return &Allocator{
		e:       e,
		classes: e.Mem().AllocPadded("alloc/freelist", numClasses),
	}
}

func (a *Allocator) class(bytes uint64) sim.Word {
	c := 0
	for s := uint64(64); s < bytes && c < numClasses-1; s <<= 1 {
		c++
	}
	return a.classes[c]
}

// Alloc charges thread t for allocating an object of the given size and
// accounts it. Larger objects touch the shared free lists more often
// (slab refills), which is what makes bloated inodes collapse under
// parallel creation storms.
func (a *Allocator) Alloc(t *sim.Thread, bytes uint64) {
	a.Allocs++
	a.BytesLive += bytes
	a.BytesTotal += bytes
	t.Delay(baseCost + bytes/16*perByteCost)
	w := a.class(bytes)
	for n := uint64(0); n <= bytes/classBytes; n++ {
		t.Add(w, 1)
	}
}

// Free charges thread t for releasing an object.
func (a *Allocator) Free(t *sim.Thread, bytes uint64) {
	a.Frees++
	if bytes > a.BytesLive {
		bytes = a.BytesLive
	}
	a.BytesLive -= bytes
	t.Delay(freeBaseCost)
	t.Add(a.class(bytes), ^uint64(0))
}
