package alloc

import (
	"testing"

	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

func TestAllocAccounting(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 1_000_000_000})
	a := New(e)
	e.Spawn("t", 0, func(th *sim.Thread) {
		a.Alloc(th, 1000)
		a.Alloc(th, 2000)
		a.Free(th, 1000)
	})
	e.Run()
	if a.Allocs != 2 || a.Frees != 1 {
		t.Errorf("allocs=%d frees=%d", a.Allocs, a.Frees)
	}
	if a.BytesTotal != 3000 {
		t.Errorf("total=%d, want 3000", a.BytesTotal)
	}
	if a.BytesLive != 2000 {
		t.Errorf("live=%d, want 2000", a.BytesLive)
	}
}

func TestBiggerObjectsCostMore(t *testing.T) {
	run := func(bytes uint64) uint64 {
		e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 10_000_000_000})
		a := New(e)
		e.Spawn("t", 0, func(th *sim.Thread) {
			for i := 0; i < 50; i++ {
				a.Alloc(th, bytes)
			}
		})
		e.Run()
		return e.Now()
	}
	small, big := run(64), run(4096)
	if big <= small {
		t.Errorf("4KB allocs (%d cycles) should cost more than 64B (%d)", big, small)
	}
}

// TestParallelAllocContention checks the key emergent effect: many threads
// allocating big objects serialize on shared free lists, so per-thread
// allocation slows down with concurrency.
func TestParallelAllocContention(t *testing.T) {
	run := func(threads int) uint64 {
		e := sim.NewEngine(sim.Config{Topo: topology.Reference(), Seed: 1, HardStop: 100_000_000_000})
		a := New(e)
		for i := 0; i < threads; i++ {
			e.Spawn("t", -1, func(th *sim.Thread) {
				for k := 0; k < 40; k++ {
					a.Alloc(th, 2300) // a cohort-bloated inode
				}
			})
		}
		e.Run()
		return e.Now()
	}
	solo := run(1)
	many := run(96) // 96 threads x same per-thread work
	// Perfect scaling would finish in ~solo time; contention must show.
	if many < solo*3 {
		t.Errorf("no allocator contention: solo=%d, 96 threads=%d", solo, many)
	}
}

func TestFreeUnderflowClamped(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 1_000_000_000})
	a := New(e)
	e.Spawn("t", 0, func(th *sim.Thread) {
		a.Alloc(th, 100)
		a.Free(th, 5000) // more than live: clamp, don't wrap
	})
	e.Run()
	if a.BytesLive != 0 {
		t.Errorf("live=%d, want 0 after over-free", a.BytesLive)
	}
}
