// Package arena provides typed, reset-on-recycle object pools for the
// simulator's per-sweep-point state. A bench sweep builds and tears down one
// engine (plus its memory image, threads and workload tables) per plotted
// point; the backing arrays dominate the harness's allocation profile, yet
// at the end of a point they are all dead at once. Pooling them wholesale —
// truncate, don't free — turns the per-point cost into a handful of map
// clears and slice re-slices, with near-zero garbage between points.
//
// Recycling is strictly opt-in at the call site: the -enginewheel=false
// oracle mode never touches these pools, so plain Go heap allocation
// survives as the behavioural baseline the pooled mode is diffed against.
package arena

import "sync"

// Pool recycles *T values. Reset runs at Put so pooled values hold no stale
// references while idle; the reset function decides which backing (slices,
// maps, channels) survives recycling and which fields return to zero.
//
// The freelist is a plain LIFO under a mutex rather than a sync.Pool, a
// deliberate choice: sync.Pool drops objects at GC points, so whether a Get
// reuses or allocates would depend on collector timing — and an incomplete
// reset would surface as a heisenbug that appears and disappears with
// allocation layout. With a deterministic freelist every Put is reused, so
// a reset bug fails the differential gates on every run. The list is
// bounded in practice by the peak number of concurrently live objects (one
// engine per bench worker), so unbounded retention is not a concern.
type Pool[T any] struct {
	mu    sync.Mutex
	free  []*T
	reset func(*T)
}

// New builds a pool whose Get mints fresh zero values on miss and whose Put
// runs reset before stashing.
func New[T any](reset func(*T)) *Pool[T] {
	return &Pool[T]{reset: reset}
}

// Get returns a reset *T: either a recycled value or a fresh zero one. The
// caller must not assume which; anything reset preserves (capacity, an
// already-made map) must be checked for, not relied on.
func (p *Pool[T]) Get() *T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	return new(T)
}

// Put resets v and makes it available for reuse. The caller must hold no
// references to v afterwards.
func (p *Pool[T]) Put(v *T) {
	if p.reset != nil {
		p.reset(v)
	}
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}
