// Package bench defines one runnable experiment per table and figure of
// the paper's evaluation. Each experiment sweeps thread counts (and lock
// algorithms) on the simulated reference machine and prints the same rows
// or series the paper reports, plus a one-line shape check against the
// paper's qualitative claim.
package bench

import (
	"fmt"
	"io"
	"sort"

	"shfllock/internal/stats"
	"shfllock/internal/topology"
	"shfllock/internal/workloads"
)

// Config controls an experiment run.
type Config struct {
	Topo     topology.Machine
	Seed     int64
	Quick    bool      // fewer sweep points, shorter measurement windows
	LockStat bool      // append a lockstat report to experiments that carry one
	Shapes   *ShapeLog // collects shape-check verdicts when non-nil
}

func (c Config) withDefaults() Config {
	if c.Topo.Sockets == 0 {
		c.Topo = topology.Reference()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// duration returns the measured window length in cycles.
func (c Config) duration() uint64 {
	if c.Quick {
		return 6_000_000
	}
	return 20_000_000
}

// threadPoints returns the sweep's x values up to max cores times oversub.
func (c Config) threadPoints(oversub int) []int {
	cores := c.Topo.Cores()
	var pts []int
	if c.Quick {
		pts = []int{1, 4, 16, 48, 96, 192}
	} else {
		pts = []int{1, 2, 4, 8, 16, 24, 48, 96, 144, 192}
	}
	var out []int
	for _, p := range pts {
		if p <= cores {
			out = append(out, p)
		}
	}
	for f := 2; f <= oversub; f *= 2 {
		out = append(out, f*cores)
	}
	return out
}

// params builds workload parameters for one sweep point.
func (c Config) params(threads int) workloads.Params {
	return workloads.Params{
		Topo:     c.Topo,
		Threads:  threads,
		Seed:     c.Seed,
		Duration: c.duration(),
	}
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(c Config, w io.Writer)
}

var registry []Experiment

func register(id, title string, run func(c Config, w io.Writer)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sweep runs fn for every (lock, threads) pair and assembles series.
func sweep(c Config, names []string, points []int, fn func(name string, threads int) float64) []stats.Series {
	out := make([]stats.Series, len(names))
	for i, name := range names {
		s := stats.Series{Label: name, X: points}
		for _, n := range points {
			s.Y = append(s.Y, fn(name, n))
		}
		out[i] = s
	}
	return out
}

// header prints the experiment banner.
func header(w io.Writer, e Config, title string) {
	fmt.Fprintf(w, "## %s\n## machine: %s, window: %d cycles (quick=%v)\n\n",
		title, e.Topo, e.duration(), e.Quick)
}

// ShapeLog collects shape-check verdicts across experiments so callers
// (the shflbench CI gate) can fail a run whose results lost the paper's
// qualitative shape.
type ShapeLog struct {
	Checks   []ShapeResult
	failures int
}

// ShapeResult is one recorded shape check.
type ShapeResult struct {
	Desc string
	OK   bool
}

func (l *ShapeLog) note(desc string, ok bool) {
	if l == nil {
		return
	}
	l.Checks = append(l.Checks, ShapeResult{Desc: desc, OK: ok})
	if !ok {
		l.failures++
	}
}

// Failed reports whether any recorded check failed.
func (l *ShapeLog) Failed() bool { return l != nil && l.failures > 0 }

// Failures returns the descriptions of every failed check.
func (l *ShapeLog) Failures() []string {
	if l == nil {
		return nil
	}
	var out []string
	for _, c := range l.Checks {
		if !c.OK {
			out = append(out, c.Desc)
		}
	}
	return out
}

// shapeCheck compares two series at the last common x (the paper's usual
// "X is N x faster than Y at 192 threads") against a minimum acceptable
// ratio, prints the verdict, and records it in c.Shapes. Thresholds are
// deliberately looser than the measured ratios: they gate the qualitative
// claim, not the exact speedup.
func shapeCheck(w io.Writer, c Config, s []stats.Series, a, b string, min float64) {
	var sa, sb *stats.Series
	for i := range s {
		switch s[i].Label {
		case a:
			sa = &s[i]
		case b:
			sb = &s[i]
		}
	}
	if sa == nil || sb == nil || len(sa.Y) == 0 || len(sb.Y) == 0 {
		c.Shapes.note(fmt.Sprintf("%s / %s: series missing", a, b), false)
		return
	}
	last := len(sa.Y) - 1
	if sb.Y[last] <= 0 {
		c.Shapes.note(fmt.Sprintf("%s / %s: zero baseline", a, b), false)
		return
	}
	ratio := sa.Y[last] / sb.Y[last]
	ok := ratio >= min
	desc := fmt.Sprintf("%s / %s at %d threads = %.2fx (want >= %.2fx)",
		a, b, sa.X[last], ratio, min)
	fmt.Fprintf(w, "shape[%s]: %s\n", okLabel(ok), desc)
	c.Shapes.note(desc, ok)
}

// shapeExpect prints and records a non-ratio shape claim the experiment
// verified itself.
func shapeExpect(w io.Writer, c Config, desc string, ok bool) {
	fmt.Fprintf(w, "shape[%s]: %s\n", okLabel(ok), desc)
	c.Shapes.note(desc, ok)
}

func okLabel(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
