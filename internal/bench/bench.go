// Package bench defines one runnable experiment per table and figure of
// the paper's evaluation. Each experiment sweeps thread counts (and lock
// algorithms) on the simulated reference machine and prints the same rows
// or series the paper reports, plus a one-line shape check against the
// paper's qualitative claim.
//
// An experiment is split into two halves so the harness can parallelize
// and memoize it: Points enumerates the independent, seed-deterministic
// simulations the experiment needs, and Render assembles their Results
// into the printed tables and shape checks. Points may execute in any
// order, concurrently, or be served from the on-disk cache — every Run
// closure builds its own simulation engine from the Config, so the output
// is byte-identical however the points were executed (see RunAll).
package bench

import (
	"fmt"
	"io"
	"sort"

	"shfllock/internal/stats"
	"shfllock/internal/topology"
	"shfllock/internal/workloads"
)

// Config controls an experiment run.
type Config struct {
	Topo topology.Machine
	// Seed is the simulation seed, passed through verbatim: seed 0 is a
	// valid seed distinct from seed 1. Callers that want a default apply
	// it themselves (cmd/shflbench does so in its flag definition).
	Seed     int64
	Quick    bool      // fewer sweep points, shorter measurement windows
	LockStat bool      // append a lockstat report to experiments that carry one
	Shapes   *ShapeLog // collects shape-check verdicts when non-nil
	// NoFastPath runs every simulation through the engine's event-queue
	// slow path (-enginefast=false). Results are identical either way; the
	// mode exists so the fast path can be diffed against its oracle.
	NoFastPath bool
	// NoWheel runs the reference binary event heap and plain Go heap
	// allocation instead of the timer wheel + per-point arenas
	// (-enginewheel=false). Results are identical either way; the mode is
	// the oracle the raw-speed machinery is diffed against.
	NoWheel bool
}

func (c Config) withDefaults() Config {
	if c.Topo.Sockets == 0 {
		c.Topo = topology.Reference()
	}
	return c
}

// duration returns the measured window length in cycles.
func (c Config) duration() uint64 {
	if c.Quick {
		return 6_000_000
	}
	return 20_000_000
}

// threadPoints returns the sweep's x values up to max cores times oversub.
// The full-subscription point (every core busy) is always part of the
// sweep, whatever the topology: the canned ladders only contain the
// reference machine's core count, so without it a sweep on, say, a
// 2-socket/10-core box would jump from 16 threads to over-subscription
// without ever measuring 20.
func (c Config) threadPoints(oversub int) []int {
	cores := c.Topo.Cores()
	var pts []int
	if c.Quick {
		pts = []int{1, 4, 16, 48, 96, 192}
	} else {
		pts = []int{1, 2, 4, 8, 16, 24, 48, 96, 144, 192}
	}
	var out []int
	for _, p := range pts {
		if p < cores {
			out = append(out, p)
		}
	}
	out = append(out, cores)
	for f := 2; f <= oversub; f *= 2 {
		out = append(out, f*cores)
	}
	sort.Ints(out)
	j := 0
	for i, v := range out {
		if i == 0 || v != out[j-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}

// params builds workload parameters for one sweep point.
func (c Config) params(threads int) workloads.Params {
	return workloads.Params{
		Topo:       c.Topo,
		Threads:    threads,
		Seed:       c.Seed,
		Duration:   c.duration(),
		NoFastPath: c.NoFastPath,
		NoWheel:    c.NoWheel,
	}
}

// Point is one independent simulation of an experiment: a (lock, threads)
// sweep coordinate plus an optional variant discriminator for experiments
// that run the same pair more than once (e.g. Table 1's solo vs contended
// atomics measurement). Run must be a pure function of the Config — it
// builds its own engine and seeds it from Config.Seed — so the harness is
// free to execute points in any order, in parallel, or to replay them
// from the on-disk cache.
type Point struct {
	Lock    string
	Threads int
	Variant string
	Run     func(c Config) workloads.Result
}

// resKey identifies a point within one experiment.
type resKey struct {
	lock    string
	threads int
	variant string
}

// Results holds the simulation outcomes of one experiment's points.
type Results struct {
	m map[resKey]workloads.Result
}

// Get returns the result of the (lock, threads) point.
func (r *Results) Get(lock string, threads int) workloads.Result {
	return r.GetV(lock, threads, "")
}

// GetV returns the result of a point registered with a variant.
func (r *Results) GetV(lock string, threads int, variant string) workloads.Result {
	v, ok := r.m[resKey{lock, threads, variant}]
	if !ok {
		panic(fmt.Sprintf("bench: no result for %s@%d/%q — Points and Render disagree", lock, threads, variant))
	}
	return v
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	// Points enumerates the experiment's simulations; nil for experiments
	// that only print static data (fig2).
	Points func(c Config) []Point
	// Render writes the experiment's tables and shape checks from the
	// assembled results. It runs serially, in registration order.
	Render func(c Config, r *Results, w io.Writer)
}

// Run executes the experiment's points serially and renders the result —
// the single-experiment convenience used by tests and cmd/memfootprint.
func (e Experiment) Run(c Config, w io.Writer) {
	// Without a cache directory RunAll has no error paths.
	_ = RunAll([]Experiment{e}, c, Options{}, w)
}

var registry []Experiment

func register(id, title string, points func(Config) []Point, render func(Config, *Results, io.Writer)) {
	registry = append(registry, Experiment{ID: id, Title: title, Points: points, Render: render})
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sweepPoints builds the standard names x threads grid of a figure sweep.
func sweepPoints(c Config, names []string, pts []int, run func(c Config, name string, n int) workloads.Result) []Point {
	var out []Point
	for _, name := range names {
		for _, n := range pts {
			name, n := name, n
			out = append(out, Point{Lock: name, Threads: n, Run: func(c Config) workloads.Result {
				return run(c, name, n)
			}})
		}
	}
	return out
}

// seriesOf assembles one curve per lock name from an experiment's results.
func seriesOf(r *Results, names []string, pts []int, y func(workloads.Result) float64) []stats.Series {
	out := make([]stats.Series, len(names))
	for i, name := range names {
		s := stats.Series{Label: name, X: pts}
		for _, n := range pts {
			s.Y = append(s.Y, y(r.Get(name, n)))
		}
		out[i] = s
	}
	return out
}

// opsPerSec and fairnessOf are the common y-axis extractors.
func opsPerSec(r workloads.Result) float64  { return r.OpsPerSec }
func fairnessOf(r workloads.Result) float64 { return r.Fairness }

// header prints the experiment banner.
func header(w io.Writer, e Config, title string) {
	fmt.Fprintf(w, "## %s\n## machine: %s, window: %d cycles (quick=%v)\n\n",
		title, e.Topo, e.duration(), e.Quick)
}

// ShapeLog collects shape-check verdicts across experiments so callers
// (the shflbench CI gate) can fail a run whose results lost the paper's
// qualitative shape.
type ShapeLog struct {
	Checks   []ShapeResult
	failures int
}

// ShapeResult is one recorded shape check.
type ShapeResult struct {
	Desc string
	OK   bool
}

func (l *ShapeLog) note(desc string, ok bool) {
	if l == nil {
		return
	}
	l.Checks = append(l.Checks, ShapeResult{Desc: desc, OK: ok})
	if !ok {
		l.failures++
	}
}

// Failed reports whether any recorded check failed.
func (l *ShapeLog) Failed() bool { return l != nil && l.failures > 0 }

// Failures returns the descriptions of every failed check.
func (l *ShapeLog) Failures() []string {
	if l == nil {
		return nil
	}
	var out []string
	for _, c := range l.Checks {
		if !c.OK {
			out = append(out, c.Desc)
		}
	}
	return out
}

// shapeCheck compares two series at the last common x (the paper's usual
// "X is N x faster than Y at 192 threads") against a minimum acceptable
// ratio, prints the verdict, and records it in c.Shapes. Thresholds are
// deliberately looser than the measured ratios: they gate the qualitative
// claim, not the exact speedup.
func shapeCheck(w io.Writer, c Config, s []stats.Series, a, b string, min float64) {
	var sa, sb *stats.Series
	for i := range s {
		switch s[i].Label {
		case a:
			sa = &s[i]
		case b:
			sb = &s[i]
		}
	}
	if sa == nil || sb == nil || len(sa.Y) == 0 || len(sb.Y) == 0 {
		c.Shapes.note(fmt.Sprintf("%s / %s: series missing", a, b), false)
		return
	}
	last := len(sa.Y) - 1
	if sb.Y[last] <= 0 {
		c.Shapes.note(fmt.Sprintf("%s / %s: zero baseline", a, b), false)
		return
	}
	ratio := sa.Y[last] / sb.Y[last]
	ok := ratio >= min
	desc := fmt.Sprintf("%s / %s at %d threads = %.2fx (want >= %.2fx)",
		a, b, sa.X[last], ratio, min)
	fmt.Fprintf(w, "shape[%s]: %s\n", okLabel(ok), desc)
	c.Shapes.note(desc, ok)
}

// shapeExpect prints and records a non-ratio shape claim the experiment
// verified itself.
func shapeExpect(w io.Writer, c Config, desc string, ok bool) {
	fmt.Fprintf(w, "shape[%s]: %s\n", okLabel(ok), desc)
	c.Shapes.note(desc, ok)
}

func okLabel(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
