package bench

import (
	"bytes"
	"strings"
	"testing"

	"shfllock/internal/simlocks"
	"shfllock/internal/stats"
	"shfllock/internal/topology"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must be registered.
	want := []string{
		"fig1a", "fig1b", "fig2", "table1",
		"fig8a", "fig8b",
		"fig9a", "fig9b", "fig9c",
		"fig10a", "fig10b", "fig10c",
		"fig11a", "fig11b", "fig11c", "fig11d", "fig11e", "fig11f", "fig11g", "fig11h",
		"fig12a", "fig12b", "fig12c",
		"fig13a", "fig13b",
		"shootout-a", "shootout-b",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown experiment found")
	}
}

// tinyConfig runs experiments on a small machine so smoke tests are fast.
func tinyConfig() Config {
	return Config{Topo: topology.Machine{Sockets: 2, CoresPerSocket: 4}, Seed: 1, Quick: true}
}

// TestExperimentsSmoke runs the cheap experiments end to end on a tiny
// machine and checks they produce tabular output.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	for _, id := range []string{"fig2", "fig8b", "fig11e", "fig11f", "fig13b"} {
		e, _ := ByID(id)
		var buf bytes.Buffer
		e.Run(tinyConfig(), &buf)
		out := buf.String()
		if len(out) < 50 {
			t.Errorf("%s: suspiciously short output:\n%s", id, out)
		}
		if id != "fig2" && !strings.Contains(out, "machine:") {
			t.Errorf("%s: missing banner", id)
		}
	}
}

func TestThreadPoints(t *testing.T) {
	c := Config{Topo: topology.Reference(), Quick: true}.withDefaults()
	pts := c.threadPoints(4)
	if pts[0] != 1 {
		t.Errorf("sweep must start at 1 thread: %v", pts)
	}
	last := pts[len(pts)-1]
	if last != 4*192 {
		t.Errorf("4x oversubscription point = %d, want 768", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Errorf("sweep not increasing: %v", pts)
		}
	}
}

// Every topology must sweep its exact full-subscription point: a
// 2-socket/10-core machine has 20 cores, which no canned ladder contains.
func TestThreadPointsFullSubscription(t *testing.T) {
	cases := []struct {
		topo    topology.Machine
		quick   bool
		oversub int
	}{
		{topology.Machine{Sockets: 2, CoresPerSocket: 10}, true, 1},
		{topology.Machine{Sockets: 2, CoresPerSocket: 10}, false, 4},
		{topology.Machine{Sockets: 1, CoresPerSocket: 2}, true, 4},
		{topology.Reference(), true, 4},
		{topology.Reference(), false, 1},
	}
	for _, tc := range cases {
		c := Config{Topo: tc.topo, Quick: tc.quick}
		pts := c.threadPoints(tc.oversub)
		cores := tc.topo.Cores()
		found := false
		for _, p := range pts {
			if p == cores {
				found = true
			}
		}
		if !found {
			t.Errorf("%v quick=%v: full-subscription point %d missing from %v", tc.topo, tc.quick, cores, pts)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i] <= pts[i-1] {
				t.Errorf("%v: sweep not sorted/deduped: %v", tc.topo, pts)
			}
		}
		if want := tc.oversub * cores; tc.oversub > 1 && pts[len(pts)-1] != want {
			t.Errorf("%v: oversubscription endpoint = %d, want %d", tc.topo, pts[len(pts)-1], want)
		}
	}
	// The reference-machine ladders are unchanged by the fix: 192 is both
	// a ladder value and the core count, and must appear exactly once.
	pts := Config{Topo: topology.Reference(), Quick: true}.threadPoints(1)
	n := 0
	for _, p := range pts {
		if p == 192 {
			n++
		}
	}
	if n != 1 {
		t.Errorf("192 appears %d times in the reference quick sweep %v, want once", n, pts)
	}
}

// Seed 0 must stay seed 0: -seed 0 and -seed 1 are different runs. The
// default seed is applied by cmd/shflbench's flag definition, not by
// remapping the value here.
func TestSeedZeroPreserved(t *testing.T) {
	c := Config{Seed: 0}.withDefaults()
	if c.Seed != 0 {
		t.Fatalf("withDefaults remapped Seed 0 to %d", c.Seed)
	}
	if got := c.params(4).Seed; got != 0 {
		t.Fatalf("params forwarded seed %d, want 0", got)
	}
}

func TestMeasureAtomicsUncontendedShfl(t *testing.T) {
	// Table 1 claims ShflLock needs ~1 atomic per uncontended acquire.
	c := tinyConfig()
	m, _ := simlocks.MakerByName("shfllock-nb")
	a := measureAtomics(c, m, 1, 100)
	if a < 0.9 || a > 1.5 {
		t.Errorf("uncontended shfllock atomics/acquire = %.2f, want ~1", a)
	}
	// And the cohort lock needs several (Table 1 says 4).
	m2, _ := simlocks.MakerByName("cohort")
	a2 := measureAtomics(c, m2, 1, 100)
	if a2 < 2 {
		t.Errorf("uncontended cohort atomics/acquire = %.2f, want >=2", a2)
	}
}

// The shape gate must record failures: a ratio under the threshold, a
// missing series, and a zero baseline all mark the log failed; a passing
// ratio does not. A nil log (shflbench without the gate) is a no-op.
func TestShapeLogGate(t *testing.T) {
	series := []stats.Series{
		{Label: "fast", X: []int{1, 192}, Y: []float64{1, 100}},
		{Label: "slow", X: []int{1, 192}, Y: []float64{1, 50}},
		{Label: "dead", X: []int{1, 192}, Y: []float64{0, 0}},
	}
	var buf bytes.Buffer
	log := &ShapeLog{}
	c := Config{Shapes: log}

	shapeCheck(&buf, c, series, "fast", "slow", 1.5) // 2.00x >= 1.5x
	if log.Failed() {
		t.Fatalf("passing check marked log failed: %v", log.Failures())
	}
	if !strings.Contains(buf.String(), "shape[ok]: fast / slow at 192 threads = 2.00x") {
		t.Errorf("unexpected verdict line: %q", buf.String())
	}

	shapeCheck(&buf, c, series, "slow", "fast", 1.0) // 0.50x < 1.0x
	shapeCheck(&buf, c, series, "fast", "gone", 1.0) // missing series
	shapeCheck(&buf, c, series, "fast", "dead", 1.0) // zero baseline
	shapeExpect(&buf, c, "claim the experiment disproved", false)
	if !log.Failed() {
		t.Fatal("failing checks did not mark the log failed")
	}
	if got := len(log.Failures()); got != 4 {
		t.Errorf("Failures() = %d entries (%v), want 4", got, log.Failures())
	}
	if !strings.Contains(buf.String(), "shape[FAIL]: slow / fast at 192 threads = 0.50x") {
		t.Errorf("missing FAIL verdict: %q", buf.String())
	}
	if got := len(log.Checks); got != 5 {
		t.Errorf("Checks = %d entries, want 5", got)
	}

	// Experiments run without a gate pass a nil log; every path must cope.
	nilCfg := Config{}
	shapeCheck(&buf, nilCfg, series, "fast", "slow", 1.5)
	shapeExpect(&buf, nilCfg, "no log attached", true)
	var nilLog *ShapeLog
	if nilLog.Failed() || nilLog.Failures() != nil {
		t.Error("nil ShapeLog must report no failures")
	}
}
