package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"shfllock/internal/workloads"
)

// harnessVersion keys the on-disk result cache. Bump it whenever the
// simulator, the cost model, or any workload changes behavior, so stale
// entries can never be replayed as current results.
const harnessVersion = "shflbench-v4"

// cacheKey is everything a point's result depends on. Two runs with equal
// keys are guaranteed byte-identical results (the simulator is
// deterministic per seed), which is what makes replaying entries safe.
type cacheKey struct {
	Harness string `json:"harness"`
	Exp     string `json:"exp"`
	Lock    string `json:"lock"`
	Threads int    `json:"threads"`
	Variant string `json:"variant,omitempty"`
	Sockets int    `json:"sockets"`
	Cores   int    `json:"cores_per_socket"`
	Seed    int64  `json:"seed"`
	Quick   bool   `json:"quick"`
	// NoFastPath and NoWheel key the engine mode: the simulated results are
	// identical whichever backend runs, but the per-run PathStats counters
	// differ across fast-path modes, and a replay must report the mode it
	// claims to have run rather than silently answering for the other one.
	NoFastPath bool `json:"no_fast_path,omitempty"`
	NoWheel    bool `json:"no_wheel,omitempty"`
}

// cacheEntry is the on-disk format: the full key is stored alongside the
// result so a hash collision can never replay the wrong entry and files
// stay self-describing for inspection.
type cacheEntry struct {
	Key    cacheKey         `json:"key"`
	Result workloads.Result `json:"result"`
}

type diskCache struct{ dir string }

func openCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bench: cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

func (d *diskCache) keyOf(exp string, k resKey, c Config) cacheKey {
	return cacheKey{
		Harness:    harnessVersion,
		Exp:        exp,
		Lock:       k.lock,
		Threads:    k.threads,
		Variant:    k.variant,
		Sockets:    c.Topo.Sockets,
		Cores:      c.Topo.CoresPerSocket,
		Seed:       c.Seed,
		Quick:      c.Quick,
		NoFastPath: c.NoFastPath,
		NoWheel:    c.NoWheel,
	}
}

func (d *diskCache) path(k cacheKey) string {
	b, _ := json.Marshal(k)
	sum := sha256.Sum256(b)
	return filepath.Join(d.dir, "shflbench-"+hex.EncodeToString(sum[:12])+".json")
}

// load returns the cached result for a point, if present. Unreadable,
// truncated, malformed, or key-mismatched entries count as misses — the
// point reruns and the entry is rewritten. Corrupt files (disk damage,
// manual edits, entries written before the tmp+rename scheme) are removed
// on detection so they cannot shadow the slot forever.
func (d *diskCache) load(exp string, rk resKey, c Config) (workloads.Result, bool) {
	k := d.keyOf(exp, rk, c)
	b, err := os.ReadFile(d.path(k))
	if err != nil {
		return workloads.Result{}, false
	}
	var e cacheEntry
	if len(b) == 0 || json.Unmarshal(b, &e) != nil {
		_ = os.Remove(d.path(k))
		return workloads.Result{}, false
	}
	if e.Key != k {
		// Self-describing key disagrees with the slot (hash collision or a
		// foreign file): leave the file alone, just don't replay it.
		return workloads.Result{}, false
	}
	return e.Result, true
}

// store writes a point's result. The write is atomic (tmp + rename) so a
// crashed run never leaves a half-written entry for load to reject.
func (d *diskCache) store(exp string, rk resKey, c Config, res workloads.Result) error {
	k := d.keyOf(exp, rk, c)
	b, err := json.MarshalIndent(cacheEntry{Key: k, Result: res}, "", "  ")
	if err != nil {
		// A non-finite float (NaN ratio in Extra) cannot be encoded;
		// skip caching this point rather than failing the run.
		return nil
	}
	p := d.path(k)
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("bench: cache write: %w", err)
	}
	return os.Rename(tmp, p)
}
