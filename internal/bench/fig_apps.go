package bench

import (
	"fmt"
	"io"

	"shfllock/internal/stats"
	"shfllock/internal/workloads"
)

// appExperiment runs one Figure 10 panel: throughput and lock memory for
// every kernel lock set.
func appExperiment(c Config, w io.Writer, title string,
	run func(p workloads.Params, k workloads.KernelLocks) workloads.Result) {
	c = c.withDefaults()
	header(w, c, title)
	pts := c.threadPoints(1)
	kernels := workloads.AllKernels()
	names := make([]string, len(kernels))
	for i, k := range kernels {
		names[i] = k.Name
	}
	mem := map[string]float64{}
	s := sweep(c, names, pts, func(name string, n int) float64 {
		for _, k := range kernels {
			if k.Name == name {
				r := run(c.params(n), k)
				if n == pts[len(pts)-1] {
					mem[name] = float64(r.LockBytes) / (1 << 10)
				}
				return r.OpsPerSec
			}
		}
		return 0
	})
	fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
	fmt.Fprintf(w, "\nlock memory at %d threads (KB):", pts[len(pts)-1])
	for _, name := range names {
		fmt.Fprintf(w, "  %s=%.1f", name, mem[name])
	}
	fmt.Fprintln(w)
	shapeCheck(w, c, s, "shfllock", "stock", 0.7)
	shapeCheck(w, c, s, "shfllock", "cohort", 0.8)
}

func init() {
	register("fig10a", "Figure 10(a): AFL fuzzer model — throughput and lock memory", func(c Config, w io.Writer) {
		appExperiment(c, w, "Figure 10(a) — AFL (fork + file churn + gettimeofday)", workloads.AFL)
	})
	register("fig10b", "Figure 10(b): Exim mail server model — throughput and lock memory", func(c Config, w io.Writer) {
		appExperiment(c, w, "Figure 10(b) — Exim (fork-per-message, 3 files/message)", workloads.Exim)
	})
	register("fig10c", "Figure 10(c): Metis map-reduce model — page faults on mmap_sem", func(c Config, w io.Writer) {
		appExperiment(c, w, "Figure 10(c) — Metis (reader side of mmap_sem)", workloads.Metis)
	})
}
