package bench

import (
	"fmt"
	"io"

	"shfllock/internal/stats"
	"shfllock/internal/workloads"
)

// kernelNames lists the Figure 10 lock-set lineup in registration order.
func kernelNames() []string {
	kernels := workloads.AllKernels()
	names := make([]string, len(kernels))
	for i, k := range kernels {
		names[i] = k.Name
	}
	return names
}

// appPoints enumerates one Figure 10 panel's sweep: every kernel lock set
// at every thread count.
func appPoints(c Config, run func(p workloads.Params, k workloads.KernelLocks) workloads.Result) []Point {
	var out []Point
	for _, k := range workloads.AllKernels() {
		for _, n := range c.threadPoints(1) {
			k, n := k, n
			out = append(out, Point{Lock: k.Name, Threads: n, Run: func(c Config) workloads.Result {
				return run(c.params(n), k)
			}})
		}
	}
	return out
}

// appRender prints one Figure 10 panel: the throughput table plus lock
// memory at the last sweep point for every kernel lock set.
func appRender(c Config, r *Results, w io.Writer, title string) {
	header(w, c, title)
	pts := c.threadPoints(1)
	names := kernelNames()
	lastN := pts[len(pts)-1]
	s := seriesOf(r, names, pts, opsPerSec)
	fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
	fmt.Fprintf(w, "\nlock memory at %d threads (KB):", lastN)
	for _, name := range names {
		fmt.Fprintf(w, "  %s=%.1f", name, float64(r.Get(name, lastN).LockBytes)/(1<<10))
	}
	fmt.Fprintln(w)
	shapeCheck(w, c, s, "shfllock", "stock", 0.7)
	shapeCheck(w, c, s, "shfllock", "cohort", 0.8)
}

func init() {
	register("fig10a", "Figure 10(a): AFL fuzzer model — throughput and lock memory",
		func(c Config) []Point { return appPoints(c, workloads.AFL) },
		func(c Config, r *Results, w io.Writer) {
			appRender(c, r, w, "Figure 10(a) — AFL (fork + file churn + gettimeofday)")
		})
	register("fig10b", "Figure 10(b): Exim mail server model — throughput and lock memory",
		func(c Config) []Point { return appPoints(c, workloads.Exim) },
		func(c Config, r *Results, w io.Writer) {
			appRender(c, r, w, "Figure 10(b) — Exim (fork-per-message, 3 files/message)")
		})
	register("fig10c", "Figure 10(c): Metis map-reduce model — page faults on mmap_sem",
		func(c Config) []Point { return appPoints(c, workloads.Metis) },
		func(c Config, r *Results, w io.Writer) {
			appRender(c, r, w, "Figure 10(c) — Metis (reader side of mmap_sem)")
		})
}
