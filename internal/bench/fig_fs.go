package bench

import (
	"fmt"
	"io"

	"shfllock/internal/simlocks"
	"shfllock/internal/stats"
	"shfllock/internal/workloads"
)

// rwSet is the blocking readers-writer lock lineup of Figures 1 and 9(b,c).
func rwSet() []string {
	return []string{"stock-rwsem", "cst-rw", "cohort-rw", "shfllock-rw"}
}

func rwMaker(name string) simlocks.RWMaker {
	m, ok := simlocks.RWMakerByName(name)
	if !ok {
		panic("unknown rw lock " + name)
	}
	return m
}

func mkMaker(name string) simlocks.Maker {
	m, ok := simlocks.MakerByName(name)
	if !ok {
		panic("unknown lock " + name)
	}
	return m
}

func init() {
	register("fig1a", "Figure 1(a): MWCM file creation throughput (writer side of inode rwsem)",
		func(c Config) []Point {
			return sweepPoints(c, rwSet(), c.threadPoints(1), func(c Config, name string, n int) workloads.Result {
				return workloads.MWCM(c.params(n), rwMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 1(a) — MWCM throughput, shared directory, 4KB files")
			s := seriesOf(r, rwSet(), c.threadPoints(1), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "files/sec", s))
			shapeCheck(w, c, s, "shfllock-rw", "cohort-rw", 1.0)
			shapeCheck(w, c, s, "shfllock-rw", "stock-rwsem", 2.0)
		})

	register("fig1b", "Figure 1(b): lock memory consumed by inodes during MWCM",
		func(c Config) []Point {
			return sweepPoints(c, rwSet(), c.threadPoints(1), func(c Config, name string, n int) workloads.Result {
				return workloads.MWCM(c.params(n), rwMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 1(b) — lock bytes embedded in live inodes (MB)")
			s := seriesOf(r, rwSet(), c.threadPoints(1), func(res workloads.Result) float64 {
				return float64(res.LockBytes) / (1 << 20)
			})
			fmt.Fprint(w, stats.Table("threads", "lock MB", s))
			shapeCheck(w, c, s, "cohort-rw", "shfllock-rw", 10)
		})

	fig9aNames := []string{"stock-mutex", "cohort", "cst", "shfllock-b"}
	register("fig9a", "Figure 9(a): MWRM rename into a shared directory (sb rename mutex)",
		func(c Config) []Point {
			return sweepPoints(c, fig9aNames, c.threadPoints(2), func(c Config, name string, n int) workloads.Result {
				return workloads.MWRM(c.params(n), mkMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 9(a) — MWRM throughput with blocking locks, up to 2x over-subscription")
			s := seriesOf(r, fig9aNames, c.threadPoints(2), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "renames/sec", s))
			shapeCheck(w, c, s, "shfllock-b", "stock-mutex", 0.9)
			shapeCheck(w, c, s, "shfllock-b", "cohort", 1.5)
		})

	register("fig9b", "Figure 9(b): MWCM with blocking locks, up to 2x over-subscription",
		func(c Config) []Point {
			return sweepPoints(c, rwSet(), c.threadPoints(2), func(c Config, name string, n int) workloads.Result {
				return workloads.MWCM(c.params(n), rwMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 9(b) — MWCM throughput (writer side), blocking locks")
			s := seriesOf(r, rwSet(), c.threadPoints(2), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "files/sec", s))
			shapeCheck(w, c, s, "shfllock-rw", "cohort-rw", 1.2)
		})

	fig9cNames := append(rwSet(), "stock-rwsem+bravo", "shfllock-rw+bravo")
	register("fig9c", "Figure 9(c): MRDM directory enumeration (reader side) incl. BRAVO",
		func(c Config) []Point {
			return sweepPoints(c, fig9cNames, c.threadPoints(2), func(c Config, name string, n int) workloads.Result {
				return workloads.MRDM(c.params(n), rwMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 9(c) — MRDM throughput (reader side), blocking locks + BRAVO")
			s := seriesOf(r, fig9cNames, c.threadPoints(2), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "readdirs/sec", s))
			shapeCheck(w, c, s, "shfllock-rw", "stock-rwsem", 0.7)
			shapeCheck(w, c, s, "cohort-rw", "shfllock-rw", 5)
			shapeCheck(w, c, s, "shfllock-rw+bravo", "stock-rwsem+bravo", 0.7)
		})
}
