package bench

import (
	"fmt"
	"io"

	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
	"shfllock/internal/workloads"
)

// linuxLockCalls is the historical dataset behind Figure 2: the number of
// lock() API call sites in the Linux kernel source by release year, as
// published in the paper's motivation. cmd/lockcount reproduces the method
// on any source tree.
var linuxLockCalls = []struct {
	Year      int
	Version   string
	CallSites int
}{
	{2002, "2.5.0", 21000},
	{2004, "2.6.0", 29000},
	{2006, "2.6.16", 38000},
	{2008, "2.6.24", 47000},
	{2010, "2.6.32", 57000},
	{2012, "3.2", 67000},
	{2014, "3.14", 78000},
	{2016, "4.4", 92000},
	{2018, "4.19", 110000},
}

// measureAtomics runs a short single-lock stress and returns atomic RMWs
// per acquire, using the memory model's per-tag accounting.
func measureAtomics(c Config, mk simlocks.Maker, threads, ops int) float64 {
	e := sim.NewEngine(sim.Config{Topo: c.Topo, Seed: c.Seed, HardStop: 3_000_000_000_000, NoFastPath: c.NoFastPath})
	l := mk.New(e, "t1")
	for i := 0; i < threads; i++ {
		e.Spawn("w", -1, func(t *sim.Thread) {
			t.Delay(uint64(t.Rng().Intn(20_000)))
			for k := 0; k < ops; k++ {
				l.Lock(t)
				t.Delay(uint64(300 + t.Rng().Intn(200)))
				l.Unlock(t)
				t.Delay(uint64(t.Rng().Intn(200)))
			}
		})
	}
	e.Run()
	st := e.Mem().StatsPrefix("t1")
	acq := simlocks.StatsOf(l)
	e.Recycle()
	if acq == nil || acq.Acquires == 0 {
		return 0
	}
	return float64(st.Atomics) / float64(acq.Acquires)
}

// Table1Row is one lock's entry in Table 1: its static footprint plus the
// measured atomic operations per acquisition (zero for the RW-lock rows,
// which the table reports footprint-only).
type Table1Row struct {
	Name          string  `json:"name"`
	PerLock       int     `json:"per_lock_bytes"`
	PerWaiter     int     `json:"per_waiter_bytes"`
	PerHolder     int     `json:"per_holder_bytes,omitempty"`
	Dynamic       bool    `json:"dynamic,omitempty"`
	HeapNodes     bool    `json:"heap_nodes,omitempty"`
	AtomicsSolo   float64 `json:"atomics_per_acquire_1t,omitempty"`
	AtomicsContnd float64 `json:"atomics_per_acquire_contended,omitempty"`
}

// Table1Result is the full Table 1 dataset in machine-readable form
// (cmd/memfootprint -json).
type Table1Result struct {
	Mutexes []Table1Row `json:"mutexes"`
	RWLocks []Table1Row `json:"rw_locks"`
}

// Variant labels of Table 1's two atomics measurements per mutex. The
// thread counts alone cannot key them: on a small quick-mode machine the
// contended run can collapse to 1 thread and collide with the solo run.
const (
	t1Solo      = "atomics-solo"
	t1Contended = "atomics-contended"
)

// atomicsKey is the Extra field carrying a measureAtomics value through
// the point/result plumbing (and the on-disk cache).
const atomicsKey = "atomics_per_acquire"

// table1Setup derives the measurement sizes from the config.
func table1Setup(c Config) (ops, contended int) {
	ops = 400
	contended = c.Topo.Cores() / 2
	if c.Quick {
		ops = 120
		contended = c.Topo.Cores() / 4
	}
	return ops, contended
}

// table1Points enumerates Table 1's simulations: solo and contended
// atomics-per-acquire for every mutex (RW locks are footprint-only).
func table1Points(c Config) []Point {
	ops, contended := table1Setup(c)
	var out []Point
	for _, mk := range simlocks.AllMutexMakers() {
		mk := mk
		out = append(out,
			Point{Lock: mk.Name, Threads: 1, Variant: t1Solo, Run: func(c Config) workloads.Result {
				return workloads.Result{Extra: map[string]float64{atomicsKey: measureAtomics(c, mk, 1, ops)}}
			}},
			Point{Lock: mk.Name, Threads: contended, Variant: t1Contended, Run: func(c Config) workloads.Result {
				return workloads.Result{Extra: map[string]float64{atomicsKey: measureAtomics(c, mk, contended, ops/8+4)}}
			}})
	}
	return out
}

// table1Assemble combines the static footprints with the measured atomics.
func table1Assemble(c Config, r *Results) Table1Result {
	_, contended := table1Setup(c)
	sockets := c.Topo.Sockets
	var out Table1Result
	for _, mk := range simlocks.AllMutexMakers() {
		fp := mk.Footprint(sockets)
		out.Mutexes = append(out.Mutexes, Table1Row{
			Name:          mk.Name,
			PerLock:       fp.PerLock,
			PerWaiter:     fp.PerWaiter,
			PerHolder:     fp.PerHolder,
			Dynamic:       fp.Dynamic,
			HeapNodes:     fp.HeapNodes,
			AtomicsSolo:   r.GetV(mk.Name, 1, t1Solo).Extra[atomicsKey],
			AtomicsContnd: r.GetV(mk.Name, contended, t1Contended).Extra[atomicsKey],
		})
	}
	for _, mk := range simlocks.AllRWMakers() {
		fp := mk.Footprint(sockets)
		out.RWLocks = append(out.RWLocks, Table1Row{
			Name:      mk.Name,
			PerLock:   fp.PerLock,
			PerWaiter: fp.PerWaiter,
		})
	}
	return out
}

// Table1Data measures Table 1 — per-lock/per-waiter/per-holder footprints
// and atomics per acquire for every mutex, footprints for every RW lock —
// running the measurements serially (cmd/memfootprint's entry point).
func Table1Data(c Config) Table1Result {
	c = c.withDefaults()
	r := &Results{m: map[resKey]workloads.Result{}}
	for _, p := range table1Points(c) {
		r.m[resKey{p.Lock, p.Threads, p.Variant}] = p.Run(c)
	}
	return table1Assemble(c, r)
}

func init() {
	register("fig2", "Figure 2: lock() call sites in the Linux kernel over time",
		nil, // static dataset: nothing to simulate
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 2 — growth of lock usage in Linux (published dataset)")
			fmt.Fprintf(w, "%-6s %-10s %12s\n", "year", "version", "call sites")
			for _, row := range linuxLockCalls {
				fmt.Fprintf(w, "%-6d %-10s %12d\n", row.Year, row.Version, row.CallSites)
			}
			fmt.Fprintln(w, "\n(use cmd/lockcount to reproduce the count on any source tree)")
		})

	register("table1", "Table 1: memory footprint and atomics per acquire for every lock",
		table1Points,
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Table 1 — footprint (bytes) and atomic ops per acquire")
			WriteTable1(w, table1Assemble(c, r))
		})
}

// WriteTable1 renders the Table 1 dataset as text — shared by the
// registered experiment and cmd/memfootprint's filtered view.
func WriteTable1(w io.Writer, data Table1Result) {
	fmt.Fprintf(w, "%-18s %9s %10s %10s %9s %12s %12s\n",
		"lock", "per-lock", "per-waiter", "per-holder", "dynamic", "atomics(1t)", "atomics(cont)")
	for _, row := range data.Mutexes {
		dyn := ""
		if row.Dynamic {
			dyn = "yes"
		}
		if row.HeapNodes {
			dyn += " heap"
		}
		fmt.Fprintf(w, "%-18s %9d %10d %10d %9s %12.2f %12.2f\n",
			row.Name, row.PerLock, row.PerWaiter, row.PerHolder, dyn, row.AtomicsSolo, row.AtomicsContnd)
	}
	fmt.Fprintln(w, "\nRW lock footprints:")
	fmt.Fprintf(w, "%-18s %9s %10s\n", "lock", "per-lock", "per-waiter")
	for _, row := range data.RWLocks {
		fmt.Fprintf(w, "%-18s %9d %10d\n", row.Name, row.PerLock, row.PerWaiter)
	}
}
