package bench

import (
	"fmt"
	"io"

	"shfllock/internal/lockstat"
	"shfllock/internal/stats"
	"shfllock/internal/workloads"
)

func init() {
	register("fig8a", "Figure 8: MWRL rename in private directories (spinlocks)", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 8 (left) — MWRL throughput with non-blocking locks")
		pts := c.threadPoints(1)
		names := []string{"stock-qspinlock", "cna", "shfllock-nb"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.MWRL(c.params(n), mkMaker(name)).OpsPerSec
		})
		fmt.Fprint(w, stats.Table("threads", "renames/sec", s))
		shapeCheck(w, c, s, "shfllock-nb", "stock-qspinlock", 1.05)
		shapeCheck(w, c, s, "cna", "stock-qspinlock", 1.0)
	})

	register("fig8b", "Figure 8: lock1 empty-critical-section stress (spinlocks)", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 8 (right) — lock1 throughput with non-blocking locks")
		pts := c.threadPoints(1)
		names := []string{"stock-qspinlock", "cna", "shfllock-nb"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.Lock1(c.params(n), mkMaker(name)).OpsPerSec
		})
		fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
		shapeCheck(w, c, s, "shfllock-nb", "stock-qspinlock", 1.05)
	})

	register("fig11a", "Figure 11(a): hash-table nano-bench, non-blocking locks, throughput", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 11(a) — hash table 1% writes, non-blocking locks")
		pts := c.threadPoints(1)
		names := []string{"stock-qspinlock", "cna", "cohort", "shfllock-nb"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.HashTable(c.params(n), mkMaker(name), 1).OpsPerSec
		})
		fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
		shapeCheck(w, c, s, "shfllock-nb", "stock-qspinlock", 1.05)
	})

	register("fig11b", "Figure 11(b): hash-table nano-bench, non-blocking locks, fairness", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 11(b) — fairness factor (0.5 = strictly fair)")
		pts := c.threadPoints(1)
		names := []string{"stock-qspinlock", "cna", "cohort", "shfllock-nb"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.HashTable(c.params(n), mkMaker(name), 1).Fairness
		})
		fmt.Fprint(w, stats.Table("threads", "fairness", s))
	})

	register("fig11c", "Figure 11(c): hash-table nano-bench, blocking locks, up to 4x over-subscription", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 11(c) — hash table 1% writes, blocking locks")
		pts := c.threadPoints(4)
		names := []string{"stock-mutex", "cst", "malthusian", "shfllock-b"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.HashTable(c.params(n), mkMaker(name), 1).OpsPerSec
		})
		fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
		shapeCheck(w, c, s, "shfllock-b", "stock-mutex", 1.3)
	})

	register("fig11d", "Figure 11(d): blocking locks fairness incl. NUMA-only stealing", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 11(d) — fairness factor, blocking locks (+ShflLock NUMA-steal)")
		pts := c.threadPoints(4)
		names := []string{"stock-mutex", "cst", "shfllock-b", "shfllock-b-numa"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.HashTable(c.params(n), mkMaker(name), 1).Fairness
		})
		fmt.Fprint(w, stats.Table("threads", "fairness", s))
	})

	register("fig11e", "Figure 11(e): ShflLock factor analysis (Base/+Shuffler/+Shufflers/+qlast)", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 11(e) — factor analysis at full machine contention")
		n := c.Topo.Cores()
		names := []string{"shfl-base", "shfl+shuffler", "shfl+shufflers", "shfl+qlast"}
		fmt.Fprintf(w, "%-16s %14s %10s\n", "variant", "ops/sec", "vs base")
		var base float64
		for _, name := range names {
			r := workloads.HashTable(c.params(n), mkMaker(name), 1)
			if base == 0 {
				base = r.OpsPerSec
			}
			fmt.Fprintf(w, "%-16s %14.0f %9.1f%%\n", name, r.OpsPerSec, 100*(r.OpsPerSec/base-1))
		}
	})

	register("fig11f", "Figure 11(f): wakeups on vs off the critical path (blocking ShflLock)", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 11(f) — waiter wakeups by where they are issued")
		pts := c.threadPoints(4)
		fmt.Fprintf(w, "%-10s %14s %14s %14s %14s\n", "threads", "acquires", "in-CS wakeups", "off-CS wakeups", "parks")
		var last workloads.Result
		lastN := 0
		for _, n := range pts {
			r := workloads.HashTable(c.params(n), mkMaker("shfllock-b"), 1)
			fmt.Fprintf(w, "%-10d %14.0f %14.0f %14.0f %14.0f\n", n,
				r.Extra["acquires"], r.Extra["wakeups_in_cs"], r.Extra["wakeups_off_cs"], r.Extra["parks"])
			last, lastN = r, n
		}
		inCS, offCS := last.Extra["wakeups_in_cs"], last.Extra["wakeups_off_cs"]
		shapeExpect(w, c,
			fmt.Sprintf("proactive wakeups: in-CS (%.0f) <= 20%% of all wakeups (%.0f) at %d threads",
				inCS, inCS+offCS, lastN),
			inCS <= 0.2*(inCS+offCS+1))
		if c.LockStat {
			fmt.Fprintln(w)
			lockstat.WriteText(w, []lockstat.Report{
				lockstat.FromExtra(fmt.Sprintf("hash-table/shfllock-b@%d", lastN), last.Extra),
			})
		}
	})

	register("fig11g", "Figure 11(g): readers-writer locks, 1% writes, up to 4x over-subscription", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 11(g) — hash table 1% writes, RW locks")
		pts := c.threadPoints(4)
		names := []string{"stock-rwsem", "shfllock-rw"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.HashTableRW(c.params(n), rwMaker(name), 1).OpsPerSec
		})
		fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
		shapeCheck(w, c, s, "shfllock-rw", "stock-rwsem", 1.2)
	})

	register("fig11h", "Figure 11(h): readers-writer locks, 50% writes", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 11(h) — hash table 50% writes, RW locks")
		pts := c.threadPoints(4)
		names := []string{"stock-rwsem", "shfllock-rw"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.HashTableRW(c.params(n), rwMaker(name), 50).OpsPerSec
		})
		fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
		shapeCheck(w, c, s, "shfllock-rw", "stock-rwsem", 1.3)
	})
}
