package bench

import (
	"fmt"
	"io"

	"shfllock/internal/lockstat"
	"shfllock/internal/stats"
	"shfllock/internal/workloads"
)

func init() {
	nbNames := []string{"stock-qspinlock", "cna", "shfllock-nb"}
	register("fig8a", "Figure 8: MWRL rename in private directories (spinlocks)",
		func(c Config) []Point {
			return sweepPoints(c, nbNames, c.threadPoints(1), func(c Config, name string, n int) workloads.Result {
				return workloads.MWRL(c.params(n), mkMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 8 (left) — MWRL throughput with non-blocking locks")
			s := seriesOf(r, nbNames, c.threadPoints(1), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "renames/sec", s))
			shapeCheck(w, c, s, "shfllock-nb", "stock-qspinlock", 1.05)
			shapeCheck(w, c, s, "cna", "stock-qspinlock", 1.0)
		})

	register("fig8b", "Figure 8: lock1 empty-critical-section stress (spinlocks)",
		func(c Config) []Point {
			return sweepPoints(c, nbNames, c.threadPoints(1), func(c Config, name string, n int) workloads.Result {
				return workloads.Lock1(c.params(n), mkMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 8 (right) — lock1 throughput with non-blocking locks")
			s := seriesOf(r, nbNames, c.threadPoints(1), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
			shapeCheck(w, c, s, "shfllock-nb", "stock-qspinlock", 1.05)
		})

	htNB := []string{"stock-qspinlock", "cna", "cohort", "shfllock-nb"}
	htPoints := func(names []string, oversub int) func(Config) []Point {
		return func(c Config) []Point {
			return sweepPoints(c, names, c.threadPoints(oversub), func(c Config, name string, n int) workloads.Result {
				return workloads.HashTable(c.params(n), mkMaker(name), 1)
			})
		}
	}

	register("fig11a", "Figure 11(a): hash-table nano-bench, non-blocking locks, throughput",
		htPoints(htNB, 1),
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 11(a) — hash table 1% writes, non-blocking locks")
			s := seriesOf(r, htNB, c.threadPoints(1), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
			shapeCheck(w, c, s, "shfllock-nb", "stock-qspinlock", 1.05)
		})

	register("fig11b", "Figure 11(b): hash-table nano-bench, non-blocking locks, fairness",
		htPoints(htNB, 1),
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 11(b) — fairness factor (0.5 = strictly fair)")
			s := seriesOf(r, htNB, c.threadPoints(1), fairnessOf)
			fmt.Fprint(w, stats.Table("threads", "fairness", s))
		})

	htB := []string{"stock-mutex", "cst", "malthusian", "shfllock-b"}
	register("fig11c", "Figure 11(c): hash-table nano-bench, blocking locks, up to 4x over-subscription",
		htPoints(htB, 4),
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 11(c) — hash table 1% writes, blocking locks")
			s := seriesOf(r, htB, c.threadPoints(4), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
			shapeCheck(w, c, s, "shfllock-b", "stock-mutex", 1.3)
		})

	htBFair := []string{"stock-mutex", "cst", "shfllock-b", "shfllock-b-numa"}
	register("fig11d", "Figure 11(d): blocking locks fairness incl. NUMA-only stealing",
		htPoints(htBFair, 4),
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 11(d) — fairness factor, blocking locks (+ShflLock NUMA-steal)")
			s := seriesOf(r, htBFair, c.threadPoints(4), fairnessOf)
			fmt.Fprint(w, stats.Table("threads", "fairness", s))
		})

	factorNames := []string{"shfl-base", "shfl+shuffler", "shfl+shufflers", "shfl+qlast"}
	register("fig11e", "Figure 11(e): ShflLock factor analysis (Base/+Shuffler/+Shufflers/+qlast)",
		func(c Config) []Point {
			n := c.Topo.Cores()
			return sweepPoints(c, factorNames, []int{n}, func(c Config, name string, n int) workloads.Result {
				return workloads.HashTable(c.params(n), mkMaker(name), 1)
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 11(e) — factor analysis at full machine contention")
			n := c.Topo.Cores()
			fmt.Fprintf(w, "%-16s %14s %10s\n", "variant", "ops/sec", "vs base")
			var base float64
			for _, name := range factorNames {
				res := r.Get(name, n)
				if base == 0 {
					base = res.OpsPerSec
				}
				fmt.Fprintf(w, "%-16s %14.0f %9.1f%%\n", name, res.OpsPerSec, 100*(res.OpsPerSec/base-1))
			}
		})

	register("fig11f", "Figure 11(f): wakeups on vs off the critical path (blocking ShflLock)",
		htPoints([]string{"shfllock-b"}, 4),
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 11(f) — waiter wakeups by where they are issued")
			pts := c.threadPoints(4)
			fmt.Fprintf(w, "%-10s %14s %14s %14s %14s\n", "threads", "acquires", "in-CS wakeups", "off-CS wakeups", "parks")
			var last workloads.Result
			lastN := 0
			for _, n := range pts {
				res := r.Get("shfllock-b", n)
				fmt.Fprintf(w, "%-10d %14.0f %14.0f %14.0f %14.0f\n", n,
					res.Extra["acquires"], res.Extra["wakeups_in_cs"], res.Extra["wakeups_off_cs"], res.Extra["parks"])
				last, lastN = res, n
			}
			inCS, offCS := last.Extra["wakeups_in_cs"], last.Extra["wakeups_off_cs"]
			shapeExpect(w, c,
				fmt.Sprintf("proactive wakeups: in-CS (%.0f) <= 20%% of all wakeups (%.0f) at %d threads",
					inCS, inCS+offCS, lastN),
				inCS <= 0.2*(inCS+offCS+1))
			if c.LockStat {
				fmt.Fprintln(w)
				lockstat.WriteText(w, []lockstat.Report{
					lockstat.FromExtra(fmt.Sprintf("hash-table/shfllock-b@%d", lastN), last.Extra),
				})
				lockstat.WriteEngineText(w, last.Engine.FastResumes, last.Engine.FastHandoffs, last.Engine.EngineTrips)
			}
		})

	rwNames := []string{"stock-rwsem", "shfllock-rw"}
	htRWPoints := func(writePct int) func(Config) []Point {
		return func(c Config) []Point {
			return sweepPoints(c, rwNames, c.threadPoints(4), func(c Config, name string, n int) workloads.Result {
				return workloads.HashTableRW(c.params(n), rwMaker(name), writePct)
			})
		}
	}

	register("fig11g", "Figure 11(g): readers-writer locks, 1% writes, up to 4x over-subscription",
		htRWPoints(1),
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 11(g) — hash table 1% writes, RW locks")
			s := seriesOf(r, rwNames, c.threadPoints(4), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
			shapeCheck(w, c, s, "shfllock-rw", "stock-rwsem", 1.2)
		})

	register("fig11h", "Figure 11(h): readers-writer locks, 50% writes",
		htRWPoints(50),
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 11(h) — hash table 50% writes, RW locks")
			s := seriesOf(r, rwNames, c.threadPoints(4), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
			shapeCheck(w, c, s, "shfllock-rw", "stock-rwsem", 1.3)
		})
}
