package bench

import (
	"fmt"
	"io"

	"shfllock/internal/stats"
	"shfllock/internal/workloads"
)

// The successor shootout puts the post-ShflLock queue-lock lineage —
// Fissile (TAS fissioned over an MCS outer lock), Hapax (value-based FIFO,
// no reclamation protocol) and Reciprocating (one-word LIFO arrivals,
// alternating segment service) — against the classic baselines they
// descend from and the non-blocking ShflLock, on the paper's two standard
// nano-benches. The lineup comes from the lock registry's dual-substrate
// set: every name here is also torturable natively and under chaos.
var shootoutNames = []string{"tas", "mcs", "shfllock-nb", "fissile", "hapax", "reciprocating"}

func init() {
	register("shootout-a", "Successor shootout: lock1 empty-critical-section stress (Fissile/Hapax/Reciprocating vs baselines)",
		func(c Config) []Point {
			return sweepPoints(c, shootoutNames, c.threadPoints(1), func(c Config, name string, n int) workloads.Result {
				return workloads.Lock1(c.params(n), mkMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Shootout (a) — lock1 throughput, successor locks vs baselines")
			s := seriesOf(r, shootoutNames, c.threadPoints(1), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
			// The queue-handoff locks must leave the global-spinning TAS
			// behind at full contention; Fissile keeps TAS's fast path but
			// its outer queue must still rescue it from the collapse.
			shapeCheck(w, c, s, "mcs", "tas", 1.5)
			shapeCheck(w, c, s, "fissile", "tas", 1.5)
			shapeCheck(w, c, s, "hapax", "tas", 1.5)
			shapeCheck(w, c, s, "reciprocating", "tas", 1.5)
		})

	register("shootout-b", "Successor shootout: hash-table nano-bench, throughput and fairness",
		func(c Config) []Point {
			return sweepPoints(c, shootoutNames, c.threadPoints(1), func(c Config, name string, n int) workloads.Result {
				return workloads.HashTable(c.params(n), mkMaker(name), 1)
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Shootout (b) — hash table 1% writes, successor locks vs baselines")
			s := seriesOf(r, shootoutNames, c.threadPoints(1), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "ops/sec", s))
			fmt.Fprintln(w, "fairness factor (0.5 = strictly fair):")
			f := seriesOf(r, shootoutNames, c.threadPoints(1), fairnessOf)
			fmt.Fprint(w, stats.Table("threads", "fairness", f))
			shapeCheck(w, c, s, "fissile", "tas", 1.2)
			shapeCheck(w, c, s, "hapax", "tas", 1.2)
			shapeCheck(w, c, s, "reciprocating", "tas", 1.2)
			// FIFO admission must show up as fairness: at the last sweep
			// point the strict-FIFO Hapax has to sit clearly nearer the
			// strictly-fair 0.5 than the barging TAS (larger = more unfair).
			last := len(f[0].Y) - 1
			var tasF, hapaxF float64
			for i := range f {
				switch f[i].Label {
				case "tas":
					tasF = f[i].Y[last]
				case "hapax":
					hapaxF = f[i].Y[last]
				}
			}
			shapeExpect(w, c, fmt.Sprintf("hapax fairness %.3f at least 0.05 nearer fair (0.5) than tas %.3f at %d threads",
				hapaxF, tasF, f[0].X[last]), tasF-hapaxF >= 0.05)
		})
}
