package bench

import (
	"fmt"
	"io"

	"shfllock/internal/stats"
	"shfllock/internal/workloads"
)

func init() {
	register("fig12a", "Figure 12(a): LevelDB readrandom, non-blocking userspace locks", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 12(a) — LevelDB readrandom, non-blocking locks")
		pts := c.threadPoints(1)
		names := []string{"pthread", "mcs-heap", "cna-heap", "hmcs-heap", "mcstp", "shfllock-nb"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.LevelDB(c.params(n), mkMaker(name)).OpsPerSec
		})
		fmt.Fprint(w, stats.Table("threads", "reads/sec", s))
		shapeCheck(w, c, s, "shfllock-nb", "mcs-heap", 0.5)
	})

	register("fig12b", "Figure 12(b): LevelDB readrandom, blocking locks, up to 4x over-subscription", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 12(b) — LevelDB readrandom, blocking locks")
		pts := c.threadPoints(4)
		names := []string{"pthread", "mutexee", "malthusian", "shfllock-b"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.LevelDB(c.params(n), mkMaker(name)).OpsPerSec
		})
		fmt.Fprint(w, stats.Table("threads", "reads/sec", s))
		shapeCheck(w, c, s, "shfllock-b", "pthread", 0.5)
		shapeCheck(w, c, s, "shfllock-b", "mutexee", 0.7)
	})

	register("fig12c", "Figure 12(c): streamcluster barrier phases (trylock-heavy)", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 12(c) — streamcluster execution time (lower is better)")
		pts := c.threadPoints(1)
		phases := 48
		if c.Quick {
			phases = 16
		}
		names := []string{"pthread", "mcs-heap", "cna-heap", "hmcs-heap", "mcstp", "shfllock-nb"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			r := workloads.Streamcluster(c.params(n), mkMaker(name), phases)
			return r.Extra["exec_cycles"] / 1e6 // Mcycles, lower = better
		})
		fmt.Fprint(w, stats.Table("threads", "Mcycles (lower=better)", s))
		shapeCheck(w, c, s, "mcs-heap", "shfllock-nb", 0.25)
		shapeCheck(w, c, s, "cna-heap", "shfllock-nb", 0.8)
	})

	register("fig13a", "Figure 13(a): Dedup pipeline throughput", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 13(a) — Dedup jobs per hour (scaled)")
		pts := c.threadPoints(2)
		names := []string{"pthread", "mcs-heap", "cna-heap", "hmcs-heap", "shfllock-nb", "shfllock-b"}
		s := sweep(c, names, pts, func(name string, n int) float64 {
			return workloads.Dedup(c.params(n), mkMaker(name)).OpsPerSec
		})
		fmt.Fprint(w, stats.Table("threads", "chunks/sec", s))
		shapeCheck(w, c, s, "shfllock-b", "pthread", 0.7)
	})

	register("fig13b", "Figure 13(b): Dedup lock-related memory relative to pthread", func(c Config, w io.Writer) {
		c = c.withDefaults()
		header(w, c, "Figure 13(b) — lock allocation ratio vs pthread")
		n := c.Topo.Cores()
		if c.Quick {
			n = c.Topo.Cores() / 2
		}
		base := workloads.Dedup(c.params(n), mkMaker("pthread"))
		names := []string{"pthread", "mutexee", "mcs-heap", "cna-heap", "hmcs-heap", "shfllock-b"}
		fmt.Fprintf(w, "%-14s %16s %12s\n", "lock", "lock bytes", "vs pthread")
		maxHeap := 0.0
		for _, name := range names {
			r := workloads.Dedup(c.params(n), mkMaker(name))
			ratio := float64(r.LockBytes) / float64(base.LockBytes)
			fmt.Fprintf(w, "%-14s %16d %11.1fx\n", name, r.LockBytes, ratio)
			if name == "mcs-heap" || name == "cna-heap" || name == "hmcs-heap" {
				if ratio > maxHeap {
					maxHeap = ratio
				}
			}
		}
		shapeExpect(w, c,
			fmt.Sprintf("heap queue-node locks allocate >= 10x pthread's lock bytes (max %.1fx)", maxHeap),
			maxHeap >= 10)
	})
}
