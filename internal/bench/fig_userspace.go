package bench

import (
	"fmt"
	"io"

	"shfllock/internal/stats"
	"shfllock/internal/workloads"
)

func init() {
	ldbNB := []string{"pthread", "mcs-heap", "cna-heap", "hmcs-heap", "mcstp", "shfllock-nb"}
	register("fig12a", "Figure 12(a): LevelDB readrandom, non-blocking userspace locks",
		func(c Config) []Point {
			return sweepPoints(c, ldbNB, c.threadPoints(1), func(c Config, name string, n int) workloads.Result {
				return workloads.LevelDB(c.params(n), mkMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 12(a) — LevelDB readrandom, non-blocking locks")
			s := seriesOf(r, ldbNB, c.threadPoints(1), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "reads/sec", s))
			shapeCheck(w, c, s, "shfllock-nb", "mcs-heap", 0.5)
		})

	ldbB := []string{"pthread", "mutexee", "malthusian", "shfllock-b"}
	register("fig12b", "Figure 12(b): LevelDB readrandom, blocking locks, up to 4x over-subscription",
		func(c Config) []Point {
			return sweepPoints(c, ldbB, c.threadPoints(4), func(c Config, name string, n int) workloads.Result {
				return workloads.LevelDB(c.params(n), mkMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 12(b) — LevelDB readrandom, blocking locks")
			s := seriesOf(r, ldbB, c.threadPoints(4), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "reads/sec", s))
			shapeCheck(w, c, s, "shfllock-b", "pthread", 0.5)
			shapeCheck(w, c, s, "shfllock-b", "mutexee", 0.7)
		})

	scNames := []string{"pthread", "mcs-heap", "cna-heap", "hmcs-heap", "mcstp", "shfllock-nb"}
	scPhases := func(c Config) int {
		if c.Quick {
			return 16
		}
		return 48
	}
	register("fig12c", "Figure 12(c): streamcluster barrier phases (trylock-heavy)",
		func(c Config) []Point {
			return sweepPoints(c, scNames, c.threadPoints(1), func(c Config, name string, n int) workloads.Result {
				return workloads.Streamcluster(c.params(n), mkMaker(name), scPhases(c))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 12(c) — streamcluster execution time (lower is better)")
			s := seriesOf(r, scNames, c.threadPoints(1), func(res workloads.Result) float64 {
				return res.Extra["exec_cycles"] / 1e6 // Mcycles, lower = better
			})
			fmt.Fprint(w, stats.Table("threads", "Mcycles (lower=better)", s))
			shapeCheck(w, c, s, "mcs-heap", "shfllock-nb", 0.25)
			shapeCheck(w, c, s, "cna-heap", "shfllock-nb", 0.8)
		})

	dedupNames := []string{"pthread", "mcs-heap", "cna-heap", "hmcs-heap", "shfllock-nb", "shfllock-b"}
	register("fig13a", "Figure 13(a): Dedup pipeline throughput",
		func(c Config) []Point {
			return sweepPoints(c, dedupNames, c.threadPoints(2), func(c Config, name string, n int) workloads.Result {
				return workloads.Dedup(c.params(n), mkMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 13(a) — Dedup jobs per hour (scaled)")
			s := seriesOf(r, dedupNames, c.threadPoints(2), opsPerSec)
			fmt.Fprint(w, stats.Table("threads", "chunks/sec", s))
			shapeCheck(w, c, s, "shfllock-b", "pthread", 0.7)
		})

	memNames := []string{"pthread", "mutexee", "mcs-heap", "cna-heap", "hmcs-heap", "shfllock-b"}
	memThreads := func(c Config) int {
		if c.Quick {
			return c.Topo.Cores() / 2
		}
		return c.Topo.Cores()
	}
	register("fig13b", "Figure 13(b): Dedup lock-related memory relative to pthread",
		func(c Config) []Point {
			// The pthread baseline is also a table row; sweepPoints emits it
			// once and the runner deduplicates the repeat.
			return sweepPoints(c, memNames, []int{memThreads(c)}, func(c Config, name string, n int) workloads.Result {
				return workloads.Dedup(c.params(n), mkMaker(name))
			})
		},
		func(c Config, r *Results, w io.Writer) {
			header(w, c, "Figure 13(b) — lock allocation ratio vs pthread")
			n := memThreads(c)
			base := r.Get("pthread", n)
			fmt.Fprintf(w, "%-14s %16s %12s\n", "lock", "lock bytes", "vs pthread")
			maxHeap := 0.0
			for _, name := range memNames {
				res := r.Get(name, n)
				ratio := float64(res.LockBytes) / float64(base.LockBytes)
				fmt.Fprintf(w, "%-14s %16d %11.1fx\n", name, res.LockBytes, ratio)
				if name == "mcs-heap" || name == "cna-heap" || name == "hmcs-heap" {
					if ratio > maxHeap {
						maxHeap = ratio
					}
				}
			}
			shapeExpect(w, c,
				fmt.Sprintf("heap queue-node locks allocate >= 10x pthread's lock bytes (max %.1fx)", maxHeap),
				maxHeap >= 10)
		})
}
