package bench

import (
	"fmt"
	"io"
	"sync"

	"shfllock/internal/sim"
	"shfllock/internal/workloads"
)

// Options configure how RunAll executes an experiment set.
type Options struct {
	// Parallel is the maximum number of simulation points in flight;
	// values <= 1 run the points serially, in declaration order.
	Parallel int
	// CacheDir, when non-empty, memoizes every point's result on disk
	// keyed by (harness version, experiment, lock, threads, variant,
	// topology, seed, quick); see cache.go.
	CacheDir string
	// Banner prints the "=== id: title ===" separator before each
	// experiment (the -exp all layout).
	Banner bool
	// EngineStats appends an aggregate of the simulator's fast-path/
	// slow-path transfer counters across every executed point
	// (shflbench -enginestats).
	EngineStats bool
}

// RunAll executes the experiments' simulation points — concurrently when
// opt.Parallel > 1 and memoized when opt.CacheDir is set — then renders
// each experiment, in the order given, to w.
//
// The output is byte-identical to running every experiment serially:
// points are pure functions of the Config with a private engine each, so
// neither execution order nor parallelism can change a result, and all
// writing happens in the serial render phase. verify.sh enforces the
// guarantee by diffing a serial against a parallel run.
func RunAll(exps []Experiment, c Config, opt Options, w io.Writer) error {
	c = c.withDefaults()
	var cache *diskCache
	if opt.CacheDir != "" {
		var err error
		cache, err = openCache(opt.CacheDir)
		if err != nil {
			return err
		}
	}

	// Phase 1: enumerate every experiment's points. Repeats of the same
	// key within an experiment (e.g. fig13b's pthread baseline, which is
	// also a sweep member) collapse to a single simulation.
	type slot struct {
		exp int
		key resKey
		pt  Point
		res workloads.Result
	}
	results := make([]*Results, len(exps))
	var slots []*slot
	for i, e := range exps {
		results[i] = &Results{m: map[resKey]workloads.Result{}}
		if e.Points == nil {
			continue
		}
		seen := map[resKey]bool{}
		for _, pt := range e.Points(c) {
			k := resKey{pt.Lock, pt.Threads, pt.Variant}
			if seen[k] {
				continue
			}
			seen[k] = true
			slots = append(slots, &slot{exp: i, key: k, pt: pt})
		}
	}

	// Phase 2: run the points, cache-first.
	runOne := func(s *slot) error {
		if cache != nil {
			if res, ok := cache.load(exps[s.exp].ID, s.key, c); ok {
				s.res = res
				return nil
			}
		}
		s.res = s.pt.Run(c)
		if cache != nil {
			return cache.store(exps[s.exp].ID, s.key, c, s.res)
		}
		return nil
	}
	workers := opt.Parallel
	if workers > len(slots) {
		workers = len(slots)
	}
	if workers <= 1 {
		for _, s := range slots {
			if err := runOne(s); err != nil {
				return err
			}
		}
	} else {
		jobs := make(chan *slot)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range jobs {
					if err := runOne(s); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
			}()
		}
		for _, s := range slots {
			jobs <- s
		}
		close(jobs)
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	}

	// Phase 3: reassemble per experiment and render in registration order.
	for _, s := range slots {
		results[s.exp].m[s.key] = s.res
	}
	for i, e := range exps {
		if opt.Banner {
			fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		}
		if e.Render != nil {
			e.Render(c, results[i], w)
		}
		if opt.Banner {
			fmt.Fprintln(w)
		}
	}
	if opt.EngineStats {
		// Summed in slot (declaration) order; addition commutes, so the
		// line is identical however the points were scheduled or cached.
		var agg sim.PathStats
		for _, s := range slots {
			agg.Add(s.res.Engine)
		}
		fmt.Fprintf(w, "engine: fast_resumes=%d fast_handoffs=%d engine_trips=%d fast_share=%.2f%%\n",
			agg.FastResumes, agg.FastHandoffs, agg.EngineTrips, agg.FastShare())
	}
	return nil
}
