package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"shfllock/internal/topology"
	"shfllock/internal/workloads"
)

// fakeExperiments builds a small experiment set whose points count their
// executions, so tests can observe parallel scheduling and cache hits
// without paying for real simulations. The rendered output depends on
// every point's result, which makes byte-comparisons meaningful.
func fakeExperiments(ran *atomic.Int64) []Experiment {
	mk := func(id string, locks []string, pts []int) Experiment {
		return Experiment{
			ID:    id,
			Title: "synthetic " + id,
			Points: func(c Config) []Point {
				var out []Point
				for _, l := range locks {
					for _, n := range pts {
						l, n := l, n
						out = append(out, Point{Lock: l, Threads: n, Run: func(c Config) workloads.Result {
							ran.Add(1)
							return workloads.Result{
								OpsPerSec: float64(len(l)*1000 + n),
								Extra:     map[string]float64{"seed": float64(c.Seed)},
							}
						}})
					}
				}
				return out
			},
			Render: func(c Config, r *Results, w io.Writer) {
				for _, l := range locks {
					for _, n := range pts {
						res := r.Get(l, n)
						fmt.Fprintf(w, "%s %s@%d ops=%.0f seed=%.0f\n", id, l, n, res.OpsPerSec, res.Extra["seed"])
					}
				}
			},
		}
	}
	return []Experiment{
		mk("syn1", []string{"alpha", "bravo"}, []int{1, 4, 16}),
		mk("syn2", []string{"charlie"}, []int{2, 8}),
	}
}

// Parallel execution must reassemble results in registration order and
// produce output byte-identical to the serial runner.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	var ranSerial, ranPar atomic.Int64
	c := Config{Topo: topology.Laptop(), Seed: 7}

	var serial bytes.Buffer
	if err := RunAll(fakeExperiments(&ranSerial), c, Options{Parallel: 1, Banner: true}, &serial); err != nil {
		t.Fatal(err)
	}
	var par bytes.Buffer
	if err := RunAll(fakeExperiments(&ranPar), c, Options{Parallel: 8, Banner: true}, &par); err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial.String(), par.String())
	}
	if ranSerial.Load() != 8 || ranPar.Load() != 8 {
		t.Errorf("executed %d serial / %d parallel points, want 8 each", ranSerial.Load(), ranPar.Load())
	}
	if !strings.Contains(serial.String(), "=== syn1: synthetic syn1 ===") {
		t.Errorf("banner missing:\n%s", serial.String())
	}
}

// A warm cache must serve every point without re-running a simulation,
// and yield byte-identical output.
func TestRunAllCacheWarmRunSkipsPoints(t *testing.T) {
	dir := t.TempDir()
	c := Config{Topo: topology.Laptop(), Seed: 3, Quick: true}
	opt := Options{Parallel: 2, CacheDir: dir}

	var ranCold, ranWarm atomic.Int64
	var cold, warm bytes.Buffer
	if err := RunAll(fakeExperiments(&ranCold), c, opt, &cold); err != nil {
		t.Fatal(err)
	}
	if ranCold.Load() != 8 {
		t.Fatalf("cold run executed %d points, want 8", ranCold.Load())
	}
	if err := RunAll(fakeExperiments(&ranWarm), c, opt, &warm); err != nil {
		t.Fatal(err)
	}
	if ranWarm.Load() != 0 {
		t.Errorf("warm run executed %d points, want 0 (all cached)", ranWarm.Load())
	}
	if cold.String() != warm.String() {
		t.Errorf("warm output differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold.String(), warm.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "shflbench-*.json"))
	if err != nil || len(files) != 8 {
		t.Errorf("cache holds %d entries (err=%v), want 8", len(files), err)
	}
}

// Truncated, empty, or garbage cache entries must count as misses: the
// affected points re-run, the bad files are replaced with fresh entries,
// and the output stays byte-identical to a cold run.
func TestCacheSurvivesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	c := Config{Topo: topology.Laptop(), Seed: 3, Quick: true}
	opt := Options{Parallel: 2, CacheDir: dir}

	var ranCold atomic.Int64
	var cold bytes.Buffer
	if err := RunAll(fakeExperiments(&ranCold), c, opt, &cold); err != nil {
		t.Fatal(err)
	}
	if ranCold.Load() != 8 {
		t.Fatalf("cold run executed %d points, want 8", ranCold.Load())
	}
	files, err := filepath.Glob(filepath.Join(dir, "shflbench-*.json"))
	if err != nil || len(files) != 8 {
		t.Fatalf("cache holds %d entries (err=%v), want 8", len(files), err)
	}
	sort.Strings(files)

	// Damage three entries three different ways.
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], b[:len(b)/2], 0o644); err != nil { // truncated JSON
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], nil, 0o644); err != nil { // empty file
		t.Fatal(err)
	}
	if err := os.WriteFile(files[2], []byte("not json at all\x00\x01"), 0o644); err != nil {
		t.Fatal(err)
	}

	var ranRepair atomic.Int64
	var repaired bytes.Buffer
	if err := RunAll(fakeExperiments(&ranRepair), c, opt, &repaired); err != nil {
		t.Fatal(err)
	}
	if ranRepair.Load() != 3 {
		t.Errorf("repair run executed %d points, want exactly the 3 corrupted ones", ranRepair.Load())
	}
	if cold.String() != repaired.String() {
		t.Errorf("repaired output differs from cold:\n--- cold ---\n%s--- repaired ---\n%s", cold.String(), repaired.String())
	}

	// The bad entries were rewritten: a third run is fully cache-served.
	var ranWarm atomic.Int64
	var warm bytes.Buffer
	if err := RunAll(fakeExperiments(&ranWarm), c, opt, &warm); err != nil {
		t.Fatal(err)
	}
	if ranWarm.Load() != 0 {
		t.Errorf("post-repair run executed %d points, want 0 (corrupt entries not rewritten)", ranWarm.Load())
	}
	if cold.String() != warm.String() {
		t.Errorf("post-repair output differs from cold run")
	}
}

// The cache key must separate harness inputs: a different seed, topology,
// or quick mode re-runs the points instead of replaying stale entries.
func TestCacheKeySeparatesConfigs(t *testing.T) {
	dir := t.TempDir()
	base := Config{Topo: topology.Laptop(), Seed: 1}
	opt := Options{CacheDir: dir}

	var runs atomic.Int64
	for _, c := range []Config{
		base,
		{Topo: topology.Laptop(), Seed: 0}, // seed 0 is distinct from seed 1
		{Topo: topology.Laptop(), Seed: 1, Quick: true},
		{Topo: topology.Machine{Sockets: 1, CoresPerSocket: 4}, Seed: 1},
	} {
		var buf bytes.Buffer
		if err := RunAll(fakeExperiments(&runs), c, opt, &buf); err != nil {
			t.Fatal(err)
		}
	}
	if runs.Load() != 4*8 {
		t.Errorf("executed %d points across 4 distinct configs, want %d (no cross-config cache hits)", runs.Load(), 4*8)
	}
	// And the same config again is fully served from cache.
	var buf bytes.Buffer
	if err := RunAll(fakeExperiments(&runs), base, opt, &buf); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 4*8 {
		t.Errorf("repeat run executed %d extra points, want 0", runs.Load()-4*8)
	}
}

// Duplicate keys within one experiment (a baseline reused as a sweep
// member, like fig13b's pthread row) must collapse to one simulation.
func TestRunAllDeduplicatesPoints(t *testing.T) {
	var ran atomic.Int64
	e := Experiment{
		ID: "dup", Title: "dup",
		Points: func(c Config) []Point {
			run := func(c Config) workloads.Result {
				ran.Add(1)
				return workloads.Result{OpsPerSec: 42}
			}
			return []Point{
				{Lock: "l", Threads: 8, Run: run},
				{Lock: "l", Threads: 8, Run: run}, // repeat of the same key
				{Lock: "l", Threads: 8, Variant: "other", Run: run},
			}
		},
		Render: func(c Config, r *Results, w io.Writer) {
			fmt.Fprintf(w, "%.0f %.0f\n", r.Get("l", 8).OpsPerSec, r.GetV("l", 8, "other").OpsPerSec)
		},
	}
	var buf bytes.Buffer
	if err := RunAll([]Experiment{e}, Config{}, Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 2 {
		t.Errorf("executed %d points, want 2 (duplicate key collapsed)", ran.Load())
	}
	if buf.String() != "42 42\n" {
		t.Errorf("unexpected render: %q", buf.String())
	}
}

// Real experiments, serial vs parallel, on a tiny machine: the end-to-end
// byte-identity guarantee the verify.sh gate relies on.
func TestExperimentsParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ids := []string{"fig8b", "fig11e", "fig13b", "table1"}
	var exps []Experiment
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		exps = append(exps, e)
	}
	c := tinyConfig()
	var serial, par bytes.Buffer
	if err := RunAll(exps, c, Options{Parallel: 1, Banner: true}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := RunAll(exps, c, Options{Parallel: 4, Banner: true}, &par); err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Errorf("parallel run is not byte-identical to serial:\n--- serial ---\n%s--- parallel ---\n%s", serial.String(), par.String())
	}
}
