// Package chaos is a deterministic fault-injection layer for the simulated
// ShflLock family. A seeded Plan decides — in the engine's lockstep
// execution order, so every decision is replayable from the seed — when to
// preempt a shuffler at its most load-bearing moment, stall a lock holder
// inside the critical section, make a waiter acquire with a timeout budget
// (exercising the abandonment protocol end to end), and wake parked waiters
// spuriously. Every injected fault is appended to a Log whose rendering is
// byte-identical across runs with the same Config, which is what the
// verify.sh chaos gate diffs.
//
// A Watchdog rides along: instead of letting an injected (or real)
// deadlock hang the simulation, it aborts the run and captures the frozen
// scheduler state for post-mortem.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"

	"shfllock/internal/sim"
)

// EventKind classifies an injected fault or fault-layer observation.
type EventKind uint8

const (
	// EvShufflerPreempt: a shuffler was forced off-CPU right after taking
	// the role.
	EvShufflerPreempt EventKind = iota
	// EvSpuriousWake: a parked waiter was armed with a spurious wakeup.
	EvSpuriousWake
	// EvHolderStall: the lock holder was stalled inside the critical
	// section for Arg cycles.
	EvHolderStall
	// EvAbortAttempt: an acquisition was made abortable with a budget of
	// Arg cycles.
	EvAbortAttempt
	// EvTimeout: an abortable acquisition gave up (node abandoned).
	EvTimeout
	// EvDeadlockStall: the deadlock scenario parked a holder forever.
	EvDeadlockStall
	// EvWatchdog: the watchdog fired; Arg is the stalled worker's id.
	EvWatchdog
	// EvPolicyFlip: a live policy transition was forced at a transition-
	// adversarial moment. Arg is the sim.FlipMoment; Note names the policy
	// switched to.
	EvPolicyFlip
)

func (k EventKind) String() string {
	switch k {
	case EvShufflerPreempt:
		return "shuffler-preempt"
	case EvSpuriousWake:
		return "spurious-wake"
	case EvHolderStall:
		return "holder-stall"
	case EvAbortAttempt:
		return "abort-attempt"
	case EvTimeout:
		return "timeout"
	case EvDeadlockStall:
		return "deadlock-stall"
	case EvWatchdog:
		return "watchdog"
	case EvPolicyFlip:
		return "policy-flip"
	}
	return "?"
}

// Event is one injected fault, stamped with virtual time and the thread it
// hit.
type Event struct {
	At     uint64
	Thread int
	Kind   EventKind
	Arg    uint64
	// Note carries an optional string payload (the target policy of a
	// flip). Rendered only when non-empty, so pre-existing goldens whose
	// events carry no note stay byte-identical.
	Note string
}

// line renders one event in the log's stable format.
func (ev Event) line() string {
	s := fmt.Sprintf("t=%-12d T%-3d %-16s %d", ev.At, ev.Thread, ev.Kind, ev.Arg)
	if ev.Note != "" {
		s += " " + ev.Note
	}
	return s + "\n"
}

// Log accumulates events in execution order. The engine runs one thread at
// a time, so appends are ordered and the log is deterministic for a seed.
type Log struct {
	Events []Event
}

func (lg *Log) add(at uint64, thread int, kind EventKind, arg uint64) {
	lg.Events = append(lg.Events, Event{At: at, Thread: thread, Kind: kind, Arg: arg})
}

func (lg *Log) addNote(at uint64, thread int, kind EventKind, arg uint64, note string) {
	lg.Events = append(lg.Events, Event{At: at, Thread: thread, Kind: kind, Arg: arg, Note: note})
}

// String renders the log one event per line, byte-stable for a given run.
func (lg *Log) String() string {
	var b strings.Builder
	for _, ev := range lg.Events {
		b.WriteString(ev.line())
	}
	return b.String()
}

// CountArg returns how many events of the given kind carry the given Arg.
func (lg *Log) CountArg(kind EventKind, arg uint64) int {
	n := 0
	for _, ev := range lg.Events {
		if ev.Kind == kind && ev.Arg == arg {
			n++
		}
	}
	return n
}

// Count returns how many events of the given kind were injected.
func (lg *Log) Count(kind EventKind) int {
	n := 0
	for _, ev := range lg.Events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// Plan is the seeded fault schedule. It implements sim.Injector for the
// hooks that live inside the engine (shuffler preemption, spurious
// wakeups) and is consulted directly by the torture harness for the
// decisions that live above the lock API (abort budgets, holder stalls).
// All draws come from one seeded source consulted in lockstep order.
type Plan struct {
	cfg Config
	rng *rand.Rand
	log *Log
	// flipIdx cycles deterministically through cfg.PolicyFlipPolicies so a
	// run's flip sequence exercises every configured target policy.
	flipIdx int
}

// NewPlan builds a fault schedule from the config's seed.
func NewPlan(cfg Config, log *Log) *Plan {
	return &Plan{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), log: log}
}

// Log returns the plan's event log.
func (p *Plan) Log() *Log { return p.log }

func (p *Plan) hit(frac float64) bool {
	return frac > 0 && p.rng.Float64() < frac
}

func (p *Plan) span(min, max uint64) uint64 {
	if max <= min {
		return min
	}
	return min + uint64(p.rng.Int63n(int64(max-min)))
}

// ShufflerPreempt implements sim.Injector: descheduling the shuffler right
// after it consumes the role is the adversarial schedule the paper's
// lock-holder-preemption discussion worries about.
func (p *Plan) ShufflerPreempt(t *sim.Thread) bool {
	if !p.hit(p.cfg.ShufflerPreemptFrac) {
		return false
	}
	p.log.add(t.Now(), t.ID(), EvShufflerPreempt, 0)
	return true
}

// SpuriousWakeDelay implements sim.Injector: parked waiters may wake
// without a grant, forcing the status re-check loops to earn their keep.
func (p *Plan) SpuriousWakeDelay(t *sim.Thread) uint64 {
	if !p.hit(p.cfg.SpuriousWakeFrac) {
		return 0
	}
	d := p.span(p.cfg.SpuriousWakeMin, p.cfg.SpuriousWakeMax)
	if d == 0 {
		d = 1
	}
	p.log.add(t.Now(), t.ID(), EvSpuriousWake, d)
	return d
}

// PolicyFlip implements sim.Injector: forcing a live policy transition at
// the exact instants where a swap interacts with in-flight queue surgery —
// mid-shuffle, during abort reclaim, at head abdication. Targets cycle
// through the configured policy list so one run certifies several
// from/to pairs at every moment. The hit draw short-circuits at frac 0, so
// runs without the fault armed replay pre-existing fault schedules.
func (p *Plan) PolicyFlip(t *sim.Thread, m sim.FlipMoment) string {
	if !p.hit(p.cfg.PolicyFlipFrac) {
		return ""
	}
	pols := p.cfg.PolicyFlipPolicies
	if len(pols) == 0 {
		return ""
	}
	name := pols[p.flipIdx%len(pols)]
	p.flipIdx++
	p.log.addNote(t.Now(), t.ID(), EvPolicyFlip, uint64(m), name)
	return name
}

// AbortBudget decides whether this acquisition should run abortable; a
// non-zero return is the cycle budget to pass to LockAbort.
func (p *Plan) AbortBudget(t *sim.Thread) uint64 {
	if !p.hit(p.cfg.AbortFrac) {
		return 0
	}
	b := p.span(p.cfg.AbortBudgetMin, p.cfg.AbortBudgetMax)
	if b == 0 {
		b = 1
	}
	p.log.add(t.Now(), t.ID(), EvAbortAttempt, b)
	return b
}

// HolderStall decides whether the holder should stall inside the critical
// section, returning the stall length in cycles.
func (p *Plan) HolderStall(t *sim.Thread) uint64 {
	if !p.hit(p.cfg.HolderStallFrac) {
		return 0
	}
	d := p.span(p.cfg.HolderStallMin, p.cfg.HolderStallMax)
	if d == 0 {
		d = 1
	}
	p.log.add(t.Now(), t.ID(), EvHolderStall, d)
	return d
}
