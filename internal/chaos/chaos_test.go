package chaos

import (
	"strings"
	"testing"
)

// TestRunReproducible: the whole point of the layer — same seed, same
// faults, same outcome, byte for byte. This is the property the verify.sh
// chaos gate enforces end to end through cmd/locktorture.
func TestRunReproducible(t *testing.T) {
	for _, lock := range []string{"shfllock-b", "shfllock-nb"} {
		t.Run(lock, func(t *testing.T) {
			cfg := Defaults(42)
			cfg.Lock = lock
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.Log.String() != b.Log.String() {
				t.Fatalf("fault logs differ between identical runs:\n--- a\n%s--- b\n%s", a.Log.String(), b.Log.String())
			}
			if a.Summary() != b.Summary() {
				t.Fatalf("summaries differ:\n%s\n%s", a.Summary(), b.Summary())
			}
			if a.MutualExclusionViolations != 0 {
				t.Fatalf("mutual exclusion violated %d times under chaos", a.MutualExclusionViolations)
			}
			if a.WatchdogFired {
				t.Fatalf("watchdog fired without a deadlock: %s\n%s", a.WatchdogReason, a.Report)
			}
			if a.Timeouts == 0 {
				t.Fatalf("chaos run injected no timeouts; abandonment untested (log:\n%s)", a.Log.String())
			}
			if a.Counters.Aborts != a.Timeouts {
				t.Fatalf("lock counted %d aborts, harness saw %d timeouts", a.Counters.Aborts, a.Timeouts)
			}
			if a.Counters.Reclaims == 0 {
				t.Fatalf("timeouts occurred but no abandoned node was ever reclaimed")
			}
		})
	}
}

// TestSeedsDiverge: different seeds must produce different fault schedules
// (otherwise the seed isn't actually feeding the plan).
func TestSeedsDiverge(t *testing.T) {
	a, err := Run(Defaults(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Defaults(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Log.String() == b.Log.String() {
		t.Fatal("seeds 1 and 2 produced identical fault logs")
	}
}

// TestFaultFreeRunsClean: with every fault class disarmed the run is just
// the torture loop — every iteration completes, nothing is logged, and
// the watchdog stays quiet.
func TestFaultFreeRunsClean(t *testing.T) {
	cfg := Defaults(9)
	cfg.AbortFrac = 0
	cfg.ShufflerPreemptFrac = 0
	cfg.SpuriousWakeFrac = 0
	cfg.HolderStallFrac = 0
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Log.Events) != 0 {
		t.Fatalf("disarmed run logged %d events:\n%s", len(r.Log.Events), r.Log.String())
	}
	if r.WatchdogFired {
		t.Fatalf("watchdog fired on a fault-free run: %s", r.WatchdogReason)
	}
	if want := uint64(cfg.Workers * cfg.Iters); r.Ops != want {
		t.Fatalf("ops = %d, want %d", r.Ops, want)
	}
	if r.MutualExclusionViolations != 0 {
		t.Fatalf("mutual exclusion violated %d times", r.MutualExclusionViolations)
	}
}

// TestWatchdogCatchesDeadlock: an injected permanent holder stall must
// fire the watchdog (instead of hanging the run) and the post-mortem must
// carry the frozen scheduler state.
func TestWatchdogCatchesDeadlock(t *testing.T) {
	cfg := Defaults(5)
	cfg.Deadlock = true
	cfg.WatchdogInterval = 1_000_000
	cfg.WatchdogThreshold = 20_000_000
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.WatchdogFired {
		t.Fatal("deadlock injected but watchdog never fired")
	}
	// The blamed worker is whichever starved longest — often one blocked
	// behind the stalled holder, not the holder itself.
	if !strings.Contains(r.WatchdogReason, "made no progress") {
		t.Fatalf("unexpected watchdog reason: %s", r.WatchdogReason)
	}
	if !strings.Contains(r.Report, "thread") || !strings.Contains(r.Report, "fault log tail") {
		t.Fatalf("post-mortem is missing the scheduler dump or log tail:\n%s", r.Report)
	}
	if r.Log.Count(EvDeadlockStall) != 1 || r.Log.Count(EvWatchdog) != 1 {
		t.Fatalf("expected exactly one stall and one watchdog event, log:\n%s", r.Log.String())
	}
	// The fire itself must also replay deterministically.
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Log.String() != r2.Log.String() || r.Cycles != r2.Cycles {
		t.Fatal("deadlock run is not reproducible")
	}
}

// TestLimboReuse: a thread whose abortable acquisition timed out must be
// able to acquire again (its node is reclaimed and reused), repeatedly.
func TestLimboReuse(t *testing.T) {
	cfg := Defaults(21)
	cfg.AbortFrac = 0.6 // hammer the abandonment path
	cfg.AbortBudgetMin = 10_000
	cfg.AbortBudgetMax = 60_000
	cfg.Iters = 60
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MutualExclusionViolations != 0 {
		t.Fatalf("mutual exclusion violated %d times", r.MutualExclusionViolations)
	}
	if r.WatchdogFired {
		t.Fatalf("watchdog fired: %s\n%s", r.WatchdogReason, r.Report)
	}
	if r.Timeouts == 0 {
		t.Fatal("aggressive abort config produced no timeouts")
	}
	// Every worker finished all iterations: ops + timeouts covers them.
	if got := r.Ops + r.Timeouts; got != uint64(cfg.Workers*cfg.Iters) {
		t.Fatalf("ops+timeouts = %d, want %d (a worker lost an iteration)", got, cfg.Workers*cfg.Iters)
	}
}
