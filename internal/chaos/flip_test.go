package chaos

import (
	"strings"
	"testing"

	"shfllock/internal/sim"
)

// TestFlipRunCertifies: the policy-flip torture at the verify.sh gate's
// seed must land a transition at all three adversarial moments, keep every
// acquisition accounted for, leave the queue clean, and replay
// byte-identically. This is the in-tree twin of the chaos_flip_seed42
// golden gate.
func TestFlipRunCertifies(t *testing.T) {
	cfg := FlipDefaults(42)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Log.String() != b.Log.String() || a.Summary() != b.Summary() {
		t.Fatal("flip-armed runs with identical configs diverged")
	}
	if a.WatchdogFired {
		t.Fatalf("watchdog fired: %s\n%s", a.WatchdogReason, a.Report)
	}
	if a.MutualExclusionViolations != 0 {
		t.Fatalf("%d mutual-exclusion violations under forced transitions", a.MutualExclusionViolations)
	}
	for _, m := range []sim.FlipMoment{sim.FlipMidShuffle, sim.FlipAbortReclaim, sim.FlipHeadAbdication} {
		if a.Log.CountArg(EvPolicyFlip, uint64(m)) == 0 {
			t.Errorf("no policy flip landed at the %s moment", m)
		}
	}
	if a.Ops+a.Timeouts != a.Expected {
		t.Fatalf("lost wakeups: ops=%d timeouts=%d, expected %d acquisitions", a.Ops, a.Timeouts, a.Expected)
	}
	if a.QueueResidue != "" {
		t.Fatalf("queue residue after run: %s", a.QueueResidue)
	}
	if a.PolicyFlips == 0 {
		t.Fatal("fault armed but no flips recorded")
	}
	// Every injected flip is one epoched transition past the boot install,
	// and the log's epochs must be strictly increasing.
	if !strings.Contains(a.Transitions, "chaos:mid-shuffle") {
		t.Fatalf("transition log missing chaos triggers:\n%s", a.Transitions)
	}
}

// TestFlipFreeSummaryUnchanged: with the fault disarmed the Result and its
// Summary must not mention flips at all — the pre-existing goldens replay
// through the same code path.
func TestFlipFreeSummaryUnchanged(t *testing.T) {
	r, err := Run(Defaults(42))
	if err != nil {
		t.Fatal(err)
	}
	if r.FlipArmed || r.PolicyFlips != 0 {
		t.Fatalf("flip-free run reports flips: armed=%v n=%d", r.FlipArmed, r.PolicyFlips)
	}
	for _, forbidden := range []string{"policy-flips=", "ops-accounting=", "transition log:"} {
		if strings.Contains(r.Summary(), forbidden) {
			t.Fatalf("flip-free Summary leaks %q:\n%s", forbidden, r.Summary())
		}
	}
}
