package chaos

import (
	"fmt"

	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
)

// Config describes one chaos-torture run. The zero value is not usable;
// call Defaults (or fill every field) first. Every run with the same
// Config produces a byte-identical Result.Log and identical counters.
type Config struct {
	Seed int64
	// Lock is a simlocks maker name; abort injection requires a lock with
	// a LockAbort method (the ShflLock family).
	Lock    string
	Workers int
	Iters   int // iterations per worker

	// AbortFrac of acquisitions run abortable with a budget drawn from
	// [AbortBudgetMin, AbortBudgetMax) cycles.
	AbortFrac                      float64
	AbortBudgetMin, AbortBudgetMax uint64

	// ShufflerPreemptFrac forces a yield right after a shuffler takes the
	// role.
	ShufflerPreemptFrac float64

	// SpuriousWakeFrac arms parked waiters with a spurious wakeup after a
	// delay drawn from [SpuriousWakeMin, SpuriousWakeMax) cycles.
	SpuriousWakeFrac                 float64
	SpuriousWakeMin, SpuriousWakeMax uint64

	// HolderStallFrac stalls the lock holder inside the critical section
	// for [HolderStallMin, HolderStallMax) cycles.
	HolderStallFrac                float64
	HolderStallMin, HolderStallMax uint64

	// PolicyFlipFrac forces a live policy transition — through the lock's
	// epoched transition API — at the transition-adversarial moments
	// (mid-shuffle, abort reclaim, head abdication), switching to the next
	// name in PolicyFlipPolicies. Zero (the default) draws nothing from the
	// fault schedule, so pre-existing goldens replay unchanged.
	PolicyFlipFrac     float64
	PolicyFlipPolicies []string

	// Deadlock makes worker 0 acquire and then stall forever mid-run: the
	// scenario the watchdog must catch.
	Deadlock bool

	// Watchdog cadence: check every Interval cycles, fire when a live
	// worker's last beat is older than Threshold.
	WatchdogInterval  uint64
	WatchdogThreshold uint64
}

// Defaults is the standard chaos configuration for the given seed: the
// blocking ShflLock on an over-subscribed laptop topology with every fault
// class armed.
func Defaults(seed int64) Config {
	return Config{
		Seed:                seed,
		Lock:                "shfllock-b",
		Workers:             12, // 8 cores: parking paths stay hot
		Iters:               40,
		AbortFrac:           0.25,
		AbortBudgetMin:      50_000,
		AbortBudgetMax:      400_000,
		ShufflerPreemptFrac: 0.10,
		SpuriousWakeFrac:    0.20,
		SpuriousWakeMin:     5_000,
		SpuriousWakeMax:     80_000,
		HolderStallFrac:     0.05,
		HolderStallMin:      20_000,
		HolderStallMax:      200_000,
		WatchdogInterval:    2_000_000,
		WatchdogThreshold:   200_000_000,
	}
}

// FlipDefaults is Defaults with the policy-flip fault armed, cycling
// through in-family and cross-stage targets so one run certifies several
// from/to pairs at every moment. The abort knobs are sharpened relative
// to Defaults: head abdication only exists when a timed waiter reaches
// the queue head and then times out spinning on the TAS word, which needs
// budgets short enough — and holder stalls long enough — for the head to
// give up while the lock is held. The default budgets never produce one.
func FlipDefaults(seed int64) Config {
	cfg := Defaults(seed)
	cfg.AbortFrac = 0.40
	cfg.AbortBudgetMin = 20_000
	cfg.AbortBudgetMax = 150_000
	cfg.HolderStallFrac = 0.15
	cfg.HolderStallMin = 100_000
	cfg.HolderStallMax = 400_000
	cfg.PolicyFlipFrac = 0.50
	cfg.PolicyFlipPolicies = []string{"ablation-base", "numa", "ablation+shufflers", "prio"}
	return cfg
}

// Result is everything a chaos run observed.
type Result struct {
	Log      *Log
	Cycles   uint64 // virtual time at exit (or abort)
	Ops      uint64 // completed critical sections
	Timeouts uint64 // abortable acquisitions that gave up
	Counters simlocks.Counters

	WatchdogFired  bool
	WatchdogReason string
	Report         string // post-mortem (only when the watchdog fired)

	MutualExclusionViolations int

	// Policy-flip certification (populated only when the fault is armed,
	// so Summary stays byte-identical for flip-free goldens).
	FlipArmed   bool
	PolicyFlips int
	// Expected is workers*iters: every acquisition must end in a completed
	// critical section or a logged timeout, or a wakeup was lost.
	Expected uint64
	// QueueResidue is "" when the queue drained cleanly (see
	// simlocks.ShflLock.QueueResidue).
	QueueResidue string
	// Transitions is the lock's TransitionLog rendering at exit.
	Transitions string
}

// abortableLock is the capability the abort injection needs; the ShflLock
// family provides it.
type abortableLock interface {
	LockAbort(t *sim.Thread, budget uint64) bool
}

// Run executes one chaos-torture run and returns its deterministic result.
func Run(cfg Config) (*Result, error) {
	mk, ok := simlocks.MakerByName(cfg.Lock)
	if !ok {
		return nil, fmt.Errorf("chaos: unknown lock %q", cfg.Lock)
	}
	log := &Log{}
	plan := NewPlan(cfg, log)
	res := &Result{Log: log}

	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: cfg.Seed, HardStop: 2_000_000_000_000})
	e.SetInjector(plan)
	l := mk.New(e, "chaos/"+cfg.Lock)
	al, abortable := l.(abortableLock)
	if cfg.AbortFrac > 0 && !abortable {
		return nil, fmt.Errorf("chaos: lock %q does not support abortable acquisition", cfg.Lock)
	}
	data := e.Mem().Alloc("chaos/csdata", 2)
	wd := NewWatchdog(e, log, cfg.Workers, cfg.WatchdogInterval, cfg.WatchdogThreshold)
	if sl, ok := l.(*simlocks.ShflLock); ok {
		wd.SetAux(func() string { return sl.Transitions().String() })
	}

	inCS := 0
	for i := 0; i < cfg.Workers; i++ {
		id := i
		e.Spawn(fmt.Sprintf("w%d", id), -1, func(t *sim.Thread) {
			defer wd.WorkerDone(t, id)
			t.Delay(uint64(t.Rng().Intn(50_000))) // scramble arrival order
			for k := 0; k < cfg.Iters; k++ {
				acquired := true
				if abortable {
					if budget := plan.AbortBudget(t); budget > 0 {
						acquired = al.LockAbort(t, budget)
						if !acquired {
							log.add(t.Now(), t.ID(), EvTimeout, 0)
							res.Timeouts++
						}
					} else {
						l.Lock(t)
					}
				} else {
					l.Lock(t)
				}
				if acquired {
					inCS++
					if inCS != 1 {
						res.MutualExclusionViolations++
					}
					if cfg.Deadlock && id == 0 && k == cfg.Iters/2 {
						// Hold the lock and never progress again. Delay (not
						// park) keeps the thread preemptible, so the other
						// workers and the watchdog still get CPU time.
						log.add(t.Now(), t.ID(), EvDeadlockStall, 0)
						for {
							t.Delay(1_000_000)
						}
					}
					if stall := plan.HolderStall(t); stall > 0 {
						t.Delay(stall)
					}
					for _, w := range data {
						t.Store(w, t.Load(w)+1)
					}
					t.Delay(uint64(250 + t.Rng().Intn(100)))
					inCS--
					l.Unlock(t)
					res.Ops++
				}
				wd.Beat(t, id)
				t.Delay(uint64(150 + t.Rng().Intn(100)))
			}
		})
	}
	e.Spawn("watchdog", -1, wd.Run)
	e.Run()

	res.Cycles = e.Now()
	if c := simlocks.StatsOf(l); c != nil {
		res.Counters = *c
	}
	res.WatchdogFired, res.WatchdogReason = wd.Fired()
	res.Report = wd.Report()

	res.FlipArmed = cfg.PolicyFlipFrac > 0
	res.PolicyFlips = log.Count(EvPolicyFlip)
	res.Expected = uint64(cfg.Workers) * uint64(cfg.Iters)
	if sl, ok := l.(*simlocks.ShflLock); ok {
		res.QueueResidue = sl.QueueResidue()
		res.Transitions = sl.Transitions().String()
	}
	return res, nil
}

// Summary renders the run's outcome as stable text (the chaos gate's
// golden output is this plus the log).
func (r *Result) Summary() string {
	c := r.Counters
	s := fmt.Sprintf("cycles=%d ops=%d timeouts=%d acquires=%d steals=%d shuffles=%d parks=%d aborts=%d reclaims=%d mutex-violations=%d\n",
		r.Cycles, r.Ops, r.Timeouts, c.Acquires, c.Steals, c.Shuffles, c.Parks, c.Aborts, c.Reclaims, r.MutualExclusionViolations)
	if r.WatchdogFired {
		s += fmt.Sprintf("watchdog fired: %s\n", r.WatchdogReason)
	} else {
		s += "watchdog quiet\n"
	}
	if r.FlipArmed {
		s += fmt.Sprintf("policy-flips=%d mid-shuffle=%d abort-reclaim=%d head-abdication=%d\n",
			r.PolicyFlips,
			r.Log.CountArg(EvPolicyFlip, uint64(sim.FlipMidShuffle)),
			r.Log.CountArg(EvPolicyFlip, uint64(sim.FlipAbortReclaim)),
			r.Log.CountArg(EvPolicyFlip, uint64(sim.FlipHeadAbdication)))
		acct := "ok"
		if !r.WatchdogFired && r.Ops+r.Timeouts != r.Expected {
			acct = fmt.Sprintf("LOST %d of %d acquisitions", r.Expected-r.Ops-r.Timeouts, r.Expected)
		}
		queue := r.QueueResidue
		if queue == "" {
			queue = "clean"
		}
		s += fmt.Sprintf("ops-accounting=%s queue=%s\n", acct, queue)
		s += "transition log:\n" + r.Transitions
	}
	return s
}
