package chaos

import (
	"fmt"
	"strings"

	"shfllock/internal/sim"
)

// Watchdog detects starvation and deadlock in a chaos run. Workers stamp a
// progress beat once per completed iteration; the watchdog thread wakes on
// an interval and, if any live worker's beat is older than the threshold,
// captures a post-mortem report (the frozen scheduler state plus the fault
// log tail) and aborts the engine instead of letting the run hang.
//
// All state is engine metadata indexed by worker id in plain slices —
// never maps — so a run's behaviour and report are deterministic.
type Watchdog struct {
	eng       *sim.Engine
	log       *Log
	interval  uint64
	threshold uint64

	beats  []uint64 // last progress stamp, indexed by worker id
	done   []bool   // workers that exited (excluded from checks)
	live   int      // workers still running
	fired  bool
	reason string
	report string

	// aux, when set, contributes extra post-mortem state at fire time (the
	// torture harness hangs the lock's policy TransitionLog here, so a hang
	// can be correlated with the transition that preceded it).
	aux func() string
}

// SetAux installs an extra post-mortem section rendered when the watchdog
// fires.
func (w *Watchdog) SetAux(f func() string) { w.aux = f }

// NewWatchdog sizes the watchdog for the given worker count. Workers must
// be spawned with ids 0..workers-1 matching their beat slot.
func NewWatchdog(e *sim.Engine, log *Log, workers int, interval, threshold uint64) *Watchdog {
	return &Watchdog{
		eng: e, log: log,
		interval: interval, threshold: threshold,
		beats: make([]uint64, workers),
		done:  make([]bool, workers),
		live:  workers,
	}
}

// Beat records progress for the calling worker.
func (w *Watchdog) Beat(t *sim.Thread, worker int) { w.beats[worker] = t.Now() }

// WorkerDone removes a finished worker from the stall checks.
func (w *Watchdog) WorkerDone(t *sim.Thread, worker int) {
	w.done[worker] = true
	w.live--
}

// Fired reports whether the watchdog aborted the run, with the reason.
func (w *Watchdog) Fired() (bool, string) { return w.fired, w.reason }

// Report returns the post-mortem captured at fire time: stall summary,
// fault-log tail, and the engine's frozen scheduler dump.
func (w *Watchdog) Report() string { return w.report }

// Run is the watchdog thread body; spawn it alongside the workers. It
// exits quietly when every worker finishes, and never returns after
// firing (the engine is aborted and the thread parks forever).
func (w *Watchdog) Run(t *sim.Thread) {
	for w.live > 0 {
		t.Delay(w.interval)
		if w.live == 0 {
			return
		}
		now := t.Now()
		for id := range w.beats {
			if w.done[id] {
				continue
			}
			if age := now - w.beats[id]; age > w.threshold {
				w.fire(t, id, age)
			}
		}
	}
}

func (w *Watchdog) fire(t *sim.Thread, worker int, age uint64) {
	w.fired = true
	w.reason = fmt.Sprintf("watchdog: worker %d made no progress for %d cycles (threshold %d)",
		worker, age, w.threshold)
	w.log.add(t.Now(), t.ID(), EvWatchdog, uint64(worker))

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", w.reason)
	b.WriteString("last progress beats:\n")
	for id, beat := range w.beats {
		state := "live"
		if w.done[id] {
			state = "done"
		}
		fmt.Fprintf(&b, "  worker %-3d %s  last beat t=%d (age %d)\n", id, state, beat, t.Now()-beat)
	}
	tail := w.log.Events
	if len(tail) > 20 {
		tail = tail[len(tail)-20:]
	}
	b.WriteString("\nfault log tail:\n")
	for _, ev := range tail {
		b.WriteString("  " + ev.line())
	}
	if w.aux != nil {
		b.WriteString("\npolicy transitions:\n")
		b.WriteString(w.aux())
	}
	b.WriteString("\n")
	b.WriteString(w.eng.Dump())
	w.report = b.String()

	w.eng.Abort(w.reason)
	select {} // the engine is gone; freeze alongside the threads it left
}
