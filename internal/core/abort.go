package core

import (
	"context"
	"time"
)

// aborter carries an acquisition's give-up condition: a deadline
// (LockTimeout), a cancellation channel (LockContext), or both. A nil
// *aborter means the acquisition blocks forever.
type aborter struct {
	deadline time.Time
	done     <-chan struct{}
}

// expired reports whether the acquisition should give up. Callers
// rate-limit it on their spin paths; the clock read is the dominant cost.
func (a *aborter) expired() bool {
	if a.done != nil {
		select {
		case <-a.done:
			return true
		default:
		}
	}
	return !a.deadline.IsZero() && !time.Now().Before(a.deadline)
}

// parkAbortable parks like parkSelf but also wakes on the aborter's
// deadline or cancellation. A wake for any reason returns to the caller's
// status loop, which distinguishes grant from expiry.
func (n *qnode) parkAbortable(a *aborter) {
	if a == nil {
		n.parkSelf()
		return
	}
	var timeC <-chan time.Time
	var timer *time.Timer
	if !a.deadline.IsZero() {
		d := time.Until(a.deadline)
		if d <= 0 {
			return
		}
		timer = time.NewTimer(d)
		timeC = timer.C
	}
	select {
	case <-n.park:
	case <-timeC:
	case <-a.done: // nil when deadline-only: never ready
	}
	if timer != nil {
		timer.Stop()
	}
}

// lockTimeout acquires with a relative deadline. A non-positive duration
// degenerates to a single-CAS TryLock.
func (l *shflState) lockTimeout(blocking bool, d time.Duration) bool {
	if d <= 0 {
		return l.tryLock()
	}
	return l.lockAbort(blocking, 0, &aborter{deadline: time.Now().Add(d)})
}

// lockContext acquires unless ctx is cancelled first.
func (l *shflState) lockContext(blocking bool, ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.lockAbort(blocking, 0, &aborter{done: ctx.Done()}) {
		return nil
	}
	return context.Cause(ctx)
}

// LockTimeout acquires the spinlock unless d elapses first; it reports
// whether the lock was acquired. On expiry the waiter abandons its queue
// node in place (MCSTP-style) and a shuffler or a later grant walk reclaims
// it; the queue stays intact throughout.
func (l *SpinLock) LockTimeout(d time.Duration) bool { return l.s.lockTimeout(false, d) }

// LockContext acquires the spinlock unless ctx is cancelled first. It
// returns nil once the lock is held, or the context's cancellation cause.
func (l *SpinLock) LockContext(ctx context.Context) error { return l.s.lockContext(false, ctx) }

// LockTimeout acquires the mutex unless d elapses first; it reports whether
// the lock was acquired. See SpinLock.LockTimeout for the abandonment
// semantics; a parked waiter wakes on its own deadline.
func (m *Mutex) LockTimeout(d time.Duration) bool { return m.s.lockTimeout(true, d) }

// LockContext acquires the mutex unless ctx is cancelled first. It returns
// nil once the lock is held, or the context's cancellation cause.
func (m *Mutex) LockContext(ctx context.Context) error { return m.s.lockContext(true, ctx) }

// LockTimeout acquires the write side unless d elapses first; it reports
// whether the lock was acquired. The budget covers both phases: the queue
// wait on the internal ordering mutex and the reader drain. A drain-phase
// expiry backs out completely (writer-waiting bit cleared, ordering mutex
// released), letting blocked readers proceed.
func (l *RWMutex) LockTimeout(d time.Duration) bool {
	if l.count.CompareAndSwap(0, rwWB) {
		return true
	}
	if d <= 0 {
		return false
	}
	return l.lockAbortable(&aborter{deadline: time.Now().Add(d)})
}

// LockContext acquires the write side unless ctx is cancelled first. It
// returns nil once the lock is held, or the context's cancellation cause.
func (l *RWMutex) LockContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.count.CompareAndSwap(0, rwWB) {
		return nil
	}
	if l.lockAbortable(&aborter{done: ctx.Done()}) {
		return nil
	}
	return context.Cause(ctx)
}

// RLockTimeout acquires a read share unless d elapses first; it reports
// whether the share was acquired. The contended path queues on the internal
// ordering mutex with the same MCSTP-style abandonment as LockTimeout; an
// expiry while waiting out an active writer backs the announced read share
// out completely.
func (l *RWMutex) RLockTimeout(d time.Duration) bool {
	if l.tryRFast() {
		return true
	}
	if d <= 0 {
		return false
	}
	return l.rlockAbortable(&aborter{deadline: time.Now().Add(d)})
}

// RLockContext acquires a read share unless ctx is cancelled first. It
// returns nil once the share is held, or the context's cancellation cause.
// This is the read side of the per-request deadline path: a service thread
// doing a read-mostly operation under a request deadline leaves the reader
// queue cleanly instead of piling onto a stalled writer.
func (l *RWMutex) RLockContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.tryRFast() {
		return nil
	}
	if l.rlockAbortable(&aborter{done: ctx.Done()}) {
		return nil
	}
	return context.Cause(ctx)
}

// tryRFast is the uncontended read acquisition: announce a share, keep it
// if no writer is active or waiting.
func (l *RWMutex) tryRFast() bool {
	if l.count.Add(rwRUnit)&(rwWB|rwWWb) == 0 {
		return true
	}
	l.count.Add(^(rwRUnit - 1)) // undo
	return false
}

// rlockAbortable is RLock's contended path with a give-up condition. Like
// RLock it orders behind writers via the internal mutex, announces its
// share while holding it, and waits out only the active writer. An expiry
// in the queue phase abandons the qnode (the mutex's own abort path); an
// expiry in the writer-wait phase retracts the announced share and releases
// the ordering mutex, so neither writers nor later readers see a ghost
// reader.
func (l *RWMutex) rlockAbortable(a *aborter) bool {
	if !l.wlock.s.lockAbort(true, 0, a) {
		return false
	}
	l.count.Add(rwRUnit)
	for i := 1; l.count.Load()&rwWB != 0; i++ {
		if i&31 == 0 && a.expired() {
			l.count.Add(^(rwRUnit - 1))
			l.wlock.Unlock()
			if p := l.wlock.s.probe; p != nil {
				p.Abort()
			}
			return false
		}
		spinWait(i)
	}
	l.wlock.Unlock()
	return true
}

func (l *RWMutex) lockAbortable(a *aborter) bool {
	if !l.wlock.s.lockAbort(true, 0, a) {
		return false
	}
	l.count.Or(rwWWb) // stop new readers
	for i := 1; ; i++ {
		v := l.count.Load()
		if v>>16 == 0 && v&rwWB == 0 {
			if l.count.CompareAndSwap(v, (v&^rwWWb)|rwWB) {
				l.wlock.Unlock()
				return true
			}
			continue
		}
		if i&31 == 0 && a.expired() {
			// Back out: let the readers we stalled move again. Another
			// queued writer may have re-set rwWWb expectations, but the
			// bit is re-asserted by whoever acquires wlock next, so a
			// plain clear is safe while we still hold wlock.
			l.count.And(^rwWWb)
			l.wlock.Unlock()
			if p := l.wlock.s.probe; p != nil {
				p.Abort()
			}
			return false
		}
		spinWait(i)
	}
}
