package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// abortable is the shared abort surface of the three native locks.
type abortable interface {
	Lock()
	Unlock()
	TryLock() bool
	LockTimeout(d time.Duration) bool
	LockContext(ctx context.Context) error
}

func abortLocks() map[string]func() abortable {
	return map[string]func() abortable{
		"spinlock": func() abortable { return &SpinLock{} },
		"mutex":    func() abortable { return &Mutex{} },
		"rwmutex":  func() abortable { return &RWMutex{} },
	}
}

// TestLockTimeoutExpires: a held lock makes LockTimeout give up within its
// budget, and the abandoned attempt must leave the queue fully usable —
// the holder can release and a fresh acquisition succeeds.
func TestLockTimeoutExpires(t *testing.T) {
	for name, mk := range abortLocks() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			l.Lock()
			start := time.Now()
			if l.LockTimeout(5 * time.Millisecond) {
				t.Fatal("LockTimeout acquired a held lock")
			}
			if waited := time.Since(start); waited > 2*time.Second {
				t.Fatalf("LockTimeout took %v, way past its 5ms budget", waited)
			}
			l.Unlock()
			if !l.LockTimeout(time.Second) {
				t.Fatal("free lock not acquired after an abandoned attempt")
			}
			l.Unlock()
		})
	}
}

// TestLockContextCancel: cancellation propagates its cause, and a
// pre-cancelled context never touches the queue.
func TestLockContextCancel(t *testing.T) {
	for name, mk := range abortLocks() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			l.Lock()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- l.LockContext(ctx) }()
			time.Sleep(time.Millisecond)
			cancel()
			if err := <-done; !errors.Is(err, context.Canceled) {
				t.Fatalf("LockContext = %v, want context.Canceled", err)
			}
			pre, precancel := context.WithCancel(context.Background())
			precancel()
			if err := l.LockContext(pre); err == nil {
				t.Fatal("pre-cancelled context acquired the lock")
			}
			l.Unlock()
			if err := l.LockContext(context.Background()); err != nil {
				t.Fatalf("background context failed on a free lock: %v", err)
			}
			l.Unlock()
		})
	}
}

// TestAbortHammer is the abandonment property test: goroutines mix plain,
// try, timeout, and context acquisitions under heavy contention. Two
// invariants are checked end to end:
//
//   - an abandoned attempt never receives the lock: a waiter whose
//     LockTimeout/LockContext reported failure does not touch the plain
//     counter, so a stray grant shows up as a data race (-race) or a lost
//     update;
//   - the queue survives abandonment: every attempt terminates (a dropped
//     or dangling qnode would deadlock the test) and the final counter
//     equals the number of successful acquisitions exactly.
func TestAbortHammer(t *testing.T) {
	for name, mk := range abortLocks() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			goroutines, iters := 8, 300
			if testing.Short() {
				goroutines, iters = 4, 80
			}
			counter := 0
			var granted atomic.Int64
			var timeouts atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						got := false
						switch rng.Intn(4) {
						case 0:
							l.Lock()
							got = true
						case 1:
							got = l.TryLock()
						case 2:
							got = l.LockTimeout(time.Duration(rng.Intn(50)) * time.Microsecond)
						case 3:
							ctx, cancel := context.WithTimeout(context.Background(),
								time.Duration(rng.Intn(50))*time.Microsecond)
							got = l.LockContext(ctx) == nil
							cancel()
						}
						if !got {
							timeouts.Add(1)
							continue
						}
						counter++
						granted.Add(1)
						l.Unlock()
					}
				}(int64(g) + 1)
			}
			wg.Wait()
			if int64(counter) != granted.Load() {
				t.Fatalf("counter=%d but %d acquisitions succeeded (lost update or stray grant)",
					counter, granted.Load())
			}
			// The lock must still be fully functional after all the churn.
			if !l.TryLock() {
				t.Fatal("lock left held after hammer (leaked grant to an abandoned node?)")
			}
			l.Unlock()
			t.Logf("%s: %d granted, %d timed out", name, granted.Load(), timeouts.Load())
		})
	}
}

// TestAbortProbeCounts: aborts and reclaims reported through the probe
// stay consistent — every abort is eventually matched by at most one
// reclaim (the head abdication path aborts without leaving a node behind).
func TestAbortProbeCounts(t *testing.T) {
	var aborts, reclaims atomic.Int64
	p := &countingProbe{aborts: &aborts, reclaims: &reclaims}
	var l SpinLock
	l.SetProbe(p)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				if l.LockTimeout(time.Duration(rng.Intn(30)) * time.Microsecond) {
					l.Unlock()
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	if reclaims.Load() > aborts.Load() {
		t.Fatalf("%d reclaims exceed %d aborts: a live node was reclaimed", reclaims.Load(), aborts.Load())
	}
}

type countingProbe struct {
	aborts, reclaims *atomic.Int64
}

func (p *countingProbe) Steal(bool)               {}
func (p *countingProbe) Contended()               {}
func (p *countingProbe) Handoff()                 {}
func (p *countingProbe) Park()                    {}
func (p *countingProbe) Unpark(bool)              {}
func (p *countingProbe) Shuffle(string, int, int) {}
func (p *countingProbe) Abort()                   { p.aborts.Add(1) }
func (p *countingProbe) Reclaim()                 { p.reclaims.Add(1) }
