package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests cover the RWMutex abortable read path and the exact
// acquisition pattern internal/kvserver's shard handover uses: many
// readers and writers acquiring via LockContext with short deadlines while
// a "controller" goroutine periodically takes the write side to drain the
// shard. Run them under -race: the invariant that matters is that a reader
// whose RLockContext reported failure holds no share (a stray share would
// let a reader's plain access overlap a writer's and trip the detector).

// TestRLockContextBasics: fast path on a free lock, cancellation against a
// held writer, and a clean reacquire after an abandoned attempt.
func TestRLockContextBasics(t *testing.T) {
	var l RWMutex
	if err := l.RLockContext(context.Background()); err != nil {
		t.Fatalf("free lock RLockContext: %v", err)
	}
	l.RUnlock()

	l.Lock() // writer holds
	if l.RLockTimeout(2 * time.Millisecond) {
		t.Fatal("RLockTimeout acquired a share under an active writer")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.RLockContext(ctx) }()
	time.Sleep(time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("RLockContext = %v, want context.Canceled", err)
	}
	pre, precancel := context.WithCancel(context.Background())
	precancel()
	if err := l.RLockContext(pre); err == nil {
		t.Fatal("pre-cancelled context acquired a read share")
	}
	l.Unlock()

	// After all the aborted readers, the lock must be fully usable in both
	// modes: writer excludes, then readers overlap.
	l.Lock()
	l.Unlock()
	if !l.RLockTimeout(time.Second) || !l.TryRLock() {
		t.Fatal("lock unusable after aborted read attempts")
	}
	l.RUnlock()
	l.RUnlock()
}

// TestRLockContextNoGhostShare: an expired read attempt must retract its
// announced share completely. A ghost share would starve the next writer's
// drain forever; bound the test with a generous deadline.
func TestRLockContextNoGhostShare(t *testing.T) {
	var l RWMutex
	l.Lock() // active writer forces readers into the slow path
	var failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if l.RLockTimeout(time.Duration(20+i) * time.Microsecond) {
					l.RUnlock()
				} else {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	l.Unlock()
	if failed.Load() == 0 {
		t.Fatal("no read attempt expired; test exercised nothing")
	}
	// Every failed attempt must have retracted its share: a fresh writer
	// acquires promptly.
	if !l.LockTimeout(5 * time.Second) {
		t.Fatal("writer starved: an aborted reader left a ghost share")
	}
	l.Unlock()
}

// TestLockContextConcurrentCancel races cancellation against the grant on
// all three locks: the cancel fires while the waiter may be at any queue
// position, including the moment it is being granted. Whatever side wins,
// the accounting must balance — err == nil iff the caller owns the lock and
// must unlock it.
func TestLockContextConcurrentCancel(t *testing.T) {
	type ctxLock interface {
		Lock()
		Unlock()
		LockContext(ctx context.Context) error
	}
	locks := map[string]ctxLock{"mutex": &Mutex{}, "spinlock": &SpinLock{}, "rwmutex": &RWMutex{}}
	for name, l := range locks {
		t.Run(name, func(t *testing.T) {
			goroutines, iters := 8, 200
			if testing.Short() {
				goroutines, iters = 4, 60
			}
			counter := 0 // plain: only ever touched under the lock
			var granted atomic.Int64
			var cancelled atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						ctx, cancel := context.WithCancel(context.Background())
						// Cancel from a sibling goroutine after a jittered
						// delay, so cancellation lands at arbitrary points of
						// the acquisition: pre-queue, mid-queue, or after the
						// grant CAS has already happened.
						var cwg sync.WaitGroup
						cwg.Add(1)
						go func(d time.Duration) {
							defer cwg.Done()
							time.Sleep(d)
							cancel()
						}(time.Duration(rng.Intn(30)) * time.Microsecond)
						if err := l.LockContext(ctx); err == nil {
							counter++
							granted.Add(1)
							l.Unlock()
						} else {
							cancelled.Add(1)
						}
						cwg.Wait()
						cancel()
					}
				}(int64(g) + 1)
			}
			wg.Wait()
			if int64(counter) != granted.Load() {
				t.Fatalf("counter=%d, granted=%d: grant/cancel race double-granted or lost the lock",
					counter, granted.Load())
			}
			l.Lock() // still serviceable
			l.Unlock()
			t.Logf("%s: granted=%d cancelled=%d", name, granted.Load(), cancelled.Load())
		})
	}
}

// TestRWContextHandoverPattern is the shard-handover shape from
// internal/kvserver run directly against one RWMutex: readers and writers
// under per-request deadlines, while a controller repeatedly performs the
// drain step (full write acquisition) that precedes swapping a shard's
// lock. Plain counters model the protected data; -race flags any overlap
// between a reader's load window and a writer's store.
func TestRWContextHandoverPattern(t *testing.T) {
	var l RWMutex
	var data int // plain on purpose: the lock is its only synchronization
	var writers atomic.Int32
	var violations atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup

	reader := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(5+rng.Intn(100))*time.Microsecond)
			if err := l.RLockContext(ctx); err == nil {
				if writers.Load() != 0 {
					violations.Add(1)
				}
				_ = data
				l.RUnlock()
			}
			cancel()
		}
	}
	writer := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(5+rng.Intn(150))*time.Microsecond)
			if err := l.LockContext(ctx); err == nil {
				if writers.Add(1) != 1 {
					violations.Add(1)
				}
				data++
				writers.Add(-1)
				l.Unlock()
			}
			cancel()
		}
	}

	for g := 0; g < 6; g++ {
		wg.Add(1)
		go reader(int64(g) + 1)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go writer(int64(g) + 100)
	}

	// Controller: the drain step of a handover, repeatedly. The full write
	// acquisition must always make progress despite the deadline churn
	// around it.
	deadline := time.After(800 * time.Millisecond)
	if testing.Short() {
		deadline = time.After(200 * time.Millisecond)
	}
	drains := 0
	for draining := true; draining; {
		select {
		case <-deadline:
			draining = false
		default:
			l.Lock()
			if writers.Add(1) != 1 {
				violations.Add(1)
			}
			data++ // the swap happens here in kvserver
			writers.Add(-1)
			l.Unlock()
			drains++
			time.Sleep(200 * time.Microsecond)
		}
	}
	close(stop)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations during handover pattern", violations.Load())
	}
	if drains == 0 {
		t.Fatal("controller never completed a drain")
	}
	t.Logf("drains=%d data=%d", drains, data)
}
