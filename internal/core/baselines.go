package core

import (
	"runtime"
	"sync/atomic"
)

// TASLock is a test-and-test-and-set spinlock baseline. The zero value is
// an unlocked TASLock.
type TASLock struct {
	v atomic.Uint32
}

// Lock spins until the lock is acquired.
func (l *TASLock) Lock() {
	for i := 0; ; i++ {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		if i%32 == 31 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the lock.
func (l *TASLock) Unlock() { l.v.Store(0) }

// TryLock attempts a single acquisition.
func (l *TASLock) TryLock() bool {
	return l.v.Load() == 0 && l.v.CompareAndSwap(0, 1)
}

// TicketLock is a fair ticket spinlock baseline. The zero value is an
// unlocked TicketLock.
type TicketLock struct {
	v atomic.Uint64 // high 32: next ticket, low 32: now serving
}

// Lock takes a ticket and waits to be served.
func (l *TicketLock) Lock() {
	my := (l.v.Add(1<<32) >> 32) - 1
	for i := 0; l.v.Load()&0xffffffff != my; i++ {
		if i%32 == 31 {
			runtime.Gosched()
		}
	}
}

// Unlock serves the next ticket.
func (l *TicketLock) Unlock() { l.v.Add(1) }

// TryLock succeeds only when no one holds or waits for the lock.
func (l *TicketLock) TryLock() bool {
	v := l.v.Load()
	return v>>32 == v&0xffffffff && l.v.CompareAndSwap(v, v+1<<32)
}

// mcsNode is a queue node for the MCSLock baseline.
type mcsNode struct {
	locked atomic.Bool
	next   atomic.Pointer[mcsNode]
}

// MCSLock is a classic MCS queue spinlock baseline: FIFO, local spinning,
// NUMA-oblivious. Unlike ShflLock, the holder keeps its queue node through
// the critical section, so the lock stores the holder's node internally.
// The zero value is an unlocked MCSLock.
type MCSLock struct {
	tail   atomic.Pointer[mcsNode]
	holder atomic.Pointer[mcsNode]
}

var mcsPool = make(chan *mcsNode, 1024)

func getMCSNode() *mcsNode {
	select {
	case n := <-mcsPool:
		n.locked.Store(false)
		n.next.Store(nil)
		return n
	default:
		return &mcsNode{}
	}
}

func putMCSNode(n *mcsNode) {
	select {
	case mcsPool <- n:
	default:
	}
}

// Lock enqueues and spins on the private node.
func (l *MCSLock) Lock() {
	n := getMCSNode()
	prev := l.tail.Swap(n)
	if prev != nil {
		n.locked.Store(true)
		prev.next.Store(n)
		for i := 0; n.locked.Load(); i++ {
			if i%32 == 31 {
				runtime.Gosched()
			}
		}
	}
	l.holder.Store(n)
}

// Unlock passes the lock to the successor.
func (l *MCSLock) Unlock() {
	n := l.holder.Load()
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			putMCSNode(n)
			return
		}
		for next = n.next.Load(); next == nil; next = n.next.Load() {
			runtime.Gosched()
		}
	}
	next.locked.Store(false)
	putMCSNode(n)
}

// TryLock succeeds only on an empty queue.
func (l *MCSLock) TryLock() bool {
	n := getMCSNode()
	if l.tail.Load() == nil && l.tail.CompareAndSwap(nil, n) {
		l.holder.Store(n)
		return true
	}
	putMCSNode(n)
	return false
}
