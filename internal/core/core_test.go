package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// locker abstracts the native locks for table-driven tests.
type locker interface {
	Lock()
	Unlock()
	TryLock() bool
}

func allLockers() map[string]func() locker {
	return map[string]func() locker{
		"spinlock":      func() locker { return &SpinLock{} },
		"mutex":         func() locker { return &Mutex{} },
		"goro-mutex":    func() locker { return NewGoroMutex() },
		"goro-spinlock": func() locker { return NewGoroSpinLock() },
		"tas":           func() locker { return &TASLock{} },
		"ticket":        func() locker { return &TicketLock{} },
		"mcs":           func() locker { return &MCSLock{} },
	}
}

// hammer runs goroutines incrementing a plain counter under the lock; any
// mutual-exclusion failure shows up as a lost update (and under -race as a
// data race).
func hammer(t *testing.T, l locker, goroutines, iters int) {
	t.Helper()
	var wg sync.WaitGroup
	counter := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("lost updates: %d != %d", counter, goroutines*iters)
	}
}

func TestMutualExclusion(t *testing.T) {
	for name, mk := range allLockers() {
		t.Run(name, func(t *testing.T) {
			hammer(t, mk(), 8, 2000)
		})
	}
}

func TestMutualExclusionManyGoroutines(t *testing.T) {
	SetSockets(4)
	defer SetSockets(1)
	for name, mk := range allLockers() {
		t.Run(name, func(t *testing.T) {
			hammer(t, mk(), 64, 300)
		})
	}
}

func TestGOMAXPROCS1(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for name, mk := range allLockers() {
		t.Run(name, func(t *testing.T) {
			hammer(t, mk(), 8, 500)
		})
	}
}

func TestTryLockSemantics(t *testing.T) {
	for name, mk := range allLockers() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			if !l.TryLock() {
				t.Fatal("TryLock on free lock failed")
			}
			if l.TryLock() {
				t.Fatal("TryLock on held lock succeeded")
			}
			l.Unlock()
			if !l.TryLock() {
				t.Fatal("TryLock after Unlock failed")
			}
			l.Unlock()
		})
	}
}

func TestMutexBlockingPath(t *testing.T) {
	// Force the parking path: hold the lock while many waiters exceed
	// their spin budget.
	var m Mutex
	var wg sync.WaitGroup
	counter := 0
	m.Lock()
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	// Let waiters pile up and park.
	for i := 0; i < 1000; i++ {
		runtime.Gosched()
	}
	m.Unlock()
	wg.Wait()
	if counter != 16*50 {
		t.Fatalf("lost updates: %d", counter)
	}
}

func TestRWMutexExclusion(t *testing.T) {
	var l RWMutex
	var wg sync.WaitGroup
	var readers, writers atomic.Int32
	fail := atomic.Bool{}
	for g := 0; g < 12; g++ {
		wg.Add(1)
		writer := g%4 == 0
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if writer {
					l.Lock()
					if writers.Add(1) != 1 || readers.Load() != 0 {
						fail.Store(true)
					}
					writers.Add(-1)
					l.Unlock()
				} else {
					l.RLock()
					readers.Add(1)
					if writers.Load() != 0 {
						fail.Store(true)
					}
					readers.Add(-1)
					l.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
	if fail.Load() {
		t.Fatal("reader/writer overlap detected")
	}
}

// TestRWMutexReadersConcurrent verifies readers actually overlap.
func TestRWMutexReadersConcurrent(t *testing.T) {
	var l RWMutex
	var wg sync.WaitGroup
	var cur, max atomic.Int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				l.RLock()
				c := cur.Add(1)
				for {
					m := max.Load()
					if c <= m || max.CompareAndSwap(m, c) {
						break
					}
				}
				runtime.Gosched()
				cur.Add(-1)
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if max.Load() < 2 {
		t.Errorf("readers never overlapped (max concurrent = %d)", max.Load())
	}
}

func TestRWMutexTry(t *testing.T) {
	var l RWMutex
	if !l.TryLock() {
		t.Fatal("TryLock on free RWMutex failed")
	}
	if l.TryRLock() {
		t.Fatal("TryRLock succeeded under writer")
	}
	l.Unlock()
	if !l.TryRLock() {
		t.Fatal("TryRLock on free RWMutex failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded under reader")
	}
	l.RUnlock()
}

func TestSetSockets(t *testing.T) {
	SetSockets(0)
	if Sockets() != 1 {
		t.Errorf("Sockets() = %d, want clamped to 1", Sockets())
	}
	SetSockets(8)
	if Sockets() != 8 {
		t.Errorf("Sockets() = %d, want 8", Sockets())
	}
	SetSockets(1)
}

// Property: any interleaving of lock/unlock pairs across goroutines keeps
// a guarded map consistent.
func TestQuickGuardedMap(t *testing.T) {
	f := func(keys []uint8) bool {
		if len(keys) > 64 {
			keys = keys[:64]
		}
		var m Mutex
		store := map[uint8]int{}
		var wg sync.WaitGroup
		for _, k := range keys {
			wg.Add(1)
			go func(k uint8) {
				defer wg.Done()
				m.Lock()
				store[k]++
				m.Unlock()
			}(k)
		}
		wg.Wait()
		total := 0
		for _, v := range store {
			total += v
		}
		return total == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
