package core

import (
	"math/rand"
	"strings"
	"testing"

	"shfllock/internal/shuffle"
	"shfllock/internal/simlocks"
)

// replayOnCore materializes a queue snapshot on the native substrate and
// runs one shuffling round over it, returning the engine's decision trace.
// The counterpart of simlocks.ReplayShuffleSnapshot: snapshot node i maps
// to trace ID i+1 on both substrates (the simulator's thread handles),
// installed here via testHookQnodeID. The TAS word is held for the whole
// round and no node is ever granted head status, so the round's exit
// conditions never fire and the scan is a deterministic function of the
// snapshot alone.
func replayOnCore(t *testing.T, snap shuffle.Snapshot) []string {
	t.Helper()
	pol := shuffle.ByName(snap.Policy)
	if pol == nil {
		t.Fatalf("unknown shuffle policy %q", snap.Policy)
	}
	nodes := make([]*qnode, len(snap.Nodes))
	ids := make(map[*qnode]uint64, len(snap.Nodes))
	for i, nd := range snap.Nodes {
		n := &qnode{prio: nd.Prio, park: make(chan struct{}, 1)}
		n.group.Store(uint32(nd.Socket))
		n.status.Store(uint32(nd.Status))
		n.batch.Store(uint32(nd.Batch))
		nodes[i] = n
		ids[n] = uint64(i + 1)
	}
	for i := 0; i+1 < len(nodes); i++ {
		nodes[i].next.Store(nodes[i+1])
	}
	if snap.Hint > 0 {
		nodes[0].lastHint.Store(nodes[snap.Hint])
	}
	var l shflState
	l.glock.Store(glkLocked)
	testHookQnodeID = func(n *qnode) uint64 { return ids[n] }
	defer func() { testHookQnodeID = nil }()
	var tr shuffle.Trace
	shuffle.Run(coreSub{l: &l, self: nodes[0], pol: pol}, pol, nodes[0],
		shuffle.Input{Blocking: snap.Blocking, VNext: snap.VNext, FromRole: true, Trace: &tr})
	return tr.Lines
}

// randomSnapshot draws a well-formed queue snapshot: node 0 is the
// shuffler, statuses are Waiting or Spinning (Parked would need a thread to
// wake; Ready would fire the round's exit condition), and a resumption hint
// is set only for policies that consult one.
func randomSnapshot(rng *rand.Rand, policy string) shuffle.Snapshot {
	pol := shuffle.ByName(policy)
	nn := 2 + rng.Intn(11)
	snap := shuffle.Snapshot{
		Policy:   policy,
		Blocking: rng.Intn(2) == 0,
		VNext:    rng.Intn(2) == 0,
	}
	for i := 0; i < nn; i++ {
		st := shuffle.StatusWaiting
		if rng.Intn(4) == 0 {
			st = shuffle.StatusSpinning
		}
		snap.Nodes = append(snap.Nodes, shuffle.SnapNode{
			Socket: uint64(rng.Intn(3)),
			Prio:   uint64(rng.Intn(3)),
			Batch:  uint64(rng.Intn(3)),
			Status: st,
		})
	}
	if rng.Intn(16) == 0 {
		snap.Nodes[0].Batch = shuffle.MaxShuffles // exercise the budget abort
	}
	if pol.UseHint() && nn > 2 && rng.Intn(3) == 0 {
		snap.Hint = 1 + rng.Intn(nn-1)
	}
	return snap
}

// TestDifferentialShuffle replays identical queue snapshots through the
// native and simulated substrates and requires byte-identical decision
// traces from the shared engine — the regression net that catches one
// substrate's accessors drifting from the other's.
func TestDifferentialShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	marks, moves, skips := 0, 0, 0
	for _, name := range shuffle.Names() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 40; i++ {
				snap := randomSnapshot(rng, name)
				got := replayOnCore(t, snap)
				want := simlocks.ReplayShuffleSnapshot(snap)
				if len(got) == 0 {
					t.Fatalf("empty native trace for %+v", snap)
				}
				if len(got) != len(want) {
					t.Fatalf("trace length mismatch for %+v:\nnative: %v\nsim:    %v", snap, got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("trace diverges at line %d for %+v:\nnative: %q\nsim:    %q", j, snap, got[j], want[j])
					}
					switch {
					case strings.HasPrefix(got[j], "mark "):
						marks++
					case strings.HasPrefix(got[j], "move "):
						moves++
					case strings.HasPrefix(got[j], "skip "):
						skips++
					}
				}
			}
		})
	}
	// The agreement must be about real work, not a fleet of empty rounds.
	if marks == 0 || moves == 0 || skips == 0 {
		t.Fatalf("snapshots too trivial: marks=%d moves=%d skips=%d", marks, moves, skips)
	}
}
