package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestBlockingHeadNotStarvedBySteal: a blocking Lock queued behind a storm
// of TryLock stealers must acquire in bounded time. Without the head's
// no-steal fence this livelocks on small GOMAXPROCS — every release is
// re-stolen before the queue head observes a free lock, because the free
// windows and the head's timeslices anti-correlate.
func TestBlockingHeadNotStarvedBySteal(t *testing.T) {
	var m Mutex
	stop := make(chan struct{})
	var stealers atomic.Int64
	for g := 0; g < 8; g++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				if m.TryLock() {
					stealers.Add(1)
					m.Unlock()
				}
			}
		}()
	}
	defer close(stop)

	// Let the steal storm establish itself before queueing.
	for stealers.Load() < 100 {
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		m.Lock()
		m.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("blocking Lock starved by TryLock stealers (%d steals)", stealers.Load())
	}

	// The fence must not outlive the head: once the queue is gone, the TAS
	// fast path has to work again.
	deadline := time.Now().Add(5 * time.Second)
	for !m.TryLock() {
		if time.Now().After(deadline) {
			t.Fatal("TryLock never succeeds after the fenced head left: no-steal bit leaked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	m.Unlock()
}
