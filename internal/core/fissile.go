package core

import "sync/atomic"

// FissileLock is the native Fissile Lock (Dice & Kogan, arXiv:2003.05025):
// a test-and-set fast path fissioned over an MCS outer lock. An arriving
// goroutine takes one shot at the inner TS word; on failure it acquires
// the outer MCS lock and — as the sole "alpha" contender — spins on the
// inner word, releasing the outer lock the moment it wins. The critical
// section is protected by the inner word alone, so the holder carries no
// queue node and TryLock is one CAS, while the outer queue keeps the inner
// line from being hammered by more than one waiter at a time.
//
// The zero value is an unlocked FissileLock.
type FissileLock struct {
	inner atomic.Uint32
	outer MCSLock
}

// Lock acquires the lock: one fast-path attempt, then through the outer
// queue.
func (l *FissileLock) Lock() {
	if l.inner.Load() == 0 && l.inner.CompareAndSwap(0, 1) {
		return
	}
	l.outer.Lock()
	for i := 1; ; i++ {
		if l.inner.Load() == 0 && l.inner.CompareAndSwap(0, 1) {
			break
		}
		spinWait(i)
	}
	l.outer.Unlock()
}

// Unlock releases the inner word; the outer lock was already released on
// the acquire side.
func (l *FissileLock) Unlock() { l.inner.Store(0) }

// TryLock is a single CAS on the inner word. It may barge past the outer
// queue — that is the fast path working as designed, not a fairness bug.
func (l *FissileLock) TryLock() bool {
	return l.inner.Load() == 0 && l.inner.CompareAndSwap(0, 1)
}
