package core

import "shfllock/internal/shuffle"

// The goroutine-native ShflLock variants. The algorithm is unchanged —
// same TAS word, same shuffled MCS queue, same abortable acquisition via
// LockTimeout/LockContext — but every scheduler-facing heuristic is
// re-derived from the Go runtime instead of from pinned-OS-thread
// assumptions:
//
//   - Grouping: waiters are grouped by an approximate current-P bucket
//     (internal/runtimeq.PGroup), re-stamped on every acquisition, instead
//     of the creation-time fake-socket stamp. On goroutines the paper's
//     socket id does not exist, and a write-once stamp on a pooled node is
//     not even stable — grouping needs stable identity more than it needs
//     hardware truth (the CNA lesson). Same-P waiters really do share
//     everything that matters here: cache residency and a timeslice.
//   - Oversubscription: detected from runtime/metrics goroutine counts
//     against GOMAXPROCS (runtimeq.Oversubscribed), the userspace analog
//     of the kernel patch's NrRunning guard (§4.3). While oversubscribed,
//     blocking waiters park after goroOversubSpinBudget spins instead of
//     spinBudget, shufflers stop pre-waking grouped waiters (the wakeup
//     would just add another spinner to a saturated run queue; the grant
//     wake still happens), and unparkable spins donate their timeslice
//     with short sleeps instead of Gosched round trips.
//
// Use these for Go services whose goroutine count is unbounded or bursty;
// prefer the plain family when GOMAXPROCS OS threads are pinned and the
// socket layout is meaningful.

// NewGoroMutex returns a blocking ShflLock tuned for goroutine workloads:
// P-bucket grouping and oversubscription-aware parking. The zero-value
// Mutex remains the socket-grouped variant.
func NewGoroMutex() *Mutex {
	m := &Mutex{}
	m.s.goro = true
	m.s.setPolicy(shuffle.Goro(), "init")
	return m
}

// NewGoroSpinLock returns the non-blocking goroutine-native variant.
// Waiters cannot park, but under oversubscription they donate their
// timeslices with short sleeps once spinning has demonstrably not helped.
// Prefer NewGoroMutex when critical sections can be preempted at all.
func NewGoroSpinLock() *SpinLock {
	l := &SpinLock{}
	l.s.goro = true
	l.s.setPolicy(shuffle.Goro(), "init")
	return l
}

// NewGoroRWMutex returns the goroutine-native readers-writer variant: the
// internal ordering mutex runs in goro mode, so contended readers and
// writers inherit P-bucket grouping and oversubscription-aware parking.
func NewGoroRWMutex() *RWMutex {
	l := &RWMutex{}
	l.wlock.s.goro = true
	l.wlock.s.setPolicy(shuffle.Goro(), "init")
	return l
}
