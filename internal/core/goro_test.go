package core

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"shfllock/internal/runtimeq"
	"shfllock/internal/shuffle"
)

// TestSinglePFollowsGOMAXPROCS is the regression test for the stale
// single-P heuristic: it used to be computed once at package init, so a
// program calling runtime.GOMAXPROCS(n) after import kept the wrong
// spin/park pacing forever. Now the judgment must follow a GOMAXPROCS
// change after at most one acquisition-count refresh epoch — no explicit
// Refresh call here; contended acquisitions alone must carry the update.
func TestSinglePFollowsGOMAXPROCS(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(0)
	AutoSingleP()
	defer func() {
		runtime.GOMAXPROCS(oldProcs)
		runtimeq.Refresh()
	}()

	// Flip away from the init-time value so the test bites on any box:
	// a 1-P binary goes to 2 Ps (SingleP must become false), a multi-P
	// binary goes to 1 P (SingleP must become true).
	target := 2
	want := false
	if oldProcs > 1 {
		target = 1
		want = true
	}
	runtime.GOMAXPROCS(target)

	var m Mutex
	deadline := time.Now().Add(10 * time.Second)
	for SingleP() != want {
		if time.Now().After(deadline) {
			t.Fatalf("SingleP() stuck at %v after GOMAXPROCS(%d); epoch refresh never fired",
				!want, target)
		}
		// A contended burst: goroutines yielding inside the critical
		// section force queueing, and every queued acquisition ticks the
		// refresh epoch.
		invariantHammer(t, &m, 4, 100)
	}
}

func TestSetSinglePOverrideWins(t *testing.T) {
	defer AutoSingleP()
	SetSingleP(true)
	runtimeq.Refresh()
	if !SingleP() {
		t.Error("SetSingleP(true) lost to the measured value")
	}
	SetSingleP(false)
	if SingleP() {
		t.Error("SetSingleP(false) lost to the measured value")
	}
	AutoSingleP()
	if got, wantAuto := SingleP(), runtimeq.Procs() == 1; got != wantAuto {
		t.Errorf("AutoSingleP: SingleP() = %v, want measured %v", got, wantAuto)
	}
}

// TestHostSocketInit pins the satellite fix for the NumCPU()/24 guess: the
// configured socket count must be at least 1 and, since every Linux box
// has sysfs, should equal the host's NUMA node count there.
func TestHostSocketInit(t *testing.T) {
	if Sockets() < 1 {
		t.Fatalf("Sockets() = %d at init, want >= 1", Sockets())
	}
}

func TestGoroMutualExclusion(t *testing.T) {
	hammer(t, NewGoroMutex(), 8, 2000)
	hammer(t, NewGoroSpinLock(), 8, 2000)
}

func TestGoroMutualExclusionOversubscribed(t *testing.T) {
	// Force the oversubscribed verdict so the short-budget park path and
	// the sleep-pacing paths are the ones exercised.
	runtimeq.OverrideOversub(true)
	defer runtimeq.ClearOversubOverride()
	hammer(t, NewGoroMutex(), 32, 500)
	hammer(t, NewGoroSpinLock(), 8, 500)
}

func TestGoroRWMutex(t *testing.T) {
	l := NewGoroRWMutex()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.RLock()
				runtime.Gosched()
				l.RUnlock()
			}
		}()
	}
	// Write-side mutual exclusion under reader turbulence; lost updates
	// (or -race) catch any hole.
	invariantHammer(t, rwWriteSide{l}, 4, 300)
	close(stop)
	readers.Wait()
}

func TestGoroAbortSurfaces(t *testing.T) {
	m := NewGoroMutex()
	if !m.LockTimeout(time.Second) {
		t.Fatal("uncontended LockTimeout failed")
	}
	// Held: a tight timeout must expire, a cancelled context must abort.
	if m.LockTimeout(time.Millisecond) {
		t.Fatal("LockTimeout acquired a held lock")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.LockContext(ctx); err == nil {
		t.Fatal("LockContext acquired with a cancelled context")
	}
	m.Unlock()
	if err := m.LockContext(context.Background()); err != nil {
		t.Fatalf("uncontended LockContext: %v", err)
	}
	m.Unlock()

	rw := NewGoroRWMutex()
	if !rw.LockTimeout(time.Second) {
		t.Fatal("rw LockTimeout failed")
	}
	if rw.RLockTimeout(time.Millisecond) {
		t.Fatal("RLockTimeout acquired against a held writer")
	}
	rw.Unlock()
}

// recordingGoroPolicy wraps the goro policy and records every group id a
// shuffling round observes, through either side of a Match decision.
type recordingGoroPolicy struct {
	shuffle.Policy
	mu   sync.Mutex
	seen map[uint64]int
}

func (p *recordingGoroPolicy) Match(c shuffle.Ctx) bool {
	g, s := c.CandidateSocket(), c.ShufflerSocket()
	p.mu.Lock()
	p.seen[g]++
	p.seen[s]++
	p.mu.Unlock()
	return g == s
}

// TestGoroGroupRetagUnderPoolRecycling is the property test for
// per-acquisition group stamping: group identity observed by shuffling
// rounds must always reflect the acquirer's current P bucket, never a
// stale stamp left on a pooled node by an earlier user. We deterministically
// poison pooled nodes with an impossible group id and then assert no
// shuffling round ever sees it. Run under -race in verify.sh's core pass.
func TestGoroGroupRetagUnderPoolRecycling(t *testing.T) {
	const poison = 9999 // far outside any plausible bucket count

	// Poison the pool: these nodes go back with a group id no live
	// runtime could produce. Before the fix (write-once stamping at node
	// creation) a recycled node would carry its old id into the queue.
	for i := 0; i < 64; i++ {
		nodes := make([]*qnode, 8)
		for j := range nodes {
			nodes[j] = getNode()
			nodes[j].group.Store(poison)
		}
		for _, n := range nodes {
			putNode(n)
		}
	}

	rec := &recordingGoroPolicy{Policy: shuffle.Goro(), seen: make(map[uint64]int)}
	m := NewGoroMutex()
	m.SetPolicy(rec)

	// Gosched inside the CS piles waiters up so rounds actually scan;
	// retry until Match observed something.
	for attempt := 0; attempt < 10; attempt++ {
		invariantHammer(t, m, 6, 200)
		rec.mu.Lock()
		n := len(rec.seen)
		rec.mu.Unlock()
		if n > 0 {
			break
		}
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.seen) == 0 {
		t.Fatal("no shuffling round ran; property not exercised")
	}
	buckets := uint64(runtimeq.Buckets())
	for g, count := range rec.seen {
		if g == poison {
			t.Fatalf("shuffling observed the poisoned creation-time group %d times: pooled nodes are not re-stamped per acquisition", count)
		}
		if g >= buckets {
			t.Errorf("shuffling observed group %d outside [0,%d): stale stamp survived pool recycling", g, buckets)
		}
	}
}

// TestGoroPolicyRegistered pins the registry surface shflbench -list and
// locktorture -policy rely on.
func TestGoroPolicyRegistered(t *testing.T) {
	p := shuffle.ByName("goro")
	if p == nil {
		t.Fatal(`shuffle.ByName("goro") = nil; policy not registered`)
	}
	if !p.Shuffles() || !p.PassRole() || !p.UseHint() {
		t.Error("goro policy lost a shuffling mechanism stage")
	}
}

// TestGoroWakeGroupedSuppressedUnderOversub pins the park-cheap behavior:
// the policy stops pre-waking grouped waiters while oversubscribed.
func TestGoroWakeGroupedSuppressedUnderOversub(t *testing.T) {
	defer runtimeq.ClearOversubOverride()
	p := shuffle.Goro()
	runtimeq.OverrideOversub(false)
	if !p.WakeGrouped(true) {
		t.Error("WakeGrouped(blocking) = false on an idle runtime")
	}
	runtimeq.OverrideOversub(true)
	if p.WakeGrouped(true) {
		t.Error("WakeGrouped(blocking) = true while oversubscribed")
	}
	if p.WakeGrouped(false) {
		t.Error("WakeGrouped(non-blocking) must always be false")
	}
}
