package core

import (
	"sync"
	"sync/atomic"
)

// hapaxCell is one acquisition's waiting element: a mailbox word plus the
// acquisition's unique value. seq is written by the cell's owner before
// the cell is published through the tail swap and read by at most one
// successor, which received the pointer from that same swap — the swap
// chain is the happens-before edge.
type hapaxCell struct {
	seq  uint64
	mail atomic.Uint64
}

// hapaxSeq mints process-wide unique acquisition values. 64 bits do not
// wrap in any real process lifetime.
var hapaxSeq atomic.Uint64

var hapaxPool = sync.Pool{New: func() any { return new(hapaxCell) }}

func getHapaxCell() *hapaxCell {
	c := hapaxPool.Get().(*hapaxCell)
	c.seq = hapaxSeq.Add(1)
	// The mailbox is deliberately NOT reset: a stale value from an earlier
	// acquisition can never equal the fresh seq a successor waits for.
	// That value-uniqueness argument is the lock's whole reclamation story.
	return c
}

// HapaxLock is the native value-based queue lock in the spirit of Dice &
// Kogan's Hapax Lock (arXiv:2511.14608): constant-time arrival and unlock
// paths, strict FIFO admission, one word of lock state. Arrival swaps the
// tail to a cell carrying a never-reused value; the successor spins on the
// predecessor's mailbox until the predecessor's value appears. Unlock is a
// CAS back to nil, or — if a successor swapped in behind — one store of
// the holder's value into its own mailbox.
//
// Where the paper's lock is purely value-based (the queue word holds the
// value itself), this Go adaptation carries the value inside a pooled cell
// so the successor can locate the mailbox without a value→address table;
// the reuse-safety mechanism (compare against a unique-per-acquisition
// value, so stale mailbox contents are harmless) is the paper's.
//
// Cells are reclaimed without any protocol: the successor pools the
// predecessor's cell after observing its grant (it is the only reader),
// and a holder with no successor pools its own.
//
// The zero value is an unlocked HapaxLock.
type HapaxLock struct {
	tail atomic.Pointer[hapaxCell]
	cur  atomic.Pointer[hapaxCell] // the holder's cell, for Unlock
}

// Lock enqueues with one swap and waits on the predecessor's mailbox.
func (l *HapaxLock) Lock() {
	c := getHapaxCell()
	prev := l.tail.Swap(c)
	if prev != nil {
		want := prev.seq
		for i := 1; prev.mail.Load() != want; i++ {
			spinWait(i)
		}
		hapaxPool.Put(prev)
	}
	l.cur.Store(c)
}

// Unlock releases with one CAS, or publishes the grant to the successor.
func (l *HapaxLock) Unlock() {
	c := l.cur.Load()
	if l.tail.CompareAndSwap(c, nil) {
		hapaxPool.Put(c)
		return
	}
	c.mail.Store(c.seq)
}

// TryLock is a single CAS from the free state.
func (l *HapaxLock) TryLock() bool {
	if l.tail.Load() != nil {
		return false
	}
	c := getHapaxCell()
	if l.tail.CompareAndSwap(nil, c) {
		l.cur.Store(c)
		return true
	}
	hapaxPool.Put(c)
	return false
}
