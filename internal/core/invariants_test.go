package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// invariantOracle implements the shflOracleHooks checks for the four
// shuffling invariants of DESIGN.md §4 on the native locks:
//
//  1. a relocated node is never the queue head (the lock holder's direct
//     successor keeps its position);
//  2. shuffling rounds never overlap (at most one active shuffler);
//  3. a fresh round (one not inherited through the shuffler role) is only
//     started by the queue head;
//  4. the shuffler role is only passed to a successor: directly to the
//     head's next waiter on relay, or to a node the round just marked.
//
// All hooks run under mu; the lock family calls them from many goroutines.
type invariantOracle struct {
	mu         sync.Mutex
	violations []string

	heads  map[*qnode]bool // nodes currently spinning as queue head
	active map[*qnode]bool // nodes currently inside a shuffling round

	rounds, freshRounds, roleRounds int
	moves, directHandoffs, roleHandoffs,
	headEnters, maxHeads int
}

func newInvariantOracle() *invariantOracle {
	return &invariantOracle{
		heads:  make(map[*qnode]bool),
		active: make(map[*qnode]bool),
	}
}

func (o *invariantOracle) violate(format string, args ...any) {
	if len(o.violations) < 20 {
		o.violations = append(o.violations, fmt.Sprintf(format, args...))
	}
}

// install registers the oracle's hooks; the caller must defer the returned
// teardown. Tests using it cannot run in parallel (the oracle is global and
// assumes a single lock instance is exercised).
func (o *invariantOracle) install() func() {
	hooks := &shflOracleHooks{
		headEnter: func(n *qnode) {
			o.mu.Lock()
			defer o.mu.Unlock()
			o.headEnters++
			if o.heads[n] {
				o.violate("node %p entered head tenure twice", n)
			}
			o.heads[n] = true
			if len(o.heads) > o.maxHeads {
				o.maxHeads = len(o.heads)
			}
		},
		headExit: func(n *qnode) {
			o.mu.Lock()
			defer o.mu.Unlock()
			if !o.heads[n] {
				o.violate("node %p exited head tenure it never entered", n)
			}
			delete(o.heads, n)
		},
		roundBegin: func(n *qnode, fromRole, atHead bool) {
			o.mu.Lock()
			defer o.mu.Unlock()
			o.rounds++
			if fromRole {
				o.roleRounds++
			} else {
				o.freshRounds++
				// Invariant 3: fresh rounds start only at the queue head.
				if !atHead {
					o.violate("fresh round started off the head path by %p", n)
				}
				if !o.heads[n] {
					o.violate("fresh round started by %p, which is not the queue head", n)
				}
			}
			// Invariant 2: no round may already be in flight.
			if len(o.active) != 0 {
				o.violate("round by %p overlaps %d active round(s)", n, len(o.active))
			}
			o.active[n] = true
		},
		roundEnd: func(n *qnode) {
			o.mu.Lock()
			defer o.mu.Unlock()
			if !o.active[n] {
				o.violate("round ended by %p without a matching begin", n)
			}
			delete(o.active, n)
		},
		moved: func(shuffler, moved *qnode) {
			o.mu.Lock()
			defer o.mu.Unlock()
			o.moves++
			// Invariant 1: the queue head (the lock holder's direct
			// successor) is never relocated.
			if o.heads[moved] {
				o.violate("shuffler %p relocated the queue head %p", shuffler, moved)
			}
			if moved == shuffler {
				o.violate("shuffler %p relocated itself", shuffler)
			}
			if !o.active[shuffler] {
				o.violate("shuffler %p relocated %p outside a round", shuffler, moved)
			}
		},
		handoff: func(from, to *qnode, direct bool) {
			o.mu.Lock()
			defer o.mu.Unlock()
			if to == from {
				o.violate("shuffler role handed from %p to itself", from)
			}
			if direct {
				o.directHandoffs++
				// Invariant 4 (relay): the head passes a still-held role only
				// to its direct successor.
				if next := from.next.Load(); next != to {
					o.violate("head %p relayed role to %p, not its successor %p", from, to, next)
				}
			} else {
				o.roleHandoffs++
				// Invariant 4 (shuffle): the role moves only to a successor
				// the round just marked into the shuffler's batch.
				if to.batch.Load() == 0 {
					o.violate("shuffler %p passed role to unmarked node %p", from, to)
				}
			}
		},
	}
	shflOracle.Store(hooks)
	return func() { shflOracle.Store(nil) }
}

func (o *invariantOracle) report(t *testing.T) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, v := range o.violations {
		t.Errorf("invariant violation: %s", v)
	}
	if len(o.heads) != 0 || len(o.active) != 0 {
		t.Errorf("unbalanced oracle state: %d head(s), %d active round(s) at quiescence",
			len(o.heads), len(o.active))
	}
	if o.maxHeads > 1 {
		t.Errorf("two nodes held head tenure at once (max %d)", o.maxHeads)
	}
	t.Logf("rounds=%d (fresh=%d from-role=%d) moves=%d handoffs(direct=%d role=%d) headEnters=%d",
		o.rounds, o.freshRounds, o.roleRounds, o.moves, o.directHandoffs, o.roleHandoffs, o.headEnters)
}

// drainNodePool retags future queue nodes: pooled nodes keep the socket they
// were created with, so tests that change SetSockets drop the pool to get
// fresh round-robin assignments.
func drainNodePool() {
	runtime.GC()
	runtime.GC()
}

// invariantHammer is like hammer but yields inside the critical section, so
// even on GOMAXPROCS=1 the other goroutines wake, pile up behind the lock,
// and form the multi-node queues shuffling operates on.
func invariantHammer(t *testing.T, l locker, goroutines, iters int) {
	t.Helper()
	var wg sync.WaitGroup
	counter := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				if i%2 == 0 {
					runtime.Gosched()
				}
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("lost updates: %d != %d", counter, goroutines*iters)
	}
}

func runInvariantCheck(t *testing.T, l locker, wantMoves bool) {
	t.Helper()
	defer SetSockets(Sockets())
	SetSockets(2)
	drainNodePool()

	o := newInvariantOracle()
	defer o.install()()
	// Node relocations need a lucky mixed-socket queue; repeat the hammer
	// (events accumulate in the same oracle) until one shows up.
	for attempt := 0; attempt < 10; attempt++ {
		invariantHammer(t, l, 6, 40)
		if !wantMoves || o.moves > 0 {
			break
		}
	}
	o.report(t)

	if o.rounds == 0 {
		t.Fatal("workload produced no shuffling rounds; invariants not exercised")
	}
	if o.directHandoffs == 0 {
		t.Error("workload produced no head relays; invariants not exercised")
	}
	if wantMoves && o.moves == 0 {
		t.Error("two-socket workload relocated no nodes; invariant 1 not exercised")
	}
}

func TestShuffleInvariantsSpinLock(t *testing.T) {
	var l SpinLock
	runInvariantCheck(t, &l, true)
}

func TestShuffleInvariantsMutex(t *testing.T) {
	var l Mutex
	runInvariantCheck(t, &l, true)
}

func TestShuffleInvariantsRWMutex(t *testing.T) {
	// The write side funnels through the internal ordering mutex, so the
	// same invariants apply; reader turbulence is added on top.
	defer SetSockets(Sockets())
	SetSockets(2)
	drainNodePool()

	var l RWMutex
	o := newInvariantOracle()
	defer o.install()()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.RLock()
				l.RUnlock()
			}
		}()
	}
	invariantHammer(t, rwWriteSide{&l}, 5, 40)
	close(stop)
	wg.Wait()
	o.report(t)
	if o.rounds == 0 {
		t.Fatal("write-side workload produced no shuffling rounds")
	}
}

// rwWriteSide adapts RWMutex's write side to sync.Locker for hammer.
type rwWriteSide struct{ l *RWMutex }

func (w rwWriteSide) Lock()         { w.l.Lock() }
func (w rwWriteSide) Unlock()       { w.l.Unlock() }
func (w rwWriteSide) TryLock() bool { return w.l.TryLock() }
