package core

import (
	"runtime"
	"sync"
	"testing"

	"shfllock/internal/shuffle"
)

// hammerPolicy drives a lock through concurrent acquisitions with mixed
// priorities. Queue integrity is observed end-to-end: a dropped waiter
// deadlocks the test, a duplicated grant breaks mutual exclusion on the
// plain counter (caught directly, and as a data race under -race).
func hammerPolicy(t *testing.T, lock func(uint64), unlock func()) {
	t.Helper()
	goroutines, iters := 8, 400
	if testing.Short() {
		goroutines, iters = 4, 100
	}
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		prio := uint64(g % 3)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock(prio)
				counter++
				if i%64 == 0 {
					runtime.Gosched()
				}
				unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("lost updates: counter=%d want %d", counter, goroutines*iters)
	}
}

// TestPolicyQueueIntegrity runs the shared-engine property test on the
// native substrate: every registered policy, on both lock variants, under
// real concurrency (and under -race via verify.sh).
func TestPolicyQueueIntegrity(t *testing.T) {
	defer SetSockets(Sockets())
	SetSockets(2) // make NUMA grouping actually partition the waiters
	for _, name := range shuffle.Names() {
		pol := shuffle.ByName(name)
		t.Run(name+"/spin", func(t *testing.T) {
			var l SpinLock
			l.SetPolicy(pol)
			hammerPolicy(t, l.LockWithPriority, l.Unlock)
		})
		t.Run(name+"/mutex", func(t *testing.T) {
			var m Mutex
			m.SetPolicy(pol)
			hammerPolicy(t, m.LockWithPriority, m.Unlock)
		})
		t.Run(name+"/rwmutex", func(t *testing.T) {
			var rw RWMutex
			rw.SetPolicy(pol)
			hammerPolicy(t, rw.LockWithPriority, rw.Unlock)
		})
	}
}

// TestRWMutexPolicyWithReaders drives the RWMutex policy path while reader
// goroutines churn the count word, so writer priorities exercise the
// ordering mutex's queue with the reader-drain phase active (under -race
// via verify.sh).
func TestRWMutexPolicyWithReaders(t *testing.T) {
	defer SetSockets(Sockets())
	SetSockets(2)
	var rw RWMutex
	rw.SetPolicy(shuffle.Priority())
	stop := make(chan struct{})
	var readers sync.WaitGroup
	shared := 0
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rw.RLock()
				_ = shared
				rw.RUnlock()
			}
		}()
	}
	hammerPolicy(t, func(prio uint64) {
		rw.LockWithPriority(prio)
		shared++
	}, rw.Unlock)
	close(stop)
	readers.Wait()
}

// policyProbe records which policy each shuffling round is attributed to.
type policyProbe struct {
	mu     sync.Mutex
	rounds map[string]int
}

func (p *policyProbe) Steal(bool)  {}
func (p *policyProbe) Contended()  {}
func (p *policyProbe) Handoff()    {}
func (p *policyProbe) Park()       {}
func (p *policyProbe) Unpark(bool) {}
func (p *policyProbe) Abort()      {}
func (p *policyProbe) Reclaim()    {}
func (p *policyProbe) Shuffle(policy string, scanned, moved int) {
	p.mu.Lock()
	p.rounds[policy]++
	p.mu.Unlock()
}

// TestShufflePolicyAttribution: rounds report the name of the policy that
// drove them, so per-policy lockstat breakdowns can be trusted.
func TestShufflePolicyAttribution(t *testing.T) {
	pr := &policyProbe{rounds: map[string]int{}}
	var l SpinLock
	l.SetPolicy(shuffle.Priority())
	l.SetProbe(pr)
	hammerPolicy(t, l.LockWithPriority, l.Unlock)
	pr.mu.Lock()
	defer pr.mu.Unlock()
	for name, n := range pr.rounds {
		if name != "prio" {
			t.Fatalf("round attributed to %q (%d rounds), lock runs prio", name, n)
		}
	}
	if pr.rounds["prio"] == 0 {
		t.Skip("no contention produced a shuffling round on this machine")
	}
}
