package core

import (
	"sync/atomic"

	"shfllock/internal/shuffle"
)

// Probe receives internal lock events from the ShflLock family. A probe is
// attached with SetProbe before the lock is shared; all methods may be
// called concurrently and must be cheap. The intended implementation is a
// lockstat site (internal/lockstat), which turns these events into
// lock_stat-style counters; a nil probe (the default) reduces every hook to
// a single predictable nil-check, so uninstrumented locks pay nothing
// measurable.
//
// Acquisition counting and wait/hold timing are deliberately not probe
// events: they are observable from outside the lock and are recorded by the
// lockstat wrapper. The probe reports only what the wrapper cannot see —
// which path an acquisition took and what the waiter queue did.
type Probe interface {
	// Steal reports a fast-path acquisition that barged past a non-empty
	// waiter queue; trylock distinguishes TryLock barging from the Lock
	// fast path.
	Steal(trylock bool)
	// Contended reports an acquisition that went through the waiter queue.
	Contended()
	// Handoff reports queue-head status being relayed to the successor
	// (the MCS unlock phase that ShflLock performs on the acquire side).
	Handoff()
	// Park reports a blocking waiter committing to sleep.
	Park()
	// Unpark reports a parked waiter being woken; inCS is true when the
	// wakeup was issued by the lock holder on the critical path, false
	// when a shuffler issued it off the critical path.
	Unpark(inCS bool)
	// Shuffle reports one completed shuffling round: which policy drove it,
	// how many queue nodes the shuffler examined and how many it relocated.
	Shuffle(policy string, scanned, moved int)
	// Abort reports an abortable acquisition (LockTimeout/LockContext)
	// giving up: the waiter abandoned its queue node, or the queue head
	// abdicated without taking the lock.
	Abort()
	// Reclaim reports an abandoned queue node being unlinked, by a
	// shuffling round or by the grant walk.
	Reclaim()
}

// SetProbe attaches a probe to the spinlock. Attach before the lock is
// shared between goroutines; passing nil detaches.
func (l *SpinLock) SetProbe(p Probe) { l.s.probe = p }

// SetProbe attaches a probe to the mutex. Attach before the lock is shared
// between goroutines; passing nil detaches.
func (m *Mutex) SetProbe(p Probe) { m.s.probe = p }

// SetProbe attaches a probe to the readers-writer lock. Events are reported
// for the internal ordering mutex, which every contended reader and writer
// passes through. Attach before the lock is shared.
func (l *RWMutex) SetProbe(p Probe) { l.wlock.s.probe = p }

// SetPolicy replaces the shuffling policy of the internal ordering mutex
// (default: NUMA grouping) through the epoched transition protocol: safe
// at any time, under any contention. Passing nil restores the default.
func (l *RWMutex) SetPolicy(p shuffle.Policy) { l.wlock.s.setPolicy(p, "api") }

// Transitions exposes the ordering mutex's policy transition record.
func (l *RWMutex) Transitions() *shuffle.TransitionLog { return l.wlock.s.policy.Log() }

// PolicyEpoch returns the current transition fence value (monotone).
func (l *RWMutex) PolicyEpoch() uint64 { return l.wlock.s.policy.Epoch() }

// shflOracleHooks are structural hooks used by the invariant tests to watch
// queue-node-level events (which the public Probe cannot expose, since
// qnode is unexported). Production code never installs them; every call
// site guards with a single atomic pointer load.
type shflOracleHooks struct {
	// headEnter/headExit bracket a node's tenure as queue head (spinning
	// on the TAS word). Invariant 3: only this node may start a round.
	headEnter func(n *qnode)
	headExit  func(n *qnode)
	// roundBegin/roundEnd bracket one shuffling round. fromRole is true
	// when the node was handed the shuffler role, false when it started a
	// fresh round (permitted only at the head); atHead reports the call
	// site. Invariant 2: rounds never overlap.
	roundBegin func(n *qnode, fromRole, atHead bool)
	roundEnd   func(n *qnode)
	// moved reports a queue node relocated by a shuffling round.
	// Invariant 1: the relocated node is never the queue head.
	moved func(shuffler, moved *qnode)
	// handoff reports the shuffler role passing from one node to another;
	// direct is true for the head relay to its successor. Invariant 4.
	handoff func(from, to *qnode, direct bool)
}

// shflOracle is nil outside the invariant tests.
var shflOracle atomic.Pointer[shflOracleHooks]
