// Package core is the native Go implementation of the paper's lock family:
// SpinLock (the non-blocking ShflLock), Mutex (the blocking ShflLock) and
// RWMutex (the blocking readers-writer ShflLock), all usable as drop-in
// sync.Locker replacements, plus simple TAS/ticket/MCS baselines for
// comparison benchmarks.
//
// Shuffling needs to know which NUMA socket a waiter runs on. Go offers no
// portable way to query the current CPU, so the package approximates: queue
// nodes are recycled through a sync.Pool (which is per-P under the hood)
// and each node is assigned a socket round-robin when first created. On a
// real NUMA machine with GOMAXPROCS pinned OS threads this correlates well
// enough for batching to help; callers with better knowledge can set the
// socket explicitly via LockWithSocket.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Queue-node status values (Figure 4 and Figure 6 of the paper), plus the
// two abandonment states of the MCSTP-style abort protocol. The numeric
// values match the shuffle.Status* constants shared with the simulator.
const (
	sWaiting   = iota // spinning on the node; may park
	sReady            // head of the queue: go take the TAS lock
	sParked           // descheduled; wake via the park channel
	sSpinning         // marked by a shuffler: keep spinning
	sAbandoned        // waiter timed out / was cancelled and left the queue
	sReclaimed        // an abandoned node was unlinked by shuffler or grant walk
)

// spinBudget is how many local spin iterations a blocking waiter performs
// before parking (the userspace ShflLock^B parks after a constant spin,
// paper footnote 3).
const spinBudget = 128

// singleP records whether the runtime has exactly one P. Spinning on a
// condition another goroutine must make true is then a losing bet past
// the first yield — the spinner's timeslices are the very thing the
// holder is waiting for. This is the userspace analog of the kernel
// patch's "NrRunning > #cores → park immediately" oversubscription guard
// (paper §4.3), and of the Go runtime disabling sync.Mutex spinning when
// GOMAXPROCS == 1. It deliberately does NOT shorten the queue waiter's
// pre-park spin (spinBudget): those waits are one short critical section
// long, the spin is Gosched-paced anyway, and replacing 16 yields with a
// park/wake channel round trip measurably hurts handoff latency. Only
// the unparkable condition-spins (spinWait) change behavior. Computed
// once at init; tests may override via SetSingleP.
var singleP = runtime.GOMAXPROCS(0) == 1

// SetSingleP overrides the single-P heuristic (e.g. after the caller
// changes GOMAXPROCS). Not synchronized with in-flight acquisitions: a
// stale read only mis-paces one waiter's spin loop.
func SetSingleP(on bool) { singleP = on }

// SingleP reports the current single-P heuristic, so policy layers above
// the locks (e.g. an adaptive controller choosing a lock family) can
// share the same judgment instead of re-deriving it.
func SingleP() bool { return singleP }

// spinWait paces iteration i (counting from 1) of a condition-spin loop
// that cannot park — the queue head polling the TAS word, a writer
// draining the reader count. Mostly it busy-spins, with a Gosched every
// 16th pass; on a single-P runtime, once the condition has survived a
// couple of full yield rounds it switches to short sleeps instead. At
// that point the goroutine that will make the condition true (a holder
// streaming a paced scan, a parked releaser) needs this CPU far more
// than the spinner, and each further Gosched is a full round trip
// through a saturated run queue — the sleep hands over the timeslice at
// a bounded ~100µs cost to handoff latency.
func spinWait(i int) {
	if i%16 != 0 {
		return
	}
	if singleP && i > 32 {
		time.Sleep(100 * time.Microsecond)
		return
	}
	runtime.Gosched()
}

// headFenceBudget is how many fruitless head spins the blocking variant
// tolerates before it raises the no-steal fence against TAS stealers
// (bounded starvation; see the head loop in lockAbort). Large enough that
// the fence never triggers under healthy handoff latencies — stealing
// keeps its throughput role — but bounded, so a saturated steal storm
// cannot park the head forever.
const headFenceBudget = 1024

// qnode is a waiter's queue node. It lives for the duration of one acquire
// (lock-state decoupling: the holder releases it before the critical
// section) and is recycled through a pool.
type qnode struct {
	status   atomic.Uint32
	next     atomic.Pointer[qnode]
	shuffler atomic.Uint32
	lastHint atomic.Pointer[qnode]
	batch    atomic.Uint32 // written by shufflers, read by the owner
	socket   uint32        // write-once at node creation
	prio     uint64        // stamped per acquisition, before tail publication
	park     chan struct{}
}

// numSockets is the socket count used for round-robin node placement.
var numSockets atomic.Uint32

// nextSocket assigns sockets to fresh queue nodes.
var nextSocket atomic.Uint32

func init() {
	n := uint32(runtime.NumCPU() / 24)
	if n < 1 {
		n = 1
	}
	numSockets.Store(n)
}

// SetSockets overrides the number of NUMA sockets assumed by the shuffling
// policy. One socket disables NUMA grouping (shuffling still powers the
// wakeup policy of the blocking locks).
func SetSockets(n int) {
	if n < 1 {
		n = 1
	}
	numSockets.Store(uint32(n))
}

// Sockets returns the configured socket count.
func Sockets() int { return int(numSockets.Load()) }

var nodePool = sync.Pool{
	New: func() any {
		return &qnode{
			socket: nextSocket.Add(1) % numSockets.Load(),
			park:   make(chan struct{}, 1),
		}
	},
}

// getNode returns an initialized node for one acquisition.
func getNode() *qnode {
	n := nodePool.Get().(*qnode)
	n.status.Store(sWaiting)
	n.next.Store(nil)
	n.shuffler.Store(0)
	n.lastHint.Store(nil)
	n.batch.Store(0)
	return n
}

func putNode(n *qnode) { nodePool.Put(n) }

// parkSelf blocks until wakeNode delivers a token. A stale token from an
// earlier acquisition is indistinguishable from a wakeup; callers always
// re-check their condition, so the worst case is one spurious loop.
func (n *qnode) parkSelf() { <-n.park }

// wakeNode delivers a wakeup token without blocking.
func (n *qnode) wakeNode() {
	select {
	case n.park <- struct{}{}:
	default:
	}
}
