// Package core is the native Go implementation of the paper's lock family:
// SpinLock (the non-blocking ShflLock), Mutex (the blocking ShflLock) and
// RWMutex (the blocking readers-writer ShflLock), all usable as drop-in
// sync.Locker replacements, plus simple TAS/ticket/MCS baselines for
// comparison benchmarks.
//
// Shuffling needs to know which group a waiter belongs to. The paper groups
// by NUMA socket of a pinned OS thread; Go offers no portable way to query
// the current CPU, so the package approximates, in one of two modes:
//
//   - Socket mode (the default family): queue nodes are recycled through a
//     sync.Pool (which is per-P under the hood) and each node is assigned a
//     socket round-robin when first created. On a real NUMA machine with
//     GOMAXPROCS pinned OS threads this correlates well enough for batching
//     to help. The socket count comes from the host's sysfs NUMA layout
//     when available (internal/topology.DetectHostSockets), else a
//     documented NumCPU-based fallback; SetSockets overrides.
//   - Goroutine mode (NewGoroMutex / NewGoroRWMutex / NewGoroSpinLock):
//     nodes are re-stamped on every acquisition with an approximate
//     current-P bucket from internal/runtimeq, because on goroutines the
//     creation-time stamp is a lie — the pool recycles nodes across Ps, so
//     a write-once id gives a waiter whatever group the node's creator had.
//     Grouping only pays when group identity is stable for the duration of
//     one queue wait (the CNA lesson), which per-acquisition stamping
//     restores.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shfllock/internal/runtimeq"
	"shfllock/internal/topology"
)

// Queue-node status values (Figure 4 and Figure 6 of the paper), plus the
// two abandonment states of the MCSTP-style abort protocol. The numeric
// values match the shuffle.Status* constants shared with the simulator.
const (
	sWaiting   = iota // spinning on the node; may park
	sReady            // head of the queue: go take the TAS lock
	sParked           // descheduled; wake via the park channel
	sSpinning         // marked by a shuffler: keep spinning
	sAbandoned        // waiter timed out / was cancelled and left the queue
	sReclaimed        // an abandoned node was unlinked by shuffler or grant walk
)

// spinBudget is how many local spin iterations a blocking waiter performs
// before parking (the userspace ShflLock^B parks after a constant spin,
// paper footnote 3).
const spinBudget = 128

// The single-P heuristic: whether the runtime has exactly one P. Spinning
// on a condition another goroutine must make true is then a losing bet
// past the first yield — the spinner's timeslices are the very thing the
// holder is waiting for. This is the userspace analog of the kernel
// patch's "NrRunning > #cores → park immediately" oversubscription guard
// (paper §4.3), and of the Go runtime disabling sync.Mutex spinning when
// GOMAXPROCS == 1. It deliberately does NOT shorten the queue waiter's
// pre-park spin (spinBudget): those waits are one short critical section
// long, the spin is Gosched-paced anyway, and replacing 16 yields with a
// park/wake channel round trip measurably hurts handoff latency. Only
// the unparkable condition-spins (spinWait) change behavior.
//
// The value is derived from runtimeq's cached GOMAXPROCS, which getNode
// refreshes on a coarse acquisition-count epoch — NOT computed once at
// package init: a program that calls runtime.GOMAXPROCS(n) after
// importing this package (common in servers that size themselves after
// flag parsing) would otherwise keep stale spin/park pacing forever.
// singlePForce is the SetSingleP override: it wins over the measured
// value until SetSingleP is called again.
var singlePForce atomic.Int32 // 0 = auto, 1 = forced true, 2 = forced false

// SetSingleP overrides the single-P heuristic (e.g. for tests, or for a
// caller that knows better than the GOMAXPROCS census). The override
// sticks: later GOMAXPROCS changes do not clear it.
func SetSingleP(on bool) {
	if on {
		singlePForce.Store(1)
	} else {
		singlePForce.Store(2)
	}
}

// AutoSingleP removes a SetSingleP override, returning SingleP to the
// measured, epoch-refreshed GOMAXPROCS judgment.
func AutoSingleP() { singlePForce.Store(0) }

// SingleP reports the current single-P heuristic, so policy layers above
// the locks (e.g. an adaptive controller choosing a lock family) can
// share the same judgment instead of re-deriving it.
func SingleP() bool {
	switch singlePForce.Load() {
	case 1:
		return true
	case 2:
		return false
	}
	return runtimeq.Procs() == 1
}

// spinWait paces iteration i (counting from 1) of a condition-spin loop
// that cannot park — the queue head polling the TAS word, a writer
// draining the reader count. Mostly it busy-spins, with a Gosched every
// 16th pass; on a single-P runtime, once the condition has survived a
// couple of full yield rounds it switches to short sleeps instead. At
// that point the goroutine that will make the condition true (a holder
// streaming a paced scan, a parked releaser) needs this CPU far more
// than the spinner, and each further Gosched is a full round trip
// through a saturated run queue — the sleep hands over the timeslice at
// a bounded ~100µs cost to handoff latency.
func spinWait(i int) {
	if i%16 != 0 {
		return
	}
	if i > 32 && SingleP() {
		time.Sleep(100 * time.Microsecond)
		return
	}
	runtime.Gosched()
}

// headFenceBudget is how many fruitless head spins the blocking variant
// tolerates before it raises the no-steal fence against TAS stealers
// (bounded starvation; see the head loop in lockAbort). Large enough that
// the fence never triggers under healthy handoff latencies — stealing
// keeps its throughput role — but bounded, so a saturated steal storm
// cannot park the head forever.
const headFenceBudget = 1024

// qnode is a waiter's queue node. It lives for the duration of one acquire
// (lock-state decoupling: the holder releases it before the critical
// section) and is recycled through a pool.
type qnode struct {
	status   atomic.Uint32
	next     atomic.Pointer[qnode]
	shuffler atomic.Uint32
	lastHint atomic.Pointer[qnode]
	batch    atomic.Uint32 // written by shufflers, read by the owner
	// group is the waiter's policy-group id: a fake socket (round-robin at
	// node creation, the default family) or an approximate P bucket
	// (re-stamped every acquisition, the goro family). Atomic because a
	// goro re-stamp can race a stale shuffler reading the group of a
	// recycled hint node; the engine discards such hints, so the value
	// read does not matter, but the access must be clean under -race.
	group atomic.Uint32
	prio  uint64 // stamped per acquisition, before tail publication
	park  chan struct{}
}

// numSockets is the socket count used for round-robin node placement.
var numSockets atomic.Uint32

// nextSocket assigns sockets to fresh queue nodes.
var nextSocket atomic.Uint32

func init() {
	// Host sysfs NUMA layout when available; otherwise the documented
	// NumCPU/24 paper-box calibration (see topology.FallbackHostSockets).
	// The old inline NumCPU()/24 heuristic silently reported 1 socket on
	// any machine under 24 CPUs — including real 2-socket small boxes —
	// which disabled NUMA grouping exactly where it was cheap to keep.
	numSockets.Store(uint32(topology.HostSockets()))
}

// SetSockets overrides the number of NUMA sockets assumed by the shuffling
// policy. One socket disables NUMA grouping (shuffling still powers the
// wakeup policy of the blocking locks).
func SetSockets(n int) {
	if n < 1 {
		n = 1
	}
	numSockets.Store(uint32(n))
}

// Sockets returns the configured socket count.
func Sockets() int { return int(numSockets.Load()) }

var nodePool = sync.Pool{
	New: func() any {
		n := &qnode{park: make(chan struct{}, 1)}
		n.group.Store(nextSocket.Add(1) % numSockets.Load())
		return n
	},
}

// getNode returns an initialized node for one acquisition. It also drives
// the runtimeq refresh epoch: every contended acquisition ticks, so the
// cached GOMAXPROCS / goroutine-count signals stay at most one epoch stale
// whenever any lock in the process is busy.
func getNode() *qnode {
	runtimeq.Tick()
	n := nodePool.Get().(*qnode)
	n.status.Store(sWaiting)
	n.next.Store(nil)
	n.shuffler.Store(0)
	n.lastHint.Store(nil)
	n.batch.Store(0)
	return n
}

func putNode(n *qnode) { nodePool.Put(n) }

// parkSelf blocks until wakeNode delivers a token. A stale token from an
// earlier acquisition is indistinguishable from a wakeup; callers always
// re-check their condition, so the worst case is one spurious loop.
func (n *qnode) parkSelf() { <-n.park }

// wakeNode delivers a wakeup token without blocking.
func (n *qnode) wakeNode() {
	select {
	case n.park <- struct{}{}:
	default:
	}
}
