package core

import (
	"sync"
	"sync/atomic"
)

// recipNode is one acquisition's entry on the arrivals stack. next is
// written once by the owner after the push swap and read only by the owner
// at unlock; seg and gate are written by the granter and read by the owner
// after the gate opens.
type recipNode struct {
	gate atomic.Uint32
	next atomic.Pointer[recipNode]
	seg  atomic.Pointer[recipNode]
}

var recipPool = sync.Pool{New: func() any { return new(recipNode) }}

// RecipLock is the native Reciprocating Lock (Dice & Kogan,
// arXiv:2501.02380): a single arrivals word onto which waiters push
// themselves LIFO with one swap (constant-time arrival, no arrival-side
// spinning). When the holder's admission segment runs dry it detaches the
// whole arrivals stack with one swap and serves it top-first — the
// reverse of arrival order — so consecutive segments alternate direction
// ("reciprocating" admission). Bypass is bounded: a waiter is overtaken
// only by threads that arrived within its own segment window, at most
// once. Within a segment, handoff walks the push chain node-to-node with
// local spinning, like MCS.
//
// Boundary values (a segment's stop marker, the held sentinel) are only
// ever compared, never dereferenced, and a node's fields are read only by
// its owner or its one-shot granter, so nodes recycle through a pool with
// no reclamation protocol. The holder keeps its node through the critical
// section (it reads next/seg at unlock).
//
// The zero value is an unlocked RecipLock.
type RecipLock struct {
	arr  atomic.Pointer[recipNode]
	held recipNode // sentinel: address compared, fields never used
	cur  atomic.Pointer[recipNode]
}

// Lock pushes onto the arrivals stack; a nil predecessor means the lock
// was free (era start), otherwise wait for a holder to serve our segment.
func (l *RecipLock) Lock() {
	n := recipPool.Get().(*recipNode)
	n.gate.Store(0)
	prev := l.arr.Swap(n)
	n.next.Store(prev)
	if prev == nil {
		// Era start: empty segment. A nil seg also marks the era starter,
		// whose release expectation is its own node.
		n.seg.Store(nil)
		l.cur.Store(n)
		return
	}
	for i := 1; n.gate.Load() == 0; i++ {
		spinWait(i)
	}
	l.cur.Store(n)
}

// Unlock grants the segment's next node, or releases the lock, or
// detaches the arrivals stack as the next segment and grants its top.
func (l *RecipLock) Unlock() {
	n := l.cur.Load()
	stop := n.seg.Load()
	// home is what the arrivals word held when this sub-era began: the
	// era starter's own node, or the held sentinel after any detach (nil
	// seg identifies the starter; granted holders always get a non-nil
	// boundary).
	home := &l.held
	if stop == nil {
		home = n
	}
	next := n.next.Load()
	if next != stop {
		// Serve the segment: our push-chain predecessor is next in the
		// reversed order. Hand the boundary down, open its gate, and only
		// then recycle — the granter never touches a node after its gate
		// store.
		next.seg.Store(stop)
		next.gate.Store(1)
		recipPool.Put(n)
		return
	}
	if l.arr.CompareAndSwap(home, nil) {
		recipPool.Put(n)
		return // no arrivals since home was installed
	}
	// Arrivals piled up: detach them as the next segment and grant the
	// top. The detached chain bottoms out at a node whose next equals
	// home, which becomes the new segment's stop boundary.
	top := l.arr.Swap(&l.held)
	top.seg.Store(home)
	top.gate.Store(1)
	recipPool.Put(n)
}

// TryLock is a single CAS from the free state (becoming the era starter).
func (l *RecipLock) TryLock() bool {
	if l.arr.Load() != nil {
		return false
	}
	n := recipPool.Get().(*recipNode)
	if l.arr.CompareAndSwap(nil, n) {
		n.next.Store(nil)
		n.seg.Store(nil)
		l.cur.Store(n)
		return true
	}
	recipPool.Put(n)
	return false
}
