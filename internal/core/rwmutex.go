package core

import (
	"sync/atomic"
)

// RWMutex count-word layout (§4.2.3): writer byte (WB), writer-waiting bit
// (WWb), reader count above bit 16.
const (
	rwWB    uint64 = 1
	rwWWb   uint64 = 1 << 8
	rwRUnit uint64 = 1 << 16
)

// RWMutex is the blocking readers-writer ShflLock: a centralized reader
// indicator combined with a writer byte and writer-waiting bit, ordered by
// an internal blocking ShflLock. At most one reader or writer spins on the
// indicator; the rest wait on the shuffled queue. Writer-preferred for
// throughput, with long-term fairness from the underlying lock's batching
// bound. The zero value is an unlocked RWMutex.
type RWMutex struct {
	count atomic.Uint64
	wlock Mutex
}

// RLock acquires a read share.
func (l *RWMutex) RLock() {
	if l.tryRFast() {
		return
	}
	l.wlock.Lock()
	// Holding wlock: announce, then wait only for the active writer.
	l.count.Add(rwRUnit)
	for i := 1; l.count.Load()&rwWB != 0; i++ {
		spinWait(i)
	}
	l.wlock.Unlock()
}

// RUnlock releases a read share.
func (l *RWMutex) RUnlock() {
	l.count.Add(^(rwRUnit - 1))
}

// Lock acquires the write side.
func (l *RWMutex) Lock() {
	if l.count.CompareAndSwap(0, rwWB) {
		return
	}
	l.wlock.Lock()
	l.drainAndClaim()
}

// LockWithPriority acquires the write side with a scheduling priority for
// the internal ordering mutex's queue (higher is more urgent). Only
// meaningful under a priority policy (see SetPolicy and shuffle.Priority);
// other policies ignore it.
func (l *RWMutex) LockWithPriority(prio uint64) {
	if l.count.CompareAndSwap(0, rwWB) {
		return
	}
	l.wlock.LockWithPriority(prio)
	l.drainAndClaim()
}

// drainAndClaim runs with the ordering mutex held: stop new readers, wait
// out the active ones, claim the writer byte, release the ordering mutex.
func (l *RWMutex) drainAndClaim() {
	l.count.Or(rwWWb) // stop new readers
	for i := 1; ; i++ {
		v := l.count.Load()
		if v>>16 == 0 && v&rwWB == 0 {
			if l.count.CompareAndSwap(v, (v&^rwWWb)|rwWB) {
				break
			}
			continue
		}
		spinWait(i)
	}
	l.wlock.Unlock()
}

// Unlock releases the write side.
func (l *RWMutex) Unlock() {
	l.count.And(^rwWB)
}

// TryLock attempts an uncontended write acquisition with a single CAS.
func (l *RWMutex) TryLock() bool {
	return l.count.CompareAndSwap(0, rwWB)
}

// TryRLock attempts a read acquisition without queueing.
func (l *RWMutex) TryRLock() bool {
	v := l.count.Add(rwRUnit)
	if v&(rwWB|rwWWb) == 0 {
		return true
	}
	l.count.Add(^(rwRUnit - 1))
	return false
}
