package core

import (
	"runtime"
	"sync/atomic"

	"shfllock/internal/shuffle"
)

// glock bit layout: bit 0 = locked, bit 8 = no-stealing.
const (
	glkLocked  uint32 = 1
	glkNoSteal uint32 = 1 << 8
)

// shflState is the 12-byte-equivalent lock state shared by the
// non-blocking and blocking ShflLocks: a TAS word plus the waiter-queue
// tail. All policy work happens in the waiters (shuffling), driven by the
// internal/shuffle engine over a pluggable policy.
type shflState struct {
	glock atomic.Uint32
	tail  atomic.Pointer[qnode]
	// probe, when non-nil, receives internal lock events (see Probe).
	// Written by SetProbe before the lock is shared; read with plain
	// loads on the lock paths so a nil probe costs one branch.
	probe Probe
	// policy, when non-nil, overrides the default NUMA shuffling policy.
	// Written by SetPolicy before the lock is shared, like probe.
	policy shuffle.Policy
}

func (l *shflState) pol() shuffle.Policy {
	if p := l.policy; p != nil {
		return p
	}
	return defaultPolicy
}

// trySteal is the TAS fast path; with stealing permitted it also barges
// past a populated queue.
func (l *shflState) trySteal() bool {
	return l.glock.Load() == 0 && l.glock.CompareAndSwap(0, glkLocked)
}

// tryLock attempts a single CAS — cheap because the lock state is
// decoupled from the queue.
func (l *shflState) tryLock() bool {
	if l.glock.Load() != 0 || !l.glock.CompareAndSwap(0, glkLocked) {
		return false
	}
	if p := l.probe; p != nil && l.tail.Load() != nil {
		p.Steal(true)
	}
	return true
}

// unlock releases the TAS lock, preserving the no-stealing bit.
func (l *shflState) unlock() {
	for {
		v := l.glock.Load()
		if l.glock.CompareAndSwap(v, v&^glkLocked) {
			return
		}
	}
}

// lock acquires via fast path or the shuffled waiter queue (Figure 4 / 6).
func (l *shflState) lock(blocking bool, prio uint64) {
	if l.trySteal() {
		if p := l.probe; p != nil && l.tail.Load() != nil {
			p.Steal(false)
		}
		return
	}
	pol := l.pol()
	n := getNode()
	n.prio = prio
	prev := l.tail.Swap(n)
	if prev != nil {
		l.spinUntilVeryNextWaiter(pol, blocking, prev, n)
	} else if !blocking {
		// Preserve FIFO while a queue exists; the blocking variant keeps
		// stealing enabled so the lock stays live across wakeup latency.
		l.glock.Or(glkNoSteal)
	}
	if o := shflOracle.Load(); o != nil && o.headEnter != nil {
		o.headEnter(n)
	}

	if blocking {
		// Figure 7: pre-wake the successor off the critical path.
		if nx := n.next.Load(); nx != nil {
			l.setSpinning(nx)
		}
	}

	// Head of the queue: grab the TAS lock the moment it is free; shuffle
	// while it is held. An unproductive round retains the role (roleMine)
	// without rescanning per iteration; the head relays role and frontier
	// to its successor when it acquires.
	roleMine := false
	spins := 0
	for {
		v := l.glock.Load()
		if v&0xff == 0 {
			if l.glock.CompareAndSwap(v, v|glkLocked) {
				break
			}
			spins++
			if spins%16 == 0 {
				runtime.Gosched()
			}
			continue
		}
		if !roleMine && (n.batch.Load() == 0 || n.shuffler.Load() != 0) {
			fromRole := n.shuffler.Load() != 0
			roleMine = shuffle.Run(coreSub{l: l, self: n, pol: pol}, pol, n,
				shuffle.Input{Blocking: blocking, VNext: true, FromRole: fromRole}).Retained
			if l.glock.Load()&0xff == 0 {
				continue
			}
		}
		spins++
		if spins%16 == 0 {
			runtime.Gosched()
		}
	}
	if o := shflOracle.Load(); o != nil && o.headExit != nil {
		o.headExit(n)
	}

	// MCS unlock phase, moved to the acquire side: hand head status to the
	// successor and release our node before entering the critical section.
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			if !blocking {
				l.clearNoSteal()
			}
			putNode(n)
			if p := l.probe; p != nil {
				p.Contended()
			}
			return
		}
		for next = n.next.Load(); next == nil; next = n.next.Load() {
			runtime.Gosched()
		}
	}
	// Relay a still-held shuffler role (and scan frontier) to the successor.
	if pol.PassRole() && (roleMine || n.shuffler.Load() != 0) {
		if pol.UseHint() {
			if h := n.lastHint.Load(); h != nil && h != next && h != n {
				next.lastHint.Store(h)
			}
		}
		if o := shflOracle.Load(); o != nil && o.handoff != nil {
			o.handoff(n, next, true)
		}
		next.shuffler.Store(1)
	}
	if blocking {
		if old := next.status.Swap(sReady); old == sParked {
			next.wakeNode()
			if p := l.probe; p != nil {
				p.Unpark(true)
			}
		}
	} else {
		next.status.Store(sReady)
	}
	putNode(n)
	if p := l.probe; p != nil {
		p.Contended()
		p.Handoff()
	}
}

// testHookGlkClearRace, when non-nil, runs inside clearNoSteal's
// load-to-CAS window. It exists only so tests can deterministically land a
// concurrent glock update in that window and prove the clear must retry: a
// single CAS attempt loses the race and leaves stealing disabled forever.
var testHookGlkClearRace func(l *shflState)

// clearNoSteal re-enables TAS stealing after the last queued waiter has
// left the queue. The clear must not be a single CAS attempt: any glock
// update landing between the load and the CAS — an unlock/relock cycle of
// a TAS stealer, or a TryLock racing into the window — fails the CAS, and
// a lost clear is permanent on a lock whose remaining users only TryLock:
// with glkNoSteal stuck, trySteal and tryLock see a non-zero word and fail
// forever even though the lock is free. Retry until the bit is observed
// clear.
func (l *shflState) clearNoSteal() {
	for {
		v := l.glock.Load()
		if v&glkNoSteal == 0 {
			return
		}
		if h := testHookGlkClearRace; h != nil {
			h(l)
		}
		if l.glock.CompareAndSwap(v, v&^glkNoSteal) {
			return
		}
	}
}

// spinUntilVeryNextWaiter links behind prev and waits for head status,
// shuffling when handed the role and parking after the spin budget in the
// blocking variant.
func (l *shflState) spinUntilVeryNextWaiter(pol shuffle.Policy, blocking bool, prev, n *qnode) {
	prev.next.Store(n)
	spins := 0
	for {
		v := n.status.Load()
		if v == sReady {
			return
		}
		if n.shuffler.Load() != 0 {
			shuffle.Run(coreSub{l: l, self: n, pol: pol}, pol, n,
				shuffle.Input{Blocking: blocking, VNext: false, FromRole: true})
			continue
		}
		spins++
		if spins%8 == 0 {
			runtime.Gosched()
		}
		if blocking && v == sWaiting && spins > spinBudget {
			if n.status.CompareAndSwap(sWaiting, sParked) {
				if p := l.probe; p != nil {
					p.Park()
				}
				n.parkSelf()
			}
			spins = 0
		}
	}
}

// setSpinning moves a waiter into the spinning state, waking it if parked
// (shuffler wakeup policy, Figure 6).
func (l *shflState) setSpinning(n *qnode) {
	if n.status.CompareAndSwap(sWaiting, sSpinning) {
		return
	}
	if n.status.CompareAndSwap(sParked, sSpinning) {
		n.wakeNode()
		if p := l.probe; p != nil {
			p.Unpark(false)
		}
	}
}

// SpinLock is the non-blocking ShflLock (ShflLock^NB): a NUMA-aware
// spinlock with a 12-byte-equivalent footprint, single-CAS TryLock, and
// waiter-driven queue shuffling. The zero value is an unlocked SpinLock.
type SpinLock struct {
	s shflState
}

// Lock acquires the spinlock.
func (l *SpinLock) Lock() { l.s.lock(false, 0) }

// LockWithPriority acquires the spinlock with a scheduling priority
// (higher is more urgent). Only meaningful under a priority policy (see
// SetPolicy and shuffle.Priority); other policies ignore it.
func (l *SpinLock) LockWithPriority(prio uint64) { l.s.lock(false, prio) }

// Unlock releases the spinlock.
func (l *SpinLock) Unlock() { l.s.unlock() }

// TryLock attempts the acquisition with a single compare-and-swap.
func (l *SpinLock) TryLock() bool { return l.s.tryLock() }

// SetPolicy replaces the shuffling policy (default: NUMA grouping).
// Attach before the lock is shared between goroutines; passing nil
// restores the default.
func (l *SpinLock) SetPolicy(p shuffle.Policy) { l.s.policy = p }

// Mutex is the blocking ShflLock (ShflLock^B): waiters spin briefly and
// then park; shufflers wake parked waiters that are about to get the lock,
// off the critical path; the TAS fast path permits stealing so the lock
// stays live across wakeup latencies. The zero value is an unlocked Mutex.
type Mutex struct {
	s shflState
}

// Lock acquires the mutex, parking under contention.
func (m *Mutex) Lock() { m.s.lock(true, 0) }

// LockWithPriority acquires the mutex with a scheduling priority (higher
// is more urgent). Only meaningful under a priority policy (see SetPolicy
// and shuffle.Priority); other policies ignore it.
func (m *Mutex) LockWithPriority(prio uint64) { m.s.lock(true, prio) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.s.unlock() }

// TryLock attempts the acquisition with a single compare-and-swap.
func (m *Mutex) TryLock() bool { return m.s.tryLock() }

// SetPolicy replaces the shuffling policy (default: NUMA grouping).
// Attach before the lock is shared between goroutines; passing nil
// restores the default.
func (m *Mutex) SetPolicy(p shuffle.Policy) { m.s.policy = p }
