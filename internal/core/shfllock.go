package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"shfllock/internal/runtimeq"
	"shfllock/internal/shuffle"
)

// glock bit layout: bit 0 = locked, bit 8 = no-stealing.
const (
	glkLocked  uint32 = 1
	glkNoSteal uint32 = 1 << 8
)

// shflState is the 12-byte-equivalent lock state shared by the
// non-blocking and blocking ShflLocks: a TAS word plus the waiter-queue
// tail. All policy work happens in the waiters (shuffling), driven by the
// internal/shuffle engine over a pluggable policy.
type shflState struct {
	glock atomic.Uint32
	tail  atomic.Pointer[qnode]
	// probe, when non-nil, receives internal lock events (see Probe).
	// Written by SetProbe before the lock is shared; read with plain
	// loads on the lock paths so a nil probe costs one branch.
	probe Probe
	// policy is the epoched policy holder: SetPolicy may be called at any
	// time, under any contention. Every walk (shuffle round, grant walk,
	// head abdication) reads it exactly once through roundPol and runs
	// entirely under that read — the transition protocol's epoch fence.
	// An empty box means the default NUMA policy.
	policy shuffle.PolicyBox
	// mayAbort latches to true on the first abortable acquisition and gates
	// the abandoned-node handling in shuffling rounds (shuffle.Substrate
	// MayAbort): locks that never see LockTimeout/LockContext pay nothing.
	mayAbort atomic.Bool
	// goro marks the goroutine-native variant (NewGoroMutex & co.): queue
	// nodes are re-stamped with an approximate P bucket on every
	// acquisition, and waiting turns deferential under oversubscription —
	// park after a few spins instead of spinBudget, and the unparkable
	// spins (queue head on the TAS word) hand their timeslice back with a
	// short sleep instead of a Gosched round trip through a saturated run
	// queue. Written before the lock is shared, like probe and policy.
	goro bool
}

func (l *shflState) pol() shuffle.Policy {
	if p := l.policy.Get(); p != nil {
		return p
	}
	return defaultPolicy
}

// roundPol reads the policy box exactly once and pins composite policies
// (shuffle.Meta) to their current stage. The returned value is held for one
// complete walk — a shuffle round, the grant walk, or a head abdication —
// so a concurrent SetPolicy can never tear Match/Budget/WakeGrouped apart.
func (l *shflState) roundPol() shuffle.Policy {
	return shuffle.Pin(l.pol())
}

// setPolicy is the one native path that installs a policy: an epoched
// transition recorded with the caller's trigger. nil restores the default.
func (l *shflState) setPolicy(p shuffle.Policy, trigger string) {
	l.policy.Set(p, trigger, uint64(time.Now().UnixNano()))
}

// trySteal is the TAS fast path; with stealing permitted it also barges
// past a populated queue.
func (l *shflState) trySteal() bool {
	return l.glock.Load() == 0 && l.glock.CompareAndSwap(0, glkLocked)
}

// tryLock attempts a single CAS — cheap because the lock state is
// decoupled from the queue.
func (l *shflState) tryLock() bool {
	if l.glock.Load() != 0 || !l.glock.CompareAndSwap(0, glkLocked) {
		return false
	}
	if p := l.probe; p != nil && l.tail.Load() != nil {
		p.Steal(true)
	}
	return true
}

// unlock releases the TAS lock, preserving the no-stealing bit.
func (l *shflState) unlock() {
	for {
		v := l.glock.Load()
		if l.glock.CompareAndSwap(v, v&^glkLocked) {
			return
		}
	}
}

// lock acquires via fast path or the shuffled waiter queue (Figure 4 / 6).
func (l *shflState) lock(blocking bool, prio uint64) {
	l.lockAbort(blocking, prio, nil)
}

// lockAbort is the full acquisition path: the plain lock with a == nil, the
// abortable one (LockTimeout/LockContext) otherwise. It returns false only
// when the aborter expired before the lock was acquired; the caller's queue
// node is then either abandoned in place (mid-queue — a shuffler or a later
// grant walk reclaims it) or already retired (at the head, which cannot
// abandon and instead abdicates by running the grant walk lockless).
func (l *shflState) lockAbort(blocking bool, prio uint64, a *aborter) bool {
	if l.trySteal() {
		if p := l.probe; p != nil && l.tail.Load() != nil {
			p.Steal(false)
		}
		return true
	}
	if a != nil {
		// Arm the abandoned-node handling in shuffling rounds before this
		// acquisition can possibly leave a corpse in the queue.
		l.mayAbort.Store(true)
	}
	n := getNode()
	if l.goro {
		// Re-stamp the recycled node with the acquirer's current P bucket
		// before tail publication. The creation-time stamp is whatever the
		// node's first user had — on goroutines that is noise, and grouping
		// by noise is what broke group-identity stability.
		n.group.Store(runtimeq.PGroup())
	}
	n.prio = prio
	prev := l.tail.Swap(n)
	if prev != nil {
		if !l.spinUntilVeryNextWaiter(blocking, prev, n, a) {
			// Abandoned mid-queue. The node must never return to the pool:
			// predecessors and shufflers may still hold references, and only
			// the reclaimer's sReclaimed store ends its queue life. The
			// garbage collector picks it up after that.
			if p := l.probe; p != nil {
				p.Abort()
			}
			return false
		}
	} else if !blocking {
		// Preserve FIFO while a queue exists; the blocking variant keeps
		// stealing enabled so the lock stays live across wakeup latency.
		l.glock.Or(glkNoSteal)
	}
	if o := shflOracle.Load(); o != nil && o.headEnter != nil {
		o.headEnter(n)
	}

	if blocking {
		// Figure 7: pre-wake the successor off the critical path.
		if nx := n.next.Load(); nx != nil {
			l.setSpinning(nx)
		}
	}

	// Head of the queue: grab the TAS lock the moment it is free; shuffle
	// while it is held. An unproductive round retains the role (roleMine)
	// without rescanning per iteration; the head relays role and frontier
	// to its successor when it acquires.
	//
	// Starvation fence: the blocking variant keeps TAS stealing enabled so
	// the lock stays live across wakeup latencies, but on a saturated
	// machine (few cores, steal-heavy callers) the free windows and the
	// head's timeslices can anti-correlate indefinitely — every release is
	// re-stolen before the head ever observes it. After headFenceBudget
	// fruitless spins the head raises glkNoSteal, which fails trySteal and
	// tryLock outright (they require the whole word to be zero), so the very
	// next release can only go to the queue. The fence is strictly
	// head-local for the blocking variant: cleared atomically by the
	// acquisition CAS, or explicitly on abdication. The non-blocking variant
	// manages the same bit with queue lifetime (set at 112, cleared by
	// passHead when the queue empties) and never takes this path.
	roleMine := false
	spins := 0
	fenced := false
	for {
		v := l.glock.Load()
		if v&0xff == 0 {
			nv := v | glkLocked
			if fenced {
				nv &^= glkNoSteal
			}
			if l.glock.CompareAndSwap(v, nv) {
				break
			}
			spins++
			l.pace(spins)
			continue
		}
		if a != nil && spins&7 == 0 && a.expired() {
			// The head owns the MCS unlock obligation (and, non-blocking,
			// the no-steal bit), so it cannot abandon in place: abdicate by
			// performing the unlock phase without ever taking the TAS lock.
			if fenced {
				l.clearNoSteal()
			}
			if o := shflOracle.Load(); o != nil && o.headExit != nil {
				o.headExit(n)
			}
			l.passHead(blocking, roleMine, n)
			if p := l.probe; p != nil {
				p.Abort()
			}
			return false
		}
		if !roleMine && (n.batch.Load() == 0 || n.shuffler.Load() != 0) {
			fromRole := n.shuffler.Load() != 0
			pol := l.roundPol()
			roleMine = shuffle.Run(coreSub{l: l, self: n, pol: pol}, pol, n,
				shuffle.Input{Blocking: blocking, VNext: true, FromRole: fromRole}).Retained
			if l.glock.Load()&0xff == 0 {
				continue
			}
		}
		spins++
		l.pace(spins)
		if blocking && !fenced && spins > headFenceBudget {
			l.glock.Or(glkNoSteal)
			fenced = true
		}
	}
	if o := shflOracle.Load(); o != nil && o.headExit != nil {
		o.headExit(n)
	}

	granted := l.passHead(blocking, roleMine, n)
	if p := l.probe; p != nil {
		p.Contended()
		if granted {
			p.Handoff()
		}
	}
	return true
}

// passHead is the MCS unlock phase, moved to the acquire side: hand head
// status to the first live successor — skipping and reclaiming abandoned
// nodes — or empty the queue. It returns true when a successor was granted.
// The caller's node n goes back to the pool; abandoned nodes never do (see
// lockAbort).
//
// The grant is a status CAS, not a blind swap: it races against the
// successor's own abandonment CAS on the same word, so exactly one of
// {grant, abandon} wins. An abandoned successor's next link is read before
// its sReclaimed store is published — the protocol is shared with the
// simulator substrate, where the owner thread reuses its node the moment it
// observes the reclaimed store, and a reused node's link would point into a
// different part of the queue.
//
// The walk pins its policy at entry (one roundPol read): abdication and
// reclaim both run entirely under the epoch observed here, so a transition
// landing mid-walk takes effect on the next walk, never inside this one.
func (l *shflState) passHead(blocking, roleMine bool, n *qnode) bool {
	pol := l.roundPol()
	cur := n
	var relayed *qnode
	for {
		next := cur.next.Load()
		if next == nil {
			if l.tail.CompareAndSwap(cur, nil) {
				if !blocking {
					l.clearNoSteal()
				}
				putNode(n)
				return false
			}
			for next = cur.next.Load(); next == nil; next = cur.next.Load() {
				runtime.Gosched()
			}
		}
		st := next.status.Load()
		if st == sAbandoned {
			nn := next.next.Load()
			if nn == nil {
				// Abandoned tail: retire it with the same tail CAS an empty
				// queue gets; on failure a joiner is mid-link — wait it out.
				if l.tail.CompareAndSwap(next, nil) {
					next.status.Store(sReclaimed)
					if p := l.probe; p != nil {
						p.Reclaim()
					}
					if !blocking {
						l.clearNoSteal()
					}
					putNode(n)
					return false
				}
				for nn = next.next.Load(); nn == nil; nn = next.next.Load() {
					runtime.Gosched()
				}
			}
			next.status.Store(sReclaimed)
			if p := l.probe; p != nil {
				p.Reclaim()
			}
			cur = next
			continue
		}
		// Relay a still-held shuffler role (and scan frontier) to the
		// successor — once per candidate, before the grant: after it the
		// successor may leave the queue at any moment.
		if next != relayed && pol.PassRole() && (roleMine || n.shuffler.Load() != 0) {
			if pol.UseHint() {
				if h := n.lastHint.Load(); h != nil && h != next && h != n {
					next.lastHint.Store(h)
				}
			}
			if o := shflOracle.Load(); o != nil && o.handoff != nil {
				o.handoff(n, next, true)
			}
			next.shuffler.Store(1)
			relayed = next
		}
		if next.status.CompareAndSwap(st, sReady) {
			if blocking && st == sParked {
				next.wakeNode()
				if p := l.probe; p != nil {
					p.Unpark(true)
				}
			}
			putNode(n)
			return true
		}
		// The successor's status moved under the grant (a shuffler's
		// spinning mark, a park, or an abandonment): reload and redecide.
	}
}

// testHookGlkClearRace, when non-nil, runs inside clearNoSteal's
// load-to-CAS window. It exists only so tests can deterministically land a
// concurrent glock update in that window and prove the clear must retry: a
// single CAS attempt loses the race and leaves stealing disabled forever.
var testHookGlkClearRace func(l *shflState)

// clearNoSteal re-enables TAS stealing after the last queued waiter has
// left the queue. The clear must not be a single CAS attempt: any glock
// update landing between the load and the CAS — an unlock/relock cycle of
// a TAS stealer, or a TryLock racing into the window — fails the CAS, and
// a lost clear is permanent on a lock whose remaining users only TryLock:
// with glkNoSteal stuck, trySteal and tryLock see a non-zero word and fail
// forever even though the lock is free. Retry until the bit is observed
// clear.
func (l *shflState) clearNoSteal() {
	for {
		v := l.glock.Load()
		if v&glkNoSteal == 0 {
			return
		}
		if h := testHookGlkClearRace; h != nil {
			h(l)
		}
		if l.glock.CompareAndSwap(v, v&^glkNoSteal) {
			return
		}
	}
}

// goroOversubSpinBudget replaces spinBudget for goro-family waiters while
// the runtime is oversubscribed: with more runnable goroutines than Ps,
// every pre-park spin iteration statistically displaces a runnable
// goroutine (plausibly the holder), so waiters commit to the park channel
// almost immediately. The handoff-latency argument for the long budget
// (footnote 3) assumes the spin happens on an otherwise idle CPU.
const goroOversubSpinBudget = 4

// parkBudget is the pre-park spin budget for one blocking waiter.
func (l *shflState) parkBudget() int {
	if l.goro && runtimeq.Oversubscribed() {
		return goroOversubSpinBudget
	}
	return spinBudget
}

// pace paces iteration i of an unparkable spin (the queue head watching
// the TAS word). The goro family under oversubscription sleeps briefly
// instead of yielding: a Gosched is a round trip through a saturated run
// queue that re-runs this spinner ahead of goroutines that could make
// actual progress, while a short sleep donates the timeslice outright at
// a bounded cost to handoff latency. Other locks keep spinWait behavior.
func (l *shflState) pace(i int) {
	if l.goro && i%16 == 0 && i > 16 && runtimeq.Oversubscribed() {
		time.Sleep(50 * time.Microsecond)
		return
	}
	spinWait(i)
}

// spinUntilVeryNextWaiter links behind prev and waits for head status,
// shuffling when handed the role and parking after the spin budget in the
// blocking variant. With a non-nil aborter it returns false if the wait
// expired first; the node is then marked sAbandoned and stays in the queue
// for a reclaimer.
func (l *shflState) spinUntilVeryNextWaiter(blocking bool, prev, n *qnode, a *aborter) bool {
	prev.next.Store(n)
	spins := 0
	for {
		v := n.status.Load()
		if v == sReady {
			return true
		}
		if a != nil && spins&7 == 0 && a.expired() {
			if l.abandon(n) {
				return false
			}
			// Lost the race to a concurrent grant: we are the head now.
			continue
		}
		if n.shuffler.Load() != 0 {
			// One policy read per round: the walk below never re-reads, so a
			// concurrent transition cannot tear it.
			pol := l.roundPol()
			shuffle.Run(coreSub{l: l, self: n, pol: pol}, pol, n,
				shuffle.Input{Blocking: blocking, VNext: false, FromRole: true})
			continue
		}
		spins++
		if spins%8 == 0 {
			if l.goro && v == sWaiting && spins > 64 && runtimeq.Oversubscribed() {
				// Non-blocking goro waiters cannot park; donate the slice
				// instead of cycling through the saturated run queue. A
				// shuffler-marked (sSpinning) node keeps yielding: its
				// grant is imminent.
				time.Sleep(50 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
		}
		if blocking && v == sWaiting && spins > l.parkBudget() {
			if n.status.CompareAndSwap(sWaiting, sParked) {
				if p := l.probe; p != nil {
					p.Park()
				}
				n.parkAbortable(a)
			}
			spins = 0
		}
	}
}

// abandon CASes the waiter's status from any waiting state to sAbandoned.
// It fails (returns false) only when a granter won the race and the node is
// already the queue head — the caller must then proceed as head.
func (l *shflState) abandon(n *qnode) bool {
	for {
		v := n.status.Load()
		if v == sReady {
			return false
		}
		if n.status.CompareAndSwap(v, sAbandoned) {
			return true
		}
	}
}

// setSpinning moves a waiter into the spinning state, waking it if parked
// (shuffler wakeup policy, Figure 6).
func (l *shflState) setSpinning(n *qnode) {
	if n.status.CompareAndSwap(sWaiting, sSpinning) {
		return
	}
	if n.status.CompareAndSwap(sParked, sSpinning) {
		n.wakeNode()
		if p := l.probe; p != nil {
			p.Unpark(false)
		}
	}
}

// SpinLock is the non-blocking ShflLock (ShflLock^NB): a NUMA-aware
// spinlock with a 12-byte-equivalent footprint, single-CAS TryLock, and
// waiter-driven queue shuffling. The zero value is an unlocked SpinLock.
type SpinLock struct {
	s shflState
}

// Lock acquires the spinlock.
func (l *SpinLock) Lock() { l.s.lock(false, 0) }

// LockWithPriority acquires the spinlock with a scheduling priority
// (higher is more urgent). Only meaningful under a priority policy (see
// SetPolicy and shuffle.Priority); other policies ignore it.
func (l *SpinLock) LockWithPriority(prio uint64) { l.s.lock(false, prio) }

// Unlock releases the spinlock.
func (l *SpinLock) Unlock() { l.s.unlock() }

// TryLock attempts the acquisition with a single compare-and-swap.
func (l *SpinLock) TryLock() bool { return l.s.tryLock() }

// SetPolicy replaces the shuffling policy (default: NUMA grouping) through
// the epoched transition protocol: safe at any time, under any contention.
// Passing nil restores the default.
func (l *SpinLock) SetPolicy(p shuffle.Policy) { l.s.setPolicy(p, "api") }

// Transitions exposes the lock's policy transition record.
func (l *SpinLock) Transitions() *shuffle.TransitionLog { return l.s.policy.Log() }

// PolicyEpoch returns the current transition fence value (monotone).
func (l *SpinLock) PolicyEpoch() uint64 { return l.s.policy.Epoch() }

// Mutex is the blocking ShflLock (ShflLock^B): waiters spin briefly and
// then park; shufflers wake parked waiters that are about to get the lock,
// off the critical path; the TAS fast path permits stealing so the lock
// stays live across wakeup latencies. The zero value is an unlocked Mutex.
type Mutex struct {
	s shflState
}

// Lock acquires the mutex, parking under contention.
func (m *Mutex) Lock() { m.s.lock(true, 0) }

// LockWithPriority acquires the mutex with a scheduling priority (higher
// is more urgent). Only meaningful under a priority policy (see SetPolicy
// and shuffle.Priority); other policies ignore it.
func (m *Mutex) LockWithPriority(prio uint64) { m.s.lock(true, prio) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.s.unlock() }

// TryLock attempts the acquisition with a single compare-and-swap.
func (m *Mutex) TryLock() bool { return m.s.tryLock() }

// SetPolicy replaces the shuffling policy (default: NUMA grouping) through
// the epoched transition protocol: safe at any time, under any contention.
// Passing nil restores the default.
func (m *Mutex) SetPolicy(p shuffle.Policy) { m.s.setPolicy(p, "api") }

// Transitions exposes the lock's policy transition record.
func (m *Mutex) Transitions() *shuffle.TransitionLog { return m.s.policy.Log() }

// PolicyEpoch returns the current transition fence value (monotone).
func (m *Mutex) PolicyEpoch() uint64 { return m.s.policy.Epoch() }
