package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestNoStealClearSurvivesRace is the regression test for the lost
// glkNoSteal clear: when the last queued waiter leaves the SpinLock's
// queue it must re-enable TAS stealing even if a concurrent glock update
// lands between its load of the word and the clearing CAS. The pre-fix
// code issued exactly one CompareAndSwap, so the injected racer below made
// it lose silently — leaving glkNoSteal set on a free lock, where every
// later TryLock fails although nobody holds or waits for the lock.
func TestNoStealClearSurvivesRace(t *testing.T) {
	var l SpinLock

	// Wedge the lock into the bug's end state first to pin down the
	// symptom: stealing disabled, lock free, queue empty.
	l.s.glock.Store(glkNoSteal)
	if l.TryLock() {
		t.Fatal("TryLock must fail while glkNoSteal is set")
	}

	// A queued Lock/Unlock cycle clears the bit on queue exit. Land a
	// racing glock update (a TAS stealer's unlock observed mid-window) in
	// the clear's load-to-CAS window so the first CAS attempt fails.
	fired := 0
	testHookGlkClearRace = func(s *shflState) {
		if fired++; fired > 1 {
			return
		}
		s.glock.Store(s.glock.Load() &^ glkLocked)
	}
	defer func() { testHookGlkClearRace = nil }()

	l.Lock()
	l.Unlock()

	if fired == 0 {
		t.Fatal("race hook never fired — Lock no longer exercises the clear path")
	}
	if !l.TryLock() {
		t.Fatal("TryLock failed on an uncontended lock: the glkNoSteal clear was lost")
	}
	l.Unlock()
}

// tryLocker is the surface shared by both native ShflLocks.
type tryLocker interface {
	Lock()
	Unlock()
	TryLock() bool
}

// TestStealPathLiveness drives concurrent Lock/Unlock/TryLock traffic on
// the native locks and asserts the steal path stays live: once the queue
// drains, a TryLock on the now-uncontended lock must succeed. Run under
// the race detector by verify.sh; a lost glkNoSteal clear fails the final
// TryLock deterministically.
func TestStealPathLiveness(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	locks := []struct {
		name string
		l    tryLocker
	}{
		{"spinlock", &SpinLock{}},
		{"mutex", &Mutex{}},
	}
	for _, tc := range locks {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.l
			var held atomic.Int32
			enterCS := func() {
				if h := held.Add(1); h != 1 {
					t.Errorf("%d threads in the critical section", h)
				}
				held.Add(-1)
			}
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for k := 0; k < iters; k++ {
						if (w+k)%3 == 0 {
							if l.TryLock() {
								enterCS()
								l.Unlock()
							}
							continue
						}
						l.Lock()
						enterCS()
						l.Unlock()
					}
				}(w)
			}
			wg.Wait()
			// All workers are gone, so the lock is free and the queue is
			// empty; the TAS steal path must accept a TryLock promptly.
			deadline := time.Now().Add(10 * time.Second)
			for !l.TryLock() {
				if time.Now().After(deadline) {
					t.Fatal("TryLock never succeeded after the queue drained — steal path dead")
				}
				runtime.Gosched()
			}
			l.Unlock()
		})
	}
}
