package core

import "shfllock/internal/shuffle"

// defaultPolicy is the paper's NUMA-grouping policy, used by every lock
// that has no explicit policy attached via SetPolicy.
var defaultPolicy = shuffle.NUMA()

// testHookQnodeID, when non-nil, names queue nodes in shuffle decision
// traces. Only the differential substrate tests install it; production
// rounds never carry a trace, so the hook is never consulted.
var testHookQnodeID func(*qnode) uint64

// coreSub backs the shuffle engine with sync/atomic accesses on *qnode.
// One value is built per shuffling round; self is the shuffler's node (its
// socket is the thread's own placement, so reading it is not a queue-node
// access the way Socket(n) is).
type coreSub struct {
	l    *shflState
	self *qnode
	pol  shuffle.Policy
}

func (s coreSub) LoadNext(n *qnode) *qnode             { return n.next.Load() }
func (s coreSub) StoreNext(n, v *qnode)                { n.next.Store(v) }
func (s coreSub) LoadStatus(n *qnode) uint64           { return uint64(n.status.Load()) }
func (s coreSub) StoreStatus(n *qnode, v uint64)       { n.status.Store(uint32(v)) }
func (s coreSub) SwapStatus(n *qnode, v uint64) uint64 { return uint64(n.status.Swap(uint32(v))) }
func (s coreSub) StoreShuffler(n *qnode, v uint64)     { n.shuffler.Store(uint32(v)) }
func (s coreSub) LoadBatch(n *qnode) uint64            { return uint64(n.batch.Load()) }
func (s coreSub) StoreBatch(n *qnode, v uint64)        { n.batch.Store(uint32(v)) }
func (s coreSub) LoadHint(n *qnode) *qnode             { return n.lastHint.Load() }
func (s coreSub) StoreHint(n, v *qnode)                { n.lastHint.Store(v) }

// "Socket" on this substrate means the node's policy-group id: a fake
// socket for the default family, an approximate P bucket for the goro
// family (see qnode.group).
func (s coreSub) ShufflerSocket() uint64 { return uint64(s.self.group.Load()) }
func (s coreSub) Socket(n *qnode) uint64 { return uint64(n.group.Load()) }
func (s coreSub) Prio(n *qnode) uint64   { return n.prio }
func (s coreSub) LockByteFree() bool     { return s.l.glock.Load()&0xff == 0 }
func (s coreSub) SetSpinning(n *qnode)   { s.l.setSpinning(n) }

func (s coreSub) MayAbort() bool { return s.l.mayAbort.Load() }

func (s coreSub) Reclaim(n *qnode) {
	// The node is left to the garbage collector — stale references (a
	// predecessor's next link, a forwarded hint) may still name it, so it
	// can never re-enter the pool.
	if p := s.l.probe; p != nil {
		p.Reclaim()
	}
}

func (s coreSub) RoundStart(*qnode) {}
func (s coreSub) RoleTaken(*qnode)  {}
func (s coreSub) RoundAbort(*qnode) {}

func (s coreSub) RoundActive(n *qnode, fromRole, atHead bool) {
	if o := shflOracle.Load(); o != nil && o.roundBegin != nil {
		o.roundBegin(n, fromRole, atHead)
	}
}

func (s coreSub) Moved(shuffler, moved *qnode) {
	if o := shflOracle.Load(); o != nil && o.moved != nil {
		o.moved(shuffler, moved)
	}
}

func (s coreSub) RoundEnd(n *qnode, scanned, moved, marked int) {
	if p := s.l.probe; p != nil {
		p.Shuffle(s.pol.Name(), scanned, moved)
	}
	if o := shflOracle.Load(); o != nil && o.roundEnd != nil {
		o.roundEnd(n)
	}
}

func (s coreSub) GiveRole(from, to *qnode, why shuffle.RoleWhy) {
	if why == shuffle.RolePassChain {
		if o := shflOracle.Load(); o != nil && o.handoff != nil {
			o.handoff(from, to, false)
		}
	}
	to.shuffler.Store(1)
}

func (s coreSub) RetainRole(*qnode) {}
func (s coreSub) DropRole(*qnode)   {}

// StaleSelfScan is a real (if rare) event here: queue nodes are recycled
// through a pool, so a forwarded resumption hint can name a node that left
// and re-entered the queue behind the shuffler. The engine abandons the
// hint; nothing else to do.
func (s coreSub) StaleSelfScan(*qnode) {}

func (s coreSub) DebugID(n *qnode) uint64 {
	if f := testHookQnodeID; f != nil {
		return f(n)
	}
	return 0
}
