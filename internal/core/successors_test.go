package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// successorLocks enumerates the native successor-lineage locks (the
// Fissile/Hapax/Reciprocating additions) behind the plain locker surface.
func successorLocks() map[string]interface {
	Lock()
	Unlock()
	TryLock() bool
} {
	return map[string]interface {
		Lock()
		Unlock()
		TryLock() bool
	}{
		"fissile":       &FissileLock{},
		"hapax":         &HapaxLock{},
		"reciprocating": &RecipLock{},
	}
}

// TestSuccessorMutualExclusion hammers each lock with a counter whose
// updates are only safe under mutual exclusion; lost updates fail the run.
func TestSuccessorMutualExclusion(t *testing.T) {
	for name, l := range successorLocks() {
		l := l
		t.Run(name, func(t *testing.T) {
			const goroutines = 8
			iters := 5_000
			if testing.Short() {
				iters = 1_000
			}
			var counter int64
			var checks atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if i%16 == 0 && l.TryLock() {
							counter++
							l.Unlock()
							checks.Add(1)
							continue
						}
						l.Lock()
						counter++
						l.Unlock()
						checks.Add(1)
					}
				}()
			}
			wg.Wait()
			if counter != checks.Load() {
				t.Fatalf("%s: lost updates: %d under lock vs %d performed", name, counter, checks.Load())
			}
		})
	}
}

// TestSuccessorOversubscribed runs far more goroutines than Ps so waiters
// pile up, segments/queues grow long, and node recycling churns.
func TestSuccessorOversubscribed(t *testing.T) {
	for name, l := range successorLocks() {
		l := l
		t.Run(name, func(t *testing.T) {
			goroutines := 16 * runtime.GOMAXPROCS(0)
			if goroutines > 64 {
				goroutines = 64
			}
			const iters = 200
			var counter int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != int64(goroutines*iters) {
				t.Fatalf("%s: lost updates: %d vs %d expected", name, counter, goroutines*iters)
			}
		})
	}
}

// TestSuccessorTryLock checks the trylock contract: exclusive while held,
// available again after release, including the held-sentinel state a
// Reciprocating holder leaves in its arrivals word after a detach.
func TestSuccessorTryLock(t *testing.T) {
	for name, l := range successorLocks() {
		l := l
		t.Run(name, func(t *testing.T) {
			if !l.TryLock() {
				t.Fatalf("%s: TryLock failed on a free lock", name)
			}
			if l.TryLock() {
				t.Fatalf("%s: TryLock succeeded while held", name)
			}
			l.Unlock()
			if !l.TryLock() {
				t.Fatalf("%s: TryLock failed after release", name)
			}
			l.Unlock()
			// Uncontended Lock/Unlock cycles recycle nodes through every
			// fast path; a stale node field would surface here.
			for i := 0; i < 1000; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}
