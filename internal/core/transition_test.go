package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shfllock/internal/shuffle"
)

// Live-transition torture for the native substrate. Two properties are on
// trial, both consequences of the epoched transition protocol:
//
//   - No torn policy reads: a walk runs entirely under the policy it pinned
//     at round start. The regression this guards is the old per-field read
//     pattern, where a SetPolicy landing mid-walk could mix one policy's
//     Match with another's budget — observable under -race as a data race,
//     and behaviorally as a dropped or duplicated waiter.
//   - The transition epoch never goes backward, whatever mix of swappers
//     and aborting waiters is in flight.
//
// Queue integrity is judged end to end, the same way policy_test does it: a
// lost wakeup deadlocks the test, a double grant breaks the plain counter.

// flipPolicies is the swap cycle the hammers drive; it crosses stage shapes
// (shuffling on/off, hints on/off, priorities on/off) so a torn read would
// have observable behavior to tear.
func flipPolicies() []shuffle.Policy {
	return []shuffle.Policy{
		shuffle.NUMA(),
		shuffle.Ablation(0), // base: no shuffling at all
		shuffle.Priority(),
		shuffle.Ablation(2), // shuffling + role passing, no hint
	}
}

// transitionLock is the surface under transition torture; all three native
// locks provide it.
type transitionLock interface {
	Lock()
	Unlock()
	TryLock() bool
	LockTimeout(d time.Duration) bool
	LockContext(ctx context.Context) error
	SetPolicy(p shuffle.Policy)
	PolicyEpoch() uint64
	Transitions() *shuffle.TransitionLog
}

// hammerTransitions drives workers through blocking, timed, and
// context-cancelled acquisitions while a flipper swaps the policy in a
// tight loop and a monitor asserts epoch monotonicity. Satellites (a) and
// (c) of the transition-protocol issue live here.
func hammerTransitions(t *testing.T, l transitionLock) {
	t.Helper()
	workers, iters := 8, 300
	if testing.Short() {
		workers, iters = 4, 80
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup

	// The flipper: SetPolicy as fast as it can, through the whole cycle.
	aux.Add(1)
	go func() {
		defer aux.Done()
		pols := flipPolicies()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.SetPolicy(pols[i%len(pols)])
		}
	}()

	// The monitor: the fence only moves forward.
	aux.Add(1)
	go func() {
		defer aux.Done()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := l.PolicyEpoch()
			if e < last {
				t.Errorf("transition epoch went backward: %d after %d", e, last)
				return
			}
			last = e
		}
	}()

	counter := 0
	var granted atomic.Uint64 // successful acquisitions, all paths
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		id := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (id + i) % 3 {
				case 0:
					l.Lock()
				case 1:
					// Budgets straddle the contention scale: some succeed,
					// some abort mid-queue, some abort at the head.
					if !l.LockTimeout(time.Duration(1+i%50) * time.Microsecond) {
						continue
					}
				case 2:
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(1+i%50)*time.Microsecond)
					err := l.LockContext(ctx)
					cancel()
					if err != nil {
						continue
					}
				}
				granted.Add(1)
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stop)
	aux.Wait()

	// A granted abandoned node (or any double grant) shows up as a data race
	// on counter under -race and as a lost update here; a grant that never
	// reached its waiter deadlocks above.
	if uint64(counter) != granted.Load() {
		t.Fatalf("counter=%d but %d grants: mutual exclusion broke under live transitions",
			counter, granted.Load())
	}
	if l.PolicyEpoch() < 2 {
		t.Fatalf("epoch=%d after the run; the flipper never landed a transition", l.PolicyEpoch())
	}
	if l.Transitions().Len() != l.PolicyEpoch() {
		t.Fatalf("log has %d transitions but epoch is %d; every Set must record exactly once",
			l.Transitions().Len(), l.PolicyEpoch())
	}
}

// TestTransitionHammer runs the live-transition torture on all three native
// locks (under -race via verify.sh).
func TestTransitionHammer(t *testing.T) {
	defer SetSockets(Sockets())
	SetSockets(2)
	t.Run("spin", func(t *testing.T) { hammerTransitions(t, new(SpinLock)) })
	t.Run("mutex", func(t *testing.T) { hammerTransitions(t, new(Mutex)) })
	t.Run("rwmutex", func(t *testing.T) { hammerTransitions(t, new(RWMutex)) })
}

// TestTransitionHammerRWWithReaders adds reader churn so policy flips land
// while the write path is draining readers.
func TestTransitionHammerRWWithReaders(t *testing.T) {
	defer SetSockets(Sockets())
	SetSockets(2)
	var rw RWMutex
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rw.RLockTimeout(10 * time.Microsecond) {
					rw.RUnlock()
				}
			}
		}()
	}
	hammerTransitions(t, &rw)
	close(stop)
	readers.Wait()
}

// TestTransitionPinnedRound pins the regression satellite directly: a round
// that started under policy A must complete under policy A even when the
// box moves on mid-round. The shflOracle hooks fire at round start and at
// head transfer; flipping inside them is the sharpest torn-read probe the
// native substrate has.
func TestTransitionPinnedRound(t *testing.T) {
	defer SetSockets(Sockets())
	SetSockets(2)
	var m Mutex
	pols := flipPolicies()
	var flips atomic.Uint64
	shflOracle.Store(&shflOracleHooks{
		roundBegin: func(*qnode, bool, bool) {
			n := flips.Add(1)
			m.SetPolicy(pols[n%uint64(len(pols))])
		},
		headEnter: func(*qnode) {
			n := flips.Add(1)
			m.SetPolicy(pols[n%uint64(len(pols))])
		},
	})
	defer shflOracle.Store(nil)

	counter := 0
	var wg sync.WaitGroup
	workers, iters := 8, 200
	if testing.Short() {
		workers, iters = 4, 60
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("lost updates under forced mid-round flips: %d want %d", counter, workers*iters)
	}
	if flips.Load() == 0 {
		t.Skip("no contention reached the oracle hooks on this machine")
	}
}
