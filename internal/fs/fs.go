// Package fs is an in-memory filesystem substrate modelled after the parts
// of Linux VFS + tmpfs that the paper's microbenchmarks stress: inodes with
// an embedded readers-writer lock (i_rwsem), directory entry maps, a
// superblock rename mutex (s_vfs_rename_mutex), and a rename path spinlock.
//
// The lock types are pluggable, and — crucially for Figure 1 and Figure
// 9(b) — each created inode is charged to the slab allocator at its full
// size *including the embedded lock*, so hierarchical locks bloat inodes
// and stress the allocator exactly as in the paper.
package fs

import (
	"fmt"

	"shfllock/internal/alloc"
	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
)

// inodeBaseBytes is the size of a bare inode without its lock (ext4's
// in-memory inode is ~1KB; tmpfs is smaller; we use a round figure whose
// exact value only scales the allocator pressure).
const inodeBaseBytes = 280

// Path-walk and data-copy costs in cycles (~2.2GHz; a rename or create
// spends on the order of a microsecond in the kernel's locked sections).
const (
	lookupCost  = 250  // path walk, outside the contended locks
	initCost    = 2000 // inode initialization + dentry instantiation in-lock
	perKBCost   = 900  // data copy per KB, outside the locks
	renameCost  = 700  // dentry unhash/rehash inside the rename locks
	unlinkCost  = 350  // dentry removal inside the directory lock
	readdirCost = 60   // per entry enumerated under the read lock
)

// Config selects the lock implementations the filesystem embeds.
type Config struct {
	// RW builds the per-inode readers-writer lock (i_rwsem).
	RW simlocks.RWMaker
	// Mutex builds the superblock rename mutex (s_vfs_rename_mutex).
	Mutex simlocks.Maker
	// Spin builds the rename-path spinlock (dcache/rename_lock).
	Spin simlocks.Maker
}

// Inode is a file or directory with its embedded lock and a couple of
// cache lines of metadata that operations touch inside critical sections.
type Inode struct {
	ID      uint64
	RW      simlocks.RWLock
	meta    []sim.Word
	entries map[string]*Inode // directories only
	Bytes   uint64            // allocator charge incl. embedded lock
}

// FS is one mounted filesystem instance.
type FS struct {
	e   *sim.Engine
	al  *alloc.Allocator
	cfg Config

	Root     *Inode
	RenameMu simlocks.Lock // s_vfs_rename_mutex
	SpinLk   simlocks.Lock // rename-path spinlock

	nextID        uint64
	lockBytes     int // per-inode lock footprint
	LockBytesLive uint64
	InodeCount    uint64
}

// New mounts a filesystem with the given lock configuration.
func New(e *sim.Engine, al *alloc.Allocator, cfg Config) *FS {
	f := &FS{
		e:   e,
		al:  al,
		cfg: cfg,
	}
	f.lockBytes = cfg.RW.Footprint(e.Topology().Sockets).PerLock
	f.RenameMu = cfg.Mutex.New(e, "fs/rename_mutex")
	f.SpinLk = cfg.Spin.New(e, "fs/rename_lock")
	f.Root = f.newInode(nil, true)
	return f
}

// Allocator exposes the slab model for footprint reporting.
func (f *FS) Allocator() *alloc.Allocator { return f.al }

// LockBytesPerInode reports the embedded lock's size.
func (f *FS) LockBytesPerInode() int { return f.lockBytes }

// newInode builds an inode; when t is non-nil the allocation is charged to
// that thread (on its critical path, as in the kernel).
func (f *FS) newInode(t *sim.Thread, dir bool) *Inode {
	f.nextID++
	f.InodeCount++
	ino := &Inode{
		ID:    f.nextID,
		Bytes: uint64(inodeBaseBytes + f.lockBytes),
	}
	if dir {
		// Only directories need a live lock instance in these workloads;
		// plain files still pay the full allocation (lock included), which
		// is the footprint effect under study.
		ino.RW = f.cfg.RW.New(f.e, "fs/i_rwsem")
		ino.meta = f.e.Mem().Alloc("fs/inode", 8)
		ino.entries = make(map[string]*Inode)
	}
	f.LockBytesLive += uint64(f.lockBytes)
	if t != nil {
		f.al.Alloc(t, ino.Bytes)
		t.Delay(initCost)
	}
	return ino
}

func (f *FS) freeInode(t *sim.Thread, ino *Inode) {
	f.InodeCount--
	f.LockBytesLive -= uint64(f.lockBytes)
	f.al.Free(t, ino.Bytes)
}

// touch dirties n metadata words of the inode — the critical-section data
// movement (factor F1) that makes NUMA-ordered handoffs pay off.
func (ino *Inode) touch(t *sim.Thread, n int) {
	for i := 0; i < n && i < len(ino.meta); i++ {
		t.Store(ino.meta[i], t.Load(ino.meta[i])+1)
	}
}

// Mkdir creates a subdirectory (setup helper; charged to t if non-nil).
func (f *FS) Mkdir(t *sim.Thread, parent *Inode, name string) *Inode {
	d := f.newInode(t, true)
	parent.entries[name] = d
	return d
}

// Create makes a file of the given size in dir, holding the directory's
// rwsem in write mode: the MWCM operation.
func (f *FS) Create(t *sim.Thread, dir *Inode, name string, sizeKB int) *Inode {
	t.Delay(lookupCost)
	dir.RW.Lock(t)
	dir.touch(t, 4)
	ino := f.newInode(t, false)
	dir.entries[name] = ino
	dir.RW.Unlock(t)
	if sizeKB > 0 {
		t.Delay(uint64(sizeKB) * perKBCost)
	}
	return ino
}

// Unlink removes a file from dir under the directory write lock.
func (f *FS) Unlink(t *sim.Thread, dir *Inode, name string) bool {
	t.Delay(lookupCost)
	dir.RW.Lock(t)
	dir.touch(t, 2)
	ino, ok := dir.entries[name]
	if ok {
		delete(dir.entries, name)
	}
	t.Delay(unlinkCost)
	dir.RW.Unlock(t)
	if ok {
		f.freeInode(t, ino)
	}
	return ok
}

// RenameLocal renames within one directory under the rename-path spinlock:
// the MWRL operation (each thread works in its private directory, but the
// rename path serializes on a global spinlock).
func (f *FS) RenameLocal(t *sim.Thread, dir *Inode, from, to string) bool {
	t.Delay(lookupCost)
	f.SpinLk.Lock(t)
	dir.touch(t, 3)
	ino, ok := dir.entries[from]
	if ok {
		delete(dir.entries, from)
		dir.entries[to] = ino
	}
	t.Delay(renameCost) // dentry hash manipulation under d_lock
	f.SpinLk.Unlock(t)
	return ok
}

// RenameCross moves a file between directories under the superblock rename
// mutex plus both directory locks: the MWRM operation.
func (f *FS) RenameCross(t *sim.Thread, src, dst *Inode, from, to string) bool {
	t.Delay(lookupCost)
	f.RenameMu.Lock(t)
	// Lock order by inode ID, as the kernel does.
	a, b := src, dst
	if a.ID > b.ID {
		a, b = b, a
	}
	a.RW.Lock(t)
	if a != b {
		b.RW.Lock(t)
	}
	src.touch(t, 3)
	dst.touch(t, 3)
	ino, ok := src.entries[from]
	if ok {
		delete(src.entries, from)
		dst.entries[to] = ino
	}
	t.Delay(renameCost)
	if a != b {
		b.RW.Unlock(t)
	}
	a.RW.Unlock(t)
	f.RenameMu.Unlock(t)
	return ok
}

// Readdir enumerates up to limit entries of dir under the directory's
// read lock: the MRDM operation. It returns the number of entries seen.
func (f *FS) Readdir(t *sim.Thread, dir *Inode, limit int) int {
	dir.RW.RLock(t)
	dir.touch2Read(t)
	n := len(dir.entries)
	if n > limit {
		n = limit
	}
	t.Delay(uint64(n) * readdirCost)
	dir.RW.RUnlock(t)
	return n
}

// touch2Read reads two metadata words (shared, not exclusive).
func (ino *Inode) touch2Read(t *sim.Thread) {
	t.Load(ino.meta[0])
	t.Load(ino.meta[1])
}

// MustName formats a per-thread unique file name.
func MustName(tid, k int) string { return fmt.Sprintf("f%d-%d", tid, k) }
