package fs

import (
	"fmt"
	"testing"

	"shfllock/internal/alloc"
	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
)

func newFS(e *sim.Engine) *FS {
	return New(e, alloc.New(e), Config{
		RW:    simlocks.RWSemMaker(),
		Mutex: simlocks.LinuxMutexMaker(),
		Spin:  simlocks.QSpinLockMaker(),
	})
}

func TestCreateUnlink(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 10_000_000_000})
	f := newFS(e)
	e.Spawn("t", 0, func(th *sim.Thread) {
		d := f.Mkdir(th, f.Root, "dir")
		ino := f.Create(th, d, "file", 4)
		if ino == nil {
			t.Error("Create returned nil")
		}
		if got := f.Readdir(th, d, 100); got != 1 {
			t.Errorf("Readdir = %d, want 1", got)
		}
		if !f.Unlink(th, d, "file") {
			t.Error("Unlink failed")
		}
		if f.Unlink(th, d, "file") {
			t.Error("double Unlink succeeded")
		}
		if got := f.Readdir(th, d, 100); got != 0 {
			t.Errorf("Readdir after unlink = %d, want 0", got)
		}
	})
	e.Run()
}

func TestRenames(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 10_000_000_000})
	f := newFS(e)
	e.Spawn("t", 0, func(th *sim.Thread) {
		d1 := f.Mkdir(th, f.Root, "d1")
		d2 := f.Mkdir(th, f.Root, "d2")
		f.Create(th, d1, "a", 0)
		if !f.RenameLocal(th, d1, "a", "b") {
			t.Error("RenameLocal failed")
		}
		if f.RenameLocal(th, d1, "a", "c") {
			t.Error("RenameLocal of missing file succeeded")
		}
		if !f.RenameCross(th, d1, d2, "b", "b2") {
			t.Error("RenameCross failed")
		}
		if got := f.Readdir(th, d2, 10); got != 1 {
			t.Errorf("d2 entries = %d, want 1", got)
		}
		if got := f.Readdir(th, d1, 10); got != 0 {
			t.Errorf("d1 entries = %d, want 0", got)
		}
	})
	e.Run()
}

func TestLockMemoryAccounting(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Reference(), Seed: 1, HardStop: 10_000_000_000})
	al := alloc.New(e)
	f := New(e, al, Config{
		RW:    simlocks.CohortRWMaker(),
		Mutex: simlocks.LinuxMutexMaker(),
		Spin:  simlocks.QSpinLockMaker(),
	})
	perInode := f.LockBytesPerInode()
	if perInode < 1000 {
		t.Errorf("cohort-rw per-inode lock bytes = %d, want >1000 on 8 sockets", perInode)
	}
	before := f.LockBytesLive
	e.Spawn("t", 0, func(th *sim.Thread) {
		d := f.Mkdir(th, f.Root, "d")
		for i := 0; i < 10; i++ {
			f.Create(th, d, MustName(0, i), 0)
		}
	})
	e.Run()
	grown := f.LockBytesLive - before
	if grown != uint64(11*perInode) { // 1 dir + 10 files
		t.Errorf("lock memory grew %d, want %d", grown, 11*perInode)
	}
	if al.BytesTotal == 0 {
		t.Error("allocator saw no inode allocations")
	}
}

func TestConcurrentCreatorsShareDirectory(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 100_000_000_000})
	f := newFS(e)
	var shared *Inode
	e.Spawn("setup", 0, func(th *sim.Thread) {
		shared = f.Mkdir(th, f.Root, "shared")
	})
	done := e.Mem().AllocWord("gate")
	for i := 0; i < 6; i++ {
		id := i
		e.Spawn("w", -1, func(th *sim.Thread) {
			th.SpinUntil(done, func(v uint64) bool { return v == 1 })
			for k := 0; k < 20; k++ {
				f.Create(th, shared, fmt.Sprintf("f-%d-%d", id, k), 1)
			}
		})
	}
	e.Spawn("gate", 1, func(th *sim.Thread) {
		th.Delay(10_000)
		th.Store(done, 1)
	})
	e.Run()
	got := 0
	e2 := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 2, HardStop: 1_000_000_000})
	_ = e2
	// Count entries directly (engine has finished; structural check).
	got = len(sharedEntries(shared))
	if got != 120 {
		t.Errorf("shared dir has %d entries, want 120", got)
	}
}

// sharedEntries exposes the entry count for the test above.
func sharedEntries(ino *Inode) map[string]*Inode { return ino.entries }
