package kvserver

import (
	"context"
	"time"

	"shfllock/internal/lockstat"
	"shfllock/internal/runtimeq"
)

// controller is the adaptive layer: lockstat as a live control signal. It
// polls every shard's site on an interval, diffs against the previous
// snapshot (the lockstat interval API), and decides per shard — from the
// traffic it actually served, not a global average — along two
// independent axes:
//
// Shape (RW vs plain mutex), from the read fraction:
//
//   - read fraction >= hiRead: readers dominate; shared acquisitions keep
//     point reads out of the writer queue and long scans stop blocking
//     them → an RW lock.
//   - read fraction <= loRead: writers dominate; the RW write path (queue
//     on the ordering mutex, stop readers, drain, claim) is pure overhead
//     when there is nobody to share with → a plain mutex.
//
// Family (shfl vs sync), from the abort fraction: the ShflLocks abort a
// timed-out acquisition by abandoning the qnode in place, and every
// corpse lengthens the grant walks of the waiters behind it. Under light
// abort traffic the shuffled queue earns its keep, but when deadline
// pressure is the workload — aborts a sizable fraction of attempts, each
// failure re-offered immediately — the reclaim machinery itself becomes
// the contended path and feeds back into more aborts. The abort fraction
// is exactly the lockstat signal for that regime:
//
//   - aborts/attempts >= hiAbort: abort storm; flee to the sync family's
//     detached futex waiters.
//   - aborts/attempts <= loAbort: pressure gone; return to the home
//     family (Config.CtlHome).
//
// The home family is where the calm branch points. It defaults to shfl
// only when the runtime has real parallelism: shuffling's payoffs — NUMA
// batching, waking a spinning waiter instead of a parked one — need
// concurrent spinners to exist, and on a single-P runtime a userspace
// queue lock cannot beat the futex-backed sync primitives (every handoff
// is a scheduler round trip either way, and the queue adds bookkeeping).
// There the home is sync and the family axis engages only as the
// abort-storm escape hatch.
//
// Two stabilizers keep it from thrashing: a shard must see at least minOps
// acquisition attempts in an interval to be judged at all (idle shards
// keep their lock), and the same verdict must repeat settle times in a
// row before the handover runs (hysteresis — the band between the lo and
// hi thresholds of each axis also always votes "stay"). A handover drains
// the shard (shard.swapLock), so at most one switch per shard per
// interval and the switch itself is the only write the shard sees from
// the controller.
type controller struct {
	srv      *Server
	interval time.Duration
	hiRead   float64
	loRead   float64
	hiAbort  float64
	loAbort  float64
	homeSync bool // calm-branch family: true means sync is home
	selfTune bool // in-family decisions delegated to the locks' meta-policies
	settle   int
	minOps   uint64

	prev []lockstat.Report
	lean []leaning
}

// ctlMinAborts is the absolute per-interval abort floor below which the
// family axis never votes "storm", whatever the fraction says.
const ctlMinAborts = 8

// leaning tracks hysteresis state for one shard.
type leaning struct {
	want  string // impl the recent intervals point at ("" = none)
	count int    // consecutive intervals agreeing on want
}

func newController(s *Server) *controller {
	return &controller{
		srv:      s,
		interval: s.cfg.CtlInterval,
		hiRead:   s.cfg.CtlHiRead,
		loRead:   s.cfg.CtlLoRead,
		hiAbort:  s.cfg.CtlHiAbort,
		loAbort:  s.cfg.CtlLoAbort,
		homeSync: s.cfg.CtlHome == "sync",
		selfTune: s.cfg.SelfTune,
		settle:   s.cfg.CtlSettle,
		minOps:   s.cfg.CtlMinOps,
		prev:     make([]lockstat.Report, len(s.shards)),
		lean:     make([]leaning, len(s.shards)),
	}
}

// run polls until ctx is cancelled.
func (c *controller) run(ctx context.Context) {
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for i, sh := range c.srv.shards {
		c.prev[i] = sh.site.Report()
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.tick()
		}
	}
}

// tick evaluates every shard once.
func (c *controller) tick() {
	for i, sh := range c.srv.shards {
		cur := sh.site.Report()
		d := lockstat.Diff(c.prev[i], cur)
		c.prev[i] = cur
		c.decide(i, sh, d)
	}
}

// decide applies the two-axis threshold + hysteresis policy to one
// shard's interval.
func (c *controller) decide(i int, sh *shard, d lockstat.Report) {
	attempts := d.Acquires + d.Aborts
	if attempts < c.minOps {
		c.lean[i] = leaning{} // too quiet to judge; reset the streak
		return
	}
	cur := sh.box.Load().impl
	isSync, isRW := implAxes(cur)

	// The storm verdict needs an absolute floor as well as a fraction: on
	// a quiet shard one unlucky timeout in a ten-attempt interval is a 10%
	// "storm", and the resulting drain stall manufactures the next
	// interval's aborts — a self-sustaining flap. A real abort storm has
	// no trouble clearing both bars.
	abortFrac := float64(d.Aborts) / float64(attempts)
	storm := d.Aborts >= ctlMinAborts && abortFrac >= c.hiAbort
	switch {
	case storm:
		isSync = true
	case abortFrac <= c.loAbort:
		isSync = c.homeSync
	}
	if d.Acquires > 0 {
		readFrac := float64(d.ReadAcquires) / float64(d.Acquires)
		switch {
		case readFrac >= c.hiRead:
			isRW = true
		case readFrac <= c.loRead:
			isRW = false
		}
	}
	want := implFor(isSync, isRW)

	// Oversubscription axis: while goroutines outnumber Ps past the
	// runtimeq factor, socket grouping is meaningless (waiters migrate
	// between Ps) and long spin budgets burn the Ps the lock holder needs —
	// the goroutine-native family exists for exactly this regime, so it
	// overrides the mutex-shaped verdict from either home. Two carve-outs:
	// an abort storm still flees to sync (goro waiters abandon qnodes like
	// any ShflLock, so the reclaim feedback loop applies to it too), and RW
	// verdicts keep their reader path (goro is mutex-shaped). Under
	// SelfTune the controller delegates this axis entirely: the attached
	// meta-policy switches its own lock to the goro *stage* in place — no
	// drain, no handover — so a controller-driven swap to ImplGoro would
	// only duplicate the decision one layer up, slower and with a drain
	// stall attached.
	if !c.selfTune && !storm && !isRW && runtimeq.Oversubscribed() {
		want = ImplGoro
	}

	if want == cur {
		c.lean[i] = leaning{}
		return
	}
	if c.lean[i].want != want {
		c.lean[i] = leaning{want: want}
	}
	c.lean[i].count++
	if c.lean[i].count < c.settle {
		return
	}
	c.lean[i] = leaning{}
	sh.swapLock(want)
}

// implAxes decomposes a lock impl name into the controller's two axes.
// ImplGoro deliberately reads as (sync=false, rw=false): when the runtime
// stops being oversubscribed the override above no longer fires, the plain
// axes point back at the home mutex, and decide swaps away on its own.
func implAxes(impl string) (isSync, isRW bool) {
	return impl == ImplSyncRW || impl == ImplSyncMutex,
		impl == ImplShflRW || impl == ImplSyncRW
}

// implFor composes the two axes back into a lock impl name.
func implFor(isSync, isRW bool) string {
	switch {
	case isSync && isRW:
		return ImplSyncRW
	case isSync:
		return ImplSyncMutex
	case isRW:
		return ImplShflRW
	default:
		return ImplShflMutex
	}
}
