package kvserver

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shfllock/internal/lockstat"
)

func newTestRegistry() *lockstat.Registry {
	r := lockstat.NewRegistry()
	r.SetEnabled(true)
	return r
}

// TestHandoverTorture is the shard-handover torture: readers, writers and
// scanners hammer one shard with short, randomly cancelled deadlines while
// a flipper goroutine swaps the shard's lock through every implementation
// as fast as the drain allows — including across lock *families*
// (shfl <-> sync), which is harsher than anything the adaptive controller
// does. Assertions:
//
//   - the live detector sees zero mutual-exclusion violations;
//   - the plain seq counter (written only under the write lock) matches
//     the number of successful write sections exactly — a lost update or a
//     stray grant on a drained generation would break the equality, and
//     -race would flag the overlap;
//   - every shard op terminates (a leaked lock generation would hang the
//     test against its deadline).
//
// Run it under -race; verify.sh does.
func TestHandoverTorture(t *testing.T) {
	var violations atomic.Uint64
	reg := newTestRegistry()
	sh, err := newShard(ImplShflRW, reg.Site("torture"), &violations, false)
	if err != nil {
		t.Fatal(err)
	}

	duration := 800 * time.Millisecond
	minFlips := 20
	if raceEnabled {
		// The race detector slows a drain by orders of magnitude; keep the
		// torture honest but calibrated to instrumented speed.
		duration = 2 * time.Second
		minFlips = 3
	}
	if testing.Short() {
		duration = 200 * time.Millisecond
		minFlips = 5
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writeSections atomic.Uint64 // successful write ops, counted by the workers

	worker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(10+rng.Intn(300))*time.Microsecond)
			if rng.Intn(8) == 0 {
				// Concurrent cancellation racing the grant, not just expiry.
				go cancel()
			}
			key := fmt.Sprintf("t%03d", rng.Intn(200))
			switch rng.Intn(10) {
			case 0, 1, 2:
				if err := sh.put(ctx, key, "v"); err == nil {
					writeSections.Add(1)
				}
			case 3:
				if err := sh.delete(ctx, key); err == nil {
					writeSections.Add(1)
				}
			case 4:
				sh.scan(ctx, "t", 16, time.Microsecond, func(k, v string) bool { return true })
			default:
				sh.get(ctx, key)
			}
			cancel()
		}
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go worker(int64(g) + 1)
	}

	// Flipper: rotate through all implementations, cross-family.
	flips := 0
	flipDeadline := time.Now().Add(duration)
	impls := []string{ImplShflMutex, ImplSyncRW, ImplSyncMutex, ImplShflRW}
	for time.Now().Before(flipDeadline) {
		if ok, err := sh.swapLock(impls[flips%len(impls)]); err != nil {
			t.Fatal(err)
		} else if ok {
			flips++
		}
		time.Sleep(time.Duration(100+flips%400) * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations across %d handovers", violations.Load(), flips)
	}
	if flips < minFlips {
		t.Errorf("only %d handovers completed (want >= %d); flipper was starved", flips, minFlips)
	}
	// seq counts every successful write section: worker puts/deletes plus
	// one per completed swap.
	want := writeSections.Load() + uint64(flips)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	b, err := sh.acquire(ctx, false)
	if err != nil {
		t.Fatalf("shard unusable after torture: %v", err)
	}
	got := sh.seq
	b.lk.Unlock()
	if got != want {
		t.Fatalf("seq=%d but %d write sections succeeded: lost update across a handover", got, want)
	}
	t.Logf("handovers=%d writes=%d", flips, writeSections.Load())
}

// TestSwapLockRace: concurrent swappers must never publish over a box they
// did not drain; exactly the winners' generations chain cleanly and the
// shard stays usable.
func TestSwapLockRace(t *testing.T) {
	var violations atomic.Uint64
	reg := newTestRegistry()
	sh, err := newShard(ImplShflRW, reg.Site("swaprace"), &violations, false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			impls := []string{ImplShflMutex, ImplSyncMutex, ImplSyncRW, ImplShflRW}
			for i := 0; i < 100; i++ {
				sh.swapLock(impls[(g+i)%len(impls)])
			}
		}(g)
	}
	// Meanwhile, traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			sh.put(ctx, "x", "y")
			sh.get(ctx, "x")
			cancel()
		}
	}()
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d violations under racing swappers", violations.Load())
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, _, err := sh.get(ctx, "x"); err != nil {
		t.Fatalf("shard unusable after swap race: %v", err)
	}
}
