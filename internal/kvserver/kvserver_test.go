package kvserver

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shfllock/internal/core"
	"shfllock/internal/runtimeq"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func do(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestHTTPCrud covers the full request surface for every lock mode,
// including adaptive.
func TestHTTPCrud(t *testing.T) {
	for _, impl := range append(append([]string{}, Impls...), ImplAdaptive) {
		t.Run(impl, func(t *testing.T) {
			srv, ts := newTestServer(t, Config{Lock: impl, Shards: 4, ScanPace: 1})

			if code, _ := do(t, "GET", ts.URL+"/kv/absent", ""); code != http.StatusNotFound {
				t.Errorf("GET absent = %d, want 404", code)
			}
			if code, _ := do(t, "PUT", ts.URL+"/kv/alpha", "one"); code != http.StatusNoContent {
				t.Errorf("PUT = %d, want 204", code)
			}
			if code, body := do(t, "GET", ts.URL+"/kv/alpha", ""); code != 200 || body != "one" {
				t.Errorf("GET = %d %q, want 200 \"one\"", code, body)
			}
			if code, _ := do(t, "DELETE", ts.URL+"/kv/alpha", ""); code != http.StatusNoContent {
				t.Errorf("DELETE = %d, want 204", code)
			}
			if code, _ := do(t, "DELETE", ts.URL+"/kv/alpha", ""); code != http.StatusNoContent {
				t.Errorf("repeat DELETE = %d, want 204 (idempotent)", code)
			}
			if code, _ := do(t, "GET", ts.URL+"/kv/alpha", ""); code != http.StatusNotFound {
				t.Errorf("GET after DELETE = %d, want 404", code)
			}

			// Scan within one shard: keys sharing a shard come back sorted.
			keys := []string{"scan-c", "scan-a", "scan-b"}
			shard := shardFor("scan-a", 4)
			var same []string
			for _, k := range keys {
				if shardFor(k, 4) == shard {
					same = append(same, k)
				}
				do(t, "PUT", ts.URL+"/kv/"+k, "v-"+k)
			}
			_, body := do(t, "GET", ts.URL+"/scan?start=scan-&limit=10&pace_us=0", "")
			var got []string
			for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
				if line == "" {
					continue
				}
				k := strings.SplitN(line, "\t", 2)[0]
				if strings.HasPrefix(k, "scan-") {
					got = append(got, k)
				}
			}
			if len(got) < 1 {
				t.Fatalf("scan returned no scan- keys: %q", body)
			}
			for i := 1; i < len(got); i++ {
				if got[i] < got[i-1] {
					t.Errorf("scan out of order: %v", got)
				}
			}
			_ = same

			if code, body := do(t, "GET", ts.URL+"/healthz", ""); code != 200 || body != "ok\n" {
				t.Errorf("healthz = %d %q", code, body)
			}
			if v := srv.Violations(); v != 0 {
				t.Fatalf("%d mutual-exclusion violations", v)
			}
		})
	}
}

// TestDeadlineBecomes503: a request whose shard lock cannot be acquired
// within the per-request deadline is shed with 503 + Retry-After instead
// of queueing indefinitely. The writer parked on the shard makes every
// key in that shard unservable; other shards stay live.
func TestDeadlineBecomes503(t *testing.T) {
	for _, impl := range Impls {
		t.Run(impl, func(t *testing.T) {
			srv, ts := newTestServer(t, Config{Lock: impl, Shards: 2, ReqTimeout: 5 * time.Millisecond})

			// Hold shard 0's write lock from outside.
			blocked := srv.shards[0]
			blocked.box.Load().lk.Lock()
			defer blocked.box.Load().lk.Unlock()

			// Find keys on each shard.
			keyOn := func(want int) string {
				for i := 0; ; i++ {
					k := fmt.Sprintf("probe%d", i)
					if shardFor(k, 2) == want {
						return k
					}
				}
			}
			start := time.Now()
			req, _ := http.NewRequest("GET", ts.URL+"/kv/"+keyOn(0), nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("blocked shard GET = %d, want 503", resp.StatusCode)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
			if waited := time.Since(start); waited > 2*time.Second {
				t.Errorf("503 took %v; deadline shedding should be fast", waited)
			}
			if code, _ := do(t, "PUT", ts.URL+"/kv/"+keyOn(1), "x"); code != http.StatusNoContent {
				t.Errorf("other shard PUT = %d, want 204 (only the blocked shard sheds)", code)
			}
		})
	}
}

// TestDebugLockstatIntervals: successive /debug/lockstat hits report
// interval deltas — activity between the calls — not lifetime totals, and
// the payload parses into the documented schema.
func TestDebugLockstatIntervals(t *testing.T) {
	_, ts := newTestServer(t, Config{Lock: ImplShflRW, Shards: 2, ScanPace: 1})

	fetch := func(url string) DebugLockstat {
		t.Helper()
		_, body := do(t, "GET", url, "")
		var d DebugLockstat
		if err := json.Unmarshal([]byte(body), &d); err != nil {
			t.Fatalf("unparseable /debug/lockstat: %v\n%s", err, body)
		}
		return d
	}

	for i := 0; i < 10; i++ {
		do(t, "PUT", ts.URL+fmt.Sprintf("/kv/w%d", i), "x")
	}
	first := fetch(ts.URL + "/debug/lockstat")
	if first.Ops["put"] != 10 {
		t.Errorf("first interval put ops = %d, want 10", first.Ops["put"])
	}

	for i := 0; i < 7; i++ {
		do(t, "GET", ts.URL+fmt.Sprintf("/kv/w%d", i), "")
	}
	second := fetch(ts.URL + "/debug/lockstat")
	if second.Ops["get"] != 7 || second.Ops["put"] != 0 {
		t.Errorf("second interval = get %d put %d, want get 7 put 0 (deltas, not totals)",
			second.Ops["get"], second.Ops["put"])
	}
	var acq, reads uint64
	for _, sh := range second.Shards {
		acq += sh.Report.Acquires
		reads += sh.Report.ReadAcquires
	}
	if acq != 7 || reads != 7 {
		t.Errorf("second interval shard acquires=%d reads=%d, want 7/7", acq, reads)
	}

	life := fetch(ts.URL + "/debug/lockstat?lifetime=1")
	if life.Ops["put"] != 10 || life.Ops["get"] != 7 {
		t.Errorf("lifetime = %v, want put 10 get 7", life.Ops)
	}
	if !life.Lifetime || life.Violations != 0 {
		t.Errorf("lifetime flags wrong: %+v", life)
	}
}

// TestAdaptiveConverges: under sustained read-mostly direct traffic every
// busy shard settles on shfl-rw; under write-mostly traffic, shfl-mutex.
func TestAdaptiveConverges(t *testing.T) {
	// Pin the oversubscription axis off: a busy 1-P test process measures
	// as oversubscribed, and this test is about the read/write axis.
	runtimeq.OverrideOversub(false)
	defer runtimeq.ClearOversubOverride()
	s, err := New(Config{
		Lock:        ImplAdaptive,
		Shards:      2,
		PreloadKeys: 200,
		CtlInterval: 20 * time.Millisecond,
		CtlMinOps:   20,
		CtlSettle:   2,
		CtlHome:     "shfl", // pin: auto would pick sync on a 1-P test runner
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	drive := func(readFrac float64, until func() bool) bool {
		deadline := time.Now().Add(5 * time.Second)
		i := 0
		for time.Now().Before(deadline) {
			key := fmt.Sprintf("k%08d", i%200)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			if float64(i%100)/100 < readFrac {
				s.Get(ctx, key)
			} else {
				s.Put(ctx, key, "v")
			}
			cancel()
			i++
			if i%500 == 0 && until() {
				return true
			}
		}
		return until()
	}

	allOn := func(impl string) func() bool {
		return func() bool {
			for _, sh := range s.shards {
				if sh.box.Load().impl != impl {
					return false
				}
			}
			return true
		}
	}

	// Shards start on shfl-rw; write-mostly traffic must flip them.
	if !drive(0.1, allOn(ImplShflMutex)) {
		t.Fatal("write-mostly traffic did not converge shards to shfl-mutex")
	}
	if !drive(0.95, allOn(ImplShflRW)) {
		t.Fatal("read-mostly traffic did not converge shards back to shfl-rw")
	}
	if v := s.Violations(); v != 0 {
		t.Fatalf("%d violations during adaptive switching", v)
	}
	var switches uint64
	for _, sh := range s.shards {
		switches += sh.switches.Load()
	}
	if switches < 4 { // 2 shards × 2 direction changes
		t.Errorf("only %d switches recorded, want >= 4", switches)
	}
}

// TestHysteresisHoldsInBand: read fractions inside the (loRead, hiRead)
// band never trigger a switch, and a single outlying interval (settle=2)
// does not either.
func TestHysteresisHoldsInBand(t *testing.T) {
	runtimeq.OverrideOversub(false) // this test is about the shape axis only
	defer runtimeq.ClearOversubOverride()
	s, err := New(Config{Lock: ImplAdaptive, Shards: 1, CtlInterval: time.Hour, CtlHome: "shfl"}) // ticks driven by hand
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh := s.shards[0]
	ctl := newController(s)

	interval := func(readFrac float64) {
		for i := 0; i < 200; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			key := fmt.Sprintf("h%d", i)
			if float64(i)/200 < readFrac {
				sh.get(ctx, key)
			} else {
				sh.put(ctx, key, "v")
			}
			cancel()
		}
		ctl.tick()
	}

	interval(0.5) // in band
	interval(0.5)
	interval(0.5)
	if impl := sh.box.Load().impl; impl != ImplShflRW {
		t.Fatalf("in-band traffic switched the lock to %s", impl)
	}
	interval(0.1) // one interval of writes: leaning, not yet switching
	if impl := sh.box.Load().impl; impl != ImplShflRW {
		t.Fatalf("single write-heavy interval switched early (settle=2), got %s", impl)
	}
	interval(0.5) // back in band: the streak must reset
	interval(0.1)
	if impl := sh.box.Load().impl; impl != ImplShflRW {
		t.Fatalf("broken streak still switched, got %s", impl)
	}
	interval(0.1) // second consecutive write-heavy interval: now it switches
	if impl := sh.box.Load().impl; impl != ImplShflMutex {
		t.Fatalf("two consecutive write-heavy intervals did not switch, got %s", impl)
	}
}

// TestHomeFamily: CtlHome resolution — explicit values stick, garbage is
// rejected, auto follows the runtime's single-P heuristic, and a sync-home
// controller's calm branch returns to sync rather than shfl.
func TestHomeFamily(t *testing.T) {
	if _, err := New(Config{Lock: ImplAdaptive, CtlHome: "bogus"}); err == nil {
		t.Fatal("bogus CtlHome accepted")
	}
	for home, want := range map[string]string{"shfl": ImplShflRW, "sync": ImplSyncRW} {
		s, err := New(Config{Lock: ImplAdaptive, Shards: 1, CtlInterval: time.Hour, CtlHome: home})
		if err != nil {
			t.Fatal(err)
		}
		if impl := s.shards[0].box.Load().impl; impl != want {
			t.Errorf("home %q starts shards on %s, want %s", home, impl, want)
		}
		s.Close()
	}
	s, err := New(Config{Lock: ImplAdaptive, Shards: 1, CtlInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := "shfl"
	if core.SingleP() {
		want = "sync"
	}
	if s.cfg.CtlHome != want {
		t.Errorf("auto home = %q, want %q (core.SingleP=%v)", s.cfg.CtlHome, want, core.SingleP())
	}

	// A sync-home shard under calm traffic must not drift to shfl: the calm
	// branch points at the home family, not unconditionally at shfl.
	sh := s.shards[0]
	if s.cfg.CtlHome != "sync" {
		s.cfg.CtlHome = "sync" // exercise the sync-home calm branch regardless of runner shape
	}
	ctl := newController(s)
	for i := 0; i < 3; i++ {
		for j := 0; j < 100; j++ {
			sh.site.RecordAcquire(0, true)
		}
		ctl.tick()
	}
	if impl := sh.box.Load().impl; impl != ImplSyncRW {
		t.Errorf("sync-home calm traffic moved the lock to %s, want %s", impl, ImplSyncRW)
	}
}

// TestAbortStormFleesToSync: the family axis. A sustained abort storm
// (deadline pressure) must move a shard to the sync family, calm traffic
// must bring it home, and the two axes compose: a write-heavy storm picks
// sync-mutex. Intervals are synthesized straight into the shard's
// lockstat site — the controller sees only the report diff, so this
// exercises exactly its input surface.
func TestAbortStormFleesToSync(t *testing.T) {
	s, err := New(Config{Lock: ImplAdaptive, Shards: 1, CtlInterval: time.Hour, CtlMinOps: 20, CtlHome: "shfl"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh := s.shards[0]
	ctl := newController(s)

	interval := func(reads, writes, aborts int) {
		for i := 0; i < reads; i++ {
			sh.site.RecordAcquire(0, true)
		}
		for i := 0; i < writes; i++ {
			sh.site.RecordAcquire(0, false)
		}
		for i := 0; i < aborts; i++ {
			sh.site.RecordAbort()
		}
		ctl.tick()
	}

	interval(90, 10, 20) // ~17% of attempts abort, read-heavy
	if impl := sh.box.Load().impl; impl != ImplShflRW {
		t.Fatalf("one stormy interval switched early (settle=2), got %s", impl)
	}
	interval(90, 10, 20)
	if impl := sh.box.Load().impl; impl != ImplSyncRW {
		t.Fatalf("sustained abort storm did not flee to sync-rw, got %s", impl)
	}
	interval(90, 10, 0) // storm over
	interval(90, 10, 0)
	if impl := sh.box.Load().impl; impl != ImplShflRW {
		t.Fatalf("calm traffic did not return to shfl-rw, got %s", impl)
	}
	interval(5, 95, 30) // write-heavy storm: both axes move at once
	interval(5, 95, 30)
	if impl := sh.box.Load().impl; impl != ImplSyncMutex {
		t.Fatalf("write-heavy abort storm should pick sync-mutex, got %s", impl)
	}
	if v := s.Violations(); v != 0 {
		t.Fatalf("%d violations during axis switching", v)
	}
}

// TestOversubscriptionPicksGoro: the oversubscription override. While the
// runtime is oversubscribed, any calm mutex-shaped verdict lands on the
// goroutine-native lock; RW verdicts and abort storms outrank it; and when
// the pressure clears, goro reads as a plain mutex-shaped shfl pick and
// the shard swaps home on its own.
func TestOversubscriptionPicksGoro(t *testing.T) {
	defer runtimeq.ClearOversubOverride()
	s, err := New(Config{Lock: ImplAdaptive, Shards: 1, CtlInterval: time.Hour, CtlMinOps: 20, CtlHome: "shfl"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh := s.shards[0]
	ctl := newController(s)

	interval := func(reads, writes, aborts int) {
		for i := 0; i < reads; i++ {
			sh.site.RecordAcquire(0, true)
		}
		for i := 0; i < writes; i++ {
			sh.site.RecordAcquire(0, false)
		}
		for i := 0; i < aborts; i++ {
			sh.site.RecordAbort()
		}
		ctl.tick()
	}
	converge := func(reads, writes, aborts int, want, why string) {
		t.Helper()
		interval(reads, writes, aborts)
		interval(reads, writes, aborts)
		if impl := sh.box.Load().impl; impl != want {
			t.Fatalf("%s: lock = %s, want %s", why, impl, want)
		}
	}

	runtimeq.OverrideOversub(false)
	converge(5, 95, 0, ImplShflMutex, "write-heavy calm traffic, idle runtime")

	runtimeq.OverrideOversub(true)
	converge(5, 95, 0, ImplGoro, "same traffic once oversubscribed")
	converge(95, 5, 0, ImplShflRW, "read-heavy traffic keeps its reader path even oversubscribed")
	converge(5, 95, 0, ImplGoro, "back to mutex shape while oversubscribed")
	converge(5, 95, 30, ImplSyncMutex, "abort storm outranks oversubscription")
	converge(5, 95, 0, ImplGoro, "storm over but still oversubscribed")

	runtimeq.OverrideOversub(false)
	converge(5, 95, 0, ImplShflMutex, "oversubscription cleared")

	if v := s.Violations(); v != 0 {
		t.Fatalf("%d violations during goro switching", v)
	}
}
