package kvserver

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"shfllock/internal/core"
	"shfllock/internal/lockreg"
	"shfllock/internal/lockstat"
	"shfllock/internal/runtimeq"
	"shfllock/internal/shuffle"
)

// ShardLock is the small lock surface a shard needs. Exclusive and shared
// acquisitions carry the request's context so overload degrades to fast
// 503s at the lock instead of queue collapse behind it; Lock is the plain
// blocking exclusive acquisition the adaptive controller's drain step uses
// (the controller has no deadline — a handover must complete).
//
// Mutex-shaped implementations satisfy the read-side methods with their
// exclusive ones, so callers never branch on capability.
type ShardLock interface {
	LockContext(ctx context.Context) error
	Unlock()
	RLockContext(ctx context.Context) error
	RUnlock()
	Lock()
	Impl() string
	// Transitions returns the lock's policy-transition record: the
	// meta-policy's stage log when self-tuning is attached, the lock's own
	// epoched TransitionLog otherwise, nil when the impl has neither.
	Transitions() *shuffle.TransitionLog
}

// Canonical names of the lock implementations the adaptive controller
// moves between. Any registry lock is a valid static -lock choice; these
// five are the ones the controller reasons about.
const (
	ImplShflRW    = "shfl-rw"
	ImplShflMutex = "shfl-mutex"
	ImplSyncRW    = "sync-rw"
	ImplSyncMutex = "sync-mutex"
	// ImplGoro is the goroutine-native blocking ShflLock: waiters grouped
	// by approximate P instead of socket, short park budgets while the
	// runtime is oversubscribed. Mutex-shaped.
	ImplGoro = "goro"
	// ImplAdaptive is a server mode, not a lock: shards start on shfl-rw
	// and the lockstat-driven controller reshapes them at runtime.
	ImplAdaptive = "adaptive"
)

// Impls lists the static lock choices: every native lock in the registry
// (everything NewLock accepts), by canonical name.
var Impls = lockreg.NativeNames()

// NewLock builds a shard lock by name through the lock registry, feeding
// the given lockstat site. Every generation of a shard's lock attaches the
// same site, so per-shard statistics survive adaptive handovers.
//
// The wrapper is chosen by capability, not by name: RW locks keep their
// read side, abortable locks take the request context natively, and
// everything else gets the goroutine-based cancellation emulation — which
// is not an emulation artifact but the semantic difference under test: a
// waiter that cannot leave the queue still occupies a queue slot after its
// request gave up, where the abortable locks abandon their node in place.
// When selfTune is set and the lock runs the epoched transition protocol
// (CapSelfTuning), a fresh "auto" meta-policy is attached, fed by the same
// shard site: the lock steers its own shuffling stage from its own
// interval diffs, and the controller above keeps only the cross-family and
// lock-shape decisions.
func NewLock(impl string, site *lockstat.Site, selfTune bool) (ShardLock, error) {
	ent, ok := lockreg.Find(impl)
	if !ok || !ent.HasNative() {
		return nil, fmt.Errorf("unknown lock impl %q (have %v)", impl, Impls)
	}
	if ent.Has(lockreg.CapRW) {
		h, err := ent.NewNativeRW()
		if err != nil {
			return nil, err
		}
		l := &rwShard{impl: ent.Name, h: h, site: site, probed: attachProbe(h.RWLocker, site)}
		l.trans = h.TransitionLog
		if selfTune {
			if m := attachMeta(ent, h.SetPolicy, site); m != nil {
				l.trans = m.Log
			}
		}
		return l, nil
	}
	h, err := ent.NewNative()
	if err != nil {
		return nil, err
	}
	l := &mutexShard{impl: ent.Name, h: h, site: site, probed: attachProbe(h.Locker, site)}
	l.trans = h.TransitionLog
	if selfTune {
		if m := attachMeta(ent, h.SetPolicy, site); m != nil {
			l.trans = m.Log
		}
	}
	return l, nil
}

// attachMeta installs a fresh "auto" meta-policy on a self-tuning lock —
// the lockstat loop closed one layer below the controller. The shard
// site's interval diffs become the meta's observations (the meta keeps its
// own previous-snapshot state, independent of the controller's and the
// debug endpoint's), runtimeq supplies the live oversubscription verdict
// for the goro stage, and stage switches run through the lock's epoched
// transition protocol. Returns nil when the entry cannot self-tune.
func attachMeta(ent lockreg.Entry, setPolicy func(shuffle.Policy), site *lockstat.Site) *shuffle.Meta {
	if setPolicy == nil || !ent.Has(lockreg.CapSelfTuning) {
		return nil
	}
	m := shuffle.NewMeta(shuffle.MetaConfig{Goro: true})
	m.SetSource(lockstat.MetaSource(site, runtimeq.Oversubscribed))
	m.SetClock(func() uint64 { return uint64(time.Now().UnixNano()) })
	setPolicy(m)
	return m
}

// attachProbe connects the lock's internal event stream (steals, handoffs,
// parks, aborts) to the shard's site when the algorithm exposes one.
// Probed locks classify contention and aborts exactly; for the rest the
// wrapper classifies from the failed fast-path attempt.
func attachProbe(l any, site *lockstat.Site) bool {
	if pt, ok := l.(interface{ SetProbe(core.Probe) }); ok {
		pt.SetProbe(site.CoreProbe())
		return true
	}
	return false
}

// rwShard wraps any registry lock with a read side.
type rwShard struct {
	impl   string
	h      *lockreg.NativeRW
	site   *lockstat.Site
	probed bool
	trans  func() *shuffle.TransitionLog
}

func (l *rwShard) Impl() string { return l.impl }

func (l *rwShard) Transitions() *shuffle.TransitionLog {
	if l.trans == nil {
		return nil
	}
	return l.trans()
}
func (l *rwShard) Lock()        { l.h.Lock(); l.site.RecordAcquire(0, false) }
func (l *rwShard) Unlock()      { l.h.Unlock() }
func (l *rwShard) RUnlock()     { l.h.RUnlock() }

func (l *rwShard) LockContext(ctx context.Context) error {
	return l.acquire(ctx, false)
}

func (l *rwShard) RLockContext(ctx context.Context) error {
	return l.acquire(ctx, true)
}

func (l *rwShard) acquire(ctx context.Context, read bool) error {
	try, lock, unlock := l.h.TryLock, l.h.Lock, l.h.Unlock
	if read {
		try, lock, unlock = l.h.TryRLock, l.h.RLock, l.h.RUnlock
	}
	if try() {
		l.site.RecordAcquire(0, read)
		return nil
	}
	if !l.probed {
		l.site.RecordContended()
	}
	start := time.Now()
	var err error
	switch {
	case l.h.Abort != nil && read:
		err = l.h.Abort.RLockContext(ctx)
	case l.h.Abort != nil:
		err = l.h.Abort.LockContext(ctx)
	default:
		err = ctxAcquire(ctx, lock, unlock)
	}
	if err != nil {
		if !l.probed {
			l.site.RecordAbort()
		}
		return err
	}
	l.site.RecordAcquire(time.Since(start).Nanoseconds(), read)
	return nil
}

// mutexShard wraps any mutex-shaped registry lock; read acquisitions are
// exclusive.
type mutexShard struct {
	impl   string
	h      *lockreg.Native
	site   *lockstat.Site
	probed bool
	trans  func() *shuffle.TransitionLog
}

func (l *mutexShard) Impl() string { return l.impl }

func (l *mutexShard) Transitions() *shuffle.TransitionLog {
	if l.trans == nil {
		return nil
	}
	return l.trans()
}
func (l *mutexShard) Lock()        { l.h.Lock(); l.site.RecordAcquire(0, false) }
func (l *mutexShard) Unlock()      { l.h.Unlock() }
func (l *mutexShard) RUnlock()     { l.h.Unlock() }

func (l *mutexShard) LockContext(ctx context.Context) error {
	return l.acquire(ctx, false)
}

func (l *mutexShard) RLockContext(ctx context.Context) error {
	return l.acquire(ctx, true)
}

func (l *mutexShard) acquire(ctx context.Context, read bool) error {
	if l.h.TryLock() {
		l.site.RecordAcquire(0, read)
		return nil
	}
	if !l.probed {
		l.site.RecordContended()
	}
	start := time.Now()
	var err error
	if l.h.Abort != nil {
		err = l.h.Abort.LockContext(ctx)
	} else {
		err = ctxAcquire(ctx, l.h.Lock, l.h.Unlock)
	}
	if err != nil {
		if !l.probed {
			l.site.RecordAbort()
		}
		return err
	}
	l.site.RecordAcquire(time.Since(start).Nanoseconds(), read)
	return nil
}

// ctxAcquire adapts a blocking acquisition to context cancellation for
// locks with no abortable path: the wait happens in a helper goroutine,
// and an abandoned wait stays in the lock's queue until granted, then
// releases immediately.
func ctxAcquire(ctx context.Context, lock, unlock func()) error {
	var state atomic.Int32 // 0 pending, 1 taken by caller, 2 abandoned
	done := make(chan struct{})
	go func() {
		lock()
		if !state.CompareAndSwap(0, 1) {
			unlock()
			return
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		if state.CompareAndSwap(0, 2) {
			return context.Cause(ctx)
		}
		<-done // the grant won the race: we own the lock after all
		return nil
	}
}
