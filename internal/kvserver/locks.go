package kvserver

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shfllock/internal/core"
	"shfllock/internal/lockstat"
)

// ShardLock is the small lock surface a shard needs. Exclusive and shared
// acquisitions carry the request's context so overload degrades to fast
// 503s at the lock instead of queue collapse behind it; Lock is the plain
// blocking exclusive acquisition the adaptive controller's drain step uses
// (the controller has no deadline — a handover must complete).
//
// Mutex-shaped implementations satisfy the read-side methods with their
// exclusive ones, so callers never branch on capability.
type ShardLock interface {
	LockContext(ctx context.Context) error
	Unlock()
	RLockContext(ctx context.Context) error
	RUnlock()
	Lock()
	Impl() string
}

// Lock implementation names accepted by NewLock and the -lock flag.
const (
	ImplShflRW    = "shfl-rw"
	ImplShflMutex = "shfl-mutex"
	ImplSyncRW    = "sync-rw"
	ImplSyncMutex = "sync-mutex"
	// ImplGoro is the goroutine-native blocking ShflLock: waiters grouped
	// by approximate P instead of socket, short park budgets while the
	// runtime is oversubscribed. Mutex-shaped.
	ImplGoro = "goro"
	// ImplAdaptive is a server mode, not a lock: shards start on shfl-rw
	// and the lockstat-driven controller reshapes them at runtime.
	ImplAdaptive = "adaptive"
)

// Impls lists the static lock choices (everything NewLock accepts).
var Impls = []string{ImplShflRW, ImplShflMutex, ImplSyncRW, ImplSyncMutex, ImplGoro}

// NewLock builds a shard lock by name, feeding the given lockstat site.
// Every generation of a shard's lock attaches the same site, so per-shard
// statistics survive adaptive handovers.
func NewLock(impl string, site *lockstat.Site) (ShardLock, error) {
	switch impl {
	case ImplShflRW:
		l := &shflRW{site: site}
		l.mu.SetProbe(site.CoreProbe())
		return l, nil
	case ImplShflMutex:
		l := &shflMutex{mu: &core.Mutex{}, impl: ImplShflMutex, site: site}
		l.mu.SetProbe(site.CoreProbe())
		return l, nil
	case ImplGoro:
		l := &shflMutex{mu: core.NewGoroMutex(), impl: ImplGoro, site: site}
		l.mu.SetProbe(site.CoreProbe())
		return l, nil
	case ImplSyncRW:
		return &syncRW{site: site}, nil
	case ImplSyncMutex:
		return &syncMutex{site: site}, nil
	}
	return nil, fmt.Errorf("unknown lock impl %q (have %v)", impl, Impls)
}

// shflRW wraps the native readers-writer ShflLock. Contention, parks,
// handoffs, aborts and shuffle activity flow through the attached probe;
// the wrapper records only what the probe cannot see — acquisition counts
// and wait times, one wait sample per successful acquisition.
type shflRW struct {
	mu   core.RWMutex
	site *lockstat.Site
}

func (l *shflRW) Impl() string { return ImplShflRW }
func (l *shflRW) Lock()        { l.mu.Lock(); l.site.RecordAcquire(0, false) }
func (l *shflRW) Unlock()      { l.mu.Unlock() }
func (l *shflRW) RUnlock()     { l.mu.RUnlock() }

func (l *shflRW) LockContext(ctx context.Context) error {
	if l.mu.TryLock() {
		l.site.RecordAcquire(0, false)
		return nil
	}
	start := time.Now()
	if err := l.mu.LockContext(ctx); err != nil {
		return err
	}
	l.site.RecordAcquire(time.Since(start).Nanoseconds(), false)
	return nil
}

func (l *shflRW) RLockContext(ctx context.Context) error {
	if l.mu.TryRLock() {
		l.site.RecordAcquire(0, true)
		return nil
	}
	start := time.Now()
	if err := l.mu.RLockContext(ctx); err != nil {
		return err
	}
	l.site.RecordAcquire(time.Since(start).Nanoseconds(), true)
	return nil
}

// shflMutex wraps a native blocking ShflLock — socket-grouped
// (shfl-mutex) or goroutine-native (goro), picked at construction; read
// acquisitions are exclusive either way.
type shflMutex struct {
	mu   *core.Mutex
	impl string
	site *lockstat.Site
}

func (l *shflMutex) Impl() string { return l.impl }
func (l *shflMutex) Lock()        { l.mu.Lock(); l.site.RecordAcquire(0, false) }
func (l *shflMutex) Unlock()      { l.mu.Unlock() }
func (l *shflMutex) RUnlock()     { l.mu.Unlock() }

func (l *shflMutex) LockContext(ctx context.Context) error {
	return l.lockCtx(ctx, false)
}

func (l *shflMutex) RLockContext(ctx context.Context) error {
	return l.lockCtx(ctx, true)
}

func (l *shflMutex) lockCtx(ctx context.Context, read bool) error {
	if l.mu.TryLock() {
		l.site.RecordAcquire(0, read)
		return nil
	}
	start := time.Now()
	if err := l.mu.LockContext(ctx); err != nil {
		return err
	}
	l.site.RecordAcquire(time.Since(start).Nanoseconds(), read)
	return nil
}

// ctxAcquire adapts a blocking acquisition to context cancellation for the
// sync baselines, which have no abortable path: the wait happens in a
// helper goroutine, and an abandoned wait stays in the lock's queue until
// granted, then releases immediately. This is not an emulation artifact —
// it IS the semantic difference under test: a sync.Mutex waiter cannot
// leave the queue, so a timed-out request still occupies a queue slot and
// costs a scheduler round trip, where the ShflLocks abandon their qnode in
// place.
func ctxAcquire(ctx context.Context, lock, unlock func()) error {
	var state atomic.Int32 // 0 pending, 1 taken by caller, 2 abandoned
	done := make(chan struct{})
	go func() {
		lock()
		if !state.CompareAndSwap(0, 1) {
			unlock()
			return
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		if state.CompareAndSwap(0, 2) {
			return context.Cause(ctx)
		}
		<-done // the grant won the race: we own the lock after all
		return nil
	}
}

// syncRW is the sync.RWMutex baseline. It has no probe, so the wrapper
// classifies contention itself from the failed fast-path attempt and
// counts aborts directly.
type syncRW struct {
	mu   sync.RWMutex
	site *lockstat.Site
}

func (l *syncRW) Impl() string { return ImplSyncRW }
func (l *syncRW) Lock()        { l.mu.Lock(); l.site.RecordAcquire(0, false) }
func (l *syncRW) Unlock()      { l.mu.Unlock() }
func (l *syncRW) RUnlock()     { l.mu.RUnlock() }

func (l *syncRW) LockContext(ctx context.Context) error {
	if l.mu.TryLock() {
		l.site.RecordAcquire(0, false)
		return nil
	}
	l.site.RecordContended()
	start := time.Now()
	if err := ctxAcquire(ctx, l.mu.Lock, l.mu.Unlock); err != nil {
		l.site.RecordAbort()
		return err
	}
	l.site.RecordAcquire(time.Since(start).Nanoseconds(), false)
	return nil
}

func (l *syncRW) RLockContext(ctx context.Context) error {
	if l.mu.TryRLock() {
		l.site.RecordAcquire(0, true)
		return nil
	}
	l.site.RecordContended()
	start := time.Now()
	if err := ctxAcquire(ctx, l.mu.RLock, l.mu.RUnlock); err != nil {
		l.site.RecordAbort()
		return err
	}
	l.site.RecordAcquire(time.Since(start).Nanoseconds(), true)
	return nil
}

// syncMutex is the sync.Mutex baseline; read acquisitions are exclusive.
type syncMutex struct {
	mu   sync.Mutex
	site *lockstat.Site
}

func (l *syncMutex) Impl() string { return ImplSyncMutex }
func (l *syncMutex) Lock()        { l.mu.Lock(); l.site.RecordAcquire(0, false) }
func (l *syncMutex) Unlock()      { l.mu.Unlock() }
func (l *syncMutex) RUnlock()     { l.mu.Unlock() }

func (l *syncMutex) LockContext(ctx context.Context) error {
	return l.lockCtx(ctx, false)
}

func (l *syncMutex) RLockContext(ctx context.Context) error {
	return l.lockCtx(ctx, true)
}

func (l *syncMutex) lockCtx(ctx context.Context, read bool) error {
	if l.mu.TryLock() {
		l.site.RecordAcquire(0, read)
		return nil
	}
	l.site.RecordContended()
	start := time.Now()
	if err := ctxAcquire(ctx, l.mu.Lock, l.mu.Unlock); err != nil {
		l.site.RecordAbort()
		return err
	}
	l.site.RecordAcquire(time.Since(start).Nanoseconds(), read)
	return nil
}
