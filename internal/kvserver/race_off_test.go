//go:build !race

package kvserver

const raceEnabled = false
