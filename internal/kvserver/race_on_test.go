//go:build race

package kvserver

// raceEnabled lets the torture tests scale their duration and handover
// expectations to the race detector's slowdown (a drain that takes tens of
// microseconds natively takes tens of milliseconds instrumented).
const raceEnabled = true
