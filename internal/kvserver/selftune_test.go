package kvserver

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"shfllock/internal/lockreg"
	"shfllock/internal/lockstat"
	"shfllock/internal/runtimeq"
)

// TestNewLockSelfTune: with selfTune set, every CapSelfTuning impl gets a
// fresh "auto" meta-policy whose stage log becomes the lock's Transitions
// surface, and impls without the capability degrade gracefully to their own
// log (or none) instead of failing construction.
func TestNewLockSelfTune(t *testing.T) {
	reg := lockstat.NewRegistry()
	for _, impl := range Impls {
		t.Run(impl, func(t *testing.T) {
			ent, ok := lockreg.Find(impl)
			if !ok {
				t.Fatalf("impl %q not in registry", impl)
			}
			l, err := NewLock(impl, reg.Site("tune/"+impl), true)
			if err != nil {
				t.Fatal(err)
			}
			log := l.Transitions()
			if !ent.Has(lockreg.CapSelfTuning) {
				return // no meta attached; any log the lock has is its own
			}
			if log == nil {
				t.Fatal("self-tuning impl returned a nil transition log")
			}
			tail := log.Tail(1)
			if len(tail) != 1 || tail[0].Trigger != "init" || tail[0].To != "numa" {
				t.Fatalf("meta boot transition = %+v, want -> numa (init)", tail)
			}
		})
	}
}

// TestNewLockSelfTuneIndependent: two locks tuning off different sites must
// not share meta state (the "auto" factory builds per-lock instances).
func TestNewLockSelfTuneIndependent(t *testing.T) {
	reg := lockstat.NewRegistry()
	a, err := NewLock(ImplShflMutex, reg.Site("tune/a"), true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLock(ImplShflMutex, reg.Site("tune/b"), true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Transitions() == b.Transitions() {
		t.Fatal("two self-tuning locks share one transition log; their stage decisions are coupled")
	}
}

// TestSelfTuneDebugSurface: a SelfTune server surfaces each shard's
// transition tail in /debug/lockstat, starting with the meta's boot
// transition.
func TestSelfTuneDebugSurface(t *testing.T) {
	_, ts := newTestServer(t, Config{Lock: ImplShflMutex, Shards: 2, ScanPace: 1, SelfTune: true})
	for i := 0; i < 10; i++ {
		do(t, "PUT", ts.URL+fmt.Sprintf("/kv/w%d", i), "x")
	}
	_, body := do(t, "GET", ts.URL+"/debug/lockstat", "")
	var d DebugLockstat
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("unparseable /debug/lockstat: %v\n%s", err, body)
	}
	if len(d.Shards) == 0 {
		t.Fatal("no shards in /debug/lockstat")
	}
	for _, sh := range d.Shards {
		if len(sh.Transitions) == 0 {
			t.Fatalf("shard %s has no transitions; SelfTune should surface the boot install", sh.Impl)
		}
		if !strings.Contains(sh.Transitions[0], "init") || !strings.Contains(sh.Transitions[0], "numa") {
			t.Fatalf("shard %s transitions[0] = %q, want the numa boot install", sh.Impl, sh.Transitions[0])
		}
	}
}

// TestSelfTuneDelegatesOversub: with SelfTune on, the controller must NOT
// swap an oversubscribed shard's lock to goro — that axis belongs to the
// attached meta-policy, which switches the goro stage in place. The shard
// staying on its current impl (while plain adaptive mode would have moved
// it) is the delegation observable.
func TestSelfTuneDelegatesOversub(t *testing.T) {
	runtimeq.OverrideOversub(true)
	defer runtimeq.ClearOversubOverride()
	s, err := New(Config{
		Lock:        ImplAdaptive,
		Shards:      1,
		PreloadKeys: 50,
		SelfTune:    true,
		CtlInterval: 10 * time.Millisecond,
		CtlMinOps:   5,
		CtlSettle:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := newController(s)
	sh := s.shards[0]
	// Write-heavy interval on a busy shard: the shape axis says mutex, the
	// oversubscription override would say goro — but SelfTune delegates it.
	d := lockstat.Report{Acquires: 100}
	for i := 0; i < 4; i++ {
		c.decide(0, sh, d)
	}
	if impl := sh.box.Load().impl; impl == ImplGoro {
		t.Fatalf("controller swapped to goro under SelfTune; the oversubscription axis is delegated to the meta")
	}
}
