// Package kvserver is a sharded in-memory KV service: the paper's
// userspace story (one hot lock under heavy mixed traffic, Figure 12)
// turned into a real networked server. Keys hash onto shards; each shard
// is guarded by an embedded native lock behind the small ShardLock
// interface, every request acquires with a per-request deadline via
// LockContext (so overload degrades to fast 503s instead of queue
// collapse), and per-shard lockstat sites make lock behavior a live,
// queryable signal (/debug/lockstat). In adaptive mode a controller polls
// interval deltas of those sites and switches each shard between the
// RW-biased and plain-mutex members of the ShflLock family as its traffic
// shifts — see controller.go for the hysteresis and shard.go for the
// handover protocol.
//
// This is the networked sibling of internal/kvstore, which is a *simulated*
// LevelDB-shaped substrate for reproducing Figure 12 in the deterministic
// engine; the two share nothing but the paper.
package kvserver

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"shfllock/internal/core"
	"shfllock/internal/lockreg"
	"shfllock/internal/lockstat"
)

// Config parameterizes a Server.
type Config struct {
	Shards      int           // number of shards; 0 means 8
	Lock        string        // a NewLock impl or "adaptive"; "" means adaptive
	ReqTimeout  time.Duration // per-request deadline; 0 means 25ms
	PreloadKeys int           // fill k00000000..k<n-1> at startup
	ScanPace    time.Duration // default inter-entry scan pacing; 0 means 100µs
	MaxScan     int           // scan limit cap; 0 means 256
	MaxValBytes int64         // PUT body cap; 0 means 1MiB

	// Adaptive controller knobs (used when Lock == "adaptive").
	CtlInterval time.Duration // poll interval; 0 means 100ms
	CtlHiRead   float64       // read fraction at/above which a shard wants RW; 0 means 0.55
	CtlLoRead   float64       // read fraction at/below which a shard wants mutex; 0 means 0.30
	CtlHiAbort  float64       // abort fraction at/above which a shard flees to the sync family; 0 means 0.05
	CtlLoAbort  float64       // abort fraction at/below which it returns to the shfl family; 0 means 0.01
	CtlSettle   int           // consecutive agreeing intervals before switching; 0 means 2
	CtlMinOps   uint64        // minimum interval acquisition attempts to act on a shard; 0 means 50

	// SelfTune attaches the "auto" meta-policy to every shard lock that
	// runs the epoched transition protocol (CapSelfTuning): the lock
	// steers its own shuffling stage — numa, prio, goro, ablation-base —
	// from its own site's lockstat interval diffs. With it set, the
	// adaptive controller delegates the in-family oversubscription
	// decision to the meta-policy and keeps only the cross-family and
	// lock-shape axes.
	SelfTune bool

	// CtlHome picks the controller's home lock family — the one a shard
	// returns to when abort pressure is gone ("shfl" or "sync"), and the
	// family adaptive shards start in. Empty means auto: "shfl" when the
	// runtime has real parallelism (shuffling buys NUMA batching and spin
	// efficiency), "sync" on a single-P runtime, where a userspace queue
	// lock cannot beat the runtime's futex-backed primitives and the
	// family machinery should only engage as the abort-storm escape hatch.
	CtlHome string

	// Registry receives the per-shard sites; nil means a private registry
	// (so servers in tests do not pollute lockstat.Default).
	Registry *lockstat.Registry
}

// Server is the KV service. Create with New, mount Handler on an
// http.Server, and Close when done.
type Server struct {
	cfg    Config
	reg    *lockstat.Registry
	shards []*shard
	start  time.Time

	ops        [4]atomic.Uint64 // indexed by loadgen-compatible op slots: get/put/delete/scan
	timeouts   atomic.Uint64
	violations atomic.Uint64

	ctl       *controller
	ctlCancel context.CancelFunc
	ctlDone   chan struct{}

	// /debug/lockstat interval state: the previous snapshot, so successive
	// hits report interval deltas (rates), not lifetime totals.
	dbgMu     sync.Mutex
	dbgPrev   []lockstat.Report
	dbgPrevAt time.Time
	dbgPrevOp opsSnapshot
}

type opsSnapshot struct {
	ops      [4]uint64
	timeouts uint64
}

const (
	opGet = iota
	opPut
	opDelete
	opScan
)

// New builds a server and, in adaptive mode, starts its controller.
func New(cfg Config) (*Server, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Lock == "" {
		cfg.Lock = ImplAdaptive
	}
	if cfg.ReqTimeout <= 0 {
		cfg.ReqTimeout = 25 * time.Millisecond
	}
	if cfg.ScanPace == 0 {
		cfg.ScanPace = 100 * time.Microsecond
	}
	if cfg.MaxScan <= 0 {
		cfg.MaxScan = 256
	}
	if cfg.MaxValBytes <= 0 {
		cfg.MaxValBytes = 1 << 20
	}
	if cfg.CtlInterval <= 0 {
		cfg.CtlInterval = 100 * time.Millisecond
	}
	if cfg.CtlHiRead == 0 {
		cfg.CtlHiRead = 0.55
	}
	if cfg.CtlLoRead == 0 {
		cfg.CtlLoRead = 0.30
	}
	if cfg.CtlHiAbort == 0 {
		cfg.CtlHiAbort = 0.05
	}
	if cfg.CtlLoAbort == 0 {
		cfg.CtlLoAbort = 0.01
	}
	if cfg.CtlSettle <= 0 {
		cfg.CtlSettle = 2
	}
	if cfg.CtlMinOps == 0 {
		cfg.CtlMinOps = 50
	}
	switch cfg.CtlHome {
	case "":
		if core.SingleP() {
			cfg.CtlHome = "sync"
		} else {
			cfg.CtlHome = "shfl"
		}
	case "shfl", "sync":
	default:
		return nil, fmt.Errorf("unknown controller home family %q (have \"shfl\", \"sync\")", cfg.CtlHome)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = lockstat.NewRegistry()
	}

	impl := cfg.Lock
	if impl == ImplAdaptive {
		// Adaptive shards start RW-biased in the home family.
		impl = ImplShflRW
		if cfg.CtlHome == "sync" {
			impl = ImplSyncRW
		}
	} else {
		ent, ok := lockreg.Find(impl)
		if !ok || !ent.HasNative() {
			return nil, fmt.Errorf("unknown lock mode %q (have %v and %q)", cfg.Lock, Impls, ImplAdaptive)
		}
		impl = ent.Name // aliases normalize to the canonical name
	}

	s := &Server{cfg: cfg, reg: reg, start: time.Now()}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(impl, reg.Site(siteName(i)), &s.violations, cfg.SelfTune)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	for i := 0; i < cfg.PreloadKeys; i++ {
		key := fmt.Sprintf("k%08d", i)
		sh := s.shards[shardFor(key, cfg.Shards)]
		if err := sh.put(context.Background(), key, fmt.Sprintf("v%016x", uint64(i)*0x9e3779b97f4a7c15)); err != nil {
			return nil, err
		}
	}

	if cfg.Lock == ImplAdaptive {
		s.ctl = newController(s)
		ctx, cancel := context.WithCancel(context.Background())
		s.ctlCancel = cancel
		s.ctlDone = make(chan struct{})
		go func() {
			defer close(s.ctlDone)
			s.ctl.run(ctx)
		}()
	}
	return s, nil
}

// Close stops the adaptive controller (if any).
func (s *Server) Close() {
	if s.ctlCancel != nil {
		s.ctlCancel()
		<-s.ctlDone
	}
}

// Registry returns the lockstat registry backing the per-shard sites.
func (s *Server) Registry() *lockstat.Registry { return s.reg }

// Violations returns the mutual-exclusion violation count (must stay 0).
func (s *Server) Violations() uint64 { return s.violations.Load() }

// DebugShards returns each shard's current lock choice and switch count
// (a non-HTTP slice of the /debug/lockstat view, without the reports).
func (s *Server) DebugShards() []DebugShard {
	out := make([]DebugShard, len(s.shards))
	for i, sh := range s.shards {
		out[i] = DebugShard{Shard: i, Impl: sh.box.Load().impl, Switches: sh.switches.Load()}
	}
	return out
}

// shardOf returns the shard for a key.
func (s *Server) shardOf(key string) *shard { return s.shards[shardFor(key, len(s.shards))] }

// reqCtx derives the per-request deadline context.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.ReqTimeout)
}

// Get looks up a key (direct, non-HTTP entry point; the handler and tests
// share it).
func (s *Server) Get(ctx context.Context, key string) (string, bool, error) {
	v, ok, err := s.shardOf(key).get(ctx, key)
	s.account(opGet, err)
	return v, ok, err
}

// Put stores a value.
func (s *Server) Put(ctx context.Context, key, val string) error {
	err := s.shardOf(key).put(ctx, key, val)
	s.account(opPut, err)
	return err
}

// Delete removes a key (idempotent).
func (s *Server) Delete(ctx context.Context, key string) error {
	err := s.shardOf(key).delete(ctx, key)
	s.account(opDelete, err)
	return err
}

// Scan streams up to limit entries in key order from start, within start's
// shard, pacing entries by pace (use the server default when negative).
func (s *Server) Scan(ctx context.Context, start string, limit int, pace time.Duration,
	emit func(k, v string) bool) (int, error) {
	if limit <= 0 || limit > s.cfg.MaxScan {
		limit = s.cfg.MaxScan
	}
	if pace < 0 {
		pace = s.cfg.ScanPace
	}
	n, err := s.shardOf(start).scan(ctx, start, limit, pace, emit)
	s.account(opScan, err)
	return n, err
}

func (s *Server) account(op int, err error) {
	if err != nil {
		s.timeouts.Add(1)
		return
	}
	s.ops[op].Add(1)
}

// Handler returns the HTTP surface:
//
//	GET    /kv/{key}        200 value | 404 | 503
//	PUT    /kv/{key}        204 | 503        (body = value)
//	DELETE /kv/{key}        204 | 503        (idempotent)
//	GET    /scan?start=K&limit=N[&pace_us=P]  text/plain "key\tvalue" lines
//	GET    /debug/lockstat  JSON interval report (?lifetime=1 for totals)
//	GET    /healthz         200 ok
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.reqCtx(r)
		defer cancel()
		v, ok, err := s.Get(ctx, r.PathValue("key"))
		switch {
		case err != nil:
			overloaded(w)
		case !ok:
			http.Error(w, "not found", http.StatusNotFound)
		default:
			io.WriteString(w, v)
		}
	})
	mux.HandleFunc("PUT /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.reqCtx(r)
		defer cancel()
		body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxValBytes))
		if err != nil {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		if err := s.Put(ctx, r.PathValue("key"), string(body)); err != nil {
			overloaded(w)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.reqCtx(r)
		defer cancel()
		if err := s.Delete(ctx, r.PathValue("key")); err != nil {
			overloaded(w)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /scan", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.reqCtx(r)
		defer cancel()
		q := r.URL.Query()
		limit := 0
		fmt.Sscanf(q.Get("limit"), "%d", &limit)
		pace := time.Duration(-1)
		if p := q.Get("pace_us"); p != "" {
			us := 0
			fmt.Sscanf(p, "%d", &us)
			pace = time.Duration(us) * time.Microsecond
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		flusher, _ := w.(http.Flusher)
		_, err := s.Scan(ctx, q.Get("start"), limit, pace, func(k, v string) bool {
			if _, werr := fmt.Fprintf(w, "%s\t%s\n", k, v); werr != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush() // stream: the consumer sees entries as they go
			}
			return true
		})
		if err != nil {
			// Nothing streamed yet (the error can only come from acquire).
			overloaded(w)
		}
	})
	mux.HandleFunc("GET /debug/lockstat", func(w http.ResponseWriter, r *http.Request) {
		s.writeDebugLockstat(w, r.URL.Query().Get("lifetime") != "")
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func overloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "shard lock deadline exceeded", http.StatusServiceUnavailable)
}

// DebugShard is one shard's slice of the /debug/lockstat response.
type DebugShard struct {
	Shard     int             `json:"shard"`
	Impl      string          `json:"impl"`
	Switches  uint64          `json:"switches"`
	AcqPerSec float64         `json:"acquires_per_sec"`
	ReadFrac  float64         `json:"read_frac"`
	Contended float64         `json:"contended_frac"`
	WaitP99Us float64         `json:"wait_p99_us"`
	// Transitions is the tail of the shard lock's policy-transition log
	// (the meta-policy's stage switches under SelfTune), oldest first.
	Transitions []string        `json:"transitions,omitempty"`
	Report      lockstat.Report `json:"report"`
}

// DebugLockstat is the /debug/lockstat response schema. By default every
// field describes the interval since the previous /debug/lockstat request
// (rates, not lifetime totals — the lockstat Diff API); ?lifetime=1 reports
// since process start.
type DebugLockstat struct {
	UptimeS    float64           `json:"uptime_s"`
	IntervalS  float64           `json:"interval_s"`
	Lifetime   bool              `json:"lifetime"`
	Mode       string            `json:"mode"`
	Ops        map[string]uint64 `json:"ops"`
	Timeouts   uint64            `json:"timeouts"`
	Violations uint64            `json:"violations"`
	Shards     []DebugShard      `json:"shards"`
}

func (s *Server) writeDebugLockstat(w http.ResponseWriter, lifetime bool) {
	s.dbgMu.Lock()
	now := time.Now()
	cur := make([]lockstat.Report, len(s.shards))
	for i, sh := range s.shards {
		cur[i] = sh.site.Report()
	}
	var curOp opsSnapshot
	for i := range curOp.ops {
		curOp.ops[i] = s.ops[i].Load()
	}
	curOp.timeouts = s.timeouts.Load()

	reports := cur
	op := curOp
	interval := now.Sub(s.start)
	if !lifetime {
		if s.dbgPrev != nil {
			reports = lockstat.DiffAll(s.dbgPrev, cur)
			for i := range op.ops {
				op.ops[i] = curOp.ops[i] - s.dbgPrevOp.ops[i]
			}
			op.timeouts = curOp.timeouts - s.dbgPrevOp.timeouts
			interval = now.Sub(s.dbgPrevAt)
		}
		s.dbgPrev = cur
		s.dbgPrevAt = now
		s.dbgPrevOp = curOp
	}
	s.dbgMu.Unlock()

	resp := DebugLockstat{
		UptimeS:    now.Sub(s.start).Seconds(),
		IntervalS:  interval.Seconds(),
		Lifetime:   lifetime,
		Mode:       s.cfg.Lock,
		Timeouts:   op.timeouts,
		Violations: s.violations.Load(),
		Ops: map[string]uint64{
			"get": op.ops[opGet], "put": op.ops[opPut],
			"delete": op.ops[opDelete], "scan": op.ops[opScan],
		},
	}
	secs := interval.Seconds()
	if secs <= 0 {
		secs = 1
	}
	for i, sh := range s.shards {
		rep := reports[i]
		b := sh.box.Load()
		d := DebugShard{
			Shard:    i,
			Impl:     b.impl,
			Switches: sh.switches.Load(),
			Report:   rep,
		}
		if tl := b.lk.Transitions(); tl != nil {
			for _, tr := range tl.Tail(8) {
				d.Transitions = append(d.Transitions,
					fmt.Sprintf("epoch=%d at=%d %s -> %s (%s)", tr.Epoch, tr.At, tr.From, tr.To, tr.Trigger))
			}
		}
		if rep.Acquires > 0 {
			d.AcqPerSec = float64(rep.Acquires) / secs
			d.ReadFrac = float64(rep.ReadAcquires) / float64(rep.Acquires)
			d.Contended = float64(rep.Contended) / float64(rep.Acquires)
		}
		if rep.Wait != nil {
			d.WaitP99Us = rep.Wait.Percentile(0.99) / 1e3
		}
		resp.Shards = append(resp.Shards, d)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}
