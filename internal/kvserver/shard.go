package kvserver

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"shfllock/internal/lockstat"
)

// lockBox pairs a lock with its implementation name. A shard's current box
// is published through an atomic pointer; the box is immutable after
// creation, so a loaded box is always internally consistent.
type lockBox struct {
	impl string
	lk   ShardLock
}

// shard is one slice of the key space: a hash map plus a sorted key index
// (for ordered scans), guarded by a swappable lock.
//
// # Handover protocol
//
// The shard's lock can be replaced at runtime (adaptive mode). Correctness
// rests on two rules:
//
//  1. A request may only touch shard data while holding a lock it has
//     re-validated as current: acquire the loaded box's lock, then re-load
//     the pointer — if it changed, release and retry on the new box.
//  2. The controller publishes a new box only while holding the old lock
//     exclusively (the drain): old.Lock(); box.Store(new); old.Unlock().
//
// Why no old-lock critical section can overlap a new-lock critical section:
// the swap store happens while the old lock is held exclusively, so every
// old-lock holder that passed its re-validation did so strictly before the
// drain began — and has released before the store. Every acquirer that
// reaches its re-validation after the store observes the new box (the
// re-validation load is ordered after the acquisition, which synchronizes
// with the drain's release) and backs off. Waiters still queued on the old
// lock eventually acquire it — directly, via their deadline's abandonment
// path, or via ctxAcquire's orphaned grant — and every such grant lands in
// the re-validation branch, releases, and retries on the new box. The old
// lock then quiesces and is garbage collected; nothing is freed manually,
// so there is no use-after-free window to reason about.
//
// The writers/violations pair is a live mutual-exclusion detector over the
// protocol itself: every write section asserts it is alone, every read
// section asserts no writer is inside. It is cheap (one atomic add/load per
// op), runs in production builds, and is what the verify.sh smoke gate and
// the -race torture assert on.
type shard struct {
	box      atomic.Pointer[lockBox]
	site     *lockstat.Site
	switches atomic.Uint64
	selfTune bool // every generation of the shard's lock gets a meta-policy

	// Shard data. Guarded by the current box's lock.
	data map[string]string
	keys []string // sorted; the scan index
	seq  uint64   // plain on purpose: written under the write lock only,
	// so -race turns any handover hole into a report

	writers    atomic.Int32
	violations *atomic.Uint64 // server-wide violation counter
}

func newShard(impl string, site *lockstat.Site, violations *atomic.Uint64, selfTune bool) (*shard, error) {
	lk, err := NewLock(impl, site, selfTune)
	if err != nil {
		return nil, err
	}
	s := &shard{
		data:       make(map[string]string),
		site:       site,
		selfTune:   selfTune,
		violations: violations,
	}
	b := &lockBox{impl: impl, lk: lk}
	s.box.Store(b)
	return s, nil
}

// acquire locks the shard's current lock (shared when read is set),
// re-validating against a concurrent handover.
func (s *shard) acquire(ctx context.Context, read bool) (*lockBox, error) {
	for {
		b := s.box.Load()
		var err error
		if read {
			err = b.lk.RLockContext(ctx)
		} else {
			err = b.lk.LockContext(ctx)
		}
		if err != nil {
			return nil, err
		}
		if s.box.Load() == b {
			return b, nil
		}
		// The lock was swapped while we waited; this grant is on the old
		// generation and must not touch data.
		if read {
			b.lk.RUnlock()
		} else {
			b.lk.Unlock()
		}
	}
}

// enterWrite/exitWrite and checkRead are the mutual-exclusion detector.
func (s *shard) enterWrite() {
	if s.writers.Add(1) != 1 {
		s.violations.Add(1)
	}
}

func (s *shard) exitWrite() { s.writers.Add(-1) }

func (s *shard) checkRead() {
	if s.writers.Load() != 0 {
		s.violations.Add(1)
	}
}

// get looks a key up under a read share.
func (s *shard) get(ctx context.Context, key string) (string, bool, error) {
	b, err := s.acquire(ctx, true)
	if err != nil {
		return "", false, err
	}
	s.checkRead()
	v, ok := s.data[key]
	b.lk.RUnlock()
	return v, ok, nil
}

// put inserts or overwrites a key. New keys also enter the sorted index
// (binary search + insert), which is the real storage-engine work a write
// holds the lock for.
func (s *shard) put(ctx context.Context, key, val string) error {
	b, err := s.acquire(ctx, false)
	if err != nil {
		return err
	}
	s.enterWrite()
	if _, exists := s.data[key]; !exists {
		i := sort.SearchStrings(s.keys, key)
		s.keys = append(s.keys, "")
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = key
	}
	s.data[key] = val
	s.seq++
	s.exitWrite()
	b.lk.Unlock()
	return nil
}

// delete removes a key; deleting an absent key is a no-op (idempotent).
func (s *shard) delete(ctx context.Context, key string) error {
	b, err := s.acquire(ctx, false)
	if err != nil {
		return err
	}
	s.enterWrite()
	if _, exists := s.data[key]; exists {
		delete(s.data, key)
		i := sort.SearchStrings(s.keys, key)
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
	}
	s.seq++
	s.exitWrite()
	b.lk.Unlock()
	return nil
}

// scan streams up to limit entries in key order starting at start, calling
// emit for each under the read share. pace is an inter-entry delay modeling
// a client-paced streaming response (an SSE-ish consumer): the share is
// held across the pacing sleeps, which is exactly the long-reader pattern
// that separates RW locks from mutexes in a live service. emit returning
// false stops the scan (client gone).
func (s *shard) scan(ctx context.Context, start string, limit int, pace time.Duration,
	emit func(k, v string) bool) (int, error) {
	b, err := s.acquire(ctx, true)
	if err != nil {
		return 0, err
	}
	defer b.lk.RUnlock()
	s.checkRead()
	n := 0
	for i := sort.SearchStrings(s.keys, start); i < len(s.keys) && n < limit; i++ {
		k := s.keys[i]
		if !emit(k, s.data[k]) {
			break
		}
		n++
		if pace > 0 && n < limit {
			timer := time.NewTimer(pace)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return n, nil // partial scan: deadline hit mid-stream
			}
		}
	}
	return n, nil
}

// swapLock replaces the shard's lock with a fresh impl instance: drain via
// the old lock, publish, release. Returns false when the shard already
// runs impl, or when a concurrent swapper got there first — after the
// drain, the box is re-validated exactly like a request would, so racing
// swappers cannot publish over a box they do not hold.
func (s *shard) swapLock(impl string) (bool, error) {
	old := s.box.Load()
	if old.impl == impl {
		return false, nil
	}
	lk, err := NewLock(impl, s.site, s.selfTune)
	if err != nil {
		return false, err
	}
	nb := &lockBox{impl: impl, lk: lk}
	old.lk.Lock() // drain: waits out every current holder
	if s.box.Load() != old {
		old.lk.Unlock() // lost the race to another swapper
		return false, nil
	}
	s.enterWrite()
	s.seq++ // the swap is a write to the shard's metadata
	s.exitWrite()
	s.box.Store(nb)
	old.lk.Unlock()
	s.switches.Add(1)
	return true, nil
}

// shardFor hashes a key onto a shard index (FNV-1a).
func shardFor(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// siteName names a shard's lockstat site.
func siteName(i int) string { return fmt.Sprintf("kv/shard%02d", i) }
