// Package kvstore is a LevelDB-shaped key-value store substrate for the
// Figure 12 experiments: an in-memory memtable behind the global database
// mutex that leveldb's Get/Put take to reference the current version set.
// The readrandom benchmark contends on that one lock, which is exactly what
// the paper evaluates userspace locks with.
package kvstore

import (
	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
)

// Costs in cycles.
const (
	versionTouch = 3    // version-set words touched under the mutex
	searchCost   = 900  // memtable/SSTable binary search outside the lock
	writeCost    = 1400 // memtable insert under the lock
)

// DB is a LevelDB-like store guarded by a global mutex.
type DB struct {
	mu      simlocks.Lock
	version []sim.Word // version-set state touched under the lock
	index   []sim.Word // read-mostly index lines probed during searches
	data    map[uint64]uint64
	seq     uint64
}

// New creates a database using the given lock implementation.
func New(e *sim.Engine, mk simlocks.Maker, keys int) *DB {
	db := &DB{
		mu:      mk.New(e, "db/mutex"),
		version: e.Mem().Alloc("db/version", 4),
		index:   e.Mem().AllocPadded("db/index", 16),
		data:    make(map[uint64]uint64, keys),
	}
	for k := 0; k < keys; k++ {
		db.data[uint64(k)] = uint64(k) * 7
	}
	return db
}

// Get performs a readrandom-style lookup: take the DB mutex to reference
// the version set, then search outside the lock.
func (db *DB) Get(t *sim.Thread, key uint64) (uint64, bool) {
	db.mu.Lock(t)
	for i := 0; i < versionTouch; i++ {
		t.Store(db.version[i], t.Load(db.version[i])+1)
	}
	db.mu.Unlock(t)
	// Probe two read-mostly index lines, then binary-search.
	t.Load(db.index[key%16])
	t.Load(db.index[(key/16)%16])
	t.Delay(searchCost)
	v, ok := db.data[key]
	return v, ok
}

// Put inserts under the DB mutex (memtable write).
func (db *DB) Put(t *sim.Thread, key, val uint64) {
	db.mu.Lock(t)
	for i := 0; i < versionTouch; i++ {
		t.Store(db.version[i], t.Load(db.version[i])+1)
	}
	db.seq++
	db.data[key] = val
	t.Delay(writeCost)
	db.mu.Unlock(t)
}
