// Package kvstore is a LevelDB-shaped key-value store substrate for the
// Figure 12 experiments: an in-memory memtable behind the global database
// mutex that leveldb's Get/Put take to reference the current version set.
// The readrandom benchmark contends on that one lock, which is exactly what
// the paper evaluates userspace locks with.
package kvstore

import (
	"shfllock/internal/alloc/arena"
	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
)

// Costs in cycles.
const (
	versionTouch = 3    // version-set words touched under the mutex
	searchCost   = 900  // memtable/SSTable binary search outside the lock
	writeCost    = 1400 // memtable insert under the lock
)

// DB is a LevelDB-like store guarded by a global mutex.
type DB struct {
	mu      simlocks.Lock
	version []sim.Word // version-set state touched under the lock
	index   []sim.Word // read-mostly index lines probed during searches
	data    map[uint64]uint64
	seq     uint64
	pooled  bool
}

// dbPool recycles the memtable map across sweep points: its bucket array is
// the benchmark's one big Go-side allocation, and New overwrites the full
// key range anyway, so reuse costs a clear and saves the rebuild.
var dbPool = arena.New(func(db *DB) {
	clear(db.data)
	*db = DB{data: db.data}
})

// New creates a database using the given lock implementation.
func New(e *sim.Engine, mk simlocks.Maker, keys int) *DB {
	var db *DB
	if e.Pooled() {
		db = dbPool.Get()
		db.pooled = true
	} else {
		db = &DB{}
	}
	if db.data == nil {
		db.data = make(map[uint64]uint64, keys)
	}
	db.mu = mk.New(e, "db/mutex")
	db.version = e.Mem().Alloc("db/version", 4)
	db.index = e.Mem().AllocPadded("db/index", 16)
	for k := 0; k < keys; k++ {
		db.data[uint64(k)] = uint64(k) * 7
	}
	return db
}

// Recycle returns the database's table to the pool once its run is over (a
// no-op for databases built against a non-pooled engine). The caller must
// hold no references to the DB afterwards.
func (db *DB) Recycle() {
	if !db.pooled {
		return
	}
	dbPool.Put(db)
}

// Get performs a readrandom-style lookup: take the DB mutex to reference
// the version set, then search outside the lock.
func (db *DB) Get(t *sim.Thread, key uint64) (uint64, bool) {
	db.mu.Lock(t)
	for i := 0; i < versionTouch; i++ {
		t.Store(db.version[i], t.Load(db.version[i])+1)
	}
	db.mu.Unlock(t)
	// Probe two read-mostly index lines, then binary-search.
	t.Load(db.index[key%16])
	t.Load(db.index[(key/16)%16])
	t.Delay(searchCost)
	v, ok := db.data[key]
	return v, ok
}

// Put inserts under the DB mutex (memtable write).
func (db *DB) Put(t *sim.Thread, key, val uint64) {
	db.mu.Lock(t)
	for i := 0; i < versionTouch; i++ {
		t.Store(db.version[i], t.Load(db.version[i])+1)
	}
	db.seq++
	db.data[key] = val
	t.Delay(writeCost)
	db.mu.Unlock(t)
}
