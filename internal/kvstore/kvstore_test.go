package kvstore

import (
	"testing"

	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
)

func TestGetPut(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 10_000_000_000})
	db := New(e, simlocks.ShflLockBMaker(), 128)
	e.Spawn("t", 0, func(th *sim.Thread) {
		if v, ok := db.Get(th, 5); !ok || v != 35 {
			t.Errorf("Get(5) = %d,%v; want 35,true", v, ok)
		}
		if _, ok := db.Get(th, 9999); ok {
			t.Error("Get of missing key succeeded")
		}
		db.Put(th, 9999, 42)
		if v, ok := db.Get(th, 9999); !ok || v != 42 {
			t.Errorf("Get after Put = %d,%v", v, ok)
		}
	})
	e.Run()
}

func TestConcurrentReaders(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 2, HardStop: 100_000_000_000})
	db := New(e, simlocks.MCSMaker(), 1024)
	misses := 0
	for i := 0; i < 8; i++ {
		e.Spawn("r", -1, func(th *sim.Thread) {
			for k := 0; k < 50; k++ {
				key := uint64(th.Rng().Intn(1024))
				if _, ok := db.Get(th, key); !ok {
					misses++
				}
			}
		})
	}
	e.Run()
	if misses != 0 {
		t.Errorf("%d unexpected misses", misses)
	}
}

func TestMixedReadWrite(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 3, HardStop: 100_000_000_000})
	db := New(e, simlocks.PthreadMaker(), 64)
	for i := 0; i < 6; i++ {
		id := uint64(i)
		e.Spawn("w", -1, func(th *sim.Thread) {
			for k := 0; k < 30; k++ {
				db.Put(th, 10_000+id, uint64(k))
				if v, ok := db.Get(th, 10_000+id); !ok || v > uint64(k) {
					// v can lag if another writer shares the key; here keys
					// are private, so the last write must be visible.
					t.Errorf("thread %d read %d after writing %d", id, v, k)
				}
			}
		})
	}
	e.Run()
}
