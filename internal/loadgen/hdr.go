package loadgen

import "math/bits"

// HDR is an HdrHistogram-style log-linear latency histogram: values below
// 64ns land in exact 1ns buckets; above that, each power-of-two range is
// split into 32 linear sub-buckets, bounding relative error at ~3%. That
// resolution matters here in a way lockstat's plain log2 histogram does
// not: the deliverable compares p99s *between lock choices*, and a
// factor-of-two bucket would flatten real differences into ties. Recording
// is a plain array increment — recorders are per-worker and merged, never
// shared — so the hot path stays allocation- and atomics-free.
type HDR struct {
	counts [hdrBuckets]uint64
	total  uint64
	sum    uint64
}

const (
	hdrSubBits = 5
	hdrSubs    = 1 << hdrSubBits // 32 linear sub-buckets per power of two
	hdrLinear  = 64              // values < 64 are their own bucket
	hdrBuckets = hdrLinear + (63-hdrSubBits)*hdrSubs
)

// hdrIndex maps a non-negative duration in ns to its bucket.
func hdrIndex(v int64) int {
	if v < hdrLinear {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	u := uint64(v)
	exp := bits.Len64(u) - hdrSubBits - 2 // v in [64<<exp, 128<<exp)
	sub := int(u>>(exp+1)) - hdrSubs
	return hdrLinear + exp*hdrSubs + sub
}

// hdrMid returns a representative value (ns) for a bucket: the bucket's
// midpoint.
func hdrMid(i int) float64 {
	if i < hdrLinear {
		return float64(i)
	}
	i -= hdrLinear
	exp := i / hdrSubs
	sub := i % hdrSubs
	low := uint64(hdrSubs+sub) << (exp + 1)
	width := uint64(1) << (exp + 1)
	return float64(low) + float64(width)/2
}

// Record adds one sample of v nanoseconds.
func (h *HDR) Record(v int64) {
	h.counts[hdrIndex(v)]++
	h.total++
	if v > 0 {
		h.sum += uint64(v)
	}
}

// Merge adds o's samples into h.
func (h *HDR) Merge(o *HDR) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *HDR) Count() uint64 { return h.total }

// Mean returns the average sample in ns, or 0 when empty.
func (h *HDR) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an estimate (ns) of the q-th quantile, 0 < q <= 1.
func (h *HDR) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			return hdrMid(i)
		}
	}
	return hdrMid(hdrBuckets - 1)
}

// Sparse returns the non-empty buckets as {index, count} pairs, the
// portable form embedded in run JSON so a merge step can pool samples
// across repetitions — a pooled p99 over every rep's steady state is a far
// tighter estimator than any summary-of-summaries of per-rep p99 points.
func (h *HDR) Sparse() [][2]uint64 {
	var s [][2]uint64
	for i, c := range h.counts {
		if c != 0 {
			s = append(s, [2]uint64{uint64(i), c})
		}
	}
	return s
}

// MergeSparse adds samples exported by Sparse into h. The per-sample sum is
// reconstructed from bucket midpoints, so Mean becomes approximate (within
// bucket resolution) after a sparse merge; quantiles are exact.
func (h *HDR) MergeSparse(s [][2]uint64) {
	for _, bc := range s {
		i := int(bc[0])
		if i < 0 || i >= hdrBuckets {
			continue
		}
		h.counts[i] += bc[1]
		h.total += bc[1]
		h.sum += uint64(hdrMid(i)) * bc[1]
	}
}

// Max returns the representative value of the highest non-empty bucket.
func (h *HDR) Max() float64 {
	for i := hdrBuckets - 1; i >= 0; i-- {
		if h.counts[i] != 0 {
			return hdrMid(i)
		}
	}
	return 0
}
