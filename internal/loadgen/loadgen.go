// Package loadgen is a seeded, open-loop load generator for the KV service
// (internal/kvserver): it models traffic from a large population of
// independent users, so arrivals happen at a fixed offered rate regardless
// of how fast the service responds. A slow server does not slow the
// generator down — requests queue and their measured latency grows — which
// is exactly the regime where lock choice shows up in tail latency and
// where a closed-loop ("back-to-back requests") generator would hide the
// problem by coordinated omission.
//
// Latency is therefore measured from each operation's *scheduled* arrival
// time, not from when a worker got around to sending it, and every
// operation's deadline is anchored to the same scheduled time: an op that
// sat in the dispatch queue has already spent part of its budget.
//
// The op stream (kinds, keys, values) is a pure function of the seed; only
// completion timing varies between runs. Phases script the mix: read-mostly,
// write-storm, churn (fresh keys, deletes, connection churn) — each with
// its own rate, and each recording point-op (GET/PUT/DELETE) and SCAN
// latencies into separate HDR histograms, because scans are deliberately
// long streaming operations with a different SLO.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// OpKind enumerates the request types the generator issues.
type OpKind uint8

const (
	Get OpKind = iota
	Put
	Delete
	Scan
)

func (k OpKind) String() string {
	switch k {
	case Get:
		return "GET"
	case Put:
		return "PUT"
	case Delete:
		return "DELETE"
	case Scan:
		return "SCAN"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one scheduled operation.
type Op struct {
	Kind        OpKind
	Key         string
	Val         string // PUT payload
	Limit       int    // SCAN result cap
	Phase       int    // index into Config.Phases
	ScheduledAt time.Time
}

// ErrOverload classifies a service-side load-shed response (HTTP 503). The
// generator counts it as a timeout, not an error: shedding under deadline
// pressure is the behavior under test. Targets wrap their rejection errors
// so errors.Is(err, ErrOverload) holds.
var ErrOverload = errors.New("overloaded: request shed by server")

// Target executes operations. Implementations must honor ctx's deadline.
type Target interface {
	Do(ctx context.Context, op *Op) error
}

// Churner is optionally implemented by targets that can drop and re-dial
// connections; churn phases invoke it periodically to model connection
// turnover from a rotating user population.
type Churner interface {
	Churn()
}

// Phase scripts one traffic regime.
type Phase struct {
	Name       string        `json:"name"`
	Duration   time.Duration `json:"-"`
	Rate       float64       `json:"rate"`        // offered ops/sec
	ReadFrac   float64       `json:"read_frac"`   // fraction of ops that are GETs
	ScanFrac   float64       `json:"scan_frac"`   // fraction of ops that are SCANs
	DeleteFrac float64       `json:"delete_frac"` // fraction of *writes* that are DELETEs
	Churn      bool          `json:"churn"`       // fresh keys + connection churn
	// WarmupFrac is the leading fraction of the phase excluded from the
	// latency histograms (counters still accumulate). It gives adaptive
	// policies their advertised convergence window and keeps phase
	// percentiles about the phase's steady state. Zero means none.
	WarmupFrac float64 `json:"warmup_frac"`
}

// Config parameterizes a run.
type Config struct {
	Seed    int64
	Keys    int           // initial key-space size (keys are "k%08d")
	ZipfS   float64       // zipf skew (>1); 0 means the default 1.1
	Workers int           // concurrent request slots
	Timeout time.Duration // per-op deadline, measured from scheduled arrival
	Phases  []Phase
	// QueueCap bounds the dispatch queue (scheduled-but-unsent ops). An
	// arrival that finds the queue full is shed client-side and counted;
	// 0 means 4096.
	QueueCap int
	// ScanLimit caps SCAN result sizes; 0 means 64.
	ScanLimit int
	// ChurnEvery closes idle connections every n dispatched ops in churn
	// phases; 0 means 256.
	ChurnEvery int
	// OnDispatch, when non-nil, observes every generated op in schedule
	// order before it is handed to a worker (tests use it to pin down
	// stream determinism).
	OnDispatch func(*Op)
}

// PhaseResult summarizes one phase of a run.
type PhaseResult struct {
	Name     string  `json:"name"`
	Offered  float64 `json:"offered_ops_per_sec"`
	Ops      uint64  `json:"ops"`      // completed successfully
	Timeouts uint64  `json:"timeouts"` // deadline exceeded or server 503
	Errors   uint64  `json:"errors"`   // anything else
	Shed     uint64  `json:"shed"`     // dropped client-side: queue full
	Achieved float64 `json:"achieved_ops_per_sec"`

	// Point-op (GET/PUT/DELETE) latency percentiles in milliseconds,
	// measured from scheduled arrival, steady state only (post-warmup).
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`

	// Scan latency percentiles (ms), reported separately: scans are
	// streaming reads holding a read share for their whole transfer.
	ScanOps uint64  `json:"scan_ops"`
	ScanP50 float64 `json:"scan_p50_ms,omitempty"`
	ScanP99 float64 `json:"scan_p99_ms,omitempty"`

	// PointHist is the point-op latency histogram in sparse {bucket, count}
	// form (see HDR.Sparse), so downstream tooling can pool repetitions of
	// the same cell and take percentiles over all samples at once instead
	// of summarizing summaries.
	PointHist [][2]uint64 `json:"point_hist,omitempty"`
}

// Result is a full run summary.
type Result struct {
	Seed   int64         `json:"seed"`
	Phases []PhaseResult `json:"phases"`
}

// workerState accumulates per-worker so the hot path shares nothing.
type workerState struct {
	point, scan         []HDR // per phase
	ops, timeouts, errs []uint64
}

// Run drives the target through cfg's phase script and returns the
// per-phase results. It blocks until the last scheduled op completes or
// times out.
func Run(cfg Config, target Target) Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 100_000
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 50 * time.Millisecond
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.ScanLimit <= 0 {
		cfg.ScanLimit = 64
	}
	if cfg.ChurnEvery <= 0 {
		cfg.ChurnEvery = 256
	}

	nPhases := len(cfg.Phases)
	workers := make([]*workerState, cfg.Workers)
	for i := range workers {
		workers[i] = &workerState{
			point:    make([]HDR, nPhases),
			scan:     make([]HDR, nPhases),
			ops:      make([]uint64, nPhases),
			timeouts: make([]uint64, nPhases),
			errs:     make([]uint64, nPhases),
		}
	}

	type job struct {
		op     Op
		warmup bool
	}
	ch := make(chan job, cfg.QueueCap)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(st *workerState) {
			defer wg.Done()
			for j := range ch {
				op := j.op
				deadline := op.ScheduledAt.Add(cfg.Timeout)
				now := time.Now()
				ph := op.Phase
				if !now.Before(deadline) {
					// Budget exhausted in the dispatch queue: the user has
					// already given up; don't waste server work.
					st.timeouts[ph]++
					continue
				}
				ctx, cancel := context.WithDeadline(context.Background(), deadline)
				err := target.Do(ctx, &op)
				cancel()
				lat := time.Since(op.ScheduledAt)
				switch {
				case err == nil:
					st.ops[ph]++
					if !j.warmup {
						if op.Kind == Scan {
							st.scan[ph].Record(lat.Nanoseconds())
						} else {
							st.point[ph].Record(lat.Nanoseconds())
						}
					}
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrOverload):
					st.timeouts[ph]++
				default:
					st.errs[ph]++
				}
			}
		}(workers[w])
	}

	// Dispatcher: one goroutine, one rng — the op stream is a pure function
	// of the seed. Arrivals are paced on the wall clock; generation never
	// waits on completions (open loop).
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	shed := make([]uint64, nPhases)
	freshBase := cfg.Keys // churn phases create keys past the initial space
	fresh := 0
	churner, _ := target.(Churner)

	start := time.Now()
	phaseStart := start
	for pi, ph := range cfg.Phases {
		interval := time.Duration(float64(time.Second) / ph.Rate)
		warmupEnd := phaseStart.Add(time.Duration(ph.WarmupFrac * float64(ph.Duration)))
		phaseEnd := phaseStart.Add(ph.Duration)
		n := 0
		for at := phaseStart; at.Before(phaseEnd); at = at.Add(interval) {
			op := Op{Phase: pi, ScheduledAt: at}
			r := rng.Float64()
			switch {
			case r < ph.ScanFrac:
				op.Kind = Scan
				op.Key = keyName(int(zipf.Uint64()))
				op.Limit = cfg.ScanLimit
			case r < ph.ScanFrac+ph.ReadFrac:
				op.Kind = Get
				op.Key = keyName(int(zipf.Uint64()))
			default:
				if rng.Float64() < ph.DeleteFrac && fresh > 0 {
					op.Kind = Delete
					// Delete a recent fresh key: models short-lived state.
					op.Key = keyName(freshBase + rng.Intn(fresh))
				} else {
					op.Kind = Put
					if ph.Churn {
						op.Key = keyName(freshBase + fresh)
						fresh++
					} else {
						op.Key = keyName(int(zipf.Uint64()))
					}
					op.Val = fmt.Sprintf("v%016x", rng.Uint64())
				}
			}
			if cfg.OnDispatch != nil {
				cfg.OnDispatch(&op)
			}
			if d := time.Until(at); d > 0 {
				time.Sleep(d)
			}
			select {
			case ch <- job{op: op, warmup: at.Before(warmupEnd)}:
			default:
				shed[pi]++ // dispatch queue full: client-side shed
			}
			n++
			if ph.Churn && churner != nil && n%cfg.ChurnEvery == 0 {
				churner.Churn()
			}
		}
		phaseStart = phaseEnd
	}
	close(ch)
	wg.Wait()

	// Merge workers into per-phase results.
	res := Result{Seed: cfg.Seed}
	for pi, ph := range cfg.Phases {
		var point, scan HDR
		pr := PhaseResult{Name: ph.Name, Offered: ph.Rate, Shed: shed[pi]}
		for _, st := range workers {
			point.Merge(&st.point[pi])
			scan.Merge(&st.scan[pi])
			pr.Ops += st.ops[pi]
			pr.Timeouts += st.timeouts[pi]
			pr.Errors += st.errs[pi]
		}
		pr.Achieved = float64(pr.Ops) / ph.Duration.Seconds()
		ms := func(ns float64) float64 { return ns / 1e6 }
		pr.P50, pr.P90 = ms(point.Quantile(0.50)), ms(point.Quantile(0.90))
		pr.P99, pr.P999 = ms(point.Quantile(0.99)), ms(point.Quantile(0.999))
		pr.Mean, pr.Max = ms(point.Mean()), ms(point.Max())
		pr.ScanOps = scan.Count()
		if pr.ScanOps > 0 {
			pr.ScanP50, pr.ScanP99 = ms(scan.Quantile(0.50)), ms(scan.Quantile(0.99))
		}
		pr.PointHist = point.Sparse()
		res.Phases = append(res.Phases, pr)
	}
	return res
}

// keyName formats key i; the fixed width keeps scans lexicographic by index.
func keyName(i int) string { return fmt.Sprintf("k%08d", i) }

// Script returns the canonical seeded phase script: read-mostly traffic,
// then a write storm, then churn (fresh keys, deletes, connection
// turnover). rate scales every phase's offered load; secs is the length of
// each phase. The 25% warmup window is what gives an adaptive lock policy
// its advertised convergence budget — percentiles describe the adapted
// steady state, and a policy that never converges still pays for it in the
// counters.
func Script(rate float64, secs float64) []Phase {
	d := time.Duration(secs * float64(time.Second))
	return []Phase{
		{Name: "read-mostly", Duration: d, Rate: rate, ReadFrac: 0.93, ScanFrac: 0.02, WarmupFrac: 0.25},
		// The write storm is bulk-write traffic — a backfill or migration —
		// with only stray point reads and no analytical scans. Scan-free
		// matters: even a 1% scan share re-creates the long-reader pattern
		// that favors an RW lock, and the phase exists to exercise the
		// opposite regime, where shared-mode machinery is pure overhead.
		{Name: "write-storm", Duration: d, Rate: rate, ReadFrac: 0.05, ScanFrac: 0, WarmupFrac: 0.25},
		// Churn reads lean above the controller's hiRead threshold (0.60
		// share vs 0.55): mixed-but-read-leaning traffic with heavy key
		// turnover, decisive enough that an adaptive policy must swing
		// *back* after the write storm rather than squat in its hysteresis
		// band.
		{Name: "churn", Duration: d, Rate: rate, ReadFrac: 0.58, ScanFrac: 0.02, DeleteFrac: 0.30, Churn: true, WarmupFrac: 0.25},
	}
}
