package loadgen

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// TestHDRResolution: the histogram must resolve values ~3% apart, which is
// what makes p99 comparisons between lock choices meaningful.
func TestHDRResolution(t *testing.T) {
	var h HDR
	for i := 0; i < 1000; i++ {
		h.Record(100_000) // 100µs
	}
	for i := 0; i < 10; i++ {
		h.Record(1_000_000) // 1ms tail
	}
	p50 := h.Quantile(0.50)
	if math.Abs(p50-100_000) > 0.04*100_000 {
		t.Errorf("p50 = %.0f, want 100000 within 4%%", p50)
	}
	p999 := h.Quantile(0.999)
	if math.Abs(p999-1_000_000) > 0.04*1_000_000 {
		t.Errorf("p999 = %.0f, want 1000000 within 4%%", p999)
	}
	if got := h.Count(); got != 1010 {
		t.Errorf("count = %d, want 1010", got)
	}
}

// TestHDRSparseRoundTrip: the sparse export used to pool benchmark reps
// must reproduce the original distribution's quantiles exactly, and
// pooling two histograms through it must equal a direct Merge.
func TestHDRSparseRoundTrip(t *testing.T) {
	var a, b HDR
	for i := 0; i < 500; i++ {
		a.Record(int64(50_000 + i*1000))
		b.Record(int64(2_000_000 + i*5000))
	}
	var back HDR
	back.MergeSparse(a.Sparse())
	back.MergeSparse(b.Sparse())
	var direct HDR
	direct.Merge(&a)
	direct.Merge(&b)
	if back.Count() != direct.Count() {
		t.Fatalf("count = %d, want %d", back.Count(), direct.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got, want := back.Quantile(q), direct.Quantile(q); got != want {
			t.Errorf("q%.3f = %.0f via sparse, want %.0f", q, got, want)
		}
	}
}

// TestHDRIndexMonotone: bucket indexing must be monotone and in range over
// the whole int64 span (a misplaced boundary silently corrupts quantiles).
func TestHDRIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1 << 20, 1<<40 + 12345, 1<<62 + 999} {
		i := hdrIndex(v)
		if i < 0 || i >= hdrBuckets {
			t.Fatalf("hdrIndex(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("hdrIndex not monotone at %d", v)
		}
		prev = i
		if mid := hdrMid(i); v >= 64 && math.Abs(mid-float64(v)) > float64(v)*0.04 {
			t.Errorf("hdrMid(%d)=%.0f not within 4%% of %d", i, mid, v)
		}
	}
	// Dense sweep of the linear/log boundary.
	for v := int64(1); v < 4096; v++ {
		i := hdrIndex(v)
		if i < prevIdx(v-1) {
			t.Fatalf("index decreased at v=%d", v)
		}
	}
}

func prevIdx(v int64) int {
	if v < 0 {
		return 0
	}
	return hdrIndex(v)
}

type recordingTarget struct {
	ops  atomic.Uint64
	keys chan string
}

func (r *recordingTarget) Do(ctx context.Context, op *Op) error {
	r.ops.Add(1)
	select {
	case r.keys <- fmt.Sprintf("%s %s", op.Kind, op.Key):
	default:
	}
	return nil
}

// TestStreamDeterminism: the op stream is a pure function of the seed —
// two runs with the same seed dispatch the identical op sequence, and a
// different seed diverges.
func TestStreamDeterminism(t *testing.T) {
	stream := func(seed int64) []string {
		var ops []string
		cfg := Config{
			Seed:    seed,
			Keys:    1000,
			Workers: 1,
			Timeout: 100 * time.Millisecond,
			Phases: []Phase{
				{Name: "mix", Duration: 80 * time.Millisecond, Rate: 2000,
					ReadFrac: 0.5, ScanFrac: 0.05, DeleteFrac: 0.3, Churn: true},
			},
			OnDispatch: func(op *Op) {
				ops = append(ops, fmt.Sprintf("%s %s %s", op.Kind, op.Key, op.Val))
			},
		}
		Run(cfg, &recordingTarget{keys: make(chan string, 1)})
		return ops
	}
	a, b := stream(7), stream(7)
	if len(a) == 0 {
		t.Fatal("no ops dispatched")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different stream lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := stream(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical stream")
	}
}

// slowTarget stalls every request far past its deadline.
type slowTarget struct{}

func (slowTarget) Do(ctx context.Context, op *Op) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestOpenLoopDoesNotThrottle: a stalled server must not slow arrivals
// down. Every scheduled op is accounted as completed, timed out, or shed —
// and with the server stalling everything, timeouts dominate instead of
// the run lasting longer.
func TestOpenLoopDoesNotThrottle(t *testing.T) {
	const rate, secs = 2000.0, 0.25
	cfg := Config{
		Seed:    1,
		Keys:    100,
		Workers: 4,
		Timeout: 5 * time.Millisecond,
		Phases:  []Phase{{Name: "stall", Duration: time.Duration(secs * float64(time.Second)), Rate: rate, ReadFrac: 1}},
	}
	start := time.Now()
	res := Run(cfg, slowTarget{})
	elapsed := time.Since(start)
	ph := res.Phases[0]
	total := ph.Ops + ph.Timeouts + ph.Errors + ph.Shed
	want := uint64(rate * secs)
	if total < want*9/10 || total > want*11/10 {
		t.Errorf("accounted ops = %d, want ~%d (open loop must not drop arrivals silently)", total, want)
	}
	if ph.Ops != 0 {
		t.Errorf("stalled target completed %d ops", ph.Ops)
	}
	if ph.Timeouts == 0 {
		t.Error("no timeouts against a stalled target")
	}
	// The run should end shortly after the phase does — within the op
	// timeout plus scheduling slack — not after rate*stall-time.
	if elapsed > time.Duration(secs*float64(time.Second))+cfg.Timeout+500*time.Millisecond {
		t.Errorf("run took %v: generator was throttled by the target", elapsed)
	}
}

// TestLatencyFromScheduledArrival: latency is measured against the
// schedule, not the send time — queue delay counts (no coordinated
// omission). A target with a fixed 2ms service time driven slightly over
// its capacity must show p99 well above the bare service time.
func TestLatencyFromScheduledArrival(t *testing.T) {
	cfg := Config{
		Seed:    3,
		Keys:    100,
		Workers: 1, // single slot: capacity 500 ops/s at 2ms each
		Timeout: 400 * time.Millisecond,
		Phases:  []Phase{{Name: "over", Duration: 300 * time.Millisecond, Rate: 1000, ReadFrac: 1}},
	}
	res := Run(cfg, fixedDelayTarget{2 * time.Millisecond})
	ph := res.Phases[0]
	if ph.Ops == 0 {
		t.Fatal("no ops completed")
	}
	if ph.P99 < 4 { // ms; queueing at 2x overload must dominate service time
		t.Errorf("p99 = %.2fms; scheduled-arrival accounting should show queue delay ≫ 2ms service time", ph.P99)
	}
}

type fixedDelayTarget struct{ d time.Duration }

func (f fixedDelayTarget) Do(ctx context.Context, op *Op) error {
	timer := time.NewTimer(f.d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TestScriptShape sanity-checks the canonical script used by cmd/kvload
// and the benchmark: three phases, every fraction in range, non-zero
// warmup so adaptive convergence is excluded from steady-state tails.
func TestScriptShape(t *testing.T) {
	ph := Script(5000, 4)
	if len(ph) != 3 {
		t.Fatalf("script has %d phases, want 3", len(ph))
	}
	names := []string{"read-mostly", "write-storm", "churn"}
	for i, p := range ph {
		if p.Name != names[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Name, names[i])
		}
		if p.Rate != 5000 || p.Duration != 4*time.Second {
			t.Errorf("phase %q rate/duration not applied", p.Name)
		}
		if p.ReadFrac+p.ScanFrac > 1 || p.WarmupFrac <= 0 || p.WarmupFrac >= 0.5 {
			t.Errorf("phase %q fractions out of range: %+v", p.Name, p)
		}
	}
	if ph[0].ReadFrac < 0.9 || ph[1].ReadFrac > 0.2 {
		t.Error("read-mostly/write-storm phases are not differentiated")
	}
	if !ph[2].Churn || ph[2].DeleteFrac == 0 {
		t.Error("churn phase missing churn behavior")
	}
}
