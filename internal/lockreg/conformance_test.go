package lockreg

import (
	"testing"

	"shfllock/internal/chaos"
	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

// conformanceScript is the deterministic op sequence both substrates run:
// 'L' Lock, 'U' Unlock, 'T' TryLock. Built so TryLock is exercised both on
// a free lock (must succeed) and while held (must fail), repeatedly enough
// to cycle every node/cell through reuse paths.
func conformanceScript() string {
	var ops []byte
	for i := 0; i < 48; i++ {
		switch i % 3 {
		case 0:
			ops = append(ops, 'L', 'T', 'U') // try while held
		case 1:
			ops = append(ops, 'T', 'T', 'U') // try-acquire, then try while held
		case 2:
			ops = append(ops, 'L', 'U', 'T', 'U') // try right after release
		}
	}
	return string(ops)
}

// mutexOps is the substrate-neutral surface the script drives.
type mutexOps struct {
	lock   func()
	unlock func()
	try    func() bool
}

// runScript executes the script and returns the decision trace: one byte
// per TryLock ('t' success, 'f' failure) and '.' per completed Lock/Unlock
// pair boundary — the observable decisions an algorithm makes.
func runScript(t *testing.T, name, script string, m mutexOps) string {
	t.Helper()
	var trace []byte
	held := false
	for i := 0; i < len(script); i++ {
		switch script[i] {
		case 'L':
			m.lock()
			held = true
			trace = append(trace, '.')
		case 'T':
			ok := m.try()
			if ok == held {
				t.Fatalf("%s: op %d: TryLock=%v while held=%v", name, i, ok, held)
			}
			if ok {
				held = true
				trace = append(trace, 't')
			} else {
				trace = append(trace, 'f')
			}
		case 'U':
			if !held {
				t.Fatalf("bad script: unlock while free at op %d", i)
			}
			m.unlock()
			held = false
		}
	}
	return string(trace)
}

// TestSubstrateConformance runs the same deterministic op script against
// the native and the simulator implementation of every dual-substrate
// mutex and requires byte-identical decision traces — and requires the sim
// trace to be identical across two fresh engines, pinning determinism.
func TestSubstrateConformance(t *testing.T) {
	script := conformanceScript()
	for _, e := range DualSubstrate() {
		if e.simRW {
			continue // the RW dual is covered by TestSubstrateConformanceRW
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			h, err := e.NewNative()
			if err != nil {
				t.Fatal(err)
			}
			native := runScript(t, e.Name+"/native", script, mutexOps{h.Lock, h.Unlock, h.TryLock})

			simTrace := func() string {
				eng := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 1_000_000_000})
				l, err := e.NewSim(eng, "conf/"+e.Name)
				if err != nil {
					t.Fatal(err)
				}
				var out string
				eng.Spawn("w0", -1, func(th *sim.Thread) {
					out = runScript(t, e.Name+"/sim", script, mutexOps{
						func() { l.Lock(th) },
						func() { l.Unlock(th) },
						func() bool { return l.TryLock(th) },
					})
				})
				eng.Run()
				return out
			}
			s1, s2 := simTrace(), simTrace()
			if s1 != s2 {
				t.Fatalf("sim trace not deterministic:\n  %s\n  %s", s1, s2)
			}
			if native != s1 {
				t.Fatalf("substrates diverge on the same script:\n  native: %s\n  sim:    %s", native, s1)
			}
		})
	}
}

// TestSubstrateConformanceRW drives the dual readers-writer entries
// through a fixed read/write script on both substrates; single-threaded,
// the observable contract is that every acquisition completes and the
// native try paths agree with the hold state.
func TestSubstrateConformanceRW(t *testing.T) {
	for _, e := range DualSubstrate() {
		if !e.simRW {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			h, err := e.NewNativeRW()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 32; i++ {
				h.Lock()
				if h.TryLock() || h.TryRLock() {
					t.Fatal("try succeeded against a held write lock")
				}
				h.Unlock()
				h.RLock()
				h.RUnlock()
			}

			mk, ok := e.SimRWMaker()
			if !ok {
				t.Fatalf("no sim RW maker for %s", e.Name)
			}
			eng := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 1_000_000_000})
			l := mk.New(eng, "conf/"+e.Name)
			done := false
			eng.Spawn("w0", -1, func(th *sim.Thread) {
				for i := 0; i < 32; i++ {
					l.Lock(th)
					l.Unlock(th)
					l.RLock(th)
					l.RUnlock(th)
				}
				done = true
			})
			eng.Run()
			if !done {
				t.Fatal("sim RW script did not complete")
			}
		})
	}
}

// TestChaosDualSubstrate extends the seeded chaos torture to every
// dual-substrate mutex: each survives the full fault schedule (abort
// injection only where the algorithm supports it) with zero
// mutual-exclusion violations and a quiet watchdog, and two runs of the
// same seed produce byte-identical fault logs — the determinism contract
// new algorithms must join, not just the ShflLocks.
func TestChaosDualSubstrate(t *testing.T) {
	for _, e := range DualSubstrate() {
		if e.simRW {
			continue // chaos tortures mutex-shaped locks
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			run := func() *chaos.Result {
				cfg := chaos.Defaults(11)
				cfg.Lock = e.SimName()
				if !e.Has(CapAbortable) {
					cfg.AbortFrac = 0
				}
				r, err := chaos.Run(cfg)
				if err != nil {
					t.Fatalf("chaos.Run(%s): %v", e.SimName(), err)
				}
				return r
			}
			a, b := run(), run()
			if a.MutualExclusionViolations != 0 {
				t.Fatalf("%s: %d mutual-exclusion violations under chaos", e.Name, a.MutualExclusionViolations)
			}
			if a.WatchdogFired {
				t.Fatalf("%s: watchdog fired without an injected deadlock: %s", e.Name, a.WatchdogReason)
			}
			if a.Log.String() != b.Log.String() || a.Summary() != b.Summary() {
				t.Fatalf("%s: chaos run not byte-identical across invocations", e.Name)
			}
			if e.Has(CapAbortable) && a.Timeouts == 0 {
				t.Errorf("%s: abort injection armed but no acquisition ever timed out", e.Name)
			}
		})
	}
}
