package lockreg

import (
	"sync"

	"shfllock/internal/core"
	"shfllock/internal/simlocks"
)

// nativeShfl are the ShflLock-family capabilities shared by the native
// spin, mutex and goroutine-native deployments. CapSelfTuning rides along
// because the whole family runs the epoched transition protocol (PolicyBox
// + TransitionLog), which is what the "auto" meta-policy needs.
const nativeShfl = CapAbortable | CapPriority | CapPolicy | CapSelfTuning

// builtinEntries lists every lock with a native substrate. Each dual
// entry's simName ties it to the simulator implementation of the same
// algorithm; the conformance tests hold the two to identical decision
// traces. Legacy flag spellings live on as aliases so no command line or
// committed results file breaks.
func builtinEntries() []Entry {
	return []Entry{
		{
			Name: "shfl-mutex", Aliases: []string{"mutex"},
			Doc:  "blocking ShflLock: TAS word + MCS queue, off-critical-path shuffling, spin-then-park",
			Caps: CapBlocking | nativeShfl,
			native: func() *Native {
				m := &core.Mutex{}
				return &Native{Locker: m, Abort: m, SetPolicy: m.SetPolicy, LockWithPriority: m.LockWithPriority, TransitionLog: m.Transitions}
			},
			simName: "shfllock-b",
		},
		{
			Name: "shfl-spin", Aliases: []string{"spinlock"},
			Doc:  "non-blocking ShflLock: shuffled MCS queue, waiters always spin",
			Caps: nativeShfl,
			native: func() *Native {
				l := &core.SpinLock{}
				return &Native{Locker: l, Abort: l, SetPolicy: l.SetPolicy, LockWithPriority: l.LockWithPriority, TransitionLog: l.Transitions}
			},
			simName: "shfllock-nb",
		},
		{
			Name: "shfl-rw", Aliases: []string{"rwmutex"},
			Doc:  "readers-writer ShflLock: blocking write side, per-socket reader counters",
			Caps: CapRW | CapBlocking | nativeShfl,
			nativeRW: func() *NativeRW {
				l := &core.RWMutex{}
				return &NativeRW{RWLocker: l, Abort: l, SetPolicy: l.SetPolicy, LockWithPriority: l.LockWithPriority, TransitionLog: l.Transitions}
			},
			simName: "shfllock-rw", simRW: true,
		},
		{
			Name: "goro",
			Doc:  "goroutine-native blocking ShflLock: waiters grouped by P, oversubscription-aware park budgets",
			Caps: CapBlocking | CapGoroGrouped | nativeShfl,
			native: func() *Native {
				m := core.NewGoroMutex()
				return &Native{Locker: m, Abort: m, SetPolicy: m.SetPolicy, LockWithPriority: m.LockWithPriority, TransitionLog: m.Transitions}
			},
		},
		{
			Name: "goro-spin",
			Doc:  "goroutine-native non-blocking ShflLock",
			Caps: CapGoroGrouped | nativeShfl,
			native: func() *Native {
				l := core.NewGoroSpinLock()
				return &Native{Locker: l, Abort: l, SetPolicy: l.SetPolicy, LockWithPriority: l.LockWithPriority, TransitionLog: l.Transitions}
			},
		},
		{
			Name: "goro-rw",
			Doc:  "goroutine-native readers-writer ShflLock",
			Caps: CapRW | CapBlocking | CapGoroGrouped | nativeShfl,
			nativeRW: func() *NativeRW {
				l := core.NewGoroRWMutex()
				return &NativeRW{RWLocker: l, Abort: l, SetPolicy: l.SetPolicy, LockWithPriority: l.LockWithPriority, TransitionLog: l.Transitions}
			},
		},
		{
			Name: "sync-mutex", Aliases: []string{"sync.Mutex"},
			Doc:  "the Go runtime's sync.Mutex — the baseline every Go service actually uses",
			Caps: CapBlocking,
			native: func() *Native {
				return &Native{Locker: &sync.Mutex{}}
			},
		},
		{
			Name: "sync-rw", Aliases: []string{"sync.RWMutex"},
			Doc:  "the Go runtime's sync.RWMutex baseline",
			Caps: CapRW | CapBlocking,
			nativeRW: func() *NativeRW {
				return &NativeRW{RWLocker: &sync.RWMutex{}}
			},
		},
		{
			Name: "tas",
			Doc:  "test-and-set spinlock: one word, every waiter hammers it",
			native: func() *Native {
				return &Native{Locker: &core.TASLock{}}
			},
			simName: "tas",
		},
		{
			Name: "ticket",
			Doc:  "ticket lock: FIFO by ticket number, shared-word spinning",
			native: func() *Native {
				return &Native{Locker: &core.TicketLock{}}
			},
			simName: "ticket",
		},
		{
			Name: "mcs",
			Doc:  "MCS queue lock: FIFO, each waiter spins on its own node",
			native: func() *Native {
				return &Native{Locker: &core.MCSLock{}}
			},
			simName: "mcs",
		},
		{
			Name: "fissile",
			Doc:  "Fissile lock: TAS fast path fissioned over an MCS outer lock; only the queue head competes for the inner word",
			native: func() *Native {
				return &Native{Locker: &core.FissileLock{}}
			},
			simName: "fissile",
		},
		{
			Name: "hapax",
			Doc:  "Hapax lock: value-based FIFO queue; unique-per-acquisition values make stale mailboxes harmless (no reclamation protocol)",
			native: func() *Native {
				return &Native{Locker: &core.HapaxLock{}}
			},
			simName: "hapax",
		},
		{
			Name: "reciprocating", Aliases: []string{"recip"},
			Doc: "Reciprocating lock: one arrivals word, LIFO push, segments served in alternating order with bounded bypass",
			native: func() *Native {
				return &Native{Locker: &core.RecipLock{}}
			},
			simName: "reciprocating",
		},
	}
}

// simOnlyCaps adds capabilities (beyond kind-derived CapBlocking) for
// simulator-only makers: the ShflLock variants keep the family's abortable
// acquisition, and the priority deployment its priority path.
var simOnlyCaps = map[string]Cap{
	"shfllock-b-numa": CapAbortable,
	"shfl-base":       CapAbortable,
	"shfl+shuffler":   CapAbortable,
	"shfl+shufflers":  CapAbortable,
	"shfl+qlast":      CapAbortable,
	"shfllock-prio":   CapAbortable | CapPriority,
	"mcstp":           CapAbortable,
}

// simOnlyDocs gives the simulator-only algorithms a matrix row worth
// reading; anything not listed falls back to a generic line.
var simOnlyDocs = map[string]string{
	"stock-qspinlock":   "Linux qspinlock model (pre-CNA mainline)",
	"cna":               "compact NUMA-aware qspinlock: main + secondary queue",
	"cohort":            "lock cohorting: global lock + per-socket locks",
	"hmcs":              "hierarchical MCS with per-socket levels",
	"cst":               "CST: hierarchical blocking lock with dynamic per-socket structures",
	"malthusian":        "Malthusian lock: culls waiters to a passive list",
	"mcstp":             "MCS time-published: waiters abandon on timeout",
	"pthread":           "futex-based pthread mutex model",
	"mutexee":           "Mutexee: spin-then-futex with handover hints",
	"stock-mutex":       "Linux blocking mutex model (optimistic spin + wait list)",
	"stock-rwsem":       "Linux rwsem model",
	"cohort-rw":         "cohort readers-writer lock",
	"cst-rw":            "CST readers-writer lock",
	"mcs-heap":          "MCS with heap-allocated queue nodes (userspace deployment)",
	"cna-heap":          "CNA with heap-allocated queue nodes",
	"hmcs-heap":         "HMCS with heap-allocated queue nodes",
	"shfllock-b-numa":   "blocking ShflLock variant: stealing restricted to the holder's socket",
	"shfl-base":         "ShflLock ablation stage 0: plain TAS+MCS, no shuffling",
	"shfl+shuffler":     "ShflLock ablation stage 1: single persistent shuffler",
	"shfl+shufflers":    "ShflLock ablation stage 2: shuffler role is passed",
	"shfl+qlast":        "ShflLock ablation stage 3 (full): qlast shortcut",
	"shfllock-prio":     "ShflLock deployment with priority-carrying acquisition",
	"stock-rwsem+bravo": "Linux rwsem with the BRAVO distributed-reader front end",
	"shfllock-rw+bravo": "readers-writer ShflLock with the BRAVO reader front end",
}

func simOnlyDoc(name string) string {
	if d, ok := simOnlyDocs[name]; ok {
		return d
	}
	return "simulator-only algorithm from the paper's evaluation"
}

// allEntries assembles the full registry: the hand-written native/dual
// entries, then simulator-only entries generated from the simlocks makers
// so a lock added there is reachable by name everywhere without a second
// registration.
func allEntries() []Entry {
	out := builtinEntries()
	claimed := map[string]bool{}
	for _, e := range out {
		if e.simName != "" {
			claimed[e.simName] = true
		}
	}
	simEntry := func(name string, kind simlocks.Kind, rw bool) Entry {
		caps := simOnlyCaps[name]
		if kind == simlocks.Blocking {
			caps |= CapBlocking
		}
		if rw {
			caps |= CapRW
		}
		return Entry{Name: name, Doc: simOnlyDoc(name), Caps: caps, simName: name, simRW: rw}
	}
	for _, mk := range simlocks.AllMutexMakers() {
		if !claimed[mk.Name] {
			out = append(out, simEntry(mk.Name, mk.Kind, false))
		}
	}
	for _, name := range simlocks.ExtraMutexNames() {
		if mk, ok := simlocks.MakerByName(name); ok && !claimed[name] {
			out = append(out, simEntry(name, mk.Kind, false))
		}
	}
	for _, mk := range simlocks.AllRWMakers() {
		if !claimed[mk.Name] {
			out = append(out, simEntry(mk.Name, mk.Kind, true))
		}
	}
	return out
}
