package lockreg

import (
	"context"
	"time"

	"shfllock/internal/shuffle"
)

// Locker is the mutex-shaped surface every native lock provides.
type Locker interface {
	Lock()
	Unlock()
	TryLock() bool
}

// RWLocker adds the read side.
type RWLocker interface {
	Locker
	RLock()
	RUnlock()
	TryRLock() bool
}

// Abortable is the abortable-acquisition surface (CapAbortable).
type Abortable interface {
	LockTimeout(d time.Duration) bool
	LockContext(ctx context.Context) error
}

// RWAbortable adds abortable read acquisition.
type RWAbortable interface {
	Abortable
	RLockTimeout(d time.Duration) bool
	RLockContext(ctx context.Context) error
}

// Native is a constructed native mutex plus its optional capability
// surfaces. Locker holds the lock itself — the concrete *core.Mutex,
// *sync.Mutex, ... — so instrumentation that discovers extra methods by
// type assertion (lockstat's SetProbe/TryLock probing) is handed the real
// lock, not a wrapper. A surface is nil exactly when the entry lacks the
// corresponding capability.
type Native struct {
	Locker
	Abort            Abortable                     // CapAbortable
	SetPolicy        func(shuffle.Policy)          // CapPolicy
	LockWithPriority func(prio uint64)             // CapPriority
	TransitionLog    func() *shuffle.TransitionLog // CapSelfTuning
}

// NativeRW is the readers-writer counterpart of Native.
type NativeRW struct {
	RWLocker
	Abort            RWAbortable                   // CapAbortable
	SetPolicy        func(shuffle.Policy)          // CapPolicy
	LockWithPriority func(prio uint64)             // CapPriority
	TransitionLog    func() *shuffle.TransitionLog // CapSelfTuning
}
