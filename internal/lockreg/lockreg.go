// Package lockreg is the capability-aware lock registry: the single place
// where a lock algorithm is described once — name, substrates it exists on
// (native Go atomics, the simulator, or both), and the capability set it
// supports — so every binary builds locks by name through the registry
// instead of keeping its own switch statement and help text.
//
// A capability is something a caller may require beyond plain
// Lock/Unlock/TryLock: a read side (CapRW), abortable acquisition with
// timeouts and contexts (CapAbortable), priority-carrying acquisition
// (CapPriority), a pluggable shuffling policy (CapPolicy), parking waiters
// (CapBlocking), or goroutine-native grouping (CapGoroGrouped). Callers
// state what they need at construction time and get a loud error if the
// named lock cannot provide it — a flag typo or an unsupported
// flag/algorithm combination fails before any goroutine runs, never
// silently degrades.
package lockreg

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
)

// Cap is a bitmask of lock capabilities.
type Cap uint16

const (
	// CapRW: the lock has a read side (RLock/RUnlock/TryRLock).
	CapRW Cap = 1 << iota
	// CapBlocking: waiters may park instead of burning a P/CPU.
	CapBlocking
	// CapAbortable: acquisitions can give up (LockTimeout/LockContext).
	CapAbortable
	// CapPriority: acquisitions can carry a priority (LockWithPriority).
	CapPriority
	// CapPolicy: the shuffling policy is pluggable (SetPolicy).
	CapPolicy
	// CapGoroGrouped: waiters are grouped by goroutine locality (approximate
	// P) instead of socket, with oversubscription-aware park budgets.
	CapGoroGrouped
	// CapSelfTuning: the lock runs the epoched policy-transition protocol —
	// live SetPolicy at any instant, a TransitionLog of (epoch, from, to,
	// trigger) — and therefore accepts the "auto" meta-policy that closes
	// the lockstat loop.
	CapSelfTuning

	capAll = CapRW | CapBlocking | CapAbortable | CapPriority | CapPolicy | CapGoroGrouped | CapSelfTuning
)

// capNames orders the capability letters used in help text and the README
// matrix.
var capNames = []struct {
	c    Cap
	name string
}{
	{CapRW, "rw"},
	{CapBlocking, "blocking"},
	{CapAbortable, "abortable"},
	{CapPriority, "priority"},
	{CapPolicy, "policy"},
	{CapGoroGrouped, "goro-grouped"},
	{CapSelfTuning, "self-tuning"},
}

// Has reports whether c includes every bit of want.
func (c Cap) Has(want Cap) bool { return c&want == want }

// String renders the set as "rw+blocking+..." ("-" for the empty set).
func (c Cap) String() string {
	var parts []string
	for _, cn := range capNames {
		if c.Has(cn.c) {
			parts = append(parts, cn.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "+")
}

// Entry describes one lock algorithm: its canonical name, the substrates
// it is implemented on, and the capabilities those implementations
// provide. Entries are registered once (entries.go) and queried from every
// binary; an entry with both constructors is a dual-substrate lock whose
// two implementations are held to the same decision trace by the
// conformance tests.
type Entry struct {
	Name    string   // canonical name, the one flags and reports use
	Aliases []string // accepted spellings (legacy flag values, sim names)
	Doc     string   // one-line description for -list output and the README
	Caps    Cap

	native   func() *Native   // nil: no native mutex-shaped substrate
	nativeRW func() *NativeRW // nil: no native RW substrate
	simName  string           // simlocks maker name; "" = no sim substrate
	simRW    bool             // simName names an RW maker, not a mutex maker
}

// Has reports whether the entry supports every requested capability.
func (e Entry) Has(c Cap) bool { return e.Caps.Has(c) }

// HasNative reports whether the lock exists on the native substrate.
func (e Entry) HasNative() bool { return e.native != nil || e.nativeRW != nil }

// HasSim reports whether the lock exists on the simulator substrate.
func (e Entry) HasSim() bool { return e.simName != "" }

// SimName returns the simlocks maker name backing this entry ("" if none).
func (e Entry) SimName() string { return e.simName }

// Substrates renders where the lock is implemented: "native+sim",
// "native", or "sim".
func (e Entry) Substrates() string {
	switch {
	case e.HasNative() && e.HasSim():
		return "native+sim"
	case e.HasNative():
		return "native"
	default:
		return "sim"
	}
}

// missing returns the requested capabilities the entry lacks.
func (e Entry) missing(need []Cap) Cap {
	var m Cap
	for _, c := range need {
		m |= c &^ e.Caps
	}
	return m
}

// capErr is the loud construction-time failure for an unsupported
// capability request.
func (e Entry) capErr(m Cap) error {
	return fmt.Errorf("lock %q does not support %s (its capabilities: %s)", e.Name, m, e.Caps)
}

// NewNative builds the native lock, requiring the given capabilities. For
// an RW entry the returned handle is the write side of the RW lock (an RW
// lock is a superset of a mutex); request CapRW via NewNativeRW to get the
// read side too.
func (e Entry) NewNative(need ...Cap) (*Native, error) {
	if m := e.missing(need); m != 0 {
		return nil, e.capErr(m)
	}
	if e.native != nil {
		return e.native(), nil
	}
	if e.nativeRW != nil {
		h := e.nativeRW()
		return &Native{Locker: h.RWLocker, Abort: h.Abort, SetPolicy: h.SetPolicy, LockWithPriority: h.LockWithPriority, TransitionLog: h.TransitionLog}, nil
	}
	return nil, fmt.Errorf("lock %q has no native implementation (substrates: %s)", e.Name, e.Substrates())
}

// NewNativeRW builds the native readers-writer lock, requiring the given
// capabilities (CapRW is implied).
func (e Entry) NewNativeRW(need ...Cap) (*NativeRW, error) {
	if m := e.missing(append(need, CapRW)); m != 0 {
		return nil, e.capErr(m)
	}
	if e.nativeRW == nil {
		return nil, fmt.Errorf("lock %q has no native implementation (substrates: %s)", e.Name, e.Substrates())
	}
	return e.nativeRW(), nil
}

// SimMaker returns the simulator mutex maker backing this entry.
func (e Entry) SimMaker() (simlocks.Maker, bool) {
	if e.simName == "" || e.simRW {
		return simlocks.Maker{}, false
	}
	return simlocks.MakerByName(e.simName)
}

// SimRWMaker returns the simulator RW maker backing this entry.
func (e Entry) SimRWMaker() (simlocks.RWMaker, bool) {
	if e.simName == "" || !e.simRW {
		return simlocks.RWMaker{}, false
	}
	return simlocks.RWMakerByName(e.simName)
}

// NewSim builds the simulator lock on the given engine, requiring the
// given capabilities.
func (e Entry) NewSim(eng *sim.Engine, tag string, need ...Cap) (simlocks.Lock, error) {
	if m := e.missing(need); m != 0 {
		return nil, e.capErr(m)
	}
	mk, ok := e.SimMaker()
	if !ok {
		return nil, fmt.Errorf("lock %q has no simulator mutex implementation (substrates: %s)", e.Name, e.Substrates())
	}
	return mk.New(eng, tag), nil
}

var (
	buildOnce sync.Once
	regAll    []Entry
	regIndex  map[string]int // canonical names, aliases and sim names
)

func build() {
	buildOnce.Do(func() {
		regAll = allEntries()
		regIndex = map[string]int{}
		add := func(name string, i int) {
			if name == "" {
				return
			}
			if j, dup := regIndex[name]; dup && j != i {
				panic(fmt.Sprintf("lockreg: name %q claimed by both %q and %q",
					name, regAll[j].Name, regAll[i].Name))
			}
			regIndex[name] = i
		}
		for i, e := range regAll {
			add(e.Name, i)
			for _, a := range e.Aliases {
				add(a, i)
			}
			// The sim maker name always resolves too, so a -chaos-lock value
			// or an old results file keyed by sim name finds its entry.
			add(e.simName, i)
		}
	})
}

// All returns every registered entry, in registration order (dual and
// native entries first, then the simulator-only algorithms).
func All() []Entry {
	build()
	return append([]Entry(nil), regAll...)
}

// Find resolves a lock by canonical name, alias, or sim maker name.
func Find(name string) (Entry, bool) {
	build()
	if i, ok := regIndex[name]; ok {
		return regAll[i], true
	}
	return Entry{}, false
}

// List returns the entries supporting every given capability.
func List(need ...Cap) []Entry {
	var out []Entry
	for _, e := range All() {
		if m := e.missing(need); m == 0 {
			out = append(out, e)
		}
	}
	return out
}

// NativeNames returns the canonical names of every native-substrate lock,
// in registration order — the value set of a native binary's -lock flag.
func NativeNames() []string {
	var out []string
	for _, e := range All() {
		if e.HasNative() {
			out = append(out, e.Name)
		}
	}
	return out
}

// SimNames returns the canonical names of every simulator-substrate mutex,
// in registration order.
func SimNames() []string {
	var out []string
	for _, e := range All() {
		if e.HasSim() && !e.simRW {
			out = append(out, e.Name)
		}
	}
	return out
}

// DualSubstrate returns the entries implemented on both substrates — the
// set the conformance and chaos differential gates iterate.
func DualSubstrate() []Entry {
	var out []Entry
	for _, e := range All() {
		if e.HasNative() && e.HasSim() {
			out = append(out, e)
		}
	}
	return out
}

// NativeFlagHelp returns the -lock usage string of a native binary,
// generated from the registry so help text cannot drift from what Find
// accepts.
func NativeFlagHelp() string { return strings.Join(NativeNames(), "|") }

// UnknownNative formats the uniform unknown-lock error for native
// binaries: the bad name plus everything the registry would have accepted.
func UnknownNative(name string) error {
	return fmt.Errorf("unknown lock %q (native locks: %s)", name, NativeFlagHelp())
}

// MatrixMarkdown renders the lock matrix as a Markdown table — the README
// section between the lockreg markers is generated from (and tested
// against) this.
func MatrixMarkdown() string {
	var b strings.Builder
	b.WriteString("| lock | substrates | capabilities | description |\n")
	b.WriteString("|------|------------|--------------|-------------|\n")
	for _, e := range All() {
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", e.Name, e.Substrates(), e.Caps, e.Doc)
	}
	return b.String()
}

// sortedNames returns all resolvable names (canonical + aliases + sim),
// for error messages and tests.
func sortedNames() []string {
	build()
	out := make([]string, 0, len(regIndex))
	for name := range regIndex {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
