package lockreg

import (
	"os"
	"strings"
	"testing"
)

// TestFindResolvesAliasesAndSimNames pins the naming contract: legacy flag
// spellings, stdlib spellings and simulator maker names all resolve to the
// canonical entry, so no command line or committed artifact breaks when a
// binary moves onto the registry.
func TestFindResolvesAliasesAndSimNames(t *testing.T) {
	want := map[string]string{
		"mutex":         "shfl-mutex",
		"spinlock":      "shfl-spin",
		"rwmutex":       "shfl-rw",
		"sync.Mutex":    "sync-mutex",
		"sync.RWMutex":  "sync-rw",
		"shfllock-b":    "shfl-mutex", // sim maker name of the same algorithm
		"shfllock-nb":   "shfl-spin",
		"shfllock-rw":   "shfl-rw",
		"recip":         "reciprocating",
		"fissile":       "fissile",
		"cna":           "cna", // simulator-only entries resolve by their own name
		"shfl+qlast":    "shfl+qlast",
		"shfllock-prio": "shfllock-prio",
	}
	for name, canonical := range want {
		e, ok := Find(name)
		if !ok {
			t.Fatalf("Find(%q) failed; resolvable names: %v", name, sortedNames())
		}
		if e.Name != canonical {
			t.Errorf("Find(%q) = %q, want %q", name, e.Name, canonical)
		}
	}
	if _, ok := Find("no-such-lock"); ok {
		t.Error("Find accepted a nonexistent name")
	}
}

// TestCapabilityEnforcement is the satellite-3 contract: requesting a
// capability the algorithm lacks fails loudly at construction, naming both
// the lock and the missing capability.
func TestCapabilityEnforcement(t *testing.T) {
	cases := []struct {
		lock string
		need Cap
		want string // substring of the error
	}{
		{"hapax", CapPriority, "priority"},
		{"hapax", CapAbortable, "abortable"},
		{"sync-mutex", CapAbortable, "abortable"},
		{"tas", CapPolicy, "policy"},
		{"fissile", CapBlocking, "blocking"},
		{"reciprocating", CapPriority | CapPolicy, "priority+policy"},
	}
	for _, c := range cases {
		e, ok := Find(c.lock)
		if !ok {
			t.Fatalf("Find(%q) failed", c.lock)
		}
		h, err := e.NewNative(c.need)
		if err == nil || h != nil {
			t.Fatalf("%s: NewNative(%s) should have failed, got handle=%v", c.lock, c.need, h)
		}
		if !strings.Contains(err.Error(), c.lock) || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name the lock and the missing capability %q", c.lock, err, c.want)
		}
	}
	// The same gate guards the simulator substrate.
	e, _ := Find("hapax")
	if _, err := e.NewSim(nil, "t", CapPriority); err == nil {
		t.Error("sim hapax with CapPriority should have failed before touching the engine")
	}
	// And the RW surface: a mutex-shaped lock cannot produce a read side.
	if _, err := e.NewNativeRW(); err == nil {
		t.Error("NewNativeRW on hapax should have failed (no read side)")
	}
}

// TestMissingSubstrateFailsLoudly: a simulator-only name is not silently
// accepted by a native binary, and vice versa.
func TestMissingSubstrateFailsLoudly(t *testing.T) {
	e, ok := Find("cna")
	if !ok {
		t.Fatal("Find(cna) failed")
	}
	if _, err := e.NewNative(); err == nil || !strings.Contains(err.Error(), "no native") {
		t.Errorf("NewNative on sim-only cna: got %v", err)
	}
	g, _ := Find("goro")
	if _, err := g.NewSim(nil, "t"); err == nil || !strings.Contains(err.Error(), "no simulator") {
		t.Errorf("NewSim on native-only goro: got %v", err)
	}
}

// TestNativeConstruction builds every native entry and checks the handle's
// capability surfaces are populated exactly when the entry claims them.
func TestNativeConstruction(t *testing.T) {
	for _, e := range List() {
		if !e.HasNative() {
			continue
		}
		if e.Has(CapRW) {
			h, err := e.NewNativeRW()
			if err != nil {
				t.Fatalf("%s: NewNativeRW: %v", e.Name, err)
			}
			h.Lock()
			h.Unlock()
			h.RLock()
			h.RUnlock()
			if !h.TryLock() {
				t.Fatalf("%s: TryLock failed on a free lock", e.Name)
			}
			h.Unlock()
			if (h.Abort != nil) != e.Has(CapAbortable) {
				t.Errorf("%s: Abort surface %v, capability says %v", e.Name, h.Abort != nil, e.Has(CapAbortable))
			}
			if (h.SetPolicy != nil) != e.Has(CapPolicy) {
				t.Errorf("%s: SetPolicy surface mismatch", e.Name)
			}
			// An RW entry also builds as a plain mutex (write side).
			if _, err := e.NewNative(); err != nil {
				t.Errorf("%s: NewNative on RW entry: %v", e.Name, err)
			}
			continue
		}
		h, err := e.NewNative()
		if err != nil {
			t.Fatalf("%s: NewNative: %v", e.Name, err)
		}
		h.Lock()
		h.Unlock()
		if !h.TryLock() {
			t.Fatalf("%s: TryLock failed on a free lock", e.Name)
		}
		h.Unlock()
		if (h.Abort != nil) != e.Has(CapAbortable) {
			t.Errorf("%s: Abort surface %v, capability says %v", e.Name, h.Abort != nil, e.Has(CapAbortable))
		}
		if (h.SetPolicy != nil) != e.Has(CapPolicy) {
			t.Errorf("%s: SetPolicy surface mismatch", e.Name)
		}
		if (h.LockWithPriority != nil) != e.Has(CapPriority) {
			t.Errorf("%s: LockWithPriority surface mismatch", e.Name)
		}
	}
}

// TestListFilters: List(caps...) returns exactly the entries supporting
// the request, and the convenience name lists agree with it.
func TestListFilters(t *testing.T) {
	for _, e := range List(CapRW) {
		if !e.Has(CapRW) {
			t.Errorf("List(CapRW) returned %s without the capability", e.Name)
		}
	}
	if len(List(CapAbortable, CapGoroGrouped)) == 0 {
		t.Error("no goroutine-grouped abortable locks — the goro family is gone?")
	}
	nn := NativeNames()
	if len(nn) == 0 || nn[0] != "shfl-mutex" {
		t.Fatalf("NativeNames() = %v", nn)
	}
	for _, name := range nn {
		e, ok := Find(name)
		if !ok || !e.HasNative() {
			t.Errorf("NativeNames lists %q but Find/HasNative disagree", name)
		}
	}
	if !strings.Contains(NativeFlagHelp(), "fissile") {
		t.Errorf("flag help is missing the new algorithms: %s", NativeFlagHelp())
	}
}

// TestDualSubstrateSet pins the set of algorithms implemented on both
// substrates — the set the conformance and chaos gates sweep.
func TestDualSubstrateSet(t *testing.T) {
	got := map[string]bool{}
	for _, e := range DualSubstrate() {
		got[e.Name] = true
		if e.simRW {
			if _, ok := e.SimRWMaker(); !ok {
				t.Errorf("%s: SimRWMaker missing for sim name %q", e.Name, e.SimName())
			}
			continue
		}
		if _, ok := e.SimMaker(); !ok {
			t.Errorf("%s: SimMaker missing for sim name %q", e.Name, e.SimName())
		}
	}
	for _, want := range []string{"shfl-mutex", "shfl-spin", "shfl-rw", "tas", "ticket", "mcs", "fissile", "hapax", "reciprocating"} {
		if !got[want] {
			t.Errorf("dual-substrate set lost %q (have %v)", want, got)
		}
	}
}

// TestMatrixMatchesREADME is the satellite-3 drift gate: the lock matrix
// in README.md between the lockreg markers must be exactly what
// MatrixMarkdown renders, so the documented capability matrix can never
// disagree with what the registry enforces.
func TestMatrixMatchesREADME(t *testing.T) {
	b, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const start = "<!-- lockreg:matrix:start -->"
	const end = "<!-- lockreg:matrix:end -->"
	text := string(b)
	i := strings.Index(text, start)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s / %s markers", start, end)
	}
	got := strings.TrimSpace(text[i+len(start) : j])
	want := strings.TrimSpace(MatrixMarkdown())
	if got != want {
		t.Errorf("README lock matrix is out of date.\nRegenerate the section between the markers with lockreg.MatrixMarkdown().\n--- README ---\n%s\n--- registry ---\n%s", got, want)
	}
}
