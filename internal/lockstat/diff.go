package lockstat

// Interval snapshot/diff support: the adaptive layer in internal/kvserver
// and the /debug/lockstat endpoint both want *rates* — what a lock site did
// over the last polling interval — while Site.Report() accumulates lifetime
// totals. Diff subtracts one report snapshot from a later one of the same
// site, so a controller keeps the previous snapshot and works on deltas.

// Diff returns the activity between two snapshots of the same site:
// cur minus prev, counter by counter and histogram bucket by bucket. If any
// counter in cur is smaller than in prev (the site was Reset between the
// snapshots), the diff degenerates to cur itself — after a reset, cur *is*
// the interval activity. Name and Substrate are taken from cur.
//
// Every subtraction is clamped at zero. resetBetween probes only a handful
// of counters, so a site that was reset or re-registered under the same
// name between the snapshots can slip past it with some counters above the
// old values and others below — and an unsigned underflow would then hand
// a consumer (the kvserver adaptive controller diffs intervals exactly
// this way, across lock handovers that re-register sites) a delta of
// ~2^64, which reads as an abort storm or a park flood and mis-triggers
// adaptation. A clamped counter under-reports one interval instead.
func Diff(prev, cur Report) Report {
	if resetBetween(prev, cur) {
		return withShuffleEff(cur)
	}
	d := Report{
		Name:           cur.Name,
		Substrate:      cur.Substrate,
		Acquires:       sub(cur.Acquires, prev.Acquires),
		ReadAcquires:   sub(cur.ReadAcquires, prev.ReadAcquires),
		Contended:      sub(cur.Contended, prev.Contended),
		TrySuccess:     sub(cur.TrySuccess, prev.TrySuccess),
		TryFail:        sub(cur.TryFail, prev.TryFail),
		Steals:         sub(cur.Steals, prev.Steals),
		Handoffs:       sub(cur.Handoffs, prev.Handoffs),
		Parks:          sub(cur.Parks, prev.Parks),
		WakeupsInCS:    sub(cur.WakeupsInCS, prev.WakeupsInCS),
		WakeupsOffCS:   sub(cur.WakeupsOffCS, prev.WakeupsOffCS),
		Shuffles:       sub(cur.Shuffles, prev.Shuffles),
		ShuffleScanned: sub(cur.ShuffleScanned, prev.ShuffleScanned),
		ShuffleMoves:   sub(cur.ShuffleMoves, prev.ShuffleMoves),
		Aborts:         sub(cur.Aborts, prev.Aborts),
		Reclaims:       sub(cur.Reclaims, prev.Reclaims),
		DynamicAllocs:  sub(cur.DynamicAllocs, prev.DynamicAllocs),
		Wait:           diffHist(prev.Wait, cur.Wait),
		Hold:           diffHist(prev.Hold, cur.Hold),
	}
	if len(cur.Policies) > 0 {
		d.Policies = make(map[string]PolicyShuffleStats, len(cur.Policies))
		for name, c := range cur.Policies {
			p := prev.Policies[name]
			d.Policies[name] = PolicyShuffleStats{
				Rounds:  sub(c.Rounds, p.Rounds),
				Scanned: sub(c.Scanned, p.Scanned),
				Moved:   sub(c.Moved, p.Moved),
			}
		}
	}
	return withShuffleEff(d)
}

// withShuffleEff computes the interval's grouped-wakeup yield per shuffling
// round. The inputs are already clamped deltas, so a site reset between
// snapshots cannot produce a ~2^64 numerator here; zero rounds yields zero
// rather than a division blow-up.
func withShuffleEff(d Report) Report {
	if d.Shuffles > 0 {
		d.ShuffleEff = float64(d.WakeupsOffCS) / float64(d.Shuffles)
	}
	return d
}

// sub is saturating subtraction: a counter running backwards is site churn,
// not negative activity.
func sub(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// resetBetween detects a Reset between the snapshots: any counter running
// backwards. Counters are monotone on a live site, so one decrease is proof.
func resetBetween(prev, cur Report) bool {
	if cur.Acquires < prev.Acquires || cur.Contended < prev.Contended ||
		cur.ReadAcquires < prev.ReadAcquires || cur.Parks < prev.Parks ||
		cur.Aborts < prev.Aborts || cur.Shuffles < prev.Shuffles {
		return true
	}
	if cur.Wait != nil && prev.Wait != nil && cur.Wait.Count < prev.Wait.Count {
		return true
	}
	return false
}

// diffHist subtracts histogram snapshots bucket-wise; nil means empty.
// Returns nil when nothing happened in the interval.
func diffHist(prev, cur *HistSnapshot) *HistSnapshot {
	if cur == nil {
		return nil
	}
	if prev == nil {
		out := &HistSnapshot{Count: cur.Count, SumNs: cur.SumNs, Buckets: append([]uint64(nil), cur.Buckets...)}
		return out
	}
	d := &HistSnapshot{SumNs: sub(cur.SumNs, prev.SumNs), Buckets: make([]uint64, len(cur.Buckets))}
	for i, v := range cur.Buckets {
		var p uint64
		if i < len(prev.Buckets) {
			p = prev.Buckets[i]
		}
		d.Buckets[i] = sub(v, p)
		d.Count += d.Buckets[i]
	}
	if d.Count == 0 {
		return nil
	}
	last := 0
	for i, v := range d.Buckets {
		if v != 0 {
			last = i
		}
	}
	d.Buckets = d.Buckets[:last+1]
	return d
}

// DiffAll matches reports by (name, substrate) and diffs each pair. Sites
// present only in cur (registered mid-interval) appear as their cur report;
// sites present only in prev are dropped. Output order follows cur.
func DiffAll(prev, cur []Report) []Report {
	type key struct{ name, sub string }
	idx := make(map[key]Report, len(prev))
	for _, r := range prev {
		idx[key{r.Name, r.Substrate}] = r
	}
	out := make([]Report, 0, len(cur))
	for _, r := range cur {
		if p, ok := idx[key{r.Name, r.Substrate}]; ok {
			out = append(out, Diff(p, r))
		} else {
			out = append(out, r)
		}
	}
	return out
}
