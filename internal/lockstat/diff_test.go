package lockstat

import (
	"testing"
	"time"
)

// TestDiffReportsIntervalActivity drives a site through two bursts and
// checks that Diff over snapshots taken around the second burst reports
// exactly that burst, counters and histogram mass alike.
func TestDiffReportsIntervalActivity(t *testing.T) {
	r := NewRegistry()
	s := r.Site("kv/shard00")

	burst := func(n int, waitNs int64, reads, contended, aborts int) {
		for i := 0; i < n; i++ {
			s.RecordAcquire(waitNs, i < reads)
		}
		for i := 0; i < contended; i++ {
			s.RecordContended()
		}
		for i := 0; i < aborts; i++ {
			s.RecordAbort()
		}
	}

	burst(100, 0, 10, 5, 1)
	prev := s.Report()
	burst(40, 2048, 25, 7, 3)
	cur := s.Report()

	d := Diff(prev, cur)
	if d.Acquires != 40 {
		t.Errorf("interval acquires = %d, want 40", d.Acquires)
	}
	if d.ReadAcquires != 25 {
		t.Errorf("interval reads = %d, want 25", d.ReadAcquires)
	}
	if d.Contended != 7 {
		t.Errorf("interval contended = %d, want 7", d.Contended)
	}
	if d.Aborts != 3 {
		t.Errorf("interval aborts = %d, want 3", d.Aborts)
	}
	if d.Wait == nil || d.Wait.Count != 40 {
		t.Fatalf("interval wait mass = %v, want 40", d.Wait)
	}
	// All 40 interval samples were ~2µs, so the interval p50 must land in
	// the 2048ns bucket even though the lifetime histogram is dominated by
	// the zero-wait first burst.
	if p := d.Wait.Percentile(0.50); p < 1024 || p > 4096 {
		t.Errorf("interval wait p50 = %.0f ns, want ~2048 (lifetime p50 would be 0)", p)
	}
	if msg := d.Consistent(); msg != "" {
		t.Errorf("interval report inconsistent: %s", msg)
	}

	// A second diff over a quiet interval is all zeros with no histograms.
	d2 := Diff(cur, s.Report())
	if d2.Acquires != 0 || d2.Wait != nil || d2.Hold != nil {
		t.Errorf("quiet interval diff not empty: %+v", d2)
	}
}

// TestDiffAfterReset: a Reset between snapshots must not produce underflowed
// counters; the diff degenerates to the current (post-reset) report.
func TestDiffAfterReset(t *testing.T) {
	r := NewRegistry()
	s := r.Site("x")
	for i := 0; i < 50; i++ {
		s.RecordAcquire(100, false)
	}
	prev := s.Report()
	r.Reset()
	for i := 0; i < 3; i++ {
		s.RecordAcquire(100, false)
	}
	d := Diff(prev, s.Report())
	if d.Acquires != 3 {
		t.Errorf("post-reset diff acquires = %d, want 3", d.Acquires)
	}
}

// TestDiffAll matches by name, passes through sites that appeared
// mid-interval, and drops sites that vanished.
func TestDiffAll(t *testing.T) {
	r := NewRegistry()
	a, b := r.Site("a"), r.Site("b")
	a.RecordAcquire(0, false)
	b.RecordAcquire(0, false)
	prev := r.Reports()

	a.RecordAcquire(500, false)
	c := r.Site("c") // registered mid-interval
	c.RecordAcquire(0, false)
	cur := r.Reports()

	out := DiffAll(prev, cur)
	byName := map[string]Report{}
	for _, rep := range out {
		byName[rep.Name] = rep
	}
	if byName["a"].Acquires != 1 {
		t.Errorf("a interval acquires = %d, want 1", byName["a"].Acquires)
	}
	if byName["b"].Acquires != 0 {
		t.Errorf("b interval acquires = %d, want 0", byName["b"].Acquires)
	}
	if byName["c"].Acquires != 1 {
		t.Errorf("c (new site) acquires = %d, want 1", byName["c"].Acquires)
	}
}

// TestRecordAcquireDisabled: direct recording honors the registry switch.
func TestRecordAcquireDisabled(t *testing.T) {
	r := NewRegistry()
	s := r.Site("off")
	r.SetEnabled(false)
	s.RecordAcquire(100, true)
	s.RecordContended()
	s.RecordAbort()
	s.RecordHold(int64(time.Microsecond))
	rep := s.Report()
	if rep.Acquires != 0 || rep.ReadAcquires != 0 || rep.Contended != 0 || rep.Aborts != 0 || rep.Hold != nil {
		t.Errorf("disabled registry still recorded: %+v", rep)
	}
}
