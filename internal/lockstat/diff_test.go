package lockstat

import (
	"testing"
	"time"
)

// TestDiffReportsIntervalActivity drives a site through two bursts and
// checks that Diff over snapshots taken around the second burst reports
// exactly that burst, counters and histogram mass alike.
func TestDiffReportsIntervalActivity(t *testing.T) {
	r := NewRegistry()
	s := r.Site("kv/shard00")

	burst := func(n int, waitNs int64, reads, contended, aborts int) {
		for i := 0; i < n; i++ {
			s.RecordAcquire(waitNs, i < reads)
		}
		for i := 0; i < contended; i++ {
			s.RecordContended()
		}
		for i := 0; i < aborts; i++ {
			s.RecordAbort()
		}
	}

	burst(100, 0, 10, 5, 1)
	prev := s.Report()
	burst(40, 2048, 25, 7, 3)
	cur := s.Report()

	d := Diff(prev, cur)
	if d.Acquires != 40 {
		t.Errorf("interval acquires = %d, want 40", d.Acquires)
	}
	if d.ReadAcquires != 25 {
		t.Errorf("interval reads = %d, want 25", d.ReadAcquires)
	}
	if d.Contended != 7 {
		t.Errorf("interval contended = %d, want 7", d.Contended)
	}
	if d.Aborts != 3 {
		t.Errorf("interval aborts = %d, want 3", d.Aborts)
	}
	if d.Wait == nil || d.Wait.Count != 40 {
		t.Fatalf("interval wait mass = %v, want 40", d.Wait)
	}
	// All 40 interval samples were ~2µs, so the interval p50 must land in
	// the 2048ns bucket even though the lifetime histogram is dominated by
	// the zero-wait first burst.
	if p := d.Wait.Percentile(0.50); p < 1024 || p > 4096 {
		t.Errorf("interval wait p50 = %.0f ns, want ~2048 (lifetime p50 would be 0)", p)
	}
	if msg := d.Consistent(); msg != "" {
		t.Errorf("interval report inconsistent: %s", msg)
	}

	// A second diff over a quiet interval is all zeros with no histograms.
	d2 := Diff(cur, s.Report())
	if d2.Acquires != 0 || d2.Wait != nil || d2.Hold != nil {
		t.Errorf("quiet interval diff not empty: %+v", d2)
	}
}

// TestDiffAfterReset: a Reset between snapshots must not produce underflowed
// counters; the diff degenerates to the current (post-reset) report.
func TestDiffAfterReset(t *testing.T) {
	r := NewRegistry()
	s := r.Site("x")
	for i := 0; i < 50; i++ {
		s.RecordAcquire(100, false)
	}
	prev := s.Report()
	r.Reset()
	for i := 0; i < 3; i++ {
		s.RecordAcquire(100, false)
	}
	d := Diff(prev, s.Report())
	if d.Acquires != 3 {
		t.Errorf("post-reset diff acquires = %d, want 3", d.Acquires)
	}
}

// TestDiffSiteChurnClampsDeltas is the regression test for negative
// interval deltas under site churn: a site reset or re-registered under
// the same name between snapshots can evade resetBetween (which probes
// only a few counters) with some counters above the old lifetime totals
// and others below. Before the clamp, the "below" counters underflowed to
// ~2^64 — the kvserver controller would read such an interval as an abort
// storm or park flood and mis-trigger adaptation. Every per-counter delta
// must clamp at zero instead.
func TestDiffSiteChurnClampsDeltas(t *testing.T) {
	prev := Report{
		Name:     "kv/shard00",
		Acquires: 100, Contended: 20, Parks: 10,
		Handoffs: 50, Steals: 20, WakeupsOffCS: 9, Reclaims: 4,
		Policies: map[string]PolicyShuffleStats{"numa": {Rounds: 30, Scanned: 90, Moved: 12}},
		Wait:     &HistSnapshot{Count: 100, SumNs: 5000, Buckets: []uint64{60, 40}},
	}
	// The re-registered site's lifetime: busier than the old one on every
	// counter resetBetween probes (so churn goes undetected), quieter on
	// the rest (so the unclamped subtraction would underflow).
	cur := Report{
		Name:     "kv/shard00",
		Acquires: 150, Contended: 25, Parks: 12,
		Handoffs: 5, Steals: 2, WakeupsOffCS: 1, Reclaims: 0,
		Policies: map[string]PolicyShuffleStats{"numa": {Rounds: 3, Scanned: 9, Moved: 1}},
		Wait:     &HistSnapshot{Count: 150, SumNs: 800, Buckets: []uint64{140, 10}},
	}

	d := Diff(prev, cur)
	if d.Acquires != 50 {
		t.Errorf("Acquires delta = %d, want 50", d.Acquires)
	}
	for name, got := range map[string]uint64{
		"Handoffs":     d.Handoffs,
		"Steals":       d.Steals,
		"WakeupsOffCS": d.WakeupsOffCS,
		"Reclaims":     d.Reclaims,
	} {
		if got != 0 {
			t.Errorf("%s delta = %d, want 0 (clamped); churn produced a negative interval", name, got)
		}
	}
	if p := d.Policies["numa"]; p.Rounds != 0 || p.Scanned != 0 || p.Moved != 0 {
		t.Errorf("policy deltas = %+v, want all 0 (clamped)", p)
	}
	// Histogram: bucket 0 grew by 80, bucket 1 shrank; the shrink clamps
	// to 0 and the interval mass is the sum of clamped buckets.
	if d.Wait == nil {
		t.Fatal("Wait diff = nil, want clamped histogram")
	}
	if d.Wait.Buckets[0] != 80 {
		t.Errorf("Wait bucket 0 delta = %d, want 80", d.Wait.Buckets[0])
	}
	if len(d.Wait.Buckets) > 1 && d.Wait.Buckets[1] != 0 {
		t.Errorf("Wait bucket 1 delta = %d, want 0 (clamped)", d.Wait.Buckets[1])
	}
	if d.Wait.Count != 80 {
		t.Errorf("Wait count = %d, want 80 (sum of clamped buckets)", d.Wait.Count)
	}
	if d.Wait.SumNs != 0 {
		t.Errorf("Wait SumNs = %d, want 0 (clamped)", d.Wait.SumNs)
	}
}

// TestDiffAll matches by name, passes through sites that appeared
// mid-interval, and drops sites that vanished.
func TestDiffAll(t *testing.T) {
	r := NewRegistry()
	a, b := r.Site("a"), r.Site("b")
	a.RecordAcquire(0, false)
	b.RecordAcquire(0, false)
	prev := r.Reports()

	a.RecordAcquire(500, false)
	c := r.Site("c") // registered mid-interval
	c.RecordAcquire(0, false)
	cur := r.Reports()

	out := DiffAll(prev, cur)
	byName := map[string]Report{}
	for _, rep := range out {
		byName[rep.Name] = rep
	}
	if byName["a"].Acquires != 1 {
		t.Errorf("a interval acquires = %d, want 1", byName["a"].Acquires)
	}
	if byName["b"].Acquires != 0 {
		t.Errorf("b interval acquires = %d, want 0", byName["b"].Acquires)
	}
	if byName["c"].Acquires != 1 {
		t.Errorf("c (new site) acquires = %d, want 1", byName["c"].Acquires)
	}
}

// TestRecordAcquireDisabled: direct recording honors the registry switch.
func TestRecordAcquireDisabled(t *testing.T) {
	r := NewRegistry()
	s := r.Site("off")
	r.SetEnabled(false)
	s.RecordAcquire(100, true)
	s.RecordContended()
	s.RecordAbort()
	s.RecordHold(int64(time.Microsecond))
	rep := s.Report()
	if rep.Acquires != 0 || rep.ReadAcquires != 0 || rep.Contended != 0 || rep.Aborts != 0 || rep.Hold != nil {
		t.Errorf("disabled registry still recorded: %+v", rep)
	}
}
