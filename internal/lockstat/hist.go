package lockstat

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log2 nanosecond buckets: bucket 0 holds
// sub-nanosecond (effectively zero-wait) samples, bucket b holds samples in
// [2^(b-1), 2^b) ns, and the last bucket absorbs everything from ~9 minutes
// up.
const histBuckets = 40

// Hist is a lock-free log2-bucketed histogram of durations in nanoseconds.
// Recording is one atomic add on the bucket (plus one on the sum for
// non-zero samples), so it is cheap enough for per-acquisition use. The
// zero value is an empty histogram.
type Hist struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds across all samples
}

// bucketOf maps a duration to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) // 2^(b-1) <= ns < 2^b
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one sample of ns nanoseconds.
func (h *Hist) Record(ns int64) {
	h.buckets[bucketOf(ns)].Add(1)
	if ns > 0 {
		h.sum.Add(uint64(ns))
	}
}

// RecordZero adds one zero-duration sample without touching the sum — the
// uncontended fast path, kept to a single atomic add.
func (h *Hist) RecordZero() {
	h.buckets[0].Add(1)
}

// addZero adds n batched zero-duration samples at once (wrapper flush).
func (h *Hist) addZero(n uint64) {
	h.buckets[0].Add(n)
}

// Count returns the total number of recorded samples.
func (h *Hist) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// reset zeroes the histogram in place.
func (h *Hist) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
}

// Snapshot captures a consistent-enough copy for reporting; returns nil
// when the histogram is empty so reports can omit it.
func (h *Hist) Snapshot() *HistSnapshot {
	s := &HistSnapshot{Buckets: make([]uint64, histBuckets), SumNs: h.sum.Load()}
	for i := range h.buckets {
		v := h.buckets[i].Load()
		s.Buckets[i] = v
		s.Count += v
	}
	if s.Count == 0 {
		return nil
	}
	// Trim the empty tail so JSON output stays small.
	last := 0
	for i, v := range s.Buckets {
		if v != 0 {
			last = i
		}
	}
	s.Buckets = s.Buckets[:last+1]
	return s
}

// HistSnapshot is an immutable histogram copy used in reports. Buckets are
// log2 nanosecond buckets as in Hist.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets"`
}

// bucketMid returns a representative duration for one bucket: 0 for the
// zero bucket, else the geometric midpoint of [2^(b-1), 2^b).
func bucketMid(b int) float64 {
	if b == 0 {
		return 0
	}
	return math.Sqrt2 * float64(uint64(1)<<(b-1))
}

// Percentile returns an estimate (in ns) of the p-th percentile,
// 0 < p <= 1, as the representative duration of the bucket where the
// cumulative count crosses p.
func (s *HistSnapshot) Percentile(p float64) float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	target := p * float64(s.Count)
	var cum float64
	for b, v := range s.Buckets {
		cum += float64(v)
		if cum >= target {
			return bucketMid(b)
		}
	}
	return bucketMid(len(s.Buckets) - 1)
}

// Mean returns the average sample in ns.
func (s *HistSnapshot) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// MaxNs returns the upper bound (in ns) of the highest non-empty bucket.
func (s *HistSnapshot) MaxNs() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	top := len(s.Buckets) - 1
	if top == 0 {
		return 0
	}
	return float64(uint64(1) << top)
}
