package lockstat

import (
	"sync"
	"time"

	"shfllock/internal/core"
)

// contendedGuessNs classifies a Lock on a lock without TryLock as contended
// when the measured wait exceeds this threshold (locks with TryLock, and
// all probed ShflLocks, are classified exactly).
const contendedGuessNs = 1000

// flushEvery bounds how many zero-wait samples a wrapper batches in
// lock-guarded plain fields before spilling them into the site's atomic
// histogram. Batching keeps the uncontended fast path free of lock-prefixed
// instructions; reports flush any residue via TryLock, so counts are exact
// whenever the lock is quiescent (and at most flushEvery-1 behind while it
// is held).
const flushEvery = 64

type tryLocker interface{ TryLock() bool }

type probeTarget interface{ SetProbe(core.Probe) }

// Lock wraps a sync.Locker so every acquisition is accounted to a Site:
// one wait-time sample per acquisition (so wait-histogram mass always
// equals the acquisition count), contended classification, and sampled
// hold times. If the underlying lock is a ShflLock, its internal events
// (steals, handoffs, parks, shuffles) are attached to the same site via
// SetProbe. The wrapper itself satisfies sync.Locker.
type Lock struct {
	u      sync.Locker
	try    tryLocker
	site   *Site
	probed bool

	// Acquisition-side state, guarded by the underlying lock itself: these
	// plain fields are only touched between acquiring and releasing u, so
	// the lock's own happens-before edges make them race-free.
	zeroBatch uint64 // zero-wait samples not yet flushed to the site
	tryBatch  uint64 // explicit TryLock successes not yet flushed
	ticks     uint64 // acquisition counter driving hold sampling
	holdArmed bool
	holdStart time.Time
}

// Instrument wraps l under the given site name in the default registry.
func Instrument(l sync.Locker, name string) *Lock {
	return Default.Instrument(l, name)
}

// Instrument wraps l under the given site name in this registry. The
// wrapper must be installed before the lock is shared (SetProbe is not
// atomic).
func (r *Registry) Instrument(l sync.Locker, name string) *Lock {
	il := &Lock{u: l, site: r.Site(name)}
	if t, ok := l.(tryLocker); ok {
		il.try = t
		il.site.addFlusher(il.tryFlush)
	}
	if pt, ok := l.(probeTarget); ok {
		pt.SetProbe(siteProbe{il.site})
		il.probed = true
	}
	return il
}

// Site returns the site this wrapper reports to.
func (l *Lock) Site() *Site { return l.site }

// flushLocked spills batched counts into the site atomics; called with the
// underlying lock held.
func (l *Lock) flushLocked() {
	if l.zeroBatch != 0 {
		l.site.wait.addZero(l.zeroBatch)
		l.zeroBatch = 0
	}
	if l.tryBatch != 0 {
		l.site.trySuccess.Add(l.tryBatch)
		l.tryBatch = 0
	}
}

// tryFlush opportunistically acquires the lock to publish batched counts;
// used when a report is taken. A held lock is left alone (its residue is
// bounded by flushEvery-1).
func (l *Lock) tryFlush() {
	if l.try.TryLock() {
		l.flushLocked()
		l.u.Unlock()
	}
}

// noteZero accounts one zero-wait acquisition; called with the lock held.
func (l *Lock) noteZero() {
	l.zeroBatch++
	if l.zeroBatch >= flushEvery {
		l.flushLocked()
	}
}

// armHold decides whether this acquisition's hold time is sampled; called
// with the lock held.
func (l *Lock) armHold(s *Site) {
	l.ticks++
	if n := s.reg.holdEach.Load(); n <= 1 || l.ticks%n == 0 {
		l.holdArmed = true
		l.holdStart = time.Now()
	} else {
		l.holdArmed = false
	}
}

// Lock acquires the underlying lock, recording exactly one wait sample.
// Contention is detected with a single TryLock probe before blocking, so
// the uncontended path touches no clock and no lock-prefixed instruction
// beyond the acquisition itself.
func (l *Lock) Lock() {
	s := l.site
	if !s.reg.enabled.Load() {
		l.u.Lock()
		return
	}
	if l.try != nil && l.try.TryLock() {
		l.noteZero()
		l.armHold(s)
		return
	}
	start := time.Now()
	l.u.Lock()
	wait := time.Since(start).Nanoseconds()
	s.wait.Record(wait)
	if !l.probed && (l.try != nil || wait > contendedGuessNs) {
		// Probed locks report contention themselves, exactly.
		s.contended.Add(1)
	}
	l.armHold(s)
}

// Unlock releases the underlying lock, completing a sampled hold.
func (l *Lock) Unlock() {
	if l.holdArmed {
		l.holdArmed = false
		l.site.hold.Record(time.Since(l.holdStart).Nanoseconds())
	}
	l.u.Unlock()
}

// TryLock attempts the underlying lock's TryLock; it panics if the wrapped
// lock has none.
func (l *Lock) TryLock() bool {
	s := l.site
	if !s.reg.enabled.Load() {
		return l.try.TryLock()
	}
	if l.try.TryLock() {
		l.tryBatch++
		l.noteZero()
		l.armHold(s)
		return true
	}
	s.tryFail.Add(1)
	return false
}

type rwLocker interface {
	Lock()
	Unlock()
	RLock()
	RUnlock()
}

type tryRLocker interface{ TryRLock() bool }

// RWLock wraps a readers-writer lock (core.RWMutex, sync.RWMutex, ...)
// the same way Lock wraps a mutex. Writer-side accounting batches under
// the write lock; reader-side accounting is atomic (readers overlap, so
// there is no exclusive holder to guard plain fields — and no single
// holder to attribute hold times to, so reader holds are not tracked).
type RWLock struct {
	u    rwLocker
	tryW tryLocker
	tryR tryRLocker
	site *Site

	probed bool

	// Write-side state, guarded by the write lock.
	zeroBatch uint64
	tryBatch  uint64
	ticks     uint64
	holdArmed bool
	holdStart time.Time
}

// InstrumentRW wraps l under the given site name in the default registry.
func InstrumentRW(l rwLocker, name string) *RWLock {
	return Default.InstrumentRW(l, name)
}

// InstrumentRW wraps l under the given site name in this registry.
func (r *Registry) InstrumentRW(l rwLocker, name string) *RWLock {
	il := &RWLock{u: l, site: r.Site(name)}
	if t, ok := l.(tryLocker); ok {
		il.tryW = t
		il.site.addFlusher(il.tryFlush)
	}
	if t, ok := l.(tryRLocker); ok {
		il.tryR = t
	}
	if pt, ok := l.(probeTarget); ok {
		pt.SetProbe(siteProbe{il.site})
		il.probed = true
	}
	return il
}

// Site returns the site this wrapper reports to.
func (l *RWLock) Site() *Site { return l.site }

func (l *RWLock) flushLocked() {
	if l.zeroBatch != 0 {
		l.site.wait.addZero(l.zeroBatch)
		l.zeroBatch = 0
	}
	if l.tryBatch != 0 {
		l.site.trySuccess.Add(l.tryBatch)
		l.tryBatch = 0
	}
}

func (l *RWLock) tryFlush() {
	if l.tryW.TryLock() {
		l.flushLocked()
		l.u.Unlock()
	}
}

// Lock acquires the write side.
func (l *RWLock) Lock() {
	s := l.site
	if !s.reg.enabled.Load() {
		l.u.Lock()
		return
	}
	if l.tryW != nil && l.tryW.TryLock() {
		l.zeroBatch++
		if l.zeroBatch >= flushEvery {
			l.flushLocked()
		}
	} else {
		start := time.Now()
		l.u.Lock()
		wait := time.Since(start).Nanoseconds()
		s.wait.Record(wait)
		if !l.probed && (l.tryW != nil || wait > contendedGuessNs) {
			s.contended.Add(1)
		}
	}
	l.ticks++
	if n := s.reg.holdEach.Load(); n <= 1 || l.ticks%n == 0 {
		l.holdArmed = true
		l.holdStart = time.Now()
	} else {
		l.holdArmed = false
	}
}

// Unlock releases the write side.
func (l *RWLock) Unlock() {
	if l.holdArmed {
		l.holdArmed = false
		l.site.hold.Record(time.Since(l.holdStart).Nanoseconds())
	}
	l.u.Unlock()
}

// RLock acquires a read share.
func (l *RWLock) RLock() {
	s := l.site
	if !s.reg.enabled.Load() {
		l.u.RLock()
		return
	}
	s.reads.Add(1)
	if l.tryR != nil && l.tryR.TryRLock() {
		s.wait.RecordZero()
		return
	}
	start := time.Now()
	l.u.RLock()
	wait := time.Since(start).Nanoseconds()
	s.wait.Record(wait)
	if !l.probed && (l.tryR != nil || wait > contendedGuessNs) {
		s.contended.Add(1)
	}
}

// RUnlock releases a read share.
func (l *RWLock) RUnlock() { l.u.RUnlock() }
