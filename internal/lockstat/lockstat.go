// Package lockstat is a lock-observability subsystem for the native and
// simulated lock families — the userspace analogue of Linux's lock_stat
// and perf-lock. It keeps a process-wide registry of named lock sites;
// each site carries atomic counters (acquisitions, contended acquisitions,
// trylock steals, direct handoffs, park/unpark events, shuffle rounds) and
// log2-bucketed wait-time and hold-time histograms, and can render itself
// as a lock_stat-style text block or as JSON.
//
// Three entry points feed a site:
//
//   - Instrument wraps any sync.Locker so acquisitions, wait time and hold
//     time are measured from outside the lock.
//   - The ShflLock family (internal/core) reports internal events — steals,
//     handoffs, parks, shuffle rounds — through the core.Probe hooks, which
//     Instrument attaches automatically.
//   - FromSimCounters / FromExtra map the deterministic simulator's counters
//     (internal/simlocks) onto the same Report schema, so one report format
//     covers both substrates.
//
// Overhead: an uninstrumented lock pays nothing (the core hooks reduce to a
// nil-check); a wrapped lock whose registry is disabled pays one atomic
// load per operation. An enabled wrapped lock keeps its uncontended path
// free of extra lock-prefixed instructions and clock reads: zero-wait
// samples accumulate in plain fields guarded by the lock itself and are
// flushed to the site's atomic histogram every 64th acquisition and at
// report time. The clock is read only when an acquisition actually
// contends (wait time) or when hold sampling selects it (hold time).
package lockstat

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide collection of named lock sites.
type Registry struct {
	enabled  atomic.Bool
	holdEach atomic.Uint64 // record hold time on every n-th acquisition
	mu       sync.Mutex
	sites    map[string]*Site
}

// defaultHoldSampling is the default hold-time sampling interval. Hold
// times need two clock reads per sampled acquisition, so sampling keeps the
// enabled uncontended path within a few percent of an uninstrumented lock;
// SetHoldSampling(1) opts into exact hold histograms.
const defaultHoldSampling = 256

// NewRegistry returns an enabled registry with default hold-time sampling.
func NewRegistry() *Registry {
	r := &Registry{sites: make(map[string]*Site)}
	r.enabled.Store(true)
	r.holdEach.Store(defaultHoldSampling)
	return r
}

// Default is the registry used by the package-level helpers.
var Default = NewRegistry()

// SetEnabled turns statistics collection on or off. While disabled, wrapped
// locks pass straight through and probe events are dropped.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether collection is on.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// SetHoldSampling records hold time on every n-th acquisition per wrapper
// (n <= 1 means every acquisition; the default is defaultHoldSampling).
// Sampling trades hold-time histogram mass for two fewer clock reads on
// most acquisitions.
func (r *Registry) SetHoldSampling(n int) {
	if n < 1 {
		n = 1
	}
	r.holdEach.Store(uint64(n))
}

// Site returns the site with the given name, creating it on first use.
// Wrapping several locks with the same name aggregates them into one site.
func (r *Registry) Site(name string) *Site {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sites[name]; ok {
		return s
	}
	s := &Site{name: name, reg: r}
	r.sites[name] = s
	return s
}

// Sites returns every registered site, sorted by name.
func (r *Registry) Sites() []*Site {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Site, 0, len(r.sites))
	for _, s := range r.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Reset zeroes every site's counters and histograms in place (sites stay
// registered, so existing wrappers keep working). Wrappers' batched samples
// are flushed first, so a reset over quiescent locks is exact.
func (r *Registry) Reset() {
	for _, s := range r.Sites() {
		s.flush()
		s.reset()
	}
}

// Reports snapshots every site, sorted by name.
func (r *Registry) Reports() []Report {
	sites := r.Sites()
	out := make([]Report, 0, len(sites))
	for _, s := range sites {
		out = append(out, s.Report())
	}
	return out
}

// Enable turns collection on for the default registry.
func Enable() { Default.SetEnabled(true) }

// Disable turns collection off for the default registry.
func Disable() { Default.SetEnabled(false) }

// Site is one named lock site: a set of atomic counters plus wait/hold
// histograms. All methods are safe for concurrent use.
type Site struct {
	name string
	reg  *Registry

	fmu      sync.Mutex
	flushers []func() // wrappers' tryFlush hooks, run before reporting

	contended  atomic.Uint64 // acquisitions that went through the waiter queue
	trySuccess atomic.Uint64 // explicit TryLock successes
	tryFail    atomic.Uint64 // explicit TryLock failures
	steals     atomic.Uint64 // fast-path acquisitions past a populated queue
	handoffs   atomic.Uint64 // queue-head status relays to a successor
	parks      atomic.Uint64 // waiters that committed to sleep
	unparks    atomic.Uint64 // parked waiters woken
	unparksCS  atomic.Uint64 // ... of which on the holder's critical path
	shuffles   atomic.Uint64 // shuffling rounds
	shufScan   atomic.Uint64 // queue nodes examined by shufflers
	shufMoves  atomic.Uint64 // queue nodes relocated by shufflers
	reads      atomic.Uint64 // read-side acquisitions (RW locks)
	aborts     atomic.Uint64 // abortable acquisitions that gave up
	reclaims   atomic.Uint64 // abandoned queue nodes unlinked
	holdTick   atomic.Uint64 // hold-sampling counter

	// pmu guards the policy map structure; the per-policy counters inside
	// are atomic, so rounds only take the mutex to find their bucket.
	pmu      sync.Mutex
	policies map[string]*policyCounts

	wait Hist // time from requesting the lock to holding it
	hold Hist // time from acquiring to releasing (sampled)
}

// policyCounts accumulates shuffle activity attributed to one policy.
type policyCounts struct {
	rounds  atomic.Uint64
	scanned atomic.Uint64
	moved   atomic.Uint64
}

// policy returns the counter bucket for the named shuffling policy.
func (s *Site) policy(name string) *policyCounts {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.policies == nil {
		s.policies = make(map[string]*policyCounts)
	}
	c, ok := s.policies[name]
	if !ok {
		c = &policyCounts{}
		s.policies[name] = c
	}
	return c
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// addFlusher registers a wrapper's batched-sample flush hook.
func (s *Site) addFlusher(f func()) {
	s.fmu.Lock()
	s.flushers = append(s.flushers, f)
	s.fmu.Unlock()
}

// flush publishes every wrapper's batched samples that can be reached
// without blocking (a wrapper whose lock is held right now is skipped; its
// residue is bounded and lands on the next flush).
func (s *Site) flush() {
	s.fmu.Lock()
	fs := append([]func(){}, s.flushers...)
	s.fmu.Unlock()
	for _, f := range fs {
		f()
	}
}

// Acquires returns the total acquisition count. Every acquisition through
// a wrapper records exactly one wait sample, so this is the wait-histogram
// mass by construction.
func (s *Site) Acquires() uint64 { return s.wait.Count() }

// Contended returns the number of acquisitions that had to wait.
func (s *Site) Contended() uint64 { return s.contended.Load() }

// reset zeroes the site in place.
func (s *Site) reset() {
	s.contended.Store(0)
	s.trySuccess.Store(0)
	s.tryFail.Store(0)
	s.steals.Store(0)
	s.handoffs.Store(0)
	s.parks.Store(0)
	s.unparks.Store(0)
	s.unparksCS.Store(0)
	s.shuffles.Store(0)
	s.shufScan.Store(0)
	s.shufMoves.Store(0)
	s.reads.Store(0)
	s.aborts.Store(0)
	s.reclaims.Store(0)
	s.holdTick.Store(0)
	s.pmu.Lock()
	s.policies = nil
	s.pmu.Unlock()
	s.wait.reset()
	s.hold.reset()
}

// Report snapshots the site into the shared report schema, flushing
// batched wrapper samples first.
func (s *Site) Report() Report {
	s.flush()
	un := s.unparks.Load()
	inCS := s.unparksCS.Load()
	var pols map[string]PolicyShuffleStats
	s.pmu.Lock()
	if len(s.policies) > 0 {
		pols = make(map[string]PolicyShuffleStats, len(s.policies))
		for name, c := range s.policies {
			pols[name] = PolicyShuffleStats{
				Rounds:  c.rounds.Load(),
				Scanned: c.scanned.Load(),
				Moved:   c.moved.Load(),
			}
		}
	}
	s.pmu.Unlock()
	return Report{
		Name:           s.name,
		Substrate:      "native",
		Acquires:       s.Acquires(),
		ReadAcquires:   s.reads.Load(),
		Contended:      s.contended.Load(),
		TrySuccess:     s.trySuccess.Load(),
		TryFail:        s.tryFail.Load(),
		Steals:         s.steals.Load(),
		Handoffs:       s.handoffs.Load(),
		Parks:          s.parks.Load(),
		WakeupsInCS:    inCS,
		WakeupsOffCS:   un - inCS,
		Shuffles:       s.shuffles.Load(),
		ShuffleScanned: s.shufScan.Load(),
		ShuffleMoves:   s.shufMoves.Load(),
		Aborts:         s.aborts.Load(),
		Reclaims:       s.reclaims.Load(),
		Policies:       pols,
		Wait:           s.wait.Snapshot(),
		Hold:           s.hold.Snapshot(),
	}
}

// siteProbe adapts a Site to the core.Probe interface; events are dropped
// while the registry is disabled.
type siteProbe struct{ s *Site }

func (p siteProbe) on() bool { return p.s.reg.enabled.Load() }

func (p siteProbe) Steal(bool) {
	if p.on() {
		p.s.steals.Add(1)
	}
}

func (p siteProbe) Contended() {
	if p.on() {
		p.s.contended.Add(1)
	}
}

func (p siteProbe) Handoff() {
	if p.on() {
		p.s.handoffs.Add(1)
	}
}

func (p siteProbe) Park() {
	if p.on() {
		p.s.parks.Add(1)
	}
}

func (p siteProbe) Unpark(inCS bool) {
	if !p.on() {
		return
	}
	p.s.unparks.Add(1)
	if inCS {
		p.s.unparksCS.Add(1)
	}
}

func (p siteProbe) Abort() {
	if p.on() {
		p.s.aborts.Add(1)
	}
}

func (p siteProbe) Reclaim() {
	if p.on() {
		p.s.reclaims.Add(1)
	}
}

func (p siteProbe) Shuffle(policy string, scanned, moved int) {
	if !p.on() {
		return
	}
	p.s.shuffles.Add(1)
	p.s.shufScan.Add(uint64(scanned))
	p.s.shufMoves.Add(uint64(moved))
	c := p.s.policy(policy)
	c.rounds.Add(1)
	c.scanned.Add(uint64(scanned))
	c.moved.Add(uint64(moved))
}
