package lockstat

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"shfllock/internal/core"
	"shfllock/internal/simlocks"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1<<62 + 5, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistRecordAndSnapshot(t *testing.T) {
	var h Hist
	if h.Snapshot() != nil {
		t.Fatal("empty histogram must snapshot to nil")
	}
	h.RecordZero()
	h.Record(0)
	h.Record(3)
	h.Record(1000)
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	s := h.Snapshot()
	if s == nil || s.Count != 4 {
		t.Fatalf("Snapshot.Count = %+v, want 4", s)
	}
	if s.SumNs != 1003 {
		t.Fatalf("SumNs = %d, want 1003", s.SumNs)
	}
	if len(s.Buckets) != bucketOf(1000)+1 {
		t.Fatalf("tail not trimmed: len=%d want %d", len(s.Buckets), bucketOf(1000)+1)
	}
	if s.Buckets[0] != 2 || s.Buckets[2] != 1 {
		t.Fatalf("bucket contents wrong: %v", s.Buckets)
	}
	if got := s.Mean(); got != 1003.0/4 {
		t.Fatalf("Mean = %v", got)
	}
	// p50 falls in the zero bucket (2 of 4 samples), p99 in the 1000ns bucket.
	if got := s.Percentile(0.50); got != 0 {
		t.Fatalf("p50 = %v, want 0", got)
	}
	if got := s.Percentile(0.99); got < 512 || got > 1024 {
		t.Fatalf("p99 = %v, want within [512,1024]", got)
	}
	if got := s.MaxNs(); got != 1024 {
		t.Fatalf("MaxNs = %v, want 1024", got)
	}
	h.reset()
	if h.Count() != 0 || h.Snapshot() != nil {
		t.Fatal("reset did not empty the histogram")
	}
}

func TestPercentileNilSafe(t *testing.T) {
	var s *HistSnapshot
	if s.Percentile(0.5) != 0 || s.Mean() != 0 || s.MaxNs() != 0 {
		t.Fatal("nil snapshot accessors must return 0")
	}
}

func TestSiteAggregation(t *testing.T) {
	r := NewRegistry()
	a := r.Site("dcache")
	b := r.Site("dcache")
	if a != b {
		t.Fatal("same name must return the same site")
	}
	r.Site("inode")
	sites := r.Sites()
	if len(sites) != 2 || sites[0].Name() != "dcache" || sites[1].Name() != "inode" {
		t.Fatalf("Sites() = %v", sites)
	}
}

// TestInstrumentContention drives a deterministic contention pattern: the
// main goroutine holds the lock while four waiters block, then releases.
// Every waiter must be classified contended, and the cross-counter
// invariants from the acceptance criteria must hold exactly.
func TestInstrumentContention(t *testing.T) {
	// Spread waiters across sockets so the shuffler's wakeup policy leaves
	// the far waiters unspun and they deterministically park (on one socket
	// every waiter is marked spinning and nothing ever sleeps).
	defer core.SetSockets(core.Sockets())
	core.SetSockets(4)

	r := NewRegistry()
	r.SetHoldSampling(1) // exact hold histogram for the mass check below
	var mu core.Mutex
	l := r.Instrument(&mu, "hot")

	l.Lock() // uncontended: trylock-probe path, zero-wait sample
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Lock()
			l.Unlock()
		}()
	}
	time.Sleep(50 * time.Millisecond) // all four settle into the queue (and park)
	l.Unlock()
	wg.Wait()

	rep := l.Site().Report()
	if rep.Acquires != 5 {
		t.Fatalf("Acquires = %d, want 5", rep.Acquires)
	}
	if rep.Contended != 4 {
		t.Fatalf("Contended = %d, want 4 (each waiter exactly once)", rep.Contended)
	}
	if rep.Wait == nil || rep.Wait.Count != rep.Acquires {
		t.Fatalf("wait histogram mass %v != acquires %d", rep.Wait, rep.Acquires)
	}
	if rep.Handoffs == 0 {
		t.Fatalf("expected queue handoffs, got 0")
	}
	if rep.Parks == 0 {
		t.Fatalf("expected parked waiters (50ms hold >> spin budget), got 0")
	}
	if rep.WakeupsInCS+rep.WakeupsOffCS == 0 {
		t.Fatalf("parked waiters were woken, expected unpark events")
	}
	if rep.Hold == nil || rep.Hold.Count != 5 {
		t.Fatalf("hold mass = %v, want 5 (exact sampling)", rep.Hold)
	}
	if msg := rep.Consistent(); msg != "" {
		t.Fatalf("report inconsistent: %s", msg)
	}
	if rep.ContentionPct() != 80.0 {
		t.Fatalf("ContentionPct = %v, want 80", rep.ContentionPct())
	}
}

func TestInstrumentDisabledCollectsNothing(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	var mu core.Mutex
	l := r.Instrument(&mu, "idle")
	l.Lock()
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	l.Unlock()
	rep := l.Site().Report()
	if rep.Acquires != 0 || rep.TrySuccess != 0 || rep.Wait != nil || rep.Hold != nil {
		t.Fatalf("disabled registry must collect nothing, got %+v", rep)
	}
	// Re-enabling makes the same wrapper live again.
	r.SetEnabled(true)
	l.Lock()
	l.Unlock()
	if got := l.Site().Report().Acquires; got != 1 {
		t.Fatalf("after re-enable Acquires = %d, want 1", got)
	}
}

func TestTryLockCounting(t *testing.T) {
	r := NewRegistry()
	var mu core.SpinLock
	l := r.Instrument(&mu, "try")
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	rep := l.Site().Report()
	if rep.TrySuccess != 1 || rep.TryFail != 1 {
		t.Fatalf("try ok/fail = %d/%d, want 1/1", rep.TrySuccess, rep.TryFail)
	}
	if rep.Acquires != 1 {
		t.Fatalf("Acquires = %d, want 1 (failed trylock is not an acquisition)", rep.Acquires)
	}
	if msg := rep.Consistent(); msg != "" {
		t.Fatalf("report inconsistent: %s", msg)
	}
}

func TestInstrumentRW(t *testing.T) {
	r := NewRegistry()
	r.SetHoldSampling(1)
	var mu core.RWMutex
	l := r.InstrumentRW(&mu, "rw")
	l.Lock()
	l.Unlock()
	l.RLock()
	l.RLock()
	l.RUnlock()
	l.RUnlock()
	rep := l.Site().Report()
	if rep.Acquires != 3 {
		t.Fatalf("Acquires = %d, want 3 (1 write + 2 read)", rep.Acquires)
	}
	if rep.ReadAcquires != 2 {
		t.Fatalf("ReadAcquires = %d, want 2", rep.ReadAcquires)
	}
	if rep.Hold == nil || rep.Hold.Count != 1 {
		t.Fatalf("hold mass = %v, want 1 (writer only)", rep.Hold)
	}
	if msg := rep.Consistent(); msg != "" {
		t.Fatalf("report inconsistent: %s", msg)
	}
}

func TestHoldSampling(t *testing.T) {
	r := NewRegistry()
	r.SetHoldSampling(4)
	var mu core.SpinLock
	l := r.Instrument(&mu, "sampled")
	for i := 0; i < 16; i++ {
		l.Lock()
		l.Unlock()
	}
	rep := l.Site().Report()
	if rep.Hold == nil || rep.Hold.Count != 4 {
		t.Fatalf("hold mass = %v, want 4 (every 4th of 16)", rep.Hold)
	}
	if rep.Acquires != 16 {
		t.Fatalf("Acquires = %d, want 16", rep.Acquires)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	var mu core.SpinLock
	l := r.Instrument(&mu, "r")
	l.Lock()
	l.Unlock()
	r.Reset()
	rep := l.Site().Report()
	if rep.Acquires != 0 || rep.Wait != nil {
		t.Fatalf("Reset left data behind: %+v", rep)
	}
	// The wrapper keeps working after a reset.
	l.Lock()
	l.Unlock()
	if got := l.Site().Report().Acquires; got != 1 {
		t.Fatalf("post-reset Acquires = %d, want 1", got)
	}
}

func TestFromSimCounters(t *testing.T) {
	c := &simlocks.Counters{
		Acquires: 100, TrySuccess: 3, TryFail: 7, Steals: 11,
		Parks: 13, WakeupsInCS: 2, WakeupsOffCS: 17,
		Shuffles: 19, ShuffleScanned: 23, ShuffleMoves: 29,
		DynamicAllocs: 31,
	}
	rep := FromSimCounters("sim/shfllock", c)
	if rep.Substrate != "sim" || rep.Acquires != 100 || rep.Steals != 11 ||
		rep.WakeupsOffCS != 17 || rep.ShuffleMoves != 29 || rep.DynamicAllocs != 31 {
		t.Fatalf("mapping wrong: %+v", rep)
	}
	if rep.Wait != nil {
		t.Fatal("sim reports must not fabricate wait histograms")
	}
	if msg := rep.Consistent(); msg != "" {
		t.Fatalf("sim report inconsistent: %s", msg)
	}
	empty := FromSimCounters("none", nil)
	if empty.Substrate != "sim" || empty.Acquires != 0 {
		t.Fatalf("nil counters: %+v", empty)
	}
}

func TestFromExtra(t *testing.T) {
	rep := FromExtra("sim/x", map[string]float64{
		"acquires": 50, "steals": 5, "parks": 4,
		"wakeups_in_cs": 1, "wakeups_off_cs": 3, "shuffles": 2,
	})
	if rep.Acquires != 50 || rep.Steals != 5 || rep.WakeupsInCS != 1 || rep.WakeupsOffCS != 3 {
		t.Fatalf("mapping wrong: %+v", rep)
	}
}

func TestReportConsistentViolations(t *testing.T) {
	bad := Report{Name: "x", Acquires: 1, Contended: 2}
	if msg := bad.Consistent(); !strings.Contains(msg, "contended") {
		t.Fatalf("expected contended violation, got %q", msg)
	}
	bad = Report{Name: "x", Acquires: 3, Wait: &HistSnapshot{Count: 2}}
	if msg := bad.Consistent(); !strings.Contains(msg, "wait histogram") {
		t.Fatalf("expected wait-mass violation, got %q", msg)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	var mu core.Mutex
	l := r.Instrument(&mu, "render")
	l.Lock()
	l.Unlock()
	reps := r.Reports()

	var txt bytes.Buffer
	WriteText(&txt, reps)
	out := txt.String()
	for _, want := range []string{"lock_stat: 1 site(s)", "render (native)", "wait ns:", "acquires"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "INCONSISTENT") {
		t.Fatalf("text report flags inconsistency:\n%s", out)
	}

	var js bytes.Buffer
	if err := WriteJSON(&js, reps); err != nil {
		t.Fatal(err)
	}
	var back []Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back) != 1 || back[0].Name != "render" || back[0].Acquires != 1 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
	if back[0].Wait == nil || back[0].Wait.Count != 1 {
		t.Fatalf("JSON round-trip lost histogram: %+v", back[0].Wait)
	}
}
