package lockstat

import (
	"sync"

	"shfllock/internal/shuffle"
)

// Meta-policy observer: shuffle.Meta steers on interval activity, not
// lifetime totals, and this file owns the previous-snapshot state that
// turns a lifetime Report feed into interval diffs. That closes the
// lockstat loop — the same Diff the kvserver controller and the
// /debug/lockstat endpoint consume becomes the self-tuning signal of the
// lock underneath them.

// ObsFromReport maps one *interval* report (a Diff output) onto the
// meta-policy's observation schema. Ops counts attempts (acquires +
// aborts) so an abort storm with few completions still clears the
// min-ops floor.
func ObsFromReport(d Report, oversub bool) shuffle.Obs {
	o := shuffle.Obs{
		Ops:        d.Acquires + d.Aborts,
		Aborts:     d.Aborts,
		Shuffles:   d.Shuffles,
		ShuffleEff: d.ShuffleEff,
		Oversub:    oversub,
	}
	if o.Ops > 0 {
		o.AbortFrac = float64(d.Aborts) / float64(o.Ops)
		o.ParkRate = float64(d.Parks) / float64(o.Ops)
	}
	if d.Wait != nil && d.Wait.Count > 0 {
		o.WaitP50 = d.Wait.Percentile(0.50)
		o.WaitP99 = d.Wait.Percentile(0.99)
	}
	return o
}

// MetaSourceFrom adapts a lifetime-report snapshot function into the
// meta-policy's observation feed: each call diffs against the previous
// snapshot, so Meta sees exactly the activity since its last evaluation.
// oversub may be nil (reads as never oversubscribed — the simulator's
// truth). The returned source is safe for concurrent callers, though Meta
// serializes evaluations itself.
func MetaSourceFrom(snap func() Report, oversub func() bool) shuffle.MetaSource {
	var mu sync.Mutex
	var prev Report
	return func() shuffle.Obs {
		mu.Lock()
		defer mu.Unlock()
		cur := snap()
		d := Diff(prev, cur)
		prev = cur
		return ObsFromReport(d, oversub != nil && oversub())
	}
}

// MetaSource feeds a Site's own lockstat back to its meta-policy.
func MetaSource(site *Site, oversub func() bool) shuffle.MetaSource {
	return MetaSourceFrom(site.Report, oversub)
}
