package lockstat

import (
	"testing"

	"shfllock/internal/core"
)

// BenchmarkLockstatOverhead quantifies the acceptance criterion for the
// observability layer on the uncontended Lock/Unlock path:
//
//   - bare:               core.Mutex, no instrumentation anywhere — shows the
//     probe hooks compiled into the lock cost nothing when no probe is set.
//   - wrapped-disabled:   instrumented lock with the registry disabled — one
//     atomic load of the enabled flag per operation.
//   - wrapped-enabled:    full accounting at the default hold sampling; the
//     uncontended path batches its zero-wait sample in a lock-guarded plain
//     field, so it adds no lock-prefixed instruction and no clock read.
//   - wrapped-hold-exact: hold sampling 1 — two time.Now() calls per
//     acquisition, showing why exact hold times are opt-in.
func BenchmarkLockstatOverhead(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		var mu core.Mutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mu.Lock()
			mu.Unlock()
		}
	})
	b.Run("wrapped-disabled", func(b *testing.B) {
		r := NewRegistry()
		r.SetEnabled(false)
		var mu core.Mutex
		l := r.Instrument(&mu, "bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
	b.Run("wrapped-enabled", func(b *testing.B) {
		r := NewRegistry()
		var mu core.Mutex
		l := r.Instrument(&mu, "bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
	b.Run("wrapped-hold-exact", func(b *testing.B) {
		r := NewRegistry()
		r.SetHoldSampling(1)
		var mu core.Mutex
		l := r.Instrument(&mu, "bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
}
