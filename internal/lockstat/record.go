package lockstat

import "shfllock/internal/core"

// Direct recording entry points for lock wrappers that live outside this
// package. internal/kvserver's ShardLock implementations cannot use
// Instrument/InstrumentRW — their acquisition surface is LockContext with a
// per-request deadline, not sync.Locker — so they time acquisitions
// themselves and feed the same Site schema through these methods. The
// invariants the wrappers keep hold here too: record exactly one wait
// sample per successful acquisition (wait-histogram mass is the acquisition
// count) and nothing for an acquisition that aborted.

// RecordAcquire accounts one successful acquisition with the measured wait;
// read marks a read-side acquisition on an RW lock. A negative wait is
// clamped to zero. No-op while the registry is disabled.
func (s *Site) RecordAcquire(waitNs int64, read bool) {
	if !s.reg.enabled.Load() {
		return
	}
	if read {
		s.reads.Add(1)
	}
	if waitNs <= 0 {
		s.wait.RecordZero()
		return
	}
	s.wait.Record(waitNs)
}

// RecordHold accounts one sampled hold time. Callers that sample should use
// HoldEvery to honor the registry's sampling interval.
func (s *Site) RecordHold(holdNs int64) {
	if !s.reg.enabled.Load() {
		return
	}
	s.hold.Record(holdNs)
}

// HoldEvery returns the registry's hold-sampling interval (record the hold
// time of every n-th acquisition).
func (s *Site) HoldEvery() uint64 { return s.reg.holdEach.Load() }

// RecordContended marks one acquisition as contended. Locks carrying a
// CoreProbe report contention exactly through the probe and must not call
// this; it exists for baseline locks (sync.Mutex, sync.RWMutex) where the
// wrapper classifies contention from a failed fast-path attempt.
func (s *Site) RecordContended() {
	if s.reg.enabled.Load() {
		s.contended.Add(1)
	}
}

// RecordAbort marks one abortable acquisition that gave up (deadline or
// cancellation before the lock was held). Probe-carrying locks report
// aborts themselves.
func (s *Site) RecordAbort() {
	if s.reg.enabled.Load() {
		s.aborts.Add(1)
	}
}

// CoreProbe returns a core.Probe feeding this site, for attaching to a
// ShflLock via SetProbe when the lock is managed outside Instrument (e.g. a
// kvserver shard lock that is swapped at runtime: every generation of the
// shard's lock attaches the same site, so the per-shard history survives
// handovers). Events are dropped while the registry is disabled.
func (s *Site) CoreProbe() core.Probe { return siteProbe{s} }
