package lockstat

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"shfllock/internal/simlocks"
)

// Report is the substrate-independent snapshot of one lock site — the same
// schema covers the native locks (counters + histograms from Site) and the
// simulated locks (counters mapped from simlocks). Histograms are nil when
// the substrate cannot observe them.
type Report struct {
	Name      string `json:"name"`
	Substrate string `json:"substrate"` // "native" or "sim"

	Acquires     uint64 `json:"acquires"`
	ReadAcquires uint64 `json:"read_acquires,omitempty"`
	Contended    uint64 `json:"contended"`
	TrySuccess   uint64 `json:"try_success,omitempty"`
	TryFail      uint64 `json:"try_fail,omitempty"`
	Steals       uint64 `json:"steals,omitempty"`
	Handoffs     uint64 `json:"handoffs,omitempty"`
	Parks        uint64 `json:"parks,omitempty"`
	WakeupsInCS  uint64 `json:"wakeups_in_cs,omitempty"`
	WakeupsOffCS uint64 `json:"wakeups_off_cs,omitempty"`

	Shuffles       uint64 `json:"shuffles,omitempty"`
	ShuffleScanned uint64 `json:"shuffle_scanned,omitempty"`
	ShuffleMoves   uint64 `json:"shuffle_moves,omitempty"`

	// ShuffleEff is the grouped-wakeup yield per shuffling round
	// (WakeupsOffCS / Shuffles) over an interval. Only Diff computes it —
	// lifetime reports leave it zero — so it measures what shuffling bought
	// *lately*, which is the meta-policy's steering signal.
	ShuffleEff float64 `json:"shuffle_eff,omitempty"`

	// Aborts counts abortable acquisitions (LockTimeout/LockContext or the
	// simulator's budgeted acquisitions) that gave up; Reclaims counts
	// abandoned queue nodes unlinked by shufflers or grant walks.
	Aborts   uint64 `json:"aborts,omitempty"`
	Reclaims uint64 `json:"reclaims,omitempty"`

	// Policies breaks the shuffle counters down by the shuffling policy
	// that drove each round (native substrate only; the simulator's
	// counters are per-lock, and a simulated lock runs a single policy).
	Policies map[string]PolicyShuffleStats `json:"policies,omitempty"`

	DynamicAllocs uint64 `json:"dynamic_allocs,omitempty"`

	Wait *HistSnapshot `json:"wait_ns,omitempty"`
	Hold *HistSnapshot `json:"hold_ns,omitempty"`
}

// PolicyShuffleStats is the shuffle activity one policy produced at a site.
type PolicyShuffleStats struct {
	Rounds  uint64 `json:"rounds"`
	Scanned uint64 `json:"scanned"`
	Moved   uint64 `json:"moved"`
}

// ContentionPct returns the percentage of acquisitions that waited.
func (r Report) ContentionPct() float64 {
	if r.Acquires == 0 {
		return 0
	}
	return 100 * float64(r.Contended) / float64(r.Acquires)
}

// Consistent verifies the cross-counter invariants every report must
// satisfy (contended never exceeds acquisitions; on the native substrate
// the wait-histogram mass is exactly the acquisition count). It returns a
// description of the first violation, or "" when the report is sound.
func (r Report) Consistent() string {
	if r.Contended > r.Acquires {
		return fmt.Sprintf("%s: contended %d > acquires %d", r.Name, r.Contended, r.Acquires)
	}
	if r.Wait != nil && r.Wait.Count != r.Acquires {
		return fmt.Sprintf("%s: wait histogram mass %d != acquires %d", r.Name, r.Wait.Count, r.Acquires)
	}
	if r.Hold != nil && r.Hold.Count > r.Acquires {
		return fmt.Sprintf("%s: hold histogram mass %d > acquires %d", r.Name, r.Hold.Count, r.Acquires)
	}
	return ""
}

// FromSimCounters maps a simulated lock's counters onto the report schema.
// The simulator observes wakeup placement directly (Figure 11f) but does
// not classify contended acquisitions or measure wall-clock waits, so
// those fields stay zero/nil.
func FromSimCounters(name string, c *simlocks.Counters) Report {
	if c == nil {
		return Report{Name: name, Substrate: "sim"}
	}
	return Report{
		Name:           name,
		Substrate:      "sim",
		Acquires:       c.Acquires,
		TrySuccess:     c.TrySuccess,
		TryFail:        c.TryFail,
		Steals:         c.Steals,
		Parks:          c.Parks,
		WakeupsInCS:    c.WakeupsInCS,
		WakeupsOffCS:   c.WakeupsOffCS,
		Shuffles:       c.Shuffles,
		ShuffleScanned: c.ShuffleScanned,
		ShuffleMoves:   c.ShuffleMoves,
		Aborts:         c.Aborts,
		Reclaims:       c.Reclaims,
		DynamicAllocs:  c.DynamicAllocs,
	}
}

// FromExtra maps a workload Result.Extra counter map (the simulator's
// per-run lock counters) onto the report schema.
func FromExtra(name string, extra map[string]float64) Report {
	u := func(k string) uint64 { return uint64(extra[k]) }
	return Report{
		Name:           name,
		Substrate:      "sim",
		Acquires:       u("acquires"),
		TrySuccess:     u("try_success"),
		TryFail:        u("try_fail"),
		Steals:         u("steals"),
		Parks:          u("parks"),
		WakeupsInCS:    u("wakeups_in_cs"),
		WakeupsOffCS:   u("wakeups_off_cs"),
		Shuffles:       u("shuffles"),
		ShuffleScanned: u("shuffle_scanned"),
		ShuffleMoves:   u("shuffle_moves"),
		Aborts:         u("aborts"),
		Reclaims:       u("reclaims"),
		DynamicAllocs:  u("dynamic_allocs"),
	}
}

// WriteText renders reports as a lock_stat-style text block.
func WriteText(w io.Writer, reps []Report) {
	// Size the site column to the longest label so long names stay aligned.
	wide := 26
	for _, r := range reps {
		if n := len(r.Name) + len(r.Substrate) + 3; n > wide {
			wide = n
		}
	}
	fmt.Fprintf(w, "lock_stat: %d site(s)\n", len(reps))
	fmt.Fprintf(w, "%-*s %12s %10s %6s %8s %8s %8s %10s\n",
		wide, "site", "acquires", "contended", "con%", "steals", "handoffs", "parks", "shuffles")
	fmt.Fprintln(w, strings.Repeat("-", wide+70))
	for _, r := range reps {
		fmt.Fprintf(w, "%-*s %12d %10d %5.1f%% %8d %8d %8d %10d\n",
			wide, r.Name+" ("+r.Substrate+")", r.Acquires, r.Contended, r.ContentionPct(),
			r.Steals, r.Handoffs, r.Parks, r.Shuffles)
		if r.ReadAcquires > 0 || r.TrySuccess > 0 || r.TryFail > 0 {
			fmt.Fprintf(w, "    reads=%d trylock ok/fail=%d/%d\n", r.ReadAcquires, r.TrySuccess, r.TryFail)
		}
		if r.WakeupsInCS > 0 || r.WakeupsOffCS > 0 {
			fmt.Fprintf(w, "    wakeups: in-cs=%d off-cs=%d\n", r.WakeupsInCS, r.WakeupsOffCS)
		}
		if r.Shuffles > 0 {
			if r.ShuffleEff > 0 {
				fmt.Fprintf(w, "    shuffle: scanned=%d moved=%d eff=%.3f\n", r.ShuffleScanned, r.ShuffleMoves, r.ShuffleEff)
			} else {
				fmt.Fprintf(w, "    shuffle: scanned=%d moved=%d\n", r.ShuffleScanned, r.ShuffleMoves)
			}
		}
		if r.Aborts > 0 || r.Reclaims > 0 {
			fmt.Fprintf(w, "    aborts=%d reclaims=%d\n", r.Aborts, r.Reclaims)
		}
		if len(r.Policies) > 0 {
			names := make([]string, 0, len(r.Policies))
			for n := range r.Policies {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				p := r.Policies[n]
				fmt.Fprintf(w, "    policy %s: rounds=%d scanned=%d moved=%d\n", n, p.Rounds, p.Scanned, p.Moved)
			}
		}
		if r.DynamicAllocs > 0 {
			fmt.Fprintf(w, "    dynamic allocs=%d\n", r.DynamicAllocs)
		}
		writeHistLine(w, "wait", r.Wait)
		writeHistLine(w, "hold", r.Hold)
		if msg := r.Consistent(); msg != "" {
			fmt.Fprintf(w, "    INCONSISTENT: %s\n", msg)
		}
	}
}

// WriteEngineText renders the simulator's fast-path/slow-path transfer
// counters as a one-site block matching the lock_stat layout: how often the
// engine advanced virtual time in place (fast resumes), handed the CPU
// thread-to-thread without an event (fast handoffs), and fell back to a
// full event-queue round trip (engine trips).
func WriteEngineText(w io.Writer, fastResumes, fastHandoffs, engineTrips uint64) {
	total := fastResumes + fastHandoffs + engineTrips
	share := 0.0
	if total > 0 {
		share = 100 * float64(fastResumes+fastHandoffs) / float64(total)
	}
	fmt.Fprintf(w, "engine_stat: fast_resumes=%d fast_handoffs=%d engine_trips=%d fast_share=%.1f%%\n",
		fastResumes, fastHandoffs, engineTrips, share)
}

func writeHistLine(w io.Writer, label string, h *HistSnapshot) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "    %s ns: count=%d avg=%.0f p50=%.0f p90=%.0f p99=%.0f max<%.0f\n",
		label, h.Count, h.Mean(), h.Percentile(0.50), h.Percentile(0.90), h.Percentile(0.99), h.MaxNs())
}

// WriteJSON renders reports as indented JSON.
func WriteJSON(w io.Writer, reps []Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reps)
}
