package lockstat

import (
	"strings"
	"testing"
)

// TestDiffShuffleEff: the interval diff carries the shuffle-efficiency
// ratio (grouped off-CS wakeups per shuffling round) precomputed, so every
// consumer — the meta-policy, the debug endpoint, a human reading
// WriteText — divides the same way exactly once.
func TestDiffShuffleEff(t *testing.T) {
	prev := Report{Name: "s", Shuffles: 100, WakeupsOffCS: 40}
	cur := Report{Name: "s", Shuffles: 300, WakeupsOffCS: 90}
	d := Diff(prev, cur)
	if d.Shuffles != 200 || d.WakeupsOffCS != 50 {
		t.Fatalf("deltas shuffles=%d wakes=%d, want 200/50", d.Shuffles, d.WakeupsOffCS)
	}
	if d.ShuffleEff != 0.25 {
		t.Fatalf("ShuffleEff=%v, want 0.25", d.ShuffleEff)
	}
}

// TestDiffShuffleEffSaturating: the ratio must stay sane at the edges — a
// shuffle-free interval divides by nothing, and site churn (both counters
// clamped to zero) must not manufacture NaN or Inf.
func TestDiffShuffleEffSaturating(t *testing.T) {
	// No shuffling at all: ratio stays zero, no divide.
	d := Diff(Report{Name: "s"}, Report{Name: "s", Acquires: 10})
	if d.ShuffleEff != 0 {
		t.Fatalf("shuffle-free interval has eff=%v", d.ShuffleEff)
	}
	// Wakes without rounds (possible across a site reset): zero rounds means
	// no ratio, whatever the numerator says.
	d = Diff(Report{Name: "s"}, Report{Name: "s", WakeupsOffCS: 7})
	if d.ShuffleEff != 0 {
		t.Fatalf("round-free interval has eff=%v", d.ShuffleEff)
	}
	// Undetected churn: WakeupsOffCS is not one of resetBetween's probes,
	// so a re-registered site can shrink it while the probed counters grow.
	// The delta clamps to zero and the ratio follows — without the clamp
	// the numerator would be ~2^64 and the "efficiency" astronomical.
	d = Diff(
		Report{Name: "s", Acquires: 100, Shuffles: 100, WakeupsOffCS: 40},
		Report{Name: "s", Acquires: 150, Shuffles: 120, WakeupsOffCS: 5},
	)
	if d.Shuffles != 20 || d.WakeupsOffCS != 0 || d.ShuffleEff != 0 {
		t.Fatalf("churned interval shuffles=%d wakes=%d eff=%v, want 20/0/0",
			d.Shuffles, d.WakeupsOffCS, d.ShuffleEff)
	}
	// Detected churn (Shuffles itself ran backward): the interval
	// degenerates to cur, and the ratio is computed from cur's own counters.
	d = Diff(
		Report{Name: "s", Shuffles: 100, WakeupsOffCS: 40},
		Report{Name: "s", Shuffles: 4, WakeupsOffCS: 1},
	)
	if d.ShuffleEff != 0.25 {
		t.Fatalf("post-reset interval eff=%v, want 0.25 (cur's own ratio)", d.ShuffleEff)
	}
}

// TestLifetimeReportHasNoEff: only Diff computes the ratio; a lifetime
// Report leaves it zero and WriteText keeps the legacy shuffle line — the
// committed lockstat goldens depend on that.
func TestLifetimeReportHasNoEff(t *testing.T) {
	r := NewRegistry()
	s := r.Site("s")
	p := s.CoreProbe()
	p.Shuffle("numa", 10, 4)
	p.Park()
	p.Unpark(false) // an off-CS wakeup: the eff numerator is nonzero
	rep := s.Report()
	if rep.WakeupsOffCS == 0 || rep.Shuffles == 0 {
		t.Fatalf("probe did not record: %+v", rep)
	}
	if rep.ShuffleEff != 0 {
		t.Fatalf("lifetime report computed ShuffleEff=%v", rep.ShuffleEff)
	}
	var b strings.Builder
	WriteText(&b, r.Reports())
	if strings.Contains(b.String(), "eff=") {
		t.Fatalf("lifetime WriteText renders eff=:\n%s", b.String())
	}
}
