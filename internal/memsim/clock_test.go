package memsim

import (
	"testing"

	"shfllock/internal/topology"
)

// testClock spaces test accesses far apart in time so that per-line
// transfer serialization never introduces queueing delay; cost assertions
// then see the raw cost levels.
var testClock uint64

func access(m *Memory, core int, w Word, kind AccessKind) uint64 {
	testClock += 1_000_000
	return m.Access(testClock, core, w, kind)
}

// TestLineSerialization checks the contention model: transfers of the same
// line issued at the same instant queue behind each other, while hits and
// transfers of other lines do not.
func TestLineSerialization(t *testing.T) {
	m := New(topology.Reference(), topology.DefaultCosts())
	costs := m.Costs()
	w := m.AllocWord("hot")
	other := m.AllocWord("cold")

	now := testClock + 10_000_000
	testClock = now + 10_000_000

	// Warm the line into core 0, then let its transfer slot drain.
	m.Access(now, 0, w, AccessStore)
	base := now + 1_000_000

	// Three same-socket cores all RMW the hot line at the same instant:
	// the second and third queue behind the first.
	c1 := m.Access(base, 1, w, AccessRMW)
	c2 := m.Access(base, 2, w, AccessRMW)
	c3 := m.Access(base, 3, w, AccessRMW)
	unit := costs.LocalXfer + costs.AtomicExtra
	if c1 != unit {
		t.Errorf("first RMW cost = %d, want %d", c1, unit)
	}
	if c2 <= c1 || c3 <= c2 {
		t.Errorf("no serialization: costs %d, %d, %d", c1, c2, c3)
	}
	// Accesses to a different line at the same instant are unaffected.
	if c := m.Access(base, 4, other, AccessStore); c != costs.DRAM {
		t.Errorf("cold line store cost = %d, want %d (no cross-line queueing)", c, costs.DRAM)
	}
	// An L1 hit on the hot line does not wait for the transfer queue.
	if c := m.Access(base, 3, w, AccessRMW); c > 4*unit {
		// core 3 now owns the line after its queued RMW; but at time
		// `base` it hasn't completed yet — accept either interpretation,
		// just ensure hits don't queue unboundedly.
		t.Logf("note: repeated RMW cost %d", c)
	}
	testClock += 100_000_000
}
