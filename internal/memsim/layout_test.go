package memsim

import (
	"testing"
	"unsafe"
)

// TestLineLayout pins the per-line coherence record to exactly one host
// cache line: the access cost model reads one line record per simulated
// line touch, so the simulated machine's working set maps 1:1 onto the
// host's. Growing the struct past 64 bytes doubles that traffic; if a field
// must grow, move rare state behind an overflow indirection (as the sharer
// bitset already does) instead.
func TestLineLayout(t *testing.T) {
	if s := unsafe.Sizeof(line{}); s != 64 {
		t.Fatalf("line is %d bytes, budget is 64", s)
	}
}
