// Package memsim models the memory hierarchy of a NUMA multiprocessor at
// cache-line granularity. It is the substrate on which every simulated lock
// runs: each 64-bit word lives on a cache line; lines are tracked with a
// single-owner/sharer-set protocol (MESI collapsed to M/S/I); and each access
// is charged a cost that depends on where the line currently lives relative
// to the requesting core.
//
// The model is deliberately simple but captures the effects the paper's
// evaluation depends on:
//
//   - a spinning TAS waiter pulls the lock line exclusive on every attempt,
//     so lock handoff under contention costs one transfer per waiter;
//   - an MCS waiter spins on its own line, which stays in its cache until
//     the predecessor writes it, so handoff costs a single transfer;
//   - consecutive lock holders on the same socket reacquire both the lock
//     word and the critical-section data with cheap intra-socket transfers,
//     which is where NUMA-aware locks win.
package memsim

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"shfllock/internal/alloc/arena"
	"shfllock/internal/topology"
)

// Word names a 64-bit cell of simulated memory.
type Word int32

// NoWord is the zero value sentinel for an unallocated word.
const NoWord Word = -1

const wordsPerLine = 8 // 64-byte lines

// lineState is the coherence state of a cache line.
type lineState uint8

const (
	stateInvalid lineState = iota // only in memory
	stateOwned                    // exclusive/modified in owner's cache
	stateShared                   // clean in one or more caches
)

// line is one simulated cache line's coherence record. It is sized to
// exactly one host cache line (64 bytes, pinned by TestLineLayout): Access
// touches every field of the record on each miss, so packing a record per
// line means one host miss per simulated miss. The narrow fields bound the
// model at 32767 cores (owner), 32767 distinct allocation tags (group,
// checked in group()) and 32767 concurrent watchers per line (watched) —
// orders of magnitude above any machine the harness sweeps.
type line struct {
	// busyUntil serializes cache-to-cache transfers of this line: a line
	// can move between caches only one transfer at a time, so concurrent
	// misses queue behind each other. This is what makes a TAS release
	// under contention O(waiters): every spinner's CAS must take its turn
	// moving the line before the next acquirer can proceed.
	busyUntil uint64
	sharers   bitset // caching cores when stateShared
	owner     int16  // owning core when stateOwned
	group     int16  // stats group
	watched   int16  // number of threads spin-waiting on this line
	state     lineState
}

// AccessKind distinguishes the operations the cost model charges.
type AccessKind uint8

const (
	AccessLoad AccessKind = iota
	AccessStore
	AccessRMW // atomic read-modify-write (CAS, SWAP, FAA)
)

// GroupStats aggregates line movement for one allocation group (tag).
type GroupStats struct {
	Loads       uint64
	Stores      uint64
	Atomics     uint64
	L1Hits      uint64
	LocalXfers  uint64 // intra-socket cache-line transfers
	RemoteXfers uint64 // cross-socket cache-line transfers
	MemFetches  uint64 // fetches from DRAM
}

// Transfers returns the total number of cache-to-cache transfers.
func (g GroupStats) Transfers() uint64 { return g.LocalXfers + g.RemoteXfers }

func (g *GroupStats) add(o GroupStats) {
	g.Loads += o.Loads
	g.Stores += o.Stores
	g.Atomics += o.Atomics
	g.L1Hits += o.L1Hits
	g.LocalXfers += o.LocalXfers
	g.RemoteXfers += o.RemoteXfers
	g.MemFetches += o.MemFetches
}

// Memory is a simulated physical memory with per-line coherence tracking.
type Memory struct {
	topo  topology.Machine
	costs topology.CostModel

	vals  []uint64
	lines []line

	groups     []GroupStats
	groupNames []string
	groupOf    map[string]int16

	// OnWrite, if set, is invoked after any store or RMW to a watched
	// line. The simulator uses it to wake spin-waiting threads.
	OnWrite func(line int32)

	// pooled marks a NewPooled memory; only those return to memoryPool.
	pooled bool
}

// New creates an empty memory for the given machine.
func New(topo topology.Machine, costs topology.CostModel) *Memory {
	if topo.Cores() > math.MaxInt16 {
		panic("memsim: machine too large for line.owner (int16)")
	}
	return &Memory{
		topo:    topo,
		costs:   costs,
		groupOf: make(map[string]int16),
	}
}

// memoryPool recycles Memory images across sweep points: the value and line
// arrays (the simulator's largest per-point allocations) keep their capacity
// between runs, and the group-name map keeps its buckets.
var memoryPool = arena.New(func(m *Memory) {
	*m = Memory{
		vals:       m.vals[:0],
		lines:      m.lines[:0],
		groups:     m.groups[:0],
		groupNames: m.groupNames[:0],
		groupOf:    m.groupOf,
	}
	clear(m.groupOf)
})

// NewPooled creates an empty memory like New, but drawn from (and, after
// Recycle, returned to) the per-point arena pool. Behaviour is identical to
// New in every observable way: Alloc fully initializes each appended word
// and line record, so reused capacity never leaks state between runs.
func NewPooled(topo topology.Machine, costs topology.CostModel) *Memory {
	if topo.Cores() > math.MaxInt16 {
		panic("memsim: machine too large for line.owner (int16)")
	}
	m := memoryPool.Get()
	if m.groupOf == nil {
		m.groupOf = make(map[string]int16)
	}
	m.topo = topo
	m.costs = costs
	m.pooled = true
	return m
}

// Recycle returns a pooled memory's backing to the arena. The caller must
// hold no references to the memory, its stats or its words afterwards; on a
// memory from New it is a no-op.
func (m *Memory) Recycle() {
	if !m.pooled {
		return
	}
	memoryPool.Put(m)
}

// Topology returns the machine the memory was built for.
func (m *Memory) Topology() topology.Machine { return m.topo }

// Costs returns the cost model in effect.
func (m *Memory) Costs() topology.CostModel { return m.costs }

func (m *Memory) group(tag string) int16 {
	if id, ok := m.groupOf[tag]; ok {
		return id
	}
	if len(m.groups) > math.MaxInt16 {
		panic("memsim: too many allocation tags for line.group (int16)")
	}
	id := int16(len(m.groups))
	m.groups = append(m.groups, GroupStats{})
	m.groupNames = append(m.groupNames, tag)
	m.groupOf[tag] = id
	return id
}

// Alloc allocates n contiguous words under the given stats tag. Words are
// packed 8 to a cache line, and an Alloc never shares a line with a previous
// Alloc (each allocation starts on a fresh line), mirroring how a C struct
// containing a lock is laid out.
func (m *Memory) Alloc(tag string, n int) []Word {
	if n <= 0 {
		panic("memsim: Alloc of non-positive size")
	}
	g := m.group(tag)
	// Start on a fresh line: pad the value array to a line boundary so
	// that LineOf(w) == w/wordsPerLine stays consistent.
	for len(m.vals)%wordsPerLine != 0 {
		m.vals = append(m.vals, 0)
	}
	ws := make([]Word, n)
	for i := range ws {
		if len(m.vals)%wordsPerLine == 0 {
			m.lines = append(m.lines, line{state: stateInvalid, owner: -1, group: g})
		}
		ws[i] = Word(len(m.vals))
		m.vals = append(m.vals, 0)
	}
	return ws
}

// AllocWord allocates a single word on its own cache line.
func (m *Memory) AllocWord(tag string) Word { return m.Alloc(tag, 1)[0] }

// AllocPadded allocates n words, each on its own cache line (padded to
// avoid false sharing), as queue-lock implementations do for per-socket or
// per-CPU structures.
func (m *Memory) AllocPadded(tag string, n int) []Word {
	ws := make([]Word, n)
	for i := range ws {
		ws[i] = m.AllocWord(tag)
	}
	return ws
}

// TagOf returns the allocation tag of the line holding w (diagnostics).
func (m *Memory) TagOf(w Word) string {
	return m.groupNames[m.lines[m.LineOf(w)].group]
}

// LineOf returns the cache line holding w.
func (m *Memory) LineOf(w Word) int32 { return int32(int(w) / wordsPerLine) }

// Watch marks the line holding w so that OnWrite fires when it is written.
// Watch calls nest; each must be paired with an Unwatch.
func (m *Memory) Watch(w Word) { m.lines[m.LineOf(w)].watched++ }

// Unwatch removes one watcher from the line holding w.
func (m *Memory) Unwatch(w Word) { m.lines[m.LineOf(w)].watched-- }

// Peek reads a word's value without simulating an access (for assertions
// and debugging only).
func (m *Memory) Peek(w Word) uint64 { return m.vals[w] }

// Poke sets a word's value without simulating an access (initialization).
func (m *Memory) Poke(w Word, v uint64) { m.vals[w] = v }

// Access performs a simulated memory access of the given kind by core at
// virtual time now, and returns its total latency in cycles, including any
// time spent queueing for the cache line. Cache hits complete immediately;
// transfers serialize per line.
func (m *Memory) Access(now uint64, core int, w Word, kind AccessKind) uint64 {
	ln := &m.lines[m.LineOf(w)]
	st := &m.groups[ln.group]
	var cost uint64
	switch kind {
	case AccessLoad:
		st.Loads++
		cost = m.chargeRead(core, ln, st)
	case AccessStore:
		st.Stores++
		cost = m.chargeWrite(core, ln, st)
	case AccessRMW:
		st.Atomics++
		cost = m.chargeWrite(core, ln, st) + m.costs.AtomicExtra
	}
	if cost <= m.costs.L1Hit+m.costs.AtomicExtra {
		return cost // hits don't occupy the line's transfer slot
	}
	start := now
	if ln.busyUntil > start {
		start = ln.busyUntil
	}
	// Writes and RMWs occupy the line's transfer slot for the full
	// transfer (ownership moves serially); read transfers pipeline at the
	// source cache and occupy only a fraction of the slot.
	occupy := cost
	if kind == AccessLoad {
		occupy = cost / 4
	}
	ln.busyUntil = start + occupy
	return (start - now) + cost
}

// NotifyWrite fires the OnWrite callback if the line holding w is watched.
// The simulator calls it after the new value is visible, so woken spinners
// observe the write.
func (m *Memory) NotifyWrite(w Word) {
	ln := m.LineOf(w)
	if m.lines[ln].watched > 0 && m.OnWrite != nil {
		m.OnWrite(ln)
	}
}

// chargeRead brings the line into core's cache in shared state.
func (m *Memory) chargeRead(core int, ln *line, st *GroupStats) uint64 {
	switch ln.state {
	case stateOwned:
		if int(ln.owner) == core {
			st.L1Hits++
			return m.costs.L1Hit
		}
		// Fetch from the owner; owner demotes to sharer.
		cost := m.xferCost(core, int(ln.owner), st)
		ln.sharers.reset()
		ln.sharers.set(int(ln.owner))
		ln.sharers.set(core)
		ln.state = stateShared
		ln.owner = -1
		return cost
	case stateShared:
		if ln.sharers.has(core) {
			st.L1Hits++
			return m.costs.L1Hit
		}
		src := m.nearestSharer(core, ln)
		cost := m.xferCost(core, src, st)
		ln.sharers.set(core)
		return cost
	default: // invalid: fetch from memory
		st.MemFetches++
		ln.state = stateShared
		ln.sharers.reset()
		ln.sharers.set(core)
		return m.costs.DRAM
	}
}

// chargeWrite obtains the line exclusively in core's cache, invalidating
// all other copies. Note a failed CAS still performs this step, exactly as
// real hardware acquires the line in M state before the compare.
func (m *Memory) chargeWrite(core int, ln *line, st *GroupStats) uint64 {
	switch ln.state {
	case stateOwned:
		if int(ln.owner) == core {
			st.L1Hits++
			return m.costs.L1Hit
		}
		cost := m.xferCost(core, int(ln.owner), st)
		ln.owner = int16(core)
		return cost
	case stateShared:
		if ln.sharers.has(core) && ln.sharers.count() == 1 {
			// Sole sharer: silent upgrade.
			st.L1Hits++
			ln.state = stateOwned
			ln.owner = int16(core)
			ln.sharers.reset()
			return m.costs.L1Hit
		}
		// Invalidate all sharers; cost is dominated by the farthest
		// invalidation we must wait for.
		cost := m.invalidateCost(core, ln, st)
		ln.state = stateOwned
		ln.owner = int16(core)
		ln.sharers.reset()
		return cost
	default:
		st.MemFetches++
		ln.state = stateOwned
		ln.owner = int16(core)
		ln.sharers.reset()
		return m.costs.DRAM
	}
}

// xferCost is the cost of moving a line from core src to core dst.
func (m *Memory) xferCost(dst, src int, st *GroupStats) uint64 {
	if m.topo.SocketOf(dst) == m.topo.SocketOf(src) {
		st.LocalXfers++
		return m.costs.LocalXfer
	}
	st.RemoteXfers++
	return m.costs.RemoteXfer
}

// nearestSharer picks a source core for a shared-line fetch, preferring a
// sharer on the requester's socket. The bitset is walked directly rather
// than through bitset.iter: this runs on every shared-line miss, and the
// iterator's closure would allocate each time.
func (m *Memory) nearestSharer(core int, ln *line) int {
	mySock := m.topo.SocketOf(core)
	best := -1
	limit := m.topo.Cores()
	for wi := 0; wi<<6 < limit; wi++ {
		wv := ln.sharers.word(wi)
		for wv != 0 {
			bit := bits.TrailingZeros64(wv)
			c := wi<<6 + bit
			if c >= limit {
				return best
			}
			if best == -1 {
				best = c
			}
			if m.topo.SocketOf(c) == mySock {
				return c
			}
			wv &^= 1 << uint(bit)
		}
	}
	return best
}

// invalidateCost charges for invalidating every foreign copy of a shared
// line; the requester stalls for the farthest acknowledgment. Like
// nearestSharer, it walks the bitset words directly to keep the write hot
// path allocation-free.
func (m *Memory) invalidateCost(core int, ln *line, st *GroupStats) uint64 {
	mySock := m.topo.SocketOf(core)
	remote := false
	local := false
	limit := m.topo.Cores()
	for wi := 0; wi<<6 < limit && !remote; wi++ {
		wv := ln.sharers.word(wi)
		for wv != 0 {
			bit := bits.TrailingZeros64(wv)
			c := wi<<6 + bit
			if c >= limit {
				break
			}
			wv &^= 1 << uint(bit)
			if c == core {
				continue
			}
			if m.topo.SocketOf(c) == mySock {
				local = true
			} else {
				remote = true
				break
			}
		}
	}
	switch {
	case remote:
		st.RemoteXfers++
		return m.costs.RemoteXfer
	case local:
		st.LocalXfers++
		return m.costs.LocalXfer
	default:
		st.L1Hits++
		return m.costs.L1Hit
	}
}

// Value accessors used by the simulator's typed operations.

// Get returns the current value of w (no cost; pair with Access).
func (m *Memory) Get(w Word) uint64 { return m.vals[w] }

// Set assigns the value of w (no cost; pair with Access).
func (m *Memory) Set(w Word, v uint64) { m.vals[w] = v }

// Stats returns aggregate statistics for the named group, or the zero
// value if the tag was never allocated.
func (m *Memory) Stats(tag string) GroupStats {
	if id, ok := m.groupOf[tag]; ok {
		return m.groups[id]
	}
	return GroupStats{}
}

// StatsPrefix sums statistics over all groups whose tag starts with
// prefix (e.g. one lock's words plus its queue nodes).
func (m *Memory) StatsPrefix(prefix string) GroupStats {
	var t GroupStats
	for i, name := range m.groupNames {
		if strings.HasPrefix(name, prefix) {
			t.add(m.groups[i])
		}
	}
	return t
}

// TotalStats sums statistics over all groups.
func (m *Memory) TotalStats() GroupStats {
	var t GroupStats
	for i := range m.groups {
		t.add(m.groups[i])
	}
	return t
}

// Groups returns the allocation tags seen so far.
func (m *Memory) Groups() []string { return append([]string(nil), m.groupNames...) }

// Footprint returns the number of simulated bytes allocated.
func (m *Memory) Footprint() uint64 { return uint64(len(m.lines)) * wordsPerLine * 8 }

func (m *Memory) String() string {
	return fmt.Sprintf("memsim(%d words, %d lines)", len(m.vals), len(m.lines))
}

// bitset is a bitmap of core IDs. The first inlineCores cores live in a
// fixed inline array — sized so the paper's 8x24 reference machine (192
// cores) fits exactly, making set/reset allocation-free on every swept
// topology — and larger machines spill to a heap-allocated overflow slice.
// The split also keeps the containing line record on its 64-byte budget.
const (
	inlineWords = 3
	inlineCores = inlineWords * 64
)

type bitset struct {
	a    [inlineWords]uint64
	over []uint64 // words for cores >= inlineCores, nil on small machines
}

func (b *bitset) set(i int) {
	if i < inlineCores {
		b.a[i>>6] |= 1 << (uint(i) & 63)
		return
	}
	idx := i>>6 - inlineWords
	for len(b.over) <= idx {
		b.over = append(b.over, 0)
	}
	b.over[idx] |= 1 << (uint(i) & 63)
}

func (b *bitset) has(i int) bool {
	if i < inlineCores {
		return b.a[i>>6]&(1<<(uint(i)&63)) != 0
	}
	idx := i>>6 - inlineWords
	return idx < len(b.over) && b.over[idx]&(1<<(uint(i)&63)) != 0
}

func (b *bitset) reset() {
	b.a = [inlineWords]uint64{}
	for i := range b.over {
		b.over[i] = 0
	}
}

func (b *bitset) count() int {
	n := 0
	for _, w := range b.a {
		n += bits.OnesCount64(w)
	}
	for _, w := range b.over {
		n += bits.OnesCount64(w)
	}
	return n
}

// word returns the wi'th 64-bit word of the bitmap (zero past the end), so
// the hot walkers can scan inline and overflow words uniformly.
func (b *bitset) word(wi int) uint64 {
	if wi < inlineWords {
		return b.a[wi]
	}
	wi -= inlineWords
	if wi < len(b.over) {
		return b.over[wi]
	}
	return 0
}

// iter yields the set bits below limit.
func (b *bitset) iter(limit int) func(func(int) bool) {
	return func(yield func(int) bool) {
		for wi := 0; wi<<6 < limit; wi++ {
			w := b.word(wi)
			for w != 0 {
				bit := bits.TrailingZeros64(w)
				c := wi<<6 + bit
				if c >= limit {
					return
				}
				if !yield(c) {
					return
				}
				w &^= 1 << uint(bit)
			}
		}
	}
}
