package memsim

import (
	"testing"
	"testing/quick"

	"shfllock/internal/topology"
)

func newMem() *Memory {
	return New(topology.Reference(), topology.DefaultCosts())
}

func TestAllocLayout(t *testing.T) {
	m := newMem()
	a := m.Alloc("a", 3)
	if len(a) != 3 {
		t.Fatalf("Alloc returned %d words", len(a))
	}
	// Words of one allocation are contiguous and share a line.
	if m.LineOf(a[0]) != m.LineOf(a[2]) {
		t.Errorf("3-word alloc spans lines: %d vs %d", m.LineOf(a[0]), m.LineOf(a[2]))
	}
	// A second allocation starts on a fresh line.
	b := m.Alloc("b", 1)
	if m.LineOf(b[0]) == m.LineOf(a[0]) {
		t.Errorf("separate allocs share a line")
	}
	// Nine words need two lines.
	c := m.Alloc("c", 9)
	if m.LineOf(c[0]) == m.LineOf(c[8]) {
		t.Errorf("9-word alloc fits one line")
	}
	if m.LineOf(c[0]) != m.LineOf(c[7]) {
		t.Errorf("first 8 words of alloc span lines")
	}
}

func TestAllocPadded(t *testing.T) {
	m := newMem()
	ws := m.AllocPadded("p", 4)
	seen := map[int32]bool{}
	for _, w := range ws {
		ln := m.LineOf(w)
		if seen[ln] {
			t.Fatalf("padded words share line %d", ln)
		}
		seen[ln] = true
	}
}

func TestReadCosts(t *testing.T) {
	m := newMem()
	costs := m.Costs()
	w := m.AllocWord("w")

	// First access: DRAM fetch.
	if c := access(m, 0, w, AccessLoad); c != costs.DRAM {
		t.Errorf("cold load cost = %d, want %d", c, costs.DRAM)
	}
	// Re-read by same core: L1 hit.
	if c := access(m, 0, w, AccessLoad); c != costs.L1Hit {
		t.Errorf("warm load cost = %d, want %d", c, costs.L1Hit)
	}
	// Read by another core on the same socket: local transfer.
	if c := access(m, 1, w, AccessLoad); c != costs.LocalXfer {
		t.Errorf("same-socket load cost = %d, want %d", c, costs.LocalXfer)
	}
	// Read by a remote-socket core: remote transfer.
	remote := topology.Reference().CoresPerSocket // first core of socket 1
	if c := access(m, remote, w, AccessLoad); c != costs.RemoteXfer {
		t.Errorf("remote load cost = %d, want %d", c, costs.RemoteXfer)
	}
	// Now shared by cores 0,1,remote: another same-socket core fetches
	// from the nearest sharer (local).
	if c := access(m, 2, w, AccessLoad); c != costs.LocalXfer {
		t.Errorf("shared local fetch cost = %d, want %d", c, costs.LocalXfer)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := newMem()
	costs := m.Costs()
	w := m.AllocWord("w")
	remote := topology.Reference().CoresPerSocket

	access(m, 0, w, AccessLoad)      // shared by 0
	access(m, remote, w, AccessLoad) // shared by 0, remote

	// Core 0 writes: must invalidate the remote copy.
	if c := access(m, 0, w, AccessStore); c != costs.RemoteXfer {
		t.Errorf("write-with-remote-sharer cost = %d, want %d", c, costs.RemoteXfer)
	}
	// Remote core reads again: transfer from owner.
	if c := access(m, remote, w, AccessLoad); c != costs.RemoteXfer {
		t.Errorf("read-after-invalidate cost = %d, want %d", c, costs.RemoteXfer)
	}
}

func TestSoleSharerUpgrade(t *testing.T) {
	m := newMem()
	costs := m.Costs()
	w := m.AllocWord("w")
	access(m, 3, w, AccessLoad)
	if c := access(m, 3, w, AccessStore); c != costs.L1Hit {
		t.Errorf("sole-sharer upgrade cost = %d, want L1 %d", c, costs.L1Hit)
	}
	// Now owned: repeated writes are L1 hits.
	if c := access(m, 3, w, AccessStore); c != costs.L1Hit {
		t.Errorf("owned store cost = %d, want %d", c, costs.L1Hit)
	}
}

func TestRMWCost(t *testing.T) {
	m := newMem()
	costs := m.Costs()
	w := m.AllocWord("w")
	access(m, 0, w, AccessStore)
	// Owned RMW: L1 + atomic premium.
	if c := access(m, 0, w, AccessRMW); c != costs.L1Hit+costs.AtomicExtra {
		t.Errorf("owned RMW cost = %d, want %d", c, costs.L1Hit+costs.AtomicExtra)
	}
	// RMW from another core: transfer + premium. This is why failed TAS
	// attempts are expensive: the line bounces even when the CAS fails.
	if c := access(m, 1, w, AccessRMW); c != costs.LocalXfer+costs.AtomicExtra {
		t.Errorf("stolen RMW cost = %d, want %d", c, costs.LocalXfer+costs.AtomicExtra)
	}
}

func TestStatsAccounting(t *testing.T) {
	m := newMem()
	w := m.AllocWord("lock")
	access(m, 0, w, AccessLoad)
	access(m, 0, w, AccessRMW)
	access(m, 24, w, AccessRMW)
	st := m.Stats("lock")
	if st.Loads != 1 || st.Atomics != 2 {
		t.Errorf("stats = %+v, want 1 load, 2 atomics", st)
	}
	if st.RemoteXfers != 1 {
		t.Errorf("remote transfers = %d, want 1", st.RemoteXfers)
	}
	if got := m.TotalStats(); got != st {
		t.Errorf("TotalStats %+v != group stats %+v", got, st)
	}
	if m.Stats("missing") != (GroupStats{}) {
		t.Errorf("unknown tag has non-zero stats")
	}
}

func TestWatchNotify(t *testing.T) {
	m := newMem()
	w := m.AllocWord("w")
	var fired []int32
	m.OnWrite = func(ln int32) { fired = append(fired, ln) }

	m.Set(w, 1)
	m.NotifyWrite(w)
	if len(fired) != 0 {
		t.Fatalf("notify fired with no watchers")
	}
	m.Watch(w)
	m.NotifyWrite(w)
	if len(fired) != 1 || fired[0] != m.LineOf(w) {
		t.Fatalf("notify did not fire for watched line: %v", fired)
	}
	m.Unwatch(w)
	m.NotifyWrite(w)
	if len(fired) != 1 {
		t.Fatalf("notify fired after Unwatch")
	}
}

func TestNestedWatch(t *testing.T) {
	m := newMem()
	w := m.AllocWord("w")
	n := 0
	m.OnWrite = func(int32) { n++ }
	m.Watch(w)
	m.Watch(w)
	m.Unwatch(w)
	m.NotifyWrite(w)
	if n != 1 {
		t.Fatalf("nested watch lost: fired %d times", n)
	}
}

func TestFootprint(t *testing.T) {
	m := newMem()
	m.Alloc("a", 1)
	if m.Footprint() != 64 {
		t.Errorf("1-word footprint = %d, want 64", m.Footprint())
	}
	m.Alloc("b", 9)
	if m.Footprint() != 64*3 {
		t.Errorf("footprint = %d, want %d", m.Footprint(), 64*3)
	}
}

// Property: value semantics — the last Set wins regardless of the access
// pattern driving coherence, and Access never corrupts values.
func TestAccessPreservesValues(t *testing.T) {
	topo := topology.Reference()
	f := func(ops []uint16, vals []uint64) bool {
		m := newMem()
		ws := m.Alloc("w", 4)
		want := make([]uint64, 4)
		for i, op := range ops {
			w := int(op) % 4
			core := (int(op) / 7) % topo.Cores()
			kind := AccessKind(int(op) % 3)
			access(m, core, ws[w], kind)
			if kind != AccessLoad && len(vals) > 0 {
				v := vals[i%len(vals)]
				m.Set(ws[w], v)
				want[w] = v
			}
		}
		for i := range ws {
			if m.Get(ws[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: costs are always one of the defined cost levels (plus the
// atomic premium for RMWs) — no access invents a cost.
func TestCostLevels(t *testing.T) {
	topo := topology.Reference()
	costs := topology.DefaultCosts()
	valid := map[uint64]bool{
		costs.L1Hit: true, costs.LocalXfer: true,
		costs.RemoteXfer: true, costs.DRAM: true,
	}
	f := func(ops []uint16) bool {
		m := newMem()
		w := m.AllocWord("w")
		for _, op := range ops {
			core := int(op) % topo.Cores()
			kind := AccessKind(int(op) % 3)
			c := access(m, core, w, kind)
			if kind == AccessRMW {
				c -= costs.AtomicExtra
			}
			if !valid[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
