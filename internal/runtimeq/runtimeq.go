// Package runtimeq answers the scheduler questions the goroutine-native
// lock family needs: "which P am I (approximately) on?", "how many Ps are
// there right now?" and "are there far more runnable goroutines than Ps?".
//
// The paper's shuffling policies (§4) assume waiters are pinned OS threads:
// a waiter's CPU — and therefore its NUMA socket — is stable for the whole
// queue wait, and oversubscription is visible to the kernel patch as
// NrRunning > #cores. Goroutines break both assumptions. Go exposes no
// portable current-P query, GOMAXPROCS can change at any time, and the
// number of goroutines bears no fixed relation to the number of CPUs. This
// package rebuilds usable approximations of all three signals from what the
// runtime does expose, cheap enough to consult on lock slow paths:
//
//   - PGroup: an approximate current-P bucket, derived from a sync.Pool of
//     identity tokens. sync.Pool storage is per-P under the hood, so a
//     Get/Put pair returns whatever token this P used last — after one warm
//     acquisition per P the token (and so the group id) is stable for as
//     long as the goroutine stays on that P. That is exactly the stability
//     CNA-style grouping needs (group identity must persist across the
//     queue wait); occasional migrations or collisions merely merge groups
//     for one acquisition, which costs batching efficiency, never
//     correctness.
//   - Procs: GOMAXPROCS, cached and refreshed on a coarse epoch, because
//     runtime.GOMAXPROCS(0) takes the scheduler lock and is too expensive
//     per acquisition.
//   - Oversubscribed: the userspace analog of the kernel patch's
//     "NrRunning > #cores → park immediately" guard, computed from the
//     runtime/metrics goroutine count against Procs.
//
// Refreshing is driven by Tick, which callers invoke once per contended
// acquisition: every refreshEpoch-th tick re-reads the runtime. Between
// refreshes every query is one or two atomic loads.
package runtimeq

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
)

// refreshEpoch is how many Ticks pass between runtime re-reads. Contended
// acquisitions arrive at MHz rates under load, so even a large epoch
// re-reads the runtime many times a second; an idle lock simply keeps the
// last values, which is fine — nothing is waiting on them.
const refreshEpoch = 1024

// DefaultOversubFactor is the goroutines-per-P multiple above which the
// runtime counts as oversubscribed. The kernel guard fires at
// NrRunning > #cores; userspace cannot see run-queue length, only the
// total goroutine count, which includes parked-but-live goroutines (a
// server holds thousands of idle connection handlers without any CPU
// pressure). The factor absorbs that slack: below it, spinning waiters
// mostly cost idle CPU; above it, every spinning waiter is statistically
// displacing a runnable goroutine — plausibly the lock holder itself.
const DefaultOversubFactor = 4

var (
	ticks    atomic.Uint64
	procs    atomic.Int64 // cached GOMAXPROCS
	goros    atomic.Int64 // cached goroutine count
	oversub  atomic.Bool  // cached goros > factor*procs
	factor   atomic.Int64
	override atomic.Int32 // 0 auto, 1 forced oversubscribed, 2 forced not

	refreshMu     sync.Mutex
	goroutineSamp = []metrics.Sample{{Name: "/sched/goroutines:goroutines"}}
)

func init() {
	factor.Store(DefaultOversubFactor)
	Refresh()
}

// Tick advances the refresh epoch; callers invoke it once per contended
// lock acquisition. Cost off the epoch boundary: one atomic add.
func Tick() {
	if ticks.Add(1)%refreshEpoch == 0 {
		Refresh()
	}
}

// Refresh re-reads GOMAXPROCS and the goroutine count immediately and
// recomputes the oversubscription verdict. Exported so programs that just
// changed GOMAXPROCS (or tests) can resync without waiting out an epoch.
func Refresh() {
	refreshMu.Lock()
	defer refreshMu.Unlock()
	p := int64(runtime.GOMAXPROCS(0))
	procs.Store(p)
	metrics.Read(goroutineSamp)
	var g int64
	if v := goroutineSamp[0].Value; v.Kind() == metrics.KindUint64 {
		g = int64(v.Uint64())
	} else {
		// The metric is part of the stable runtime/metrics set; this
		// branch exists for hypothetical future runtimes that drop it.
		g = int64(runtime.NumGoroutine())
	}
	goros.Store(g)
	oversub.Store(g > factor.Load()*p)
}

// Procs returns the cached GOMAXPROCS (≥ 1), at most one refresh epoch
// stale.
func Procs() int {
	if p := procs.Load(); p > 0 {
		return int(p)
	}
	return 1
}

// Goroutines returns the cached runtime goroutine count.
func Goroutines() int { return int(goros.Load()) }

// Buckets returns the number of P-groups PGroup spreads waiters over:
// exactly Procs. More buckets than Ps would split same-P waiters apart;
// fewer would merge distinct Ps and forfeit batching.
func Buckets() int { return Procs() }

// Oversubscribed reports whether goroutines outnumber Ps by more than the
// oversubscription factor (cached, epoch-refreshed). Lock code treats true
// as "a spinning waiter is burning a timeslice somebody runnable needs".
func Oversubscribed() bool {
	switch override.Load() {
	case 1:
		return true
	case 2:
		return false
	}
	return oversub.Load()
}

// SetOversubFactor changes the goroutines-per-P threshold (minimum 1) and
// recomputes the verdict immediately.
func SetOversubFactor(f int) {
	if f < 1 {
		f = 1
	}
	factor.Store(int64(f))
	Refresh()
}

// OverrideOversub forces the Oversubscribed verdict, for tests and for
// callers with better knowledge (e.g. a service that knows its goroutine
// count is dominated by idle connections). ClearOversubOverride restores
// the measured verdict.
func OverrideOversub(on bool) {
	if on {
		override.Store(1)
	} else {
		override.Store(2)
	}
}

// ClearOversubOverride returns Oversubscribed to the measured verdict.
func ClearOversubOverride() { override.Store(0) }

// token is a P-affinity identity: its id was assigned once at creation and
// never changes, so whichever P holds it in its pool slot keeps reporting
// the same group.
type token struct{ id uint64 }

var nextTokenID atomic.Uint64

var tokenPool = sync.Pool{New: func() any {
	// Creation order spreads fresh tokens across buckets round-robin; the
	// point is NOT the round-robin (that was the old qnode bug) but that a
	// token is created at most once per P per GC cycle and then pinned to
	// that P's pool slot, making the id it carries stable per P.
	return &token{id: nextTokenID.Add(1) - 1}
}}

// PGroup returns the approximate current-P bucket in [0, Buckets()). Two
// calls from the same P agree (same pooled token) until a GC clears the
// pool or the goroutine migrates mid-call; two different Ps usually
// disagree. Wrong answers only merge or split policy groups for one
// acquisition.
func PGroup() uint32 {
	t := tokenPool.Get().(*token)
	id := t.id
	tokenPool.Put(t)
	return uint32(id % uint64(Buckets()))
}
