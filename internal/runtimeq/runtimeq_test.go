package runtimeq

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestRefreshTracksGOMAXPROCS is the heart of the stale-singleP regression:
// the cached Procs value must follow a GOMAXPROCS change after a Refresh
// (and therefore after at most one Tick epoch).
func TestRefreshTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(old)
		Refresh()
	}()

	runtime.GOMAXPROCS(3)
	Refresh()
	if got := Procs(); got != 3 {
		t.Fatalf("Procs() = %d after GOMAXPROCS(3)+Refresh, want 3", got)
	}
	if got := Buckets(); got != 3 {
		t.Fatalf("Buckets() = %d, want 3", got)
	}

	runtime.GOMAXPROCS(1)
	// No explicit Refresh: an epoch's worth of Ticks must pick it up.
	for i := 0; i < refreshEpoch+1; i++ {
		Tick()
	}
	if got := Procs(); got != 1 {
		t.Fatalf("Procs() = %d after GOMAXPROCS(1)+epoch of Ticks, want 1", got)
	}
}

func TestOversubscribedFromGoroutineCount(t *testing.T) {
	defer Refresh()

	// Park enough goroutines to exceed factor*Procs by any margin, then
	// measure. They are idle, which is exactly the point: userspace can
	// only see the total count, and the factor is the documented slack.
	n := DefaultOversubFactor*Procs() + 64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); <-stop }()
	}
	Refresh()
	if !Oversubscribed() {
		t.Errorf("Oversubscribed() = false with %d extra goroutines over %d Ps", n, Procs())
	}
	if Goroutines() < n {
		t.Errorf("Goroutines() = %d, want >= %d", Goroutines(), n)
	}
	close(stop)
	wg.Wait()

	// Give the runtime a moment to retire the workers, then the verdict
	// must clear.
	deadline := time.Now().Add(5 * time.Second)
	for {
		Refresh()
		if !Oversubscribed() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Oversubscribed() still true %v after workers exited (%d goroutines)",
				5*time.Second, Goroutines())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestOversubOverride(t *testing.T) {
	defer ClearOversubOverride()
	OverrideOversub(true)
	if !Oversubscribed() {
		t.Error("override true not honored")
	}
	OverrideOversub(false)
	if Oversubscribed() {
		t.Error("override false not honored")
	}
	ClearOversubOverride()
}

// TestPGroupStableWithinP checks the stability property grouping relies on:
// consecutive probes from one goroutine (no migration forced between them)
// agree, and the value is always inside [0, Buckets()).
func TestPGroupStable(t *testing.T) {
	g0 := PGroup()
	for i := 0; i < 100; i++ {
		g := PGroup()
		if int(g) >= Buckets() {
			t.Fatalf("PGroup() = %d out of range [0,%d)", g, Buckets())
		}
		// On a single-P runtime the group is fully deterministic.
		if Procs() == 1 && g != g0 {
			t.Fatalf("PGroup() moved %d -> %d on a single-P runtime", g0, g)
		}
	}
}

func TestPGroupConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if g := PGroup(); int(g) >= Buckets() {
					t.Errorf("PGroup() = %d out of range", g)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSetOversubFactor(t *testing.T) {
	defer SetOversubFactor(DefaultOversubFactor)
	// Factor 1: the test binary alone (test runner + our goroutines) may
	// or may not exceed it; just assert the setter recomputes and clamps.
	SetOversubFactor(0)
	if factor.Load() != 1 {
		t.Errorf("factor not clamped to 1, got %d", factor.Load())
	}
}
