package shuffle

import (
	"sync"
	"sync/atomic"
)

// Meta is the self-tuning meta-policy ("auto" in the registry): a composite
// policy that watches its own lock's lockstat interval diffs and switches
// between the concrete stages — numa, prio, goro, ablation-base — the same
// way the kvserver controller switches lock families, but one layer down,
// so any core or simlocks lock can self-tune without a controller process.
//
// Meta is a Pinner: every walk calls Pin exactly once and runs entirely
// under the returned stage, so a stage switch is an ordinary epoched
// transition (recorded in the Meta's own TransitionLog) and can never tear
// a round. Evaluation happens inside Pin on a pin-count cadence — there is
// no background goroutine, which keeps the simulator deterministic: the
// same acquisition sequence evaluates at the same points every run.

// Obs is one interval observation: the signals Meta decides on, extracted
// from a lockstat interval diff by the observer (see lockstat.MetaObserver).
type Obs struct {
	// Ops counts acquisition attempts this interval (acquires + aborts);
	// below MetaConfig.MinOps the interval is ignored.
	Ops uint64
	// Aborts and AbortFrac describe timeout pressure.
	Aborts    uint64
	AbortFrac float64
	// ParkRate is parks per attempt: zero means waiters never blocked, so
	// wakeup-efficiency signals carry no information.
	ParkRate float64
	// Shuffles counts shuffling rounds; ShuffleEff is grouped wakes per
	// round (lockstat.Diff's precomputed ratio).
	Shuffles   uint64
	ShuffleEff float64
	// WaitP50 and WaitP99 are wait-time percentiles in substrate units
	// (only their ratio is used).
	WaitP50, WaitP99 float64
	// Oversub is the live runtime oversubscription verdict. Always false
	// on the simulator.
	Oversub bool
}

// MetaSource produces the next interval observation. The observer owns the
// previous-snapshot state; Meta just calls it on its evaluation cadence.
// On the simulator the source must read only engine metadata (counters),
// never simulated memory, and must not consult wall clocks.
type MetaSource func() Obs

// MetaConfig tunes the decision ladder. Zero values select the defaults.
type MetaConfig struct {
	// EvalEvery is the pin-count cadence between evaluations (default 256):
	// evaluation cost and reaction latency trade off here.
	EvalEvery uint64
	// MinOps ignores intervals with fewer attempts (default 32).
	MinOps uint64
	// Settle is the hysteresis: how many consecutive intervals must lean
	// toward the same stage before switching (default 2).
	Settle int
	// HiAbort/MinAborts enter the abort-storm regime (defaults 0.25 / 8;
	// the absolute floor mirrors the kvserver controller's ctlMinAborts so
	// one unlucky timeout on a quiet lock cannot flap the stage).
	HiAbort   float64
	MinAborts uint64
	// LoAbort is the calm threshold for leaving the storm regime (0.05).
	LoAbort float64
	// LoEff/MinShuffles flee to ablation-base when shuffling ran but
	// grouped almost no wakes (defaults 0.05 / 16).
	LoEff       float64
	MinShuffles uint64
	// LoPark is the park rate under which ablation-base returns home:
	// at base no shuffling runs, so efficiency is unmeasurable and park
	// pressure is the recovery signal (default 0.01).
	LoPark float64
	// HiTail enables the prio stage: switch when WaitP99 >= HiTail*WaitP50
	// (default 0 = prio disabled; priorities only help workloads that set
	// them).
	HiTail float64
	// Goro enables the goro stage under oversubscription. Native substrate
	// only — the goro policy reads live runtime state.
	Goro bool
}

func (c MetaConfig) withDefaults() MetaConfig {
	if c.EvalEvery == 0 {
		c.EvalEvery = 256
	}
	if c.MinOps == 0 {
		c.MinOps = 32
	}
	if c.Settle == 0 {
		c.Settle = 2
	}
	if c.HiAbort == 0 {
		c.HiAbort = 0.25
	}
	if c.MinAborts == 0 {
		c.MinAborts = 8
	}
	if c.LoAbort == 0 {
		c.LoAbort = 0.05
	}
	if c.LoEff == 0 {
		c.LoEff = 0.05
	}
	if c.MinShuffles == 0 {
		c.MinShuffles = 16
	}
	if c.LoPark == 0 {
		c.LoPark = 0.01
	}
	return c
}

// Meta implements Policy and Pinner. The unpinned Policy methods delegate
// to the current stage one call at a time — safe but tearable, so every
// lock-layer call site pins first; the delegation exists only so a Meta is
// a valid Policy wherever one is accepted.
type Meta struct {
	cfg  MetaConfig
	box  PolicyBox // current stage; its log is the meta's transition record
	pins atomic.Uint64

	mu   sync.Mutex // serializes evaluation and guards src/now/lean
	src  MetaSource
	now  func() uint64
	lean struct {
		want  string
		count int
	}
}

// NewMeta builds a self-tuning policy starting at the numa stage. Attach an
// observation source with SetSource; without one it behaves exactly like
// NUMA() forever.
func NewMeta(cfg MetaConfig) *Meta {
	m := &Meta{cfg: cfg.withDefaults()}
	m.box.Set(NUMA(), "init", 0)
	return m
}

// SetSource installs the interval observer. Call before the owning lock
// sees traffic, or accept that a few early evaluations are skipped.
func (m *Meta) SetSource(src MetaSource) {
	m.mu.Lock()
	m.src = src
	m.mu.Unlock()
}

// SetClock installs the timestamp source for recorded transitions: engine
// virtual time on the simulator, wall-clock nanoseconds natively. Without
// one, transitions are stamped 0.
func (m *Meta) SetClock(now func() uint64) {
	m.mu.Lock()
	m.now = now
	m.mu.Unlock()
}

// Pin returns the stage for exactly one walk, and is the evaluation
// heartbeat: every EvalEvery-th pin runs the decision ladder. TryLock keeps
// concurrent pinners from stacking up behind an evaluation — losing a beat
// is harmless, blocking a shuffler is not.
func (m *Meta) Pin() Policy {
	n := m.pins.Add(1)
	if n%m.cfg.EvalEvery == 0 && m.mu.TryLock() {
		m.evaluate()
		m.mu.Unlock()
	}
	return m.stage()
}

func (m *Meta) stage() Policy {
	if p := m.box.Get(); p != nil {
		return p
	}
	return NUMA()
}

// Epoch returns the stage fence value (monotone).
func (m *Meta) Epoch() uint64 { return m.box.Epoch() }

// Log exposes the stage-switch record for post-mortems and debug surfaces.
func (m *Meta) Log() *TransitionLog { return m.box.Log() }

// evaluate runs one decision with m.mu held.
func (m *Meta) evaluate() {
	if m.src == nil {
		return
	}
	o := m.src()
	if o.Ops < m.cfg.MinOps {
		m.lean.want, m.lean.count = "", 0
		return
	}
	want, why := m.decide(o)
	cur := m.stage().Name()
	if want == cur {
		m.lean.want, m.lean.count = "", 0
		return
	}
	next := ByName(want)
	if next == nil {
		return
	}
	if m.lean.want != want {
		m.lean.want, m.lean.count = want, 0
	}
	m.lean.count++
	if m.lean.count < m.cfg.Settle {
		return
	}
	m.lean.want, m.lean.count = "", 0
	var at uint64
	if m.now != nil {
		at = m.now()
	}
	m.box.Set(next, "meta:"+why, at)
}

// decide is the ladder, most urgent regime first. Recovery needs no extra
// rules: when nothing urgent holds, the answer is the home stage (numa),
// so goro/prio/base all drain back once their trigger clears.
func (m *Meta) decide(o Obs) (want, why string) {
	cur := m.stage().Name()
	if m.cfg.Goro && o.Oversub {
		return "goro", "oversubscribed"
	}
	if o.Aborts >= m.cfg.MinAborts && o.AbortFrac >= m.cfg.HiAbort {
		// Abort storms: every reclaim is queue surgery; stop shuffling and
		// let the grant walk do the minimum (the Fissile lesson — switch
		// regimes rather than tune the doomed one).
		return "ablation-base", "abort-storm"
	}
	if cur == "ablation-base" {
		// No shuffling runs at base, so efficiency is unmeasurable here;
		// recover on calm park/abort pressure instead.
		if o.ParkRate <= m.cfg.LoPark && o.AbortFrac <= m.cfg.LoAbort {
			return "numa", "calm"
		}
		return cur, "hold"
	}
	if o.ParkRate > 0 && o.Shuffles >= m.cfg.MinShuffles && o.ShuffleEff <= m.cfg.LoEff {
		return "ablation-base", "low-shuffle-eff"
	}
	if m.cfg.HiTail > 0 && o.WaitP50 > 0 && o.WaitP99 >= m.cfg.HiTail*o.WaitP50 {
		return "prio", "tail-inversion"
	}
	return "numa", "calm"
}

// Policy delegation: one atomic stage read per call. Lock-layer call sites
// never use these directly — they Pin first.
func (m *Meta) Name() string                   { return "auto" }
func (m *Meta) Shuffles() bool                 { return m.stage().Shuffles() }
func (m *Meta) PassRole() bool                 { return m.stage().PassRole() }
func (m *Meta) UseHint() bool                  { return m.stage().UseHint() }
func (m *Meta) Budget() uint64                 { return m.stage().Budget() }
func (m *Meta) Match(c Ctx) bool               { return m.stage().Match(c) }
func (m *Meta) WakeGrouped(blocking bool) bool { return m.stage().WakeGrouped(blocking) }

func init() {
	RegisterFactory("auto", func() Policy { return NewMeta(MetaConfig{}) })
}
