package shuffle

import (
	"sync"
	"testing"
)

// metaDriver feeds a Meta a script of observations and pins once per
// evaluation beat (EvalEvery=1 makes every pin a beat).
type metaDriver struct {
	mu     sync.Mutex
	script []Obs
	i      int
}

func (d *metaDriver) next() Obs {
	d.mu.Lock()
	defer d.mu.Unlock()
	o := d.script[d.i]
	if d.i < len(d.script)-1 {
		d.i++
	}
	return o
}

func newTestMeta(cfg MetaConfig, script ...Obs) (*Meta, *metaDriver) {
	cfg.EvalEvery = 1
	m := NewMeta(cfg)
	d := &metaDriver{script: script}
	m.SetSource(d.next)
	return m, d
}

// calm is an interval with plenty of traffic and nothing urgent.
func calm() Obs {
	return Obs{Ops: 1000, ParkRate: 0.2, Shuffles: 100, ShuffleEff: 0.8}
}

// TestMetaDecisionLadder walks each regime trigger through Pin and asserts
// the stage the meta settles on (Settle=1 so one interval decides).
func TestMetaDecisionLadder(t *testing.T) {
	cases := []struct {
		name  string
		cfg   MetaConfig
		obs   Obs
		stage string
	}{
		{"calm-holds-numa", MetaConfig{Settle: 1}, calm(), "numa"},
		{"abort-storm-to-base", MetaConfig{Settle: 1},
			Obs{Ops: 1000, Aborts: 400, AbortFrac: 0.4, ParkRate: 0.2}, "ablation-base"},
		{"low-eff-to-base", MetaConfig{Settle: 1},
			Obs{Ops: 1000, ParkRate: 0.3, Shuffles: 100, ShuffleEff: 0.01}, "ablation-base"},
		{"tail-inversion-to-prio", MetaConfig{Settle: 1, HiTail: 10},
			Obs{Ops: 1000, ParkRate: 0.2, Shuffles: 100, ShuffleEff: 0.8, WaitP50: 100, WaitP99: 5000}, "prio"},
		{"prio-disabled-by-default", MetaConfig{Settle: 1},
			Obs{Ops: 1000, ParkRate: 0.2, Shuffles: 100, ShuffleEff: 0.8, WaitP50: 100, WaitP99: 5000}, "numa"},
		{"oversub-to-goro", MetaConfig{Settle: 1, Goro: true},
			Obs{Ops: 1000, Oversub: true}, "goro"},
		{"oversub-ignored-without-goro", MetaConfig{Settle: 1},
			Obs{Ops: 1000, Oversub: true, ParkRate: 0.2, Shuffles: 100, ShuffleEff: 0.8}, "numa"},
		{"abort-storm-beats-tail", MetaConfig{Settle: 1, HiTail: 10},
			Obs{Ops: 1000, Aborts: 300, AbortFrac: 0.3, WaitP50: 100, WaitP99: 5000}, "ablation-base"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, _ := newTestMeta(tc.cfg, tc.obs)
			for i := 0; i < 4; i++ {
				m.Pin()
			}
			if got := m.Pin().Name(); got != tc.stage {
				t.Fatalf("settled on %q, want %q\nlog:\n%s", got, tc.stage, m.Log().String())
			}
		})
	}
}

// TestMetaRecovery: ablation-base is not a trap — once park and abort
// pressure calm down the meta returns to numa, and the round trip is two
// recorded transitions past the boot install.
func TestMetaRecovery(t *testing.T) {
	m, d := newTestMeta(MetaConfig{Settle: 1},
		Obs{Ops: 1000, Aborts: 400, AbortFrac: 0.4, ParkRate: 0.2})
	for i := 0; i < 4; i++ {
		m.Pin()
	}
	if got := m.Pin().Name(); got != "ablation-base" {
		t.Fatalf("storm did not reach ablation-base (at %q)", got)
	}
	d.mu.Lock()
	d.script = []Obs{{Ops: 1000, ParkRate: 0.001, AbortFrac: 0.01}}
	d.i = 0
	d.mu.Unlock()
	for i := 0; i < 4; i++ {
		m.Pin()
	}
	if got := m.Pin().Name(); got != "numa" {
		t.Fatalf("calm did not recover to numa (at %q)", got)
	}
	if m.Epoch() != 3 { // init -> storm -> recovery
		t.Fatalf("epoch %d after boot+storm+recovery, want 3\nlog:\n%s", m.Epoch(), m.Log().String())
	}
}

// TestMetaHysteresis: with Settle=2 a single urgent interval must not
// switch; the second consecutive one does. An interval that votes "stay"
// in between resets the streak.
func TestMetaHysteresis(t *testing.T) {
	storm := Obs{Ops: 1000, Aborts: 400, AbortFrac: 0.4, ParkRate: 0.2}

	m, _ := newTestMeta(MetaConfig{Settle: 2}, storm, calm(), storm, calm())
	for i := 0; i < 4; i++ {
		m.Pin()
	}
	if got := m.Pin().Name(); got != "numa" {
		t.Fatalf("interleaved storm intervals switched the stage to %q; settle=2 requires consecutive votes", got)
	}

	m, _ = newTestMeta(MetaConfig{Settle: 2}, storm, storm, storm)
	for i := 0; i < 4; i++ {
		m.Pin()
	}
	if got := m.Pin().Name(); got != "ablation-base" {
		t.Fatalf("two consecutive storm intervals settled on %q, want ablation-base", got)
	}
}

// TestMetaMinOpsFloor: quiet intervals are not judged — they neither switch
// the stage nor keep a leaning streak alive.
func TestMetaMinOpsFloor(t *testing.T) {
	quietStorm := Obs{Ops: 10, Aborts: 9, AbortFrac: 0.9}
	m, _ := newTestMeta(MetaConfig{Settle: 1}, quietStorm)
	for i := 0; i < 8; i++ {
		m.Pin()
	}
	if got := m.Pin().Name(); got != "numa" {
		t.Fatalf("a %d-op interval switched the stage to %q; MinOps floor is 32", quietStorm.Ops, got)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch moved to %d on sub-floor intervals", m.Epoch())
	}
}

// TestMetaAbortFloor: the absolute MinAborts floor keeps one unlucky
// timeout on a busy lock from reading as a storm.
func TestMetaAbortFloor(t *testing.T) {
	m, _ := newTestMeta(MetaConfig{Settle: 1},
		Obs{Ops: 100, Aborts: 4, AbortFrac: 0.3, ParkRate: 0.2, Shuffles: 100, ShuffleEff: 0.8})
	for i := 0; i < 4; i++ {
		m.Pin()
	}
	if got := m.Pin().Name(); got != "numa" {
		t.Fatalf("4 aborts switched the stage to %q; MinAborts floor is 8", got)
	}
}

// TestMetaTransitionsRecorded: stage switches land in the meta's log with
// the meta:<signal> trigger, so post-mortems can tell self-tuning from api
// and chaos transitions.
func TestMetaTransitionsRecorded(t *testing.T) {
	m, _ := newTestMeta(MetaConfig{Settle: 1},
		Obs{Ops: 1000, Aborts: 400, AbortFrac: 0.4})
	m.SetClock(func() uint64 { return 99 })
	for i := 0; i < 4; i++ {
		m.Pin()
	}
	tail := m.Log().Tail(1)
	if len(tail) != 1 {
		t.Fatal("no transition recorded")
	}
	tr := tail[0]
	if tr.Trigger != "meta:abort-storm" || tr.From != "numa" || tr.To != "ablation-base" || tr.At != 99 {
		t.Fatalf("recorded %+v, want numa->ablation-base (meta:abort-storm) at 99", tr)
	}
}
