package shuffle

import (
	"fmt"
	"sort"
	"sync"
)

// Ctx exposes what a Policy.Match decision may examine: the shuffler and
// the candidate waiter under the scan cursor. CandidateSocket, ShufflerPrio
// and CandidatePrio are charged node-line loads on the simulator — a policy
// should call each at most once per Match and only when the decision needs
// it, because every call is real cache-line traffic on both substrates.
// ShufflerSocket is the shuffling thread's own placement and is free.
type Ctx interface {
	ShufflerSocket() uint64
	CandidateSocket() uint64
	ShufflerPrio() uint64
	CandidatePrio() uint64
}

// Policy decides who a shuffling round groups, how the batch is bounded,
// whether grouped waiters are pre-woken, and how the shuffler role travels.
// Implementations must be stateless (shared by every lock using them).
type Policy interface {
	// Name identifies the policy in registries, traces and lockstat.
	Name() string
	// Shuffles reports whether shuffling rounds run at all. The ablation
	// "Base" stage returns false: the engine then only consumes the role.
	Shuffles() bool
	// PassRole reports whether a productive round relays the shuffler role
	// to the last grouped waiter (the paper's "+Shufflers" stage).
	PassRole() bool
	// UseHint reports whether rounds resume from the stored traversal
	// frontier instead of rescanning from the shuffler ("+qlast").
	UseHint() bool
	// Budget caps the batch counter: rounds abort once a group reaches it.
	Budget() uint64
	// Match reports whether the candidate belongs in the shuffler's group.
	Match(c Ctx) bool
	// WakeGrouped reports whether grouping a waiter also moves it to the
	// spinning state (waking it if parked). Standard policies return the
	// blocking flag: pre-waking only matters when waiters park.
	WakeGrouped(blocking bool) bool
}

// numaPolicy is the paper's default: group waiters on the shuffler's NUMA
// socket so the lock hops sockets once per batch instead of per handoff.
type numaPolicy struct{}

func (numaPolicy) Name() string                   { return "numa" }
func (numaPolicy) Shuffles() bool                 { return true }
func (numaPolicy) PassRole() bool                 { return true }
func (numaPolicy) UseHint() bool                  { return true }
func (numaPolicy) Budget() uint64                 { return MaxShuffles }
func (numaPolicy) Match(c Ctx) bool               { return c.CandidateSocket() == c.ShufflerSocket() }
func (numaPolicy) WakeGrouped(blocking bool) bool { return blocking }

// prioPolicy groups strictly higher-priority waiters ahead of the rest,
// falling back to NUMA grouping among equals (Section 4.3's "shuffling as
// a generic policy vehicle": same engine, different Match).
type prioPolicy struct{}

func (prioPolicy) Name() string   { return "prio" }
func (prioPolicy) Shuffles() bool { return true }
func (prioPolicy) PassRole() bool { return true }
func (prioPolicy) UseHint() bool  { return true }
func (prioPolicy) Budget() uint64 { return MaxShuffles }
func (prioPolicy) Match(c Ctx) bool {
	sp := c.ShufflerPrio()
	cp := c.CandidatePrio()
	if cp != sp {
		return cp > sp
	}
	return c.CandidateSocket() == c.ShufflerSocket()
}
func (prioPolicy) WakeGrouped(blocking bool) bool { return blocking }

// Ablation stages for the paper's Figure 11(e) factor analysis. Each stage
// layers one mechanism onto the previous:
//
//	stage 0 "base":       plain MCS-style queue, no shuffling
//	stage 1 "+shuffler":  one NUMA round per lock pass, role not relayed
//	stage 2 "+shufflers": productive rounds relay the role down the chain
//	stage 3 "+qlast":     rounds resume from the stored traversal frontier
type ablationPolicy struct {
	name     string
	shuffles bool
	passRole bool
	useHint  bool
}

func (p ablationPolicy) Name() string                   { return p.name }
func (p ablationPolicy) Shuffles() bool                 { return p.shuffles }
func (p ablationPolicy) PassRole() bool                 { return p.passRole }
func (p ablationPolicy) UseHint() bool                  { return p.useHint }
func (p ablationPolicy) Budget() uint64                 { return MaxShuffles }
func (p ablationPolicy) Match(c Ctx) bool               { return c.CandidateSocket() == c.ShufflerSocket() }
func (p ablationPolicy) WakeGrouped(blocking bool) bool { return blocking }

// NUMA is the default grouping policy (group by the shuffler's socket).
func NUMA() Policy { return numaPolicy{} }

// Priority groups higher-priority waiters first, NUMA among equals.
func Priority() Policy { return prioPolicy{} }

// Ablation returns the factor-analysis stage policies; stage is clamped
// to [0,3]. Stage 3 is behaviourally identical to NUMA().
func Ablation(stage int) Policy {
	if stage < 0 {
		stage = 0
	}
	if stage > 3 {
		stage = 3
	}
	return [...]Policy{
		ablationPolicy{name: "ablation-base"},
		ablationPolicy{name: "ablation+shuffler", shuffles: true},
		ablationPolicy{name: "ablation+shufflers", shuffles: true, passRole: true},
		ablationPolicy{name: "ablation+qlast", shuffles: true, passRole: true, useHint: true},
	}[stage]
}

var (
	regMu     sync.RWMutex
	registry  = map[string]Policy{}
	factories = map[string]func() Policy{}
)

// Register makes a policy available to ByName; it panics on duplicates so
// misconfigured registrations fail loudly at init time.
func Register(p Policy) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name()]; dup {
		panic(fmt.Sprintf("shuffle: duplicate policy %q", p.Name()))
	}
	registry[p.Name()] = p
}

// RegisterFactory registers a stateful policy by constructor: ByName builds
// a fresh instance per call, so two locks resolving the same name never
// share tuning state. Stateless policies use Register.
func RegisterFactory(name string, f func() Policy) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("shuffle: duplicate policy %q", name))
	}
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("shuffle: duplicate policy factory %q", name))
	}
	factories[name] = f
}

// ByName returns a registered policy, or nil when unknown. Factory-backed
// names (the self-tuning "auto") yield a fresh instance per call.
func ByName(name string) Policy {
	regMu.RLock()
	defer regMu.RUnlock()
	if p, ok := registry[name]; ok {
		return p
	}
	if f, ok := factories[name]; ok {
		return f()
	}
	return nil
}

// Names lists the registered policies in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry)+len(factories))
	for n := range registry {
		out = append(out, n)
	}
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(NUMA())
	Register(Priority())
	for s := 0; s <= 3; s++ {
		Register(Ablation(s))
	}
}
