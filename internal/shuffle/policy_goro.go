package shuffle

import "shfllock/internal/runtimeq"

// goroPolicy is the goroutine-native grouping policy: the "socket" the
// substrate reports is an approximate current-P bucket (the core substrate
// re-stamps it per acquisition from internal/runtimeq), so Match groups
// waiters that are probably sharing a P — the goroutine analog of sharing
// a NUMA socket, and the only grouping with stable identity when waiters
// are goroutines.
//
// WakeGrouped consults the live oversubscription verdict: pre-waking a
// grouped-but-parked waiter is a pure win on an idle machine (it spins
// ready to take the grant off the critical path) but a pure loss on a
// saturated one (the wakeup adds a spinner to a run queue that already has
// more goroutines than Ps; the grant-time wake in passHead still happens
// regardless). Because it reads real runtime state, this policy is meant
// for the native substrate; on the simulator it would break run
// determinism, so it is deliberately not used by any experiment.
type goroPolicy struct{}

func (goroPolicy) Name() string     { return "goro" }
func (goroPolicy) Shuffles() bool   { return true }
func (goroPolicy) PassRole() bool   { return true }
func (goroPolicy) UseHint() bool    { return true }
func (goroPolicy) Budget() uint64   { return MaxShuffles }
func (goroPolicy) Match(c Ctx) bool { return c.CandidateSocket() == c.ShufflerSocket() }
func (goroPolicy) WakeGrouped(blocking bool) bool {
	return blocking && !runtimeq.Oversubscribed()
}

// Goro is the goroutine-native grouping policy (group by approximate P,
// suppress pre-wakes under oversubscription).
func Goro() Policy { return goroPolicy{} }

func init() {
	Register(Goro())
}
