// Package shuffle is the substrate-independent shuffling layer of the
// ShflLock family: one queue-walk state machine (the paper's Figure 4
// lines 59-108 plus the +qlast traversal-resumption optimization),
// parameterized over
//
//   - a Substrate — how queue-node fields are read and written. The native
//     locks (internal/core) back it with sync/atomic on *qnode; the
//     simulator (internal/simlocks) backs it with sim.Word accesses so the
//     cost model still charges exact cache-line traffic; and
//   - a Policy — who gets grouped behind the shuffler's chain, how large a
//     batch may grow, whether grouped waiters are pre-woken, and whether
//     the shuffler role is relayed (see policy.go).
//
// Both lock substrates used to carry their own hand-inlined copy of this
// walk, which let them silently diverge (a steal-bit bug once existed only
// on the native side). Now the decision procedure exists once; the
// substrates contribute only memory accesses and bookkeeping hooks, and a
// differential test replays identical queue snapshots through both and
// asserts byte-identical decision traces.
package shuffle

// Queue-node status values (Figures 4 and 6 of the paper). Both substrates
// use these exact values: 0 must be the initial state of a fresh node.
const (
	StatusWaiting  uint64 = 0 // spinning on the node; may park (blocking)
	StatusReady    uint64 = 1 // head of the queue: go take the TAS lock
	StatusParked   uint64 = 2 // descheduled; must be woken
	StatusSpinning uint64 = 3 // marked by a shuffler: keep spinning

	// StatusAbandoned marks a node whose waiter gave up the acquisition
	// (timeout or context cancellation, the MCSTP idea). The waiter CASes
	// its own status to this value and leaves; the node stays linked until
	// a shuffling round or the queue head's grant walk unlinks it.
	StatusAbandoned uint64 = 4
	// StatusReclaimed is the terminal state of an abandoned node: whoever
	// unlinked it stores this value, after which no queue participant holds
	// a reference. On the simulator this is the owner's signal that its
	// per-thread node may be reused; on the native substrate the node is
	// simply left to the garbage collector.
	StatusReclaimed uint64 = 5
)

// MaxShuffles caps how many waiters one policy group may batch before the
// shuffler must stand down, bounding unfairness to the ungrouped waiters
// (MAX_SHUFFLES = 1024 in the paper's pseudocode).
const MaxShuffles = 1024

// RoleWhy classifies a shuffler-role grant for substrate bookkeeping.
type RoleWhy uint8

const (
	// RoleSelfRetry re-arms the shuffler's own flag after an unproductive
	// round: a waiting (non-head) shuffler keeps polling for group members.
	RoleSelfRetry RoleWhy = iota
	// RolePassChain hands the role to the last waiter the round grouped.
	RolePassChain
)

// Substrate supplies the memory accesses and bookkeeping hooks one
// shuffling round needs. N identifies a queue node: a *qnode on the native
// substrate, a simulated-memory handle on the simulator. The zero value of
// N is "no node".
//
// The Load*/Store*/Swap* accessors and Socket/Prio are the charged
// operations: on the simulator each one costs exactly the cache-line
// traffic of its real counterpart, so Run must call them in the same order
// a hand-inlined walk would. The remaining methods are bookkeeping
// (counters, probes, debug oracles) and must not touch simulated memory.
type Substrate[N comparable] interface {
	// LoadNext returns n's queue successor (zero N when none).
	LoadNext(n N) N
	// StoreNext links v as n's queue successor.
	StoreNext(n N, v N)
	// LoadStatus returns n's status word.
	LoadStatus(n N) uint64
	// StoreStatus writes n's status word.
	StoreStatus(n N, v uint64)
	// SwapStatus atomically exchanges n's status word.
	SwapStatus(n N, v uint64) uint64
	// StoreShuffler writes n's shuffler-role flag.
	StoreShuffler(n N, v uint64)
	// LoadBatch returns n's batch counter.
	LoadBatch(n N) uint64
	// StoreBatch writes n's batch counter.
	StoreBatch(n N, v uint64)
	// LoadHint returns n's traversal-resumption hint (+qlast).
	LoadHint(n N) N
	// StoreHint writes n's traversal-resumption hint.
	StoreHint(n N, v N)

	// ShufflerSocket returns the shuffling thread's own NUMA socket. The
	// shuffler knows where it runs, so this is never a charged access.
	ShufflerSocket() uint64
	// Socket returns a node's NUMA socket (charged node-line load).
	Socket(n N) uint64
	// Prio returns a node's scheduling priority (charged node-line load).
	Prio(n N) uint64

	// LockByteFree reports whether the TAS byte of the lock word is clear
	// (charged lock-line load) — the queue head's exit condition.
	LockByteFree() bool

	// SetSpinning moves a grouped waiter into the spinning state, waking
	// it if parked (the Figure 6 wakeup policy, off the critical path).
	SetSpinning(n N)

	// MayAbort reports whether any waiter on this lock has ever started an
	// abortable acquisition. It gates the abandoned-node handling in the
	// scan: while false, Run issues exactly the charged accesses of the
	// original pseudocode, so abort-free simulated runs stay byte-identical
	// to builds without the abort protocol. Never a charged access.
	MayAbort() bool
	// Reclaim reports an abandoned node being unlinked by the scan, after
	// its status was set to StatusReclaimed. Bookkeeping only.
	Reclaim(n N)

	// RoundStart reports a shuffling round being attempted (counted even
	// if the batch budget then aborts it).
	RoundStart(n N)
	// RoleTaken reports the round consuming the shuffler role.
	RoleTaken(n N)
	// RoundAbort reports the round standing down at the batch budget.
	RoundAbort(n N)
	// RoundActive reports the round proceeding to its queue scan. fromRole
	// distinguishes inherited rounds from fresh ones (only the queue head
	// may start fresh); atHead reports the calling path.
	RoundActive(n N, fromRole, atHead bool)
	// Moved reports the round relocating a queue node (never the head).
	Moved(shuffler, moved N)
	// RoundEnd reports the finished scan: rounds observably never overlap,
	// so this fires before the role moves on.
	RoundEnd(n N, scanned, moved, marked int)
	// GiveRole reports the shuffler role being granted to a node (stores
	// the target's shuffler flag).
	GiveRole(from, to N, why RoleWhy)
	// RetainRole reports the queue head keeping an unproductive round's
	// role without re-arming its flag; the caller relays it at acquisition.
	RetainRole(n N)
	// DropRole reports the role dying because the policy does not pass it.
	DropRole(n N)
	// StaleSelfScan reports the scan reaching the shuffler's own node via
	// a stale resumption hint. Possible on the native substrate (queue
	// nodes are pooled); a protocol violation on the simulator.
	StaleSelfScan(n N)
	// DebugID names a node in decision traces (differential tests only).
	DebugID(n N) uint64
}

// Input configures one shuffling round.
type Input struct {
	// Blocking selects the ShflLock^B wakeup behaviour: grouped waiters
	// are moved to the spinning state (woken if parked), and a non-head
	// shuffler pins its own status so it cannot park mid-round.
	Blocking bool
	// VNext is true when the round runs on the queue-head path (the
	// pseudocode's vnext_waiter): the scan exits as soon as the lock byte
	// is free, and a retained role is not re-armed (the head relays it to
	// its successor at acquisition).
	VNext bool
	// FromRole records whether the node was handed the shuffler role (as
	// opposed to starting a fresh round, permitted only at the head).
	// Purely observational: forwarded to Substrate.RoundActive.
	FromRole bool
	// Trace, when non-nil, records the round's decision sequence for
	// differential substrate testing.
	Trace *Trace
}

// Result reports what one shuffling round did.
type Result struct {
	// Retained is true when the round found no group member and the
	// shuffler kept the role (re-armed when off the head path).
	Retained bool
	// Scanned, Marked and Moved count examined nodes, nodes marked into a
	// contiguous chain, and nodes relocated behind the chain.
	Scanned, Marked, Moved int
	// Reclaimed counts abandoned nodes the scan unlinked from the queue.
	Reclaimed int
}

// Run executes one shuffling round for shuffler node n: walk the waiter
// queue from the resumption frontier, group policy-matching waiters
// immediately behind the already-shuffled chain, then retain or relay the
// shuffler role. The caller must have observed n's shuffler flag set, or
// hold queue-head status with a zero batch (a fresh round).
//
// Run issues charged substrate accesses in the exact order of the paper's
// pseudocode, so the simulator's cycle accounting is identical to a
// hand-inlined walk.
func Run[N comparable, S Substrate[N]](s S, p Policy, n N, in Input) Result {
	var nilN N
	if !p.Shuffles() {
		// Ablation "Base": the round is a no-op beyond consuming the flag.
		s.StoreShuffler(n, 0)
		in.Trace.add("round disabled by policy %s", p.Name())
		return Result{}
	}
	s.RoundStart(n)
	qlast := n // end of the shuffled chain (last grouped waiter)
	qprev := n // scan frontier: the node whose successor is examined next

	batch := s.LoadBatch(n)
	if batch == 0 {
		batch++
		s.StoreBatch(n, batch)
	}
	s.RoleTaken(n)
	// The next shuffler is decided at the end of the round; consume the flag.
	s.StoreShuffler(n, 0)
	in.Trace.add("begin policy=%s vnext=%v blocking=%v batch=%d", p.Name(), in.VNext, in.Blocking, batch)
	if batch >= p.Budget() {
		// No more batching: avoid starving the ungrouped waiters.
		s.RoundAbort(n)
		in.Trace.add("abort budget=%d", p.Budget())
		return Result{}
	}
	s.RoundActive(n, in.FromRole, in.VNext)

	if in.Blocking && !in.VNext {
		// We will soon acquire the lock: make sure we never park. If a
		// grant raced with us, put it back — the granter has already left
		// the queue and will not write our status again.
		if old := s.SwapStatus(n, StatusSpinning); old == StatusReady {
			s.StoreStatus(n, StatusReady)
		}
	}
	if p.UseHint() {
		if h := s.LoadHint(n); h != nilN {
			qprev = h // resume where the previous shuffler stopped (+qlast)
			in.Trace.add("resume hint=%d", s.DebugID(h))
		}
	}

	scanned, marked, moved, reclaimed := 0, 0, 0, 0
	wake := p.WakeGrouped(in.Blocking)
	mayAbort := s.MayAbort()
	ctx := matchCtx[N, S]{sub: s, shuffler: n}
	for {
		qcurr := s.LoadNext(qprev)
		if qcurr == nilN {
			break
		}
		if qcurr == n {
			// Stale resumption hint: the frontier named a node that since
			// left and re-entered the queue behind us. Abandon the hint and
			// restart from scratch next round. (The simulator substrate
			// panics here instead: its nodes are per-thread, so a self-scan
			// is a protocol violation, not pool recycling.)
			s.StaleSelfScan(n)
			s.StoreHint(n, nilN)
			// Reset the frontier too, or the epilogue's retain-hint store
			// would re-arm the very hint just abandoned and every later
			// round would shipwreck on the same stale node.
			qprev = qlast
			in.Trace.add("stale self-scan")
			break
		}
		scanned++
		ctx.candidate = qcurr
		if mayAbort && s.LoadStatus(qcurr) == StatusAbandoned {
			// Unlink the corpse so later scans and the grant walk get a
			// shorter queue. A nil successor means qcurr is the tail — leave
			// it alone, a joiner may be mid-link behind it; the grant walk
			// will retire it with a tail CAS. The successor link must be
			// read before StatusReclaimed is published: the reclaimed store
			// frees the owner to reuse the node, and a reused node's link
			// points into a different part of the queue.
			qnext := s.LoadNext(qcurr)
			if qnext == nilN {
				in.Trace.add("tail-stop abandoned %d", s.DebugID(qcurr))
				break
			}
			s.StoreNext(qprev, qnext)
			s.StoreStatus(qcurr, StatusReclaimed)
			s.Reclaim(qcurr)
			reclaimed++
			in.Trace.add("reclaim %d", s.DebugID(qcurr))
			// qprev is unchanged: the spliced-in successor is examined next.
		} else if p.Match(&ctx) {
			// The contiguous case applies only when qcurr directly follows
			// the shuffled chain; with +qlast scan resumption it must be
			// the chain end itself, or the marked chain would fragment and
			// the role handoff would lose its single-shuffler invariant.
			if qprev == qlast {
				// Contiguous group chain: just mark it.
				batch++
				s.StoreBatch(qcurr, batch)
				if wake {
					s.SetSpinning(qcurr)
				}
				marked++
				in.Trace.add("mark %d batch=%d", s.DebugID(qcurr), batch)
				qlast = qcurr
				qprev = qcurr
			} else {
				// Ungrouped waiters sit between the chain and qcurr: move
				// qcurr to the end of the shuffled chain. A node with a nil
				// successor is the queue tail — leave it alone, a joiner
				// may be linking behind it.
				qnext := s.LoadNext(qcurr)
				if qnext == nilN {
					in.Trace.add("tail-stop %d", s.DebugID(qcurr))
					break
				}
				batch++
				s.StoreBatch(qcurr, batch)
				if wake {
					s.SetSpinning(qcurr)
				}
				s.Moved(n, qcurr)
				s.StoreNext(qprev, qnext)
				s.StoreNext(qcurr, s.LoadNext(qlast))
				s.StoreNext(qlast, qcurr)
				moved++
				in.Trace.add("move %d after %d batch=%d", s.DebugID(qcurr), s.DebugID(qlast), batch)
				qlast = qcurr
			}
		} else {
			in.Trace.add("skip %d", s.DebugID(qcurr))
			qprev = qcurr
		}
		// Exit: the TAS lock is free and we are the queue head, or a
		// predecessor granted us head status mid-scan.
		if in.VNext {
			if s.LockByteFree() {
				in.Trace.add("exit lock-free")
				break
			}
		} else if s.LoadStatus(n) == StatusReady {
			in.Trace.add("exit ready")
			break
		}
	}

	// The round is over before the role moves on: report it first, so
	// rounds observably never overlap (invariant 2).
	s.RoundEnd(n, scanned, moved, marked)
	res := Result{Scanned: scanned, Marked: marked, Moved: moved, Reclaimed: reclaimed}
	if qlast == n {
		// No group member found yet: the role stays with the shuffler,
		// resuming the scan where it stopped. A waiting (non-head)
		// shuffler re-arms its flag and polls; the head retains the role
		// silently and relays it to its successor at acquisition, so the
		// handoff path is not burdened with a rescan per lock transition.
		if p.UseHint() && qprev != n {
			s.StoreHint(n, qprev)
			in.Trace.add("retain hint=%d", s.DebugID(qprev))
		}
		if !in.VNext {
			s.GiveRole(n, n, RoleSelfRetry)
			in.Trace.add("self-retry")
		} else {
			s.RetainRole(n)
			in.Trace.add("retain at head")
		}
		res.Retained = true
		return res
	}
	if p.UseHint() && qprev != qlast {
		s.StoreHint(qlast, qprev)
		in.Trace.add("forward hint=%d to %d", s.DebugID(qprev), s.DebugID(qlast))
	}
	if p.PassRole() {
		s.GiveRole(n, qlast, RolePassChain)
		in.Trace.add("pass role to %d", s.DebugID(qlast))
	} else {
		s.DropRole(n)
		in.Trace.add("drop role")
	}
	return res
}

// matchCtx adapts a (substrate, shuffler, candidate) triple to the Ctx a
// policy's Match receives. One value lives per round; only the candidate
// field changes between iterations.
type matchCtx[N comparable, S Substrate[N]] struct {
	sub       S
	shuffler  N
	candidate N
}

func (c *matchCtx[N, S]) ShufflerSocket() uint64  { return c.sub.ShufflerSocket() }
func (c *matchCtx[N, S]) CandidateSocket() uint64 { return c.sub.Socket(c.candidate) }
func (c *matchCtx[N, S]) ShufflerPrio() uint64    { return c.sub.Prio(c.shuffler) }
func (c *matchCtx[N, S]) CandidatePrio() uint64   { return c.sub.Prio(c.candidate) }
