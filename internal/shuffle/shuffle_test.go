package shuffle

import (
	"math/rand"
	"testing"
)

// tnode is a plain in-memory queue node for single-threaded engine tests.
type tnode struct {
	id       int
	next     *tnode
	status   uint64
	batch    uint64
	shuffler uint64
	hint     *tnode
	socket   uint64
	prio     uint64
}

// tsub backs the engine with plain field accesses. lockFree mirrors the TAS
// byte (true lets a VNext round exit early); selfScans counts stale-hint
// events; mayAbort arms the abandoned-node scan handling and reclaimed
// collects the nodes it unlinks.
type tsub struct {
	self      *tnode
	lockFree  bool
	selfScans int
	mayAbort  bool
	reclaimed []*tnode
}

func (s *tsub) LoadNext(n *tnode) *tnode       { return n.next }
func (s *tsub) StoreNext(n, v *tnode)          { n.next = v }
func (s *tsub) LoadStatus(n *tnode) uint64     { return n.status }
func (s *tsub) StoreStatus(n *tnode, v uint64) { n.status = v }
func (s *tsub) SwapStatus(n *tnode, v uint64) uint64 {
	old := n.status
	n.status = v
	return old
}
func (s *tsub) StoreShuffler(n *tnode, v uint64) { n.shuffler = v }
func (s *tsub) LoadBatch(n *tnode) uint64        { return n.batch }
func (s *tsub) StoreBatch(n *tnode, v uint64)    { n.batch = v }
func (s *tsub) LoadHint(n *tnode) *tnode         { return n.hint }
func (s *tsub) StoreHint(n, v *tnode)            { n.hint = v }

func (s *tsub) ShufflerSocket() uint64 { return s.self.socket }
func (s *tsub) Socket(n *tnode) uint64 { return n.socket }
func (s *tsub) Prio(n *tnode) uint64   { return n.prio }
func (s *tsub) LockByteFree() bool     { return s.lockFree }
func (s *tsub) SetSpinning(n *tnode) {
	if n.status == StatusWaiting || n.status == StatusParked {
		n.status = StatusSpinning
	}
}

func (s *tsub) MayAbort() bool   { return s.mayAbort }
func (s *tsub) Reclaim(n *tnode) { s.reclaimed = append(s.reclaimed, n) }

func (s *tsub) RoundStart(*tnode)                {}
func (s *tsub) RoleTaken(*tnode)                 {}
func (s *tsub) RoundAbort(*tnode)                {}
func (s *tsub) RoundActive(*tnode, bool, bool)   {}
func (s *tsub) Moved(_, _ *tnode)                {}
func (s *tsub) RoundEnd(*tnode, int, int, int)   {}
func (s *tsub) GiveRole(_, to *tnode, _ RoleWhy) { to.shuffler = 1 }
func (s *tsub) RetainRole(*tnode)                {}
func (s *tsub) DropRole(*tnode)                  {}
func (s *tsub) StaleSelfScan(*tnode)             { s.selfScans++ }
func (s *tsub) DebugID(n *tnode) uint64          { return uint64(n.id) }

// chaosPolicy draws every decision from a seeded source, so the property
// test covers arbitrary decision sequences, not just the registered
// policies' reachable ones.
type chaosPolicy struct {
	rng      *rand.Rand
	shuffles bool
	passRole bool
	useHint  bool
	budget   uint64
}

func (p *chaosPolicy) Name() string          { return "chaos" }
func (p *chaosPolicy) Shuffles() bool        { return p.shuffles }
func (p *chaosPolicy) PassRole() bool        { return p.passRole }
func (p *chaosPolicy) UseHint() bool         { return p.useHint }
func (p *chaosPolicy) Budget() uint64        { return p.budget }
func (p *chaosPolicy) Match(Ctx) bool        { return p.rng.Intn(2) == 0 }
func (p *chaosPolicy) WakeGrouped(bool) bool { return p.rng.Intn(2) == 0 }

// TestRunPreservesQueueIntegrity is the engine's safety property: whatever
// a policy decides, a shuffling round may reorder the waiter queue but must
// never drop, duplicate or cycle it, and the shuffler stays at the front.
// Randomized queues (arrival order, sockets, priorities, statuses, hints)
// are driven through every registered policy plus chaos policies whose
// decisions are coin flips.
func TestRunPreservesQueueIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	registered := Names()
	for iter := 0; iter < 5000; iter++ {
		k := rng.Intn(15) // waiters behind the shuffler
		nodes := make([]*tnode, k+1)
		for i := range nodes {
			nodes[i] = &tnode{
				id:     i + 1,
				status: StatusWaiting,
				socket: uint64(rng.Intn(4)),
				prio:   uint64(rng.Intn(3)),
				batch:  uint64(rng.Intn(3)),
			}
			if rng.Intn(4) == 0 {
				nodes[i].status = StatusSpinning
			}
			if i > 0 {
				nodes[i-1].next = nodes[i]
			}
		}
		mayAbort := rng.Intn(3) == 0
		if mayAbort {
			// Waiters (never the shuffler) may have abandoned already.
			for _, n := range nodes[1:] {
				if rng.Intn(3) == 0 {
					n.status = StatusAbandoned
				}
			}
		}
		var pol Policy
		if rng.Intn(3) == 0 {
			pol = &chaosPolicy{
				rng:      rng,
				shuffles: rng.Intn(8) != 0,
				passRole: rng.Intn(2) == 0,
				useHint:  rng.Intn(2) == 0,
				budget:   uint64(1 + rng.Intn(MaxShuffles)),
			}
		} else {
			pol = ByName(registered[rng.Intn(len(registered))])
		}
		if pol.UseHint() && k >= 2 && rng.Intn(2) == 0 {
			nodes[0].hint = nodes[1+rng.Intn(k)]
		}
		sub := &tsub{self: nodes[0], lockFree: rng.Intn(8) == 0, mayAbort: mayAbort}
		in := Input{Blocking: rng.Intn(2) == 0, VNext: rng.Intn(2) == 0, FromRole: true}
		res := Run[*tnode, *tsub](sub, pol, nodes[0], in)

		// A reclaimed node legitimately leaves the queue; everything else
		// must remain reachable exactly once.
		gone := make(map[*tnode]bool, len(sub.reclaimed))
		for _, n := range sub.reclaimed {
			if gone[n] {
				t.Fatalf("iter %d: node %d reclaimed twice", iter, n.id)
			}
			if n.status != StatusReclaimed {
				t.Fatalf("iter %d: reclaimed node %d left in status %d", iter, n.id, n.status)
			}
			gone[n] = true
		}
		if len(sub.reclaimed) != res.Reclaimed {
			t.Fatalf("iter %d: Reclaim hook fired %d times, Result says %d",
				iter, len(sub.reclaimed), res.Reclaimed)
		}
		want := len(nodes) - len(gone)
		seen := make(map[*tnode]bool, len(nodes))
		count := 0
		for n := nodes[0]; n != nil; n = n.next {
			if seen[n] {
				t.Fatalf("iter %d: node %d reached twice (queue cycle)", iter, n.id)
			}
			if gone[n] {
				t.Fatalf("iter %d: reclaimed node %d still linked", iter, n.id)
			}
			seen[n] = true
			count++
			if count > len(nodes) {
				t.Fatalf("iter %d: queue longer than its %d nodes", iter, len(nodes))
			}
		}
		if count != want {
			t.Fatalf("iter %d: queue has %d nodes, want %d (waiter dropped)", iter, count, want)
		}
		for _, n := range nodes {
			if !seen[n] && !gone[n] {
				t.Fatalf("iter %d: node %d no longer reachable", iter, n.id)
			}
		}
		if res.Moved+res.Marked > res.Scanned {
			t.Fatalf("iter %d: grouped %d+%d nodes but scanned only %d",
				iter, res.Marked, res.Moved, res.Scanned)
		}
		if sub.selfScans != 0 {
			t.Fatalf("iter %d: self-scan on a well-formed queue", iter)
		}
	}
}

// TestStaleHintSelfScan reproduces the pooled-node hazard the native
// substrate faces: a forwarded resumption hint naming a node that left the
// queue and whose stale next pointer leads back to the shuffler. The engine
// must report the event, abandon the hint, and leave the queue untouched.
func TestStaleHintSelfScan(t *testing.T) {
	n := &tnode{id: 1}
	a := &tnode{id: 2}
	n.next = a
	stale := &tnode{id: 3}
	stale.next = n // recycled node still pointing at the shuffler
	n.hint = stale
	sub := &tsub{self: n}
	res := Run[*tnode, *tsub](sub, NUMA(), n, Input{FromRole: true})
	if sub.selfScans != 1 {
		t.Fatalf("self-scan not reported: %d events", sub.selfScans)
	}
	if n.hint != nil {
		t.Fatalf("stale hint not abandoned")
	}
	if n.next != a || a.next != nil {
		t.Fatalf("queue disturbed by a stale-hint round")
	}
	if res.Scanned != 0 || res.Moved != 0 || res.Marked != 0 {
		t.Fatalf("stale-hint round claims work: %+v", res)
	}
}

// TestScanReclaimsAbandoned: with abort handling armed, a round unlinks an
// abandoned interior node (publishing StatusReclaimed) but must leave an
// abandoned tail alone — a joiner may still be linking behind it.
func TestScanReclaimsAbandoned(t *testing.T) {
	n := &tnode{id: 1}
	dead := &tnode{id: 2, status: StatusAbandoned}
	live := &tnode{id: 3, socket: 0}
	tailDead := &tnode{id: 4, status: StatusAbandoned}
	n.next, dead.next, live.next = dead, live, tailDead

	sub := &tsub{self: n, mayAbort: true}
	res := Run[*tnode, *tsub](sub, NUMA(), n, Input{FromRole: true})
	if res.Reclaimed != 1 || len(sub.reclaimed) != 1 || sub.reclaimed[0] != dead {
		t.Fatalf("interior abandoned node not reclaimed: %+v %v", res, sub.reclaimed)
	}
	if dead.status != StatusReclaimed {
		t.Fatalf("reclaimed node left in status %d", dead.status)
	}
	if n.next != live {
		t.Fatalf("queue not relinked past the corpse")
	}
	if live.next != tailDead || tailDead.status != StatusAbandoned {
		t.Fatalf("abandoned tail was touched (status %d)", tailDead.status)
	}

	// The same queue without abort handling armed: the corpse is scanned
	// like any waiter and the charged-access sequence is unchanged.
	n2 := &tnode{id: 1}
	d2 := &tnode{id: 2, status: StatusAbandoned}
	n2.next = d2
	sub2 := &tsub{self: n2}
	res2 := Run[*tnode, *tsub](sub2, NUMA(), n2, Input{FromRole: true})
	if res2.Reclaimed != 0 || n2.next != d2 {
		t.Fatalf("abort handling ran while disarmed: %+v", res2)
	}
}

// TestBudgetAbort: a shuffler whose batch has reached the policy budget
// must stand down without touching the queue.
func TestBudgetAbort(t *testing.T) {
	n := &tnode{id: 1, batch: MaxShuffles}
	w := &tnode{id: 2}
	n.next = w
	sub := &tsub{self: n}
	res := Run[*tnode, *tsub](sub, NUMA(), n, Input{FromRole: true})
	if res.Scanned != 0 || res.Moved != 0 || res.Marked != 0 || res.Retained {
		t.Fatalf("budget-capped round still ran: %+v", res)
	}
	if n.next != w || n.shuffler != 0 {
		t.Fatalf("budget-capped round touched the queue")
	}
}

// TestRolePlumbing checks the three ways a round disposes of the shuffler
// role: self-retry off the head path, silent retention at the head, and the
// chain handoff to the last grouped waiter.
func TestRolePlumbing(t *testing.T) {
	mk := func(socket uint64) (*tnode, *tnode) {
		n := &tnode{id: 1}
		w := &tnode{id: 2, socket: socket}
		n.next = w
		return n, w
	}

	// Unproductive round off the head path: role re-armed on the shuffler.
	n, w := mk(1)
	res := Run[*tnode, *tsub](&tsub{self: n}, NUMA(), n, Input{FromRole: true})
	if !res.Retained || n.shuffler != 1 || w.shuffler != 0 {
		t.Fatalf("self-retry: res=%+v shuffler=%d/%d", res, n.shuffler, w.shuffler)
	}

	// Unproductive round at the head: role retained without re-arming (the
	// caller relays it at acquisition).
	n, w = mk(1)
	res = Run[*tnode, *tsub](&tsub{self: n}, NUMA(), n, Input{FromRole: true, VNext: true})
	if !res.Retained || n.shuffler != 0 || w.shuffler != 0 {
		t.Fatalf("head retention: res=%+v shuffler=%d/%d", res, n.shuffler, w.shuffler)
	}

	// Productive round: role passed to the grouped waiter...
	n, w = mk(0)
	res = Run[*tnode, *tsub](&tsub{self: n}, NUMA(), n, Input{FromRole: true})
	if res.Retained || res.Marked != 1 || w.shuffler != 1 {
		t.Fatalf("chain handoff: res=%+v shuffler=%d", res, w.shuffler)
	}

	// ...unless the policy does not relay it (+shuffler ablation stage).
	n, w = mk(0)
	res = Run[*tnode, *tsub](&tsub{self: n}, Ablation(1), n, Input{FromRole: true})
	if res.Retained || res.Marked != 1 || w.shuffler != 0 {
		t.Fatalf("role drop: res=%+v shuffler=%d", res, w.shuffler)
	}
}

// TestRegistry checks the policy registry and the ablation-stage mapping.
func TestRegistry(t *testing.T) {
	for _, name := range []string{
		"numa", "prio",
		"ablation-base", "ablation+shuffler", "ablation+shufflers", "ablation+qlast",
	} {
		if ByName(name) == nil {
			t.Errorf("policy %q not registered", name)
		}
	}
	if ByName("no-such-policy") != nil {
		t.Errorf("unknown policy resolved")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
	if got := Ablation(-5).Name(); got != "ablation-base" {
		t.Errorf("Ablation(-5) = %q", got)
	}
	if got := Ablation(99).Name(); got != "ablation+qlast" {
		t.Errorf("Ablation(99) = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate Register did not panic")
		}
	}()
	Register(NUMA())
}
