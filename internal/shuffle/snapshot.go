package shuffle

// Snapshot describes a frozen waiter queue for differential substrate
// testing: both lock implementations materialize the same snapshot in
// their own node representation, run one shuffling round over it, and the
// resulting decision traces must match byte for byte.
//
// Nodes[0] is the shuffler (the queue head in the replayed round); the
// remaining nodes are linked behind it in slice order. The lock word is
// held locked and no waiter is granted mid-round, so neither exit
// condition fires and the round runs to the end of the queue.
type Snapshot struct {
	// Policy names the registered policy driving the round.
	Policy string
	// Blocking and VNext mirror Input.
	Blocking, VNext bool
	// Hint, when >0, is the Nodes index the shuffler's traversal-
	// resumption hint points at (only meaningful for +qlast policies).
	Hint int
	// Nodes describes the queue, shuffler first.
	Nodes []SnapNode
}

// SnapNode is one waiter's observable state within a Snapshot.
type SnapNode struct {
	Socket uint64
	Prio   uint64
	Batch  uint64
	Status uint64
}
