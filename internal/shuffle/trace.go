package shuffle

import "fmt"

// Trace accumulates a shuffling round's decision sequence as formatted
// lines. The differential substrate test replays one queue snapshot
// through both substrates and asserts the traces are byte-identical; the
// engine emits nothing when the Input carries a nil Trace, so production
// rounds pay only a nil check per decision.
type Trace struct {
	Lines []string
}

// add is split from record so it stays inlinable: when it is inlined at a
// call site, the vararg []any (and the boxing of its elements) is sunk
// into the non-nil branch, so production rounds — which always carry a nil
// Trace — pay a nil check and nothing else. Folding record's body into add
// would put that allocation back on every shuffling round's hot path.
func (t *Trace) add(format string, args ...any) {
	if t == nil {
		return
	}
	t.record(format, args...)
}

func (t *Trace) record(format string, args ...any) {
	t.Lines = append(t.Lines, fmt.Sprintf(format, args...))
}
