package shuffle

import "fmt"

// Trace accumulates a shuffling round's decision sequence as formatted
// lines. The differential substrate test replays one queue snapshot
// through both substrates and asserts the traces are byte-identical; the
// engine emits nothing when the Input carries a nil Trace, so production
// rounds pay only a nil check per decision.
type Trace struct {
	Lines []string
}

func (t *Trace) add(format string, args ...any) {
	if t == nil {
		return
	}
	t.Lines = append(t.Lines, fmt.Sprintf(format, args...))
}
