package shuffle

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Live policy transitions.
//
// A policy swap under contention is dangerous at exactly three moments: while
// a shuffler is mid-walk (a torn read could mix one policy's Match with
// another's Budget), while an abort reclaim is splicing a corpse out of the
// queue, and while the queue head is abdicating after a timeout. The
// transition protocol makes all three safe with one rule: a walk pins the
// policy it started with. PolicyBox holds the (policy, epoch) pair behind a
// single atomic pointer, so a reader gets both with one load and can never
// observe policy A's Match alongside policy B's PassRole. The epoch is the
// fence: it only moves forward, every recorded Transition carries it, and a
// walk that captured epoch E runs entirely under E's policy no matter how
// many swaps land while it is scanning.

// Transition is one recorded policy swap: who installed what, when, and why.
type Transition struct {
	// Epoch is the fence value after the swap; strictly increasing per box.
	Epoch uint64
	// From and To name the outgoing and incoming policies.
	From, To string
	// Trigger records who asked: "api" for a direct SetPolicy call,
	// "init" for constructor installs, "chaos:<moment>" for injected flips,
	// "meta:<signal>" for self-tuning decisions.
	Trigger string
	// At is a caller-supplied timestamp: virtual cycles on the simulator
	// (so transition logs are deterministic), wall-clock nanoseconds on the
	// native substrate, 0 when no clock is meaningful (constructors).
	At uint64
}

// transitionLogCap bounds the ring: enough tail for a post-mortem, small
// enough to embed in every lock.
const transitionLogCap = 64

// TransitionLog is a bounded ring of recorded transitions. The zero value
// is ready to use. It is safe for concurrent use; recording is off every
// lock's hot path (swaps are rare by construction).
type TransitionLog struct {
	mu    sync.Mutex
	ring  [transitionLogCap]Transition
	next  int    // ring slot the next record lands in
	total uint64 // lifetime count, including overwritten entries
}

func (l *TransitionLog) record(tr Transition) {
	l.mu.Lock()
	l.ring[l.next] = tr
	l.next = (l.next + 1) % transitionLogCap
	l.total++
	l.mu.Unlock()
}

// Len returns the lifetime number of recorded transitions.
func (l *TransitionLog) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Tail returns the most recent min(n, recorded) transitions, oldest first.
func (l *TransitionLog) Tail(n int) []Transition {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := int(l.total)
	if kept > transitionLogCap {
		kept = transitionLogCap
	}
	if n > kept {
		n = kept
	}
	if n <= 0 {
		return nil
	}
	out := make([]Transition, 0, n)
	for i := l.next - n; i < l.next; i++ {
		out = append(out, l.ring[(i+transitionLogCap)%transitionLogCap])
	}
	return out
}

// String renders the tail for post-mortems and debug endpoints: one line
// per transition, oldest first.
func (l *TransitionLog) String() string {
	tail := l.Tail(transitionLogCap)
	if len(tail) == 0 {
		return "(no policy transitions)\n"
	}
	var b strings.Builder
	for _, tr := range tail {
		fmt.Fprintf(&b, "epoch=%-4d at=%-12d %s -> %s (%s)\n", tr.Epoch, tr.At, tr.From, tr.To, tr.Trigger)
	}
	return b.String()
}

// pinnedPolicy is the unit a PolicyBox publishes: policy and epoch travel
// together behind one pointer, so no reader can tear them apart.
type pinnedPolicy struct {
	p     Policy
	epoch uint64
}

// PolicyBox is the epoched holder every transition goes through. The zero
// value is empty (Get returns nil, epoch 0) so it can live inside
// zero-value locks; the owning lock substitutes its default policy.
type PolicyBox struct {
	cur atomic.Pointer[pinnedPolicy]
	log TransitionLog
}

// Get returns the current policy with a single atomic load, or nil when no
// policy was ever installed. Callers must hold the returned value for the
// full walk they are about to run — re-reading mid-walk is the torn-read
// bug this type exists to prevent.
func (b *PolicyBox) Get() Policy {
	if pe := b.cur.Load(); pe != nil {
		return pe.p
	}
	return nil
}

// Epoch returns the current fence value. It is monotone: a later call never
// returns a smaller value.
func (b *PolicyBox) Epoch() uint64 {
	if pe := b.cur.Load(); pe != nil {
		return pe.epoch
	}
	return 0
}

// Set installs p (nil restores the owner's default) under the next epoch
// and records the transition. The CAS loop guarantees the epoch never goes
// backward even under racing Sets; at is the caller's clock (see
// Transition.At). Returns the new epoch.
func (b *PolicyBox) Set(p Policy, trigger string, at uint64) uint64 {
	for {
		old := b.cur.Load()
		var oldEpoch uint64
		from := "default"
		if old != nil {
			oldEpoch = old.epoch
			if old.p != nil {
				from = old.p.Name()
			}
		}
		next := &pinnedPolicy{p: p, epoch: oldEpoch + 1}
		if b.cur.CompareAndSwap(old, next) {
			to := "default"
			if p != nil {
				to = p.Name()
			}
			b.log.record(Transition{Epoch: next.epoch, From: from, To: to, Trigger: trigger, At: at})
			return next.epoch
		}
	}
}

// Log exposes the box's transition record for post-mortems.
func (b *PolicyBox) Log() *TransitionLog { return &b.log }

// Pinner is implemented by composite policies (shuffle.Meta) whose
// effective behaviour is a concrete stage that may change between rounds.
// Pin returns the stage to use for exactly one walk; the returned policy is
// held for the walk's whole duration.
type Pinner interface {
	Pin() Policy
}

// Pin resolves a policy to the concrete stage one walk must use. Plain
// (stateless) policies return themselves; a Pinner picks its current stage.
// Every call site that starts a shuffle round, a grant walk, or a head
// abdication calls Pin exactly once and never re-reads: that is the
// "one policy per round" half of the transition protocol.
func Pin(p Policy) Policy {
	if pp, ok := p.(Pinner); ok {
		return pp.Pin()
	}
	return p
}
