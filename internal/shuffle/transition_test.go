package shuffle

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestPolicyBoxEpochMonotone: racing Sets never move the epoch backward and
// never lose a count — after G*N concurrent installs the epoch is exactly
// G*N and the lifetime log agrees. Run under -race via verify.sh.
func TestPolicyBoxEpochMonotone(t *testing.T) {
	var box PolicyBox
	const goroutines, sets = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		pol := ByName(Names()[g%len(Names())])
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < sets; i++ {
				e := box.Set(pol, "api", uint64(i))
				if e <= last {
					t.Errorf("epoch went backward: %d after %d", e, last)
					return
				}
				last = e
			}
		}()
	}
	wg.Wait()
	if got, want := box.Epoch(), uint64(goroutines*sets); got != want {
		t.Fatalf("final epoch %d, want %d (one bump per Set)", got, want)
	}
	if got := box.Log().Len(); got != uint64(goroutines*sets) {
		t.Fatalf("log recorded %d transitions, want %d", got, goroutines*sets)
	}
}

// TestPolicyBoxZeroValue: the empty box reads as (nil, 0) so it can live in
// zero-value locks, and a nil install renders as "default".
func TestPolicyBoxZeroValue(t *testing.T) {
	var box PolicyBox
	if box.Get() != nil {
		t.Fatal("zero box returned a policy")
	}
	if box.Epoch() != 0 {
		t.Fatal("zero box has nonzero epoch")
	}
	if e := box.Set(nil, "api", 7); e != 1 {
		t.Fatalf("first Set returned epoch %d, want 1", e)
	}
	tail := box.Log().Tail(1)
	if len(tail) != 1 || tail[0].From != "default" || tail[0].To != "default" || tail[0].At != 7 {
		t.Fatalf("nil install recorded %+v, want default->default at 7", tail)
	}
}

// TestTransitionLogTail: the ring keeps the newest transitions once lifetime
// count passes capacity, Tail returns oldest-first, and String renders every
// kept line.
func TestTransitionLogTail(t *testing.T) {
	var l TransitionLog
	total := transitionLogCap + 10
	for i := 1; i <= total; i++ {
		l.record(Transition{Epoch: uint64(i), From: "a", To: "b", Trigger: "api"})
	}
	if got := l.Len(); got != uint64(total) {
		t.Fatalf("Len=%d, want %d", got, total)
	}
	tail := l.Tail(3)
	if len(tail) != 3 {
		t.Fatalf("Tail(3) returned %d entries", len(tail))
	}
	for i, tr := range tail {
		if want := uint64(total - 2 + i); tr.Epoch != want {
			t.Fatalf("Tail(3)[%d].Epoch=%d, want %d (oldest first)", i, tr.Epoch, want)
		}
	}
	// Asking past the kept window returns the whole ring, not garbage.
	if got := len(l.Tail(10 * transitionLogCap)); got != transitionLogCap {
		t.Fatalf("oversized Tail returned %d entries, want %d", got, transitionLogCap)
	}
	if got := strings.Count(l.String(), "\n"); got != transitionLogCap {
		t.Fatalf("String rendered %d lines, want %d", got, transitionLogCap)
	}
	if !strings.Contains(l.String(), fmt.Sprintf("epoch=%-4d", total)) {
		t.Fatalf("String missing the newest epoch:\n%s", l.String())
	}
}

// TestPinIdentity: plain policies pin to themselves; a Pinner (Meta) pins to
// its current concrete stage, never to the composite.
func TestPinIdentity(t *testing.T) {
	for _, name := range Names() {
		p := ByName(name)
		if _, composite := p.(Pinner); composite {
			continue
		}
		if Pin(p) != p {
			t.Fatalf("plain policy %q did not pin to itself", name)
		}
	}
	m := NewMeta(MetaConfig{})
	got := Pin(m)
	if got == Policy(m) {
		t.Fatal("Meta pinned to itself; a walk would re-read stages mid-round")
	}
	if got.Name() != "numa" {
		t.Fatalf("fresh Meta pinned to %q, want the numa boot stage", got.Name())
	}
}

// TestByNameAutoIsFresh: every "auto" lookup must build a new Meta — shared
// meta state across unrelated locks would couple their stage decisions.
func TestByNameAutoIsFresh(t *testing.T) {
	a, b := ByName("auto"), ByName("auto")
	if a == nil || b == nil {
		t.Fatal(`ByName("auto") returned nil`)
	}
	if a == b {
		t.Fatal(`ByName("auto") returned a shared instance`)
	}
	if _, ok := a.(*Meta); !ok {
		t.Fatalf(`ByName("auto") returned %T, want *Meta`, a)
	}
}
