package sim

// cpu models one simulated core: the thread currently holding it plus a
// FIFO run queue of threads pinned to it that are runnable but descheduled.
type cpu struct {
	id     int
	socket int
	cur    *Thread
	runq   []*Thread
	head   int
}

func (c *cpu) qlen() int { return len(c.runq) - c.head }

func (c *cpu) enqueue(t *Thread) {
	c.runq = append(c.runq, t)
}

func (c *cpu) dequeue() *Thread {
	if c.qlen() == 0 {
		return nil
	}
	t := c.runq[c.head]
	c.runq[c.head] = nil
	c.head++
	if c.head == len(c.runq) {
		c.runq = c.runq[:0]
		c.head = 0
	}
	return t
}

// dispatchNext picks the next runnable thread for the core, charging the
// context-switch cost before the thread resumes. If the run queue is empty
// the core goes idle.
func (c *cpu) dispatchNext(e *Engine) {
	next := c.dequeue()
	c.cur = next
	if next == nil {
		return
	}
	c.setupDispatch(next, e)
	e.push(event{at: e.now + e.costs.CtxSwitch, kind: evResume, t: next, epoch: next.epoch})
}

// dispatchFast dequeues the next thread with dispatchNext's bookkeeping but
// no resume event: the caller has already advanced the clock past the
// context-switch cost and transfers control itself. The run queue must be
// non-empty.
func (c *cpu) dispatchFast(e *Engine) *Thread {
	next := c.dequeue()
	c.cur = next
	c.setupDispatch(next, e)
	return next
}

func (c *cpu) setupDispatch(next *Thread, e *Engine) {
	next.state = tsDispatched
	next.quantumLeft = int64(e.costs.Quantum)
	next.needResched = false
}
