// Package sim is a deterministic discrete-event simulator of a NUMA
// multiprocessor. Simulated threads are ordinary Go functions that run as
// goroutines, but the engine executes exactly one of them at a time, handing
// control back and forth over channels; all simulator state is therefore
// mutated race-free and every run is bit-reproducible for a given seed.
//
// Threads interact with the machine through the Thread API: typed atomic
// operations on simulated memory words (charged by the memsim cost model),
// busy-wait primitives that consume CPU quantum, and scheduler calls
// (park/unpark/yield) that model the kernel's blocking primitives. Lock
// algorithms from the paper are written against this API in ordinary
// sequential style.
package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"shfllock/internal/memsim"
	"shfllock/internal/topology"
)

// Word re-exports memsim.Word so lock implementations only import sim.
type Word = memsim.Word

// Config parameterizes an Engine.
type Config struct {
	Topo  topology.Machine
	Costs topology.CostModel
	Seed  int64
	// HardStop aborts the simulation (panic) if virtual time exceeds this
	// bound; it guards against livelocked protocols. Zero disables it.
	HardStop uint64
}

// Engine owns the virtual clock, the event queue, the simulated memory, and
// the per-core scheduler state.
type Engine struct {
	topo  topology.Machine
	costs topology.CostModel
	mem   *memsim.Memory

	now  uint64
	seq  uint64
	evq  eventHeap
	cpus []cpu

	threads []*Thread
	live    int

	back    chan struct{} // threads signal the engine here
	running *Thread

	watchers map[int32][]*Thread // cache line -> spin-waiting threads

	stopped  bool
	hardStop uint64
	rng      *rand.Rand

	// Counters of scheduler activity, reported by experiments.
	Preemptions uint64
	CtxSwitches uint64
	ParkCount   uint64
	UnparkCount uint64
	YieldCount  uint64
	started     bool
}

// NewEngine builds an engine for the given machine.
func NewEngine(cfg Config) *Engine {
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	if cfg.Costs == (topology.CostModel{}) {
		cfg.Costs = topology.DefaultCosts()
	}
	if err := cfg.Costs.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		topo:     cfg.Topo,
		costs:    cfg.Costs,
		mem:      memsim.New(cfg.Topo, cfg.Costs),
		back:     make(chan struct{}),
		watchers: make(map[int32][]*Thread),
		hardStop: cfg.HardStop,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	e.cpus = make([]cpu, cfg.Topo.Cores())
	for i := range e.cpus {
		e.cpus[i] = cpu{id: i, socket: cfg.Topo.SocketOf(i)}
	}
	return e
}

// Mem exposes the simulated memory for allocation and statistics.
func (e *Engine) Mem() *memsim.Memory { return e.mem }

// Topology returns the simulated machine layout.
func (e *Engine) Topology() topology.Machine { return e.topo }

// Costs returns the cost model in effect.
func (e *Engine) Costs() topology.CostModel { return e.costs }

// Now returns the current virtual time in cycles.
func (e *Engine) Now() uint64 { return e.now }

// Stopped reports whether the stop flag has been raised.
func (e *Engine) Stopped() bool { return e.stopped }

// Threads returns all spawned threads.
func (e *Engine) Threads() []*Thread { return e.threads }

// Spawn creates a simulated thread pinned to the given core. Threads must
// be spawned before Run. Pass core -1 to pin round-robin by spawn order,
// which matches how the paper's benchmarks pin threads (over-subscription
// lands thread N on core N mod cores).
func (e *Engine) Spawn(name string, core int, fn func(*Thread)) *Thread {
	if e.started {
		panic("sim: Spawn after Run")
	}
	if core < 0 {
		core = len(e.threads) % len(e.cpus)
	}
	if core >= len(e.cpus) {
		panic(fmt.Sprintf("sim: core %d out of range", core))
	}
	t := &Thread{
		id:        len(e.threads),
		name:      name,
		eng:       e,
		cpu:       &e.cpus[core],
		resume:    make(chan struct{}),
		state:     tsReady,
		watchLine: -1,
		rng:       rand.New(rand.NewSource(e.rng.Int63())),
	}
	e.threads = append(e.threads, t)
	e.live++
	t.cpu.enqueue(t)
	go t.run(fn)
	return t
}

// StopAt raises the stop flag at the given virtual time. Workloads poll
// Thread.Stopped and exit their measurement loops; the run then drains.
func (e *Engine) StopAt(at uint64) {
	e.push(event{at: at, kind: evStop})
}

func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.evq.push(ev)
}

// Run executes the simulation until every thread has finished. It panics on
// deadlock (live threads but no pending events) and on HardStop overrun.
func (e *Engine) Run() {
	if e.started {
		panic("sim: Run called twice")
	}
	e.started = true
	e.mem.OnWrite = e.onWrite
	for i := range e.cpus {
		c := &e.cpus[i]
		if c.qlen() > 0 {
			c.dispatchNext(e)
		}
	}
	for e.live > 0 {
		if len(e.evq) == 0 {
			panic("sim: deadlock — live threads but no pending events\n" + e.dump())
		}
		ev := e.evq.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		if e.hardStop > 0 && e.now > e.hardStop {
			panic("sim: hard stop exceeded — livelocked protocol?\n" + e.dump())
		}
		switch ev.kind {
		case evStop:
			e.stopped = true
		case evResume:
			t := ev.t
			if t.epoch != ev.epoch {
				continue // stale
			}
			e.transfer(t)
		case evPreempt:
			t := ev.t
			if t.epoch != ev.epoch || t.state != tsSpinWait {
				continue
			}
			// Hand the CPU back to the spin-waiting thread with
			// needResched raised: transfer's spin-wait bookkeeping zeroes
			// its quantum, so the thread's next scheduling check parks,
			// yields, or rescheds it (kernel-style preemption point).
			e.transfer(t)
		case evWake:
			t := ev.t
			if t.epoch != ev.epoch || t.state != tsWaking {
				continue
			}
			e.makeRunnable(t)
		}
	}
}

// transfer gives the CPU to t until it blocks again.
func (e *Engine) transfer(t *Thread) {
	t.epoch++
	if t.state == tsSpinWait {
		// Woken by a write to the watched line: account the time spent
		// spinning against the quantum and detach from the watch set.
		t.quantumLeft = t.spinQuantum - int64(e.now-t.spinStart)
		if t.quantumLeft <= 0 {
			t.needResched = true
		}
		t.detachWatch()
	}
	t.state = tsRunning
	e.running = t
	t.resume <- struct{}{}
	<-e.back
	e.running = nil
}

// makeRunnable places a woken thread on its core's run queue, dispatching
// immediately if the core is idle and arranging preemption of a spinner
// whose quantum has expired.
func (e *Engine) makeRunnable(t *Thread) {
	t.state = tsReady
	t.epoch++
	c := t.cpu
	c.enqueue(t)
	switch {
	case c.cur == nil:
		e.CtxSwitches++
		c.dispatchNext(e)
	case c.cur.state == tsSpinWait:
		e.schedulePreempt(c.cur)
	}
}

// schedulePreempt arms a preemption event for a spin-waiting thread at the
// moment its remaining quantum runs out.
func (e *Engine) schedulePreempt(t *Thread) {
	rem := t.spinQuantum - int64(e.now-t.spinStart)
	if rem < 0 {
		rem = 0
	}
	e.push(event{at: e.now + uint64(rem), kind: evPreempt, t: t, epoch: t.epoch})
}

// onWrite is installed as the memory's write callback; it wakes every
// thread spin-waiting on the written line.
func (e *Engine) onWrite(line int32) {
	ws := e.watchers[line]
	if len(ws) == 0 {
		return
	}
	delete(e.watchers, line)
	for _, t := range ws {
		if t.state != tsSpinWait || t.watchLine != line {
			continue // stale entry: the thread was preempted or moved on
		}
		e.push(event{at: e.now + e.costs.SpinRecheck, kind: evResume, t: t, epoch: t.epoch})
	}
}

// threadDone is called (from the thread goroutine) when a thread's function
// returns.
func (e *Engine) threadDone(t *Thread) {
	t.state = tsDone
	t.epoch++
	e.live--
	if t.cpu.cur == t {
		e.CtxSwitches++
		t.cpu.dispatchNext(e)
	}
}

// dump renders scheduler state for deadlock diagnostics.
func (e *Engine) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d live=%d\n", e.now, e.live)
	for _, t := range e.threads {
		if t.state == tsDone {
			continue
		}
		fmt.Fprintf(&b, "  thread %d %q core=%d state=%v", t.id, t.name, t.cpu.id, t.state)
		if t.state == tsSpinWait && t.watchLine >= 0 {
			fmt.Fprintf(&b, " watching w%d=%d (%s)", t.watchWord, e.mem.Peek(t.watchWord), e.mem.TagOf(t.watchWord))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
