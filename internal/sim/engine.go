// Package sim is a deterministic discrete-event simulator of a NUMA
// multiprocessor. Simulated threads are ordinary Go functions that run as
// goroutines, but the engine executes exactly one of them at a time: a
// blocking thread runs the event loop on its own goroutine and hands
// control to the next thread over a channel (or, on the fast paths, keeps
// running in place). All simulator state is therefore mutated race-free and
// every run is bit-reproducible for a given seed.
//
// Threads interact with the machine through the Thread API: typed atomic
// operations on simulated memory words (charged by the memsim cost model),
// busy-wait primitives that consume CPU quantum, and scheduler calls
// (park/unpark/yield) that model the kernel's blocking primitives. Lock
// algorithms from the paper are written against this API in ordinary
// sequential style.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"shfllock/internal/alloc/arena"
	"shfllock/internal/memsim"
	"shfllock/internal/topology"
)

// Word re-exports memsim.Word so lock implementations only import sim.
type Word = memsim.Word

// Config parameterizes an Engine.
type Config struct {
	Topo  topology.Machine
	Costs topology.CostModel
	Seed  int64
	// HardStop aborts the simulation (panic) if virtual time exceeds this
	// bound; it guards against livelocked protocols. Zero disables it.
	HardStop uint64
	// NoFastPath forces every virtual-time advance through the event queue
	// and the engine goroutine (the -enginefast=false mode). The fast path
	// is on by default; results are identical either way — the slow path
	// survives as the correctness oracle the differential tests diff
	// against.
	NoFastPath bool
	// NoWheel replaces the timer wheel with the reference binary event
	// heap and disables per-point arena allocation (the -enginewheel=false
	// mode). Results are identical either way; the heap survives as the
	// ordering oracle the wheel is differentially tested against.
	NoWheel bool
}

// PathStats counts how control returned to threads: in place (fast path)
// or through a full event-queue round trip on the engine goroutine.
type PathStats struct {
	// FastResumes counts charge steps absorbed by advancing the clock in
	// place — no event, no goroutine switch.
	FastResumes uint64 `json:"fast_resumes"`
	// FastHandoffs counts CPU handoffs (resched, park, wake-dispatch) that
	// bypassed the event queue.
	FastHandoffs uint64 `json:"fast_handoffs"`
	// EngineTrips counts control transfers through the engine's event
	// loop — the slow path.
	EngineTrips uint64 `json:"engine_trips"`
}

// FastShare returns the percentage of control transfers that took a fast
// path.
func (p PathStats) FastShare() float64 {
	total := p.FastResumes + p.FastHandoffs + p.EngineTrips
	if total == 0 {
		return 0
	}
	return 100 * float64(p.FastResumes+p.FastHandoffs) / float64(total)
}

func (p *PathStats) add(o PathStats) {
	p.FastResumes += o.FastResumes
	p.FastHandoffs += o.FastHandoffs
	p.EngineTrips += o.EngineTrips
}

// Add accumulates another engine's counters (harness aggregation).
func (p *PathStats) Add(o PathStats) { p.add(o) }

// Engine owns the virtual clock, the event queue, the simulated memory, and
// the per-core scheduler state.
type Engine struct {
	topo  topology.Machine
	costs topology.CostModel
	mem   *memsim.Memory

	now uint64
	seq uint64
	// The event queue has two interchangeable backends with identical
	// (at, seq) pop order: the timer wheel (default) and the reference
	// binary heap (cfg.NoWheel, the ordering oracle). minAt caches the
	// exact minimum pending time — noEvent when the queue is empty — so
	// fastCovers is a single compare whichever backend is active.
	useWheel bool
	minAt    uint64
	wheel    timerWheel
	evq      eventHeap
	cpus     []cpu

	threads []*Thread
	live    int

	done    chan struct{} // the last finishing thread signals Run here
	running *Thread

	// watchq holds, per cache line, the threads spin-waiting on it, in
	// registration order. The slices are pooled in place: onWrite truncates
	// a drained list to length zero and leaves the capacity on the line's
	// slot, so steady-state watch/wake cycles never allocate.
	watchq [][]*Thread

	// assoc carries values scoped to this engine instance (e.g. a lock
	// maker's per-run slab allocator). Long-lived callers must key caches
	// here rather than by *Engine in their own maps: engines are pooled, so
	// a pointer does not identify a run — a map keyed by it would resurrect
	// a previous run's state when the pointer is recycled. assoc is cleared
	// on Recycle, tying every entry's lifetime to the run that made it.
	assoc map[any]any

	stopped  bool
	hardStop uint64
	fast     bool // direct time advance + direct handoff enabled
	rng      *rand.Rand

	// injector, when non-nil, receives fault-injection queries (chaos runs).
	injector Injector
	// abortReason is set by Abort when a watchdog ends the run early.
	abortReason string

	// Counters of scheduler activity, reported by experiments.
	Preemptions uint64
	CtxSwitches uint64
	ParkCount   uint64
	UnparkCount uint64
	YieldCount  uint64
	paths       PathStats
	started     bool
}

// enginePool and threadPool recycle the per-sweep-point scheduler state
// (the wheel's slot arrays are pooled separately in wheelScratch). The reset
// functions keep only backing that is safe and profitable to reuse: the
// watch table's per-line slices, the thread/cpu arrays, the done channel
// (always drained when a run completes) and the rand generators, which are
// reseeded from scratch on reuse so draw order matches a fresh allocation.
// Only wheel-mode engines touch the pools; NoWheel is the plain-heap oracle.
var enginePool = arena.New(func(e *Engine) {
	watchq := e.watchq
	for i := range watchq {
		watchq[i] = watchq[i][:0]
	}
	clear(e.assoc)
	*e = Engine{
		watchq:  watchq,
		assoc:   e.assoc,
		threads: e.threads[:0],
		cpus:    e.cpus[:0],
		done:    e.done,
		rng:     e.rng,
	}
})

var threadPool = arena.New(func(t *Thread) {
	*t = Thread{resume: t.resume, rng: t.rng}
})

// NewEngine builds an engine for the given machine.
func NewEngine(cfg Config) *Engine {
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	if cfg.Costs == (topology.CostModel{}) {
		cfg.Costs = topology.DefaultCosts()
	}
	if err := cfg.Costs.Validate(); err != nil {
		panic(err)
	}
	var e *Engine
	if cfg.NoWheel {
		e = &Engine{
			mem: memsim.New(cfg.Topo, cfg.Costs),
			rng: rand.New(rand.NewSource(cfg.Seed)),
		}
	} else {
		e = enginePool.Get()
		e.mem = memsim.NewPooled(cfg.Topo, cfg.Costs)
		if e.rng == nil {
			e.rng = rand.New(rand.NewSource(cfg.Seed))
		} else {
			// Rand.Seed fully rewinds the source and the cached read state,
			// so a recycled generator replays the same stream a fresh one
			// would.
			e.rng.Seed(cfg.Seed)
		}
		e.wheel.init()
	}
	e.topo = cfg.Topo
	e.costs = cfg.Costs
	e.hardStop = cfg.HardStop
	e.fast = !cfg.NoFastPath
	e.useWheel = !cfg.NoWheel
	e.minAt = noEvent
	if e.done == nil {
		e.done = make(chan struct{}, 1)
	}
	cores := cfg.Topo.Cores()
	if cap(e.cpus) >= cores {
		e.cpus = e.cpus[:cores]
	} else {
		e.cpus = make([]cpu, cores)
	}
	for i := range e.cpus {
		c := &e.cpus[i]
		*c = cpu{id: i, socket: cfg.Topo.SocketOf(i), runq: c.runq[:0]}
	}
	return e
}

// Recycle hands the engine's scheduler state, its threads and its memory
// image back to the per-point arena pools. It must be called only after Run
// has returned cleanly with every thread finished: an aborted or panicked
// run can leave thread goroutines parked forever on their resume channels,
// and recycling such a thread would let a future engine's handoff race the
// leaked goroutine for the same channel. The live==0 guard makes Recycle a
// no-op in exactly those cases, as it is in NoWheel (oracle) mode. The
// caller must hold no references into the engine, its memory or its threads
// afterwards.
func (e *Engine) Recycle() {
	if !e.useWheel || !e.started || e.live != 0 {
		return
	}
	mem := e.mem
	for i, t := range e.threads {
		e.threads[i] = nil
		threadPool.Put(t)
	}
	e.threads = e.threads[:0]
	enginePool.Put(e)
	mem.Recycle()
}

// Mem exposes the simulated memory for allocation and statistics.
func (e *Engine) Mem() *memsim.Memory { return e.mem }

// Pooled reports whether the engine draws its per-point state from the
// arena pools (wheel mode). Workload-owned caches (e.g. kvstore tables)
// key their own pooling off it so the NoWheel oracle stays pool-free.
func (e *Engine) Pooled() bool { return e.useWheel }

// Assoc returns the value stored under key for this engine instance, or nil.
// See the assoc field for why engine-scoped state must live here and not in
// caller-side maps keyed by *Engine. Engine code runs one thread at a time,
// so no locking is needed.
func (e *Engine) Assoc(key any) any { return e.assoc[key] }

// SetAssoc stores an engine-scoped value; it is dropped when the engine is
// recycled.
func (e *Engine) SetAssoc(key, val any) {
	if e.assoc == nil {
		e.assoc = make(map[any]any)
	}
	e.assoc[key] = val
}

// Topology returns the simulated machine layout.
func (e *Engine) Topology() topology.Machine { return e.topo }

// Costs returns the cost model in effect.
func (e *Engine) Costs() topology.CostModel { return e.costs }

// Now returns the current virtual time in cycles.
func (e *Engine) Now() uint64 { return e.now }

// Stopped reports whether the stop flag has been raised.
func (e *Engine) Stopped() bool { return e.stopped }

// PathStats returns the fast-path/slow-path transfer counters.
func (e *Engine) PathStats() PathStats { return e.paths }

// Threads returns all spawned threads.
func (e *Engine) Threads() []*Thread { return e.threads }

// Spawn creates a simulated thread pinned to the given core. Threads must
// be spawned before Run. Pass core -1 to pin round-robin by spawn order,
// which matches how the paper's benchmarks pin threads (over-subscription
// lands thread N on core N mod cores).
func (e *Engine) Spawn(name string, core int, fn func(*Thread)) *Thread {
	if e.started {
		panic("sim: Spawn after Run")
	}
	if core < 0 {
		core = len(e.threads) % len(e.cpus)
	}
	if core >= len(e.cpus) {
		panic(fmt.Sprintf("sim: core %d out of range", core))
	}
	var t *Thread
	if e.useWheel {
		t = threadPool.Get() // reset at Put: zero but for resume and rng
	} else {
		t = &Thread{}
	}
	t.id = len(e.threads)
	t.name = name
	t.eng = e
	t.cpu = &e.cpus[core]
	t.state = tsReady
	t.watchLine = -1
	if t.resume == nil {
		t.resume = make(chan struct{})
	}
	if seed := e.rng.Int63(); t.rng == nil {
		t.rng = rand.New(rand.NewSource(seed))
	} else {
		t.rng.Seed(seed) // full rewind: replays the stream a fresh rng would
	}
	e.threads = append(e.threads, t)
	e.live++
	t.cpu.enqueue(t)
	go t.run(fn)
	return t
}

// StopAt raises the stop flag at the given virtual time. Workloads poll
// Thread.Stopped and exit their measurement loops; the run then drains.
func (e *Engine) StopAt(at uint64) {
	e.push(event{at: at, kind: evStop})
}

func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	if e.useWheel {
		e.wheel.push(ev, e.now)
		e.minAt = e.wheel.minAt
		return
	}
	e.evq.push(ev)
	e.minAt = e.evq[0].at
}

// pop removes the (at, seq)-minimum pending event; the queue must be
// non-empty (e.minAt != noEvent).
func (e *Engine) pop() event {
	if e.useWheel {
		ev := e.wheel.pop(e.now)
		e.minAt = e.wheel.minAt
		return ev
	}
	ev := e.evq.pop()
	if len(e.evq) > 0 {
		e.minAt = e.evq[0].at
	} else {
		e.minAt = noEvent
	}
	return ev
}

// pending returns the number of queued events (diagnostics only).
func (e *Engine) pending() int {
	if e.useWheel {
		return e.wheel.size()
	}
	return len(e.evq)
}

// Run executes the simulation until every thread has finished. It panics on
// deadlock (live threads but no pending events) and on HardStop overrun.
func (e *Engine) Run() {
	if e.started {
		panic("sim: Run called twice")
	}
	e.started = true
	e.mem.OnWrite = e.onWrite
	for i := range e.cpus {
		c := &e.cpus[i]
		if c.qlen() > 0 {
			c.dispatchNext(e)
		}
	}
	e.schedule(nil)
	<-e.done
	// The simulation is over: hand the wheel's slot arrays back to the
	// pool (recycle clears any stale leftover events first). Panicking
	// paths skip this, so their diagnostics still see the queue.
	e.wheel.recycle()
}

// schedule runs the event loop until control is handed to a thread (or the
// simulation completes). It executes on whichever goroutine is giving up
// control — the blocking thread itself — so a slow-path transfer costs one
// goroutine switch, thread to thread, instead of a round trip through a
// dedicated scheduler goroutine. self is the blocking thread (nil from Run
// and from a finished thread); when the next event resumes self, schedule
// skips the channel handshake entirely and the caller just keeps running.
// Returns the thread control was handed to.
func (e *Engine) schedule(self *Thread) *Thread {
	if e.live == 0 {
		e.done <- struct{}{}
		return nil
	}
	for {
		if e.minAt == noEvent {
			panic("sim: deadlock — live threads but no pending events\n" + e.dump())
		}
		ev := e.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		if e.hardStop > 0 && e.now > e.hardStop {
			panic("sim: hard stop exceeded — livelocked protocol?\n" + e.dump())
		}
		switch ev.kind {
		case evStop:
			e.stopped = true
		case evResume:
			t := ev.t
			if t.epoch != ev.epoch {
				continue // stale
			}
			e.paths.EngineTrips++
			e.handoff(t, self)
			return t
		case evPreempt:
			t := ev.t
			if t.epoch != ev.epoch || t.state != tsSpinWait {
				continue
			}
			// Hand the CPU back to the spin-waiting thread with
			// needResched raised: handoff's spin-wait bookkeeping zeroes
			// its quantum, so the thread's next scheduling check parks,
			// yields, or rescheds it (kernel-style preemption point).
			e.paths.EngineTrips++
			e.handoff(t, self)
			return t
		case evWake:
			t := ev.t
			if t.epoch != ev.epoch || t.state != tsWaking {
				continue
			}
			if next := e.makeRunnable(t, self); next != nil {
				return next
			}
		case evTimerWake:
			// A park timeout or injected spurious wakeup: wake the thread
			// without an unpark permit. Stale once the thread was properly
			// unparked (epoch moved) or is no longer parked.
			t := ev.t
			if t.epoch != ev.epoch || t.state != tsParked {
				continue
			}
			if next := e.makeRunnable(t, self); next != nil {
				return next
			}
		}
	}
}

// handoff gives the CPU to t. When t is the very goroutine executing the
// event loop (self), the channel handshake is skipped: the caller returns
// from schedule and simply continues running.
func (e *Engine) handoff(t, self *Thread) {
	t.epoch++
	if t.state == tsSpinWait {
		// Woken by a write to the watched line: account the time spent
		// spinning against the quantum and detach from the watch set.
		t.quantumLeft = t.spinQuantum - int64(e.now-t.spinStart)
		if t.quantumLeft <= 0 {
			t.needResched = true
		}
		t.detachWatch()
	}
	t.state = tsRunning
	e.running = t
	if t != self {
		t.resume <- struct{}{}
	}
}

// fastCovers reports whether the queue-top invariant licenses advancing
// the clock by step without an engine round trip: fast mode is on and
// every pending event fires strictly later than now+step. Ties (an event
// at exactly now+step) must take the slow path — the queued event carries
// a smaller seq than the resume the slow path would push, so the (at, seq)
// order runs the queued event first. minAt is noEvent (MaxUint64) when the
// queue is empty, so the empty case needs no separate branch.
func (e *Engine) fastCovers(step uint64) bool {
	return e.fast && e.minAt > e.now+step
}

// fastAdvance moves virtual time forward in place (fast path). The hard
// stop is checked here because the slow path checks it when popping the
// resume event this advance replaces.
func (e *Engine) fastAdvance(step uint64) {
	e.now += step
	if e.hardStop > 0 && e.now > e.hardStop {
		panic("sim: hard stop exceeded — livelocked protocol?\n" + e.dump())
	}
}

// makeRunnable places a woken thread on its core's run queue, dispatching
// immediately if the core is idle and arranging preemption of a spinner
// whose quantum has expired. Returns the thread control was handed to when
// the idle-core dispatch took the fast path, nil otherwise (the event loop
// keeps running).
func (e *Engine) makeRunnable(t, self *Thread) *Thread {
	t.state = tsReady
	t.epoch++
	c := t.cpu
	c.enqueue(t)
	switch {
	case c.cur == nil:
		e.CtxSwitches++
		if e.fastCovers(e.costs.CtxSwitch) {
			// Idle core, no event can fire inside the switch: skip the
			// dispatch event and hand the CPU over right away.
			e.paths.FastHandoffs++
			e.fastAdvance(e.costs.CtxSwitch)
			next := c.dispatchFast(e)
			next.epoch++
			next.state = tsRunning
			e.running = next
			if next != self {
				next.resume <- struct{}{}
			}
			return next
		}
		c.dispatchNext(e)
	case c.cur.state == tsSpinWait:
		e.schedulePreempt(c.cur)
	}
	return nil
}

// schedulePreempt arms a preemption event for a spin-waiting thread at the
// moment its remaining quantum runs out.
func (e *Engine) schedulePreempt(t *Thread) {
	rem := t.spinQuantum - int64(e.now-t.spinStart)
	if rem < 0 {
		rem = 0
	}
	e.push(event{at: e.now + uint64(rem), kind: evPreempt, t: t, epoch: t.epoch})
}

// addWatcher registers t on the written-line wake list of the given line,
// growing the per-line table on first use.
func (e *Engine) addWatcher(line int32, t *Thread) {
	for int(line) >= len(e.watchq) {
		e.watchq = append(e.watchq, nil)
	}
	e.watchq[line] = append(e.watchq[line], t)
}

// onWrite is installed as the memory's write callback; it wakes every
// thread spin-waiting on the written line, in registration order.
func (e *Engine) onWrite(line int32) {
	if int(line) >= len(e.watchq) {
		return
	}
	ws := e.watchq[line]
	if len(ws) == 0 {
		return
	}
	// Truncate in place before walking: the capacity stays on the line's
	// slot, so the next watch/wake cycle on this line reuses it instead of
	// allocating. No thread can run (and re-register) during the walk.
	e.watchq[line] = ws[:0]
	for _, t := range ws {
		if t.state != tsSpinWait || t.watchLine != line {
			continue // stale entry: the thread was preempted or moved on
		}
		e.push(event{at: e.now + e.costs.SpinRecheck, kind: evResume, t: t, epoch: t.epoch})
	}
}

// threadDone is called (from the thread goroutine) when a thread's function
// returns.
func (e *Engine) threadDone(t *Thread) {
	t.state = tsDone
	t.epoch++
	e.live--
	if t.cpu.cur == t {
		e.CtxSwitches++
		t.cpu.dispatchNext(e)
	}
}

// dump renders scheduler state for deadlock diagnostics: every live
// thread, every core's current thread and run-queue contents, and a
// summary of the pending events — enough to diagnose a hard stop or a
// deadlock panic without a debugger.
func (e *Engine) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d live=%d\n", e.now, e.live)
	for _, t := range e.threads {
		if t.state == tsDone {
			continue
		}
		fmt.Fprintf(&b, "  thread %d %q core=%d state=%v", t.id, t.name, t.cpu.id, t.state)
		if t.state == tsSpinWait && t.watchLine >= 0 {
			fmt.Fprintf(&b, " watching w%d=%d (%s)", t.watchWord, e.mem.Peek(t.watchWord), e.mem.TagOf(t.watchWord))
		}
		fmt.Fprintf(&b, "\n")
	}
	for i := range e.cpus {
		c := &e.cpus[i]
		if c.cur == nil && c.qlen() == 0 {
			continue
		}
		fmt.Fprintf(&b, "  core %d:", c.id)
		if c.cur != nil {
			fmt.Fprintf(&b, " cur=%d", c.cur.id)
		} else {
			fmt.Fprintf(&b, " idle")
		}
		if c.qlen() > 0 {
			fmt.Fprintf(&b, " runq=[")
			for j := c.head; j < len(c.runq); j++ {
				if j > c.head {
					fmt.Fprintf(&b, " ")
				}
				fmt.Fprintf(&b, "%d", c.runq[j].id)
			}
			fmt.Fprintf(&b, "]")
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "  events: %d pending\n", e.pending())
	evs := e.wheel.all(append([]event(nil), e.evq...))
	sort.Slice(evs, func(i, j int) bool { return less(evs[i], evs[j]) })
	const maxDump = 16
	for i, ev := range evs {
		if i == maxDump {
			fmt.Fprintf(&b, "    ... %d more\n", len(evs)-maxDump)
			break
		}
		fmt.Fprintf(&b, "    at=%d kind=%v", ev.at, ev.kind)
		if ev.t != nil {
			stale := ""
			if ev.t.epoch != ev.epoch {
				stale = " (stale)"
			}
			fmt.Fprintf(&b, " thread=%d%s", ev.t.id, stale)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
