package sim

// eventKind discriminates the engine's event types.
type eventKind uint8

const (
	// evResume hands the CPU back to a thread that is waiting inside one
	// of its blocking primitives (charge, watch-wait, dispatch).
	evResume eventKind = iota
	// evPreempt forcibly deschedules a spin-waiting thread whose quantum
	// has expired while other threads wait on its core's run queue.
	evPreempt
	// evWake makes a previously parked thread runnable after the wakeup
	// latency has elapsed.
	evWake
	// evStop sets the engine's stop flag; workloads poll Thread.Stopped.
	evStop
	// evTimerWake wakes a parked thread without an unpark permit: a park
	// timeout (ParkTimeout) or an injected spurious wakeup. Stale if the
	// thread's epoch moved or it is no longer parked.
	evTimerWake
)

func (k eventKind) String() string {
	switch k {
	case evResume:
		return "resume"
	case evPreempt:
		return "preempt"
	case evWake:
		return "wake"
	case evStop:
		return "stop"
	case evTimerWake:
		return "timer-wake"
	}
	return "?"
}

// event is the engine's queue entry. It is sized to half a cache line (32
// bytes, pinned by TestEventLayout): the timer wheel and the heap both move
// events by value on every push/pop, so four events per 64-byte line halves
// the queue's memory traffic versus the old 40-byte layout. epoch is uint32
// like Thread.epoch — it counts control transfers of one thread within one
// run (bounded by the ~20M-cycle window over the >=4-cycle minimum charge
// step), which cannot approach 2^32.
type event struct {
	at    uint64
	seq   uint64 // tie-breaker: FIFO among simultaneous events
	t     *Thread
	epoch uint32
	kind  eventKind
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap []event

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	// Zero the vacated tail slot: the heap slice is reused for the whole
	// run, and a stale copy there would pin its *Thread live.
	old[n] = event{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && less(old[l], old[m]) {
			m = l
		}
		if r < n && less(old[r], old[m]) {
			m = r
		}
		if m == i {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}

func less(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
