package sim

import (
	"math/rand"
	"testing"

	"shfllock/internal/topology"
)

// benchCharge times the engine's hottest edge: a sole thread charging many
// small steps. With the fast path every step is an in-place clock advance;
// without it every step is an event push plus a goroutine handoff.
func benchCharge(b *testing.B, noFast bool) {
	e := NewEngine(Config{Topo: topology.Laptop(), Seed: 1, NoFastPath: noFast})
	e.Spawn("t", 0, func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.Delay(10)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkChargeFastPath(b *testing.B) {
	b.Run("fast", func(b *testing.B) { benchCharge(b, false) })
	b.Run("slow", func(b *testing.B) { benchCharge(b, true) })
}

// benchWatchWake times the spin-wait wake cycle: two threads on different
// cores ping-pong through watched words, so every iteration registers a
// watcher, fires a write notification, and hands the CPU over.
func benchWatchWake(b *testing.B, noFast bool) {
	e := NewEngine(Config{Topo: topology.Laptop(), Seed: 1, NoFastPath: noFast})
	ping := e.Mem().AllocWord("ping")
	pong := e.Mem().AllocWord("pong")
	e.Spawn("ping", 0, func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.Store(ping, uint64(i+1))
			th.SpinUntil(pong, func(v uint64) bool { return v == uint64(i+1) })
		}
	})
	e.Spawn("pong", 1, func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.SpinUntil(ping, func(v uint64) bool { return v == uint64(i+1) })
			th.Store(pong, uint64(i+1))
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkWatchWake(b *testing.B) {
	b.Run("fast", func(b *testing.B) { benchWatchWake(b, false) })
	b.Run("slow", func(b *testing.B) { benchWatchWake(b, true) })
}

// BenchmarkEventHeap times raw heap churn at a realistic pending-event
// population (a few hundred, as in a full-subscription sweep point).
func BenchmarkEventHeap(b *testing.B) {
	var h eventHeap
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 256; i++ {
		h.push(event{at: uint64(rng.Intn(1 << 20)), seq: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := h.pop()
		ev.at += uint64(rng.Intn(1024)) + 1
		ev.seq = uint64(256 + i)
		h.push(ev)
	}
}
