package sim

import (
	"math/rand"
	"testing"

	"shfllock/internal/topology"
)

// benchCharge times the engine's hottest edge: a sole thread charging many
// small steps. With the fast path every step is an in-place clock advance;
// without it every step is an event push plus a goroutine handoff.
func benchCharge(b *testing.B, noFast bool) {
	e := NewEngine(Config{Topo: topology.Laptop(), Seed: 1, NoFastPath: noFast})
	e.Spawn("t", 0, func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.Delay(10)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkChargeFastPath(b *testing.B) {
	b.Run("fast", func(b *testing.B) { benchCharge(b, false) })
	b.Run("slow", func(b *testing.B) { benchCharge(b, true) })
}

// benchWatchWake times the spin-wait wake cycle: two threads on different
// cores ping-pong through watched words, so every iteration registers a
// watcher, fires a write notification, and hands the CPU over.
func benchWatchWake(b *testing.B, noFast bool) {
	e := NewEngine(Config{Topo: topology.Laptop(), Seed: 1, NoFastPath: noFast})
	ping := e.Mem().AllocWord("ping")
	pong := e.Mem().AllocWord("pong")
	e.Spawn("ping", 0, func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.Store(ping, uint64(i+1))
			th.SpinUntil(pong, func(v uint64) bool { return v == uint64(i+1) })
		}
	})
	e.Spawn("pong", 1, func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.SpinUntil(ping, func(v uint64) bool { return v == uint64(i+1) })
			th.Store(pong, uint64(i+1))
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkWatchWake(b *testing.B) {
	b.Run("fast", func(b *testing.B) { benchWatchWake(b, false) })
	b.Run("slow", func(b *testing.B) { benchWatchWake(b, true) })
}

// Event-queue backend micro-benchmarks: the same pop-advance-push churn
// driven through the reference heap and the timer wheel, across the push
// distances the engine actually generates. "dense" is the dominant regime
// (resumes and rechecks within a few hundred cycles), "sparse" pushes past
// the wheel's dense horizon so every event takes the spill heap and
// migrates back, and "mixed" approximates a full sweep point's blend.
// Populations of a few hundred pending events match a full-subscription
// sweep point.

type queueBackend interface {
	pushAt(ev event, now uint64)
	popAt(now uint64) event
}

type heapBackend struct{ h eventHeap }

func (q *heapBackend) pushAt(ev event, now uint64) { q.h.push(ev) }
func (q *heapBackend) popAt(now uint64) event      { return q.h.pop() }

type wheelBackend struct{ w timerWheel }

func (q *wheelBackend) pushAt(ev event, now uint64) { q.w.push(ev, now) }
func (q *wheelBackend) popAt(now uint64) event      { return q.w.pop(now) }

// benchQueue churns a backend at a steady population of 256 events, with
// push distance drawn by delta. The simulated clock follows pop order, as
// in the engine.
func benchQueue(b *testing.B, q queueBackend, delta func(*rand.Rand) uint64) {
	rng := rand.New(rand.NewSource(1))
	var now, seq uint64
	for i := 0; i < 256; i++ {
		q.pushAt(event{at: now + delta(rng), seq: seq}, now)
		seq++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.popAt(now)
		now = ev.at
		ev.at = now + delta(rng)
		ev.seq = seq
		seq++
		q.pushAt(ev, now)
	}
}

func denseDelta(rng *rand.Rand) uint64  { return uint64(rng.Intn(300)) + 1 }
func sparseDelta(rng *rand.Rand) uint64 { return uint64(wheelSlots + rng.Intn(1<<16)) }
func mixedDelta(rng *rand.Rand) uint64 {
	if rng.Intn(10) < 9 {
		return denseDelta(rng)
	}
	return sparseDelta(rng)
}

func BenchmarkEventQueue(b *testing.B) {
	deltas := []struct {
		name string
		fn   func(*rand.Rand) uint64
	}{{"dense", denseDelta}, {"sparse", sparseDelta}, {"mixed", mixedDelta}}
	for _, d := range deltas {
		b.Run("heap/"+d.name, func(b *testing.B) { benchQueue(b, &heapBackend{}, d.fn) })
		b.Run("wheel/"+d.name, func(b *testing.B) {
			q := &wheelBackend{}
			q.w.init()
			benchQueue(b, q, d.fn)
		})
	}
}

// BenchmarkEventHeap is the original heap-churn benchmark, kept for
// comparability with earlier recorded numbers.
func BenchmarkEventHeap(b *testing.B) {
	var h eventHeap
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 256; i++ {
		h.push(event{at: uint64(rng.Intn(1 << 20)), seq: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := h.pop()
		ev.at += uint64(rng.Intn(1024)) + 1
		ev.seq = uint64(256 + i)
		h.push(ev)
	}
}
