package sim

import (
	"testing"

	"shfllock/internal/memsim"
	"shfllock/internal/topology"
)

// differentialOutcome is everything observable about a run that the fast
// path must leave unchanged: virtual end time, every scheduler counter, the
// memory model's totals, and the per-thread operation counts.
type differentialOutcome struct {
	end         uint64
	preemptions uint64
	ctxSwitches uint64
	parks       uint64
	unparks     uint64
	yields      uint64
	mem         memsim.GroupStats
	ops         [13]uint64
}

// runDifferentialWorkload runs a mixed workload — a TAS lock with spin-wait,
// park/unpark pairs, yields, oversubscribed cores — with the fast path on
// or off, and returns the outcome plus the engine's path counters.
func runDifferentialWorkload(seed int64, noFast bool) (differentialOutcome, PathStats) {
	e := NewEngine(Config{
		Topo:       topology.Laptop(),
		Seed:       seed,
		HardStop:   50_000_000_000,
		NoFastPath: noFast,
	})
	lock := e.Mem().AllocWord("lock")
	ack := e.Mem().AllocWord("ack")
	var out differentialOutcome
	const n = 13 // 3x+ oversubscribed on the 4-core laptop topology
	// Park/unpark pair in lockstep: the waker waits for the sleeper to
	// acknowledge park k before issuing wakeup k+1, so exactly one unpark
	// is ever outstanding and the one-token permit cannot lose a wakeup.
	var sleeper *Thread
	sleeper = e.Spawn("sleeper", 0, func(th *Thread) {
		for k := 0; k < 10; k++ {
			th.Park()
			th.Add(ack, 1)
			out.ops[th.ID()]++
		}
	})
	e.Spawn("waker", 1, func(th *Thread) {
		for k := 0; k < 10; k++ {
			th.SpinUntil(ack, func(v uint64) bool { return v >= uint64(k) })
			th.Delay(uint64(th.Rng().Intn(2000)))
			th.Unpark(sleeper)
			out.ops[th.ID()]++
		}
	})
	for i := 2; i < n; i++ {
		e.Spawn("t", -1, func(th *Thread) {
			for k := 0; k < 25; k++ {
				for !th.CAS(lock, 0, 1) {
					th.SpinWhileEq(lock, 1)
				}
				th.Delay(uint64(th.Rng().Intn(700)) + 50)
				th.Store(lock, 0)
				out.ops[th.ID()]++
				switch th.Rng().Intn(5) {
				case 0:
					th.Yield()
				case 1:
					th.Delay(uint64(th.Rng().Intn(3000)))
				}
			}
		})
	}
	e.Run()
	out.end = e.Now()
	out.preemptions = e.Preemptions
	out.ctxSwitches = e.CtxSwitches
	out.parks = e.ParkCount
	out.unparks = e.UnparkCount
	out.yields = e.YieldCount
	out.mem = e.Mem().TotalStats()
	return out, e.PathStats()
}

// TestFastPathDifferential runs the same seeds through both engine modes
// and requires identical outcomes: the fast path may only change how fast
// the host executes the simulation, never what it simulates.
func TestFastPathDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		slow, slowPaths := runDifferentialWorkload(seed, true)
		fast, fastPaths := runDifferentialWorkload(seed, false)
		if slow != fast {
			t.Errorf("seed %d: outcomes diverge\n slow: %+v\n fast: %+v", seed, slow, fast)
		}
		if slowPaths.FastResumes != 0 || slowPaths.FastHandoffs != 0 {
			t.Errorf("seed %d: slow mode took fast paths: %+v", seed, slowPaths)
		}
		if fastPaths.FastResumes == 0 {
			t.Errorf("seed %d: fast mode never took the fast path: %+v", seed, fastPaths)
		}
	}
}

// TestWatchWakeOrderFIFO pins one spinner per core, registers them on the
// same word at staggered times, and checks a single write wakes them in
// registration order — the order the per-line watch list must preserve.
func TestWatchWakeOrderFIFO(t *testing.T) {
	e := NewEngine(Config{Topo: topology.Laptop(), Seed: 1, HardStop: 50_000_000_000})
	flag := e.Mem().AllocWord("flag")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("spin", i, func(th *Thread) {
			th.Delay(uint64(100_000 * (i + 1)))
			th.SpinUntil(flag, func(v uint64) bool { return v == 1 })
			order = append(order, i)
		})
	}
	e.Spawn("writer", 3, func(th *Thread) {
		th.Delay(600_000)
		th.Store(flag, 1)
	})
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order = %v, want [0 1 2]", order)
	}
}

// TestRewatchWakesAtFirstPosition exercises the duplicate-entry semantics
// of the watch list: a spinner that is preempted mid-watch and re-registers
// later must still wake at its ORIGINAL list position (the stale first
// entry matches the live re-watch, and the duplicate's resume goes stale).
// An implementation that unlinked entries on detach would move the thread
// to the back of the line and change simulated wake order.
func TestRewatchWakesAtFirstPosition(t *testing.T) {
	e := NewEngine(Config{Topo: topology.Laptop(), Seed: 1, HardStop: 50_000_000_000})
	flag := e.Mem().AllocWord("flag")
	var order []string
	// A registers first but shares core 0 with a hog, so its quantum
	// expires mid-watch; it is preempted and re-registers after B.
	e.Spawn("A", 0, func(th *Thread) {
		th.SpinUntil(flag, func(v uint64) bool { return v == 1 })
		order = append(order, "A")
	})
	e.Spawn("hog", 0, func(th *Thread) {
		th.Delay(3 * e.Costs().Quantum)
	})
	e.Spawn("B", 1, func(th *Thread) {
		th.Delay(e.Costs().Quantum / 2)
		th.SpinUntil(flag, func(v uint64) bool { return v == 1 })
		order = append(order, "B")
	})
	// 4.5 quanta lands inside a window where A is re-registered and
	// genuinely spin-waiting (its first watch ended in preemption at ~1
	// quantum; it re-watches each time the hog's quantum expires).
	e.Spawn("writer", 2, func(th *Thread) {
		th.Delay(9 * e.Costs().Quantum / 2)
		th.Store(flag, 1)
	})
	e.Run()
	if e.Preemptions == 0 {
		t.Fatal("scenario did not preempt the first watcher; test needs retuning")
	}
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Fatalf("wake order = %v, want [A B] (A keeps its first-registration position)", order)
	}
}
