package sim

// Injector receives fault-injection queries from inside the engine's
// primitives and the lock substrates. The queries run in thread context —
// exactly one thread executes at a time — so an implementation drawing from
// a seeded random source stays deterministic: the same seed replays the
// same fault schedule. A nil injector (the default) turns every hook into a
// single branch.
//
// Injector decisions are engine metadata: they must not touch simulated
// memory. Their observable effect is only through the scheduling they force
// (a yield, a timer wake), which the cost model charges normally.
type Injector interface {
	// SpuriousWakeDelay is consulted when t commits to park. A non-zero
	// return arms a timer wake that many cycles later without an unpark
	// permit — the simulator's futex spurious wakeup. Park's callers
	// re-check their condition, so the wake costs one loop iteration.
	SpuriousWakeDelay(t *Thread) uint64
	// ShufflerPreempt is consulted by lock substrates at the point a
	// shuffling round consumes the shuffler role; true forces the thread to
	// yield the CPU first, modelling the shuffler being descheduled at its
	// most load-bearing moment.
	ShufflerPreempt(t *Thread) bool
	// PolicyFlip is consulted by lock substrates at the transition-
	// adversarial moments (FlipMoment): a non-empty return names the
	// shuffle policy the lock must switch to, right there, through its
	// transition API. The injector returns a name rather than a policy so
	// the sim package stays independent of internal/shuffle.
	PolicyFlip(t *Thread, m FlipMoment) string
}

// FlipMoment classifies where a forced policy transition lands: the three
// instants where a swap interacts with in-flight queue surgery.
type FlipMoment uint8

const (
	// FlipMidShuffle fires as a shuffling round consumes the role — the
	// walk is about to run under its pinned policy while the box changes.
	FlipMidShuffle FlipMoment = iota
	// FlipAbortReclaim fires as an abandoned node is unlinked (by a scan
	// or by the grant walk).
	FlipAbortReclaim
	// FlipHeadAbdication fires as a timed-out queue head abdicates via the
	// grant walk without taking the lock.
	FlipHeadAbdication
)

func (m FlipMoment) String() string {
	switch m {
	case FlipMidShuffle:
		return "mid-shuffle"
	case FlipAbortReclaim:
		return "abort-reclaim"
	case FlipHeadAbdication:
		return "head-abdication"
	}
	return "unknown"
}

// SetInjector installs a fault injector. Install before Run.
func (e *Engine) SetInjector(i Injector) { e.injector = i }

// Injector returns the installed fault injector, or nil.
func (e *Engine) Injector() Injector { return e.injector }

// Abort ends the run from inside a thread: Run returns immediately with the
// given reason recorded, leaving every other thread frozen where it stands.
// This is the escape hatch for watchdogs that detect a deadlock or
// starvation the simulation would otherwise hang on — the frozen state is
// exactly what Dump then reports. The calling thread must not execute any
// further engine operations; it should block forever (select{}).
func (e *Engine) Abort(reason string) {
	e.abortReason = reason
	e.stopped = true
	e.done <- struct{}{}
}

// AbortReason returns the reason passed to Abort, or "" for a normal run.
func (e *Engine) AbortReason() string { return e.abortReason }

// Dump renders the scheduler state — live threads, per-core run queues,
// pending events — for watchdog reports and tooling. Deterministic for a
// given schedule.
func (e *Engine) Dump() string { return e.dump() }
