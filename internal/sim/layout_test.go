package sim

import (
	"testing"
	"unsafe"
)

// TestEventLayout pins event to half a cache line. Both queue backends move
// events by value on every push, pop and migration, so growing the struct
// past 32 bytes (two events per line fewer) shows up directly as queue
// memory traffic. If a new field is genuinely needed, shrink or pack an
// existing one rather than crossing the boundary.
func TestEventLayout(t *testing.T) {
	if s := unsafe.Sizeof(event{}); s != 32 {
		t.Fatalf("event is %d bytes, budget is 32", s)
	}
}

// TestThreadLayout pins Thread's hot/cold split: everything the
// charge/handoff/watch path touches must stay within the first 64 bytes so
// a control transfer reads one line per thread, and the spawn-time fields
// must stay off that line. The budget is asserted via the first cold field's
// offset rather than individual hot offsets, so reordering within the hot
// line stays free.
func TestThreadLayout(t *testing.T) {
	var th Thread
	if off := unsafe.Offsetof(th.rng); off != 64 {
		t.Fatalf("Thread hot fields end at %d bytes, budget is 64", off)
	}
	if s := unsafe.Sizeof(th); s != 96 {
		t.Fatalf("Thread is %d bytes, budget is 96 (64 hot + 32 cold)", s)
	}
	hot := []struct {
		name string
		off  uintptr
	}{
		{"eng", unsafe.Offsetof(th.eng)},
		{"cpu", unsafe.Offsetof(th.cpu)},
		{"resume", unsafe.Offsetof(th.resume)},
		{"quantumLeft", unsafe.Offsetof(th.quantumLeft)},
		{"spinStart", unsafe.Offsetof(th.spinStart)},
		{"spinQuantum", unsafe.Offsetof(th.spinQuantum)},
		{"watchLine", unsafe.Offsetof(th.watchLine)},
		{"watchWord", unsafe.Offsetof(th.watchWord)},
		{"epoch", unsafe.Offsetof(th.epoch)},
		{"state", unsafe.Offsetof(th.state)},
		{"needResched", unsafe.Offsetof(th.needResched)},
		{"permit", unsafe.Offsetof(th.permit)},
	}
	for _, f := range hot {
		if f.off >= 64 {
			t.Errorf("hot field %s at offset %d, past the 64-byte line", f.name, f.off)
		}
	}
}
