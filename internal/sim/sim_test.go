package sim

import (
	"testing"
	"testing/quick"

	"shfllock/internal/topology"
)

func newEngine(seed int64) *Engine {
	return NewEngine(Config{Topo: topology.Laptop(), Seed: seed, HardStop: 50_000_000_000})
}

func TestSingleThreadDelay(t *testing.T) {
	e := newEngine(1)
	var end uint64
	e.Spawn("t0", 0, func(th *Thread) {
		th.Delay(1000)
		end = th.Now()
	})
	e.Run()
	want := topology.DefaultCosts().CtxSwitch + 1000
	if end != want {
		t.Errorf("end time = %d, want %d (ctxswitch + delay)", end, want)
	}
}

func TestParallelismAcrossCores(t *testing.T) {
	e := newEngine(1)
	ends := make([]uint64, 2)
	for i := 0; i < 2; i++ {
		e.Spawn("t", i, func(th *Thread) {
			th.Delay(10_000)
			ends[th.ID()] = th.Now()
		})
	}
	e.Run()
	// Threads on different cores run concurrently in virtual time.
	if ends[0] != ends[1] {
		t.Errorf("cores did not run in parallel: %v", ends)
	}
}

func TestTimeslicingOnOneCore(t *testing.T) {
	costs := topology.DefaultCosts()
	e := newEngine(1)
	ends := make([]uint64, 2)
	work := 3 * costs.Quantum
	for i := 0; i < 2; i++ {
		e.Spawn("t", 0, func(th *Thread) {
			th.Delay(work)
			ends[th.ID()] = th.Now()
		})
	}
	e.Run()
	// Two threads sharing one core interleave quantum by quantum: the
	// first finisher needs at least 2*work - quantum of wall time, the
	// second at least 2*work.
	q := costs.Quantum
	if ends[0] < 2*work-q && ends[1] < 2*work-q {
		t.Errorf("no timeslicing: ends = %v, work = %d", ends, work)
	}
	if max(ends[0], ends[1]) < 2*work {
		t.Errorf("total time too short for shared core: ends = %v", ends)
	}
	if e.Preemptions == 0 {
		t.Errorf("expected preemptions, got none")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// With N threads on one core, completion times should all be within
	// one quantum-ish of each other.
	e := newEngine(1)
	const n = 4
	work := 2 * topology.DefaultCosts().Quantum
	ends := make([]uint64, n)
	for i := 0; i < n; i++ {
		e.Spawn("t", 0, func(th *Thread) {
			th.Delay(work)
			ends[th.ID()] = th.Now()
		})
	}
	e.Run()
	var min, max uint64 = ends[0], ends[0]
	for _, v := range ends {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// Perfect round robin staggers completions by at most one quantum
	// (plus switch overhead) per thread.
	if max-min > uint64(n)*topology.DefaultCosts().Quantum {
		t.Errorf("unfair round robin: spread=%d ends=%v", max-min, ends)
	}
}

func TestCASAtomicity(t *testing.T) {
	e := newEngine(1)
	w := e.Mem().AllocWord("ctr")
	const n, iters = 8, 100
	for i := 0; i < n; i++ {
		e.Spawn("inc", -1, func(th *Thread) {
			for k := 0; k < iters; k++ {
				for {
					v := th.Load(w)
					if th.CAS(w, v, v+1) {
						break
					}
				}
			}
		})
	}
	e.Run()
	if got := e.Mem().Peek(w); got != n*iters {
		t.Errorf("counter = %d, want %d", got, n*iters)
	}
}

func TestSpinUntilWakesOnWrite(t *testing.T) {
	e := newEngine(1)
	w := e.Mem().AllocWord("flag")
	var observed uint64
	var wakeTime uint64
	e.Spawn("waiter", 0, func(th *Thread) {
		observed = th.SpinUntil(w, func(v uint64) bool { return v == 7 })
		wakeTime = th.Now()
	})
	e.Spawn("setter", 1, func(th *Thread) {
		th.Delay(500_000)
		th.Store(w, 7)
	})
	e.Run()
	if observed != 7 {
		t.Errorf("SpinUntil returned %d, want 7", observed)
	}
	if wakeTime < 500_000 {
		t.Errorf("waiter woke before the write: %d", wakeTime)
	}
	if wakeTime > 600_000 {
		t.Errorf("waiter woke too late: %d", wakeTime)
	}
}

func TestSpinnerPreemptedByRunnableThread(t *testing.T) {
	// A spinner shares core 0 with a worker. The spinner must not
	// monopolize the core: the worker finishes despite the spin loop.
	e := newEngine(1)
	w := e.Mem().AllocWord("flag")
	workerDone := false
	e.Spawn("spinner", 0, func(th *Thread) {
		th.SpinUntil(w, func(v uint64) bool { return v == 1 })
	})
	e.Spawn("worker", 0, func(th *Thread) {
		th.Delay(3 * topology.DefaultCosts().Quantum)
		workerDone = true
		th.Store(w, 1)
	})
	e.Run()
	if !workerDone {
		t.Fatal("worker starved by spinner")
	}
}

func TestParkUnpark(t *testing.T) {
	e := newEngine(1)
	order := []string{}
	var sleeper *Thread
	sleeper = e.Spawn("sleeper", 0, func(th *Thread) {
		order = append(order, "parking")
		th.Park()
		order = append(order, "woken")
	})
	e.Spawn("waker", 1, func(th *Thread) {
		th.Delay(100_000)
		order = append(order, "waking")
		th.Unpark(sleeper)
	})
	e.Run()
	want := []string{"parking", "waking", "woken"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestUnparkBeforeParkIsNotLost(t *testing.T) {
	e := newEngine(1)
	done := false
	var sleeper *Thread
	sleeper = e.Spawn("sleeper", 0, func(th *Thread) {
		th.Delay(200_000) // park long after the unpark
		th.Park()
		done = true
	})
	e.Spawn("waker", 1, func(th *Thread) {
		th.Unpark(sleeper)
	})
	e.Run()
	if !done {
		t.Fatal("wakeup lost")
	}
}

func TestWakeLatency(t *testing.T) {
	costs := topology.DefaultCosts()
	e := newEngine(1)
	var wakeIssued, wokeAt uint64
	var sleeper *Thread
	sleeper = e.Spawn("sleeper", 0, func(th *Thread) {
		th.Park()
		wokeAt = th.Now()
	})
	e.Spawn("waker", 1, func(th *Thread) {
		th.Delay(50_000)
		th.Unpark(sleeper)
		wakeIssued = th.Now()
	})
	e.Run()
	if wokeAt < wakeIssued+costs.WakeLatency {
		t.Errorf("woke at %d, issued at %d, latency %d not applied",
			wokeAt, wakeIssued, costs.WakeLatency)
	}
}

func TestNrRunning(t *testing.T) {
	e := newEngine(1)
	var seen int
	e.Spawn("a", 0, func(th *Thread) {
		th.Delay(10)
		seen = th.NrRunning()
		th.Delay(10 * topology.DefaultCosts().Quantum)
	})
	e.Spawn("b", 0, func(th *Thread) {
		th.Delay(10 * topology.DefaultCosts().Quantum)
	})
	e.Run()
	if seen != 2 {
		t.Errorf("NrRunning = %d, want 2", seen)
	}
}

func TestStopFlag(t *testing.T) {
	e := newEngine(1)
	var ops int
	e.Spawn("loop", 0, func(th *Thread) {
		for !th.Stopped() {
			th.Delay(1000)
			ops++
		}
	})
	e.StopAt(100_000)
	e.Run()
	if ops == 0 || ops > 200 {
		t.Errorf("ops = %d, want ~100", ops)
	}
}

func TestYieldRotates(t *testing.T) {
	e := newEngine(1)
	var order []int
	for i := 0; i < 3; i++ {
		e.Spawn("y", 0, func(th *Thread) {
			for k := 0; k < 2; k++ {
				order = append(order, th.ID())
				th.Yield()
			}
		})
	}
	e.Run()
	// Round robin: 0 1 2 0 1 2.
	want := []int{0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		e := newEngine(42)
		w := e.Mem().AllocWord("w")
		for i := 0; i < 6; i++ {
			e.Spawn("t", -1, func(th *Thread) {
				for k := 0; k < 50; k++ {
					for !th.CAS(w, 0, 1) {
						th.SpinWhileEq(w, 1)
					}
					th.Delay(uint64(th.Rng().Intn(500)) + 100)
					th.Store(w, 0)
					th.Delay(uint64(th.Rng().Intn(200)))
				}
			})
		}
		e.Run()
		return e.Now(), e.Mem().TotalStats().Atomics
	}
	t1, a1 := run()
	t2, a2 := run()
	if t1 != t2 || a1 != a2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", t1, a1, t2, a2)
	}
}

func TestMutualExclusionWithSimpleTAS(t *testing.T) {
	// A raw TAS lock built directly on the Thread API must provide mutual
	// exclusion; we assert no two threads are ever inside the critical
	// section at once. This validates atomicity of CAS across the engine's
	// time-charging.
	e := newEngine(7)
	lock := e.Mem().AllocWord("lock")
	inCS := 0
	violations := 0
	for i := 0; i < 10; i++ {
		e.Spawn("t", -1, func(th *Thread) {
			for k := 0; k < 30; k++ {
				for !th.CAS(lock, 0, 1) {
					th.SpinWhileEq(lock, 1)
				}
				inCS++
				if inCS != 1 {
					violations++
				}
				th.Delay(uint64(th.Rng().Intn(1000)))
				inCS--
				th.Store(lock, 0)
			}
		})
	}
	e.Run()
	if violations > 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
}

func TestOversubscribedMutualExclusion(t *testing.T) {
	// 4x oversubscription on a small box; preemption must not break the
	// engine or the lock protocol.
	e := newEngine(3)
	lock := e.Mem().AllocWord("lock")
	inCS := 0
	total := 0
	n := 4 * topology.Laptop().Cores()
	for i := 0; i < n; i++ {
		e.Spawn("t", -1, func(th *Thread) {
			for k := 0; k < 10; k++ {
				for !th.CAS(lock, 0, 1) {
					th.SpinWhileEq(lock, 1)
				}
				inCS++
				if inCS != 1 {
					t.Errorf("mutual exclusion violated")
				}
				th.Delay(500)
				inCS--
				th.Store(lock, 0)
				total++
			}
		})
	}
	e.Run()
	if total != n*10 {
		t.Errorf("total = %d, want %d", total, n*10)
	}
}

// Property test: for random mixes of delays, parks/unparks and shared
// counter updates, the engine always terminates with the correct counter
// value and monotone time.
func TestQuickRandomWorkloads(t *testing.T) {
	f := func(seed int64, nt uint8, work uint16) bool {
		n := int(nt)%6 + 2
		e := newEngine(seed)
		w := e.Mem().AllocWord("ctr")
		iters := int(work)%40 + 5
		for i := 0; i < n; i++ {
			e.Spawn("t", -1, func(th *Thread) {
				for k := 0; k < iters; k++ {
					for {
						v := th.Load(w)
						if th.CAS(w, v, v+1) {
							break
						}
					}
					th.Delay(uint64(th.Rng().Intn(300)))
					if th.Rng().Intn(4) == 0 {
						th.Yield()
					}
				}
			})
		}
		e.Run()
		return e.Mem().Peek(w) == uint64(n*iters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
