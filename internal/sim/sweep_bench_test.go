// External benchmarks: whole sweep points of the benchmark harness, timed
// in both engine modes. These are the numbers BENCH_sim.json records — the
// uncontended point is dominated by charge fast-path hits, the
// full-subscription point by handoffs and watch/wake traffic.
package sim_test

import (
	"testing"

	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
	"shfllock/internal/workloads"
)

func benchSweepPoint(b *testing.B, threads int, noFast bool) {
	var res workloads.Result
	for i := 0; i < b.N; i++ {
		res = workloads.HashTable(workloads.Params{
			Topo:       topology.Reference(),
			Threads:    threads,
			Seed:       1,
			Duration:   2_000_000,
			NoFastPath: noFast,
		}, simlocks.ShflLockNBMaker(), 10)
	}
	b.ReportMetric(res.OpsPerSec, "simops/s")
	b.ReportMetric(res.Engine.FastShare(), "fast%")
}

func BenchmarkSweepPointUncontended(b *testing.B) {
	b.Run("fast", func(b *testing.B) { benchSweepPoint(b, 1, false) })
	b.Run("slow", func(b *testing.B) { benchSweepPoint(b, 1, true) })
}

func BenchmarkSweepPointFullSubscription(b *testing.B) {
	b.Run("fast", func(b *testing.B) { benchSweepPoint(b, topology.Reference().Cores(), false) })
	b.Run("slow", func(b *testing.B) { benchSweepPoint(b, topology.Reference().Cores(), true) })
}
