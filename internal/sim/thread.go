package sim

import (
	"fmt"
	"math/rand"

	"shfllock/internal/memsim"
)

// tstate is a thread's scheduler state.
type tstate uint8

const (
	tsReady      tstate = iota // runnable, waiting on its core's run queue
	tsDispatched               // picked by the dispatcher, resume event pending
	tsRunning                  // holds the CPU (possibly sleeping inside charge)
	tsSpinWait                 // holds the CPU, blocked on a watched cache line
	tsParked                   // descheduled, waiting for Unpark
	tsWaking                   // unparked, wake latency elapsing
	tsDone
)

func (s tstate) String() string {
	switch s {
	case tsReady:
		return "ready"
	case tsDispatched:
		return "dispatched"
	case tsRunning:
		return "running"
	case tsSpinWait:
		return "spinwait"
	case tsParked:
		return "parked"
	case tsWaking:
		return "waking"
	case tsDone:
		return "done"
	}
	return "?"
}

// Thread is a simulated thread. All methods must be called from within the
// thread's own function; the engine guarantees only one thread executes at
// a time, so Thread methods may freely mutate engine state.
//
// Field order is a cache-line budget (pinned by TestThreadLayout): the
// fields every charge/handoff/watch step touches fill the first 64 bytes
// exactly, so the hot path reads one line per thread; the identity fields
// and the rng, touched only at spawn, rand draws and stats rendering, sit
// on the second line.
type Thread struct {
	// Hot line (64 bytes).
	eng         *Engine
	cpu         *cpu
	resume      chan struct{}
	quantumLeft int64
	// Spin-wait bookkeeping.
	spinStart   uint64
	spinQuantum int64
	watchLine   int32
	watchWord   Word
	// epoch invalidates queued events when the thread changes state; uint32
	// matches event.epoch and cannot wrap within a run (see event).
	epoch       uint32
	state       tstate
	needResched bool
	// Park/unpark permit (futex-style saturation to one token).
	permit bool

	// Cold fields.
	rng  *rand.Rand
	id   int
	name string
}

// ID returns the thread's index in spawn order.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Core returns the core the thread is pinned to.
func (t *Thread) Core() int { return t.cpu.id }

// Socket returns the NUMA socket of the thread's core.
func (t *Thread) Socket() int { return t.cpu.socket }

// Engine returns the owning engine.
func (t *Thread) Engine() *Engine { return t.eng }

// Now returns the current virtual time.
func (t *Thread) Now() uint64 { return t.eng.now }

// Rng returns the thread's private deterministic random source.
func (t *Thread) Rng() *rand.Rand { return t.rng }

// Stopped reports whether the engine's stop flag has been raised.
func (t *Thread) Stopped() bool { return t.eng.stopped }

// NeedResched reports whether the thread has exhausted its scheduling
// quantum — the simulator's analogue of the kernel's need_resched().
func (t *Thread) NeedResched() bool { return t.needResched || t.quantumLeft <= 0 }

// NrRunning returns the number of runnable tasks on the thread's core,
// including itself — the signal CST-style locks use to detect
// over-subscription.
func (t *Thread) NrRunning() int { return 1 + t.cpu.qlen() }

func (t *Thread) run(fn func(*Thread)) {
	<-t.resume
	fn(t)
	t.eng.threadDone(t)
	// Keep driving the event loop from this goroutine until control lands
	// on another thread (or the simulation finishes and Run is signalled).
	t.eng.schedule(nil)
}

// block gives up the CPU: the thread's own goroutine runs the event loop
// until control is handed to some thread. If that thread is someone else,
// wait here to be resumed; if it is the caller itself (its own resume or
// preempt event was next), just keep running.
func (t *Thread) block() {
	if t.eng.schedule(t) != t {
		<-t.resume
	}
}

func (t *Thread) checkRunning() {
	if t.eng.running != t {
		panic(fmt.Sprintf("sim: thread %d %q used while not running", t.id, t.name))
	}
}

// graceCycles is how long a thread may keep running after its quantum
// expires before it is forcibly descheduled. It models the kernel's
// preemption latency: need_resched is raised first, giving spinning code a
// chance to park or yield voluntarily at its next scheduling check.
const graceCycles = 30_000

// charge consumes CPU time, handling quantum expiry: needResched is raised
// at the quantum boundary, and if other threads wait on this core the
// thread is preempted round-robin once the grace window is exhausted.
//
// Fast path: when the event queue proves no other event can fire inside
// the step, the clock advances in place and the thread keeps the CPU — no
// event, no goroutine round trip through the engine. This is the engine's
// hottest edge (every simulated memory access lands here).
func (t *Thread) charge(cost uint64) {
	t.checkRunning()
	e := t.eng
	for cost > 0 {
		if t.quantumLeft <= 0 {
			t.needResched = true
			if t.cpu.qlen() == 0 {
				// Sole runnable task: keep the CPU with a fresh quantum,
				// but leave needResched raised so scheduling-aware locks
				// still observe the expiry.
				t.quantumLeft = int64(e.costs.Quantum)
			} else if t.quantumLeft <= -graceCycles {
				t.resched()
				continue
			}
		}
		avail := t.quantumLeft
		if avail <= 0 {
			avail = t.quantumLeft + graceCycles // remaining grace
		}
		step := cost
		if step > uint64(avail) {
			step = uint64(avail)
		}
		t.quantumLeft -= int64(step)
		if e.fastCovers(step) {
			e.paths.FastResumes++
			e.fastAdvance(step)
		} else {
			e.push(event{at: e.now + step, kind: evResume, t: t, epoch: t.epoch})
			t.block()
		}
		cost -= step
	}
}

// tryHandoff hands the CPU straight to the next thread on the caller's run
// queue, from the caller's own goroutine, when the queue-top invariant
// allows charging the context switch in place. The caller must already
// have descheduled itself (state set, epoch bumped, enqueued if it stays
// runnable). Returns the dispatched thread — which may be the caller
// itself, in which case control simply continues — or nil when the slow
// path must run.
func (t *Thread) tryHandoff() *Thread {
	e := t.eng
	c := t.cpu
	if c.qlen() == 0 || !e.fastCovers(e.costs.CtxSwitch) {
		return nil
	}
	e.paths.FastHandoffs++
	e.fastAdvance(e.costs.CtxSwitch)
	next := c.dispatchFast(e)
	// The epoch bump and state change transfer() would have applied when
	// the dispatch event fired.
	next.epoch++
	next.state = tsRunning
	e.running = next
	if next != t {
		// Wake the target directly, then wait for our own next dispatch —
		// no event pushed, no heap traffic.
		next.resume <- struct{}{}
		<-t.resume
	}
	return next
}

// resched puts the thread at the back of its core's run queue and blocks
// until it is dispatched again.
func (t *Thread) resched() {
	e := t.eng
	e.Preemptions++
	t.state = tsReady
	t.epoch++
	t.cpu.enqueue(t)
	e.CtxSwitches++
	if t.tryHandoff() != nil {
		return
	}
	t.cpu.dispatchNext(e)
	t.block()
}

// Delay consumes the given number of cycles of CPU time; it models
// computation (critical-section work, think time) that does not touch
// simulated shared memory.
func (t *Thread) Delay(cycles uint64) {
	if cycles > 0 {
		t.charge(cycles)
	}
}

// Yield voluntarily releases the CPU to the next runnable thread on this
// core (sched_yield). With an empty run queue it just refreshes the quantum.
func (t *Thread) Yield() {
	e := t.eng
	e.YieldCount++
	t.charge(e.costs.CtxSwitch)
	t.needResched = false
	if t.cpu.qlen() == 0 {
		t.quantumLeft = int64(e.costs.Quantum)
		return
	}
	t.resched()
}

// Park deschedules the thread until another thread calls Unpark on it.
// A pending permit (Unpark that arrived before Park) is consumed without
// blocking, so the pair is immune to lost wakeups.
func (t *Thread) Park() {
	e := t.eng
	e.ParkCount++
	if t.permit {
		t.permit = false
		return
	}
	t.charge(e.costs.ParkCost)
	if t.permit { // an Unpark arrived while we were descheduling
		t.permit = false
		return
	}
	t.state = tsParked
	t.epoch++
	t.needResched = false
	if inj := e.injector; inj != nil {
		if d := inj.SpuriousWakeDelay(t); d > 0 {
			e.push(event{at: e.now + d, kind: evTimerWake, t: t, epoch: t.epoch})
		}
	}
	e.CtxSwitches++
	if t.tryHandoff() == nil {
		t.cpu.dispatchNext(e)
		t.block()
	}
}

// ParkTimeout parks like Park but additionally wakes after at most the
// given number of cycles (futex wait with a timeout). The caller cannot
// distinguish a timeout from a wakeup — like Park, returns may be spurious
// and the surrounding loop must re-check its condition.
func (t *Thread) ParkTimeout(cycles uint64) {
	e := t.eng
	e.ParkCount++
	if t.permit {
		t.permit = false
		return
	}
	t.charge(e.costs.ParkCost)
	if t.permit { // an Unpark arrived while we were descheduling
		t.permit = false
		return
	}
	t.state = tsParked
	t.epoch++
	t.needResched = false
	e.push(event{at: e.now + cycles, kind: evTimerWake, t: t, epoch: t.epoch})
	if inj := e.injector; inj != nil {
		if d := inj.SpuriousWakeDelay(t); d > 0 && d < cycles {
			e.push(event{at: e.now + d, kind: evTimerWake, t: t, epoch: t.epoch})
		}
	}
	e.CtxSwitches++
	if t.tryHandoff() == nil {
		t.cpu.dispatchNext(e)
		t.block()
	}
}

// Unpark makes o runnable after the wakeup latency, or deposits a permit if
// o is not parked. The cost of issuing the wakeup is charged to the caller.
func (t *Thread) Unpark(o *Thread) {
	e := t.eng
	e.UnparkCount++
	t.charge(e.costs.WakeCost)
	if o.state == tsParked {
		o.state = tsWaking
		o.epoch++
		e.push(event{at: e.now + e.costs.WakeLatency, kind: evWake, t: o, epoch: o.epoch})
		return
	}
	o.permit = true
}

// --- Simulated memory operations -----------------------------------------

// Load performs an atomic 64-bit load.
func (t *Thread) Load(w Word) uint64 {
	t.charge(t.eng.mem.Access(t.eng.now, t.cpu.id, w, memsim.AccessLoad))
	return t.eng.mem.Get(w)
}

// Store performs an atomic 64-bit store.
func (t *Thread) Store(w Word, v uint64) {
	t.charge(t.eng.mem.Access(t.eng.now, t.cpu.id, w, memsim.AccessStore))
	t.eng.mem.Set(w, v)
	t.eng.mem.NotifyWrite(w)
}

// StorePartial stores val into the bits selected by mask, leaving the rest
// of the word untouched. It models a byte- or halfword-sized plain store
// (e.g. writing only the locked byte of a combined lock word) and is
// charged as a store, not an atomic RMW.
func (t *Thread) StorePartial(w Word, mask, val uint64) {
	t.charge(t.eng.mem.Access(t.eng.now, t.cpu.id, w, memsim.AccessStore))
	old := t.eng.mem.Get(w)
	t.eng.mem.Set(w, (old&^mask)|(val&mask))
	t.eng.mem.NotifyWrite(w)
}

// OnCPU reports whether the thread currently occupies its core — the
// simulator's analogue of the kernel's owner->on_cpu test used by
// optimistic-spinning mutexes.
func (t *Thread) OnCPU() bool { return t.cpu.cur == t }

// CAS performs an atomic compare-and-swap, returning whether it succeeded.
// Like real hardware, a failed CAS still pulls the cache line exclusive.
func (t *Thread) CAS(w Word, old, new uint64) bool {
	t.charge(t.eng.mem.Access(t.eng.now, t.cpu.id, w, memsim.AccessRMW))
	if t.eng.mem.Get(w) != old {
		return false
	}
	t.eng.mem.Set(w, new)
	t.eng.mem.NotifyWrite(w)
	return true
}

// Swap atomically exchanges the word's value, returning the previous value.
func (t *Thread) Swap(w Word, v uint64) uint64 {
	t.charge(t.eng.mem.Access(t.eng.now, t.cpu.id, w, memsim.AccessRMW))
	old := t.eng.mem.Get(w)
	t.eng.mem.Set(w, v)
	t.eng.mem.NotifyWrite(w)
	return old
}

// Add atomically adds delta (two's complement; pass ^uint64(0) for -1) and
// returns the new value.
func (t *Thread) Add(w Word, delta uint64) uint64 {
	t.charge(t.eng.mem.Access(t.eng.now, t.cpu.id, w, memsim.AccessRMW))
	v := t.eng.mem.Get(w) + delta
	t.eng.mem.Set(w, v)
	t.eng.mem.NotifyWrite(w)
	return v
}

// FetchOr atomically ORs bits into the word, returning the previous value.
func (t *Thread) FetchOr(w Word, bits uint64) uint64 {
	t.charge(t.eng.mem.Access(t.eng.now, t.cpu.id, w, memsim.AccessRMW))
	old := t.eng.mem.Get(w)
	t.eng.mem.Set(w, old|bits)
	t.eng.mem.NotifyWrite(w)
	return old
}

// FetchAnd atomically ANDs the word with mask, returning the previous value.
func (t *Thread) FetchAnd(w Word, mask uint64) uint64 {
	t.charge(t.eng.mem.Access(t.eng.now, t.cpu.id, w, memsim.AccessRMW))
	old := t.eng.mem.Get(w)
	t.eng.mem.Set(w, old&mask)
	t.eng.mem.NotifyWrite(w)
	return old
}

// --- Spin-wait primitives --------------------------------------------------

// WatchWait blocks the thread — still occupying its CPU, exactly like a
// busy-wait loop — until the cache line holding w is written by another
// core, or until the thread is preempted because its quantum expired while
// other threads were waiting on the core. Callers must re-check their
// condition after WatchWait returns (wakeups can be spurious).
//
// seen is the value of w the caller last observed; if the word changed
// while the caller was being charged for earlier operations, WatchWait
// returns immediately instead of sleeping through the missed notification.
func (t *Thread) WatchWait(w Word, seen uint64) {
	t.checkRunning()
	e := t.eng
	if e.mem.Peek(w) != seen {
		return // the word changed between the caller's load and now
	}
	if t.NeedResched() && t.cpu.qlen() > 0 {
		t.resched()
		return
	}
	line := e.mem.LineOf(w)
	e.mem.Watch(w)
	t.watchLine = line
	t.watchWord = w
	e.addWatcher(line, t)
	t.state = tsSpinWait
	t.epoch++
	t.spinStart = e.now
	t.spinQuantum = t.quantumLeft
	if t.cpu.qlen() > 0 {
		e.schedulePreempt(t)
	}
	t.block()
}

// detachWatch drops the thread's registration on its watched line. Called
// by the engine when the thread leaves the spin-wait state.
func (t *Thread) detachWatch() {
	if t.watchLine >= 0 {
		t.eng.mem.Unwatch(t.watchWord)
		t.watchLine = -1
	}
}

// SpinUntil busy-waits until pred holds for the value of w, charging spin
// time against the scheduling quantum, and returns the satisfying value.
func (t *Thread) SpinUntil(w Word, pred func(uint64) bool) uint64 {
	for {
		v := t.Load(w)
		if pred(v) {
			return v
		}
		t.WatchWait(w, v)
	}
}

// SpinWhileEq busy-waits while the word equals v, returning the first
// different value.
func (t *Thread) SpinWhileEq(w Word, v uint64) uint64 {
	return t.SpinUntil(w, func(x uint64) bool { return x != v })
}
