package sim

import (
	"math"
	"math/bits"

	"shfllock/internal/alloc/arena"
)

// noEvent is the cached-minimum sentinel for an empty event queue; any
// real event time compares below it.
const noEvent = math.MaxUint64

// The timer wheel exploits the engine's event distribution: almost every
// event fires within a few thousand cycles of being pushed (memory-access
// resumes land within ~130 cycles, spin rechecks at +8, context switches
// at +4000, wakeups at +6000), while only quantum-scale preemptions and
// the stop event look far ahead. A single cycle-granular level sized to
// cover the dense horizon makes push and pop O(1); the sparse tail
// overflows to a small (at, seq) min-heap spill that is migrated into the
// wheel as virtual time approaches.
const (
	wheelBits  = 10
	wheelSlots = 1 << wheelBits // 1024-cycle dense horizon
	wheelMask  = wheelSlots - 1
)

// wslot is one wheel slot: a FIFO of events sharing a single `at` value.
// Within one window rotation a slot is owned by exactly one `at`
// (at & wheelMask is injective over [base, base+wheelSlots)), and pushes
// into a slot arrive in seq order, so append/advance-head preserves the
// heap's exact (at, seq) pop order without storing or comparing seq.
type wslot struct {
	evs  []event
	head int32
}

// timerWheel is a hierarchical (dense level + sorted spill level) timer
// queue with the exact pop order of the reference eventHeap. Invariants:
//
//   - every queued event has at >= the last popped/advanced time;
//   - wheel slots hold only events with at in [base, base+wheelSlots);
//   - spill holds only events with at >= base+wheelSlots, so the wheel
//     minimum is always strictly below the spill minimum;
//   - minAt is the exact minimum (at) over both levels, or math.MaxUint64
//     when the queue is empty — fastCovers is a single compare against it.
type timerWheel struct {
	base  uint64 // window start; only ever advances
	minAt uint64 // exact min at across wheel+spill; MaxUint64 when empty

	inWheel int // events currently stored in slots
	slots   []wslot
	occ     []uint64 // occupancy bitmap over slots

	spill eventHeap // far events, min-heap by (at, seq)
}

// wheelScratch pools the slot and bitmap backing arrays across engines:
// the arrays are sized by constants, engines are created per sweep point,
// and a finished engine's wheel is empty, so reuse is a pure allocation
// saving (recycle() re-checks emptiness before returning them).
var wheelScratch = arena.New[wheelBacking](nil)

type wheelBacking struct {
	slots []wslot
	occ   []uint64
}

func (w *timerWheel) init() {
	b := wheelScratch.Get()
	if b.slots == nil {
		b.slots = make([]wslot, wheelSlots)
		b.occ = make([]uint64, wheelSlots/64)
	}
	w.slots = b.slots
	w.occ = b.occ
	w.minAt = noEvent
}

// recycle hands the backing arrays back to the pool once the simulation is
// over. Runs usually finish with a few stale events still queued (preempts
// and rechecks for threads that since exited), so leftover slots are
// cleared — and their event values zeroed, so the pooled arrays don't pin
// finished *Threads — before the arrays are reused by another engine.
func (w *timerWheel) recycle() {
	if w.slots == nil {
		return
	}
	if w.inWheel > 0 {
		for wi, word := range w.occ {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << b
				s := &w.slots[wi*64+b]
				for j := int(s.head); j < len(s.evs); j++ {
					s.evs[j] = event{}
				}
				s.evs = s.evs[:0]
				s.head = 0
			}
			w.occ[wi] = 0
		}
		w.inWheel = 0
	}
	w.spill = nil
	wheelScratch.Put(&wheelBacking{slots: w.slots, occ: w.occ})
	w.slots = nil
	w.occ = nil
}

func (w *timerWheel) size() int { return w.inWheel + len(w.spill) }

// advance slides the window start up to now and migrates spill events
// that entered the dense horizon. Sliding never touches the slots: every
// stored event has at >= now (events fire in order and pushes are never
// in the past), so the occupied slots all remain inside the new window.
// Migration must happen on every advance — before any direct push could
// land in the newly covered range — so that same-at events keep global
// seq order: spilled events always carry smaller seqs than any later
// direct push to the same at.
func (w *timerWheel) advance(now uint64) {
	if now <= w.base {
		return
	}
	w.base = now
	for len(w.spill) > 0 && w.spill[0].at < w.base+wheelSlots {
		w.slotPush(w.spill.pop())
	}
}

func (w *timerWheel) slotPush(ev event) {
	idx := ev.at & wheelMask
	s := &w.slots[idx]
	s.evs = append(s.evs, ev)
	w.occ[idx>>6] |= 1 << (idx & 63)
	w.inWheel++
	if ev.at < w.minAt {
		w.minAt = ev.at
	}
}

func (w *timerWheel) push(ev event, now uint64) {
	w.advance(now)
	if ev.at < w.base+wheelSlots {
		w.slotPush(ev)
		return
	}
	w.spill.push(ev)
	if ev.at < w.minAt {
		w.minAt = ev.at
	}
}

// pop removes and returns the (at, seq)-minimum event. The queue must be
// non-empty.
func (w *timerWheel) pop(now uint64) event {
	w.advance(now)
	if w.inWheel == 0 {
		// Only far events remain: take the spill head directly.
		ev := w.spill.pop()
		if len(w.spill) > 0 {
			w.minAt = w.spill[0].at
		} else {
			w.minAt = noEvent
		}
		return ev
	}
	idx := w.minAt & wheelMask
	s := &w.slots[idx]
	ev := s.evs[s.head]
	// Zero the vacated slot: the backing array is pooled across engines,
	// and a stale copy would pin its *Thread live.
	s.evs[s.head] = event{}
	s.head++
	w.inWheel--
	if int(s.head) == len(s.evs) {
		s.evs = s.evs[:0]
		s.head = 0
		w.occ[idx>>6] &^= 1 << (idx & 63)
		w.rescanMin()
	}
	return ev
}

// rescanMin recomputes minAt after the minimum slot drained: the next
// occupied slot in window order (distance from base), or the spill head,
// or empty. The bitmap scan starts just past the drained slot and walks
// word-wise; with the engine's dense event streams it terminates within a
// word or two.
func (w *timerWheel) rescanMin() {
	if w.inWheel == 0 {
		if len(w.spill) > 0 {
			w.minAt = w.spill[0].at
		} else {
			w.minAt = noEvent
		}
		return
	}
	// Remaining wheel events all have at > minAt (the minAt slot drained)
	// and at < base+wheelSlots, so scan at most the rest of the window.
	d := w.minAt - w.base // distance of the drained slot from the window start
	i := (w.minAt + 1) & wheelMask
	remaining := uint64(wheelSlots) - d - 1
	for remaining > 0 {
		word := w.occ[i>>6] >> (i & 63)
		span := uint64(64 - i&63)
		if span > remaining {
			span = remaining
			if bits.TrailingZeros64(word) >= int(span) {
				word = 0
			}
		}
		if word != 0 {
			idx := i + uint64(bits.TrailingZeros64(word))
			w.minAt = w.base + ((idx - (w.base & wheelMask)) & wheelMask)
			return
		}
		i = (i + span) & wheelMask
		remaining -= span
	}
	panic("sim: timer wheel lost an event (inWheel > 0 but no occupied slot)")
}

// all appends every queued event to dst (arbitrary order) for diagnostics.
func (w *timerWheel) all(dst []event) []event {
	if w.slots != nil {
		for i := range w.slots {
			s := &w.slots[i]
			dst = append(dst, s.evs[s.head:]...)
		}
	}
	return append(dst, w.spill...)
}
