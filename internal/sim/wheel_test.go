package sim

import (
	"math/rand"
	"testing"
)

// randomDelta draws a push distance biased toward the engine's real event
// mix — dense near-term resumes, quantum-scale wakeups — plus the two cases
// that stress the wheel specifically: deltas straddling the dense horizon
// and far-future spills that must migrate back in.
func randomDelta(rng *rand.Rand) uint64 {
	switch rng.Intn(10) {
	case 0, 1, 2, 3, 4: // memory-access resumes, spin rechecks
		return uint64(rng.Intn(300))
	case 5, 6: // context switches, wakeups
		return uint64(4000 + rng.Intn(2000))
	case 7, 8: // straddle the wheel horizon
		return uint64(wheelSlots - 50 + rng.Intn(100))
	default: // far spill (quantum expiries, stop events)
		return uint64(1 << 20 * (1 + rng.Intn(4)))
	}
}

// TestWheelMatchesHeapRandomized differentially tests the timer wheel
// against the reference binary heap: mirrored random push/pop streams must
// produce identical events in identical order, with the wheel's cached
// minimum agreeing with the heap top after every step. Bursts push several
// events with the same `at` and increasing seq, exercising the slot-FIFO
// tie-breaking that the wheel relies on instead of storing seq. Trials
// reuse recycled wheel backing, covering the arena pooling path.
func TestWheelMatchesHeapRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for trial := 0; trial < 20; trial++ {
		var w timerWheel
		w.init()
		var h eventHeap
		var now, seq uint64

		heapMin := func() uint64 {
			if len(h) == 0 {
				return noEvent
			}
			return h[0].at
		}
		check := func(step int) {
			if w.minAt != heapMin() {
				t.Fatalf("trial %d step %d: wheel minAt=%d heap min=%d", trial, step, w.minAt, heapMin())
			}
			if w.size() != len(h) {
				t.Fatalf("trial %d step %d: wheel size=%d heap size=%d", trial, step, w.size(), len(h))
			}
		}
		popOne := func(step int) {
			got := w.pop(now)
			want := h.pop()
			if got != want {
				t.Fatalf("trial %d step %d: wheel popped %+v, heap popped %+v", trial, step, got, want)
			}
			if got.at < now {
				t.Fatalf("trial %d step %d: pop went backwards (%d < %d)", trial, step, got.at, now)
			}
			now = got.at
		}

		steps := 2000 + rng.Intn(2000)
		for i := 0; i < steps; i++ {
			if w.size() == 0 || rng.Intn(3) != 0 {
				at := now + randomDelta(rng)
				burst := 1 + rng.Intn(3)
				for b := 0; b < burst; b++ {
					ev := event{
						at:    at,
						seq:   seq,
						epoch: uint32(seq),
						kind:  eventKind(seq % 5),
					}
					seq++
					w.push(ev, now)
					h.push(ev)
				}
			} else {
				popOne(i)
			}
			check(i)
		}
		for w.size() > 0 {
			popOne(-1)
			check(-1)
		}
		w.recycle()
	}
}
