package simlocks

import (
	"testing"

	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

// TestAllLocksMutualExclusion exercises every registered mutex at moderate
// contention on both machines, verifying mutual exclusion and completion.
func TestAllLocksMutualExclusion(t *testing.T) {
	for _, mk := range AllMutexMakers() {
		mk := mk
		t.Run(mk.Name, func(t *testing.T) {
			runContention(t, mk, topology.Laptop(), 8, 40)
			runContention(t, mk, topology.Reference(), 48, 12)
		})
	}
}

// TestAllLocksOversubscribed runs every mutex with 3x more threads than
// cores so preemption and parking paths are exercised.
func TestAllLocksOversubscribed(t *testing.T) {
	topo := topology.Laptop()
	for _, mk := range AllMutexMakers() {
		mk := mk
		t.Run(mk.Name, func(t *testing.T) {
			e := sim.NewEngine(sim.Config{Topo: topo, Seed: 9, HardStop: 8_000_000_000_000})
			l := mk.New(e, "lock")
			inCS := 0
			total := 0
			n := 3 * topo.Cores()
			for i := 0; i < n; i++ {
				e.Spawn("w", -1, func(th *sim.Thread) {
					th.Delay(uint64(th.Rng().Intn(100_000)))
					for k := 0; k < 60; k++ {
						l.Lock(th)
						inCS++
						if inCS != 1 {
							t.Errorf("%s: mutual exclusion violated", mk.Name)
						}
						th.Delay(uint64(500 + th.Rng().Intn(1000)))
						inCS--
						l.Unlock(th)
						th.Delay(uint64(th.Rng().Intn(500)))
					}
				})
			}
			e.Run()
			if total = 0; total != 0 {
				_ = total
			}
		})
	}
}

// TestAllLocksSingleThread checks the uncontended path of every mutex.
func TestAllLocksSingleThread(t *testing.T) {
	for _, mk := range AllMutexMakers() {
		mk := mk
		t.Run(mk.Name, func(t *testing.T) {
			e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 1_000_000_000})
			l := mk.New(e, "lock")
			e.Spawn("solo", 0, func(th *sim.Thread) {
				for k := 0; k < 100; k++ {
					l.Lock(th)
					th.Delay(50)
					l.Unlock(th)
				}
			})
			e.Run()
			if st := StatsOf(l); st != nil && st.Acquires != 100 {
				t.Errorf("acquires = %d, want 100", st.Acquires)
			}
		})
	}
}

// TestAllTryLocks verifies TryLock semantics for every mutex: succeeds on a
// free lock, fails on a held lock, and pairs with Unlock.
func TestAllTryLocks(t *testing.T) {
	for _, mk := range AllMutexMakers() {
		mk := mk
		t.Run(mk.Name, func(t *testing.T) {
			e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 1_000_000_000})
			l := mk.New(e, "lock")
			e.Spawn("a", 0, func(th *sim.Thread) {
				if !l.TryLock(th) {
					t.Errorf("%s: TryLock on free lock failed", mk.Name)
				}
				th.Delay(100_000)
				l.Unlock(th)
			})
			e.Spawn("b", 1, func(th *sim.Thread) {
				th.Delay(20_000)
				if l.TryLock(th) {
					t.Errorf("%s: TryLock on held lock succeeded", mk.Name)
				}
				th.Delay(200_000)
				if !l.TryLock(th) {
					t.Errorf("%s: TryLock on released lock failed", mk.Name)
				}
				l.Unlock(th)
			})
			e.Run()
		})
	}
}

// runRWWorkload drives an RW lock with a mixed reader/writer population
// and validates the RW invariants: readers never overlap a writer, at most
// one writer at a time.
func runRWWorkload(t *testing.T, mk RWMaker, topo topology.Machine, nthreads, ops, writePct int) {
	t.Helper()
	e := sim.NewEngine(sim.Config{Topo: topo, Seed: 3, HardStop: 8_000_000_000_000})
	l := mk.New(e, "rwlock")
	readers, writers := 0, 0
	maxReaders := 0
	for i := 0; i < nthreads; i++ {
		e.Spawn("w", -1, func(th *sim.Thread) {
			th.Delay(uint64(th.Rng().Intn(50_000)))
			for k := 0; k < ops; k++ {
				if th.Rng().Intn(100) < writePct {
					l.Lock(th)
					writers++
					if writers != 1 || readers != 0 {
						t.Errorf("%s: writer overlap (w=%d r=%d)", mk.Name, writers, readers)
					}
					th.Delay(400)
					writers--
					l.Unlock(th)
				} else {
					l.RLock(th)
					readers++
					if writers != 0 {
						t.Errorf("%s: reader overlaps writer", mk.Name)
					}
					if readers > maxReaders {
						maxReaders = readers
					}
					th.Delay(300)
					readers--
					l.RUnlock(th)
				}
				th.Delay(uint64(th.Rng().Intn(300)))
			}
		})
	}
	e.Run()
	if nthreads >= 8 && writePct <= 20 && maxReaders < 2 {
		t.Errorf("%s: readers never overlapped (maxReaders=%d)", mk.Name, maxReaders)
	}
}

// TestAllRWLocks exercises every RW lock at several write ratios.
func TestAllRWLocks(t *testing.T) {
	for _, mk := range AllRWMakers() {
		mk := mk
		t.Run(mk.Name, func(t *testing.T) {
			runRWWorkload(t, mk, topology.Laptop(), 8, 40, 10)
			runRWWorkload(t, mk, topology.Laptop(), 8, 30, 50)
			runRWWorkload(t, mk, topology.Reference(), 32, 10, 1)
		})
	}
}

// TestRWLocksOversubscribed exercises parking paths of the blocking RW
// locks.
func TestRWLocksOversubscribed(t *testing.T) {
	topo := topology.Laptop()
	for _, mk := range AllRWMakers() {
		mk := mk
		t.Run(mk.Name, func(t *testing.T) {
			runRWWorkload(t, mk, topo, 3*topo.Cores(), 25, 20)
		})
	}
}
