package simlocks

import "shfllock/internal/sim"

// bravoSlots is the size of the visible-readers table. Real BRAVO uses a
// process-global 4K-entry table; the simulator gives each wrapped lock its
// own table (accounted in the footprint) with the same hashing behaviour.
const bravoSlots = 64

// bravoInhibit is how long read bias stays disabled after a revocation,
// in cycles (BRAVO uses a multiple of the measured revocation cost).
const bravoInhibit = 1_000_000

// Bravo wraps any readers-writer lock with BRAVO's biased-reader fast path
// (Dice & Kogan, ATC'19): while reads are biased, a reader only plants a
// flag in a hashed slot of a visible-readers table (usually an uncontended
// line) instead of bouncing the shared reader indicator. A writer revokes
// the bias by scanning the whole table and waiting for planted readers to
// leave.
type Bravo struct {
	name     string
	under    RWLock
	rbias    sim.Word
	slots    []sim.Word
	inhibit  uint64 // virtual time before which rbias stays off
	usedSlot map[int]sim.Word
	cnt      Counters
}

// NewBravo wraps under with a BRAVO reader-bias layer.
func NewBravo(e *sim.Engine, tag string, under RWLock) *Bravo {
	b := &Bravo{
		name:     under.Name() + "+bravo",
		under:    under,
		rbias:    e.Mem().AllocWord(tag + "/rbias"),
		slots:    e.Mem().AllocPadded(tag+"/slots", bravoSlots),
		usedSlot: make(map[int]sim.Word),
	}
	e.Mem().Poke(b.rbias, 1)
	return b
}

func (l *Bravo) Name() string { return l.name }

// Stats returns the wrapper's counters.
func (l *Bravo) Stats() *Counters { return &l.cnt }

func (l *Bravo) slot(t *sim.Thread) sim.Word {
	return l.slots[(t.ID()*31)%bravoSlots]
}

// RLock tries the biased fast path, falling back to the underlying lock.
func (l *Bravo) RLock(t *sim.Thread) {
	if t.Load(l.rbias) == 1 {
		s := l.slot(t)
		if t.CAS(s, 0, uint64(t.ID())+1) {
			if t.Load(l.rbias) == 1 {
				l.usedSlot[t.ID()] = s
				return // fast biased read
			}
			t.Store(s, 0) // bias revoked mid-flight: undo
		}
	}
	l.under.RLock(t)
	// Consider re-enabling bias after the inhibition window.
	if t.Now() > l.inhibit && t.Load(l.rbias) == 0 {
		t.CAS(l.rbias, 0, 1)
	}
}

// RUnlock clears the slot for biased readers, else unlocks the underlying
// lock.
func (l *Bravo) RUnlock(t *sim.Thread) {
	if s, ok := l.usedSlot[t.ID()]; ok {
		delete(l.usedSlot, t.ID())
		t.Store(s, 0)
		return
	}
	l.under.RUnlock(t)
}

// Lock acquires the underlying writer lock and revokes read bias, scanning
// the visible-readers table — the cost writers pay for cheap reads.
func (l *Bravo) Lock(t *sim.Thread) {
	l.under.Lock(t)
	if t.Load(l.rbias) == 1 {
		t.Store(l.rbias, 0)
		for _, s := range l.slots {
			for {
				v := t.Load(s)
				if v == 0 {
					break
				}
				t.WatchWait(s, v)
			}
		}
		l.inhibit = t.Now() + bravoInhibit
	}
	l.cnt.Acquires++
}

// Unlock releases the underlying writer lock.
func (l *Bravo) Unlock(t *sim.Thread) {
	l.under.Unlock(t)
}

// BravoMaker wraps an RWMaker with BRAVO.
func BravoMaker(inner RWMaker) RWMaker {
	return RWMaker{
		Name: inner.Name + "+bravo",
		Kind: inner.Kind,
		New: func(e *sim.Engine, tag string) RWLock {
			return NewBravo(e, tag+"/bravo", inner.New(e, tag))
		},
		Footprint: func(sockets int) Footprint {
			f := inner.Footprint(sockets)
			f.PerLock += bravoSlots*128 + 8
			return f
		},
	}
}
