package simlocks

import "shfllock/internal/sim"

// CNA queue-node fields (extends the MCS node).
const (
	cnaStatus = iota // grant word; encodes the secondary-queue head
	cnaNext
	cnaSocket
	cnaSecHead // holder's record of the secondary queue head
	cnaSecTail // valid on the secondary head's node: the secondary tail
	cnaWords
)

// CNA is the Compact NUMA-Aware lock (Dice & Kogan, EuroSys'19): an MCS
// lock in which the *lock holder*, at release time, scans the main queue
// for a waiter on its own socket, moving skipped remote waiters onto a
// secondary queue. Periodically the secondary queue is flushed back for
// long-term fairness.
//
// The contrast with ShflLock is intentional and visible in the simulator:
// the queue scan happens on the critical path (the holder walks remote
// nodes' cache lines while everyone waits), and the holder must retain its
// queue node across the critical section.
type CNA struct {
	tail     sim.Word
	nodes    *nodeTable
	handoffs int // deterministic fairness flush counter
	cnt      Counters
}

// cnaFlushPeriod forces a secondary-queue flush every N handoffs,
// mirroring CNA's low-probability flush for long-term fairness.
const cnaFlushPeriod = 256

// cnaGrant encodes a lock grant carrying the secondary-queue head.
func cnaGrant(secHead uint64) uint64 { return secHead<<16 | 1 }

// NewCNA creates a CNA lock.
func NewCNA(e *sim.Engine, tag string) *CNA {
	l := &CNA{tail: e.Mem().AllocWord(tag)}
	l.nodes = newNodeTable(e, tag, cnaWords, &l.cnt)
	return l
}

// NewCNAHeap creates a CNA lock with heap-accounted queue nodes
// (userspace deployment, Figure 13).
func NewCNAHeap(e *sim.Engine, tag string) *CNA {
	l := NewCNA(e, tag)
	l.nodes.heap = true
	return l
}

func (l *CNA) Name() string { return "cna" }

// Lock enqueues like MCS; a granted waiter inherits the secondary queue
// from its predecessor through the grant word.
func (l *CNA) Lock(t *sim.Thread) {
	n := l.nodes.get(t)
	t.Store(n[cnaStatus], 0)
	t.Store(n[cnaNext], 0)
	t.Store(n[cnaSocket], uint64(t.Socket()))
	t.Store(n[cnaSecHead], 0)
	prev := t.Swap(l.tail, handle(t))
	if prev != 0 {
		pn := l.nodes.get(threadOf(t.Engine(), prev))
		t.Store(pn[cnaNext], handle(t))
		v := t.SpinUntil(n[cnaStatus], func(x uint64) bool { return x != 0 })
		t.Store(n[cnaSecHead], v>>16)
	}
	l.cnt.Acquires++
}

// Unlock finds a same-socket successor (off-loading skipped waiters to the
// secondary queue) and hands the lock over; every cnaFlushPeriod handoffs
// the secondary queue is flushed to preserve long-term fairness.
func (l *CNA) Unlock(t *sim.Thread) {
	e := t.Engine()
	n := l.nodes.get(t)
	secHead := t.Load(n[cnaSecHead])
	next := t.Load(n[cnaNext])
	if next == 0 {
		if secHead != 0 {
			// Main queue looks empty: promote the secondary queue.
			secTail := t.Load(l.nodes.get(threadOf(e, secHead))[cnaSecTail])
			if t.CAS(l.tail, handle(t), secTail) {
				t.Store(l.nodes.get(threadOf(e, secHead))[cnaStatus], cnaGrant(0))
				return
			}
			next = t.SpinUntil(n[cnaNext], func(x uint64) bool { return x != 0 })
		} else {
			if t.CAS(l.tail, handle(t), 0) {
				return
			}
			next = t.SpinUntil(n[cnaNext], func(x uint64) bool { return x != 0 })
		}
	}

	l.handoffs++
	if l.handoffs%cnaFlushPeriod == 0 && secHead != 0 {
		l.flush(t, secHead, next)
		return
	}

	// Scan the main queue for a waiter on our socket. This walk is the
	// cost CNA pays on the critical path.
	mySkt := uint64(t.Socket())
	prevH := uint64(0)
	cur := next
	for cur != 0 {
		cn := l.nodes.get(threadOf(e, cur))
		if t.Load(cn[cnaSocket]) == mySkt {
			break
		}
		if cur == t.Load(l.tail) {
			cur = 0 // reached the tail without a local waiter
			break
		}
		nxt := t.Load(cn[cnaNext])
		if nxt == 0 {
			cur = 0 // successor still enqueueing; give up the scan
			break
		}
		prevH = cur
		cur = nxt
	}

	switch {
	case cur == next:
		// Immediate successor is local: pass lock and secondary as-is.
		t.Store(l.nodes.get(threadOf(e, next))[cnaStatus], cnaGrant(secHead))
	case cur != 0:
		// Detach [next..prevH] onto the secondary queue, grant cur.
		pn := l.nodes.get(threadOf(e, prevH))
		t.Store(pn[cnaNext], 0)
		if secHead == 0 {
			secHead = next
			t.Store(l.nodes.get(threadOf(e, next))[cnaSecTail], prevH)
		} else {
			sh := l.nodes.get(threadOf(e, secHead))
			oldTail := t.Load(sh[cnaSecTail])
			t.Store(l.nodes.get(threadOf(e, oldTail))[cnaNext], next)
			t.Store(sh[cnaSecTail], prevH)
		}
		l.cnt.ShuffleMoves++
		t.Store(l.nodes.get(threadOf(e, cur))[cnaStatus], cnaGrant(secHead))
	default:
		// No local waiter: flush the secondary queue if any, else pass on.
		if secHead != 0 {
			l.flush(t, secHead, next)
		} else {
			t.Store(l.nodes.get(threadOf(e, next))[cnaStatus], cnaGrant(0))
		}
	}
}

// flush links the main queue after the secondary queue and grants the
// secondary head.
func (l *CNA) flush(t *sim.Thread, secHead, next uint64) {
	e := t.Engine()
	sh := l.nodes.get(threadOf(e, secHead))
	secTail := t.Load(sh[cnaSecTail])
	t.Store(l.nodes.get(threadOf(e, secTail))[cnaNext], next)
	t.Store(sh[cnaStatus], cnaGrant(0))
}

// TryLock succeeds only on an empty queue.
func (l *CNA) TryLock(t *sim.Thread) bool {
	n := l.nodes.get(t)
	t.Store(n[cnaStatus], 0)
	t.Store(n[cnaNext], 0)
	t.Store(n[cnaSocket], uint64(t.Socket()))
	t.Store(n[cnaSecHead], 0)
	if t.Load(l.tail) == 0 && t.CAS(l.tail, 0, handle(t)) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *CNA) Stats() *Counters { return &l.cnt }

// CNAMaker registers the CNA lock.
func CNAMaker() Maker {
	return Maker{
		Name: "cna",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewCNA(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 8, PerWaiter: 28, PerHolder: 28}
		},
	}
}

// CNAHeapMaker registers the userspace CNA variant with heap queue nodes.
func CNAHeapMaker() Maker {
	m := CNAMaker()
	m.New = func(e *sim.Engine, tag string) Lock { return NewCNAHeap(e, tag) }
	m.Footprint = func(int) Footprint {
		return Footprint{PerLock: 8, PerWaiter: 28, PerHolder: 28, HeapNodes: true}
	}
	return m
}
