package simlocks

import "shfllock/internal/sim"

// cohortBatch bounds consecutive intra-socket handoffs before the global
// lock must be released, for long-term fairness.
const cohortBatch = 64

// Cohort implements lock cohorting (Dice, Marathe & Shavit, PPoPP'12) with
// ticket locks at both levels (C-TKT-TKT): a global ticket lock plus one
// ticket lock per socket, all statically allocated. A socket that owns the
// global lock passes ownership among its local waiters up to cohortBatch
// times, so the lock and critical-section data stay on one socket.
//
// The price is exactly what Table 1 records: on an 8-socket machine the
// static structure is ~1,152 bytes per lock instance (8 padded per-socket
// lines plus the global line), which is what bloats inodes in Figure 1.
type Cohort struct {
	global sim.Word // global ticket lock (padded line)
	// Per socket, one padded line holding [ticket, ownedFlag, batch].
	local [][]sim.Word
	cnt   Counters
}

// NewCohort creates a cohort lock for the engine's machine.
func NewCohort(e *sim.Engine, tag string) *Cohort {
	l := &Cohort{global: e.Mem().AllocWord(tag + "/global")}
	socks := e.Topology().Sockets
	l.local = make([][]sim.Word, socks)
	for s := range l.local {
		l.local[s] = e.Mem().Alloc(tag+"/socket", 3)
	}
	return l
}

func (l *Cohort) Name() string { return "cohort" }

const (
	cohTicket = 0
	cohOwned  = 1
	cohBatch  = 2
)

func ticketAcquire(t *sim.Thread, w sim.Word) {
	v := t.Add(w, ticketInc)
	my := (v >> 32) - 1
	if v&0xffffffff == my {
		return
	}
	t.SpinUntil(w, func(x uint64) bool { return x&0xffffffff == my })
}

// ticketHasWaiters reports whether anyone queues behind the current holder.
func ticketHasWaiters(t *sim.Thread, w sim.Word) bool {
	v := t.Load(w)
	return v>>32 > v&0xffffffff+1
}

// Lock takes the socket-local ticket lock, then the global lock unless the
// socket already owns it.
func (l *Cohort) Lock(t *sim.Thread) {
	loc := l.local[t.Socket()]
	ticketAcquire(t, loc[cohTicket])
	if t.Load(loc[cohOwned]) == 1 {
		l.cnt.Acquires++
		return // global lock inherited from the previous local holder
	}
	ticketAcquire(t, l.global)
	t.Store(loc[cohOwned], 1)
	l.cnt.Acquires++
}

// Unlock passes within the socket while local waiters exist and the batch
// quota holds; otherwise it releases the global then the local lock.
func (l *Cohort) Unlock(t *sim.Thread) {
	loc := l.local[t.Socket()]
	if ticketHasWaiters(t, loc[cohTicket]) {
		b := t.Load(loc[cohBatch])
		if b < cohortBatch {
			t.Store(loc[cohBatch], b+1)
			t.Add(loc[cohTicket], 1) // local handoff; global stays ours
			return
		}
	}
	// Give up the global lock; the next local holder must re-acquire it.
	t.Store(loc[cohBatch], 0)
	t.Store(loc[cohOwned], 0)
	t.Add(l.global, 1)
	t.Add(loc[cohTicket], 1)
}

// TryLock succeeds only when both levels are immediately available. After
// winning the local ticket the global acquisition may briefly wait, as in
// real cohort trylocks built from ticket locks.
func (l *Cohort) TryLock(t *sim.Thread) bool {
	loc := l.local[t.Socket()]
	v := t.Load(loc[cohTicket])
	if v>>32 != v&0xffffffff {
		l.cnt.TryFail++
		return false
	}
	if !t.CAS(loc[cohTicket], v, v+ticketInc) {
		l.cnt.TryFail++
		return false
	}
	if t.Load(loc[cohOwned]) != 1 {
		ticketAcquire(t, l.global)
		t.Store(loc[cohOwned], 1)
	}
	l.cnt.TrySuccess++
	l.cnt.Acquires++
	return true
}

// Stats returns the lock's counters.
func (l *Cohort) Stats() *Counters { return &l.cnt }

// CohortMaker registers the cohort lock.
func CohortMaker() Maker {
	return Maker{
		Name: "cohort",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewCohort(e, tag) },
		Footprint: func(sockets int) Footprint {
			return Footprint{PerLock: 128*sockets + 128, PerWaiter: 24, PerHolder: 24}
		},
	}
}
