package simlocks

import (
	"shfllock/internal/alloc"
	"shfllock/internal/sim"
)

// CST status values: the HMCS grant scheme plus a parked marker.
const (
	cstWait      = 0
	cstAcqGlobal = 1
	cstFirst     = 2
	cstParked    = 1 << 32
	cstNext      = 1 << 33 // pre-woken: the lock is near, keep spinning
	cstThreshold = 64
)

// cstSnodeBytes is the dynamically allocated per-socket structure size
// (queue node for the global lock, local tail, parking list head).
const cstSnodeBytes = 128

// CST is the NUMA-aware blocking lock of Kashyap et al. (ATC'17):
// hierarchical like HMCS, but blocking (waiters park under
// over-subscription) and with per-socket structures allocated *dynamically*
// the first time a socket touches the lock. That laziness keeps untouched
// sockets free, but for short-lived locks (such as inodes created in a
// burst) the allocation lands on the lock's critical path — the collapse
// Figure 9(a) shows.
type CST struct {
	e  *sim.Engine
	al *alloc.Allocator

	gtail  sim.Word
	snodes [][]sim.Word // lazily allocated: [gstatus, gnext, ltail]
	nodes  *nodeTable
	count  []uint64
	tag    string
	cnt    Counters
}

// Per-socket snode field offsets.
const (
	cstGStatus = 0
	cstGNext   = 1
	cstLTail   = 2
	cstGOwner  = 3 // thread handle of the parked socket leader
)

// NewCST creates a CST lock. The allocator models the kernel slab the
// per-socket structures come from; the first socket's structure is
// allocated eagerly, the rest on first use.
func NewCST(e *sim.Engine, al *alloc.Allocator, tag string) *CST {
	socks := e.Topology().Sockets
	l := &CST{
		e: e, al: al,
		gtail:  e.Mem().AllocWord(tag + "/gtail"),
		snodes: make([][]sim.Word, socks),
		count:  make([]uint64, socks),
		tag:    tag,
	}
	l.nodes = newNodeTable(e, tag, qWords, &l.cnt)
	return l
}

func (l *CST) Name() string { return "cst" }

// snode returns the socket's structure, allocating it on first use; the
// allocation is charged to the calling thread, on its lock-acquire path.
func (l *CST) snode(t *sim.Thread, skt int) []sim.Word {
	if l.snodes[skt] == nil {
		// Install before charging the allocation: charging suspends the
		// thread, and a same-socket sibling arriving meanwhile must see
		// this structure, not race to install its own (the real CST
		// CASes the pointer and the loser frees its copy).
		l.snodes[skt] = l.e.Mem().Alloc(l.tag+"/snode", 4)
		l.cnt.DynamicAllocs++
		l.cnt.DynamicAllocatedBytes += cstSnodeBytes
		if l.al != nil {
			l.al.Alloc(t, cstSnodeBytes)
		}
	}
	return l.snodes[skt]
}

func (l *CST) globalAcquire(t *sim.Thread, skt int, sn []sim.Word) {
	t.Store(sn[cstGStatus], mcsWaiting)
	t.Store(sn[cstGNext], 0)
	prev := t.Swap(l.gtail, uint64(skt)+1)
	if prev == 0 {
		return
	}
	pn := l.snode(t, int(prev-1))
	t.Store(pn[cstGNext], uint64(skt)+1)
	// CST is blocking at both levels: a socket leader parks when the
	// core is over-subscribed instead of burning its quantum.
	for {
		v := t.Load(sn[cstGStatus])
		if v == mcsGranted {
			return
		}
		if v == mcsWaiting && t.NeedResched() && t.NrRunning() > 1 {
			t.Store(sn[cstGOwner], handle(t))
			if t.CAS(sn[cstGStatus], mcsWaiting, cstParked) {
				l.cnt.Parks++
				t.Park()
			}
			continue
		}
		t.WatchWait(sn[cstGStatus], v)
	}
}

func (l *CST) globalRelease(t *sim.Thread, skt int, sn []sim.Word) {
	next := t.Load(sn[cstGNext])
	if next == 0 {
		if t.CAS(l.gtail, uint64(skt)+1, 0) {
			return
		}
		next = t.SpinUntil(sn[cstGNext], func(v uint64) bool { return v != 0 })
	}
	nsn := l.snode(t, int(next-1))
	if old := t.Swap(nsn[cstGStatus], mcsGranted); old == cstParked {
		l.cnt.WakeupsInCS++
		t.Unpark(threadOf(l.e, l.e.Mem().Peek(nsn[cstGOwner])))
	}
}

// Lock enqueues locally (parking when over-subscribed); the local head
// acquires the global lock for the socket.
func (l *CST) Lock(t *sim.Thread) {
	skt := t.Socket()
	sn := l.snode(t, skt)
	n := l.nodes.get(t)
	t.Store(n[qStatus], cstWait)
	t.Store(n[qNext], 0)
	prev := t.Swap(sn[cstLTail], handle(t))
	if prev != 0 {
		pn := l.nodes.get(threadOf(l.e, prev))
		t.Store(pn[qNext], handle(t))
		v := l.waitLocal(t, n)
		if v == cstAcqGlobal {
			l.globalAcquire(t, skt, sn)
			v = cstFirst
		}
		l.count[skt] = v
	} else {
		l.globalAcquire(t, skt, sn)
		l.count[skt] = cstFirst
	}
	// CST's wakeup strategy: bring the next local waiter back on CPU
	// ahead of the handoff so the grant does not pay the wake latency.
	if nx := t.Load(n[qNext]); nx != 0 {
		st := l.nodes.get(threadOf(l.e, nx))[qStatus]
		if t.CAS(st, cstWait, cstNext) {
			l.cnt.WakeupsOffCS++
		} else if t.CAS(st, cstParked, cstNext) {
			l.cnt.WakeupsOffCS++
			t.Unpark(threadOf(l.e, nx))
		}
	}
	l.cnt.Acquires++
}

// waitLocal spins on the local node with CST's scheduling-aware parking:
// park only when the core is over-subscribed, otherwise yield.
func (l *CST) waitLocal(t *sim.Thread, n []sim.Word) uint64 {
	for {
		v := t.Load(n[qStatus])
		if v != cstWait && v != cstParked && v != cstNext {
			return v
		}
		if v == cstWait && t.NeedResched() {
			if t.NrRunning() > 1 {
				if t.CAS(n[qStatus], cstWait, cstParked) {
					l.cnt.Parks++
					t.Park()
				}
				continue
			}
			t.Yield()
			continue
		}
		t.WatchWait(n[qStatus], v)
	}
}

// grant hands the local lock to a waiter, waking it if parked. The wakeup
// is on the releasing thread's path — one of CST's costs next to ShflLock,
// whose shufflers wake waiters ahead of time.
func (l *CST) grant(t *sim.Thread, h uint64, v uint64) {
	st := l.nodes.get(threadOf(l.e, h))[qStatus]
	if old := t.Swap(st, v); old == cstParked {
		l.cnt.WakeupsInCS++
		t.Unpark(threadOf(l.e, h))
	}
}

// Unlock passes within the socket below the threshold, else releases the
// global lock first.
func (l *CST) Unlock(t *sim.Thread) {
	skt := t.Socket()
	sn := l.snode(t, skt)
	n := l.nodes.get(t)
	c := l.count[skt]
	next := t.Load(n[qNext])
	if next != 0 && c < cstThreshold+cstFirst {
		l.grant(t, next, c+1)
		return
	}
	l.globalRelease(t, skt, sn)
	if next == 0 {
		if t.CAS(sn[cstLTail], handle(t), 0) {
			return
		}
		next = t.SpinUntil(n[qNext], func(v uint64) bool { return v != 0 })
	}
	l.grant(t, next, cstAcqGlobal)
}

// TryLock succeeds only when the whole hierarchy is free.
func (l *CST) TryLock(t *sim.Thread) bool {
	skt := t.Socket()
	sn := l.snode(t, skt)
	if t.Load(sn[cstLTail]) != 0 || t.Load(l.gtail) != 0 {
		l.cnt.TryFail++
		return false
	}
	n := l.nodes.get(t)
	t.Store(n[qStatus], cstWait)
	t.Store(n[qNext], 0)
	if !t.CAS(sn[cstLTail], 0, handle(t)) {
		l.cnt.TryFail++
		return false
	}
	l.globalAcquire(t, skt, sn)
	l.count[skt] = cstFirst
	l.cnt.TrySuccess++
	l.cnt.Acquires++
	return true
}

// Stats returns the lock's counters.
func (l *CST) Stats() *Counters { return &l.cnt }

// allocatorPerEngine returns a lookup that hands out exactly one slab
// allocator per engine instance. The allocator is stored in the engine's
// assoc table (under a token unique to this maker), not in a maker-side map
// keyed by *Engine: engines are pooled across sweep points, so a recycled
// pointer would hit a previous run's allocator — whose bump state indexes
// the torn-down memory image — and silently alias fresh locks over stale
// words. Engine-scoped storage also needs no lock (one thread runs at a
// time per engine) and cannot thrash between concurrently running engines.
func allocatorPerEngine() func(*sim.Engine) *alloc.Allocator {
	key := new(int) // distinct assoc key per maker
	return func(e *sim.Engine) *alloc.Allocator {
		if al, ok := e.Assoc(key).(*alloc.Allocator); ok {
			return al
		}
		al := alloc.New(e)
		e.SetAssoc(key, al)
		return al
	}
}

// CSTMaker registers the CST lock. The maker allocates a fresh slab
// allocator per engine on demand; experiments that want shared allocator
// pressure construct CST locks directly with their allocator.
func CSTMaker() Maker {
	allocFor := allocatorPerEngine()
	return Maker{
		Name: "cst",
		Kind: Blocking,
		New: func(e *sim.Engine, tag string) Lock {
			return NewCST(e, allocFor(e), tag)
		},
		Footprint: func(sockets int) Footprint {
			return Footprint{PerLock: cstSnodeBytes*sockets + 32, PerWaiter: 24, PerHolder: 0, Dynamic: true}
		},
	}
}
