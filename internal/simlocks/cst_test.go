package simlocks

import (
	"testing"

	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

// TestCSTMakerAllocatorPerEngine pins the maker's allocator-sharing
// contract: every lock a maker builds for one engine must share that
// engine's slab allocator, even when New calls for different engines
// interleave. The benchmark harness interleaves exactly like this when it
// runs one experiment's points concurrently; a last-engine cache slot gave
// the second lock of an interleaved engine a fresh allocator, perturbing
// allocation costs nondeterministically.
func TestCSTMakerAllocatorPerEngine(t *testing.T) {
	newEngine := func() *sim.Engine {
		return sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1})
	}
	e1, e2 := newEngine(), newEngine()

	mk := CSTMaker()
	l1a := mk.New(e1, "a").(*CST)
	l2 := mk.New(e2, "b").(*CST) // interleaved: another engine between e1's locks
	l1b := mk.New(e1, "c").(*CST)

	if l1a.al != l1b.al {
		t.Errorf("two locks for the same engine got different allocators")
	}
	if l1a.al == l2.al {
		t.Errorf("locks for different engines share an allocator")
	}

	rmk := CSTRWMaker()
	r1a := rmk.New(e1, "a").(*PerSocketRW).mutex.(*CST)
	r2 := rmk.New(e2, "b").(*PerSocketRW).mutex.(*CST)
	r1b := rmk.New(e1, "c").(*PerSocketRW).mutex.(*CST)

	if r1a.al != r1b.al {
		t.Errorf("two RW locks for the same engine got different allocators")
	}
	if r1a.al == r2.al {
		t.Errorf("RW locks for different engines share an allocator")
	}
}
