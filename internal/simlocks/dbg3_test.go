package simlocks

import (
	"testing"

	"shfllock/internal/topology"
)

func TestDbgShflB96(t *testing.T) {
	shflTrace = []string{}
	defer func() { shflTrace = nil }()
	runContention(t, withOracle(ShflLockBMaker()), topology.Reference(), 96, 40)
}
