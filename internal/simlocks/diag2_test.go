package simlocks

import (
	"fmt"
	"testing"

	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

// TestDiagMWRLRegime profiles lock behavior in the MWRL-like regime:
// private per-thread CS data, ~600-cycle critical sections.
func TestDiagMWRLRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration helper")
	}
	topo := topology.Reference()
	for _, mk := range []Maker{QSpinLockMaker(), CNAMaker(), ShflLockNBMaker()} {
		e := sim.NewEngine(sim.Config{Topo: topo, Seed: 1, HardStop: 8_000_000_000_000})
		l := mk.New(e, "lock")
		var seq []int
		priv := make([][]sim.Word, 192)
		for i := range priv {
			priv[i] = e.Mem().Alloc("priv", 3)
		}
		for i := 0; i < 192; i++ {
			e.Spawn("w", -1, func(th *sim.Thread) {
				th.Delay(uint64(th.Rng().Intn(100_000)))
				for k := 0; k < 40; k++ {
					th.Delay(250) // lookup
					l.Lock(th)
					seq = append(seq, th.Socket())
					for _, w := range priv[th.ID()] {
						th.Store(w, th.Load(w)+1)
					}
					th.Delay(100)
					l.Unlock(th)
					th.Delay(uint64(100 + th.Rng().Intn(100)))
				}
			})
		}
		e.Run()
		same := 0
		for i := 1; i < len(seq); i++ {
			if seq[i] == seq[i-1] {
				same++
			}
		}
		st := StatsOf(l)
		lockStats := e.Mem().Stats("lock")
		qnodeStats := e.Mem().Stats("lock/qnode")
		acq := float64(st.Acquires)
		fmt.Printf("%-16s same=%4.1f%% dur=%4.1fM  lock:remote/acq=%.2f local/acq=%.2f atomics/acq=%.2f  qnode:remote/acq=%.2f local/acq=%.2f  shuffles=%d moves=%d\n",
			mk.Name, 100*float64(same)/float64(len(seq)-1), float64(e.Now())/1e6,
			float64(lockStats.RemoteXfers)/acq, float64(lockStats.LocalXfers)/acq, float64(lockStats.Atomics)/acq,
			float64(qnodeStats.RemoteXfers)/acq, float64(qnodeStats.LocalXfers)/acq,
			st.Shuffles, st.ShuffleMoves)
	}
}
