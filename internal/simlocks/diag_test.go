package simlocks

import (
	"fmt"
	"testing"

	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

func TestDiagSocketBatching(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration helper")
	}
	topo := topology.Reference()
	for _, mk := range []Maker{MCSMaker(), CNAMaker(), ShflLockNBMaker()} {
		e := sim.NewEngine(sim.Config{Topo: topo, Seed: 1, HardStop: 4_000_000_000_000})
		l := mk.New(e, "lock")
		var seq []int
		data := e.Mem().Alloc("csdata", 4)
		for i := 0; i < 192; i++ {
			e.Spawn("w", -1, func(th *sim.Thread) {
				th.Delay(uint64(th.Rng().Intn(100_000))) // scramble arrival order
				for k := 0; k < 100; k++ {
					l.Lock(th)
					seq = append(seq, th.Socket())
					for _, w := range data {
						th.Store(w, th.Load(w)+1)
					}
					th.Delay(uint64(2500 + th.Rng().Intn(1000)))
					l.Unlock(th)
					th.Delay(uint64(800 + th.Rng().Intn(400)))
				}
			})
		}
		e.Run()
		same := 0
		var windows []float64
		ws, wn := 0, 0
		for i := 1; i < len(seq); i++ {
			if seq[i] == seq[i-1] {
				same++
				ws++
			}
			wn++
			if wn == 2000 {
				windows = append(windows, 100*float64(ws)/float64(wn))
				ws, wn = 0, 0
			}
		}
		fmt.Printf("  windows: %.0f\n", windows)
		st := StatsOf(l)
		lockStats := e.Mem().Stats("lock")
		qnodeStats := e.Mem().Stats("lock/qnode")
		fmt.Printf("%-14s same-socket handoffs: %4.1f%%  shuffles=%d moves=%d scanned=%d marked=%d  lockline remote/acq=%.2f qnode remote/acq=%.2f  dur=%dM\n",
			mk.Name, 100*float64(same)/float64(len(seq)-1), st.Shuffles, st.ShuffleMoves, st.ShuffleScanned, st.ShuffleMarked,
			float64(lockStats.RemoteXfers)/float64(st.Acquires),
			float64(qnodeStats.RemoteXfers)/float64(st.Acquires), e.Now()/1_000_000)
	}
}
