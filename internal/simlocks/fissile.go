package simlocks

import "shfllock/internal/sim"

// Fissile is the Fissile Lock of Dice & Kogan (arXiv:2003.05025): a
// test-and-set fast path "fissioned" over an MCS outer lock. Arriving
// threads take one shot at the inner TS word; on failure they enqueue on
// the outer MCS lock, and only the outer holder — the "alpha" waiter —
// spins on the inner word. The alpha releases the outer lock as soon as it
// wins the inner one, so the critical section is protected by the inner
// word alone and the holder carries no queue node (lock-state decoupling,
// like ShflLock). The inner word stays open for barging, which keeps the
// uncontended path at one CAS, while the outer queue bounds the number of
// threads hammering the inner line to one.
type Fissile struct {
	inner sim.Word
	outer *MCS
	cnt   Counters
}

// NewFissile creates a Fissile lock.
func NewFissile(e *sim.Engine, tag string) *Fissile {
	return &Fissile{inner: e.Mem().AllocWord(tag), outer: NewMCS(e, tag)}
}

func (l *Fissile) Name() string { return "fissile" }

// Lock tries the inner word once, then acquires the outer MCS lock and
// spins on the inner word as the sole alpha contender.
func (l *Fissile) Lock(t *sim.Thread) {
	if t.Load(l.inner) == 0 && t.CAS(l.inner, 0, 1) {
		if t.Load(l.outer.tail) != 0 {
			l.cnt.Steals++
		}
		l.cnt.Acquires++
		return
	}
	l.outer.Lock(t)
	for {
		if t.Load(l.inner) == 0 && t.CAS(l.inner, 0, 1) {
			break
		}
		t.SpinWhileEq(l.inner, 1)
	}
	l.outer.Unlock(t)
	l.cnt.Acquires++
}

// Unlock releases the inner word; the outer lock was already released on
// the acquire side.
func (l *Fissile) Unlock(t *sim.Thread) {
	t.Store(l.inner, 0)
}

// TryLock is one CAS on the inner word — it may barge past the outer
// queue, which is the fast path working as designed.
func (l *Fissile) TryLock(t *sim.Thread) bool {
	if t.Load(l.inner) == 0 && t.CAS(l.inner, 0, 1) {
		if t.Load(l.outer.tail) != 0 {
			l.cnt.Steals++
		}
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *Fissile) Stats() *Counters { return &l.cnt }

// FissileMaker registers the Fissile lock.
func FissileMaker() Maker {
	return Maker{
		Name: "fissile",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewFissile(e, tag) },
		Footprint: func(int) Footprint {
			// 1-byte inner TS word + 8-byte outer tail; waiters hold an MCS
			// node, the holder holds nothing (released before the CS).
			return Footprint{PerLock: 9, PerWaiter: 12, PerHolder: 0}
		},
	}
}
