package simlocks

import "shfllock/internal/sim"

// futexQ is a wait queue keyed on a lock word, modelling the kernel futex
// bucket: parked threads in FIFO order. List manipulation itself happens
// inside the (charged) park/wake syscalls.
type futexQ struct {
	waiters []*sim.Thread
}

// push enqueues t unless it is already queued: a waiter that was woken by
// a stale permit loops and enqueues again, and a duplicate entry would make
// a future wake hit a ghost instead of a parked thread.
func (q *futexQ) push(t *sim.Thread) {
	for _, w := range q.waiters {
		if w == t {
			return
		}
	}
	q.waiters = append(q.waiters, t)
}

func (q *futexQ) pop() *sim.Thread {
	if len(q.waiters) == 0 {
		return nil
	}
	t := q.waiters[0]
	q.waiters = q.waiters[1:]
	return t
}

func (q *futexQ) remove(t *sim.Thread) {
	for i, w := range q.waiters {
		if w == t {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// Pthread models the stock glibc pthread_mutex (PTHREAD_MUTEX_TIMED): a
// three-state word (0 free, 1 locked, 2 locked-with-waiters) and a futex.
// No spinning: a contended locker goes straight to sleep, so every
// contended handoff pays the wakeup latency — which is why pthread stops
// scaling as soon as waiters accumulate (Figure 12).
type Pthread struct {
	word sim.Word
	q    futexQ
	spin uint64 // pre-park spin budget in cycles (0 for stock pthread)
	name string
	cnt  Counters
}

// NewPthread creates a stock pthread-style mutex.
func NewPthread(e *sim.Engine, tag string) *Pthread {
	return &Pthread{word: e.Mem().AllocWord(tag), name: "pthread"}
}

// NewMutexee creates the Mutexee variant (Falsafi et al., ATC'16): the same
// futex protocol but with a bounded spin phase before sleeping, trading a
// little CPU for far fewer syscalls and wakeup latencies.
func NewMutexee(e *sim.Engine, tag string) *Pthread {
	return &Pthread{word: e.Mem().AllocWord(tag), name: "mutexee", spin: 4000}
}

func (l *Pthread) Name() string { return l.name }

// Lock implements the classic futex mutex: CAS fast path, Swap-to-2 slow
// path with futex sleeps.
func (l *Pthread) Lock(t *sim.Thread) {
	if t.CAS(l.word, 0, 1) {
		l.cnt.Acquires++
		return
	}
	// Optional bounded spinning (Mutexee).
	if l.spin > 0 {
		deadline := t.Now() + l.spin
		for t.Now() < deadline {
			v := t.Load(l.word)
			if v == 0 && t.CAS(l.word, 0, 1) {
				l.cnt.Acquires++
				return
			}
			t.Delay(200)
		}
	}
	for t.Swap(l.word, 2) != 0 {
		// futex_wait(word, 2)
		l.q.push(t)
		if t.Load(l.word) != 2 {
			l.q.remove(t) // value changed: syscall would return EAGAIN
			continue
		}
		l.cnt.Parks++
		t.Park()
	}
	l.q.remove(t) // drop our stale entry, if any
	l.cnt.Acquires++
}

// Unlock releases and wakes one sleeper if the waiters state was set.
func (l *Pthread) Unlock(t *sim.Thread) {
	if t.Swap(l.word, 0) == 2 {
		if w := l.q.pop(); w != nil {
			l.cnt.WakeupsInCS++ // futex_wake on the release path
			t.Unpark(w)
		}
	}
}

// TryLock attempts the fast path once.
func (l *Pthread) TryLock(t *sim.Thread) bool {
	if t.Load(l.word) == 0 && t.CAS(l.word, 0, 1) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *Pthread) Stats() *Counters { return &l.cnt }

// PthreadMaker registers the stock pthread mutex.
func PthreadMaker() Maker {
	return Maker{
		Name: "pthread",
		Kind: Blocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewPthread(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 40, PerWaiter: 0, PerHolder: 0}
		},
	}
}

// MutexeeMaker registers the Mutexee lock.
func MutexeeMaker() Maker {
	return Maker{
		Name: "mutexee",
		Kind: Blocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewMutexee(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 16, PerWaiter: 0, PerHolder: 0}
		},
	}
}
