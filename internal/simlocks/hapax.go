package simlocks

import "shfllock/internal/sim"

// Hapax queue-node field offsets: a single mailbox word per thread.
const (
	hpxMailbox = iota
	hpxWords
)

// Hapax is a value-based queue lock in the spirit of Dice & Kogan's Hapax
// Lock (arXiv:2511.14608): the lock is one tail word holding a value that
// is unique per acquisition ("hapax legomenon" — used exactly once), and
// both the arrival and unlock paths run in constant time with no waiting
// loops on the arrival side.
//
// Arrival swaps the tail to its own fresh value; a zero predecessor means
// the lock was free, otherwise the arriver spins on the predecessor
// thread's mailbox until the predecessor's value appears there. Unlock
// CASes the tail from the holder's value back to zero; if that fails a
// successor exists, and the holder publishes its value into its own
// mailbox, which is exactly what the successor is waiting to read. Because
// values are never reused, a stale mailbox left over from an earlier
// acquisition can never be mistaken for the current grant — that is the
// whole trick, and what makes per-thread mailbox reuse safe with no
// generation counters or node reclamation protocol.
//
// FIFO by construction (strict arrival order), one word per lock, one word
// per waiting thread.
type Hapax struct {
	tail  sim.Word
	nodes *nodeTable
	// seq and cur are per-thread acquisition metadata (the sequence counter
	// and the value of the in-flight acquisition). In a real implementation
	// these live in registers/TLS, so they are engine-side Go state here,
	// not charged simulated memory.
	seq map[int]uint64
	cur map[int]uint64
	cnt Counters
}

// NewHapax creates a Hapax lock.
func NewHapax(e *sim.Engine, tag string) *Hapax {
	l := &Hapax{
		tail: e.Mem().AllocWord(tag),
		seq:  make(map[int]uint64),
		cur:  make(map[int]uint64),
	}
	l.nodes = newNodeTable(e, tag, hpxWords, &l.cnt)
	return l
}

func (l *Hapax) Name() string { return "hapax" }

// value mints a fresh, never-reused value for thread t: the thread handle
// in the high half, a per-thread sequence number in the low half.
func (l *Hapax) value(t *sim.Thread) uint64 {
	l.seq[t.ID()]++
	v := handle(t)<<32 | l.seq[t.ID()]
	l.cur[t.ID()] = v
	return v
}

// Lock swaps in a unique value and, if a predecessor exists, spins on the
// predecessor's mailbox until that exact value is published.
func (l *Hapax) Lock(t *sim.Thread) {
	l.nodes.get(t) // allocate our mailbox before anyone can wait on it
	v := l.value(t)
	prev := t.Swap(l.tail, v)
	if prev != 0 {
		pn := l.nodes.get(threadOf(t.Engine(), prev>>32))
		t.SpinUntil(pn[hpxMailbox], func(x uint64) bool { return x == prev })
	}
	l.cnt.Acquires++
}

// Unlock CASes the tail back to zero; on failure a successor is waiting on
// our mailbox, so publish our value there.
func (l *Hapax) Unlock(t *sim.Thread) {
	v := l.cur[t.ID()]
	if t.CAS(l.tail, v, 0) {
		return
	}
	n := l.nodes.get(t)
	t.Store(n[hpxMailbox], v)
}

// TryLock is a single CAS from the free state.
func (l *Hapax) TryLock(t *sim.Thread) bool {
	l.nodes.get(t)
	if t.Load(l.tail) != 0 {
		l.cnt.TryFail++
		return false
	}
	v := l.value(t)
	if t.CAS(l.tail, 0, v) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *Hapax) Stats() *Counters { return &l.cnt }

// HapaxMaker registers the Hapax lock.
func HapaxMaker() Maker {
	return Maker{
		Name: "hapax",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewHapax(e, tag) },
		Footprint: func(int) Footprint {
			// One tail word per lock, one mailbox word per waiting thread;
			// the holder retains only its value (a register), no memory.
			return Footprint{PerLock: 8, PerWaiter: 8, PerHolder: 0}
		},
	}
}
