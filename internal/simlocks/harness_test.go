package simlocks

import (
	"testing"

	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

// runContention spins up nthreads hammering one lock and returns total ops
// completed and the virtual duration. Each critical section touches shared
// data words (cache-line movement inside the CS, factor F1) plus fixed
// compute.
func runContention(t *testing.T, mk Maker, topo topology.Machine, nthreads, opsPerThread int) (ops uint64, dur uint64) {
	t.Helper()
	e := sim.NewEngine(sim.Config{Topo: topo, Seed: 1, HardStop: 2_000_000_000_000})
	l := mk.New(e, "lock")
	data := e.Mem().Alloc("csdata", 4)
	inCS := 0
	var total uint64
	for i := 0; i < nthreads; i++ {
		e.Spawn("w", -1, func(th *sim.Thread) {
			th.Delay(uint64(th.Rng().Intn(100_000))) // scramble arrival order
			for k := 0; k < opsPerThread; k++ {
				l.Lock(th)
				inCS++
				if inCS != 1 {
					t.Errorf("%s: mutual exclusion violated", mk.Name)
				}
				for _, w := range data {
					th.Store(w, th.Load(w)+1)
				}
				th.Delay(uint64(250 + th.Rng().Intn(100)))
				inCS--
				l.Unlock(th)
				th.Delay(uint64(150 + th.Rng().Intn(100)))
				total++
			}
		})
	}
	e.Run()
	if v := e.Mem().Peek(data[0]); v != uint64(nthreads*opsPerThread) {
		t.Errorf("%s: cs data = %d, want %d", mk.Name, v, nthreads*opsPerThread)
	}
	return total, e.Now()
}

// throughput returns ops per million cycles for a configuration.
func throughput(t *testing.T, mk Maker, topo topology.Machine, nthreads, ops int) float64 {
	n, d := runContention(t, mk, topo, nthreads, ops)
	return float64(n) / (float64(d) / 1e6)
}

func TestTASMutualExclusion(t *testing.T) {
	runContention(t, TASMaker(), topology.Laptop(), 8, 50)
}

func TestTicketMutualExclusion(t *testing.T) {
	runContention(t, TicketMaker(), topology.Laptop(), 8, 50)
}

func TestMCSMutualExclusion(t *testing.T) {
	runContention(t, MCSMaker(), topology.Laptop(), 8, 50)
}

func TestTicketIsFIFO(t *testing.T) {
	e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 1_000_000_000})
	l := NewTicket(e, "l")
	var order []int
	gate := e.Mem().AllocWord("gate")
	for i := 0; i < 4; i++ {
		e.Spawn("w", i, func(th *sim.Thread) {
			// Stagger arrivals deterministically.
			th.Delay(uint64(1+th.ID()) * 10_000)
			if th.ID() == 0 {
				l.Lock(th)
				th.Store(gate, 1)
				th.Delay(200_000) // let others queue up in arrival order
				order = append(order, 0)
				l.Unlock(th)
				return
			}
			th.SpinUntil(gate, func(v uint64) bool { return v == 1 })
			th.Delay(uint64(th.ID()) * 5_000)
			l.Lock(th)
			order = append(order, th.ID())
			l.Unlock(th)
		})
	}
	e.Run()
	for i, id := range order {
		if id != i {
			t.Fatalf("ticket lock not FIFO: %v", order)
		}
	}
}

// The headline emergent behavior: at single-thread the simple locks win or
// tie, and at full machine contention MCS must beat TAS clearly (queue
// locks exist for a reason), while TAS wins or ties at 1-2 threads.
func TestMCSBeatsTASUnderContention(t *testing.T) {
	topo := topology.Reference()
	tas1 := throughput(t, TASMaker(), topo, 1, 400)
	mcs1 := throughput(t, MCSMaker(), topo, 1, 400)
	tasN := throughput(t, TASMaker(), topo, 96, 40)
	mcsN := throughput(t, MCSMaker(), topo, 96, 40)

	if tas1 < mcs1*0.95 {
		t.Errorf("single-thread: TAS (%.1f) should not lose to MCS (%.1f)", tas1, mcs1)
	}
	if mcsN < tasN*1.2 {
		t.Errorf("96 threads: MCS (%.1f) should clearly beat TAS (%.1f)", mcsN, tasN)
	}
}

func TestTryLock(t *testing.T) {
	for _, mk := range []Maker{TASMaker(), TicketMaker(), MCSMaker()} {
		e := sim.NewEngine(sim.Config{Topo: topology.Laptop(), Seed: 1, HardStop: 1_000_000_000})
		l := mk.New(e, "l")
		e.Spawn("a", 0, func(th *sim.Thread) {
			if !l.TryLock(th) {
				t.Errorf("%s: TryLock on free lock failed", mk.Name)
			}
			th.Delay(100_000)
			l.Unlock(th)
		})
		e.Spawn("b", 1, func(th *sim.Thread) {
			th.Delay(10_000) // while a holds it
			if l.TryLock(th) {
				t.Errorf("%s: TryLock on held lock succeeded", mk.Name)
			}
			th.Delay(200_000) // after a released it
			if !l.TryLock(th) {
				t.Errorf("%s: TryLock on released lock failed", mk.Name)
			}
			l.Unlock(th)
		})
		e.Run()
	}
}
