package simlocks

import "shfllock/internal/sim"

// hmcsThreshold bounds intra-socket passing, as in the HMCS paper.
const hmcsThreshold = 64

// HMCS node grant values: 0 = waiting, 1 = "you are the local head,
// acquire the global lock", >= 2 = lock passed directly with count v.
const (
	hmcsWait       = 0
	hmcsAcqGlobal  = 1
	hmcsFirstCount = 2
)

// HMCS is the hierarchical MCS lock (Chabbi, Fagan & Mellor-Crummey,
// PPoPP'15): an MCS lock per socket plus a global MCS lock whose queue
// nodes are the per-socket records. Local winners acquire the global lock;
// ownership then passes within the socket up to a threshold. Statically
// allocated, NUMA-aware, non-blocking; the most efficient of the
// hierarchical family but with per-socket memory and a two-level handoff.
type HMCS struct {
	e *sim.Engine

	gtail  sim.Word     // global MCS tail; values are socket+1
	gnodes [][]sim.Word // per-socket global queue node [status,next]
	ltails []sim.Word   // per-socket local MCS tails

	nodes *nodeTable
	count []uint64 // local pass count per socket (only the holder touches it)
	cnt   Counters
}

// NewHMCS creates an HMCS lock.
func NewHMCS(e *sim.Engine, tag string) *HMCS {
	socks := e.Topology().Sockets
	l := &HMCS{
		e:      e,
		gtail:  e.Mem().AllocWord(tag + "/gtail"),
		ltails: e.Mem().AllocPadded(tag+"/ltail", socks),
		count:  make([]uint64, socks),
	}
	l.gnodes = make([][]sim.Word, socks)
	for s := range l.gnodes {
		l.gnodes[s] = e.Mem().Alloc(tag+"/gnode", 2)
	}
	l.nodes = newNodeTable(e, tag, qWords, &l.cnt)
	return l
}

// NewHMCSHeap creates an HMCS lock whose per-thread nodes are accounted as
// heap allocations (userspace deployment).
func NewHMCSHeap(e *sim.Engine, tag string) *HMCS {
	l := NewHMCS(e, tag)
	l.nodes.heap = true
	return l
}

func (l *HMCS) Name() string { return "hmcs" }

// globalAcquire enqueues the socket's record on the global MCS lock.
func (l *HMCS) globalAcquire(t *sim.Thread, skt int) {
	gn := l.gnodes[skt]
	t.Store(gn[qStatus], mcsWaiting)
	t.Store(gn[qNext], 0)
	prev := t.Swap(l.gtail, uint64(skt)+1)
	if prev != 0 {
		pn := l.gnodes[prev-1]
		t.Store(pn[qNext], uint64(skt)+1)
		t.SpinUntil(gn[qStatus], func(v uint64) bool { return v == mcsGranted })
	}
}

// globalRelease hands the global lock to the next socket.
func (l *HMCS) globalRelease(t *sim.Thread, skt int) {
	gn := l.gnodes[skt]
	next := t.Load(gn[qNext])
	if next == 0 {
		if t.CAS(l.gtail, uint64(skt)+1, 0) {
			return
		}
		next = t.SpinUntil(gn[qNext], func(v uint64) bool { return v != 0 })
	}
	t.Store(l.gnodes[next-1][qStatus], mcsGranted)
}

// Lock enqueues on the socket-local MCS queue; the local head acquires the
// global lock on behalf of the socket.
func (l *HMCS) Lock(t *sim.Thread) {
	skt := t.Socket()
	n := l.nodes.get(t)
	t.Store(n[qStatus], hmcsWait)
	t.Store(n[qNext], 0)
	prev := t.Swap(l.ltails[skt], handle(t))
	if prev != 0 {
		pn := l.nodes.get(threadOf(l.e, prev))
		t.Store(pn[qNext], handle(t))
		v := t.SpinUntil(n[qStatus], func(x uint64) bool { return x != hmcsWait })
		if v == hmcsAcqGlobal {
			l.globalAcquire(t, skt)
			v = hmcsFirstCount
		}
		l.count[skt] = v
	} else {
		l.globalAcquire(t, skt)
		l.count[skt] = hmcsFirstCount
	}
	l.cnt.Acquires++
}

// Unlock passes within the socket below the threshold, else releases the
// global lock and tells the next local waiter to re-acquire it.
func (l *HMCS) Unlock(t *sim.Thread) {
	skt := t.Socket()
	n := l.nodes.get(t)
	c := l.count[skt]
	next := t.Load(n[qNext])
	if next != 0 && c < hmcsThreshold+hmcsFirstCount {
		t.Store(l.nodes.get(threadOf(l.e, next))[qStatus], c+1)
		return
	}
	l.globalRelease(t, skt)
	if next == 0 {
		if t.CAS(l.ltails[skt], handle(t), 0) {
			return
		}
		next = t.SpinUntil(n[qNext], func(v uint64) bool { return v != 0 })
	}
	t.Store(l.nodes.get(threadOf(l.e, next))[qStatus], hmcsAcqGlobal)
}

// TryLock succeeds only when both the local queue and the global lock are
// free.
func (l *HMCS) TryLock(t *sim.Thread) bool {
	skt := t.Socket()
	if t.Load(l.ltails[skt]) != 0 || t.Load(l.gtail) != 0 {
		l.cnt.TryFail++
		return false
	}
	n := l.nodes.get(t)
	t.Store(n[qStatus], hmcsWait)
	t.Store(n[qNext], 0)
	if !t.CAS(l.ltails[skt], 0, handle(t)) {
		l.cnt.TryFail++
		return false
	}
	l.globalAcquire(t, skt)
	l.count[skt] = hmcsFirstCount
	l.cnt.TrySuccess++
	l.cnt.Acquires++
	return true
}

// Stats returns the lock's counters.
func (l *HMCS) Stats() *Counters { return &l.cnt }

// HMCSMaker registers the HMCS lock.
func HMCSMaker() Maker {
	return Maker{
		Name: "hmcs",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewHMCS(e, tag) },
		Footprint: func(sockets int) Footprint {
			return Footprint{PerLock: 128*sockets + 16, PerWaiter: 24, PerHolder: 24}
		},
	}
}

// HMCSHeapMaker registers the userspace HMCS with heap-allocated nodes.
func HMCSHeapMaker() Maker {
	m := HMCSMaker()
	m.New = func(e *sim.Engine, tag string) Lock { return NewHMCSHeap(e, tag) }
	m.Footprint = func(sockets int) Footprint {
		return Footprint{PerLock: 128*sockets + 16, PerWaiter: 24, PerHolder: 24, HeapNodes: true}
	}
	return m
}
