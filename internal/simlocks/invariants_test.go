package simlocks

import (
	"testing"

	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

// withOracle wraps a ShflLock maker so the single-active-shuffler invariant
// (invariant 2 of §4.2.1) is asserted throughout the run.
func withOracle(mk Maker) Maker {
	orig := mk.New
	mk.New = func(e *sim.Engine, tag string) Lock {
		l := orig(e, tag).(*ShflLock)
		l.roleOracle = true
		return l
	}
	return mk
}

// TestShflSingleShufflerInvariant runs the NB and B locks at scale with the
// role oracle armed; any moment with two active shufflers panics.
func TestShflSingleShufflerInvariant(t *testing.T) {
	runContention(t, withOracle(ShflLockNBMaker()), topology.Reference(), 96, 40)
	runContention(t, withOracle(ShflLockBMaker()), topology.Reference(), 96, 40)
}

// TestShflSingleShufflerOversubscribed arms the oracle with parking in play.
func TestShflSingleShufflerOversubscribed(t *testing.T) {
	topo := topology.Laptop()
	mk := withOracle(ShflLockBMaker())
	e := sim.NewEngine(sim.Config{Topo: topo, Seed: 11, HardStop: 8_000_000_000_000})
	l := mk.New(e, "lock")
	for i := 0; i < 4*topo.Cores(); i++ {
		e.Spawn("w", -1, func(th *sim.Thread) {
			th.Delay(uint64(th.Rng().Intn(100_000)))
			for k := 0; k < 80; k++ {
				l.Lock(th)
				th.Delay(uint64(800 + th.Rng().Intn(800)))
				l.Unlock(th)
				th.Delay(uint64(th.Rng().Intn(400)))
			}
		})
	}
	e.Run()
}

// TestShflAblationInvariants arms the oracle for each factor-analysis
// variant.
func TestShflAblationInvariants(t *testing.T) {
	for stage := 0; stage < 4; stage++ {
		runContention(t, withOracle(ShflLockAblationMaker(stage)), topology.Reference(), 48, 20)
	}
}
