package simlocks

import "shfllock/internal/sim"

// LinuxMutex models the stock kernel mutex ("Stock" for the blocking
// benchmarks): a TAS fast path on the owner word, an optimistic-spinning
// mid path in which one waiter at a time (serialized by the OSQ) spins as
// long as the lock owner is running on a CPU, and a parking list slow path.
// The releaser wakes the first sleeper on its own (critical) path.
type LinuxMutex struct {
	e     *sim.Engine
	owner sim.Word // holder handle | waitersBit
	osq   sim.Word // one optimistic spinner at a time (MCS, simplified)
	q     futexQ
	nodes *nodeTable
	cnt   Counters
}

const lmWaitersBit = 1 << 63

// NewLinuxMutex creates a stock Linux mutex.
func NewLinuxMutex(e *sim.Engine, tag string) *LinuxMutex {
	ws := e.Mem().Alloc(tag, 2)
	l := &LinuxMutex{e: e, owner: ws[0], osq: ws[1]}
	l.nodes = newNodeTable(e, tag, qWords, &l.cnt)
	return l
}

func (l *LinuxMutex) Name() string { return "stock-mutex" }

// DebugState reports internal state for deadlock diagnostics.
func (l *LinuxMutex) DebugState() (owner uint64, osq uint64, queued []int) {
	owner = l.e.Mem().Peek(l.owner)
	osq = l.e.Mem().Peek(l.osq)
	for _, w := range l.q.waiters {
		queued = append(queued, w.ID())
	}
	return
}

// tryAcquire attempts to take the owner word, preserving the waiters bit.
func (l *LinuxMutex) tryAcquire(t *sim.Thread, v uint64) bool {
	return v&^uint64(lmWaitersBit) == 0 && t.CAS(l.owner, v, handle(t)|v&lmWaitersBit)
}

// Lock: fast path, then optimistic spinning while the owner is on-CPU,
// then park on the wait list.
func (l *LinuxMutex) Lock(t *sim.Thread) {
	if t.CAS(l.owner, 0, handle(t)) {
		l.cnt.Acquires++
		return
	}

	// Mid path: join the OSQ; only its head spins on the owner.
	n := l.nodes.get(t)
	t.Store(n[qStatus], mcsWaiting)
	t.Store(n[qNext], 0)
	prev := t.Swap(l.osq, handle(t))
	if prev != 0 {
		pn := l.nodes.get(threadOf(l.e, prev))
		t.Store(pn[qNext], handle(t))
		t.SpinUntil(n[qStatus], func(v uint64) bool { return v == mcsGranted })
	}
	acquired := false
	for !t.NeedResched() {
		v := t.Load(l.owner)
		if l.tryAcquire(t, v) {
			acquired = true
			break
		}
		h := v &^ uint64(lmWaitersBit)
		if h == 0 {
			continue // owner just released; retry the CAS
		}
		if !threadOf(l.e, h).OnCPU() {
			break // owner preempted: spinning is pointless, go sleep
		}
		t.WatchWait(l.owner, v)
	}
	// Leave the OSQ.
	next := t.Load(n[qNext])
	if next == 0 {
		if !t.CAS(l.osq, handle(t), 0) {
			next = t.SpinUntil(n[qNext], func(v uint64) bool { return v != 0 })
		}
	}
	if next != 0 {
		t.Store(l.nodes.get(threadOf(l.e, next))[qStatus], mcsGranted)
	}
	if acquired {
		l.cnt.Acquires++
		return
	}

	// Slow path: park on the wait list until granted a retry.
	for {
		v := t.Load(l.owner)
		if l.tryAcquire(t, v) {
			l.q.remove(t) // drop our stale entry, if any
			// Unlock's Swap cleared the waiters bit; re-arm it for the
			// waiters still parked behind us, or they are never woken.
			for len(l.q.waiters) > 0 {
				v = t.Load(l.owner)
				if v&lmWaitersBit != 0 || t.CAS(l.owner, v, v|lmWaitersBit) {
					break
				}
			}
			break
		}
		if v&lmWaitersBit == 0 {
			if !t.CAS(l.owner, v, v|lmWaitersBit) {
				continue
			}
		}
		l.q.push(t)
		if t.Load(l.owner)&^uint64(lmWaitersBit) == 0 {
			l.q.remove(t)
			continue
		}
		l.cnt.Parks++
		t.Park()
	}
	l.cnt.Acquires++
}

// Unlock releases the owner word and wakes the first sleeper.
func (l *LinuxMutex) Unlock(t *sim.Thread) {
	old := t.Swap(l.owner, 0)
	if old&lmWaitersBit != 0 {
		if w := l.q.pop(); w != nil {
			l.cnt.WakeupsInCS++
			t.Unpark(w)
		}
	}
}

// TryLock attempts the fast path once.
func (l *LinuxMutex) TryLock(t *sim.Thread) bool {
	v := t.Load(l.owner)
	if l.tryAcquire(t, v) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *LinuxMutex) Stats() *Counters { return &l.cnt }

// LinuxMutexMaker registers the stock Linux mutex.
func LinuxMutexMaker() Maker {
	return Maker{
		Name: "stock-mutex",
		Kind: Blocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewLinuxMutex(e, tag) },
		Footprint: func(int) Footprint {
			// struct mutex: owner + wait_lock + osq + wait_list.
			return Footprint{PerLock: 40, PerWaiter: 32, PerHolder: 0}
		},
	}
}
