// Package simlocks implements every lock algorithm the paper evaluates,
// written against the simulator's Thread API: TAS, TTAS, ticket, MCS, the
// Linux qspinlock, CNA, Cohort, HMCS, CST, Malthusian, MCS-TP, futex-based
// pthread mutex, Mutexee, the Linux mutex and rwsem, BRAVO, and the three
// ShflLocks (non-blocking, blocking, readers-writer).
//
// All algorithms operate on simulated memory words so that the cost model
// charges them for exactly the cache-line movement their real counterparts
// cause. Queue nodes live in per-thread node tables: conceptually the
// waiter's stack (or, for userspace deployments, a heap allocation — the
// distinction is what Figure 13(b) measures).
package simlocks

import "shfllock/internal/sim"

// Lock is a mutual-exclusion lock on the simulated machine.
type Lock interface {
	// Name identifies the algorithm (e.g. "mcs", "shfllock-b").
	Name() string
	// Lock acquires the lock for thread t, blocking (spinning or
	// parking, per algorithm) until it is held.
	Lock(t *sim.Thread)
	// Unlock releases the lock; the caller must hold it.
	Unlock(t *sim.Thread)
	// TryLock attempts a single non-blocking acquisition.
	TryLock(t *sim.Thread) bool
}

// RWLock is a readers-writer lock on the simulated machine.
type RWLock interface {
	Name() string
	RLock(t *sim.Thread)
	RUnlock(t *sim.Thread)
	Lock(t *sim.Thread)
	Unlock(t *sim.Thread)
}

// Kind classifies lock algorithms the way the paper's tables do.
type Kind uint8

const (
	NonBlocking Kind = iota // waiters always spin
	Blocking                // waiters may park when over-subscribed
)

// Footprint describes a lock's memory cost in bytes, mirroring Table 1.
type Footprint struct {
	PerLock   int  // the lock structure embedded in the protected object
	PerWaiter int  // queue node needed while waiting to enter the CS
	PerHolder int  // queue node retained while inside the CS
	Dynamic   bool // allocates per-socket structures at runtime (CST)
	HeapNodes bool // queue nodes must be heap-allocated in userspace use
}

// Maker constructs a lock instance bound to an engine. Tag scopes the
// memory-statistics group so experiments can attribute traffic per lock.
type Maker struct {
	Name string
	Kind Kind
	New  func(e *sim.Engine, tag string) Lock
	// Footprint on a machine with the given socket count.
	Footprint func(sockets int) Footprint
}

// RWMaker constructs a readers-writer lock instance.
type RWMaker struct {
	Name      string
	Kind      Kind
	New       func(e *sim.Engine, tag string) RWLock
	Footprint func(sockets int) Footprint
}

// Counters aggregates algorithm-level statistics that experiments report.
type Counters struct {
	Acquires              uint64 // successful Lock calls
	TrySuccess            uint64
	TryFail               uint64
	Steals                uint64 // acquisitions via the TAS fast path while a queue existed
	Shuffles              uint64 // shuffling rounds executed
	ShuffleMoves          uint64 // queue nodes relocated by shufflers
	ShuffleScanned        uint64 // queue nodes examined by shufflers
	ShuffleMarked         uint64 // same-socket nodes marked (contiguous chain)
	WakeupsInCS           uint64 // wakeups issued by a lock holder inside the critical path
	WakeupsOffCS          uint64 // wakeups issued off the critical path (by shufflers/waiters)
	Parks                 uint64 // waiters that parked
	Aborts                uint64 // abortable acquisitions that gave up (LockAbort)
	Reclaims              uint64 // abandoned queue nodes unlinked by shufflers or grant walks
	DynamicAllocs         uint64 // runtime allocations (CST snode, heap queue nodes)
	DynamicAllocatedBytes uint64
}

// counterHolder lets experiments retrieve counters from any lock that keeps
// them.
type counterHolder interface{ Stats() *Counters }

// StatsOf extracts a lock's counters if the algorithm records them.
func StatsOf(l interface{}) *Counters {
	if h, ok := l.(counterHolder); ok {
		return h.Stats()
	}
	return nil
}

// nodeTable lazily hands each simulated thread a private queue node of n
// words, all on the thread's own cache line (stack allocation). When heap
// is true, the first allocation per thread charges the allocator cost and
// is counted as a dynamic allocation, modelling userspace queue locks that
// malloc their nodes (Figure 13).
type nodeTable struct {
	e     *sim.Engine
	tag   string
	words int
	nodes map[int][]sim.Word
	cnt   *Counters
	heap  bool
}

func newNodeTable(e *sim.Engine, tag string, words int, cnt *Counters) *nodeTable {
	return &nodeTable{e: e, tag: tag, words: words, nodes: make(map[int][]sim.Word), cnt: cnt}
}

// get returns thread t's node, allocating it on first use.
func (nt *nodeTable) get(t *sim.Thread) []sim.Word {
	if n, ok := nt.nodes[t.ID()]; ok {
		return n
	}
	n := nt.e.Mem().Alloc(nt.tag+"/qnode", nt.words)
	nt.nodes[t.ID()] = n
	if nt.heap && nt.cnt != nil {
		nt.cnt.DynamicAllocs++
		nt.cnt.DynamicAllocatedBytes += uint64(nt.words * 8)
	}
	return n
}

// handle encodes a queue-node owner (thread) as a non-zero word value so
// node pointers can live in simulated memory. Zero is nil.
func handle(t *sim.Thread) uint64 { return uint64(t.ID()) + 1 }

// threadOf resolves a handle back to its thread.
func threadOf(e *sim.Engine, h uint64) *sim.Thread {
	return e.Threads()[h-1]
}
