package simlocks

import "shfllock/internal/sim"

// Malthusian node status values.
const (
	malWaiting  = 0
	malGranted  = 1
	malCulled   = 2 // moved to the passive list; sleep until promoted
	malPromoted = 3 // re-join the queue
)

// malPromotePeriod: promote one passive waiter every N handoffs for
// long-term fairness.
const malPromotePeriod = 64

// Malthusian is Dice's Malthusian lock: an MCS lock whose holder culls
// surplus waiters into a passive LIFO list, putting them to sleep so that
// only a small active set spins. Culling concentrates the lock among few
// threads (good throughput under over-subscription, poor short-term
// fairness); passive waiters are promoted periodically.
type Malthusian struct {
	e       *sim.Engine
	tail    sim.Word
	nodes   *nodeTable
	passive []uint64 // LIFO of culled waiter handles
	ops     int
	cnt     Counters
}

// NewMalthusian creates a Malthusian lock.
func NewMalthusian(e *sim.Engine, tag string) *Malthusian {
	l := &Malthusian{e: e, tail: e.Mem().AllocWord(tag)}
	l.nodes = newNodeTable(e, tag, qWords, &l.cnt)
	return l
}

func (l *Malthusian) Name() string { return "malthusian" }

// Lock joins the MCS queue; a culled waiter sleeps on the passive list and
// re-enqueues when promoted.
func (l *Malthusian) Lock(t *sim.Thread) {
	for {
		n := l.nodes.get(t)
		t.Store(n[qStatus], malWaiting)
		t.Store(n[qNext], 0)
		prev := t.Swap(l.tail, handle(t))
		if prev == 0 {
			l.cnt.Acquires++
			return
		}
		pn := l.nodes.get(threadOf(l.e, prev))
		t.Store(pn[qNext], handle(t))
		rejoin := false
		for {
			v := t.Load(n[qStatus])
			if v == malGranted {
				l.cnt.Acquires++
				return
			}
			if v == malCulled {
				l.cnt.Parks++
				t.Park()
				continue
			}
			if v == malPromoted {
				rejoin = true
				break
			}
			t.WatchWait(n[qStatus], v)
		}
		if rejoin {
			continue
		}
	}
}

// Unlock culls the second waiter in line (if safely unlinkable) onto the
// passive list, promotes a passive waiter periodically, then passes the
// lock MCS-style.
func (l *Malthusian) Unlock(t *sim.Thread) {
	n := l.nodes.get(t)
	l.ops++

	next := t.Load(n[qNext])
	if next != 0 {
		// Cull: detach next.next while it is fully linked and not the tail.
		nn := l.nodes.get(threadOf(l.e, next))
		cull := t.Load(nn[qNext])
		if cull != 0 && cull != t.Load(l.tail) {
			cn := l.nodes.get(threadOf(l.e, cull))
			cnext := t.Load(cn[qNext])
			if cnext != 0 {
				t.Store(nn[qNext], cnext)
				l.passive = append(l.passive, cull)
				t.Store(cn[qStatus], malCulled)
				l.cnt.ShuffleMoves++ // reuse: nodes relocated off the queue
			}
		}
	}

	// Periodic promotion for long-term fairness.
	if l.ops%malPromotePeriod == 0 && len(l.passive) > 0 {
		h := l.passive[len(l.passive)-1]
		l.passive = l.passive[:len(l.passive)-1]
		w := threadOf(l.e, h)
		t.Store(l.nodes.get(w)[qStatus], malPromoted)
		l.cnt.WakeupsInCS++
		t.Unpark(w)
	}

	next = t.Load(n[qNext])
	if next == 0 {
		if t.CAS(l.tail, handle(t), 0) {
			// Queue drained: wake all passive waiters so none is lost.
			for len(l.passive) > 0 {
				h := l.passive[len(l.passive)-1]
				l.passive = l.passive[:len(l.passive)-1]
				w := threadOf(l.e, h)
				t.Store(l.nodes.get(w)[qStatus], malPromoted)
				t.Unpark(w)
			}
			return
		}
		next = t.SpinUntil(n[qNext], func(v uint64) bool { return v != 0 })
	}
	t.Store(l.nodes.get(threadOf(l.e, next))[qStatus], malGranted)
}

// TryLock succeeds only on an empty queue.
func (l *Malthusian) TryLock(t *sim.Thread) bool {
	n := l.nodes.get(t)
	t.Store(n[qStatus], malWaiting)
	t.Store(n[qNext], 0)
	if t.Load(l.tail) == 0 && t.CAS(l.tail, 0, handle(t)) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *Malthusian) Stats() *Counters { return &l.cnt }

// MalthusianMaker registers the Malthusian lock.
func MalthusianMaker() Maker {
	return Maker{
		Name: "malthusian",
		Kind: Blocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewMalthusian(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 24, PerWaiter: 32, PerHolder: 32, HeapNodes: true}
		},
	}
}
