package simlocks

import "shfllock/internal/sim"

// Queue-node field offsets shared by the MCS-family locks.
const (
	qStatus = iota // spin word: granted/waiting (+ richer states in ShflLock)
	qNext          // successor handle (0 = none)
	qWords
)

// MCS node status values.
const (
	mcsWaiting = 0
	mcsGranted = 1
)

// MCS is the classic Mellor-Crummey & Scott queue lock: waiters join a
// global tail pointer and each spins on its own queue node, so handoff
// costs a single cache-line transfer. FIFO and NUMA-oblivious: the lock
// and the critical-section data ping-pong between sockets in queue order.
//
// When heapNodes is set, queue nodes are accounted as heap allocations, the
// way an LD_PRELOAD userspace deployment must allocate them (Figure 13).
type MCS struct {
	tail  sim.Word
	nodes *nodeTable
	cnt   Counters
}

// NewMCS creates an MCS lock.
func NewMCS(e *sim.Engine, tag string) *MCS {
	l := &MCS{tail: e.Mem().AllocWord(tag)}
	l.nodes = newNodeTable(e, tag, qWords, &l.cnt)
	return l
}

// NewMCSHeap creates an MCS lock whose per-thread queue nodes are counted
// as heap allocations (userspace deployment).
func NewMCSHeap(e *sim.Engine, tag string) *MCS {
	l := NewMCS(e, tag)
	l.nodes.heap = true
	return l
}

func (l *MCS) Name() string { return "mcs" }

// Lock enqueues the caller and spins on its private node.
func (l *MCS) Lock(t *sim.Thread) {
	n := l.nodes.get(t)
	t.Store(n[qStatus], mcsWaiting)
	t.Store(n[qNext], 0)
	prev := t.Swap(l.tail, handle(t))
	if prev != 0 {
		pn := l.nodes.get(threadOf(t.Engine(), prev))
		t.Store(pn[qNext], handle(t))
		t.SpinUntil(n[qStatus], func(v uint64) bool { return v == mcsGranted })
	}
	l.cnt.Acquires++
}

// Unlock hands the lock to the successor, or resets the tail.
func (l *MCS) Unlock(t *sim.Thread) {
	n := l.nodes.get(t)
	next := t.Load(n[qNext])
	if next == 0 {
		if t.CAS(l.tail, handle(t), 0) {
			return
		}
		next = t.SpinUntil(n[qNext], func(v uint64) bool { return v != 0 })
	}
	sn := l.nodes.get(threadOf(t.Engine(), next))
	t.Store(sn[qStatus], mcsGranted)
}

// TryLock succeeds only if the queue is empty.
func (l *MCS) TryLock(t *sim.Thread) bool {
	n := l.nodes.get(t)
	t.Store(n[qStatus], mcsWaiting)
	t.Store(n[qNext], 0)
	if t.Load(l.tail) == 0 && t.CAS(l.tail, 0, handle(t)) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *MCS) Stats() *Counters { return &l.cnt }

// MCSMaker registers the MCS lock (kernel-style stack nodes).
func MCSMaker() Maker {
	return Maker{
		Name: "mcs",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewMCS(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 8, PerWaiter: 12, PerHolder: 12}
		},
	}
}

// MCSHeapMaker registers the userspace MCS variant with heap queue nodes.
func MCSHeapMaker() Maker {
	m := MCSMaker()
	m.New = func(e *sim.Engine, tag string) Lock { return NewMCSHeap(e, tag) }
	m.Footprint = func(int) Footprint {
		return Footprint{PerLock: 8, PerWaiter: 12, PerHolder: 12, HeapNodes: true}
	}
	return m
}
