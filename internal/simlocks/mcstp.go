package simlocks

import "shfllock/internal/sim"

// MCSTP node status values.
const (
	tpWaiting = 0
	tpGranted = 1
	tpFailed  = 2 // holder timed us out (we looked preempted); re-enqueue
)

// MCSTP is the time-published MCS lock (He, Scherer & Scott, HiPC'05):
// MCS made preemption-adaptive for over-subscribed userspace. Waiters
// publish liveness while spinning; at release the holder skips waiters
// that look preempted, marking them failed so they re-enqueue when they
// run again.
//
// Simulation note: real MCS-TP infers preemption from a published
// timestamp going stale. The simulator reads the waiter's on-CPU state
// directly (charging the same qnode-line load the timestamp read costs);
// the observable behaviour — skip descheduled waiters, fail them, let them
// retry — is identical, without modelling timer reads.
type MCSTP struct {
	e     *sim.Engine
	tail  sim.Word
	nodes *nodeTable
	cnt   Counters
}

// NewMCSTP creates a time-published MCS lock.
func NewMCSTP(e *sim.Engine, tag string) *MCSTP {
	l := &MCSTP{e: e, tail: e.Mem().AllocWord(tag)}
	l.nodes = newNodeTable(e, tag, qWords, &l.cnt)
	return l
}

func (l *MCSTP) Name() string { return "mcstp" }

// Lock joins the queue, re-enqueueing whenever the holder fails us for
// having been preempted.
func (l *MCSTP) Lock(t *sim.Thread) {
	for {
		n := l.nodes.get(t)
		t.Store(n[qStatus], tpWaiting)
		t.Store(n[qNext], 0)
		prev := t.Swap(l.tail, handle(t))
		if prev == 0 {
			l.cnt.Acquires++
			return
		}
		pn := l.nodes.get(threadOf(l.e, prev))
		t.Store(pn[qNext], handle(t))
		v := t.SpinUntil(n[qStatus], func(x uint64) bool { return x != tpWaiting })
		if v == tpGranted {
			l.cnt.Acquires++
			return
		}
		// Failed: we were (or appeared) preempted; try again.
		t.Yield()
	}
}

// Unlock passes to the first waiter that is still on a CPU, failing the
// stale ones.
func (l *MCSTP) Unlock(t *sim.Thread) {
	n := l.nodes.get(t)
	cur := t.Load(n[qNext])
	for {
		if cur == 0 {
			if t.CAS(l.tail, handle(t), 0) {
				return
			}
			cur = t.SpinUntil(n[qNext], func(v uint64) bool { return v != 0 })
		}
		w := threadOf(l.e, cur)
		cn := l.nodes.get(w)
		// Read the published liveness (one qnode-line load), then decide.
		t.Load(cn[qStatus])
		if w.OnCPU() {
			t.Store(cn[qStatus], tpGranted)
			return
		}
		// Looks preempted: fail it and move on. If it has no successor,
		// grant anyway — failing the last waiter could strand the queue.
		next := t.Load(cn[qNext])
		if next == 0 && t.Load(l.tail) == cur {
			t.Store(cn[qStatus], tpGranted)
			return
		}
		if next == 0 {
			next = t.SpinUntil(cn[qNext], func(v uint64) bool { return v != 0 })
		}
		t.Store(cn[qStatus], tpFailed)
		l.cnt.Steals++ // reuse: preemption-failed handoffs
		cur = next
	}
}

// TryLock succeeds only on an empty queue.
func (l *MCSTP) TryLock(t *sim.Thread) bool {
	n := l.nodes.get(t)
	t.Store(n[qStatus], tpWaiting)
	t.Store(n[qNext], 0)
	if t.Load(l.tail) == 0 && t.CAS(l.tail, 0, handle(t)) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *MCSTP) Stats() *Counters { return &l.cnt }

// MCSTPMaker registers the time-published MCS lock.
func MCSTPMaker() Maker {
	return Maker{
		Name: "mcstp",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewMCSTP(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 8, PerWaiter: 48, PerHolder: 48, HeapNodes: true}
		},
	}
}
