package simlocks

import "shfllock/internal/sim"

// QSpinLock models the stock Linux qspinlock ("Stock" in Figure 8): a TAS
// byte in the fast path and an MCS queue in the slow path, with the queue
// head spinning on the lock word itself. It is FIFO once queued and
// NUMA-oblivious: consecutive holders come from arbitrary sockets, so the
// lock word and critical-section data keep crossing the interconnect.
//
// Lock word layout: bit0 = locked, bit8 = pending. The tail lives in a
// second word on the same cache line (the real qspinlock packs it into the
// same 4-byte word; sharing the line reproduces the same interference).
type QSpinLock struct {
	glock sim.Word
	tail  sim.Word
	nodes *nodeTable
	cnt   Counters
}

const (
	qslLocked  = 1
	qslPending = 1 << 8
)

// NewQSpinLock creates a stock qspinlock.
func NewQSpinLock(e *sim.Engine, tag string) *QSpinLock {
	ws := e.Mem().Alloc(tag, 2)
	l := &QSpinLock{glock: ws[0], tail: ws[1]}
	l.nodes = newNodeTable(e, tag, qWords, &l.cnt)
	return l
}

func (l *QSpinLock) Name() string { return "qspinlock" }

// Lock implements fast path (uncontended CAS), pending midpath (first
// waiter spins on the lock word) and MCS slow path (further waiters queue).
func (l *QSpinLock) Lock(t *sim.Thread) {
	// Fast path.
	if t.CAS(l.glock, 0, qslLocked) {
		l.cnt.Acquires++
		return
	}
	// Pending midpath: if there is no queue and no pending waiter, become
	// the pending waiter and spin for the locked bit.
	v := t.Load(l.glock)
	if v == qslLocked && t.Load(l.tail) == 0 {
		if t.CAS(l.glock, qslLocked, qslLocked|qslPending) {
			t.SpinUntil(l.glock, func(x uint64) bool { return x&qslLocked == 0 })
			// Clear pending, set locked.
			for {
				x := t.Load(l.glock)
				if t.CAS(l.glock, x, (x&^uint64(qslPending))|qslLocked) {
					l.cnt.Acquires++
					return
				}
			}
		}
	}
	// Slow path: MCS queue.
	n := l.nodes.get(t)
	t.Store(n[qStatus], mcsWaiting)
	t.Store(n[qNext], 0)
	prev := t.Swap(l.tail, handle(t))
	if prev != 0 {
		pn := l.nodes.get(threadOf(t.Engine(), prev))
		t.Store(pn[qNext], handle(t))
		t.SpinUntil(n[qStatus], func(x uint64) bool { return x == mcsGranted })
	}
	// Head of queue: wait for locked+pending to clear, then take the lock.
	for {
		x := t.Load(l.glock)
		if x&(qslLocked|qslPending) == 0 && t.CAS(l.glock, x, x|qslLocked) {
			break
		}
		t.WatchWait(l.glock, x)
	}
	// Dequeue: hand head role to successor or reset the tail.
	next := t.Load(n[qNext])
	if next == 0 {
		if !t.CAS(l.tail, handle(t), 0) {
			next = t.SpinUntil(n[qNext], func(x uint64) bool { return x != 0 })
		}
	}
	if next != 0 {
		sn := l.nodes.get(threadOf(t.Engine(), next))
		t.Store(sn[qStatus], mcsGranted)
	}
	l.cnt.Acquires++
}

// Unlock clears the locked byte.
func (l *QSpinLock) Unlock(t *sim.Thread) {
	t.StorePartial(l.glock, 0xff, 0)
}

// TryLock attempts the fast path once.
func (l *QSpinLock) TryLock(t *sim.Thread) bool {
	if t.Load(l.glock) == 0 && t.CAS(l.glock, 0, qslLocked) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *QSpinLock) Stats() *Counters { return &l.cnt }

// QSpinLockMaker registers the stock Linux qspinlock.
func QSpinLockMaker() Maker {
	return Maker{
		Name: "stock-qspinlock",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewQSpinLock(e, tag) },
		Footprint: func(int) Footprint {
			// 4 bytes in the kernel; per-CPU MCS nodes are preallocated,
			// charged here as the waiter node.
			return Footprint{PerLock: 4, PerWaiter: 16, PerHolder: 0}
		},
	}
}
