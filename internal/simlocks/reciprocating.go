package simlocks

import "shfllock/internal/sim"

// Reciprocating queue-node field offsets.
const (
	rGate = iota // grant flag: 1 = you hold the lock
	rNext        // LIFO push chain: the node pushed just before this one
	rSeg         // written by the granter: this segment's stop boundary
	recipWords
)

// recipHeld is the sentinel value swapped into the arrivals word when a
// holder detaches a segment: "the lock is held and no arrivals since the
// detach". It is a value, not a node — it is only ever compared, never
// dereferenced — so it costs the lock nothing.
const recipHeld = ^uint64(0)

// Recip is the Reciprocating Lock of Dice & Kogan (arXiv:2501.02380): a
// single-word lock whose waiters push themselves onto a LIFO arrivals
// stack (one swap, constant time, no spinning on the arrival path). When
// the holder's current admission segment runs dry, it detaches the whole
// arrivals stack with one swap and serves it top-first — i.e. in the
// *reverse* of arrival order. Consecutive segments therefore alternate
// direction relative to arrival ("reciprocating", palindromic admission),
// which bounds bypass: a waiter is overtaken only by threads that arrived
// within its own segment window, at most once, so worst-case delay is
// bounded at 2N-1 entries while the common path stays as cheap as a TAS.
//
// Within a segment the lock is handed node-to-node along the push chain
// (each node's rNext points at the previously pushed node, which is next
// in service order), so handoff is local spinning like MCS. The holder
// keeps its node through the critical section: a node's rNext is only read
// by its own owner at unlock, and boundary values (rSeg, chain bottoms)
// are compared but never dereferenced, which is what makes per-thread node
// reuse safe with no reclamation protocol.
type Recip struct {
	arr   sim.Word
	nodes *nodeTable
	cnt   Counters
}

// NewRecip creates a Reciprocating lock.
func NewRecip(e *sim.Engine, tag string) *Recip {
	l := &Recip{arr: e.Mem().AllocWord(tag)}
	l.nodes = newNodeTable(e, tag, recipWords, &l.cnt)
	return l
}

func (l *Recip) Name() string { return "reciprocating" }

func (l *Recip) node(t *sim.Thread, h uint64) []sim.Word {
	return l.nodes.get(threadOf(t.Engine(), h))
}

// Lock pushes the caller onto the arrivals stack with one swap. A zero
// predecessor means the lock was free ("era start"); otherwise the caller
// spins on its own gate until a holder serves its segment.
func (l *Recip) Lock(t *sim.Thread) {
	n := l.nodes.get(t)
	t.Store(n[rGate], 0)
	prev := t.Swap(l.arr, handle(t))
	t.Store(n[rNext], prev)
	if prev == 0 {
		// Era start: empty segment; rSeg == 0 also marks us as the era
		// starter, whose release expectation is its own handle.
		t.Store(n[rSeg], 0)
		l.cnt.Acquires++
		return
	}
	t.SpinUntil(n[rGate], func(v uint64) bool { return v == 1 })
	l.cnt.Acquires++
}

// Unlock grants the next node of the current segment, or — segment
// exhausted — releases the lock, or detaches the arrivals stack as the
// next segment and grants its top (the most recent arrival).
func (l *Recip) Unlock(t *sim.Thread) {
	n := l.nodes.get(t)
	h := handle(t)
	stop := t.Load(n[rSeg])
	// home is the value the arrivals word held when this sub-era began:
	// the era starter's own handle, or the recipHeld sentinel after any
	// detach. rSeg == 0 identifies the era starter (granted holders always
	// receive a non-zero boundary).
	home := recipHeld
	if stop == 0 {
		home, stop = h, 0
	}
	next := t.Load(n[rNext])
	if next != stop {
		// Serve the segment: our push-chain predecessor is next in the
		// reversed order. Pass the boundary along, then open its gate.
		sn := l.node(t, next)
		t.Store(sn[rSeg], stop)
		t.Store(sn[rGate], 1)
		return
	}
	if t.CAS(l.arr, home, 0) {
		return // no arrivals since home was installed: lock is free
	}
	// New arrivals piled up: detach them as the next segment and grant the
	// top. The chain bottoms out at a node whose rNext equals home, which
	// becomes the new segment's stop boundary.
	top := t.Swap(l.arr, recipHeld)
	tn := l.node(t, top)
	t.Store(tn[rSeg], home)
	t.Store(tn[rGate], 1)
}

// TryLock is a single CAS from the free state (becoming the era starter).
func (l *Recip) TryLock(t *sim.Thread) bool {
	n := l.nodes.get(t)
	if t.Load(l.arr) != 0 {
		l.cnt.TryFail++
		return false
	}
	if t.CAS(l.arr, 0, handle(t)) {
		t.Store(n[rNext], 0)
		t.Store(n[rSeg], 0)
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *Recip) Stats() *Counters { return &l.cnt }

// RecipMaker registers the Reciprocating lock.
func RecipMaker() Maker {
	return Maker{
		Name: "reciprocating",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewRecip(e, tag) },
		Footprint: func(int) Footprint {
			// One arrivals word per lock (the held sentinel is a value, not
			// memory); waiters hold a 3-word node and keep it through the
			// critical section.
			return Footprint{PerLock: 8, PerWaiter: 24, PerHolder: 24}
		},
	}
}
