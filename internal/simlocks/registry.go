package simlocks

// AllMutexMakers returns every mutual-exclusion lock the suite implements,
// in a stable order.
func AllMutexMakers() []Maker {
	return []Maker{
		TASMaker(),
		TicketMaker(),
		MCSMaker(),
		QSpinLockMaker(),
		CNAMaker(),
		CohortMaker(),
		HMCSMaker(),
		CSTMaker(),
		MalthusianMaker(),
		MCSTPMaker(),
		PthreadMaker(),
		MutexeeMaker(),
		LinuxMutexMaker(),
		ShflLockNBMaker(),
		ShflLockBMaker(),
	}
}

// AllRWMakers returns every readers-writer lock the suite implements.
func AllRWMakers() []RWMaker {
	return []RWMaker{
		RWSemMaker(),
		CohortRWMaker(),
		CSTRWMaker(),
		ShflRWMaker(),
		BravoMaker(RWSemMaker()),
		BravoMaker(ShflRWMaker()),
	}
}

// MakerByName finds a mutex maker by its name.
func MakerByName(name string) (Maker, bool) {
	for _, m := range AllMutexMakers() {
		if m.Name == name {
			return m, true
		}
	}
	switch name {
	case "mcs-heap":
		return MCSHeapMaker(), true
	case "cna-heap":
		return CNAHeapMaker(), true
	case "hmcs-heap":
		return HMCSHeapMaker(), true
	case "shfllock-b-numa":
		return ShflLockBNUMAStealMaker(), true
	case "shfl-base":
		return ShflLockAblationMaker(0), true
	case "shfl+shuffler":
		return ShflLockAblationMaker(1), true
	case "shfl+shufflers":
		return ShflLockAblationMaker(2), true
	case "shfl+qlast":
		return ShflLockAblationMaker(3), true
	case "shfllock-prio":
		return ShflLockPriorityMaker(), true
	}
	return Maker{}, false
}

// RWMakerByName finds a readers-writer maker by its name.
func RWMakerByName(name string) (RWMaker, bool) {
	for _, m := range AllRWMakers() {
		if m.Name == name {
			return m, true
		}
	}
	return RWMaker{}, false
}
