package simlocks

import "sort"

// AllMutexMakers returns every mutual-exclusion lock the suite implements,
// in a stable order. New algorithms are appended at the end so Table 1 and
// other maker-iterating outputs grow rows without renumbering old ones.
func AllMutexMakers() []Maker {
	return []Maker{
		TASMaker(),
		TicketMaker(),
		MCSMaker(),
		QSpinLockMaker(),
		CNAMaker(),
		CohortMaker(),
		HMCSMaker(),
		CSTMaker(),
		MalthusianMaker(),
		MCSTPMaker(),
		PthreadMaker(),
		MutexeeMaker(),
		LinuxMutexMaker(),
		ShflLockNBMaker(),
		ShflLockBMaker(),
		FissileMaker(),
		HapaxMaker(),
		RecipMaker(),
	}
}

// AllRWMakers returns every readers-writer lock the suite implements.
func AllRWMakers() []RWMaker {
	return []RWMaker{
		RWSemMaker(),
		CohortRWMaker(),
		CSTRWMaker(),
		ShflRWMaker(),
		BravoMaker(RWSemMaker()),
		BravoMaker(ShflRWMaker()),
	}
}

// extraMakers are the variant locks reachable by name but kept out of
// AllMutexMakers (heap-node deployments, ablation stages, policy
// variants): they would double Table 1 and every sweep without adding a
// distinct algorithm.
var extraMakers = map[string]func() Maker{
	"mcs-heap":        MCSHeapMaker,
	"cna-heap":        CNAHeapMaker,
	"hmcs-heap":       HMCSHeapMaker,
	"shfllock-b-numa": ShflLockBNUMAStealMaker,
	"shfl-base":       func() Maker { return ShflLockAblationMaker(0) },
	"shfl+shuffler":   func() Maker { return ShflLockAblationMaker(1) },
	"shfl+shufflers":  func() Maker { return ShflLockAblationMaker(2) },
	"shfl+qlast":      func() Maker { return ShflLockAblationMaker(3) },
	"shfllock-prio":   ShflLockPriorityMaker,
}

// ExtraMutexNames returns the names of the variant makers (sorted), so
// registries above this package can enumerate everything reachable by
// name without a second hand-kept list.
func ExtraMutexNames() []string {
	out := make([]string, 0, len(extraMakers))
	for name := range extraMakers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MakerByName finds a mutex maker by its name.
func MakerByName(name string) (Maker, bool) {
	for _, m := range AllMutexMakers() {
		if m.Name == name {
			return m, true
		}
	}
	if f, ok := extraMakers[name]; ok {
		return f(), true
	}
	return Maker{}, false
}

// RWMakerByName finds a readers-writer maker by its name.
func RWMakerByName(name string) (RWMaker, bool) {
	for _, m := range AllRWMakers() {
		if m.Name == name {
			return m, true
		}
	}
	return RWMaker{}, false
}
