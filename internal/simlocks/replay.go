package simlocks

import (
	"fmt"

	"shfllock/internal/shuffle"
	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

// ReplayShuffleSnapshot materializes the given queue snapshot on the
// simulator substrate, runs one shuffling round over it, and returns the
// engine's decision trace. The differential substrate test compares this
// byte-for-byte against the same snapshot replayed on the native substrate
// — the regression net that catches one implementation drifting from the
// other.
//
// Snapshot node i becomes thread i's queue node, so trace IDs are i+1 on
// both substrates. The TAS lock is held and no waiter is granted head
// status mid-round, so the round's exit conditions never fire; statuses
// must not include Parked (there is no parked thread to wake).
func ReplayShuffleSnapshot(snap shuffle.Snapshot) []string {
	pol := shuffle.ByName(snap.Policy)
	if pol == nil {
		panic(fmt.Sprintf("simlocks: unknown shuffle policy %q", snap.Policy))
	}
	nn := len(snap.Nodes)
	if nn == 0 {
		return nil
	}
	sockets := 1
	for _, nd := range snap.Nodes {
		if int(nd.Socket)+1 > sockets {
			sockets = int(nd.Socket) + 1
		}
	}
	// One core per snapshot node on every socket, so the shuffler can be
	// pinned to its snapshot socket and each node thread gets its own core.
	topo := topology.Machine{Sockets: sockets, CoresPerSocket: nn}
	e := sim.NewEngine(sim.Config{Topo: topo, Seed: 1, HardStop: 1_000_000_000})
	l := newShfl(e, "replay", snap.Blocking)
	l.SetPolicy(pol, "init", 0)

	var trace shuffle.Trace
	// The shuffler must run on its snapshot socket: ShufflerSocket is the
	// thread's own placement, not a queue-node field.
	core := int(snap.Nodes[0].Socket) * nn
	e.Spawn("shuffler", core, func(t *sim.Thread) {
		// Materialize the snapshot. The writer identity does not matter for
		// the decisions (only field values do), so the shuffler thread
		// populates every node itself.
		t.Store(l.glock, shLocked)
		for i, nd := range snap.Nodes {
			w := l.node(uint64(i + 1))
			t.Store(w[shStatus], nd.Status)
			t.Store(w[shSocket], nd.Socket)
			t.Store(w[shPrio], nd.Prio)
			t.Store(w[shBatch], nd.Batch)
			t.Store(w[shShuffler], 0)
			t.Store(w[shLastHint], 0)
			if i+1 < nn {
				t.Store(w[shNext], uint64(i+2))
			} else {
				t.Store(w[shNext], 0)
			}
		}
		if snap.Hint > 0 {
			t.Store(l.node(1)[shLastHint], uint64(snap.Hint+1))
		}
		shuffle.Run(simSub{l, t}, pol, 1,
			shuffle.Input{Blocking: snap.Blocking, VNext: snap.VNext, FromRole: true, Trace: &trace})
	})
	// The remaining threads exist only to own queue nodes (handles resolve
	// through the thread table); they never execute lock code.
	for i := 1; i < nn; i++ {
		c := (core + i) % topo.Cores()
		e.Spawn("node", c, func(t *sim.Thread) {})
	}
	e.Run()
	return trace.Lines
}
