package simlocks

import "shfllock/internal/sim"

// rwsem count-word layout.
const (
	rwsWriter  = 1      // writer holds the lock
	rwsWaiters = 1 << 1 // wait list non-empty
	rwsReader  = 1 << 8 // one active reader
)

type rwsWaiter struct {
	t      *sim.Thread
	writer bool
	// granted is set by the waker before unparking: the lock (or reader
	// slot) has already been transferred.
	granted bool
}

// RWSem models the stock Linux readers-writer semaphore: a single count
// word encoding the writer bit and active-reader count, plus one FIFO wait
// list holding both readers and writers. Writers spin briefly then park;
// readers park whenever a writer is active or queued. Wakeups batch all
// readers at the head of the list. The cache-line pathologies the paper
// calls out are emergent: every reader bounce hits the one count word, and
// parked waiters resume through the wake latency.
type RWSem struct {
	e     *sim.Engine
	count sim.Word
	q     []*rwsWaiter
	// waking serializes wakeHead: its body performs charged memory
	// operations, so two threads could otherwise interleave on q.
	waking bool
	cnt    Counters
}

// NewRWSem creates a stock rwsem.
func NewRWSem(e *sim.Engine, tag string) *RWSem {
	return &RWSem{e: e, count: e.Mem().AllocWord(tag)}
}

func (l *RWSem) Name() string { return "stock-rwsem" }

// DebugState reports internal state for deadlock diagnostics.
func (l *RWSem) DebugState() (count uint64, queued []int) {
	count = l.e.Mem().Peek(l.count)
	for _, w := range l.q {
		queued = append(queued, w.t.ID())
	}
	return
}

// Stats returns the lock's counters.
func (l *RWSem) Stats() *Counters { return &l.cnt }

func active(v uint64) uint64 { return v &^ uint64(rwsWaiters) }

// RLock takes a reader slot, parking behind writers.
func (l *RWSem) RLock(t *sim.Thread) {
	v := t.Add(l.count, rwsReader)
	if v&(rwsWriter|rwsWaiters) == 0 {
		return
	}
	t.Add(l.count, ^uint64(rwsReader)+1)
	l.slowpath(t, false)
}

// RUnlock releases a reader slot and wakes the head waiter when the lock
// drains.
func (l *RWSem) RUnlock(t *sim.Thread) {
	v := t.Add(l.count, ^uint64(rwsReader)+1)
	if active(v) == 0 && v&rwsWaiters != 0 {
		l.wakeHead(t)
	}
}

// Lock acquires the writer side: fast CAS, brief spin, then park.
func (l *RWSem) Lock(t *sim.Thread) {
	if t.CAS(l.count, 0, rwsWriter) {
		l.cnt.Acquires++
		return
	}
	// Optimistic spinning: the kernel spins while the core is not
	// over-subscribed and need_resched is clear (with reader owners there
	// is no owner to watch, so the spin is time-bounded).
	deadline := t.Now() + 40_000
	for t.Now() < deadline && !(t.NeedResched() && t.NrRunning() > 1) {
		v := t.Load(l.count)
		if active(v) == 0 && t.CAS(l.count, v, v|rwsWriter) {
			l.cnt.Acquires++
			return
		}
		t.Delay(200)
	}
	l.slowpath(t, true)
	l.cnt.Acquires++
}

// Unlock releases the writer and wakes the head of the wait list.
func (l *RWSem) Unlock(t *sim.Thread) {
	v := t.Add(l.count, ^uint64(rwsWriter)+1)
	if active(v) == 0 && v&rwsWaiters != 0 {
		l.wakeHead(t)
	}
}

// slowpath enqueues and parks until granted by a waker.
func (l *RWSem) slowpath(t *sim.Thread, writer bool) {
	w := &rwsWaiter{t: t, writer: writer}
	l.q = append(l.q, w)
	// Publish the waiters bit.
	for {
		v := t.Load(l.count)
		if v&rwsWaiters != 0 || t.CAS(l.count, v, v|rwsWaiters) {
			break
		}
	}
	// Self-service: an unlock may have drained before we enqueued.
	if v := t.Load(l.count); active(v) == 0 {
		l.wakeHead(t)
	}
	for !w.granted {
		l.cnt.Parks++
		t.Park()
	}
}

// wakeHead grants the lock to the first waiter — or the whole batch of
// consecutive readers — transferring ownership before unparking. Only one
// thread runs the drain at a time; anyone arriving meanwhile leaves, and
// the drainer re-checks for missed work before returning.
func (l *RWSem) wakeHead(t *sim.Thread) {
	for {
		if l.waking {
			return
		}
		l.waking = true
		l.drain(t)
		l.waking = false
		// A release may have happened while we held the waking flag.
		if len(l.q) > 0 && active(l.e.Mem().Peek(l.count)) == 0 {
			continue
		}
		return
	}
}

func (l *RWSem) drain(t *sim.Thread) {
	if len(l.q) == 0 {
		// Clear the stale waiters bit.
		for {
			v := t.Load(l.count)
			if v&rwsWaiters == 0 || t.CAS(l.count, v, v&^uint64(rwsWaiters)) {
				return
			}
		}
	}
	if l.q[0].writer {
		// Grant the writer: requires the lock to still be free.
		for {
			v := t.Load(l.count)
			if active(v) != 0 {
				return // someone took it; their release will wake us
			}
			nv := v | rwsWriter
			if len(l.q) == 1 {
				nv &^= uint64(rwsWaiters)
			}
			if t.CAS(l.count, v, nv) {
				break
			}
		}
		w := l.q[0]
		l.q = l.q[1:]
		w.granted = true
		l.cnt.WakeupsInCS++
		t.Unpark(w.t)
		l.rearmWaitersBit(t)
		return
	}
	// Grant every reader at the head of the list. Count the batch after
	// winning the count-word update so the prefix cannot go stale.
	for {
		n := 0
		for n < len(l.q) && !l.q[n].writer {
			n++
		}
		v := t.Load(l.count)
		if v&rwsWriter != 0 || n == 0 {
			return
		}
		nv := v + uint64(n)*rwsReader
		if n == len(l.q) {
			nv &^= uint64(rwsWaiters)
		}
		if !t.CAS(l.count, v, nv) {
			continue
		}
		batch := append([]*rwsWaiter(nil), l.q[:n]...)
		l.q = l.q[n:]
		for _, w := range batch {
			w.granted = true
			l.cnt.WakeupsInCS++
			t.Unpark(w.t)
		}
		l.rearmWaitersBit(t)
		return
	}
}

// rearmWaitersBit restores the waiters bit if a waiter enqueued while a
// grant was concurrently clearing it (the enqueuer saw the bit still set
// and skipped publishing).
func (l *RWSem) rearmWaitersBit(t *sim.Thread) {
	for len(l.q) > 0 {
		v := t.Load(l.count)
		if v&rwsWaiters != 0 || t.CAS(l.count, v, v|rwsWaiters) {
			return
		}
	}
}

// RWSemMaker registers the stock rwsem.
func RWSemMaker() RWMaker {
	return RWMaker{
		Name: "stock-rwsem",
		Kind: Blocking,
		New:  func(e *sim.Engine, tag string) RWLock { return NewRWSem(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 40, PerWaiter: 32, PerHolder: 0}
		},
	}
}
