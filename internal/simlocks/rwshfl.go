package simlocks

import (
	"shfllock/internal/sim"
)

// ShflLock-RW count-word layout (§4.2.3): a writer byte (WB), a writer-
// waiting bit (WWb) and a centralized reader count.
const (
	rwWB    = 1       // writer holds the lock
	rwWWb   = 1 << 8  // a writer is waiting for readers to drain
	rwRUnit = 1 << 16 // one reader
)

// ShflRW is the blocking readers-writer ShflLock: a blocking ShflLock
// (wlock) ordering the slow path, plus one combined word holding the
// reader count and writer state. The reader indicator is centralized —
// 8 bytes, not per-socket — which is the memory-versus-read-throughput
// trade Figure 9(c) and Figure 10(c) examine.
type ShflRW struct {
	e     *sim.Engine
	count sim.Word
	wlock *ShflLock
	cnt   Counters
}

// NewShflRW creates a blocking readers-writer ShflLock.
func NewShflRW(e *sim.Engine, tag string) *ShflRW {
	return &ShflRW{
		e:     e,
		count: e.Mem().AllocWord(tag + "/count"),
		wlock: NewShflLockB(e, tag+"/wlock"),
	}
}

func (l *ShflRW) Name() string { return "shfllock-rw" }

// Stats returns the lock's counters.
func (l *ShflRW) Stats() *Counters { return &l.cnt }

// RLock optimistically joins the readers; behind a writer it orders itself
// through the wlock.
func (l *ShflRW) RLock(t *sim.Thread) {
	v := t.Add(l.count, rwRUnit)
	if v&(rwWB|rwWWb) == 0 {
		return
	}
	t.Add(l.count, ^uint64(rwRUnit)+1)
	l.wlock.Lock(t)
	// Holding wlock: announce ourselves, then wait for the writer to
	// leave. New writers queue behind us on wlock.
	t.Add(l.count, rwRUnit)
	for {
		v := t.Load(l.count)
		if v&rwWB == 0 {
			break
		}
		t.WatchWait(l.count, v)
	}
	l.wlock.Unlock(t)
}

// RUnlock drops the reader count.
func (l *ShflRW) RUnlock(t *sim.Thread) {
	t.Add(l.count, ^uint64(rwRUnit)+1)
}

// Lock acquires the writer side.
func (l *ShflRW) Lock(t *sim.Thread) {
	if t.CAS(l.count, 0, rwWB) {
		l.cnt.Acquires++
		return
	}
	l.wlock.Lock(t)
	// Stop new readers, wait for existing ones to drain.
	t.FetchOr(l.count, rwWWb)
	for {
		v := t.Load(l.count)
		// Wait for existing readers to drain and for a fast-path writer
		// (which never takes wlock) to leave.
		if v>>16 == 0 && v&rwWB == 0 {
			// Atomically clear WWb and set WB.
			if t.CAS(l.count, v, (v&^uint64(rwWWb))|rwWB) {
				break
			}
			continue
		}
		t.WatchWait(l.count, v)
	}
	l.wlock.Unlock(t)
	l.cnt.Acquires++
}

// Unlock releases the writer byte.
func (l *ShflRW) Unlock(t *sim.Thread) {
	t.FetchAnd(l.count, ^uint64(rwWB))
}

// ShflRWMaker registers the readers-writer ShflLock.
func ShflRWMaker() RWMaker {
	return RWMaker{
		Name: "shfllock-rw",
		Kind: Blocking,
		New:  func(e *sim.Engine, tag string) RWLock { return NewShflRW(e, tag) },
		Footprint: func(int) Footprint {
			// 8-byte indicator + 12-byte wlock.
			return Footprint{PerLock: 20, PerWaiter: 28, PerHolder: 0}
		},
	}
}

// PerSocketRW builds the hierarchical readers-writer locks the paper
// compares against (Cohort-RW, CST-RW): a per-socket reader indicator —
// one padded cache line per socket — over any mutual-exclusion lock for
// writers. Reads scale beautifully (each socket's readers share a local
// line); the cost is ~128 bytes per socket per lock instance.
type PerSocketRW struct {
	e       *sim.Engine
	name    string
	readers []sim.Word // per-socket padded reader counts
	wflag   sim.Word   // writer-active flag
	mutex   Lock
	cnt     Counters
}

// NewPerSocketRW wraps mutex with a per-socket read indicator.
func NewPerSocketRW(e *sim.Engine, tag, name string, mutex Lock) *PerSocketRW {
	return &PerSocketRW{
		e:       e,
		name:    name,
		readers: e.Mem().AllocPadded(tag+"/readers", e.Topology().Sockets),
		wflag:   e.Mem().AllocWord(tag + "/wflag"),
		mutex:   mutex,
	}
}

func (l *PerSocketRW) Name() string { return l.name }

// Stats returns the lock's counters.
func (l *PerSocketRW) Stats() *Counters { return &l.cnt }

// RLock raises the socket-local indicator, backing off while a writer is
// active.
func (l *PerSocketRW) RLock(t *sim.Thread) {
	r := l.readers[t.Socket()]
	for {
		t.Add(r, 1)
		v := t.Load(l.wflag)
		if v == 0 {
			return
		}
		t.Add(r, ^uint64(0))
		t.SpinWhileEq(l.wflag, 1)
	}
}

// RUnlock lowers the socket-local indicator.
func (l *PerSocketRW) RUnlock(t *sim.Thread) {
	t.Add(l.readers[t.Socket()], ^uint64(0))
}

// Lock acquires the writer mutex, raises the writer flag, and waits for
// every socket's readers to drain.
func (l *PerSocketRW) Lock(t *sim.Thread) {
	l.mutex.Lock(t)
	t.Store(l.wflag, 1)
	for _, r := range l.readers {
		for {
			v := t.Load(r)
			if v == 0 {
				break
			}
			t.WatchWait(r, v)
		}
	}
	l.cnt.Acquires++
}

// Unlock lowers the writer flag and releases the mutex.
func (l *PerSocketRW) Unlock(t *sim.Thread) {
	t.Store(l.wflag, 0)
	l.mutex.Unlock(t)
}

// CohortRWMaker registers the Cohort readers-writer lock (per-socket
// indicators over a cohort mutex) — "Cohort" in Figures 1 and 9(b,c).
func CohortRWMaker() RWMaker {
	return RWMaker{
		Name: "cohort-rw",
		Kind: NonBlocking,
		New: func(e *sim.Engine, tag string) RWLock {
			return NewPerSocketRW(e, tag, "cohort-rw", NewCohort(e, tag+"/w"))
		},
		Footprint: func(sockets int) Footprint {
			return Footprint{PerLock: 128*sockets + 128*sockets + 128, PerWaiter: 24, PerHolder: 24}
		},
	}
}

// CSTRWMaker registers the CST readers-writer lock: per-socket indicators
// over a CST mutex, with the per-socket structures dynamically allocated.
func CSTRWMaker() RWMaker {
	allocFor := allocatorPerEngine()
	return RWMaker{
		Name: "cst-rw",
		Kind: Blocking,
		New: func(e *sim.Engine, tag string) RWLock {
			return NewPerSocketRW(e, tag, "cst-rw", NewCST(e, allocFor(e), tag+"/w"))
		},
		Footprint: func(sockets int) Footprint {
			return Footprint{PerLock: 128*sockets + cstSnodeBytes*sockets + 32, PerWaiter: 24, PerHolder: 0, Dynamic: true}
		},
	}
}
