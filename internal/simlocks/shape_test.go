package simlocks

import (
	"fmt"
	"testing"

	"shfllock/internal/topology"
)

// TestShapeExploration prints throughput curves for manual calibration; it
// is skipped unless -run ShapeExploration is requested explicitly with -v.
func TestShapeExploration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration helper")
	}
	topo := topology.Reference()
	for _, mk := range []Maker{TASMaker(), TicketMaker(), MCSMaker(), QSpinLockMaker(), CNAMaker(), ShflLockNBMaker(), ShflLockBMaker()} {
		fmt.Printf("%-16s", mk.Name)
		for _, n := range []int{1, 2, 8, 24, 48, 96, 192} {
			tp := throughput(t, mk, topo, n, 2000/n+20)
			fmt.Printf(" %7.0f", tp*1000)
		}
		fmt.Println()
	}
}
