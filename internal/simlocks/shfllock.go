package simlocks

import (
	"fmt"

	"shfllock/internal/sim"
)

// shflTrace, when non-nil, receives protocol events for debugging.
var shflTrace []string

func strace(format string, args ...any) {
	if shflTrace != nil {
		shflTrace = append(shflTrace, fmt.Sprintf(format, args...))
		if len(shflTrace) > 400 {
			shflTrace = shflTrace[200:]
		}
	}
}

// ShflLock queue-node status values (Figures 4 and 6 of the paper).
const (
	sWaiting  = 0 // spinning on the node, may park (blocking variant)
	sReady    = 1 // at the head of the queue; go take the TAS lock
	sParked   = 2 // descheduled; must be woken by SWAP/CAS + unpark
	sSpinning = 3 // marked by a shuffler: keep spinning, lock is near
)

// ShflLock queue-node field offsets.
const (
	shStatus = iota
	shNext
	shSocket
	shBatch
	shShuffler
	shLastHint // +qlast optimization: where the previous shuffler stopped
	shPrio     // waiter priority, used by the priority policy (§7)
	shWords
)

// glock bit layout: byte 0 = locked, bit 8 = no-stealing.
const (
	shLocked  = 1
	shNoSteal = 1 << 8
)

// maxShuffles caps how many waiters one socket may batch before the
// shuffler must stand down, bounding unfairness to remote sockets
// (MAX_SHUFFLES = 1024 in the paper's pseudocode). Long batches make the
// fairness factor look high over millisecond measurement windows — the
// paper measures 30-second runs — but they are what keeps throughput flat
// under over-subscription.
const maxShuffles = 1024

// shufflePoll paces a shuffler's retry loop while it has not yet found a
// same-socket successor (the real implementation busy-polls the queue).
const shufflePoll = 300

// ShflLock is the paper's lock: a TAS lock guarding the critical section
// plus an MCS-style waiter queue whose *waiters* reorder it (shuffling)
// according to a policy — here NUMA grouping, plus wakeup hints in the
// blocking variant. The lock state is decoupled from the queue: the holder
// releases its queue node before entering the critical section, TryLock is
// a single CAS, and the TAS path permits stealing.
//
// Policy knobs reproduce the factor analysis of Figure 11(e):
//
//	PolicyShuffle=false                 -> "Base" (NUMA-oblivious)
//	PassRole=false                      -> "+Shuffler" (head shuffles only)
//	PassRole=true                       -> "+Shufflers"
//	OptQlast=true                       -> "+qlast"
type ShflLock struct {
	e     *sim.Engine
	glock sim.Word
	tail  sim.Word
	nodes *nodeTable

	// Blocking selects the ShflLock^B behaviour of Figure 6/7: waiters
	// park under over-subscription, shufflers wake sleepers, stealing
	// stays enabled.
	Blocking bool

	PolicyShuffle bool
	PassRole      bool
	OptQlast      bool

	// StealLocalOnly restricts TAS stealing to threads on the same socket
	// as the previous holder (the "ShflLock (NUMA)" variant of Fig 11d).
	StealLocalOnly bool
	lastSocket     sim.Word

	// PolicyMatch, when non-nil, replaces the NUMA grouping predicate:
	// the shuffler groups candidate waiters for which it returns true
	// directly behind its shuffled chain. This is the §7 extension point
	// ("shuffling ... gives us the freedom to design and multiplex new
	// policies"); see ShflLockPriorityMaker for a priority policy that
	// counters priority inversion.
	PolicyMatch func(t *sim.Thread, shuffler, candidate []sim.Word) bool

	// prios holds per-thread priorities for the priority policy.
	prios map[int]uint64

	// roleOracle, when enabled, tracks which thread handle holds the
	// shuffler role and panics on a duplicate (debug assertion only; it
	// is engine metadata, not simulated state).
	roleOracle bool
	roleHolder uint64
	cnt        Counters
}

// NewShflLockNB creates the non-blocking ShflLock with all optimizations.
func NewShflLockNB(e *sim.Engine, tag string) *ShflLock {
	return newShfl(e, tag, false)
}

// NewShflLockB creates the blocking ShflLock with all optimizations.
func NewShflLockB(e *sim.Engine, tag string) *ShflLock {
	return newShfl(e, tag, true)
}

func newShfl(e *sim.Engine, tag string, blocking bool) *ShflLock {
	ws := e.Mem().Alloc(tag, 2)
	l := &ShflLock{
		e: e, glock: ws[0], tail: ws[1],
		Blocking:      blocking,
		PolicyShuffle: true,
		PassRole:      true,
		OptQlast:      true,
	}
	l.nodes = newNodeTable(e, tag, shWords, &l.cnt)
	return l
}

func (l *ShflLock) Name() string {
	if l.Blocking {
		return "shfllock-b"
	}
	return "shfllock-nb"
}

// Stats returns the lock's counters.
func (l *ShflLock) Stats() *Counters { return &l.cnt }

// giveRole is the single point where the shuffler flag is set; the oracle
// asserts role uniqueness.
func (l *ShflLock) giveRole(t *sim.Thread, to uint64, why string) {
	if l.roleOracle {
		if l.roleHolder != 0 && l.roleHolder != to && l.roleHolder != handle(t) {
			panic(fmt.Sprintf("shfllock: duplicate role: T%d gives role to T%d (%s) while T%d holds it\n%v",
				t.ID(), to-1, why, l.roleHolder-1, shflTrace))
		}
		l.roleHolder = to
		strace("t=%d T%d role -> T%d (%s)", t.Now(), t.ID(), to-1, why)
	}
	t.Store(l.node(to)[shShuffler], 1)
}

// takeRole is called at shuffle start when the flag is consumed.
func (l *ShflLock) takeRole(t *sim.Thread) {
	if l.roleOracle {
		if l.roleHolder != 0 && l.roleHolder != handle(t) {
			panic(fmt.Sprintf("shfllock: T%d shuffles but role is at T%d\n%v", t.ID(), l.roleHolder-1, shflTrace))
		}
		l.roleHolder = handle(t)
	}
}

func (l *ShflLock) node(h uint64) []sim.Word {
	return l.nodes.get(threadOf(l.e, h))
}

// trySteal attempts the TAS fast path (also the stealing path).
func (l *ShflLock) trySteal(t *sim.Thread) bool {
	if t.Load(l.glock) != 0 {
		return false
	}
	if l.StealLocalOnly && l.lastSocket != 0 {
		if t.Load(l.lastSocket) != uint64(t.Socket())+1 && l.e.Mem().Peek(l.tail) != 0 {
			return false
		}
	}
	if t.CAS(l.glock, 0, shLocked) {
		if l.StealLocalOnly && l.lastSocket != 0 {
			t.Store(l.lastSocket, uint64(t.Socket())+1)
		}
		if l.e.Mem().Peek(l.tail) != 0 {
			l.cnt.Steals++
		}
		return true
	}
	return false
}

// Lock acquires the lock (Figure 4 spin_lock / Figure 6 mutex_lock).
func (l *ShflLock) Lock(t *sim.Thread) {
	if l.trySteal(t) {
		l.cnt.Acquires++
		return
	}

	// Join the waiter queue; the qnode lives on the waiter's stack.
	n := l.nodes.get(t)
	t.Store(n[shStatus], sWaiting)
	t.Store(n[shNext], 0)
	t.Store(n[shSocket], uint64(t.Socket()))
	t.Store(n[shBatch], 0)
	t.Store(n[shShuffler], 0)
	t.Store(n[shLastHint], 0)
	if l.prios != nil {
		t.Store(n[shPrio], l.prios[t.ID()])
	}

	prev := t.Swap(l.tail, handle(t))
	strace("t=%d T%d join prev=T%d", t.Now(), t.ID(), prev-1)
	if prev != 0 {
		l.spinUntilVeryNextWaiter(t, prev, n)
	} else if !l.Blocking {
		// Disable stealing to preserve FIFO while a queue exists. The
		// blocking variant skips this (optimization 1, §4.2.2): waking a
		// waiter can take up to 10ms, so stealing keeps the lock live.
		t.FetchOr(l.glock, shNoSteal)
	}

	if l.Blocking {
		// Figure 7: proactively put the successor in spinning mode and
		// wake it if parked, off the critical path, so the head handoff
		// after our critical section does not need a wakeup.
		if qnext := t.Load(n[shNext]); qnext != 0 {
			l.setSpinning(t, qnext, false)
		}
	}

	// Head of the queue: shuffle, then take the TAS lock (Figure 4 lines
	// 20-30). The shuffler's exit condition fires as soon as the lock is
	// free, so a shuffle on the handoff path costs at most one scanned
	// node — the transient price of sorting the queue. An unproductive
	// head keeps the role without rescanning; it relays role and frontier
	// to its successor when it acquires.
	roleMine := false
	for {
		if !roleMine && (t.Load(n[shBatch]) == 0 || t.Load(n[shShuffler]) != 0) {
			roleMine = l.shuffleWaiters(t, n, true)
		}
		x := t.Load(l.glock)
		if x&0xff == 0 {
			if t.CAS(l.glock, x, x|shLocked) {
				break
			}
			continue
		}
		t.WatchWait(l.glock, x)
	}
	if l.StealLocalOnly && l.lastSocket != 0 {
		t.Store(l.lastSocket, uint64(t.Socket())+1)
	}

	// MCS unlock phase, moved to the acquire side (lock-state decoupling):
	// release the queue node before entering the critical section.
	next := t.Load(n[shNext])
	if next == 0 {
		if t.CAS(l.tail, handle(t), 0) {
			// The queue is empty: if we still held the shuffler role it
			// dies with the queue.
			if l.roleOracle && l.roleHolder == handle(t) {
				l.roleHolder = 0
			}
			if !l.Blocking {
				// Re-enable stealing now that the queue is empty.
				x := t.Load(l.glock)
				if x&shNoSteal != 0 {
					t.CAS(l.glock, x, x&^uint64(shNoSteal))
				}
			}
			l.cnt.Acquires++
			return
		}
		next = t.SpinUntil(n[shNext], func(v uint64) bool { return v != 0 })
	}
	if next == handle(t) {
		panic(fmt.Sprintf("shfllock: T%d granting itself\n%v", t.ID(), shflTrace))
	}
	strace("t=%d T%d acquired; grant head to T%d", t.Now(), t.ID(), next-1)
	// If we still hold the shuffler role (our scan never found a local
	// waiter), relay it — with the scan frontier — to our successor, so
	// traversal resumes near where it stopped instead of restarting
	// (invariant 4: a shuffler may pass the role to one of its
	// successors; this is what makes +qlast "traverse mostly from the
	// near end of the tail"). These stores happen while we hold the TAS
	// lock, off the handoff path.
	if l.PassRole && (roleMine || l.e.Mem().Peek(n[shShuffler]) != 0) {
		if l.OptQlast {
			// Forward the frontier only if it names a node that is still
			// queued behind the recipient: not the recipient, and not
			// ourselves (we are about to leave the queue).
			if h := t.Load(n[shLastHint]); h != 0 && h != next && h != handle(t) {
				t.Store(l.node(next)[shLastHint], h)
			}
		}
		l.giveRole(t, next, "relay")
	} else if l.roleOracle && l.roleHolder == handle(t) {
		// Leaving the queue while holding the role without relaying it
		// (PassRole disabled, or the role was never ours): it dies here.
		l.roleHolder = 0
	}
	// Notify the very next waiter that it is now the queue head.
	if l.Blocking {
		old := t.Swap(l.node(next)[shStatus], sReady)
		if old == sParked {
			// Rare thanks to the Figure 7 optimization; this is the
			// wakeup-inside-the-critical-path that Figure 11(f) counts.
			l.cnt.WakeupsInCS++
			t.Unpark(threadOf(l.e, next))
		}
	} else {
		t.Store(l.node(next)[shStatus], sReady)
	}
	l.cnt.Acquires++
}

// Unlock releases the TAS lock with a byte store (Figure 4 spin_unlock).
func (l *ShflLock) Unlock(t *sim.Thread) {
	t.StorePartial(l.glock, 0xff, 0)
}

// TryLock is a single compare-and-swap thanks to lock-state decoupling.
func (l *ShflLock) TryLock(t *sim.Thread) bool {
	if t.Load(l.glock) == 0 && t.CAS(l.glock, 0, shLocked) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// spinUntilVeryNextWaiter links into the predecessor and spins until
// granted head status, shuffling when handed the role, and parking under
// over-subscription in the blocking variant.
func (l *ShflLock) spinUntilVeryNextWaiter(t *sim.Thread, prev uint64, n []sim.Word) {
	t.Store(l.node(prev)[shNext], handle(t))
	for {
		v := t.Load(n[shStatus])
		if v == sReady {
			return
		}
		if t.Load(n[shShuffler]) != 0 {
			l.shuffleWaiters(t, n, false)
			if t.Load(n[shShuffler]) != 0 {
				// Still holding the role after an unproductive scan:
				// pace the retry loop (the real shuffler busy-polls).
				t.Delay(shufflePoll)
			}
			continue
		}
		if l.Blocking && v == sWaiting && t.NeedResched() {
			// Scheduling-aware parking: park only when the core is
			// over-subscribed, otherwise just yield (§4.2 "Scheduling-
			// aware parking strategy").
			if t.NrRunning() > 1 {
				if t.CAS(n[shStatus], sWaiting, sParked) {
					l.cnt.Parks++
					t.Park()
				}
				continue
			}
			t.Yield()
			continue
		}
		t.WatchWait(n[shStatus], v)
	}
}

// setSpinning moves a waiter to the spinning state, waking it if parked.
// Used by shufflers (off the critical path) and by the Figure 7 successor
// pre-wake.
func (l *ShflLock) setSpinning(t *sim.Thread, h uint64, byShuffler bool) {
	st := l.node(h)[shStatus]
	if t.CAS(st, sWaiting, sSpinning) {
		return
	}
	if t.CAS(st, sParked, sSpinning) {
		l.cnt.WakeupsOffCS++
		_ = byShuffler
		t.Unpark(threadOf(l.e, h))
	}
}

// shuffleWaiters is the shuffling mechanism (Figure 4, lines 59-108, plus
// the +qlast traversal-resumption optimization): the shuffler walks the
// queue grouping waiters of its own socket immediately behind the already-
// shuffled chain, then passes the shuffler role to the last grouped waiter.
func (l *ShflLock) shuffleWaiters(t *sim.Thread, n []sim.Word, vnextWaiter bool) (retained bool) {
	if !l.PolicyShuffle {
		t.Store(n[shShuffler], 0)
		return false
	}
	l.cnt.Shuffles++
	me := handle(t)
	qlast := me
	qprev := me

	batch := t.Load(n[shBatch])
	if batch == 0 {
		batch++
		t.Store(n[shBatch], batch)
	}
	l.takeRole(t)
	// The shuffler is decided at the end, so clear our own flag.
	t.Store(n[shShuffler], 0)
	if batch >= maxShuffles {
		if l.roleOracle {
			l.roleHolder = 0
		}
		return false // no more batching: avoid starving remote sockets
	}
	if l.Blocking && !vnextWaiter {
		// We will soon acquire the lock: make sure we never park. If the
		// grant raced with us, put it back — the granter has already left
		// the queue and will not write our status again.
		if old := t.Swap(n[shStatus], sSpinning); old == sReady {
			t.Store(n[shStatus], sReady)
		}
	}
	mySkt := uint64(t.Socket())
	if l.OptQlast {
		if h := t.Load(n[shLastHint]); h != 0 {
			qprev = h // resume where the previous shuffler stopped
		}
	}
	for {
		qcurr := t.Load(l.node(qprev)[shNext])
		strace("t=%d T%d scan qprev=T%d qcurr=T%d qlast=T%d vnext=%v", t.Now(), t.ID(), qprev-1, qcurr-1, qlast-1, vnextWaiter)
		if qcurr == 0 {
			break
		}
		// The pseudocode compares qcurr against lock.tail so the scan
		// never moves a node a joiner may be linking behind. The
		// qnext==0 guard below covers the same hazard without re-reading
		// the contended lock line: a node with a non-nil next is no
		// longer the tail.
		if qcurr == me {
			panic(fmt.Sprintf("shfllock: T%d scan reached itself (qprev=T%d)\n%v", t.ID(), qprev-1, shflTrace))
		}
		cn := l.node(qcurr)
		l.cnt.ShuffleScanned++
		match := t.Load(cn[shSocket]) == mySkt
		if l.PolicyMatch != nil {
			match = l.PolicyMatch(t, n, cn)
		}
		if match {
			// The contiguous case applies only when qcurr directly
			// follows our shuffled chain (for a fresh scan this is
			// exactly the pseudocode's qprev.skt == qnode.skt test; with
			// +qlast scan resumption it must be the chain end itself, or
			// the marked chain would fragment and the shuffler-role
			// handoff would lose its single-shuffler invariant).
			if qprev == qlast {
				// Contiguous same-socket chain: just mark it.
				batch++
				t.Store(cn[shBatch], batch)
				if l.Blocking {
					l.setSpinning(t, qcurr, true)
				}
				l.cnt.ShuffleMarked++
				qlast = qcurr
				qprev = qcurr
			} else {
				// Remote waiters sit between the chain and qcurr: move
				// qcurr to the end of the shuffled chain.
				qnext := t.Load(cn[shNext])
				if qnext == 0 {
					break
				}
				batch++
				t.Store(cn[shBatch], batch)
				if l.Blocking {
					l.setSpinning(t, qcurr, true)
				}
				t.Store(l.node(qprev)[shNext], qnext)
				t.Store(cn[shNext], t.Load(l.node(qlast)[shNext]))
				t.Store(l.node(qlast)[shNext], qcurr)
				strace("t=%d T%d MOVE T%d after T%d (qprev=T%d qnext=T%d)", t.Now(), t.ID(), qcurr-1, qlast-1, qprev-1, qnext-1)
				qlast = qcurr
				l.cnt.ShuffleMoves++
			}
		} else {
			qprev = qcurr
		}
		// Exit: the TAS lock is free and we are the queue head, or a
		// predecessor made us the head.
		if vnextWaiter && t.Load(l.glock)&0xff == 0 {
			break
		}
		if !vnextWaiter && t.Load(n[shStatus]) == sReady {
			break
		}
	}

	if qlast == me {
		// No local waiter found yet: the role stays with us, resuming the
		// scan where it stopped ("the shuffler keeps retrying to find a
		// waiter from the same socket"). A waiting (non-head) shuffler
		// re-arms its flag and polls; the head retains the role silently
		// and relays it to its successor at acquisition, so the handoff
		// path is not burdened with a rescan per lock transition.
		if l.OptQlast && qprev != me {
			t.Store(n[shLastHint], qprev)
		}
		if !vnextWaiter {
			l.giveRole(t, me, "self-retry")
		} else if l.roleOracle {
			l.roleHolder = handle(t)
		}
		return true
	}
	if l.OptQlast && qprev != qlast {
		t.Store(l.node(qlast)[shLastHint], qprev)
	}
	if l.PassRole {
		l.giveRole(t, qlast, "pass-qlast")
	} else if l.roleOracle {
		l.roleHolder = 0
	}
	return false
}

// ShflLockNBMaker registers the non-blocking ShflLock.
func ShflLockNBMaker() Maker {
	return Maker{
		Name: "shfllock-nb",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewShflLockNB(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 28, PerHolder: 0}
		},
	}
}

// ShflLockBMaker registers the blocking ShflLock.
func ShflLockBMaker() Maker {
	return Maker{
		Name: "shfllock-b",
		Kind: Blocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewShflLockB(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 28, PerHolder: 0}
		},
	}
}

// ShflLockBNUMAStealMaker registers the blocking variant that restricts
// stealing to the previous holder's socket (Figure 11d "ShflLock (NUMA)").
func ShflLockBNUMAStealMaker() Maker {
	return Maker{
		Name: "shfllock-b-numa",
		Kind: Blocking,
		New: func(e *sim.Engine, tag string) Lock {
			l := NewShflLockB(e, tag)
			l.StealLocalOnly = true
			l.lastSocket = e.Mem().AllocWord(tag + "/lastskt")
			return l
		},
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 28, PerHolder: 0}
		},
	}
}

// ShflLockAblationMaker builds the Figure 11(e) factor-analysis variants.
// stage: 0=Base, 1=+Shuffler, 2=+Shufflers, 3=+qlast.
func ShflLockAblationMaker(stage int) Maker {
	names := []string{"shfl-base", "shfl+shuffler", "shfl+shufflers", "shfl+qlast"}
	return Maker{
		Name: names[stage],
		Kind: NonBlocking,
		New: func(e *sim.Engine, tag string) Lock {
			l := NewShflLockNB(e, tag)
			l.PolicyShuffle = stage >= 1
			l.PassRole = stage >= 2
			l.OptQlast = stage >= 3
			return l
		},
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 28, PerHolder: 0}
		},
	}
}

// SetPriority records the scheduling priority the priority policy uses for
// the given thread (higher is more urgent). Only effective on locks built
// by ShflLockPriorityMaker.
func (l *ShflLock) SetPriority(threadID int, prio uint64) {
	if l.prios == nil {
		l.prios = make(map[int]uint64)
	}
	l.prios[threadID] = prio
}

// ShflLockPriorityMaker builds a non-blocking ShflLock whose shuffling
// policy groups waiters with higher priority than the shuffler directly
// behind the shuffled chain — the priority-inversion counter-measure the
// paper sketches in §7. Ties fall back to NUMA grouping, so the lock keeps
// its locality when priorities are uniform.
func ShflLockPriorityMaker() Maker {
	return Maker{
		Name: "shfllock-prio",
		Kind: NonBlocking,
		New: func(e *sim.Engine, tag string) Lock {
			l := NewShflLockNB(e, tag)
			l.prios = make(map[int]uint64)
			l.PolicyMatch = func(t *sim.Thread, shuffler, candidate []sim.Word) bool {
				sp := t.Load(shuffler[shPrio])
				cp := t.Load(candidate[shPrio])
				if cp != sp {
					return cp > sp
				}
				return t.Load(candidate[shSocket]) == uint64(t.Socket())
			}
			return l
		},
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 32, PerHolder: 0}
		},
	}
}
