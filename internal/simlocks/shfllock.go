package simlocks

import (
	"fmt"

	"shfllock/internal/shuffle"
	"shfllock/internal/sim"
)

// ShflLock queue-node status values are shuffle.Status*; these aliases keep
// the lock code close to the paper's pseudocode (Figures 4 and 6).
const (
	sWaiting   = shuffle.StatusWaiting
	sReady     = shuffle.StatusReady
	sParked    = shuffle.StatusParked
	sSpinning  = shuffle.StatusSpinning
	sAbandoned = shuffle.StatusAbandoned
	sReclaimed = shuffle.StatusReclaimed
)

// ShflLock queue-node field offsets.
const (
	shStatus = iota
	shNext
	shSocket
	shBatch
	shShuffler
	shLastHint // +qlast optimization: where the previous shuffler stopped
	shPrio     // waiter priority, used by the priority policy (§7)
	shWords
)

// glock bit layout: byte 0 = locked, bit 8 = no-stealing.
const (
	shLocked  = 1
	shNoSteal = 1 << 8
)

// shufflePoll paces a shuffler's retry loop while it has not yet found a
// group-member successor (the real implementation busy-polls the queue).
const shufflePoll = 300

// abortPoll paces an abortable waiter's deadline checks: bounded Delay
// slices instead of open-ended watch-waits, so a waiter never sleeps
// through its own deadline.
const abortPoll = 300

// ShflLock is the paper's lock: a TAS lock guarding the critical section
// plus an MCS-style waiter queue whose *waiters* reorder it (shuffling)
// according to a pluggable policy — NUMA grouping by default, plus wakeup
// hints in the blocking variant. The lock state is decoupled from the
// queue: the holder releases its queue node before entering the critical
// section, TryLock is a single CAS, and the TAS path permits stealing.
//
// The shuffling rounds themselves run in the substrate-independent
// internal/shuffle engine; this type contributes the simulated-memory
// accesses (so the cost model charges exact cache-line traffic) and the
// TAS/queue mechanism around them.
type ShflLock struct {
	e     *sim.Engine
	glock sim.Word
	tail  sim.Word
	nodes *nodeTable

	// Blocking selects the ShflLock^B behaviour of Figure 6/7: waiters
	// park under over-subscription, shufflers wake sleepers, stealing
	// stays enabled.
	Blocking bool

	// policy is the epoched holder driving the shuffling rounds (NUMA
	// grouping by default; the ablation and priority makers install other
	// registered policies). Every walk reads it exactly once through pol()
	// and pins the result, so SetPolicy is safe at any virtual instant —
	// including mid-shuffle, mid-reclaim and mid-abdication, which the
	// chaos PolicyFlip fault forces. The box and its TransitionLog are
	// engine metadata: policy reads are never charged accesses, so runs
	// that never transition keep their exact memory-access sequence.
	policy shuffle.PolicyBox

	// StealLocalOnly restricts TAS stealing to threads on the same socket
	// as the previous holder (the "ShflLock (NUMA)" variant of Fig 11d).
	StealLocalOnly bool
	lastSocket     sim.Word

	// prios holds per-thread priorities for the priority policy.
	prios map[int]uint64

	// roleOracle, when enabled, tracks which thread handle holds the
	// shuffler role and panics on a duplicate (debug assertion only; it
	// is engine metadata, not simulated state).
	roleOracle bool
	roleHolder uint64
	cnt        Counters

	// mayAbort latches on the first LockAbort and switches the grant and
	// scan paths to the abandonment-aware protocol. Engine metadata, never
	// charged: abort-free runs keep their exact memory-access sequence.
	mayAbort bool
	// limbo records threads whose abandoned node is still linked in the
	// queue; their next acquisition must wait for the sReclaimed handshake
	// before reusing it (the MCS-TP timeout protocol's reclamation rule).
	limbo map[int]bool
}

// NewShflLockNB creates the non-blocking ShflLock with all optimizations.
func NewShflLockNB(e *sim.Engine, tag string) *ShflLock {
	return newShfl(e, tag, false)
}

// NewShflLockB creates the blocking ShflLock with all optimizations.
func NewShflLockB(e *sim.Engine, tag string) *ShflLock {
	return newShfl(e, tag, true)
}

func newShfl(e *sim.Engine, tag string, blocking bool) *ShflLock {
	ws := e.Mem().Alloc(tag, 2)
	l := &ShflLock{
		e: e, glock: ws[0], tail: ws[1],
		Blocking: blocking,
	}
	l.policy.Set(shuffle.NUMA(), "init", 0)
	l.nodes = newNodeTable(e, tag, shWords, &l.cnt)
	return l
}

// SetPolicy installs a policy through the epoched transition protocol,
// recording (epoch, from, to, trigger, at) in the lock's TransitionLog.
// Safe at any virtual instant; at is the engine's virtual time (0 for
// construction-time installs).
func (l *ShflLock) SetPolicy(p shuffle.Policy, trigger string, at uint64) {
	l.policy.Set(p, trigger, at)
}

// Transitions exposes the lock's policy transition record.
func (l *ShflLock) Transitions() *shuffle.TransitionLog { return l.policy.Log() }

// PolicyEpoch returns the current transition fence value (monotone).
func (l *ShflLock) PolicyEpoch() uint64 { return l.policy.Epoch() }

// QueueResidue inspects the queue after a run completes (uncharged peeks;
// only meaningful once every worker has exited). An empty tail is a clean
// queue. A tail still pointing at an abandoned or reclaimed corpse is
// legal: the aborter exited before any later arrival walked past it. Any
// other resident is a stranded waiter — a lost wakeup — and is returned as
// a description; "" means the queue is sound.
func (l *ShflLock) QueueResidue() string {
	mem := l.e.Mem()
	tail := mem.Peek(l.tail)
	if tail == 0 {
		return ""
	}
	st := mem.Peek(l.node(tail)[shStatus])
	if st == sAbandoned || st == sReclaimed {
		return ""
	}
	return fmt.Sprintf("tail=T%d status=%d still queued after run", tail-1, st)
}

// pol returns the current policy (never nil). Callers hold the returned
// value — after pinning via shuffle.Pin — for one complete walk.
func (l *ShflLock) pol() shuffle.Policy {
	if p := l.policy.Get(); p != nil {
		return p
	}
	return shuffle.NUMA()
}

// maybeFlip consults the fault injector at a transition-adversarial moment
// and applies any requested policy swap through the transition API. Engine
// metadata only: no simulated memory is read or written, so runs without a
// flip-armed injector keep their exact access sequence.
func (l *ShflLock) maybeFlip(t *sim.Thread, m sim.FlipMoment) {
	inj := l.e.Injector()
	if inj == nil {
		return
	}
	name := inj.PolicyFlip(t, m)
	if name == "" {
		return
	}
	if p := shuffle.ByName(name); p != nil {
		l.SetPolicy(p, "chaos:"+m.String(), t.Now())
	}
}

func (l *ShflLock) Name() string {
	if l.Blocking {
		return "shfllock-b"
	}
	return "shfllock-nb"
}

// Stats returns the lock's counters.
func (l *ShflLock) Stats() *Counters { return &l.cnt }

// giveRole is the single point where the shuffler flag is set; the oracle
// asserts role uniqueness.
func (l *ShflLock) giveRole(t *sim.Thread, to uint64) {
	// The uniqueness assertion only holds abort-free: an abandoning waiter
	// can leave the role stranded on its corpse, where it dies at
	// reclamation, so a fresh round can legitimately start alongside it.
	if l.roleOracle && !l.mayAbort {
		if l.roleHolder != 0 && l.roleHolder != to && l.roleHolder != handle(t) {
			panic(fmt.Sprintf("shfllock: duplicate role: T%d gives role to T%d while T%d holds it",
				t.ID(), to-1, l.roleHolder-1))
		}
		l.roleHolder = to
	}
	t.Store(l.node(to)[shShuffler], 1)
}

// takeRole is called at shuffle start when the flag is consumed.
func (l *ShflLock) takeRole(t *sim.Thread) {
	if l.roleOracle && !l.mayAbort {
		if l.roleHolder != 0 && l.roleHolder != handle(t) {
			panic(fmt.Sprintf("shfllock: T%d shuffles but role is at T%d", t.ID(), l.roleHolder-1))
		}
		l.roleHolder = handle(t)
	}
}

func (l *ShflLock) node(h uint64) []sim.Word {
	return l.nodes.get(threadOf(l.e, h))
}

// trySteal attempts the TAS fast path (also the stealing path).
func (l *ShflLock) trySteal(t *sim.Thread) bool {
	if t.Load(l.glock) != 0 {
		return false
	}
	if l.StealLocalOnly && l.lastSocket != 0 {
		if t.Load(l.lastSocket) != uint64(t.Socket())+1 && l.e.Mem().Peek(l.tail) != 0 {
			return false
		}
	}
	if t.CAS(l.glock, 0, shLocked) {
		if l.StealLocalOnly && l.lastSocket != 0 {
			t.Store(l.lastSocket, uint64(t.Socket())+1)
		}
		if l.e.Mem().Peek(l.tail) != 0 {
			l.cnt.Steals++
		}
		return true
	}
	return false
}

// Lock acquires the lock (Figure 4 spin_lock / Figure 6 mutex_lock).
func (l *ShflLock) Lock(t *sim.Thread) {
	if l.trySteal(t) {
		l.cnt.Acquires++
		return
	}
	if l.mayAbort && l.limbo[t.ID()] {
		// Our abandoned node from an earlier timed-out attempt is still
		// queued; wait for a reclaimer to publish sReclaimed before reusing
		// it. (Stealing above needs no node, so it works even in limbo.)
		st := l.nodes.get(t)[shStatus]
		t.SpinUntil(st, func(v uint64) bool { return v == sReclaimed })
		delete(l.limbo, t.ID())
	}

	// Join the waiter queue; the qnode lives on the waiter's stack.
	n := l.nodes.get(t)
	t.Store(n[shStatus], sWaiting)
	t.Store(n[shNext], 0)
	t.Store(n[shSocket], uint64(t.Socket()))
	t.Store(n[shBatch], 0)
	t.Store(n[shShuffler], 0)
	t.Store(n[shLastHint], 0)
	if l.prios != nil {
		t.Store(n[shPrio], l.prios[t.ID()])
	}

	prev := t.Swap(l.tail, handle(t))
	if prev != 0 {
		l.spinUntilVeryNextWaiter(t, prev, n)
	} else if !l.Blocking {
		// Disable stealing to preserve FIFO while a queue exists. The
		// blocking variant skips this (optimization 1, §4.2.2): waking a
		// waiter can take up to 10ms, so stealing keeps the lock live.
		t.FetchOr(l.glock, shNoSteal)
	}

	if l.Blocking {
		// Figure 7: proactively put the successor in spinning mode and
		// wake it if parked, off the critical path, so the head handoff
		// after our critical section does not need a wakeup.
		if qnext := t.Load(n[shNext]); qnext != 0 {
			l.setSpinning(t, qnext, false)
		}
	}

	// Head of the queue: shuffle, then take the TAS lock (Figure 4 lines
	// 20-30). The shuffler's exit condition fires as soon as the lock is
	// free, so a shuffle on the handoff path costs at most one scanned
	// node — the transient price of sorting the queue. An unproductive
	// head keeps the role (roleMine) without rescanning; it relays role
	// and frontier to its successor when it acquires.
	roleMine := false
	for {
		if !roleMine && (t.Load(n[shBatch]) == 0 || t.Load(n[shShuffler]) != 0) {
			// One policy read per round, pinned for the whole walk.
			pol := shuffle.Pin(l.pol())
			roleMine = shuffle.Run(simSub{l, t}, pol, handle(t),
				shuffle.Input{Blocking: l.Blocking, VNext: true}).Retained
		}
		x := t.Load(l.glock)
		if x&0xff == 0 {
			if t.CAS(l.glock, x, x|shLocked) {
				break
			}
			continue
		}
		t.WatchWait(l.glock, x)
	}
	if l.StealLocalOnly && l.lastSocket != 0 {
		t.Store(l.lastSocket, uint64(t.Socket())+1)
	}

	l.passHead(t, n, roleMine)
	l.cnt.Acquires++
}

// passHead is the MCS unlock phase, moved to the acquire side (lock-state
// decoupling): release the queue node before entering the critical section.
// It is also the abdication path — an abortable head that runs out of
// budget calls it without ever taking the TAS lock.
//
// While no LockAbort has ever run, this is the exact original epilogue —
// same simulated accesses in the same order, so abort-free runs are
// byte-identical. Once mayAbort latches, the successor walk skips and
// reclaims abandoned nodes and grants by CAS, so a grant cannot race an
// abandonment: for each candidate exactly one of {grant, abandon} wins.
func (l *ShflLock) passHead(t *sim.Thread, n []sim.Word, roleMine bool) {
	// Pin the policy for the whole walk: abdication and reclaim run under
	// the epoch observed here, whatever transitions land mid-walk.
	pol := shuffle.Pin(l.pol())
	if !l.mayAbort {
		next := t.Load(n[shNext])
		if next == 0 {
			if t.CAS(l.tail, handle(t), 0) {
				// The queue is empty: if we still held the shuffler role it
				// dies with the queue.
				if l.roleOracle && l.roleHolder == handle(t) {
					l.roleHolder = 0
				}
				if !l.Blocking {
					// Re-enable stealing now that the queue is empty.
					x := t.Load(l.glock)
					if x&shNoSteal != 0 {
						t.CAS(l.glock, x, x&^uint64(shNoSteal))
					}
				}
				return
			}
			next = t.SpinUntil(n[shNext], func(v uint64) bool { return v != 0 })
		}
		if next == handle(t) {
			panic(fmt.Sprintf("shfllock: T%d granting itself", t.ID()))
		}
		// If we still hold the shuffler role (our scan never found a group
		// member), relay it — with the scan frontier — to our successor, so
		// traversal resumes near where it stopped instead of restarting
		// (invariant 4: a shuffler may pass the role to one of its
		// successors; this is what makes +qlast "traverse mostly from the
		// near end of the tail"). These stores happen while we hold the TAS
		// lock, off the handoff path.
		if pol.PassRole() && (roleMine || l.e.Mem().Peek(n[shShuffler]) != 0) {
			if pol.UseHint() {
				// Forward the frontier only if it names a node that is still
				// queued behind the recipient: not the recipient, and not
				// ourselves (we are about to leave the queue).
				if h := t.Load(n[shLastHint]); h != 0 && h != next && h != handle(t) {
					t.Store(l.node(next)[shLastHint], h)
				}
			}
			l.giveRole(t, next)
		} else if l.roleOracle && l.roleHolder == handle(t) {
			// Leaving the queue while holding the role without relaying it
			// (PassRole disabled, or the role was never ours): it dies here.
			l.roleHolder = 0
		}
		// Notify the very next waiter that it is now the queue head.
		if l.Blocking {
			old := t.Swap(l.node(next)[shStatus], sReady)
			if old == sParked {
				// Rare thanks to the Figure 7 optimization; this is the
				// wakeup-inside-the-critical-path that Figure 11(f) counts.
				l.cnt.WakeupsInCS++
				t.Unpark(threadOf(l.e, next))
			}
		} else {
			t.Store(l.node(next)[shStatus], sReady)
		}
		return
	}

	// Abandonment-aware walk. The successor handle is carried in `next`
	// rather than re-read through reclaimed nodes: a corpse's outgoing link
	// is read exactly once, BEFORE publishing sReclaimed, because the owner
	// reuses (re-initializes) the node the moment it observes reclamation.
	next := t.Load(n[shNext])
	if next == 0 {
		if t.CAS(l.tail, handle(t), 0) {
			if !l.Blocking {
				x := t.Load(l.glock)
				if x&shNoSteal != 0 {
					t.CAS(l.glock, x, x&^uint64(shNoSteal))
				}
			}
			return
		}
		// A joiner swapped the tail but has not linked in yet.
		next = t.SpinUntil(n[shNext], func(v uint64) bool { return v != 0 })
	}
	roleDone := false
	for {
		if next == handle(t) {
			panic(fmt.Sprintf("shfllock: T%d granting itself", t.ID()))
		}
		st := t.Load(l.node(next)[shStatus])
		if st == sAbandoned {
			nn := t.Load(l.node(next)[shNext])
			if nn == 0 {
				// The corpse is the queue tail: retire the whole queue, or
				// wait for the joiner that just swapped the tail to link in.
				if t.CAS(l.tail, next, 0) {
					t.Store(l.node(next)[shStatus], sReclaimed)
					l.cnt.Reclaims++
					l.maybeFlip(t, sim.FlipAbortReclaim)
					if !l.Blocking {
						x := t.Load(l.glock)
						if x&shNoSteal != 0 {
							t.CAS(l.glock, x, x&^uint64(shNoSteal))
						}
					}
					return
				}
				nn = t.SpinUntil(l.node(next)[shNext], func(v uint64) bool { return v != 0 })
			}
			t.Store(l.node(next)[shStatus], sReclaimed)
			l.cnt.Reclaims++
			l.maybeFlip(t, sim.FlipAbortReclaim)
			next = nn
			continue
		}
		if !roleDone && pol.PassRole() && (roleMine || l.e.Mem().Peek(n[shShuffler]) != 0) {
			if pol.UseHint() {
				if h := t.Load(n[shLastHint]); h != 0 && h != next && h != handle(t) {
					t.Store(l.node(next)[shLastHint], h)
				}
			}
			l.giveRole(t, next)
			// If this candidate abandons before our grant lands, the role
			// dies on its corpse — the cost of an abort, not a protocol
			// violation (a fresh round starts from the next head).
			roleDone = true
		}
		if t.CAS(l.node(next)[shStatus], st, sReady) {
			if l.Blocking && st == sParked {
				l.cnt.WakeupsInCS++
				t.Unpark(threadOf(l.e, next))
			}
			return
		}
		// The candidate's status moved underneath us — it abandoned (or a
		// shuffler changed its state); re-examine it.
	}
}

// LockAbort attempts the acquisition with a budget of virtual cycles — the
// simulator's mirror of the native LockTimeout, so the cost model covers
// the abandonment protocol too. It reports whether the lock was acquired;
// on failure the waiter's node has been abandoned in place (a reclaimer
// unlinks it later) and the thread enters limbo until then.
func (l *ShflLock) LockAbort(t *sim.Thread, budget uint64) bool {
	l.mayAbort = true
	if l.limbo == nil {
		l.limbo = make(map[int]bool)
	}
	deadline := t.Now() + budget
	if l.trySteal(t) {
		l.cnt.Acquires++
		return true
	}
	if l.limbo[t.ID()] && !l.waitReclaimUntil(t, deadline) {
		// The corpse from a previous attempt is still queued and the budget
		// ran out before anyone reclaimed it; the node cannot be reused.
		l.cnt.Aborts++
		return false
	}

	n := l.nodes.get(t)
	t.Store(n[shStatus], sWaiting)
	t.Store(n[shNext], 0)
	t.Store(n[shSocket], uint64(t.Socket()))
	t.Store(n[shBatch], 0)
	t.Store(n[shShuffler], 0)
	t.Store(n[shLastHint], 0)
	if l.prios != nil {
		t.Store(n[shPrio], l.prios[t.ID()])
	}

	prev := t.Swap(l.tail, handle(t))
	if prev != 0 {
		if !l.spinUntilAbortable(t, prev, n, deadline) {
			l.limbo[t.ID()] = true
			l.cnt.Aborts++
			return false
		}
	} else if !l.Blocking {
		t.FetchOr(l.glock, shNoSteal)
	}

	if l.Blocking {
		if qnext := t.Load(n[shNext]); qnext != 0 {
			l.setSpinning(t, qnext, false)
		}
	}

	roleMine := false
	for {
		if !roleMine && (t.Load(n[shBatch]) == 0 || t.Load(n[shShuffler]) != 0) {
			// One policy read per round, pinned for the whole walk.
			pol := shuffle.Pin(l.pol())
			roleMine = shuffle.Run(simSub{l, t}, pol, handle(t),
				shuffle.Input{Blocking: l.Blocking, VNext: true}).Retained
		}
		x := t.Load(l.glock)
		if x&0xff == 0 {
			if t.CAS(l.glock, x, x|shLocked) {
				break
			}
			continue
		}
		now := t.Now()
		if now >= deadline {
			// Head abdication: the head cannot abandon its node (nobody is
			// ahead to reclaim it), so it performs the MCS unlock phase
			// without ever taking the TAS lock and leaves cleanly. The
			// abdication walk pins its policy at entry, so a flip landing
			// here exercises the epoch fence at its sharpest.
			l.maybeFlip(t, sim.FlipHeadAbdication)
			l.passHead(t, n, roleMine)
			l.cnt.Aborts++
			return false
		}
		// Bounded spin slice instead of WatchWait: an open-ended watch
		// could sleep through the deadline.
		step := deadline - now
		if step > abortPoll {
			step = abortPoll
		}
		t.Delay(step)
	}
	if l.StealLocalOnly && l.lastSocket != 0 {
		t.Store(l.lastSocket, uint64(t.Socket())+1)
	}

	l.passHead(t, n, roleMine)
	l.cnt.Acquires++
	return true
}

// waitReclaimUntil waits (bounded by deadline) for this thread's abandoned
// node to be reclaimed, clearing limbo on success.
func (l *ShflLock) waitReclaimUntil(t *sim.Thread, deadline uint64) bool {
	st := l.nodes.get(t)[shStatus]
	for {
		if t.Load(st) == sReclaimed {
			delete(l.limbo, t.ID())
			return true
		}
		now := t.Now()
		if now >= deadline {
			return false
		}
		step := deadline - now
		if step > abortPoll {
			step = abortPoll
		}
		t.Delay(step)
	}
}

// spinUntilAbortable is spinUntilVeryNextWaiter with a deadline: on expiry
// the waiter abandons its node with a status CAS — exactly one of {grant,
// abandon} can win — and reports failure. Parking uses ParkTimeout so a
// sleeping waiter still honours its deadline.
func (l *ShflLock) spinUntilAbortable(t *sim.Thread, prev uint64, n []sim.Word, deadline uint64) bool {
	t.Store(l.node(prev)[shNext], handle(t))
	for {
		v := t.Load(n[shStatus])
		if v == sReady {
			return true
		}
		if t.Now() >= deadline {
			if t.CAS(n[shStatus], v, sAbandoned) {
				return false
			}
			// The status moved underneath the CAS: a grant may have won the
			// race — re-read and honour it.
			continue
		}
		if t.Load(n[shShuffler]) != 0 {
			pol := shuffle.Pin(l.pol())
			shuffle.Run(simSub{l, t}, pol, handle(t),
				shuffle.Input{Blocking: l.Blocking, VNext: false, FromRole: true})
			if t.Load(n[shShuffler]) != 0 {
				t.Delay(shufflePoll)
			}
			continue
		}
		if l.Blocking && v == sWaiting && t.NeedResched() {
			if t.NrRunning() > 1 {
				if t.CAS(n[shStatus], sWaiting, sParked) {
					l.cnt.Parks++
					rem := uint64(1)
					if now := t.Now(); now < deadline {
						rem = deadline - now
					}
					t.ParkTimeout(rem)
				}
				continue
			}
			t.Yield()
			continue
		}
		step := deadline - t.Now()
		if step > abortPoll {
			step = abortPoll
		}
		if step > 0 {
			t.Delay(step)
		}
	}
}

// Unlock releases the TAS lock with a byte store (Figure 4 spin_unlock).
func (l *ShflLock) Unlock(t *sim.Thread) {
	t.StorePartial(l.glock, 0xff, 0)
}

// TryLock is a single compare-and-swap thanks to lock-state decoupling.
func (l *ShflLock) TryLock(t *sim.Thread) bool {
	if t.Load(l.glock) == 0 && t.CAS(l.glock, 0, shLocked) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// spinUntilVeryNextWaiter links into the predecessor and spins until
// granted head status, shuffling when handed the role, and parking under
// over-subscription in the blocking variant.
func (l *ShflLock) spinUntilVeryNextWaiter(t *sim.Thread, prev uint64, n []sim.Word) {
	t.Store(l.node(prev)[shNext], handle(t))
	for {
		v := t.Load(n[shStatus])
		if v == sReady {
			return
		}
		if t.Load(n[shShuffler]) != 0 {
			pol := shuffle.Pin(l.pol())
			shuffle.Run(simSub{l, t}, pol, handle(t),
				shuffle.Input{Blocking: l.Blocking, VNext: false, FromRole: true})
			if t.Load(n[shShuffler]) != 0 {
				// Still holding the role after an unproductive scan:
				// pace the retry loop (the real shuffler busy-polls).
				t.Delay(shufflePoll)
			}
			continue
		}
		if l.Blocking && v == sWaiting && t.NeedResched() {
			// Scheduling-aware parking: park only when the core is
			// over-subscribed, otherwise just yield (§4.2 "Scheduling-
			// aware parking strategy").
			if t.NrRunning() > 1 {
				if t.CAS(n[shStatus], sWaiting, sParked) {
					l.cnt.Parks++
					t.Park()
				}
				continue
			}
			t.Yield()
			continue
		}
		t.WatchWait(n[shStatus], v)
	}
}

// setSpinning moves a waiter to the spinning state, waking it if parked.
// Used by shufflers (off the critical path) and by the Figure 7 successor
// pre-wake.
func (l *ShflLock) setSpinning(t *sim.Thread, h uint64, byShuffler bool) {
	st := l.node(h)[shStatus]
	if t.CAS(st, sWaiting, sSpinning) {
		return
	}
	if t.CAS(st, sParked, sSpinning) {
		l.cnt.WakeupsOffCS++
		_ = byShuffler
		t.Unpark(threadOf(l.e, h))
	}
}

// ShflLockNBMaker registers the non-blocking ShflLock.
func ShflLockNBMaker() Maker {
	return Maker{
		Name: "shfllock-nb",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewShflLockNB(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 28, PerHolder: 0}
		},
	}
}

// ShflLockBMaker registers the blocking ShflLock.
func ShflLockBMaker() Maker {
	return Maker{
		Name: "shfllock-b",
		Kind: Blocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewShflLockB(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 28, PerHolder: 0}
		},
	}
}

// ShflLockBNUMAStealMaker registers the blocking variant that restricts
// stealing to the previous holder's socket (Figure 11d "ShflLock (NUMA)").
func ShflLockBNUMAStealMaker() Maker {
	return Maker{
		Name: "shfllock-b-numa",
		Kind: Blocking,
		New: func(e *sim.Engine, tag string) Lock {
			l := NewShflLockB(e, tag)
			l.StealLocalOnly = true
			l.lastSocket = e.Mem().AllocWord(tag + "/lastskt")
			return l
		},
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 28, PerHolder: 0}
		},
	}
}

// ShflLockAblationMaker builds the Figure 11(e) factor-analysis variants.
// stage: 0=Base, 1=+Shuffler, 2=+Shufflers, 3=+qlast (see shuffle.Ablation).
func ShflLockAblationMaker(stage int) Maker {
	names := []string{"shfl-base", "shfl+shuffler", "shfl+shufflers", "shfl+qlast"}
	return Maker{
		Name: names[stage],
		Kind: NonBlocking,
		New: func(e *sim.Engine, tag string) Lock {
			l := NewShflLockNB(e, tag)
			l.SetPolicy(shuffle.Ablation(stage), "init", 0)
			return l
		},
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 28, PerHolder: 0}
		},
	}
}

// SetPriority records the scheduling priority the priority policy uses for
// the given thread (higher is more urgent). Only effective on locks built
// by ShflLockPriorityMaker.
func (l *ShflLock) SetPriority(threadID int, prio uint64) {
	if l.prios == nil {
		l.prios = make(map[int]uint64)
	}
	l.prios[threadID] = prio
}

// ShflLockPriorityMaker builds a non-blocking ShflLock whose shuffling
// policy groups waiters with higher priority than the shuffler directly
// behind the shuffled chain — the priority-inversion counter-measure the
// paper sketches in §7. Ties fall back to NUMA grouping, so the lock keeps
// its locality when priorities are uniform. The same shuffle.Priority
// policy runs on the native core locks via SetPolicy/LockWithPriority.
func ShflLockPriorityMaker() Maker {
	return Maker{
		Name: "shfllock-prio",
		Kind: NonBlocking,
		New: func(e *sim.Engine, tag string) Lock {
			l := NewShflLockNB(e, tag)
			l.prios = make(map[int]uint64)
			l.SetPolicy(shuffle.Priority(), "init", 0)
			return l
		},
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 12, PerWaiter: 32, PerHolder: 0}
		},
	}
}
