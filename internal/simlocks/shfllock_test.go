package simlocks

import (
	"testing"

	"shfllock/internal/sim"
	"shfllock/internal/topology"
)

func TestShflLockNBMutualExclusion(t *testing.T) {
	runContention(t, ShflLockNBMaker(), topology.Laptop(), 8, 60)
	runContention(t, ShflLockNBMaker(), topology.Reference(), 48, 20)
}

func TestShflLockBMutualExclusion(t *testing.T) {
	runContention(t, ShflLockBMaker(), topology.Laptop(), 8, 60)
	runContention(t, ShflLockBMaker(), topology.Reference(), 48, 20)
}

func TestShflLockBOversubscribed(t *testing.T) {
	// 4x oversubscription: parking must engage and nothing may deadlock.
	topo := topology.Laptop()
	mk := ShflLockBMaker()
	e := sim.NewEngine(sim.Config{Topo: topo, Seed: 5, HardStop: 3_000_000_000_000})
	l := mk.New(e, "lock")
	inCS := 0
	n := 4 * topo.Cores()
	for i := 0; i < n; i++ {
		e.Spawn("w", -1, func(th *sim.Thread) {
			for k := 0; k < 120; k++ {
				l.Lock(th)
				inCS++
				if inCS != 1 {
					t.Errorf("mutual exclusion violated")
				}
				th.Delay(1200)
				inCS--
				l.Unlock(th)
				th.Delay(500)
			}
		})
	}
	e.Run()
	if st := StatsOf(l); st.Parks == 0 {
		t.Errorf("no waiter ever parked under 4x oversubscription")
	}
}

func TestCNAMutualExclusion(t *testing.T) {
	runContention(t, CNAMaker(), topology.Laptop(), 8, 60)
	runContention(t, CNAMaker(), topology.Reference(), 48, 20)
}

func TestQSpinLockMutualExclusion(t *testing.T) {
	runContention(t, QSpinLockMaker(), topology.Laptop(), 8, 60)
	runContention(t, QSpinLockMaker(), topology.Reference(), 48, 20)
}

func TestShflLockAblations(t *testing.T) {
	for stage := 0; stage < 4; stage++ {
		runContention(t, ShflLockAblationMaker(stage), topology.Reference(), 48, 15)
	}
}

func TestShflLockNUMAStealVariant(t *testing.T) {
	runContention(t, ShflLockBNUMAStealMaker(), topology.Reference(), 48, 15)
}

func TestShflLockShufflingHappens(t *testing.T) {
	mk := ShflLockNBMaker()
	e := sim.NewEngine(sim.Config{Topo: topology.Reference(), Seed: 2, HardStop: 2_000_000_000_000})
	l := mk.New(e, "lock")
	for i := 0; i < 96; i++ {
		e.Spawn("w", -1, func(th *sim.Thread) {
			for k := 0; k < 20; k++ {
				l.Lock(th)
				th.Delay(uint64(300 + th.Rng().Intn(500)))
				l.Unlock(th)
				// Random think time mixes socket order in the queue.
				th.Delay(uint64(th.Rng().Intn(3000)))
			}
		})
	}
	e.Run()
	st := StatsOf(l)
	if st.Shuffles == 0 || st.ShuffleMoves == 0 {
		t.Errorf("no shuffling activity: %+v", st)
	}
}

// TestPriorityPolicy exercises the §7 extension: with the priority policy,
// high-priority threads must complete more acquisitions per unit time than
// low-priority ones, while the plain NUMA lock treats them equally.
func TestPriorityPolicy(t *testing.T) {
	run := func(mk Maker) (hi, lo float64) {
		e := sim.NewEngine(sim.Config{Topo: topology.Reference(), Seed: 4, HardStop: 4_000_000_000_000})
		l := mk.New(e, "lock")
		ops := make([]uint64, 16)
		for i := 0; i < 16; i++ {
			id := i
			th := e.Spawn("w", -1, func(th *sim.Thread) {
				th.Delay(uint64(th.Rng().Intn(50_000)))
				for !th.Stopped() {
					l.Lock(th)
					th.Delay(800)
					l.Unlock(th)
					th.Delay(300)
					ops[id]++
				}
			})
			if pl, ok := l.(*ShflLock); ok && pl.prios != nil {
				prio := uint64(0)
				if id < 4 {
					prio = 10 // threads 0-3 are high priority
				}
				pl.SetPriority(th.ID(), prio)
			}
		}
		e.StopAt(4_000_000)
		e.Run()
		var h, lo2 uint64
		for i, v := range ops {
			if i < 4 {
				h += v
			} else {
				lo2 += v
			}
		}
		return float64(h) / 4, float64(lo2) / 12
	}

	hi, lo := run(ShflLockPriorityMaker())
	if hi < 1.5*lo {
		t.Errorf("priority policy ineffective: hi=%.0f lo=%.0f ops/thread", hi, lo)
	}
	hiN, loN := run(ShflLockNBMaker())
	if hiN > 1.4*loN || loN > 1.4*hiN {
		t.Errorf("NUMA lock should be priority-neutral: hi=%.0f lo=%.0f", hiN, loN)
	}
}
