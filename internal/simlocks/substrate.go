package simlocks

import (
	"fmt"

	"shfllock/internal/shuffle"
	"shfllock/internal/sim"
)

// simSub backs the shuffle engine with simulated-memory accesses: every
// accessor charges the cost model exactly the cache-line traffic its
// native counterpart causes, so moving the queue walk into the shared
// engine is invisible to cycle accounting. Node handles are thread IDs + 1
// (see handle); zero is nil.
type simSub struct {
	l *ShflLock
	t *sim.Thread
}

func (s simSub) LoadNext(h uint64) uint64      { return s.t.Load(s.l.node(h)[shNext]) }
func (s simSub) StoreNext(h, v uint64)         { s.t.Store(s.l.node(h)[shNext], v) }
func (s simSub) LoadStatus(h uint64) uint64    { return s.t.Load(s.l.node(h)[shStatus]) }
func (s simSub) StoreStatus(h, v uint64)       { s.t.Store(s.l.node(h)[shStatus], v) }
func (s simSub) SwapStatus(h, v uint64) uint64 { return s.t.Swap(s.l.node(h)[shStatus], v) }
func (s simSub) StoreShuffler(h, v uint64)     { s.t.Store(s.l.node(h)[shShuffler], v) }
func (s simSub) LoadBatch(h uint64) uint64     { return s.t.Load(s.l.node(h)[shBatch]) }
func (s simSub) StoreBatch(h, v uint64)        { s.t.Store(s.l.node(h)[shBatch], v) }
func (s simSub) LoadHint(h uint64) uint64      { return s.t.Load(s.l.node(h)[shLastHint]) }
func (s simSub) StoreHint(h, v uint64)         { s.t.Store(s.l.node(h)[shLastHint], v) }

func (s simSub) ShufflerSocket() uint64 { return uint64(s.t.Socket()) }
func (s simSub) Socket(h uint64) uint64 { return s.t.Load(s.l.node(h)[shSocket]) }
func (s simSub) Prio(h uint64) uint64   { return s.t.Load(s.l.node(h)[shPrio]) }
func (s simSub) LockByteFree() bool     { return s.t.Load(s.l.glock)&0xff == 0 }
func (s simSub) SetSpinning(h uint64)   { s.l.setSpinning(s.t, h, true) }

// MayAbort gates the scan's abandoned-node checks; it is engine metadata
// (uncharged), so abort-free runs keep their exact memory-access sequence.
func (s simSub) MayAbort() bool { return s.l.mayAbort }

// Reclaim records an abandoned node unlinked by a shuffling scan. The node
// itself is left to its owner, which reuses it after observing sReclaimed.
// Chaos hook: a forced policy flip here lands mid-scan, right after queue
// surgery — the running round must finish under its pinned policy.
func (s simSub) Reclaim(uint64) {
	s.l.cnt.Reclaims++
	s.l.maybeFlip(s.t, sim.FlipAbortReclaim)
}

func (s simSub) RoundStart(uint64) { s.l.cnt.Shuffles++ }

func (s simSub) RoleTaken(uint64) {
	s.l.takeRole(s.t)
	// Chaos hooks: model the shuffler being descheduled at its most
	// load-bearing moment — right after consuming the role — and force a
	// policy flip mid-shuffle: the round already pinned its policy, so the
	// swap must only take effect on the next walk. The preempt draw stays
	// first so pre-existing fault schedules replay unchanged.
	if inj := s.t.Engine().Injector(); inj != nil {
		if inj.ShufflerPreempt(s.t) {
			s.t.Yield()
		}
		s.l.maybeFlip(s.t, sim.FlipMidShuffle)
	}
}

func (s simSub) RoundAbort(uint64) {
	if s.l.roleOracle {
		s.l.roleHolder = 0
	}
}

func (s simSub) RoundActive(uint64, bool, bool) {}
func (s simSub) Moved(uint64, uint64)           {}

func (s simSub) RoundEnd(_ uint64, scanned, moved, marked int) {
	s.l.cnt.ShuffleScanned += uint64(scanned)
	s.l.cnt.ShuffleMoves += uint64(moved)
	s.l.cnt.ShuffleMarked += uint64(marked)
}

func (s simSub) GiveRole(_, to uint64, _ shuffle.RoleWhy) { s.l.giveRole(s.t, to) }

func (s simSub) RetainRole(uint64) {
	if s.l.roleOracle {
		s.l.roleHolder = handle(s.t)
	}
}

func (s simSub) DropRole(uint64) {
	if s.l.roleOracle {
		s.l.roleHolder = 0
	}
}

// StaleSelfScan is a protocol violation on this substrate: queue nodes are
// per-thread, so a scan can only reach the shuffler's own node through a
// corrupted queue or a mis-forwarded hint.
func (s simSub) StaleSelfScan(uint64) {
	panic(fmt.Sprintf("shfllock: T%d scan reached itself", s.t.ID()))
}

func (s simSub) DebugID(h uint64) uint64 { return h }
