package simlocks

import "shfllock/internal/sim"

// TAS is a test-and-test-and-set spinlock: one word, one atomic in the
// uncontended case, unbounded atomics and cache-line bouncing under
// contention. This is the baseline whose collapse motivates queue locks.
type TAS struct {
	name string
	word sim.Word
	cnt  Counters
}

// NewTAS creates a TAS lock.
func NewTAS(e *sim.Engine, tag string) *TAS {
	return &TAS{name: "tas", word: e.Mem().AllocWord(tag)}
}

func (l *TAS) Name() string { return l.name }

// Lock spins with test-and-test-and-set: read until the lock looks free,
// then CAS. Every failed CAS still bounces the line, and a release triggers
// a CAS storm among all waiters.
func (l *TAS) Lock(t *sim.Thread) {
	for {
		if t.CAS(l.word, 0, 1) {
			l.cnt.Acquires++
			return
		}
		t.SpinWhileEq(l.word, 1)
	}
}

// Unlock releases the lock with a plain store.
func (l *TAS) Unlock(t *sim.Thread) {
	t.Store(l.word, 0)
}

// TryLock attempts one CAS.
func (l *TAS) TryLock(t *sim.Thread) bool {
	if t.Load(l.word) == 0 && t.CAS(l.word, 0, 1) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *TAS) Stats() *Counters { return &l.cnt }

// TASMaker registers the TAS lock.
func TASMaker() Maker {
	return Maker{
		Name: "tas",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewTAS(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 1, PerWaiter: 0, PerHolder: 0}
		},
	}
}

// Ticket is a FIFO spinlock: a single word packs the next-ticket counter in
// the high half and the now-serving counter in the low half. Fair, but all
// waiters spin on one line, so every release invalidates every waiter.
type Ticket struct {
	word sim.Word
	cnt  Counters
}

// NewTicket creates a ticket lock.
func NewTicket(e *sim.Engine, tag string) *Ticket {
	return &Ticket{word: e.Mem().AllocWord(tag)}
}

func (l *Ticket) Name() string { return "ticket" }

const ticketInc = 1 << 32

// Lock takes a ticket and spins until served.
func (l *Ticket) Lock(t *sim.Thread) {
	v := t.Add(l.word, ticketInc)
	my := (v >> 32) - 1
	if v&0xffffffff == my {
		l.cnt.Acquires++
		return
	}
	t.SpinUntil(l.word, func(x uint64) bool { return x&0xffffffff == my })
	l.cnt.Acquires++
}

// Unlock advances the now-serving counter.
func (l *Ticket) Unlock(t *sim.Thread) {
	t.Add(l.word, 1)
}

// TryLock succeeds only when no one holds or waits for the lock.
func (l *Ticket) TryLock(t *sim.Thread) bool {
	v := t.Load(l.word)
	if v>>32 != v&0xffffffff {
		l.cnt.TryFail++
		return false
	}
	if t.CAS(l.word, v, v+ticketInc) {
		l.cnt.TrySuccess++
		l.cnt.Acquires++
		return true
	}
	l.cnt.TryFail++
	return false
}

// Stats returns the lock's counters.
func (l *Ticket) Stats() *Counters { return &l.cnt }

// TicketMaker registers the ticket lock.
func TicketMaker() Maker {
	return Maker{
		Name: "ticket",
		Kind: NonBlocking,
		New:  func(e *sim.Engine, tag string) Lock { return NewTicket(e, tag) },
		Footprint: func(int) Footprint {
			return Footprint{PerLock: 8, PerWaiter: 0, PerHolder: 0}
		},
	}
}
