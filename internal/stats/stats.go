// Package stats provides the metrics the paper's evaluation reports:
// throughput series, the long-term fairness factor of Dice & Kogan, and
// simple aggregation helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// FairnessFactor implements the metric of Figure 11(b)/(d) (Dice et al.):
// sort per-thread operation counts ascending and divide the sum of the
// upper half by the total. A strictly fair lock yields 0.5; a lock that
// starves half its threads approaches 1.0.
func FairnessFactor(opsPerThread []uint64) float64 {
	if len(opsPerThread) < 2 {
		return 0.5 // fairness is undefined for a single thread
	}
	s := append([]uint64(nil), opsPerThread...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var total, upper uint64
	for i, v := range s {
		total += v
		if i >= len(s)/2 {
			upper += v
		}
	}
	if total == 0 {
		return 0.5
	}
	return float64(upper) / float64(total)
}

// Throughput converts an operation count over a virtual duration in cycles
// into operations per simulated second, assuming the given clock in GHz.
func Throughput(ops uint64, cycles uint64, ghz float64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(ops) / (float64(cycles) / (ghz * 1e9))
}

// Series is one labelled curve of an experiment figure: y values indexed
// by the sweep's x values.
type Series struct {
	Label string
	X     []int
	Y     []float64
}

// Table renders one or more series as an aligned text table, x values as
// rows and series as columns — the textual equivalent of a paper figure.
func Table(xName, yName string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", xName)
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	fmt.Fprintf(&b, "   (%s)\n", yName)
	if len(series) == 0 {
		return b.String()
	}
	for i, x := range series[0].X {
		fmt.Fprintf(&b, "%-10d", x)
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %16s", formatY(s.Y[i]))
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatY(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	case math.Abs(v) < 10:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// GeoMeanSpeedup returns the geometric-mean ratio of a over b, for
// summarizing "X is N times faster than Y" claims across a sweep.
func GeoMeanSpeedup(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	sum := 0.0
	n := 0
	for i := range a {
		if b[i] > 0 && a[i] > 0 {
			sum += math.Log(a[i] / b[i])
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}
