package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFairnessFactorExtremes(t *testing.T) {
	if f := FairnessFactor([]uint64{100, 100, 100, 100}); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("fair factor = %v, want 0.5", f)
	}
	if f := FairnessFactor([]uint64{0, 0, 100, 100}); math.Abs(f-1.0) > 1e-9 {
		t.Errorf("starved factor = %v, want 1.0", f)
	}
	if f := FairnessFactor(nil); f != 0.5 {
		t.Errorf("empty factor = %v, want 0.5", f)
	}
	if f := FairnessFactor([]uint64{0, 0}); f != 0.5 {
		t.Errorf("zero-ops factor = %v, want 0.5", f)
	}
}

// Degenerate inputs must neither panic nor produce NaN: a single-threaded
// run has no tail/median split, and an empty slice has no elements at all.
func TestFairnessFactorDegenerate(t *testing.T) {
	for _, tc := range []struct {
		name string
		ops  []uint64
	}{
		{"empty", []uint64{}},
		{"single", []uint64{42}},
		{"single-zero", []uint64{0}},
	} {
		f := FairnessFactor(tc.ops)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("%s: factor = %v, want finite", tc.name, f)
		}
		if f != 0.5 {
			t.Errorf("%s: factor = %v, want neutral 0.5", tc.name, f)
		}
	}
}

// Property: the fairness factor is always in [0.5, 1] (up to odd-length
// median placement) and is scale-invariant.
func TestFairnessFactorProperties(t *testing.T) {
	f := func(ops []uint64) bool {
		for i := range ops {
			ops[i] %= 1 << 20 // avoid overflow when summing
		}
		v := FairnessFactor(ops)
		if v < 0.45 || v > 1.0 {
			return false
		}
		scaled := make([]uint64, len(ops))
		for i := range ops {
			scaled[i] = ops[i] * 3
		}
		return math.Abs(FairnessFactor(scaled)-v) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	// 1000 ops in 2.2e9 cycles at 2.2GHz = 1000 ops/sec.
	if got := Throughput(1000, 2_200_000_000, 2.2); math.Abs(got-1000) > 1e-6 {
		t.Errorf("throughput = %v, want 1000", got)
	}
	if got := Throughput(5, 0, 2.2); got != 0 {
		t.Errorf("zero-cycle throughput = %v", got)
	}
	// All-zero inputs must not divide 0/0 into NaN.
	if got := Throughput(0, 0, 2.2); math.IsNaN(got) || got != 0 {
		t.Errorf("zero/zero throughput = %v, want 0", got)
	}
	if got := Throughput(0, 1000, 2.2); math.IsNaN(got) || got != 0 {
		t.Errorf("zero-ops throughput = %v, want 0", got)
	}
}

func TestTable(t *testing.T) {
	out := Table("threads", "ops/s", []Series{
		{Label: "mcs", X: []int{1, 2}, Y: []float64{1500000, 2.5}},
		{Label: "tas", X: []int{1, 2}, Y: []float64{900, 0}},
	})
	for _, want := range []string{"threads", "mcs", "tas", "1.5M", "2.500", "900", "ops/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	v := GeoMeanSpeedup([]float64{2, 8}, []float64{1, 2})
	if math.Abs(v-math.Sqrt(8)) > 1e-9 {
		t.Errorf("geomean = %v, want sqrt(8)", v)
	}
	if !math.IsNaN(GeoMeanSpeedup(nil, nil)) {
		t.Errorf("empty geomean should be NaN")
	}
}
