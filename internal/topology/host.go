package topology

import (
	"os"
	"regexp"
	"runtime"
)

// hostNodePath is the Linux sysfs directory whose node<N> entries are the
// host's NUMA nodes. Overridable for tests.
var hostNodePath = "/sys/devices/system/node"

var nodeDirRe = regexp.MustCompile(`^node[0-9]+$`)

// DetectHostSockets reports the number of NUMA nodes of the *host* machine
// (as opposed to the simulated Machine descriptions in this package), read
// from Linux sysfs. ok is false when the information is unavailable — a
// non-Linux OS, a stripped-down container without /sys, or a sysfs layout
// we do not recognize — and callers must fall back to their own heuristic.
//
// This exists because guessing sockets from the CPU count is wrong in both
// directions: the old runtime.NumCPU()/24 heuristic (24 = cores per socket
// of the paper's evaluation box) reported 1 socket for any machine under 24
// CPUs, silently disabling NUMA grouping on real 2-socket small boxes, and
// over-reported sockets on single-socket machines with many cores.
func DetectHostSockets() (n int, ok bool) {
	entries, err := os.ReadDir(hostNodePath)
	if err != nil {
		return 0, false
	}
	for _, e := range entries {
		if e.IsDir() && nodeDirRe.MatchString(e.Name()) {
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return n, true
}

// FallbackHostSockets is the documented last-resort guess when sysfs is
// unavailable: the paper-box calibration of NumCPU()/24, floored at 1.
// It under-counts sockets on small multi-socket machines — which is why it
// is a fallback and DetectHostSockets is preferred — but it never
// over-groups: the failure mode is only lost batching, never incorrect
// grouping of unrelated waiters.
func FallbackHostSockets() int {
	n := runtime.NumCPU() / 24
	if n < 1 {
		n = 1
	}
	return n
}

// HostSockets combines detection and fallback: sysfs when available,
// FallbackHostSockets otherwise.
func HostSockets() int {
	if n, ok := DetectHostSockets(); ok {
		return n
	}
	return FallbackHostSockets()
}
