package topology

import (
	"os"
	"path/filepath"
	"testing"
)

func withNodePath(t *testing.T, dir string) {
	t.Helper()
	old := hostNodePath
	hostNodePath = dir
	t.Cleanup(func() { hostNodePath = old })
}

func TestDetectHostSocketsCountsNodeDirs(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"node0", "node1", "node12"} {
		if err := os.Mkdir(filepath.Join(dir, name), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Distractors that must not be counted: files, non-node dirs, and the
	// lookalike entries sysfs actually has.
	if err := os.Mkdir(filepath.Join(dir, "possible"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "node3"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "has_cpu"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	withNodePath(t, dir)

	n, ok := DetectHostSockets()
	if !ok || n != 3 {
		t.Fatalf("DetectHostSockets() = %d, %v; want 3, true", n, ok)
	}
	if got := HostSockets(); got != 3 {
		t.Fatalf("HostSockets() = %d, want 3", got)
	}
}

func TestDetectHostSocketsUnavailable(t *testing.T) {
	withNodePath(t, filepath.Join(t.TempDir(), "missing"))
	if n, ok := DetectHostSockets(); ok {
		t.Fatalf("DetectHostSockets() = %d, true on a missing sysfs; want ok=false", n)
	}
	if got, want := HostSockets(), FallbackHostSockets(); got != want {
		t.Fatalf("HostSockets() = %d without sysfs, want fallback %d", got, want)
	}
}

func TestDetectHostSocketsEmptyDir(t *testing.T) {
	withNodePath(t, t.TempDir())
	if _, ok := DetectHostSockets(); ok {
		t.Fatal("DetectHostSockets() ok on a directory with no node entries")
	}
}

func TestFallbackHostSocketsFloor(t *testing.T) {
	if n := FallbackHostSockets(); n < 1 {
		t.Fatalf("FallbackHostSockets() = %d, want >= 1", n)
	}
}
