// Package topology describes the simulated machine: how many sockets, how
// many cores per socket, and what memory operations cost depending on where
// the accessed cache line currently lives.
//
// The reference machine mirrors the paper's evaluation box: an 8-socket,
// 192-core Intel Xeon E7-8890 v4 (24 cores per socket, hyperthreading
// disabled). The cost model encodes the asymmetry the paper relies on: a
// remote-socket cache-line transfer costs roughly 3x an intra-socket
// transfer, which in turn costs an order of magnitude more than an L1 hit
// (David et al., SOSP'13).
package topology

import "fmt"

// Machine describes the core/socket layout of a simulated NUMA machine.
type Machine struct {
	Sockets        int // number of NUMA sockets
	CoresPerSocket int // physical cores on each socket
}

// Cores returns the total number of cores in the machine.
func (m Machine) Cores() int { return m.Sockets * m.CoresPerSocket }

// SocketOf returns the socket that owns the given core.
func (m Machine) SocketOf(core int) int { return core / m.CoresPerSocket }

// Validate reports whether the machine description is usable.
func (m Machine) Validate() error {
	if m.Sockets <= 0 || m.CoresPerSocket <= 0 {
		return fmt.Errorf("topology: invalid machine %d sockets x %d cores", m.Sockets, m.CoresPerSocket)
	}
	return nil
}

func (m Machine) String() string {
	return fmt.Sprintf("%d-socket/%d-core", m.Sockets, m.Cores())
}

// Reference returns the paper's evaluation machine: 8 sockets x 24 cores.
func Reference() Machine { return Machine{Sockets: 8, CoresPerSocket: 24} }

// Laptop returns a small 2-socket machine, useful for quick tests.
func Laptop() Machine { return Machine{Sockets: 2, CoresPerSocket: 4} }

// CostModel gives the cost, in CPU cycles, of the events the simulator
// charges for. All costs are approximations of a ~2.2GHz Xeon; only the
// ratios matter for reproducing the paper's result shapes.
type CostModel struct {
	// Cache hierarchy.
	L1Hit       uint64 // load/store hitting the local cache
	LocalXfer   uint64 // cache-line transfer from a core on the same socket
	RemoteXfer  uint64 // cache-line transfer from a core on another socket
	DRAM        uint64 // line not cached anywhere
	AtomicExtra uint64 // additional cost of a locked RMW over a plain store
	SpinRecheck uint64 // re-check cost when a watched line changes

	// Scheduler.
	Quantum     uint64 // scheduling quantum before preemption
	CtxSwitch   uint64 // context-switch cost charged on dispatch
	WakeLatency uint64 // delay between wake_up_task and the task being runnable
	WakeCost    uint64 // cost charged to the waker for issuing a wakeup
	ParkCost    uint64 // cost charged to a thread for descheduling itself
}

// DefaultCosts returns the cost model used by all experiments.
func DefaultCosts() CostModel {
	return CostModel{
		L1Hit:       4,
		LocalXfer:   44,
		RemoteXfer:  130,
		DRAM:        200,
		AtomicExtra: 12,
		SpinRecheck: 8,

		Quantum:     1_000_000, // ~0.45ms at 2.2GHz
		CtxSwitch:   4_000,
		WakeLatency: 6_000, // ~2.7us; real futex wakes range 1us-10ms
		WakeCost:    1_500,
		ParkCost:    2_500,
	}
}

// Validate reports whether the cost model is usable.
func (c CostModel) Validate() error {
	if c.L1Hit == 0 || c.LocalXfer == 0 || c.RemoteXfer == 0 || c.DRAM == 0 {
		return fmt.Errorf("topology: cost model has zero memory costs")
	}
	if c.Quantum == 0 {
		return fmt.Errorf("topology: cost model has zero quantum")
	}
	return nil
}
