package topology

import (
	"testing"
	"testing/quick"
)

func TestReferenceMachine(t *testing.T) {
	m := Reference()
	if m.Cores() != 192 {
		t.Errorf("reference cores = %d, want 192", m.Cores())
	}
	if m.SocketOf(0) != 0 || m.SocketOf(23) != 0 || m.SocketOf(24) != 1 || m.SocketOf(191) != 7 {
		t.Errorf("socket mapping wrong")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("reference machine invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Machine{}).Validate(); err == nil {
		t.Error("zero machine should be invalid")
	}
	if err := (Machine{Sockets: -1, CoresPerSocket: 4}).Validate(); err == nil {
		t.Error("negative sockets should be invalid")
	}
	if err := Laptop().Validate(); err != nil {
		t.Errorf("laptop invalid: %v", err)
	}
}

func TestCostModelValidate(t *testing.T) {
	if err := DefaultCosts().Validate(); err != nil {
		t.Errorf("default costs invalid: %v", err)
	}
	if err := (CostModel{}).Validate(); err == nil {
		t.Error("zero cost model should be invalid")
	}
	c := DefaultCosts()
	c.Quantum = 0
	if err := c.Validate(); err == nil {
		t.Error("zero quantum should be invalid")
	}
}

func TestCostOrdering(t *testing.T) {
	c := DefaultCosts()
	if !(c.L1Hit < c.LocalXfer && c.LocalXfer < c.RemoteXfer && c.RemoteXfer <= c.DRAM) {
		t.Errorf("cost hierarchy violated: %+v", c)
	}
	// The paper's cited ratio: remote approx 3x local.
	ratio := float64(c.RemoteXfer) / float64(c.LocalXfer)
	if ratio < 2 || ratio > 4 {
		t.Errorf("remote/local ratio = %.2f, want ~3", ratio)
	}
}

// Property: SocketOf is total and within range for every valid machine.
func TestSocketOfProperty(t *testing.T) {
	f := func(s, c uint8, core uint16) bool {
		m := Machine{Sockets: int(s%8) + 1, CoresPerSocket: int(c%32) + 1}
		k := int(core) % m.Cores()
		sk := m.SocketOf(k)
		return sk >= 0 && sk < m.Sockets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
