package workloads

import (
	"fmt"

	"shfllock/internal/alloc"
	"shfllock/internal/fs"
	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
)

// KernelLocks selects the kernel lock implementations an application model
// runs with, mirroring Table 2: replacing the spinlock only (CNA), the
// blocking locks (CST/Cohort), or everything (ShflLock).
type KernelLocks struct {
	Name  string
	Spin  simlocks.Maker   // qspinlock replacement
	Mutex simlocks.Maker   // mutex replacement
	RW    simlocks.RWMaker // rwsem replacement
}

// StockKernel returns the baseline Linux lock set.
func StockKernel() KernelLocks {
	return KernelLocks{
		Name:  "stock",
		Spin:  simlocks.QSpinLockMaker(),
		Mutex: simlocks.LinuxMutexMaker(),
		RW:    simlocks.RWSemMaker(),
	}
}

// CNAKernel replaces only the spinlock (CNA modifies qspinlock).
func CNAKernel() KernelLocks {
	k := StockKernel()
	k.Name = "cna"
	k.Spin = simlocks.CNAMaker()
	return k
}

// CohortKernel replaces the blocking locks with cohort locks.
func CohortKernel() KernelLocks {
	k := StockKernel()
	k.Name = "cohort"
	k.Mutex = simlocks.CohortMaker()
	k.RW = simlocks.CohortRWMaker()
	return k
}

// CSTKernel replaces the blocking locks with CST locks.
func CSTKernel() KernelLocks {
	k := StockKernel()
	k.Name = "cst"
	k.Mutex = simlocks.CSTMaker()
	k.RW = simlocks.CSTRWMaker()
	return k
}

// ShflKernel replaces all locks with the ShflLock family.
func ShflKernel() KernelLocks {
	return KernelLocks{
		Name:  "shfllock",
		Spin:  simlocks.ShflLockNBMaker(),
		Mutex: simlocks.ShflLockBMaker(),
		RW:    simlocks.ShflRWMaker(),
	}
}

// AllKernels returns the kernel lock sets of Figure 10.
func AllKernels() []KernelLocks {
	return []KernelLocks{StockKernel(), CNAKernel(), CSTKernel(), CohortKernel(), ShflKernel()}
}

// taskBytes approximates a task_struct + mm_struct allocation whose size
// includes the embedded blocking locks.
func (k KernelLocks) taskBytes(sockets int) uint64 {
	return 1600 + uint64(k.Mutex.Footprint(sockets).PerLock) + uint64(k.RW.Footprint(sockets).PerLock)
}

// AFL models the fuzzer of Figure 10(a): an embarrassingly parallel fork +
// file-churn + gettimeofday workload. One operation is one test-case
// execution.
func AFL(p Params, k KernelLocks) Result {
	p = p.withDefaults()
	e := engineFor(p)
	al := alloc.New(e)
	f := fs.New(e, al, fs.Config{RW: k.RW, Mutex: k.Mutex, Spin: k.Spin})
	sockets := p.Topo.Sockets

	// Kernel-global structures the workload contends on.
	tasklist := k.Spin.New(e, "kernel/tasklist_lock")
	timekeeper := e.Mem().AllocWord("kernel/timekeeper")

	dirs := make([]*fs.Inode, p.Threads)
	h := newHarness(p, e)
	h.spawnWorkers(func(t *sim.Thread, id int) {
		dirs[id] = f.Mkdir(t, f.Root, fmt.Sprintf("afl%d", id))
	}, func(t *sim.Thread, id, k2 int) {
		// fork(): process-tree spinlock + task/mm allocation.
		tasklist.Lock(t)
		t.Delay(600)
		tasklist.Unlock(t)
		al.Alloc(t, k.taskBytes(sockets))

		// Run the test case; AFL logs timestamps constantly.
		t.Delay(4000)
		for i := 0; i < 4; i++ {
			t.Load(timekeeper) // vDSO gettimeofday: read-shared line
			t.Delay(150)
		}

		// The fuzzing loop creates and unlinks files in its private dir.
		name := fs.MustName(id, k2%64)
		f.Create(t, dirs[id], name, 1)
		f.Unlink(t, dirs[id], name)

		// Periodically scan sibling instances' directories.
		if k2%16 == 0 {
			for j := 0; j < 3; j++ {
				f.Readdir(t, dirs[(id+j+1)%p.Threads], 8)
			}
		}

		// exit(): tree lock again, free the task.
		tasklist.Lock(t)
		t.Delay(400)
		tasklist.Unlock(t)
		al.Free(t, k.taskBytes(sockets))
	})
	res := h.run()
	res.LockBytes = f.LockBytesLive + uint64(p.Threads)*uint64(k.Mutex.Footprint(sockets).PerLock+k.RW.Footprint(sockets).PerLock)
	res.AllocBytes = al.BytesTotal
	e.Recycle()
	return res
}

// Exim models the mail server of Figure 10(b): fork-heavy message delivery
// creating three files per message across spool directories. One operation
// is one delivered message.
func Exim(p Params, k KernelLocks) Result {
	p = p.withDefaults()
	e := engineFor(p)
	al := alloc.New(e)
	f := fs.New(e, al, fs.Config{RW: k.RW, Mutex: k.Mutex, Spin: k.Spin})
	sockets := p.Topo.Sockets

	tasklist := k.Spin.New(e, "kernel/tasklist_lock")
	// Reverse-mapping (anon_vma) spinlocks, sharded as in the kernel.
	rmap := make([]simlocks.Lock, 8)
	for i := range rmap {
		rmap[i] = k.Spin.New(e, fmt.Sprintf("kernel/anon_vma%d", i))
	}

	const spoolDirs = 16
	spool := make([]*fs.Inode, spoolDirs)
	h := newHarness(p, e)
	h.spawnWorkers(func(t *sim.Thread, id int) {
		if id == 0 {
			for i := range spool {
				spool[i] = f.Mkdir(t, f.Root, fmt.Sprintf("spool%d", i))
			}
		}
	}, func(t *sim.Thread, id, k2 int) {
		// Each connection forks three times (daemon -> delivery -> local).
		for i := 0; i < 3; i++ {
			tasklist.Lock(t)
			t.Delay(600)
			tasklist.Unlock(t)
			al.Alloc(t, k.taskBytes(sockets))
		}
		// Three files per message in hashed spool directories.
		name := fs.MustName(id, k2)
		d1 := spool[(id+k2)%spoolDirs]
		d2 := spool[(id+k2+7)%spoolDirs]
		f.Create(t, d1, name+"-H", 1)
		f.Create(t, d2, name+"-D", 2)
		f.Create(t, d1, name+"-J", 0)
		// Deliver, then clean up.
		t.Delay(3000)
		f.Unlink(t, d1, name+"-H")
		f.Unlink(t, d2, name+"-D")
		f.Unlink(t, d1, name+"-J")
		// Process exit: reverse-mapping teardown + frees.
		for i := 0; i < 3; i++ {
			lk := rmap[(id+i)%len(rmap)]
			lk.Lock(t)
			t.Delay(500)
			lk.Unlock(t)
			al.Free(t, k.taskBytes(sockets))
		}
	})
	res := h.run()
	res.LockBytes = f.LockBytesLive + uint64(p.Threads)*3*uint64(k.Mutex.Footprint(sockets).PerLock+k.RW.Footprint(sockets).PerLock)
	res.AllocBytes = al.BytesTotal
	e.Recycle()
	return res
}

// Metis models the map-reduce framework of Figure 10(c): a page-fault storm
// on the reader side of a single mmap_sem. One operation is one page fault.
func Metis(p Params, k KernelLocks) Result {
	p = p.withDefaults()
	e := engineFor(p)
	al := alloc.New(e)
	sockets := p.Topo.Sockets

	mmapSem := k.RW.New(e, "kernel/mmap_sem")
	pageData := e.Mem().AllocPadded("mm/pages", 32)

	h := newHarness(p, e)
	h.spawnWorkers(nil, func(t *sim.Thread, id, k2 int) {
		if k2%512 == 511 {
			// Occasional mmap growing the heap: writer side.
			mmapSem.Lock(t)
			t.Delay(1500)
			mmapSem.Unlock(t)
			return
		}
		// Page fault: read side of mmap_sem; pages come from the per-CPU
		// page cache (refilled from the shared allocator periodically, as
		// the kernel's pcp lists do, so the buddy allocator is not the
		// bottleneck the way slab is in the fs workloads).
		mmapSem.RLock(t)
		t.Load(pageData[(id+k2)%32])
		if k2%16 == 0 {
			al.Alloc(t, 16*4096)
		}
		t.Delay(1200)
		mmapSem.RUnlock(t)
		t.Delay(uint64(300 + t.Rng().Intn(300))) // user-space map work
		if k2%16 == 0 {
			al.Free(t, 16*4096)
		}
	})
	res := h.run()
	res.LockBytes = uint64(k.RW.Footprint(sockets).PerLock)
	res.AllocBytes = al.BytesTotal
	addLockCounters(&res, mmapSem)
	e.Recycle()
	return res
}
