package workloads

import (
	"fmt"

	"shfllock/internal/alloc"
	"shfllock/internal/fs"
	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
)

// fsConfig assembles a filesystem whose contended lock is the one under
// test; the other lock slots use the stock kernel implementations.
func fsConfig(rw simlocks.RWMaker, mutex, spin simlocks.Maker) fs.Config {
	if rw.Name == "" {
		rw = simlocks.RWSemMaker()
	}
	if mutex.Name == "" {
		mutex = simlocks.LinuxMutexMaker()
	}
	if spin.Name == "" {
		spin = simlocks.QSpinLockMaker()
	}
	return fs.Config{RW: rw, Mutex: mutex, Spin: spin}
}

// MWRL: each thread repeatedly renames a file inside its private
// directory; the rename path serializes on a global spinlock (Figure 8).
func MWRL(p Params, spin simlocks.Maker) Result {
	p = p.withDefaults()
	e := engineFor(p)
	al := alloc.New(e)
	f := fs.New(e, al, fsConfig(simlocks.RWMaker{}, simlocks.Maker{}, spin))
	dirs := make([]*fs.Inode, p.Threads)
	h := newHarness(p, e)
	h.spawnWorkers(func(t *sim.Thread, id int) {
		dirs[id] = f.Mkdir(t, f.Root, fmt.Sprintf("d%d", id))
		f.Create(t, dirs[id], "a", 0)
	}, func(t *sim.Thread, id, k int) {
		from, to := "a", "b"
		if k%2 == 1 {
			from, to = "b", "a"
		}
		f.RenameLocal(t, dirs[id], from, to)
		t.Delay(uint64(100 + t.Rng().Intn(100)))
	})
	res := h.run()
	addLockCounters(&res, f.SpinLk)
	e.Recycle()
	return res
}

// MWCM: every thread creates 4KB files in one shared directory, stressing
// the directory rwsem's writer side and the inode allocator (Figures 1 and
// 9b). LockBytes reports the live lock memory embedded in inodes.
func MWCM(p Params, rw simlocks.RWMaker) Result {
	p = p.withDefaults()
	e := engineFor(p)
	al := alloc.New(e)
	f := fs.New(e, al, fsConfig(rw, simlocks.Maker{}, simlocks.Maker{}))
	var shared *fs.Inode
	h := newHarness(p, e)
	h.spawnWorkers(func(t *sim.Thread, id int) {
		if id == 0 {
			shared = f.Mkdir(t, f.Root, "shared")
		}
	}, func(t *sim.Thread, id, k int) {
		if shared == nil {
			t.Yield()
			return
		}
		f.Create(t, shared, fs.MustName(id, k), 4)
	})
	res := h.run()
	res.LockBytes = f.LockBytesLive
	res.AllocBytes = al.BytesTotal
	addLockCounters(&res, shared.RW)
	e.Recycle()
	return res
}

// MWRM: threads move files from their private directory into one shared
// directory, stressing the superblock rename mutex (Figure 9a).
func MWRM(p Params, mutex simlocks.Maker) Result {
	p = p.withDefaults()
	e := engineFor(p)
	al := alloc.New(e)
	f := fs.New(e, al, fsConfig(simlocks.RWMaker{}, mutex, simlocks.Maker{}))
	dirs := make([]*fs.Inode, p.Threads)
	var shared *fs.Inode
	h := newHarness(p, e)
	h.spawnWorkers(func(t *sim.Thread, id int) {
		if id == 0 {
			shared = f.Mkdir(t, f.Root, "shared")
		}
		dirs[id] = f.Mkdir(t, f.Root, fmt.Sprintf("d%d", id))
	}, func(t *sim.Thread, id, k int) {
		if shared == nil {
			t.Yield()
			return
		}
		// Pre-allocating every file up front would dwarf the measured
		// window; creating in the private directory is uncontended and
		// matches the benchmark's per-op footprint.
		name := fs.MustName(id, k)
		f.Create(t, dirs[id], name, 0)
		f.RenameCross(t, dirs[id], shared, name, name)
	})
	res := h.run()
	res.AllocBytes = al.BytesTotal
	addLockCounters(&res, f.RenameMu)
	e.Recycle()
	return res
}

// MRDM: threads enumerate the entries of one shared directory, stressing
// the reader side of the directory rwsem (Figure 9c).
func MRDM(p Params, rw simlocks.RWMaker) Result {
	p = p.withDefaults()
	e := engineFor(p)
	al := alloc.New(e)
	f := fs.New(e, al, fsConfig(rw, simlocks.Maker{}, simlocks.Maker{}))
	var shared *fs.Inode
	h := newHarness(p, e)
	h.spawnWorkers(func(t *sim.Thread, id int) {
		if id == 0 {
			shared = f.Mkdir(t, f.Root, "shared")
			for k := 0; k < 16; k++ {
				f.Create(t, shared, fs.MustName(0, k), 0)
			}
		}
	}, func(t *sim.Thread, id, k int) {
		if shared == nil {
			t.Yield()
			return
		}
		f.Readdir(t, shared, 16)
		t.Delay(uint64(100 + t.Rng().Intn(100)))
	})
	res := h.run()
	addLockCounters(&res, shared.RW)
	e.Recycle()
	return res
}
