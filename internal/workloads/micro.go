package workloads

import (
	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
)

// Lock1 is the will-it-scale lock1 microbenchmark: threads hammer a single
// lock with an almost-empty critical section (Figure 8, right panel).
func Lock1(p Params, mk simlocks.Maker) Result {
	p = p.withDefaults()
	e := engineFor(p)
	l := mk.New(e, "lock1")
	shared := e.Mem().AllocWord("lock1/data")
	h := newHarness(p, e)
	h.spawnWorkers(nil, func(t *sim.Thread, id, k int) {
		l.Lock(t)
		t.Store(shared, t.Load(shared)+1)
		t.Delay(300)
		l.Unlock(t)
		t.Delay(uint64(100 + t.Rng().Intn(100)))
	})
	res := h.run()
	addLockCounters(&res, l)
	e.Recycle()
	return res
}

// hashTableParams sizes the Figure 11 nano-benchmark.
const (
	htBuckets     = 1024
	htBucketWords = 4
	htOpCost      = 700
)

// hashTable is the shared structure of the Figure 11 nano-benchmark: a
// global lock guarding a hash table whose buckets live in simulated memory,
// so critical sections move real cache lines.
type hashTable struct {
	buckets [][]sim.Word
}

func newHashTable(e *sim.Engine) *hashTable {
	ht := &hashTable{}
	ht.buckets = make([][]sim.Word, htBuckets)
	for i := range ht.buckets {
		ht.buckets[i] = e.Mem().Alloc("ht/bucket", htBucketWords)
	}
	return ht
}

func (ht *hashTable) read(t *sim.Thread, key int) {
	b := ht.buckets[key%htBuckets]
	t.Load(b[0])
	t.Load(b[key%htBucketWords])
	t.Delay(htOpCost)
}

func (ht *hashTable) write(t *sim.Thread, key int) {
	b := ht.buckets[key%htBuckets]
	for _, w := range b {
		t.Store(w, t.Load(w)+1)
	}
	t.Delay(htOpCost)
}

// HashTable runs the kernel hash-table nano-benchmark with a mutual
// exclusion lock (Figure 11 a-f): writePct of operations update the table,
// but every operation holds the global lock.
func HashTable(p Params, mk simlocks.Maker, writePct int) Result {
	p = p.withDefaults()
	e := engineFor(p)
	l := mk.New(e, "ht/lock")
	ht := newHashTable(e)
	h := newHarness(p, e)
	h.spawnWorkers(nil, func(t *sim.Thread, id, k int) {
		key := t.Rng().Intn(1 << 20)
		l.Lock(t)
		if t.Rng().Intn(100) < writePct {
			ht.write(t, key)
		} else {
			ht.read(t, key)
		}
		l.Unlock(t)
		t.Delay(uint64(100 + t.Rng().Intn(150)))
	})
	res := h.run()
	addLockCounters(&res, l)
	e.Recycle()
	return res
}

// HashTableRW runs the same nano-benchmark with a readers-writer lock
// (Figure 11 g-h): reads take the read side.
func HashTableRW(p Params, mk simlocks.RWMaker, writePct int) Result {
	p = p.withDefaults()
	e := engineFor(p)
	l := mk.New(e, "ht/rwlock")
	ht := newHashTable(e)
	h := newHarness(p, e)
	h.spawnWorkers(nil, func(t *sim.Thread, id, k int) {
		key := t.Rng().Intn(1 << 20)
		if t.Rng().Intn(100) < writePct {
			l.Lock(t)
			ht.write(t, key)
			l.Unlock(t)
		} else {
			l.RLock(t)
			ht.read(t, key)
			l.RUnlock(t)
		}
		t.Delay(uint64(100 + t.Rng().Intn(150)))
	})
	res := h.run()
	addLockCounters(&res, l)
	e.Recycle()
	return res
}

// hardStop bounds runaway protocols: far beyond any legitimate run.
func hardStop(p Params) uint64 {
	return 200*p.Duration + 100_000_000_000
}

// addLockCounters copies algorithm counters into the result's Extra map.
func addLockCounters(res *Result, l interface{}) {
	st := simlocks.StatsOf(l)
	if st == nil {
		return
	}
	res.Extra["acquires"] = float64(st.Acquires)
	res.Extra["try_success"] = float64(st.TrySuccess)
	res.Extra["try_fail"] = float64(st.TryFail)
	res.Extra["steals"] = float64(st.Steals)
	res.Extra["shuffles"] = float64(st.Shuffles)
	res.Extra["shuffle_scanned"] = float64(st.ShuffleScanned)
	res.Extra["shuffle_moves"] = float64(st.ShuffleMoves)
	res.Extra["parks"] = float64(st.Parks)
	res.Extra["wakeups_in_cs"] = float64(st.WakeupsInCS)
	res.Extra["wakeups_off_cs"] = float64(st.WakeupsOffCS)
	res.Extra["dynamic_allocs"] = float64(st.DynamicAllocs)
	res.Extra["dynamic_alloc_bytes"] = float64(st.DynamicAllocatedBytes)
}
