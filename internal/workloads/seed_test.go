package workloads

import (
	"testing"

	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
)

// Params must forward Seed verbatim: seed 0 is a real seed, not an alias
// for 1, so shflbench -seed 0 produces its own deterministic run.
func TestParamsSeedZeroPreserved(t *testing.T) {
	p := Params{Topo: topology.Laptop()}.withDefaults()
	if p.Seed != 0 {
		t.Fatalf("withDefaults remapped Seed 0 to %d", p.Seed)
	}
}

// Seeds 0 and 1 must drive distinguishable runs, and every seed must be
// reproducible run-to-run.
func TestSeedZeroDistinctFromSeedOne(t *testing.T) {
	run := func(seed int64) Result {
		return Lock1(Params{Topo: topology.Laptop(), Threads: 4, Seed: seed, Duration: 2_000_000}, simlocks.ShflLockNBMaker())
	}
	r0, r1 := run(0), run(1)
	same := r0.TotalOps == r1.TotalOps
	for i := range r0.PerThread {
		same = same && r0.PerThread[i] == r1.PerThread[i]
	}
	if same {
		t.Errorf("seed 0 and seed 1 produced identical per-thread ops %v — seed 0 is being aliased", r0.PerThread)
	}
	again := run(0)
	if again.TotalOps != r0.TotalOps {
		t.Errorf("seed 0 not reproducible: %d vs %d total ops", again.TotalOps, r0.TotalOps)
	}
}
