package workloads

import (
	"testing"

	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
)

// These tests pin the paper's headline qualitative claims on the reference
// machine with short windows; thresholds are deliberately loose (the claims
// are about who wins, not exact ratios), so they act as shape-regression
// guards for the simulator and lock implementations.

func shapeParams(threads int) Params {
	return Params{Topo: topology.Reference(), Threads: threads, Seed: 1, Duration: 4_000_000}
}

// Figure 1(a)/9(b): ShflLock-RW beats the stock rwsem on shared-directory
// file creation at high thread counts.
func TestShapeMWCMShflBeatsStock(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	stock := MWCM(shapeParams(48), simlocks.RWSemMaker())
	shfl := MWCM(shapeParams(48), simlocks.ShflRWMaker())
	if shfl.OpsPerSec < 1.5*stock.OpsPerSec {
		t.Errorf("MWCM: shfllock-rw %.0f ops/s, stock %.0f — want >=1.5x", shfl.OpsPerSec, stock.OpsPerSec)
	}
}

// Figure 1(b): hierarchical locks cost an order of magnitude more lock
// memory per created inode.
func TestShapeInodeLockMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	shfl := MWCM(shapeParams(24), simlocks.ShflRWMaker())
	cohort := MWCM(shapeParams(24), simlocks.CohortRWMaker())
	perShfl := float64(shfl.LockBytes) / float64(shfl.TotalOps+1)
	perCohort := float64(cohort.LockBytes) / float64(cohort.TotalOps+1)
	if perCohort < 10*perShfl {
		t.Errorf("lock bytes/inode: cohort %.0f vs shfl %.0f — want >=10x", perCohort, perShfl)
	}
}

// Figure 8: at full machine contention the NUMA-aware locks beat the stock
// qspinlock, and nobody loses at a single thread.
func TestShapeLock1NUMAWins(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	stock := Lock1(shapeParams(192), simlocks.QSpinLockMaker())
	shfl := Lock1(shapeParams(192), simlocks.ShflLockNBMaker())
	if shfl.OpsPerSec < 1.1*stock.OpsPerSec {
		t.Errorf("lock1@192: shfllock %.0f vs stock %.0f — want >=1.1x", shfl.OpsPerSec, stock.OpsPerSec)
	}
	s1 := Lock1(shapeParams(1), simlocks.QSpinLockMaker())
	f1 := Lock1(shapeParams(1), simlocks.ShflLockNBMaker())
	if f1.OpsPerSec < 0.9*s1.OpsPerSec {
		t.Errorf("lock1@1: shfllock %.0f vs stock %.0f — want parity", f1.OpsPerSec, s1.OpsPerSec)
	}
}

// Figure 9(a): a non-blocking hierarchical lock collapses at 2x
// over-subscription; the blocking ShflLock does not.
func TestShapeOversubscriptionCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	cohort := MWRM(shapeParams(384), simlocks.CohortMaker())
	shfl := MWRM(shapeParams(384), simlocks.ShflLockBMaker())
	if shfl.OpsPerSec < 1.5*cohort.OpsPerSec {
		t.Errorf("MWRM@384: shfllock-b %.0f vs cohort %.0f — want >=1.5x", shfl.OpsPerSec, cohort.OpsPerSec)
	}
}

// Figure 11(e): each shuffling refinement adds throughput at full
// contention (Base -> +Shuffler(s) -> +qlast).
func TestShapeFactorAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	base := HashTable(shapeParams(192), simlocks.ShflLockAblationMaker(0), 1)
	qlast := HashTable(shapeParams(192), simlocks.ShflLockAblationMaker(3), 1)
	if qlast.OpsPerSec < 1.15*base.OpsPerSec {
		t.Errorf("factor analysis: +qlast %.0f vs base %.0f — want >=1.15x", qlast.OpsPerSec, base.OpsPerSec)
	}
}

// Figure 11(f): the blocking ShflLock issues its wakeups off the critical
// path.
func TestShapeWakeupsOffCriticalPath(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := HashTable(shapeParams(384), simlocks.ShflLockBMaker(), 1)
	if r.Extra["parks"] == 0 {
		t.Skip("no parking happened in this window")
	}
	if r.Extra["wakeups_in_cs"] > 0.2*(r.Extra["wakeups_in_cs"]+r.Extra["wakeups_off_cs"]+1) {
		t.Errorf("wakeups in CS = %.0f, off CS = %.0f — most wakeups must be off-path",
			r.Extra["wakeups_in_cs"], r.Extra["wakeups_off_cs"])
	}
}

// Figure 13(b): heap queue-node locks allocate far more lock memory than
// pthread in a 266K-lock style workload.
func TestShapeDedupLockMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	pthread := Dedup(shapeParams(96), simlocks.PthreadMaker())
	mcs := Dedup(shapeParams(96), simlocks.MCSHeapMaker())
	if mcs.LockBytes < 10*pthread.LockBytes {
		t.Errorf("dedup lock bytes: mcs %d vs pthread %d — want >=10x", mcs.LockBytes, pthread.LockBytes)
	}
}
