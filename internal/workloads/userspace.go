package workloads

import (
	"fmt"

	"shfllock/internal/alloc"
	"shfllock/internal/kvstore"
	"shfllock/internal/sim"
	"shfllock/internal/simlocks"
)

// LevelDB runs the readrandom benchmark of Figure 12(a,b): every Get takes
// the global database mutex. Over-subscription comes from p.Threads
// exceeding the core count.
func LevelDB(p Params, mk simlocks.Maker) Result {
	p = p.withDefaults()
	e := engineFor(p)
	db := kvstore.New(e, mk, 1<<16)
	h := newHarness(p, e)
	h.spawnWorkers(nil, func(t *sim.Thread, id, k int) {
		key := uint64(t.Rng().Intn(1 << 16))
		db.Get(t, key)
	})
	res := h.run()
	db.Recycle()
	e.Recycle()
	return res
}

// Streamcluster models the PARSEC data-mining workload of Figure 12(c): a
// fixed number of phases separated by a custom barrier built from trylock
// and lock operations. The result's Extra["exec_cycles"] is the execution
// time (lower is better); OpsPerSec reports barrier crossings per second.
func Streamcluster(p Params, mk simlocks.Maker, phases int) Result {
	p = p.withDefaults()
	if phases == 0 {
		phases = 48
	}
	e := engineFor(p)
	l := mk.New(e, "sc/barrier_mutex")
	gen := e.Mem().AllocWord("sc/generation")
	cnt := e.Mem().AllocWord("sc/count")
	n := uint64(p.Threads)

	ops := make([]uint64, p.Threads)
	for i := 0; i < p.Threads; i++ {
		id := i
		e.Spawn("sc", -1, func(t *sim.Thread) {
			for ph := 0; ph < phases; ph++ {
				// Compute phase.
				t.Delay(uint64(2500 + t.Rng().Intn(2500)))
				// Custom barrier: the last arriver flips the generation;
				// everyone else polls it with trylock-protected re-checks,
				// the pattern Guerraoui et al. observed in streamcluster.
				l.Lock(t)
				myGen := t.Load(gen)
				c := t.Add(cnt, 1)
				if c == n {
					t.Store(cnt, 0)
					t.Store(gen, myGen+1)
					l.Unlock(t)
				} else {
					l.Unlock(t)
					// Laggards re-check the generation under trylock with
					// exponential backoff — the trylock-heavy pattern
					// Guerraoui et al. measured, without livelocking the
					// arrival phase.
					backoff := uint64(800)
					for t.Load(gen) == myGen {
						if l.TryLock(t) {
							g := t.Load(gen)
							l.Unlock(t)
							if g != myGen {
								break
							}
						}
						t.Delay(backoff)
						if backoff < 25_000 {
							backoff *= 2
						}
					}
				}
				ops[id]++
			}
		})
	}
	e.Run()
	res := Result{PerThread: ops, Cycles: e.Now(), Extra: map[string]float64{}}
	res.finish()
	res.Extra["exec_cycles"] = float64(e.Now())
	addLockCounters(&res, l)
	e.Recycle()
	return res
}

// Dedup models the PARSEC enterprise-storage pipeline of Figure 13: a
// three-stage pipeline with hundreds of sharded locks and heavy allocation.
// One operation is one data chunk through the pipeline. AllocBytes reports
// the total allocation, including any heap-allocated queue nodes the lock
// needs — the Figure 13(b) memory ratio.
func Dedup(p Params, mk simlocks.Maker) Result {
	p = p.withDefaults()
	e := engineFor(p)
	al := alloc.New(e)

	const queueShards = 32
	const tableShards = 256
	locks := make([]simlocks.Lock, 0, queueShards+tableShards)
	queues := make([]simlocks.Lock, queueShards)
	for i := range queues {
		queues[i] = mk.New(e, fmt.Sprintf("dedup/q%d", i%4))
		locks = append(locks, queues[i])
	}
	table := make([]simlocks.Lock, tableShards)
	for i := range table {
		table[i] = mk.New(e, fmt.Sprintf("dedup/t%d", i%4))
		locks = append(locks, table[i])
	}
	tableData := e.Mem().AllocPadded("dedup/buckets", 64)

	h := newHarness(p, e)
	h.spawnWorkers(nil, func(t *sim.Thread, id, k int) {
		// Stage 1: chunk the input (allocate a chunk buffer).
		al.Alloc(t, 1024)
		t.Delay(1200)
		q := queues[(id+k)%queueShards]
		q.Lock(t)
		t.Delay(200)
		q.Unlock(t)
		// Stage 2: hash and deduplicate against the shared table.
		shard := (id*31 + k*7) % tableShards
		lk := table[shard]
		lk.Lock(t)
		w := tableData[shard%64]
		t.Store(w, t.Load(w)+1)
		t.Delay(400)
		lk.Unlock(t)
		// Stage 3: compress unique chunks, free the buffer.
		if (id+k)%3 != 0 {
			t.Delay(1800)
		}
		al.Free(t, 1024)
	})
	res := h.run()

	// Account lock-related allocations: the lock structures themselves
	// plus any heap queue nodes threads had to allocate (LD_PRELOAD-style
	// deployments cannot put them on the stack).
	fp := mk.Footprint(p.Topo.Sockets)
	lockBytes := uint64(len(locks)) * uint64(fp.PerLock)
	var nodeBytes uint64
	for _, l := range locks {
		if st := simlocks.StatsOf(l); st != nil {
			nodeBytes += st.DynamicAllocatedBytes
		}
	}
	res.LockBytes = lockBytes + nodeBytes
	res.AllocBytes = al.BytesTotal + lockBytes + nodeBytes
	res.Extra["lock_alloc_bytes"] = float64(lockBytes + nodeBytes)
	e.Recycle()
	return res
}
