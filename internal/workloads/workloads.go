// Package workloads implements every benchmark of the paper's evaluation:
// the will-it-scale-style filesystem microbenchmarks (MWRL, MWCM, MWRM,
// MRDM), the lock1 and hash-table nanobenchmarks, the kernel application
// models (AFL, Exim, Metis) and the userspace benchmarks (LevelDB
// readrandom, streamcluster, Dedup). Each workload takes lock makers as
// parameters and returns a Result with throughput, fairness and memory
// metrics.
package workloads

import (
	"shfllock/internal/sim"
	"shfllock/internal/stats"
	"shfllock/internal/topology"
)

// ClockGHz converts simulated cycles to seconds for reporting.
const ClockGHz = 2.2

// Params configures a workload run.
type Params struct {
	Topo    topology.Machine
	Threads int
	// Seed is used verbatim: 0 is an ordinary seed, distinct from 1, so
	// callers sweeping seeds (shflbench -seed N) get a unique run per
	// value. There is deliberately no "unset" remapping here — a default
	// seed is a caller policy (cmd/shflbench's flag default is 1).
	Seed int64
	// Duration is the measured interval in cycles (after setup); the
	// default is 20M cycles (~9ms of virtual time).
	Duration uint64
	// NoFastPath disables the engine's in-place time advance and direct
	// handoff (shflbench -enginefast=false). Results are identical either
	// way; the slow path is kept as the correctness oracle.
	NoFastPath bool
	// NoWheel disables the timer wheel and per-point arena allocation
	// (shflbench -enginewheel=false): events go through the reference
	// binary heap and engine scratch comes from the Go heap. Results are
	// identical either way; the mode exists as the raw-speed oracle.
	NoWheel bool
}

// engineFor builds the simulation engine for a workload run; every workload
// goes through it so engine-level knobs (fast path, hard stop) stay in one
// place.
func engineFor(p Params) *sim.Engine {
	return sim.NewEngine(sim.Config{
		Topo:       p.Topo,
		Seed:       p.Seed,
		HardStop:   hardStop(p),
		NoFastPath: p.NoFastPath,
		NoWheel:    p.NoWheel,
	})
}

func (p Params) withDefaults() Params {
	if p.Topo.Sockets == 0 {
		p.Topo = topology.Reference()
	}
	if p.Threads == 0 {
		p.Threads = p.Topo.Cores()
	}
	if p.Duration == 0 {
		p.Duration = 20_000_000
	}
	return p
}

// Result is what a workload run reports.
type Result struct {
	PerThread []uint64 // operations completed per thread
	TotalOps  uint64
	Cycles    uint64 // measured interval length

	OpsPerSec float64
	Fairness  float64

	// Memory metrics (meaning is workload-specific).
	LockBytes  uint64 // live lock memory
	AllocBytes uint64 // total bytes from the slab model

	// Extra carries per-experiment metrics (wakeups, idle time, ...).
	Extra map[string]float64

	// Engine counts how the simulator moved virtual time for this run:
	// fast-path advances/handoffs vs event-queue round trips.
	Engine sim.PathStats
}

func (r *Result) finish() {
	for _, v := range r.PerThread {
		r.TotalOps += v
	}
	r.OpsPerSec = stats.Throughput(r.TotalOps, r.Cycles, ClockGHz)
	r.Fairness = stats.FairnessFactor(r.PerThread)
}

// harness coordinates a measured multi-thread run: every worker performs
// its setup, meets at a barrier, and then loops its operation until the
// engine's stop flag rises. Only operations inside the measured window are
// counted.
type harness struct {
	e     *sim.Engine
	p     Params
	ready sim.Word
	start uint64
	ops   []uint64
}

func newHarness(p Params, e *sim.Engine) *harness {
	return &harness{
		e:     e,
		p:     p,
		ready: e.Mem().AllocWord("harness/barrier"),
		ops:   make([]uint64, p.Threads),
	}
}

// spawnWorkers creates p.Threads workers pinned round-robin. setup may be
// nil; op is called repeatedly with an increasing per-thread sequence
// number until the measured window closes.
func (h *harness) spawnWorkers(setup func(t *sim.Thread, id int), op func(t *sim.Thread, id, k int)) {
	n := h.p.Threads
	for i := 0; i < n; i++ {
		id := i
		h.e.Spawn("worker", -1, func(t *sim.Thread) {
			if setup != nil {
				setup(t, id)
			}
			// Scramble arrival: real threads never reach the lock in
			// pinned core order.
			t.Delay(uint64(t.Rng().Intn(20_000)))
			if t.Add(h.ready, 1) == uint64(n) {
				h.start = t.Now()
				h.e.StopAt(t.Now() + h.p.Duration)
			} else {
				t.SpinUntil(h.ready, func(v uint64) bool { return v >= uint64(n) })
			}
			for k := 0; !t.Stopped(); k++ {
				op(t, id, k)
				h.ops[id]++
			}
		})
	}
}

// run executes the simulation and assembles the common result fields.
func (h *harness) run() Result {
	h.e.Run()
	// Ops are counted only inside the measured window; each thread may
	// finish at most one in-flight operation past the stop flag, so the
	// window length itself is the right denominator (using the drain tail
	// would unfairly penalize locks whose parked waiters wake slowly).
	res := Result{
		PerThread: h.ops,
		Cycles:    h.p.Duration,
		Extra:     map[string]float64{},
		Engine:    h.e.PathStats(),
	}
	res.finish()
	return res
}
