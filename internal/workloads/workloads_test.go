package workloads

import (
	"testing"

	"shfllock/internal/simlocks"
	"shfllock/internal/topology"
)

// small returns quick-run parameters for functional tests.
func small(threads int) Params {
	return Params{Topo: topology.Laptop(), Threads: threads, Seed: 1, Duration: 3_000_000}
}

func checkResult(t *testing.T, name string, r Result) {
	t.Helper()
	if r.TotalOps == 0 {
		t.Errorf("%s: zero operations", name)
	}
	if r.OpsPerSec <= 0 {
		t.Errorf("%s: non-positive throughput", name)
	}
	if r.Fairness < 0.45 || r.Fairness > 1.0 {
		t.Errorf("%s: fairness factor %v out of range", name, r.Fairness)
	}
	for _, v := range r.PerThread {
		if v == 0 {
			t.Errorf("%s: a thread was starved completely", name)
			break
		}
	}
}

func TestLock1(t *testing.T) {
	for _, mk := range []simlocks.Maker{simlocks.QSpinLockMaker(), simlocks.ShflLockNBMaker()} {
		checkResult(t, "lock1/"+mk.Name, Lock1(small(6), mk))
	}
}

func TestHashTable(t *testing.T) {
	checkResult(t, "ht", HashTable(small(6), simlocks.ShflLockNBMaker(), 1))
	checkResult(t, "ht-b", HashTable(small(6), simlocks.ShflLockBMaker(), 1))
}

func TestHashTableRW(t *testing.T) {
	checkResult(t, "ht-rw-1", HashTableRW(small(6), simlocks.ShflRWMaker(), 1))
	checkResult(t, "ht-rw-50", HashTableRW(small(6), simlocks.RWSemMaker(), 50))
}

func TestMWRL(t *testing.T) {
	checkResult(t, "mwrl", MWRL(small(6), simlocks.QSpinLockMaker()))
	checkResult(t, "mwrl-shfl", MWRL(small(6), simlocks.ShflLockNBMaker()))
}

func TestMWCM(t *testing.T) {
	r := MWCM(small(6), simlocks.RWSemMaker())
	checkResult(t, "mwcm", r)
	if r.LockBytes == 0 {
		t.Errorf("mwcm: no lock memory recorded")
	}
	if r.AllocBytes == 0 {
		t.Errorf("mwcm: no allocation recorded")
	}
	// Hierarchical locks must inflate the per-inode lock footprint.
	rc := MWCM(small(6), simlocks.CohortRWMaker())
	perStock := float64(r.LockBytes) / float64(r.TotalOps)
	perCohort := float64(rc.LockBytes) / float64(rc.TotalOps)
	if perCohort < 5*perStock {
		t.Errorf("cohort lock memory per inode (%.1f) should dwarf stock (%.1f)", perCohort, perStock)
	}
}

func TestMWRM(t *testing.T) {
	checkResult(t, "mwrm", MWRM(small(6), simlocks.LinuxMutexMaker()))
	checkResult(t, "mwrm-shfl", MWRM(small(6), simlocks.ShflLockBMaker()))
}

func TestMRDM(t *testing.T) {
	r := MRDM(small(6), simlocks.RWSemMaker())
	checkResult(t, "mrdm", r)
	rb := MRDM(small(6), simlocks.BravoMaker(simlocks.RWSemMaker()))
	checkResult(t, "mrdm-bravo", rb)
}

func TestAppModels(t *testing.T) {
	for _, k := range AllKernels() {
		checkResult(t, "afl/"+k.Name, AFL(small(4), k))
	}
	checkResult(t, "exim", Exim(small(4), ShflKernel()))
	checkResult(t, "metis", Metis(small(4), StockKernel()))
	checkResult(t, "metis-shfl", Metis(small(4), ShflKernel()))
}

func TestLevelDB(t *testing.T) {
	checkResult(t, "leveldb", LevelDB(small(6), simlocks.MCSHeapMaker()))
	checkResult(t, "leveldb-shfl", LevelDB(small(6), simlocks.ShflLockBMaker()))
}

func TestStreamcluster(t *testing.T) {
	r := Streamcluster(small(6), simlocks.ShflLockNBMaker(), 12)
	if r.Extra["exec_cycles"] <= 0 {
		t.Errorf("streamcluster: no execution time")
	}
	if r.TotalOps != 6*12 {
		t.Errorf("streamcluster: ops = %d, want %d barrier crossings", r.TotalOps, 6*12)
	}
}

func TestDedup(t *testing.T) {
	rp := Dedup(small(6), simlocks.PthreadMaker())
	checkResult(t, "dedup-pthread", rp)
	rm := Dedup(small(6), simlocks.MCSHeapMaker())
	checkResult(t, "dedup-mcs", rm)
	if rm.LockBytes <= rp.LockBytes {
		t.Errorf("heap-node MCS lock memory (%d) should exceed pthread (%d)",
			rm.LockBytes, rp.LockBytes)
	}
}

// TestOversubscribedWorkloads drives blocking-lock paths with more threads
// than cores.
func TestOversubscribedWorkloads(t *testing.T) {
	p := Params{Topo: topology.Laptop(), Threads: 2 * topology.Laptop().Cores(), Seed: 2, Duration: 6_000_000}
	checkResult(t, "ht-oversub", HashTable(p, simlocks.ShflLockBMaker(), 1))
	checkResult(t, "leveldb-oversub", LevelDB(p, simlocks.PthreadMaker()))
	checkResult(t, "mwrm-oversub", MWRM(p, simlocks.CSTMaker()))
}

func TestDeterministicResults(t *testing.T) {
	a := Lock1(small(5), simlocks.MCSMaker())
	b := Lock1(small(5), simlocks.MCSMaker())
	if a.TotalOps != b.TotalOps || a.Cycles != b.Cycles {
		t.Errorf("non-deterministic workload: %v vs %v ops", a.TotalOps, b.TotalOps)
	}
}
