#!/bin/sh
# verify.sh — the repo's full verification gate.
#
#   ./verify.sh          vet + tier-1 (build + tests) + race on internal/core
#   ./verify.sh -short   same, but tests run with -short
#
# Tier-1 is the contract every change must keep green:
#   go build ./... && go test ./...
# The race pass re-runs the native-lock package (including the shuffling
# invariant and steal-path liveness tests) under the race detector, which
# is where lock bugs hide.
#
# The shape gate runs four times — serially, with a parallel worker pool,
# with the engine fast path disabled, and with the timer wheel and arenas
# disabled — and diffs the outputs byte-for-byte against each other and
# against the committed results_quick.txt: the harness guarantees identical
# results whatever the execution order, and the engine guarantees identical
# results whichever path advances virtual time and whichever event-queue
# backend orders it. This is where those guarantees are enforced. A
# randomized differential test additionally pins the wheel's pop order to
# the reference heap's, and one figure family (Figure 8) runs at full
# fidelity against a committed golden.
#
# The chaos gates pin the fault-injection layer: a fixed-seed run must be
# byte-identical across invocations and to the committed golden (with the
# watchdog quiet), and an injected holder-stall deadlock must fire the
# watchdog and produce a post-mortem instead of hanging. A second seeded
# run arms the policy-flip fault — live transitions forced mid-shuffle,
# during abort reclaim, and at head abdication — and must certify queue
# integrity (ops accounting, clean queue) against its own golden. A short
# native abort torture closes the loop on the real locks, including one
# run under the "auto" self-tuning meta-policy.
set -eu

cd "$(dirname "$0")"

SHORT=""
if [ "${1:-}" = "-short" ]; then
	SHORT="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./...  (tier-1)"
go test $SHORT ./...

echo "== go test -race ./internal/core/...  (incl. steal-path liveness)"
go test -race $SHORT ./internal/core/...

echo "== differential shuffle gate: one engine, two substrates"
go test -race -run 'TestDifferentialShuffle' ./internal/core

echo "== layering gate: no hand-inlined shuffle walk outside internal/shuffle"
if grep -rn "func .*shuffleWaiters" internal/core internal/simlocks; then
	echo "FAIL: a substrate reintroduced a local shuffleWaiters; the queue walk lives in internal/shuffle" >&2
	exit 1
fi

echo "== registry gate: binaries pick locks by name, never by a local case-switch"
# Every binary resolves lock names through internal/lockreg; a hand-rolled
# `case "mutex":`-style switch in a cmd or in the kvserver/chaos glue means
# a lock was wired up outside the registry and will be missing everywhere
# else (help strings, -list, capability errors, torture coverage).
if grep -rnE 'case "(mutex|spinlock|rwmutex|shfl-[a-z]+|goro|goro-[a-z]+|sync\.(RW)?Mutex|sync-(mutex|rw)|tas|ticket|mcs|cna|fissile|hapax|reciprocating|shfllock[a-z+-]*)"' \
	--include='*.go' cmd internal/kvserver internal/chaos | grep -v _test.go; then
	echo "FAIL: a binary switches on lock names locally; register the lock in internal/lockreg instead" >&2
	exit 1
fi

echo "== transition gate: policy stores go through the epoched transition API"
# A live policy switch is only safe through PolicyBox.Set (epoch fence +
# transition log); a direct store to a policy field reintroduces the torn
# read the transition protocol exists to prevent. Only internal/shuffle
# itself (which implements the box) and tests may touch such fields.
if grep -rnE '\.(policy|Policy)\s*=[^=]' --include='*.go' internal cmd | grep -v 'internal/shuffle/' | grep -v '_test.go'; then
	echo "FAIL: a policy field is stored directly; route the switch through the lock's SetPolicy / shuffle.PolicyBox" >&2
	exit 1
fi

echo "== shape gate: shflbench -exp all -quick -parallel 1 (serial)"
go run ./cmd/shflbench -exp all -quick -parallel 1 >/tmp/shflbench-serial.txt
grep "shape\[" /tmp/shflbench-serial.txt

echo "== shootout gate: successor locks hold their shapes on both nano-benches"
# The Fissile/Hapax/Reciprocating lineup must appear in the quick sweep and
# win its qualitative claims (queue handoff beats TAS collapse; FIFO
# admission shows up as fairness).
grep -q '=== shootout-a' /tmp/shflbench-serial.txt
grep -q '=== shootout-b' /tmp/shflbench-serial.txt
test "$(grep -cE 'shape\[ok\]: (fissile|hapax|reciprocating) / tas' /tmp/shflbench-serial.txt)" -eq 6
grep -q 'shape\[ok\]: hapax fairness' /tmp/shflbench-serial.txt
echo "shootout shapes held for fissile, hapax, reciprocating"

echo "== shape gate: shflbench -exp all -quick -parallel 4 (determinism diff)"
go run ./cmd/shflbench -exp all -quick -parallel 4 >/tmp/shflbench-parallel.txt
diff /tmp/shflbench-serial.txt /tmp/shflbench-parallel.txt
echo "parallel output byte-identical to serial"

echo "== shape gate: shflbench -exp all -quick -enginefast=false (fast-path oracle diff)"
go run ./cmd/shflbench -exp all -quick -parallel 4 -enginefast=false >/tmp/shflbench-slowpath.txt
diff /tmp/shflbench-serial.txt /tmp/shflbench-slowpath.txt
echo "slow-path output byte-identical to fast-path"

echo "== shape gate: shflbench -exp all -quick -enginewheel=false (timer-wheel/arena oracle diff)"
# The timer wheel and the per-point arenas replace the reference event heap
# and plain heap allocation; the reference path survives as the oracle, and
# every sweep must be byte-identical with either backend.
go run ./cmd/shflbench -exp all -quick -parallel 4 -enginewheel=false >/tmp/shflbench-nowheel.txt
diff /tmp/shflbench-serial.txt /tmp/shflbench-nowheel.txt
echo "no-wheel output byte-identical to timer-wheel"

echo "== differential wheel gate: randomized wheel-vs-heap pop-order equivalence"
go test -count=1 -run 'TestWheelMatchesHeapRandomized|TestEventLayout|TestThreadLayout' ./internal/sim/
go test -count=1 -run 'TestLineLayout' ./internal/memsim/

echo "== shape gate: diff against committed results_quick.txt"
diff results_quick.txt /tmp/shflbench-serial.txt
echo "output byte-identical to committed results_quick.txt"

echo "== full-fidelity gate: Figure 8 family at paper scale (no -quick)"
# One figure family runs at full fidelity on every verify: full thread
# sweep, full measurement window. Catches regressions that only appear at
# scale (quick mode trims both the sweep and the window) and pins the
# full-fidelity output byte-for-byte. Wall clock for this sweep is recorded
# in BENCH_sim.json.
go run ./cmd/shflbench -exp fig8a,fig8b -parallel 4 >/tmp/shflbench-fig8-full.txt
diff results_fig8_full.txt /tmp/shflbench-fig8-full.txt
echo "full-fidelity Figure 8 output byte-identical to committed golden"

echo "== chaos gate: fixed-seed fault injection, byte-reproducible"
go run ./cmd/locktorture -chaos -chaos-seed 42 >/tmp/chaos-a.txt
go run ./cmd/locktorture -chaos -chaos-seed 42 >/tmp/chaos-b.txt
diff /tmp/chaos-a.txt /tmp/chaos-b.txt
diff cmd/locktorture/testdata/chaos_seed42.golden /tmp/chaos-a.txt
grep -q "watchdog quiet" /tmp/chaos-a.txt
echo "chaos run byte-identical across invocations and to committed golden"

echo "== chaos gate: forced policy flips at the adversarial moments, byte-reproducible"
# PolicyFlip forces live transitions mid-shuffle, during abort reclaim, and
# at head abdication; the run must land at least one flip at each moment
# (locktorture exits nonzero otherwise), account for every acquisition
# (ops + timeouts == workers * iters: no lost wakeups), leave the queue
# clean, and replay byte-identically against its committed golden.
go run ./cmd/locktorture -chaos -chaos-seed 42 -chaos-flip >/tmp/chaos-flip-a.txt
go run ./cmd/locktorture -chaos -chaos-seed 42 -chaos-flip >/tmp/chaos-flip-b.txt
diff /tmp/chaos-flip-a.txt /tmp/chaos-flip-b.txt
diff cmd/locktorture/testdata/chaos_flip_seed42.golden /tmp/chaos-flip-a.txt
grep -q "watchdog quiet" /tmp/chaos-flip-a.txt
grep -q "policy-flips=" /tmp/chaos-flip-a.txt
grep -q "ops-accounting=ok queue=clean" /tmp/chaos-flip-a.txt
echo "policy-flip chaos run byte-identical, all three moments hit, queue certified"

echo "== chaos gate: watchdog fires on injected holder-stall deadlock"
go run ./cmd/locktorture -chaos -chaos-seed 42 -chaos-deadlock >/tmp/chaos-deadlock.txt
grep -q "chaos deadlock detected as expected" /tmp/chaos-deadlock.txt
echo "watchdog caught the deadlock and produced a post-mortem"

echo "== native abort torture: mutex with timeouts under oversubscription"
go run ./cmd/locktorture -lock mutex -threads 8 -duration 1s -abort-frac 0.3 -deadline 120s

echo "== native abort torture: goroutine-native mutex"
go run ./cmd/locktorture -lock goro -threads 8 -duration 1s -abort-frac 0.3 -deadline 120s

echo "== native abort torture: self-tuning meta-policy steering a live mutex"
# -policy auto attaches the lockstat-fed meta-policy; the run must survive
# aborts while the meta switches stages underneath the waiters, and the
# transition log must show the boot transition at minimum.
go run ./cmd/locktorture -lock mutex -policy auto -threads 8 -duration 1s -abort-frac 0.3 -deadline 120s >/tmp/torture-auto.txt
grep -q "policy transitions (auto)" /tmp/torture-auto.txt
grep -q "epoch=1" /tmp/torture-auto.txt
cat /tmp/torture-auto.txt

echo "== goroutine-scaling gate: goro survives oversubscription, artifact holds margins"
# Two layers: a short live smoke (10k goroutines with all three locks,
# then 100k with sync vs goro) with collapse-detection floors loose
# enough for 150ms-window scheduler noise, and the committed 500ms x
# 3-rep artifact checked against the real margins (goro >= 90% of
# sync.Mutex, >= 105% of the socket-grouped ShflLock, oversubscribed).
go run ./cmd/goroscale -quick
go run ./cmd/goroscale -check BENCH_goro.json

echo "== kvserve smoke gate: live server + seeded open-loop load"
# Build both binaries, start the server on a kernel-chosen loopback port,
# drive it with a short seeded kvload run, and assert the service invariants
# (ops completed, zero mutual-exclusion violations, parseable
# /debug/lockstat) plus a clean shutdown within the runtime cap.
KVDIR=$(mktemp -d /tmp/kvserve-verify.XXXXXX)
trap 'rm -rf "$KVDIR"' EXIT
go build -o "$KVDIR/" ./cmd/kvserver ./cmd/kvload
"$KVDIR/kvserver" -addr 127.0.0.1:0 -preload 20000 -port-file "$KVDIR/port" \
	-max-runtime 120s >"$KVDIR/server.log" 2>&1 &
KVPID=$!
i=0
while [ ! -s "$KVDIR/port" ]; do
	i=$((i + 1))
	if [ $i -gt 100 ]; then
		echo "FAIL: kvserver never wrote its port file" >&2
		cat "$KVDIR/server.log" >&2
		kill "$KVPID" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
KVADDR=$(cat "$KVDIR/port")
"$KVDIR/kvload" -url "http://$KVADDR" -keys 20000 -smoke -json "$KVDIR/smoke.json"
kill -TERM "$KVPID"
wait "$KVPID"
grep -q "bye" "$KVDIR/server.log" || {
	echo "FAIL: kvserver did not shut down cleanly" >&2
	cat "$KVDIR/server.log" >&2
	exit 1
}
echo "kvserve smoke: ops flowed, 0 violations, lockstat parsed, clean shutdown"

echo "== kvserver handover torture under -race"
go test -race -run 'TestHandoverTorture|TestSwapLockRace' ./internal/kvserver/

echo "verify.sh: ALL PASS"
