#!/bin/sh
# verify.sh — the repo's full verification gate.
#
#   ./verify.sh          vet + tier-1 (build + tests) + race on internal/core
#   ./verify.sh -short   same, but tests run with -short
#
# Tier-1 is the contract every change must keep green:
#   go build ./... && go test ./...
# The race pass re-runs the native-lock package (including the shuffling
# invariant and steal-path liveness tests) under the race detector, which
# is where lock bugs hide.
#
# The shape gate runs three times — serially, with a parallel worker pool,
# and with the engine fast path disabled — and diffs the outputs
# byte-for-byte against each other and against the committed
# results_quick.txt: the harness guarantees identical results whatever the
# execution order, and the engine guarantees identical results whichever
# path advances virtual time. This is where both guarantees are enforced.
set -eu

cd "$(dirname "$0")"

SHORT=""
if [ "${1:-}" = "-short" ]; then
	SHORT="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./...  (tier-1)"
go test $SHORT ./...

echo "== go test -race ./internal/core/...  (incl. steal-path liveness)"
go test -race $SHORT ./internal/core/...

echo "== differential shuffle gate: one engine, two substrates"
go test -race -run 'TestDifferentialShuffle' ./internal/core

echo "== layering gate: no hand-inlined shuffle walk outside internal/shuffle"
if grep -rn "func .*shuffleWaiters" internal/core internal/simlocks; then
	echo "FAIL: a substrate reintroduced a local shuffleWaiters; the queue walk lives in internal/shuffle" >&2
	exit 1
fi

echo "== shape gate: shflbench -exp all -quick -parallel 1 (serial)"
go run ./cmd/shflbench -exp all -quick -parallel 1 >/tmp/shflbench-serial.txt
grep "shape\[" /tmp/shflbench-serial.txt

echo "== shape gate: shflbench -exp all -quick -parallel 4 (determinism diff)"
go run ./cmd/shflbench -exp all -quick -parallel 4 >/tmp/shflbench-parallel.txt
diff /tmp/shflbench-serial.txt /tmp/shflbench-parallel.txt
echo "parallel output byte-identical to serial"

echo "== shape gate: shflbench -exp all -quick -enginefast=false (fast-path oracle diff)"
go run ./cmd/shflbench -exp all -quick -parallel 4 -enginefast=false >/tmp/shflbench-slowpath.txt
diff /tmp/shflbench-serial.txt /tmp/shflbench-slowpath.txt
echo "slow-path output byte-identical to fast-path"

echo "== shape gate: diff against committed results_quick.txt"
diff results_quick.txt /tmp/shflbench-serial.txt
echo "output byte-identical to committed results_quick.txt"

echo "verify.sh: ALL PASS"
