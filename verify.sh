#!/bin/sh
# verify.sh — the repo's full verification gate.
#
#   ./verify.sh          vet + tier-1 (build + tests) + race on internal/core
#   ./verify.sh -short   same, but tests run with -short
#
# Tier-1 is the contract every change must keep green:
#   go build ./... && go test ./...
# The race pass re-runs the native-lock package (including the shuffling
# invariant tests) under the race detector, which is where lock bugs hide.
set -eu

cd "$(dirname "$0")"

SHORT=""
if [ "${1:-}" = "-short" ]; then
	SHORT="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./...  (tier-1)"
go test $SHORT ./...

echo "== go test -race ./internal/core/..."
go test -race $SHORT ./internal/core/...

echo "== shape gate: shflbench -exp all -quick"
go run ./cmd/shflbench -exp all -quick >/tmp/shflbench-verify.txt
grep "shape\[" /tmp/shflbench-verify.txt

echo "verify.sh: ALL PASS"
