#!/bin/sh
# verify.sh — the repo's full verification gate.
#
#   ./verify.sh          vet + tier-1 (build + tests) + race on internal/core
#   ./verify.sh -short   same, but tests run with -short
#
# Tier-1 is the contract every change must keep green:
#   go build ./... && go test ./...
# The race pass re-runs the native-lock package (including the shuffling
# invariant and steal-path liveness tests) under the race detector, which
# is where lock bugs hide.
#
# The shape gate runs three times — serially, with a parallel worker pool,
# and with the engine fast path disabled — and diffs the outputs
# byte-for-byte against each other and against the committed
# results_quick.txt: the harness guarantees identical results whatever the
# execution order, and the engine guarantees identical results whichever
# path advances virtual time. This is where both guarantees are enforced.
#
# The chaos gates pin the fault-injection layer: a fixed-seed run must be
# byte-identical across invocations and to the committed golden (with the
# watchdog quiet), and an injected holder-stall deadlock must fire the
# watchdog and produce a post-mortem instead of hanging. A short native
# abort torture closes the loop on the real locks.
set -eu

cd "$(dirname "$0")"

SHORT=""
if [ "${1:-}" = "-short" ]; then
	SHORT="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./...  (tier-1)"
go test $SHORT ./...

echo "== go test -race ./internal/core/...  (incl. steal-path liveness)"
go test -race $SHORT ./internal/core/...

echo "== differential shuffle gate: one engine, two substrates"
go test -race -run 'TestDifferentialShuffle' ./internal/core

echo "== layering gate: no hand-inlined shuffle walk outside internal/shuffle"
if grep -rn "func .*shuffleWaiters" internal/core internal/simlocks; then
	echo "FAIL: a substrate reintroduced a local shuffleWaiters; the queue walk lives in internal/shuffle" >&2
	exit 1
fi

echo "== shape gate: shflbench -exp all -quick -parallel 1 (serial)"
go run ./cmd/shflbench -exp all -quick -parallel 1 >/tmp/shflbench-serial.txt
grep "shape\[" /tmp/shflbench-serial.txt

echo "== shape gate: shflbench -exp all -quick -parallel 4 (determinism diff)"
go run ./cmd/shflbench -exp all -quick -parallel 4 >/tmp/shflbench-parallel.txt
diff /tmp/shflbench-serial.txt /tmp/shflbench-parallel.txt
echo "parallel output byte-identical to serial"

echo "== shape gate: shflbench -exp all -quick -enginefast=false (fast-path oracle diff)"
go run ./cmd/shflbench -exp all -quick -parallel 4 -enginefast=false >/tmp/shflbench-slowpath.txt
diff /tmp/shflbench-serial.txt /tmp/shflbench-slowpath.txt
echo "slow-path output byte-identical to fast-path"

echo "== shape gate: diff against committed results_quick.txt"
diff results_quick.txt /tmp/shflbench-serial.txt
echo "output byte-identical to committed results_quick.txt"

echo "== chaos gate: fixed-seed fault injection, byte-reproducible"
go run ./cmd/locktorture -chaos -chaos-seed 42 >/tmp/chaos-a.txt
go run ./cmd/locktorture -chaos -chaos-seed 42 >/tmp/chaos-b.txt
diff /tmp/chaos-a.txt /tmp/chaos-b.txt
diff cmd/locktorture/testdata/chaos_seed42.golden /tmp/chaos-a.txt
grep -q "watchdog quiet" /tmp/chaos-a.txt
echo "chaos run byte-identical across invocations and to committed golden"

echo "== chaos gate: watchdog fires on injected holder-stall deadlock"
go run ./cmd/locktorture -chaos -chaos-seed 42 -chaos-deadlock >/tmp/chaos-deadlock.txt
grep -q "chaos deadlock detected as expected" /tmp/chaos-deadlock.txt
echo "watchdog caught the deadlock and produced a post-mortem"

echo "== native abort torture: mutex with timeouts under oversubscription"
go run ./cmd/locktorture -lock mutex -threads 8 -duration 1s -abort-frac 0.3 -deadline 120s

echo "verify.sh: ALL PASS"
